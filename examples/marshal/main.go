// Marshal: the capability the paper highlights in §2 — VCODE clients can
// construct functions, and calls to them, whose arity and argument types
// are chosen at runtime.  Automatic systems cannot easily do this; VCODE
// clients just loop over a runtime type vector.
//
// We build, from a []core.Type decided "at runtime":
//
//  1. a checksum-style function over that signature (it combines all its
//     arguments into one integer), and
//  2. a marshaling stub that unpacks a memory buffer into exactly that
//     argument list and calls the function — the shape of RPC argument
//     marshaling code.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

func buildCombiner(bk core.Backend, params []core.Type) (*core.Func, error) {
	a := core.NewAsm(bk)
	a.SetName("combiner")
	args, err := a.BeginTypes(params, core.Leaf)
	if err != nil {
		return nil, err
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	tmp, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	a.Seti(acc, 0)
	for i, t := range params {
		switch t {
		case core.TypeD:
			a.Cvd2i(tmp, args[i])
		case core.TypeI:
			a.Movi(tmp, args[i])
		default:
			a.Cvt(t, core.TypeI, tmp, args[i])
		}
		a.Mulii(acc, acc, 31)
		a.Addi(acc, acc, tmp)
	}
	a.Reti(acc)
	return a.End()
}

// buildUnmarshaler generates func(p) int: read each argument of the
// runtime-chosen signature from the buffer at p and call target with
// them.
func buildUnmarshaler(bk core.Backend, params []core.Type, target *core.Func) (*core.Func, error) {
	a := core.NewAsm(bk)
	a.SetName("unmarshal")
	args, err := a.Begin("%p", core.NonLeaf)
	if err != nil {
		return nil, err
	}
	buf := args[0]
	// Build the call signature string at runtime.
	sig := ""
	for _, t := range params {
		sig += "%" + t.Letter()
	}
	// Load each argument from the buffer into a fresh register.
	regs := make([]core.Reg, len(params))
	off := int64(0)
	for i, t := range params {
		var r core.Reg
		if t.IsFloat() {
			r, err = a.GetFReg(core.Temp)
		} else {
			r, err = a.GetReg(core.Temp)
		}
		if err != nil {
			return nil, err
		}
		sz := int64(t.Size(bk.PtrBytes()))
		off = (off + sz - 1) &^ (sz - 1)
		a.LdI(t, r, buf, off)
		off += sz
		regs[i] = r
	}
	a.StartCall(sig)
	for i, r := range regs {
		a.SetArg(i, r)
	}
	a.CallFunc(target)
	res, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	a.RetVal(core.TypeI, res)
	a.Reti(res)
	return a.End()
}

func main() {
	bk := mips.New()
	m := mem.New(1<<22, false)
	machine := core.NewMachine(bk, mips.NewCPU(m), m)

	// The signature arrives at runtime (imagine an RPC schema).
	params := []core.Type{core.TypeI, core.TypeD, core.TypeU, core.TypeI, core.TypeD}
	fmt.Print("runtime signature: (")
	for i, t := range params {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(t.CName())
	}
	fmt.Println(") -> int")

	combiner, err := buildCombiner(bk, params)
	if err != nil {
		log.Fatal(err)
	}
	stub, err := buildUnmarshaler(bk, params, combiner)
	if err != nil {
		log.Fatal(err)
	}

	// Direct call with marshaled Go values.
	argv := []core.Value{core.I(3), core.D(2.5), core.U(7), core.I(-4), core.D(100)}
	direct, err := machine.Call(combiner, argv...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct call:      combiner(...) = %d\n", direct.Int())

	// Same values serialized into a simulated-memory buffer, decoded by
	// the generated stub.
	bufAddr, err := machine.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	off := uint64(0)
	for i, t := range params {
		sz := uint64(t.Size(bk.PtrBytes()))
		off = (off + sz - 1) &^ (sz - 1)
		if err := machine.Mem().Store(bufAddr+off, int(sz), argv[i].Bits); err != nil {
			log.Fatal(err)
		}
		off += sz
	}
	viaStub, err := machine.Call(stub, core.P(bufAddr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unmarshaled call: unmarshal(buf) = %d\n", viaStub.Int())
	if direct.Int() != viaStub.Int() {
		log.Fatal("marshaling mismatch")
	}
	fmt.Println("results agree.")
}
