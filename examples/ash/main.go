// ASH example (§4.3): compose message data operations — copy, internet
// checksum, byte swap — into a single dynamically generated pass over
// memory, and compare against separate modular passes and a
// hand-integrated loop on a simulated DECstation.
package main

import (
	"fmt"
	"log"

	"repro/internal/ash"
	"repro/internal/mem"
)

func main() {
	sys, err := ash.NewSystem(mem.DEC5000, 4096)
	if err != nil {
		log.Fatal(err)
	}
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(i*13 + 1)
	}
	p := ash.Pipeline{Checksum: true, Swap: true}
	fmt.Printf("pipeline: %s over a %d-byte message (DEC5000 model)\n\n", p, len(msg))

	for _, m := range []ash.Method{ash.Separate, ash.CIntegrated, ash.ASH} {
		// Warm the cache, then measure.
		if _, _, err := sys.Run(m, p, msg, false); err != nil {
			log.Fatal(err)
		}
		cycles, sum, err := sys.Run(m, p, msg, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7d cycles  %7.0f us   checksum %#04x\n",
			m, cycles, mem.DEC5000.Micros(cycles), sum)
	}
	fmt.Printf("\nreference checksum: %#04x\n", ash.RefChecksum(msg))

	fmt.Println("\nfull Table 4:")
	rows, err := ash.RunTable4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ash.FormatTable4(rows))

	// Dynamic modular composition: a client protocol layer (here a toy
	// XOR obfuscation stage) composes with the builtin stages into one
	// specialized loop — the flexibility the paper says ASHs get "for
	// free".
	cycles, sum, err := sys.RunStages(
		[]ash.Stage{ash.ChecksumStage(), ash.SwapStage(), ash.XorStage(0x5a5a5a5a)},
		msg, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient-composed copy+checksum+byteswap+xor pipeline: %d cycles (%.0f us), checksum %#04x\n",
		cycles, mem.DEC5000.Micros(cycles), uint16(sum))
}
