// vasm example: the textual face of the VCODE instruction set.  A small
// assembly program — written once in the paper's instruction naming — is
// assembled and run on all three simulated targets, and its generated
// machine code is shown for each.
package main

import (
	"fmt"
	"log"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
	"repro/internal/vasm"
)

const src = `
; sum of the first n odd numbers (= n*n), with a helper call
.func odd (%i) leaf        ; odd(i) = 2*i + 1
    addi    arg0, arg0, arg0
    addii   arg0, arg0, 1
    reti    arg0
.end

.func sumodd (%i)
.reg n   var i             ; arg0 arrives in a caller-saved argument
.reg i   var i             ; register -- move it somewhere that
.reg acc var i             ; survives the calls below
.reg t   temp i
    movi    n, arg0
    seti    i, 0
    seti    acc, 0
loop:
    bgei    i, n, done
    startcall (%i)
    setarg  0, i
    call    odd
    retval  i, t
    addi    acc, acc, t
    addii   i, i, 1
    jmp     loop
done:
    reti    acc
.end
`

func main() {
	type target struct {
		name    string
		backend core.Backend
		machine *core.Machine
	}
	mmem := mem.New(1<<24, false)
	smem := mem.New(1<<24, true)
	amem := mem.New(1<<24, false)
	mipsBk, sparcBk, alphaBk := mips.New(), sparc.New(), alpha.New()
	targets := []target{
		{"mips", mipsBk, core.NewMachine(mipsBk, mips.NewCPU(mmem), mmem)},
		{"sparc", sparcBk, core.NewMachine(sparcBk, sparc.NewCPU(smem), smem)},
		{"alpha", alphaBk, core.NewMachine(alphaBk, alpha.NewCPU(amem), amem)},
	}
	fmt.Print("source:", src, "\n")
	for _, tg := range targets {
		prog, err := vasm.Assemble(tg.machine, src)
		if err != nil {
			log.Fatalf("%s: %v", tg.name, err)
		}
		got, err := prog.Run("sumodd", core.I(12))
		if err != nil {
			log.Fatalf("%s: %v", tg.name, err)
		}
		words := len(prog.Funcs["odd"].Words) + len(prog.Funcs["sumodd"].Words)
		fmt.Printf("%-6s sumodd(12) = %d   (%d machine words, %d insns, %d cycles)\n",
			tg.name, got.Int(), words, tg.machine.CPU().Insns(), tg.machine.CPU().Cycles())
	}

	// Show the inner helper's code on one target.
	m2 := mem.New(1<<22, false)
	machine := core.NewMachine(mipsBk, mips.NewCPU(m2), m2)
	prog, err := vasm.Assemble(machine, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nodd() on MIPS:")
	for _, line := range mips.DisasmFunc(mipsBk, prog.Funcs["odd"]) {
		fmt.Println(line)
	}
}
