// tinyc example (§4.1): compile a C-like program at runtime with VCODE as
// the target machine, then run the same compiler back end — unchanged —
// on all three architectures VCODE is ported to.
package main

import (
	"fmt"
	"log"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
	"repro/internal/tinyc"
)

const src = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}

double mean(double a, double b) {
	return (a + b) / 2.0;
}

int main(int n) {
	int f = fib(n);
	double m = mean((double)f, 100.0);
	return f * 1000 + (int)m;
}
`

func main() {
	fmt.Print("source:", src)
	type target struct {
		name string
		mk   func() *core.Machine
	}
	targets := []target{
		{"mips", func() *core.Machine {
			m := mem.New(1<<24, false)
			return core.NewMachine(mips.New(), mips.NewCPU(m), m)
		}},
		{"sparc", func() *core.Machine {
			m := mem.New(1<<24, true)
			return core.NewMachine(sparc.New(), sparc.NewCPU(m), m)
		}},
		{"alpha", func() *core.Machine {
			m := mem.New(1<<24, false)
			return core.NewMachine(alpha.New(), alpha.NewCPU(m), m)
		}},
	}
	prog, err := tinyc.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, tg := range targets {
		machine := tg.mk()
		c := tinyc.NewCompiler(machine)
		if err := c.Compile(prog); err != nil {
			log.Fatalf("%s: %v", tg.name, err)
		}
		words := 0
		for _, fn := range c.Funcs() {
			words += len(fn.Words)
		}
		got, err := c.Run("main", core.I(15))
		if err != nil {
			log.Fatalf("%s: %v", tg.name, err)
		}
		fmt.Printf("%-6s main(15) = %d   (%d machine words generated, %d insns executed, %d cycles)\n",
			tg.name, got.Int(), words, machine.CPU().Insns(), machine.CPU().Cycles())
	}
}
