// DPF example (§4.2): install ten TCP/IP session filters, let DPF compile
// them to machine code, show the generated classifier, and race it
// against the MPF and PATHFINDER interpreters on the same packets.
package main

import (
	"fmt"
	"log"

	"repro/internal/dpf"
	"repro/internal/mem"
	"repro/internal/mips"
)

func main() {
	w := dpf.NewWorkload(10)
	fmt.Printf("installed %d TCP/IP session filters (%d atoms each)\n",
		len(w.Filters), len(w.Filters[0].Atoms))

	engine, err := dpf.NewDPF(mem.DEC5000)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Install(w.Filters); err != nil {
		log.Fatal(err)
	}
	fn := engine.Func()
	fmt.Printf("\nDPF compiled the filter set to %d machine words "+
		"(shared prefix evaluated once, ports dispatched through a "+
		"collision-free hash table):\n\n", len(fn.Words))
	backend := mips.New()
	listing := mips.DisasmFunc(backend, fn)
	for i, line := range listing {
		if i >= 28 {
			fmt.Printf("   ... %d more words ...\n", len(listing)-i)
			break
		}
		fmt.Println(line)
	}

	fmt.Println("\nclassifying each session's packet:")
	for i, pkt := range w.Packets {
		id, cycles, err := engine.Classify(pkt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  packet %d -> filter %2d (%d cycles, %.2f us)\n",
			i, id, cycles, engine.Micros(cycles))
	}

	fmt.Println("\nTable 3 comparison:")
	rows, err := dpf.RunTable3(10, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dpf.FormatTable3(rows))
}
