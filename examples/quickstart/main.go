// Quickstart: the paper's Figure 1.  Dynamically create the function
//
//	int plus1(int x) { return x + 1; }
//
// on the MIPS target, print the generated machine code (which matches the
// paper's §3.2 listing: the add, then the return with the result move in
// its delay slot), install it on the simulated machine and call it.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

func main() {
	backend := mips.New()

	// Begin code generation (v_lambda).  The type string "%i" says the
	// function takes a single integer argument; the register holding it
	// comes back in args[0].  Leaf declares no calls are made.
	asm := core.NewAsm(backend)
	asm.SetName("plus1")
	args, err := asm.Begin("%i", core.Leaf)
	if err != nil {
		log.Fatal(err)
	}

	asm.Addii(args[0], args[0], 1) // ADD Integer Immediate
	asm.Reti(args[0])              // RETurn Integer

	// End code generation (v_end): link and return the function.
	fn, err := asm.End()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d words for %s (%d VCODE instructions):\n",
		len(fn.Words), fn.Name, fn.NumInsns)
	for _, line := range mips.DisasmFunc(backend, fn) {
		fmt.Println(line)
	}

	// Install on a simulated DECstation-class machine and run it.
	m := mem.New(1<<22, false)
	machine := core.NewMachine(backend, mips.NewCPU(m), m)
	for _, x := range []int32{41, -1, 2147483646} {
		got, err := machine.Call(fn, core.I(x))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plus1(%d) = %d\n", x, got.Int())
	}
	fmt.Printf("executed %d instructions in %d cycles\n",
		machine.CPU().Insns(), machine.CPU().Cycles())
}
