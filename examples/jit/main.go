// JIT example: the paper's motivating use of dynamic code generation
// (§1) — an interpreter that compiles frequently used code to machine
// code and executes it directly.  A stack-machine bytecode function is
// run both ways under the same DEC5000-class cost model.
package main

import (
	"fmt"
	"log"

	"repro/internal/jit"
	"repro/internal/mem"
)

func main() {
	m := jit.NewMachine(mem.DEC5000)
	for _, f := range []*jit.Func{jit.FibIter(), jit.SumSquares(), jit.Gcd(), jit.Poly()} {
		fn, err := m.Compile(f)
		if err != nil {
			log.Fatal(err)
		}
		args := []int32{25}
		if f.NArgs == 2 {
			args = []int32{1071, 462}
		}
		iv, icyc, err := jit.Interp(f, args...)
		if err != nil {
			log.Fatal(err)
		}
		cv, ccyc, err := m.Run(fn, args...)
		if err != nil {
			log.Fatal(err)
		}
		if iv != cv {
			log.Fatalf("%s: interp %d != compiled %d", f.Name, iv, cv)
		}
		fmt.Printf("%-7s %v = %-10d interp %6d cycles (%5.1f us)   compiled %5d cycles (%4.1f us)   speedup %.1fx\n",
			f.Name, args, cv, icyc, m.Micros(icyc), ccyc, m.Micros(ccyc),
			float64(icyc)/float64(ccyc))
	}
	fmt.Println("\n(the paper's abstract: runtime code generation improves performance")
	fmt.Println(" by up to an order of magnitude — here by stripping interpreter dispatch)")

	// The adaptive lifecycle: interpret while cold, compile when hot.
	ad := jit.NewAdaptive(m, 3)
	f := jit.FibIter()
	fmt.Println("\nadaptive execution of fib(20), threshold 3:")
	for i := 0; i < 6; i++ {
		v, cyc, err := ad.Call(f, 20)
		if err != nil {
			log.Fatal(err)
		}
		mode := "interpreted"
		if ad.Compiled(f) {
			mode = "compiled"
		}
		fmt.Printf("  call %d: %d  (%5d cycles, %s)\n", i+1, v, cyc, mode)
	}
}
