// Package repro is a from-scratch Go reproduction of "VCODE: a
// Retargetable, Extensible, Very Fast Dynamic Code Generation System"
// (Dawson R. Engler, PLDI 1996).
//
// The VCODE system itself lives in internal/core; its three ports (MIPS,
// SPARC, Alpha) pair binary encoders with cycle-counted simulators that
// execute the generated code.  The paper's baseline (DCG) and its three
// experimental clients (a tiny-C compiler, the DPF packet-filter system,
// and the ASH message-pipeline system) are built on top.  See DESIGN.md
// for the system inventory and EXPERIMENTS.md for paper-vs-measured
// results; bench_test.go in this directory regenerates every table.
package repro
