package repro

import (
	"testing"

	"repro/internal/alpha"
	"repro/internal/ash"
	"repro/internal/cgbench"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/dcg"
	"repro/internal/dpf"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/reduce"
	"repro/internal/sparc"
	"repro/internal/vreg"
)

// ---- E1: code generation cost (abstract, §5.1, §5.3, §7) ----
//
// BenchmarkCodegen* measures the host cost per generated VCODE
// instruction: the in-place system with allocator-managed registers, the
// hard-coded register-name fast path (§5.3: ~2x cheaper), and the
// DCG-style build-then-consume-IR baseline (the paper's ~35x).

func benchCodegenVCODE(b *testing.B, bk core.Backend, hard bool) {
	a := core.NewAsm(bk)
	b.ReportAllocs()
	insns := 0
	for i := 0; i < b.N; i++ {
		fn, n, err := cgbench.EmitVCODE(a, cgbench.Blocks, hard)
		if err != nil || fn == nil {
			b.Fatal(err)
		}
		insns = n
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*insns), "ns/insn")
}

func BenchmarkCodegenVCODEMips(b *testing.B)  { benchCodegenVCODE(b, mips.New(), false) }
func BenchmarkCodegenVCODESparc(b *testing.B) { benchCodegenVCODE(b, sparc.New(), false) }
func BenchmarkCodegenVCODEAlpha(b *testing.B) { benchCodegenVCODE(b, alpha.New(), false) }

func BenchmarkCodegenVCODEHardRegs(b *testing.B) { benchCodegenVCODE(b, mips.New(), true) }

// BenchmarkCodegenRawEmit measures the bare backend emitters feeding the
// code buffer — the closest Go analog of what the paper's hard-coded
// register names bought in C, where the macro expansion constant-folds to
// "load a 32-bit immediate and store it" (§5.3: ~5 host instructions).
// The gap between this and BenchmarkCodegenVCODEMips is the cost of the
// portable per-instruction interface (validation, sticky errors,
// emulation dispatch).
func BenchmarkCodegenRawEmit(b *testing.B) {
	bk := mips.New()
	buf := core.NewBuf(16 * cgbench.Blocks)
	t0, t1 := core.GPR(8), core.GPR(9)
	insns := 10 * cgbench.Blocks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		for j := 0; j < cgbench.Blocks; j++ {
			k := int64(j&15 + 1)
			_ = bk.ALUImm(buf, core.OpAdd, core.TypeI, t0, t1, k)
			_ = bk.ALUImm(buf, core.OpLsh, core.TypeI, t1, t0, 3)
			_ = bk.ALU(buf, core.OpXor, core.TypeI, t0, t0, t1)
			_ = bk.Load(buf, core.TypeI, t1, t0, k*4)
			_ = bk.ALU(buf, core.OpAdd, core.TypeI, t1, t1, t0)
			_ = bk.Store(buf, core.TypeI, t1, t0, k*4)
			_ = bk.ALUImm(buf, core.OpSub, core.TypeI, t0, t0, 7)
			_ = bk.ALUImm(buf, core.OpAnd, core.TypeI, t1, t1, 0xff)
			_, _ = bk.BranchImm(buf, core.OpBlt, core.TypeI, t0, 1000)
			_ = bk.ALU(buf, core.OpOr, core.TypeI, t0, t0, t1)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*insns), "ns/insn")
}

func BenchmarkCodegenDCG(b *testing.B) {
	g := dcg.New(mips.New())
	b.ReportAllocs()
	insns := 0
	for i := 0; i < b.N; i++ {
		fn, n, err := cgbench.EmitDCG(g, cgbench.Blocks)
		if err != nil || fn == nil {
			b.Fatal(err)
		}
		insns = n
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*insns), "ns/insn")
}

// BenchmarkCodegenVReg measures the unlimited-virtual-register extension
// layer (§6.2: "preliminary results indicate that the addition of this
// (optional) support would increase code generation cost by roughly a
// factor of two") on a workload whose registers all spill.
func BenchmarkCodegenVReg(b *testing.B) {
	a := core.NewAsm(mips.New())
	b.ReportAllocs()
	insns := 0
	for i := 0; i < b.N; i++ {
		args, err := a.Begin("%p%i", core.NonLeaf)
		if err != nil {
			b.Fatal(err)
		}
		v, err := vreg.New(a, 0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 32; j++ { // exhaust physical registers
			v.Reg(core.TypeI)
		}
		base, n := v.Reg(core.TypeP), v.Reg(core.TypeI)
		v.MovFrom(core.TypeP, base, args[0])
		v.MovFrom(core.TypeI, n, args[1])
		r1, r2 := v.Reg(core.TypeI), v.Reg(core.TypeI)
		for j := 0; j < cgbench.Blocks; j++ {
			k := int64(j&15 + 1)
			v.ALUI(core.OpAdd, core.TypeI, r1, n, k)
			v.ALUI(core.OpLsh, core.TypeI, r2, r1, 3)
			v.ALU(core.OpXor, core.TypeI, r1, r1, r2)
			v.LdI(core.TypeI, r2, base, k*4)
			v.ALU(core.OpAdd, core.TypeI, r2, r2, r1)
			v.StI(core.TypeI, r2, base, k*4)
			v.ALUI(core.OpSub, core.TypeI, r1, r1, 7)
			v.ALUI(core.OpAnd, core.TypeI, r2, r2, 0xff)
			l := a.NewLabel()
			v.BrI(core.OpBlt, core.TypeI, n, 1000, l)
			a.Bind(l)
			v.ALU(core.OpOr, core.TypeI, r1, r1, r2)
		}
		v.Ret(core.TypeI, r1)
		if _, err := a.End(); err != nil {
			b.Fatal(err)
		}
		insns = 10 * cgbench.Blocks
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*insns), "ns/insn")
}

// ---- DPF ablation: dispatch strategy (§4.2's "optimize the comparison") ----

func benchDPFDispatch(b *testing.B, disableHash bool) {
	e, err := dpf.NewDPF(mem.DEC5000)
	if err != nil {
		b.Fatal(err)
	}
	e.DisableHash = disableHash
	benchTable3(b, e)
}

func BenchmarkDPFDispatchHash(b *testing.B)   { benchDPFDispatch(b, false) }
func BenchmarkDPFDispatchBinary(b *testing.B) { benchDPFDispatch(b, true) }

// ---- E7: code-generation memory (§3: "consumes little space") ----
//
// The allocs/op column is the point: VCODE's in-place generation
// allocates a few slices per function regardless of length, while the
// IR-building baseline allocates per instruction.  (Run with -benchmem.)

func BenchmarkCodegenMemoryVCODE(b *testing.B) { benchCodegenVCODE(b, mips.New(), false) }
func BenchmarkCodegenMemoryDCG(b *testing.B)   { BenchmarkCodegenDCG(b) }

// ---- Table 3: packet-filter classification (§4.2) ----
//
// Each iteration classifies one TCP/IP header against ten installed
// session filters.  The "sim-us" metric is the modelled DEC5000/200 time
// — the number Table 3 reports; wall-clock ns/op is simulator overhead,
// not a paper number.

func benchTable3(b *testing.B, e dpf.Engine) {
	w := dpf.NewWorkload(10)
	if err := e.Install(w.Filters); err != nil {
		b.Fatal(err)
	}
	if err := dpf.Verify(e, w); err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c, err := e.Classify(w.Packets[i%len(w.Packets)])
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(float64(cycles)/float64(b.N)/mem.DEC5000.MHz, "sim-us")
}

func BenchmarkTable3MPF(b *testing.B)        { benchTable3(b, dpf.NewMPF()) }
func BenchmarkTable3Pathfinder(b *testing.B) { benchTable3(b, dpf.NewPathfinder()) }

func BenchmarkTable3DPF(b *testing.B) {
	e, err := dpf.NewDPF(mem.DEC5000)
	if err != nil {
		b.Fatal(err)
	}
	benchTable3(b, e)
}

// BenchmarkTable3DPFCompile isolates the install-time cost DPF pays to
// win at classification time: compiling ten filters to machine code.
func BenchmarkTable3DPFCompile(b *testing.B) {
	w := dpf.NewWorkload(10)
	e, err := dpf.NewDPF(mem.DEC5000)
	if err != nil {
		b.Fatal(err)
	}
	e.DisableCache() // measure the compiler, not the classifier cache's hit path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Install(w.Filters); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 4: integrated message operations (§4.3) ----
//
// Each iteration processes one 4KB message.  The "sim-us" metric is the
// modelled machine time — the Table 4 cell.

func benchTable4(b *testing.B, conf mem.MachineConfig, m ash.Method, p ash.Pipeline, flush bool) {
	sys, err := ash.NewSystem(conf, ash.Table4Message)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, ash.Table4Message)
	for i := range msg {
		msg[i] = byte(3 * i)
	}
	if _, _, err := sys.Run(m, p, msg, false); err != nil { // warm
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _, err := sys.Run(m, p, msg, flush)
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(conf.Micros(cycles)/float64(b.N), "sim-us")
}

var ckSw = ash.Pipeline{Checksum: true, Swap: true}

func BenchmarkTable4Dec5000SeparateUncached(b *testing.B) {
	benchTable4(b, mem.DEC5000, ash.Separate, ckSw, true)
}

func BenchmarkTable4Dec5000Separate(b *testing.B) {
	benchTable4(b, mem.DEC5000, ash.Separate, ckSw, false)
}

func BenchmarkTable4Dec5000CIntegrated(b *testing.B) {
	benchTable4(b, mem.DEC5000, ash.CIntegrated, ckSw, false)
}

func BenchmarkTable4Dec5000ASH(b *testing.B) {
	benchTable4(b, mem.DEC5000, ash.ASH, ckSw, false)
}

func BenchmarkTable4Dec3100SeparateUncached(b *testing.B) {
	benchTable4(b, mem.DEC3100, ash.Separate, ckSw, true)
}

func BenchmarkTable4Dec3100Separate(b *testing.B) {
	benchTable4(b, mem.DEC3100, ash.Separate, ckSw, false)
}

func BenchmarkTable4Dec3100CIntegrated(b *testing.B) {
	benchTable4(b, mem.DEC3100, ash.CIntegrated, ckSw, false)
}

func BenchmarkTable4Dec3100ASH(b *testing.B) {
	benchTable4(b, mem.DEC3100, ash.ASH, ckSw, false)
}

// ---- JIT: stripping a layer of interpretation (§1, §2) ----
//
// The abstract's motivating claim: runtime code generation improves
// performance "by up to an order of magnitude".  Both rows run under the
// same DEC5000-class cost model: the interpreter through its dispatch
// cost model, the compiled code on the simulator.

func BenchmarkJITInterpreted(b *testing.B) {
	f := jit.FibIter()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, c, err := jit.Interp(f, 30)
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
}

func BenchmarkJITCompiled(b *testing.B) {
	m := jit.NewMachine(mem.DEC5000)
	fn, err := m.Compile(jit.FibIter())
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, c, err := m.Run(fn, 30)
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
}

// ---- Strength reduction (§5.4): the client-side reducer for multiply
// and divide by runtime constants, measured in simulated machine cycles
// against the hardware instructions it replaces. ----

func benchStrength(b *testing.B, reduced bool) {
	bk := mips.New()
	m := mem.New(1<<22, false)
	cpu := mips.NewCPU(m)
	mc := core.NewMachine(bk, cpu, m)
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		b.Fatal(err)
	}
	rd, err := a.GetReg(core.Temp)
	if err != nil {
		b.Fatal(err)
	}
	// x*24 + x/8 + x%8 over reduced vs native instructions.
	t2, err := a.GetReg(core.Temp)
	if err != nil {
		b.Fatal(err)
	}
	if reduced {
		reduce.MulI(a, core.TypeI, rd, args[0], 24)
		reduce.DivI(a, core.TypeI, t2, args[0], 8)
		a.Addi(rd, rd, t2)
		reduce.ModI(a, core.TypeI, t2, args[0], 8)
	} else {
		a.Mulii(rd, args[0], 24)
		a.Divii(t2, args[0], 8)
		a.Addi(rd, rd, t2)
		a.Modii(t2, args[0], 8)
	}
	a.Addi(rd, rd, t2)
	a.Reti(rd)
	fn, err := a.End()
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cpu.ResetStats()
		if _, err := mc.Call(fn, core.I(123456)); err != nil {
			b.Fatal(err)
		}
		cycles += cpu.Cycles()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
}

func BenchmarkStrengthReduced(b *testing.B) { benchStrength(b, true) }
func BenchmarkStrengthNative(b *testing.B)  { benchStrength(b, false) }

// ---- Code cache (internal/codecache): the concurrent compiled-function
// cache over the JIT.  Hit is the steady-state fast path every cached
// lookup pays; MissCompile is the full cold cost (compile + install +
// evict the displaced entry's code region); Concurrent is a mixed
// hot/cold stream across goroutines through the sharded maps. ----

func benchCacheMachine(b *testing.B, capacity int) (*jit.Machine, *codecache.Cache) {
	b.Helper()
	m := jit.NewMachine(mem.Uncosted)
	return m, codecache.New(codecache.Config{Machine: m.Core(), MaxEntries: capacity})
}

func BenchmarkCodeCacheHit(b *testing.B) {
	m, c := benchCacheMachine(b, 8)
	f := jit.Synthetic(1)
	key := f.CacheKey()
	compile := func() (*core.Func, error) { return m.Compile(f) }
	if _, err := c.GetOrCompile(key, compile); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrCompile(key, compile); err != nil {
			b.Fatal(err)
		}
	}
	if s := c.Snapshot(); s.Compiles != 1 {
		b.Fatalf("hit benchmark compiled %d times", s.Compiles)
	}
}

// BenchmarkCodeCacheMissCompile alternates two same-sized functions
// through a capacity-1 cache, so every request is a miss that compiles,
// installs into the hole the previous eviction freed, and evicts its
// predecessor: the complete cold-path cycle.
func BenchmarkCodeCacheMissCompile(b *testing.B) {
	m, c := benchCacheMachine(b, 1)
	fs := []*jit.Func{jit.Synthetic(1), jit.Synthetic(2)}
	keys := []string{fs[0].CacheKey(), fs[1].CacheKey()}
	compile := func(i int) func() (*core.Func, error) {
		return func() (*core.Func, error) { return m.Compile(fs[i]) }
	}
	compiles := []func() (*core.Func, error){compile(0), compile(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrCompile(keys[i&1], compiles[i&1]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := c.Snapshot(); b.N > 2 && s.Hits > uint64(b.N)/2 {
		b.Fatalf("miss benchmark mostly hit: %+v", s)
	}
}

func BenchmarkCodeCacheConcurrent(b *testing.B) {
	const nkeys, hot = 64, 8
	m, c := benchCacheMachine(b, 16)
	keys := make([]string, nkeys)
	compiles := make([]func() (*core.Func, error), nkeys)
	for i := range keys {
		f := jit.Synthetic(int32(i))
		keys[i] = f.CacheKey()
		compiles[i] = func() (*core.Func, error) { return m.Compile(f) }
	}
	for i := 0; i < hot; i++ { // warm the hot set
		if _, err := c.GetOrCompile(keys[i], compiles[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := i % hot // ~95% hot keys, 5% cold tail forcing eviction churn
			if i%20 == 19 {
				k = hot + (i/20)%(nkeys-hot)
			}
			if _, err := c.GetOrCompile(keys[k], compiles[k]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// ---- E8: portable delay-slot scheduling (§5.3) ----
//
// A scheduled tight loop against its unscheduled equivalent on a
// delay-slot machine: same semantics, fewer executed instructions.

func BenchmarkDelayScheduledLoop(b *testing.B)   { benchDelay(b, true) }
func BenchmarkDelayUnscheduledLoop(b *testing.B) { benchDelay(b, false) }

func benchDelay(b *testing.B, scheduled bool) {
	bk := mips.New()
	m := mem.New(1<<22, false)
	cpu := mips.NewCPU(m)
	mc := core.NewMachine(bk, cpu, m)

	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		b.Fatal(err)
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		b.Fatal(err)
	}
	a.Seti(acc, 0)
	top := a.NewLabel()
	a.Bind(top)
	a.Subii(args[0], args[0], 1)
	if scheduled {
		// The accumulate rides in the loop branch's delay slot.
		a.ScheduleDelay(
			func() { a.Bgtii(args[0], 0, top) },
			func() { a.Addi(acc, acc, args[0]) },
		)
	} else {
		a.Addi(acc, acc, args[0])
		a.Bgtii(args[0], 0, top)
	}
	a.Reti(acc)
	fn, err := a.End()
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cpu.ResetStats()
		if _, err := mc.Call(fn, core.I(1000)); err != nil {
			b.Fatal(err)
		}
		cycles += cpu.Cycles()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
}
