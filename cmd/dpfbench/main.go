// Command dpfbench regenerates the paper's Table 3: average time to
// classify TCP/IP headers destined for one of ten TCP/IP filters, under
// DPF (dynamic code generation via VCODE), PATHFINDER (pattern-matching
// interpreter) and MPF (bytecode interpreter), all costed on a
// DEC5000/200-class machine model.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dpf"
)

func main() {
	filters := flag.Int("filters", 10, "number of installed TCP/IP session filters")
	trials := flag.Int("trials", 100000, "classification trials to average over")
	sweep := flag.Bool("sweep", false, "also sweep the filter count (scaling series)")
	flag.Parse()

	rows, err := dpf.RunTable3(*filters, *trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpfbench:", err)
		os.Exit(1)
	}
	fmt.Print(dpf.FormatTable3(rows))
	var mpf, pf, d float64
	for _, r := range rows {
		switch r.Engine {
		case "MPF":
			mpf = r.Micros
		case "PATHFINDER":
			pf = r.Micros
		case "DPF":
			d = r.Micros
		}
	}
	fmt.Printf("\nDPF speedup: %.1fx over PATHFINDER, %.1fx over MPF\n", pf/d, mpf/d)
	fmt.Println("paper (Table 3): DPF ~10x over PATHFINDER, ~20x over MPF")

	if *sweep {
		pts, err := dpf.RunScaling([]int{1, 2, 5, 10, 20, 50}, min(*trials, 2000))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpfbench:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(dpf.FormatScaling(pts))
	}
}
