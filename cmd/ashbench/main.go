// Command ashbench regenerates the paper's Table 4: the cost of
// integrated and non-integrated message data manipulation (copying,
// internet checksumming, byte swapping) on DECstation 3100 and 5000/200
// machine models, comparing modular separate passes, a hand-integrated
// single pass, and the ASH system's dynamically generated pass.
package main

import (
	"fmt"
	"os"

	"repro/internal/ash"
)

func main() {
	rows, err := ash.RunTable4()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ashbench:", err)
		os.Exit(1)
	}
	fmt.Print(ash.FormatTable4(rows))
	fmt.Println("\npaper (Table 4, us):")
	fmt.Println("  DEC3100: separate-uncached 1630/3190, separate 1290/2230, C 1120/1750, ASH 1060/1600")
	fmt.Println("  DEC5000: separate-uncached  812/1640, separate  656/1280, C  597/976,  ASH  455/836")
}
