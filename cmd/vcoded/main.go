// Command vcoded is codegen-as-a-service: the multi-tenant HTTP server
// over the VCODE pipeline (internal/server).  Clients POST vasm or tinyc
// source — keyed by content hash — to /v1/exec (compile-if-needed plus
// one sandboxed call) or /v1/compile (compile-and-cache); every failure
// comes back as a typed JSON error.  Resident code shards across N
// machine arenas, tenants get fuel / resident-bytes / compile-concurrency
// quotas, and -snapshot gives warm-cache restarts: the resident programs
// are serialized on shutdown and re-verified back in on boot, with
// /readyz turning ready only once the restore warmup drains.
//
// Observability rides on the same listener: /metrics, /metrics.json,
// /debug/vars, /trace, /trace.txt, /healthz, /readyz, /v1/stats.
//
// Quotas file (-quotas): JSON object mapping tenant name to
// {"fuel_per_call": N, "max_resident_bytes": N,
// "max_compile_concurrency": N}; zero fields inherit the -default-*
// flags, negative means unlimited.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8753", "listen address")
		backend    = flag.String("backend", "mips", "simulated target (mips, sparc, alpha)")
		shards     = flag.Int("shards", 4, "machine arenas (code-cache shards)")
		workers    = flag.Int("workers", 2, "compile-pool workers per shard")
		maxEntries = flag.Int("max-entries", 512, "cached programs per shard")
		maxBytes   = flag.Int64("max-code-bytes", 1<<20, "resident code bytes per shard")
		queueBound = flag.Int64("queue-bound", 64, "compile-queue depth before 429 queue_full")
		callTO     = flag.Duration("call-timeout", 2*time.Second, "wall deadline per sandboxed call")

		defFuel  = flag.Uint64("default-fuel", 1<<20, "default per-call fuel quota")
		defBytes = flag.Int64("default-resident-bytes", 256<<10, "default resident-code quota per tenant")
		defConc  = flag.Int("default-compile-concurrency", 4, "default concurrent-compile quota per tenant")

		quotaPath    = flag.String("quotas", "", "JSON file of per-tenant quotas")
		allowUnknown = flag.Bool("allow-unknown", true, "admit tenants without a quota row under the defaults")
		snapshot     = flag.String("snapshot", "", "warm-cache snapshot path (restored on boot, saved on shutdown)")
		traceOn      = flag.Bool("trace", false, "record lifecycle spans (serve at /trace)")
	)
	flag.Parse()

	telemetry.SetEnabled(true)
	if *traceOn {
		trace.SetEnabled(true)
	}

	cfg := server.Config{
		Backend:              *backend,
		Shards:               *shards,
		WorkersPerShard:      *workers,
		MaxEntriesPerShard:   *maxEntries,
		MaxCodeBytesPerShard: *maxBytes,
		QueueBound:           *queueBound,
		CallTimeout:          *callTO,
		DefaultQuota: server.Quota{
			FuelPerCall:           *defFuel,
			MaxResidentBytes:      *defBytes,
			MaxCompileConcurrency: *defConc,
		},
		AllowUnknownTenants: *allowUnknown,
	}
	if *quotaPath != "" {
		raw, err := os.ReadFile(*quotaPath)
		if err != nil {
			log.Fatalf("vcoded: reading quotas: %v", err)
		}
		if err := json.Unmarshal(raw, &cfg.Tenants); err != nil {
			log.Fatalf("vcoded: parsing quotas %s: %v", *quotaPath, err)
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("vcoded: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("vcoded: serving on %s (backend=%s shards=%d workers/shard=%d)",
		*addr, *backend, *shards, *workers)

	// Restore after the listener is up: /healthz answers immediately,
	// /readyz flips only once the warmup flights drain.
	if n, err := srv.Restore(*snapshot); err != nil {
		log.Printf("vcoded: snapshot restore failed (serving cold): %v", err)
	} else if n > 0 {
		log.Printf("vcoded: restored %d warm programs from %s", n, *snapshot)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("vcoded: %v — shutting down", sig)
	case err := <-errc:
		log.Fatalf("vcoded: listener: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("vcoded: shutdown: %v", err)
	}
	if *snapshot != "" {
		if n, err := srv.SaveSnapshot(*snapshot); err != nil {
			log.Printf("vcoded: snapshot save failed: %v", err)
		} else {
			log.Printf("vcoded: saved %d warm programs to %s", n, *snapshot)
		}
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "vcoded: bye")
}
