// Command vcoded is codegen-as-a-service: the multi-tenant HTTP server
// over the VCODE pipeline (internal/server).  Clients POST vasm or tinyc
// source — keyed by content hash — to /v1/exec (compile-if-needed plus
// one sandboxed call) or /v1/compile (compile-and-cache); every failure
// comes back as a typed JSON error.  Resident code shards across N
// machine arenas, tenants get fuel / resident-bytes / compile-concurrency
// / request-rate quotas, and -snapshot gives warm-cache restarts: the
// resident programs are serialized on shutdown and re-verified back in on
// boot, with /readyz turning ready only once the restore warmup drains.
//
// Crash safety: -journal adds an incremental write-ahead journal beside
// the snapshot.  Every compile is group-committed (fsynced) before its
// response reports durable=true, a periodic checkpoint folds journal +
// snapshot into a fresh snapshot generation, and recovery replays the
// last snapshot plus the journal tail — stopping at the first torn
// record — so a SIGKILL at any instant loses nothing acknowledged
// durable.  Recovery routes units through the *current* -shards value,
// so a snapshot taken with N shards restores into an M-shard server.
//
// Overload protection: per-tenant token-bucket rate limiting (-default-rate
// / -default-burst or per-tenant quota rows), a per-key compile circuit
// breaker (-breaker-threshold / -breaker-cooldown), and global load
// shedding on compile-queue depth (-shed-low / -shed-high) with request
// priorities 0–9.  All three reject with typed 429/503 bodies carrying
// jittered Retry-After hints.
//
// Observability rides on the same listener: /metrics, /metrics.json,
// /debug/vars, /debug/pprof/*, /trace, /trace.txt, /healthz, /readyz,
// /v1/stats, and /debug/bundle — a one-request gzipped diagnostic
// archive (flight-recorder ring + exemplars, metrics, trace, goroutine
// dump, shard stats, journal positions).  The flight recorder (-flight,
// on by default) records every request's admission/cache/journal/exec
// decision chain into a lock-light ring; SIGQUIT writes a bundle to
// -bundle-dir without stopping the server, and a panic on the serve
// path writes one on the way down.  The SLO watchdog (-slo-p99,
// -slo-error-rate, -slo-window) tracks windowed p99 latency and
// server-fault error rate per tenant and globally, exports slo.*
// gauges, and annotates /readyz with "degraded:" reasons while an
// objective is breached.
//
// Logs are structured (log/slog) with -log-format=text|json; request
// lines carry request_id, tenant, shard and key at Debug level
// (-log-level=debug).
//
// Quotas file (-quotas): JSON object mapping tenant name to
// {"fuel_per_call": N, "max_resident_bytes": N,
// "max_compile_concurrency": N, "rate_per_sec": F, "burst": N,
// "priority": N}; zero fields inherit the -default-* flags, negative
// means unlimited.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flightrec"
	"repro/internal/server"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fatal logs at Error and exits — the slog replacement for log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		addr       = flag.String("addr", ":8753", "listen address")
		backend    = flag.String("backend", "mips", "simulated target (mips, sparc, alpha)")
		shards     = flag.Int("shards", 4, "machine arenas (code-cache shards)")
		workers    = flag.Int("workers", 2, "compile-pool workers per shard")
		maxEntries = flag.Int("max-entries", 512, "cached programs per shard")
		maxBytes   = flag.Int64("max-code-bytes", 1<<20, "resident code bytes per shard")
		queueBound = flag.Int64("queue-bound", 64, "compile-queue depth before 429 queue_full")
		callTO     = flag.Duration("call-timeout", 2*time.Second, "wall deadline per sandboxed call")

		defFuel  = flag.Uint64("default-fuel", 1<<20, "default per-call fuel quota")
		defBytes = flag.Int64("default-resident-bytes", 256<<10, "default resident-code quota per tenant")
		defConc  = flag.Int("default-compile-concurrency", 4, "default concurrent-compile quota per tenant")
		defRate  = flag.Float64("default-rate", 0, "default tenant request rate (req/s; 0 = unlimited)")
		defBurst = flag.Int("default-burst", 0, "default rate-limit burst (0 = one second of rate)")
		defPrio  = flag.Int("default-priority", 0, "default shed priority 1-9 (0 = 5)")

		quotaPath    = flag.String("quotas", "", "JSON file of per-tenant quotas")
		allowUnknown = flag.Bool("allow-unknown", true, "admit tenants without a quota row under the defaults")
		snapshot     = flag.String("snapshot", "", "warm-cache snapshot path (restored on boot, saved on shutdown)")
		journalPath  = flag.String("journal", "", "write-ahead journal path (requires -snapshot; makes acks durable)")
		fsyncEvery   = flag.Duration("fsync-interval", 2*time.Millisecond, "journal group-commit window")
		ckptEvery    = flag.Duration("checkpoint-interval", 30*time.Second, "journal+snapshot compaction period (0 = only at shutdown)")
		drainTO      = flag.Duration("drain-timeout", 5*time.Second, "in-flight drain deadline on SIGTERM")

		breakerN  = flag.Int("breaker-threshold", 3, "consecutive compile failures to open a key's circuit (negative disables)")
		breakerCD = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit hold before the half-open probe")
		shedLow   = flag.Int64("shed-low", 0, "queue depth shedding priority<4 (0 = half of shards*queue-bound)")
		shedHigh  = flag.Int64("shed-high", 0, "queue depth shedding priority<8 (0 = 90% of shards*queue-bound)")

		chaosSeed      = flag.Int64("chaos-seed", 0, "fault-injection seed (enables chaos when any -chaos-* rate is set)")
		chaosJrnlWrite = flag.Float64("chaos-journal-write-rate", 0, "injected journal write-failure probability")
		chaosJrnlSync  = flag.Float64("chaos-journal-sync-rate", 0, "injected journal fsync-failure probability")
		chaosCompile   = flag.Float64("chaos-compile-rate", 0, "injected compile-failure probability")

		traceOn  = flag.Bool("trace", false, "record lifecycle spans (serve at /trace)")
		flightOn = flag.Bool("flight", true, "record per-request flight events (served in /debug/bundle)")

		bundleDir = flag.String("bundle-dir", ".", "directory for SIGQUIT/panic diagnostic bundles")

		sloP99    = flag.Duration("slo-p99", 250*time.Millisecond, "p99 request-latency objective")
		sloErrPct = flag.Float64("slo-error-rate", 0.5, "server-fault error-rate objective in [0,1)")
		sloWindow = flag.Duration("slo-window", 30*time.Second, "SLO evaluation window")
		sloOff    = flag.Bool("slo-disable", false, "disable the SLO watchdog")

		logFormat = flag.String("log-format", "text", "log output format (text, json)")
		logLevel  = flag.String("log-level", "info", "log level (debug, info, warn, error)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "vcoded: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "vcoded: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	telemetry.SetEnabled(true)
	if *traceOn {
		trace.SetEnabled(true)
	}
	flightrec.SetEnabled(*flightOn)
	if *journalPath != "" && *snapshot == "" {
		fatal("-journal requires -snapshot (the file checkpoints compact into)")
	}

	cfg := server.Config{
		Backend:              *backend,
		Shards:               *shards,
		WorkersPerShard:      *workers,
		MaxEntriesPerShard:   *maxEntries,
		MaxCodeBytesPerShard: *maxBytes,
		QueueBound:           *queueBound,
		CallTimeout:          *callTO,
		DefaultQuota: server.Quota{
			FuelPerCall:           *defFuel,
			MaxResidentBytes:      *defBytes,
			MaxCompileConcurrency: *defConc,
			RatePerSec:            *defRate,
			Burst:                 *defBurst,
			Priority:              *defPrio,
		},
		AllowUnknownTenants: *allowUnknown,
		FsyncInterval:       *fsyncEvery,
		CheckpointInterval:  *ckptEvery,
		BreakerThreshold:    *breakerN,
		BreakerCooldown:     *breakerCD,
		ShedLowWatermark:    *shedLow,
		ShedHighWatermark:   *shedHigh,
		SLO: slo.Objectives{
			P99NS:     uint64(*sloP99),
			ErrorRate: *sloErrPct,
			Window:    *sloWindow,
		},
		SLODisable: *sloOff,
		Logger:     logger,
	}
	if *chaosJrnlWrite > 0 || *chaosJrnlSync > 0 || *chaosCompile > 0 {
		cfg.Injector = faultinject.New(faultinject.Config{
			Seed:                  *chaosSeed,
			JournalWriteErrorRate: *chaosJrnlWrite,
			JournalSyncErrorRate:  *chaosJrnlSync,
			CompileErrorRate:      *chaosCompile,
		})
		logger.Info("chaos enabled",
			"seed", *chaosSeed, "journal_write", *chaosJrnlWrite,
			"journal_sync", *chaosJrnlSync, "compile", *chaosCompile)
	}
	if *quotaPath != "" {
		raw, err := os.ReadFile(*quotaPath)
		if err != nil {
			fatal("reading quotas", "err", err)
		}
		if err := json.Unmarshal(raw, &cfg.Tenants); err != nil {
			fatal("parsing quotas", "path", *quotaPath, "err", err)
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		fatal("server init", "err", err)
	}

	// A panic on any serve goroutine takes the process down; write a
	// bundle on the way so the incident is diagnosable post-mortem.
	// http.Server recovers handler panics itself, so this catches the
	// main-goroutine path; the handler wrapper below catches the rest.
	defer func() {
		if r := recover(); r != nil {
			if path, err := srv.WriteBundleFile(*bundleDir, "panic"); err == nil {
				logger.Error("panic — bundle written", "panic", fmt.Sprint(r), "bundle", path)
			}
			panic(r)
		}
	}()

	handlerMux := srv.Handler()
	hs := &http.Server{Addr: *addr, Handler: panicBundler(handlerMux, srv, *bundleDir, logger)}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving",
		"addr", *addr, "backend", *backend, "shards", *shards, "workers_per_shard", *workers)

	// Recover after the listener is up: /healthz answers immediately,
	// /readyz flips only once the warmup flights drain.  Recovery is
	// tolerant — a corrupt snapshot or torn journal boots cold or
	// partially warm with a typed line, never fatally.
	st, err := srv.Recover(*snapshot, *journalPath)
	if err != nil {
		logger.Warn("recovery degraded", "stats", st.String(), "err", err)
	} else if st.Warm > 0 || *snapshot != "" {
		logger.Info("recovered", "stats", st.String())
	}

	// SIGQUIT: write a diagnostic bundle and keep serving — the
	// operator's "what is it doing right now" hook.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			if path, err := srv.WriteBundleFile(*bundleDir, "sigquit"); err != nil {
				logger.Error("bundle write failed", "err", err)
			} else {
				logger.Info("bundle written", "path", path)
			}
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "timeout", drainTO.String())
	case err := <-errc:
		fatal("listener", "err", err)
	}

	// Graceful shutdown: stop admitting (readyz flips not-ready at
	// once), give in-flight requests the drain window, then write the
	// final snapshot generation and release everything.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if *journalPath != "" {
		if err := srv.Checkpoint(); err != nil {
			logger.Error("final checkpoint failed", "err", err)
		} else {
			logger.Info("final checkpoint written", "path", *snapshot)
		}
	} else if *snapshot != "" {
		if n, err := srv.SaveSnapshot(*snapshot); err != nil {
			logger.Error("snapshot save failed", "err", err)
		} else {
			logger.Info("snapshot saved", "programs", n, "path", *snapshot)
		}
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "vcoded: bye")
}

// panicBundler wraps the mux so a panicking handler writes a diagnostic
// bundle before re-panicking (net/http then logs the panic and kills
// only that connection — the bundle preserves the request chain that
// led there).
func panicBundler(next http.Handler, srv *server.Server, dir string, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if path, err := srv.WriteBundleFile(dir, "panic"); err == nil {
					logger.Error("handler panic — bundle written",
						"panic", fmt.Sprint(rec), "path", r.URL.Path, "bundle", path)
				} else {
					logger.Error("handler panic — bundle failed",
						"panic", fmt.Sprint(rec), "err", err)
				}
				panic(rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}
