package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/alpha"
	"repro/internal/cgbench"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/server"
	"repro/internal/sparc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// jsonReport is the machine-readable benchmark record written by -json.
// The schema string is versioned so downstream tooling (CI key checks,
// the BENCH_pr4.json artifact) can detect format drift.
//
// v2 bounds the record: the telemetry section carries every histogram as
// a fixed-size Summary (count/min/max/mean/p50/p99) but only the top-N
// scalar counters by value — TelemetryElided says how many were cut — and
// the embedded telemetry event dump of v1 is gone (lifecycle spans now go
// to the -trace Chrome-trace file, which Perfetto loads directly).
type jsonReport struct {
	Schema          string                  `json:"schema"`
	Mode            string                  `json:"mode"`
	Codegen         map[string]codegenStats `json:"codegen"`
	Cache           *cacheStats             `json:"cache,omitempty"`
	Compile         *compileStats           `json:"compile,omitempty"`
	Telemetry       map[string]any          `json:"telemetry,omitempty"`
	TelemetryElided int                     `json:"telemetry_elided,omitempty"`
	Profile         *profileStats           `json:"profile,omitempty"`
	Edges           *edgeStats              `json:"edges,omitempty"`
	Serve           *serveStats             `json:"serve,omitempty"`
	Exec            map[string]execStats    `json:"exec,omitempty"`
	Tier3           map[string]tier3Stats   `json:"tier3,omitempty"`
	Superblock      *superblockStats        `json:"superblock,omitempty"`
}

// tier3Stats is the per-backend superblock-tier headline: simulated
// cycles per call of the tier-2 body vs the tier-3 optimized body on the
// loop workload, and their ratio.  Cycle counts are deterministic, so
// benchdiff can gate them with a tight band.
type tier3Stats struct {
	Tier2CyclesPerCall float64 `json:"tier2_cycles_per_call"`
	CyclesPerCall      float64 `json:"cycles_per_call"`
	Speedup            float64 `json:"speedup"`
}

// superblockStats is the tier's lifecycle counters as observed by the
// -tier3 pipeline run (interpret → compile → superblock → bias-flip
// deopt on every backend).  Values are workload-dependent; benchdiff
// gates on the keys staying present.
type superblockStats struct {
	Formed    uint64 `json:"formed"`
	Installed uint64 `json:"installed"`
	SideExits uint64 `json:"side_exits"`
	Deopt     uint64 `json:"deopt"`
}

// execStats is the per-backend execution-engine headline: sandboxed warm
// calls/sec through the predecoded direct-threaded dispatch loop, and
// its speedup over the fetch/switch oracle on the identical workload.
type execStats struct {
	CallsPerSec     float64 `json:"calls_per_sec"`
	SpeedupVsSwitch float64 `json:"speedup_vs_switch"`
}

// serveStats summarizes a -serve-url / -serve-soak run against the
// vcoded server: the load's throughput and tail latency, the typed-error
// mix, and the server's own per-shard / per-tenant accounting.
type serveStats struct {
	Calls        uint64               `json:"calls"`
	Errors       uint64               `json:"errors"`
	Retries      uint64               `json:"retries"`
	CallsPerSec  float64              `json:"calls_per_sec"`
	P50NS        uint64               `json:"p50_ns"`
	P99NS        uint64               `json:"p99_ns"`
	RecoveryMS   float64              `json:"recovery_ms"`
	RateLimited  uint64               `json:"rate_limited"`
	Shed         uint64               `json:"shed"`
	BreakerOpen  uint64               `json:"breaker_open"`
	ErrorsByCode map[string]uint64    `json:"errors_by_code,omitempty"`
	Shards       []server.ShardStats  `json:"shards,omitempty"`
	Tenants      []server.TenantStats `json:"tenants,omitempty"`
	// CallsPerSecByBackend attributes throughput to the execution
	// engine per port: a clean (fault-free) server per backend under
	// the same mixed load.  The aggregate CallsPerSec above remains
	// the fault-injected soak headline.
	CallsPerSecByBackend map[string]float64 `json:"calls_per_sec_by_backend,omitempty"`
	// SLO is the server's watchdog view at the end of the run —
	// benchdiff gates on the presence of these keys so the
	// observability surface can't silently regress.
	SLO *sloStats `json:"slo,omitempty"`
}

// sloStats is the flattened slice of the server's SLO snapshot the
// bench record keeps.
type sloStats struct {
	GlobalP99NS     uint64   `json:"global_p99_ns"`
	GlobalErrorRate float64  `json:"global_error_rate"`
	LatencyBreaches uint64   `json:"latency_breaches"`
	ErrorBreaches   uint64   `json:"error_breaches"`
	BudgetBurnMS    uint64   `json:"budget_burn_ms"`
	Degraded        []string `json:"degraded,omitempty"`
}

// codegenStats is the headline paper number per backend: host nanoseconds
// per generated instruction through the dynamic-register interface, and
// through hard-coded register names (§5.3's ~2x-cheaper path).
type codegenStats struct {
	NsPerInsn     float64 `json:"ns_per_insn"`
	HardNsPerInsn float64 `json:"hard_ns_per_insn"`
}

// cacheStats summarizes the -cache workload.
type cacheStats struct {
	HitRate       float64 `json:"hit_rate"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	CallsPerSec   float64 `json:"calls_per_sec"`
	Compiles      uint64  `json:"compiles"`
	Evictions     uint64  `json:"evictions"`
	Entries       int64   `json:"entries"`
}

// profileStats summarizes a -profile run (the full sample set goes to the
// pprof file; this is the headline for the JSON record).
type profileStats struct {
	Samples uint64  `json:"samples"`
	Stride  uint64  `json:"stride"`
	Path    string  `json:"path"`
	TopFunc string  `json:"top_func,omitempty"`
	TopPct  float64 `json:"top_pct,omitempty"`
}

// edgeStats summarizes the -annotate branch-profile demo.
type edgeStats struct {
	Events   uint64  `json:"events"`
	Stride   uint64  `json:"stride"`
	Branches int     `json:"branches"`
	TopBias  float64 `json:"top_bias"`
}

func newReport(mode string) *jsonReport {
	return &jsonReport{
		Schema:  "cgbench/v2",
		Mode:    mode,
		Codegen: map[string]codegenStats{},
	}
}

// measureCodegen fills the per-backend ns/generated-instruction numbers.
// All three ports run the same E1 workload; iters trades precision for
// runtime (the -cache path uses a short pass just to populate the keys).
func (r *jsonReport) measureCodegen(iters int) error {
	backends := []core.Backend{mips.New(), sparc.New(), alpha.New()}
	for _, bk := range backends {
		soft, err := emitNsPerInsn(bk, iters, false)
		if err != nil {
			return err
		}
		hard, err := emitNsPerInsn(bk, iters, true)
		if err != nil {
			return err
		}
		r.Codegen[bk.Name()] = codegenStats{NsPerInsn: soft, HardNsPerInsn: hard}
	}
	return nil
}

// emitNsPerInsn times the E1 emit workload on one backend: one warm-up
// pass, then the best of three timed runs of iters repetitions each —
// the minimum is the run least disturbed by the scheduler and GC, which
// is what the CI regression gate should compare.
func emitNsPerInsn(bk core.Backend, iters int, hard bool) (float64, error) {
	a := core.NewAsm(bk)
	_, n, err := cgbench.EmitVCODE(a, cgbench.Blocks, hard)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, n, err = cgbench.EmitVCODE(a, cgbench.Blocks, hard); err != nil {
				return 0, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters*n)
		if pass == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// measureExec fills the per-backend engine comparison: the same JIT-
// compiled loop runs warm on the fetch/switch oracle and then on the
// threaded engine, best-of-three timed passes each, so the record
// attributes the call-rate headline to the engine rather than to cache
// or driver effects.
func (r *jsonReport) measureExec(calls int) error {
	// Span recording off for the measurement: tens of thousands of
	// per-call spans would both distort the rate and flush the workload's
	// lifecycle chain out of the bounded ring before -trace snapshots it.
	if trace.Enabled() {
		trace.SetEnabled(false)
		defer trace.SetEnabled(true)
	}
	r.Exec = map[string]execStats{}
	for _, target := range []string{"mips", "sparc", "alpha"} {
		m, err := jit.NewMachineTarget(target, mem.Uncosted)
		if err != nil {
			return err
		}
		fn, err := m.Compile(jit.Synthetic(1))
		if err != nil {
			return err
		}
		rate := func(engine core.Engine) (float64, error) {
			if err := m.Core().SetEngine(engine); err != nil {
				return 0, err
			}
			best := 0.0
			for pass := 0; pass < 3; pass++ {
				start := time.Now()
				for i := 0; i < calls; i++ {
					got, _, err := m.Run(fn, 10)
					if err != nil {
						return 0, err
					}
					if got != 395 {
						return 0, fmt.Errorf("exec measure (%s, engine %v): got %d, want 395", target, engine, got)
					}
				}
				if cps := float64(calls) / time.Since(start).Seconds(); cps > best {
					best = cps
				}
			}
			return best, nil
		}
		sw, err := rate(core.EngineSwitch)
		if err != nil {
			return err
		}
		th, err := rate(core.EngineThreaded)
		if err != nil {
			return err
		}
		r.Exec[target] = execStats{CallsPerSec: th, SpeedupVsSwitch: th / sw}
	}
	return nil
}

// attachTelemetry copies a bounded registry snapshot into the report:
// histogram summaries plus the top scalar counters, never the full
// metric set.  Call after the workload, with telemetry enabled.
func (r *jsonReport) attachTelemetry() {
	const topN = 48
	r.Telemetry, r.TelemetryElided = telemetry.Default.SummarySnapshot(topN)
}

// write emits the report as indented JSON; path "-" means stdout.
func (r *jsonReport) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
