package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/profile"
)

// runCacheBench drives the concurrent code-cache subsystem end to end: a
// mixed key stream of bytecode functions compiled and executed across
// goroutines.  It demonstrates — and *verifies*, exiting nonzero on
// violation — the cache's three contract points:
//
//  1. single-flight: N concurrent requests for one cold key trigger
//     exactly one compile;
//  2. warm cache: repeated keys are served with zero recompiles (the hit
//     path does no code generation);
//  3. eviction: under a key stream larger than capacity, resident
//     simulator code memory stays bounded while total compiled bytes
//     grow without bound.
//
// When prof is non-nil the simulator is PC-sampled for the whole run;
// when rep is non-nil the summary lands in the JSON record under "cache".
func runCacheBench(workers, keys, capacity, requests int, engine core.Engine, prof *profile.Profiler, rep *jsonReport) error {
	if workers <= 0 {
		// At least 4 even on small hosts: the point is contention, not
		// parallel speedup.
		workers = max(4, runtime.GOMAXPROCS(0))
	}
	if keys <= capacity {
		return fmt.Errorf("need -keys (%d) > -capacity (%d) to exercise eviction", keys, capacity)
	}
	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		return err
	}
	if err := m.Core().SetEngine(engine); err != nil {
		return err
	}
	fmt.Printf("execution engine: %s\n", engine)
	if prof != nil {
		if err := prof.Attach(m.Core()); err != nil {
			return err
		}
		defer prof.Detach(m.Core())
	}
	// Name "bench" re-exports the cache counters through the telemetry
	// registry as codecache.bench.* (live, whether -metrics is on or not;
	// rendering is what costs, not registration).
	cache := codecache.New(codecache.Config{Machine: m.Core(), MaxEntries: capacity, Name: "bench"})

	progs := make([]*jit.Func, keys)
	cacheKeys := make([]string, keys)
	for i := range progs {
		progs[i] = jit.Synthetic(int32(i))
		cacheKeys[i] = progs[i].CacheKey()
	}
	// f(10) for Synthetic(k) is sum i*i + k for i in 1..10 = 385 + 10k.
	const arg, sumSq = 10, 385
	exec := func(i int) error {
		// Probe-fast, compile-slow: Get is the allocation-free hit path
		// (no compile closure, no lookup span), so the warm stream
		// measures engine throughput rather than driver overhead.  The
		// cold path still funnels through GetOrCompile for single-flight.
		fn, ok := cache.Get(cacheKeys[i])
		if !ok {
			var err error
			fn, err = cache.GetOrCompile(cacheKeys[i], func() (*core.Func, error) {
				return m.Compile(progs[i])
			})
			if err != nil {
				return err
			}
		}
		got, _, err := m.Run(fn, arg)
		if err != nil {
			return err
		}
		if want := int32(sumSq + arg*i); got != want {
			return fmt.Errorf("key %d: got %d, want %d (cache served wrong code)", i, got, want)
		}
		return nil
	}

	fail := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			fail++
		}
		fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
	}

	// --- phase 1: single-flight on a cold key ---
	fmt.Printf("code cache: %d workers, %d keys, capacity %d, %d requests\n\n", workers, keys, capacity, requests)
	fmt.Println("phase 1: single-flight (all workers rush one cold key)")
	var wg sync.WaitGroup
	var errs atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := exec(0); err != nil {
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	s := cache.Snapshot()
	check(errs.Load() == 0, "all %d rushed requests succeeded", workers)
	check(s.Compiles == 1, "compiles = %d (want exactly 1 for %d concurrent requests)", s.Compiles, workers)
	check(s.Misses == 1 && s.Hits+s.Coalesced == uint64(workers-1),
		"1 miss, %d hits + %d coalesced", s.Hits, s.Coalesced)

	// --- phase 2: warm-cache throughput, zero recompiles ---
	fmt.Println("\nphase 2: warm cache (mixed hot-key stream, every worker)")
	hot := capacity
	for i := 0; i < hot; i++ {
		if err := exec(i); err != nil {
			return err
		}
	}
	before := cache.Snapshot()
	var lookupsPerSec float64
	for _, w := range []int{1, workers} {
		start := time.Now()
		var wg2 sync.WaitGroup
		per := requests / w
		for g := 0; g < w; g++ {
			wg2.Add(1)
			go func(g int) {
				defer wg2.Done()
				for i := 0; i < per; i++ {
					k := cacheKeys[(g+i*7)%hot]
					if _, ok := cache.Get(k); !ok {
						errs.Add(1)
					}
				}
			}(g)
		}
		wg2.Wait()
		el := time.Since(start)
		lookupsPerSec = float64(per*w) / el.Seconds()
		fmt.Printf("  %2d worker(s): %9.0f lookups/sec (%v for %d)\n",
			w, lookupsPerSec, el.Round(time.Microsecond), per*w)
	}
	// A slice of the stream also executes, to show the hit path feeds
	// straight into the simulator.  Calls serialize on the machine lock,
	// so the single-worker rate is the engine-bound ceiling and the
	// multi-worker rate shows what lock handoff costs; the JSON record
	// carries the engine-bound number.  The window must be wide enough
	// that goroutine spawn and timer overhead do not dominate: at
	// threaded-engine call rates, 50 calls/worker measured a ~75µs
	// window and under-reported throughput by ~2x.
	const execTotal = 2000
	var callsPerSec float64
	for _, w := range []int{workers, 1} {
		callsStart := time.Now()
		var wg3 sync.WaitGroup
		per := execTotal / w
		for g := 0; g < w; g++ {
			wg3.Add(1)
			go func(g int) {
				defer wg3.Done()
				for i := 0; i < per; i++ {
					if err := exec((g + i) % hot); err != nil {
						errs.Add(1)
					}
				}
			}(g)
		}
		wg3.Wait()
		el := time.Since(callsStart)
		callsPerSec = float64(per*w) / el.Seconds()
		fmt.Printf("  %2d worker(s): %9.0f calls/sec (%v for %d)\n",
			w, callsPerSec, el.Round(time.Microsecond), per*w)
	}
	after := cache.Snapshot()
	check(errs.Load() == 0, "warm stream served without errors")
	check(after.Compiles == before.Compiles,
		"recompiles during warm stream = %d (hit path does no codegen)", after.Compiles-before.Compiles)

	// --- phase 3: eviction bounds resident code under overflow ---
	fmt.Println("\nphase 3: eviction (key stream larger than capacity)")
	maxFn := 0
	var wg4 sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg4.Add(1)
		go func(g int) {
			defer wg4.Done()
			for i := 0; i < 2*keys/workers+1; i++ {
				if err := exec((g*keys/workers + i) % keys); err != nil {
					errs.Add(1)
				}
			}
		}(g)
	}
	wg4.Wait()
	for i := 0; i < keys; i++ { // any resident function bounds the size of all (same shape)
		if fn, ok := cache.Get(cacheKeys[i]); ok && fn.SizeBytes() > maxFn {
			maxFn = fn.SizeBytes()
		}
	}
	s = cache.Snapshot()
	resident := m.Core().CodeBytesResident()
	totalCompiled := uint64(s.Compiles) * uint64(maxFn)
	bound := uint64(capacity+1)*uint64(maxFn+64) + 4096 // +1 in-flight, divide-helper slack
	check(errs.Load() == 0, "overflow stream served without errors")
	check(s.Entries <= int64(capacity), "entries %d <= capacity %d", s.Entries, capacity)
	check(s.Evictions > 0, "evictions = %d (overflow stream must evict)", s.Evictions)
	check(resident <= bound,
		"resident code %d bytes <= bound %d (total ever compiled ≈ %d bytes)", resident, bound, totalCompiled)

	final := cache.Snapshot()
	fmt.Println("\n" + final.String())
	if rep != nil {
		rep.Cache = &cacheStats{
			HitRate:       hitRate(final.Hits, final.Misses),
			LookupsPerSec: lookupsPerSec,
			CallsPerSec:   callsPerSec,
			Compiles:      final.Compiles,
			Evictions:     final.Evictions,
			Entries:       final.Entries,
		}
	}
	if fail > 0 {
		return fmt.Errorf("%d invariant(s) violated", fail)
	}
	return nil
}

// hitRate is the warm-path fraction in [0,1].
func hitRate(hits, misses uint64) float64 {
	if total := hits + misses; total > 0 {
		return float64(hits) / float64(total)
	}
	return 0
}
