package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/regtest"
	"repro/internal/superblock"
	"repro/internal/telemetry"
)

// The -tier3 workload measures the profile-guided superblock tier
// (internal/superblock) the way CI gates it: simulated cycles per call of
// the tier-2 body vs the tier-3 optimized body on a loop-heavy workload,
// per backend.  Cycle counts are deterministic (no host-time noise), so
// the benchdiff tolerance band can be tight.
//
// Before measuring it drives the full adaptive pipeline — interpret →
// compile → superblock → bias-flip de-optimization — through
// jit.Adaptive on every backend, so the superblock.* telemetry counters
// in the record reflect the real tier lifecycle, not hand-incremented
// values.

// tier3SpeedupFloor is the acceptance bar: the optimized body must cost
// at least this factor fewer cycles per call than tier 2 on the hot
// path.  1.15 is the ">=15% cycles/call win" from the tier's design
// goals; the committed baseline then holds the measured value and
// benchdiff catches drift back toward the floor.
const tier3SpeedupFloor = 1.15

// buildTier3Loop emits the canonical hot loop the superblock tier
// targets (the same shape as the oracle's loopsum): a counted loop whose
// body multiplies by a constant (strength-reducible), reloads the same
// address (load-forwardable), and spills through a stack slot
// (store-to-load-forwardable).  ty is the accumulator type — the
// target's native word, so memory forwarding is full-width and legal.
func buildTier3Loop(a *core.Asm, ty core.Type) (*core.Func, error) {
	a.SetName("tier3loop")
	args, err := a.BeginTypes([]core.Type{core.TypeI, core.TypeP}, core.Leaf)
	if err != nil {
		return nil, err
	}
	n, p := args[0], args[1]
	var sum, i, t1, t2, t3 core.Reg
	for _, r := range []*core.Reg{&sum, &i} {
		if *r, err = a.GetReg(core.Var); err != nil {
			return nil, err
		}
	}
	for _, r := range []*core.Reg{&t1, &t2, &t3} {
		if *r, err = a.GetReg(core.Temp); err != nil {
			return nil, err
		}
	}
	slot := a.Local(ty)
	a.SetI(ty, sum, 0)
	a.SetI(core.TypeI, i, 0)
	loop, done := a.NewLabel(), a.NewLabel()
	a.Bind(loop)
	a.Br(core.OpBge, core.TypeI, i, n, done)
	a.LdI(ty, t1, p, 0)
	a.ALUI(core.OpMul, ty, t2, t1, 8)
	a.ALU(core.OpAdd, ty, sum, sum, t2)
	a.LdI(ty, t3, p, 0)
	a.ALU(core.OpAdd, ty, sum, sum, t3)
	a.StLocal(ty, sum, slot)
	a.LdLocal(ty, t3, slot)
	a.ALU(core.OpAdd, ty, sum, sum, t3)
	a.ALUI(core.OpAdd, core.TypeI, i, i, 1)
	a.Jmp(loop)
	a.Bind(done)
	a.Ret(ty, sum)
	return a.End()
}

// runTier3Pipeline exercises the full three-tier lifecycle on one
// backend: BiasedLoop is driven hot with a stable bias until the
// superblock tier installs, then the bias flips and the side-exit poll
// must de-optimize it back to tier 2.  This is what makes the record's
// superblock.formed/installed/side_exits/deopt counters real.
func runTier3Pipeline(target string) error {
	m, err := jit.NewMachineTarget(target, mem.Uncosted)
	if err != nil {
		return err
	}
	ad := jit.NewAdaptive(m, 3)
	ep := profile.NewEdgeProfiler(1)
	if err := ep.Attach(m.Core()); err != nil {
		return err
	}
	ad.EnableSuperblocks(jit.SuperblockConfig{
		Threshold: 8, Edges: ep, DeoptFactor: 8, PollEvery: 2, Cooldown: 6,
	})
	f := jit.BiasedLoop()
	call := func(x, want int32) error {
		got, _, err := ad.Call(f, x)
		if err != nil {
			return fmt.Errorf("tier3 pipeline (%s): %s(%d): %w", target, f.Name, x, err)
		}
		if got != want {
			return fmt.Errorf("tier3 pipeline (%s): %s(%d) = %d, want %d", target, f.Name, x, got, want)
		}
		return nil
	}
	for i := 0; i < 200 && !ad.Superblocked(f); i++ {
		if err := call(10, 100); err != nil {
			return err
		}
		ad.WaitPromotions()
	}
	if !ad.Superblocked(f) {
		return fmt.Errorf("tier3 pipeline (%s): function never reached tier 3", target)
	}
	// Bias flip: every iteration now leaves through the side exit and the
	// counter poll must evict the superblock.
	for i := 0; i < 60 && ad.Superblocked(f); i++ {
		if err := call(90, 200); err != nil {
			return err
		}
	}
	if ad.Superblocked(f) {
		return fmt.Errorf("tier3 pipeline (%s): bias flip never de-optimized", target)
	}
	return nil
}

// measureTier3 builds the loop workload on one regtest target, forms a
// superblock from a trained edge profile, and returns the simulated
// cycles of one 200-iteration call on each tier.
func measureTier3(tgt regtest.Target) (c2, c3 uint64, err error) {
	const iters = 200
	word := core.TypeI
	if tgt.Backend.PtrBytes() == 8 {
		word = core.TypeL
	}
	a := core.NewAsm(tgt.Backend)
	a.Record(true)
	fn2, err := buildTier3Loop(a, word)
	if err != nil {
		return 0, 0, err
	}
	rec := a.TakeRecording()
	if rec == nil {
		return 0, 0, fmt.Errorf("tier3 (%s): no recording", tgt.Name)
	}
	m2, m3 := tgt.NewMachine(), tgt.NewMachine()
	data, err := m2.Alloc(64)
	if err != nil {
		return 0, 0, err
	}
	if _, err := m3.Alloc(64); err != nil {
		return 0, 0, err
	}
	if err := m2.Install(fn2); err != nil {
		return 0, 0, err
	}
	ep := profile.NewEdgeProfiler(1)
	if err := ep.Attach(m2); err != nil {
		return 0, 0, err
	}
	pv := regtest.MakeValue(core.TypeP, data, tgt.Backend.PtrBytes())
	if _, err := m2.Call(fn2, core.I(iters), pv); err != nil {
		return 0, 0, err
	}
	plan, err := superblock.Form(rec, func(site int) (uint64, uint64, bool) {
		return ep.EdgeAt(fn2.Addr() + 4*uint64(site))
	}, superblock.Options{})
	if err != nil {
		return 0, 0, err
	}
	if !plan.Interesting() {
		return 0, 0, fmt.Errorf("tier3 (%s): trained plan not interesting", tgt.Name)
	}
	fn3, _, err := plan.Compile(core.NewAsm(tgt.Backend))
	if err != nil {
		return 0, 0, err
	}
	if err := m3.Install(fn3); err != nil {
		return 0, 0, err
	}
	ep.Detach(m2) // measure tier 2 without probe overhead
	cycles := func(m *core.Machine, fn *core.Func) (uint64, error) {
		v, st, err := m.CallWithStats(context.Background(), core.CallOpts{}, fn, core.I(iters), pv)
		if err != nil {
			return 0, err
		}
		_ = v
		return st.Cycles, nil
	}
	if c2, err = cycles(m2, fn2); err != nil {
		return 0, 0, err
	}
	if c3, err = cycles(m3, fn3); err != nil {
		return 0, 0, err
	}
	return c2, c3, nil
}

// runTier3Bench is the -tier3 mode: pipeline lifecycle on every backend,
// then the deterministic cycles-per-call comparison, printed as a table
// and recorded in the report (when -json is on) for the benchdiff gate.
func runTier3Bench(rep *jsonReport) error {
	for _, target := range []string{"mips", "sparc", "alpha"} {
		if err := runTier3Pipeline(target); err != nil {
			return err
		}
	}
	if rep != nil {
		rep.Tier3 = map[string]tier3Stats{}
	}
	fmt.Printf("%-8s %16s %16s %9s\n", "backend", "tier2 cyc/call", "tier3 cyc/call", "speedup")
	for _, tgt := range regtest.Targets() {
		c2, c3, err := measureTier3(tgt)
		if err != nil {
			return err
		}
		speedup := float64(c2) / float64(c3)
		fmt.Printf("%-8s %16d %16d %8.2fx\n", tgt.Name, c2, c3, speedup)
		if speedup < tier3SpeedupFloor {
			return fmt.Errorf("tier3 (%s): speedup %.3fx below the %.2fx floor (tier-2 %d cycles, tier-3 %d)",
				tgt.Name, speedup, tier3SpeedupFloor, c2, c3)
		}
		if rep != nil {
			rep.Tier3[tgt.Name] = tier3Stats{
				Tier2CyclesPerCall: float64(c2),
				CyclesPerCall:      float64(c3),
				Speedup:            speedup,
			}
		}
	}
	if rep != nil {
		rep.Superblock = &superblockStats{
			Formed:    telemetry.Default.Counter("superblock.formed").Load(),
			Installed: telemetry.Default.Counter("superblock.installed").Load(),
			SideExits: telemetry.Default.Counter("superblock.side_exits").Load(),
			Deopt:     telemetry.Default.Counter("superblock.deopt").Load(),
		}
	}
	return nil
}
