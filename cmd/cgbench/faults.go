package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/mem"
)

// runFaultsBench soaks the hardened pipeline under deterministic fault
// injection: every worker owns a simulated machine (targets rotate over
// all three ports) with an injector corrupting instruction fetches and
// data accesses, a code cache whose compile callbacks are made to fail
// and panic, and a mixed compile/execute key stream.  It verifies —
// exiting nonzero on violation — the hardening contract:
//
//  1. no panic ever escapes: simulator, trap and compile panics are all
//     recovered into typed errors;
//  2. no deadlock: the soak completes under a watchdog, and a panicked
//     compile still closes its single-flight;
//  3. bounded error latency: every call, failed or not, returns within a
//     fixed budget (fuel and deadlines cut runaway corrupted code short).
func runFaultsBench(workers, keys, capacity, requests int, seed int64) error {
	if workers <= 0 {
		workers = max(4, runtime.GOMAXPROCS(0))
	}
	targets := []string{"mips", "sparc", "alpha"}

	// Per-call error taxonomy.  Everything a worker observes must land
	// in one of these buckets; the panic/deadlock buckets must stay zero.
	var (
		okCalls       atomic.Uint64 // returned the right value
		wrongValue    atomic.Uint64 // silent corruption from a bit flip
		injectedErrs  atomic.Uint64 // errors.Is(err, faultinject.ErrInjected)
		compilePanics atomic.Uint64 // *codecache.CompilePanicError
		fuelErrs      atomic.Uint64 // errors.Is(err, core.ErrFuelExhausted)
		deadlineErrs  atomic.Uint64 // context deadline/cancel
		simErrs       atomic.Uint64 // typed simulator rejection (decode, memory bounds, ...)
		simPanics     atomic.Uint64 // *core.PanicError — must be zero
		trapPanics    atomic.Uint64 // *core.TrapPanicError — must be zero
		hostPanics    atomic.Uint64 // panic escaped to the worker — must be zero
		maxCallNanos  atomic.Int64
	)
	classify := func(err error) {
		var cp *codecache.CompilePanicError
		var sp *core.PanicError
		var tp *core.TrapPanicError
		switch {
		case errors.As(err, &sp):
			simPanics.Add(1)
		case errors.As(err, &tp):
			trapPanics.Add(1)
		case errors.As(err, &cp):
			compilePanics.Add(1)
		case errors.Is(err, faultinject.ErrInjected):
			injectedErrs.Add(1)
		case errors.Is(err, core.ErrFuelExhausted):
			fuelErrs.Add(1)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			deadlineErrs.Add(1)
		default:
			simErrs.Add(1)
		}
	}

	fmt.Printf("fault soak: %d workers (targets %v), %d keys, capacity %d, %d calls, seed %d\n\n",
		workers, targets, keys, capacity, requests, seed)

	// buildSummer assembles sum(buf[0..n)) — the memory-touching slice of
	// the stream, so load/store faults actually fire (the jit functions
	// are register-only).
	buildSummer := func(m *core.Machine) (*core.Func, uint64, error) {
		const bufWords = 64
		buf, err := m.Alloc(4 * bufWords)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < bufWords; i++ {
			if err := m.Mem().Store(buf+uint64(4*i), 4, uint64(i)); err != nil {
				return nil, 0, err
			}
		}
		a := core.NewAsm(m.Backend())
		a.SetName("fault-summer")
		args, err := a.Begin("%p%i", core.Leaf)
		if err != nil {
			return nil, 0, err
		}
		p, n := args[0], args[1]
		acc, _ := a.GetReg(core.Temp)
		w, _ := a.GetReg(core.Temp)
		end, _ := a.GetReg(core.Temp)
		a.Setu(acc, 0)
		a.Addp(end, p, n)
		top := a.NewLabel()
		a.Bind(top)
		a.Ldui(w, p, 0)
		a.Addu(acc, acc, w)
		a.Stui(acc, p, 0) // running prefix sum: exercises the store path too
		a.Addpi(p, p, 4)
		a.Bltp(p, end, top)
		a.Retu(acc)
		fn, err := a.End()
		if err != nil {
			return nil, 0, err
		}
		if err := m.Install(fn); err != nil {
			return nil, 0, err
		}
		return fn, buf, nil
	}

	injectors := make([]*faultinject.Injector, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		target := targets[w%len(targets)]
		m, err := jit.NewMachineTarget(target, mem.Uncosted)
		if err != nil {
			return err
		}
		summer, buf, err := buildSummer(m.Core())
		if err != nil {
			return err
		}
		inj := faultinject.New(faultinject.Config{
			Seed:             seed + int64(w),
			FetchErrorRate:   0.0005,
			FetchFlipRate:    0.001,
			LoadErrorRate:    0.002,
			StoreErrorRate:   0.002,
			CompileErrorRate: 0.10,
			CompilePanicRate: 0.05,
		})
		injectors[w] = inj
		m.Core().Mem().SetFaultHook(inj)
		cacheCfg := codecache.Config{Machine: m.Core(), MaxEntries: capacity}
		if w%2 == 1 {
			// Half the workers negative-cache failed compiles, so both
			// retry policies soak.
			cacheCfg.FailureBackoff = 100 * time.Microsecond
		}
		cache := codecache.New(cacheCfg)

		progs := make([]*jit.Func, keys)
		cacheKeys := make([]string, keys)
		for i := range progs {
			progs[i] = jit.Synthetic(int32(i))
			cacheKeys[i] = progs[i].CacheKey()
		}

		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			const arg, sumSq = 10, 385
			per := requests / workers
			if w < requests%workers {
				per++
			}
			for i := 0; i < per; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							hostPanics.Add(1)
							fmt.Printf("  PANIC escaped to worker %d: %v\n", w, r)
						}
					}()
					k := (w + i*7) % keys
					start := time.Now()
					opts := core.CallOpts{Fuel: 200_000, PollStride: 256}
					err := func() error {
						if i%31 == 0 {
							// Memory-touching slice: runs generated
							// loads/stores so access faults fire.  The
							// buffer is self-corrupting (prefix sums plus
							// injected flips), so only the error path is
							// checked, not the value.
							_, err := m.Core().CallWith(context.Background(), opts,
								summer, core.P(buf), core.I(256))
							if err != nil {
								return err
							}
							okCalls.Add(1)
							return nil
						}
						fn, err := cache.GetOrCompile(cacheKeys[k], inj.WrapCompile(func() (*core.Func, error) {
							return m.Compile(progs[k])
						}))
						if err != nil {
							return err
						}
						ctx := context.Background()
						callArg := int32(arg)
						longRun := false
						switch {
						case i%97 == 1:
							// Runaway slice: a loop far past the fuel
							// budget — must be cut by ErrFuelExhausted.
							callArg, longRun = 1<<30, true
						case i%64 == 63:
							// Deadline slice: the same long loop under a
							// tight context — cancellation cuts it first.
							callArg, longRun = 1<<30, true
							var cancel context.CancelFunc
							ctx, cancel = context.WithTimeout(ctx, 100*time.Microsecond)
							defer cancel()
						}
						if longRun {
							// Suspend injection for this call: at these
							// fault rates a 200k-step run is certain to
							// hit an injected fetch fault first, which
							// would mask the fuel/deadline cutoff under
							// test.  The worker owns this machine, so
							// toggling the hook is race-free.
							m.Core().Mem().SetFaultHook(nil)
							defer m.Core().Mem().SetFaultHook(inj)
						}
						got, _, err := m.RunWith(ctx, opts, fn, callArg)
						if err != nil {
							return err
						}
						if longRun {
							// Unreachable in practice (fuel or deadline
							// fires first); don't check the value.
							okCalls.Add(1)
						} else if want := int32(sumSq + arg*k); got != want {
							wrongValue.Add(1)
						} else {
							okCalls.Add(1)
						}
						return nil
					}()
					if el := time.Since(start).Nanoseconds(); el > maxCallNanos.Load() {
						maxCallNanos.Store(el) // racy max is fine for a report
					}
					if err != nil {
						classify(err)
					}
				}()
			}
		}(w)
	}

	// Watchdog: the whole soak must finish — a hang here is exactly the
	// deadlock class this mode exists to catch.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadlocked := false
	select {
	case <-done:
	case <-time.After(5 * time.Minute):
		deadlocked = true
	}

	var inj faultinject.Stats
	for _, in := range injectors {
		s := in.Stats()
		inj.FetchErrors += s.FetchErrors
		inj.BitFlips += s.BitFlips
		inj.LoadErrors += s.LoadErrors
		inj.StoreErrors += s.StoreErrors
		inj.CompileErrors += s.CompileErrors
		inj.CompilePanics += s.CompilePanics
	}

	fail := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			fail++
		}
		fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
	}

	calls := okCalls.Load() + wrongValue.Load() + injectedErrs.Load() + compilePanics.Load() +
		fuelErrs.Load() + deadlineErrs.Load() + simErrs.Load() +
		simPanics.Load() + trapPanics.Load() + hostPanics.Load()
	fmt.Println(inj)
	fmt.Printf("call outcomes: %d ok, %d wrong-value, %d injected, %d compile-panic, %d fuel, %d deadline, %d simulator-rejected\n\n",
		okCalls.Load(), wrongValue.Load(), injectedErrs.Load(), compilePanics.Load(),
		fuelErrs.Load(), deadlineErrs.Load(), simErrs.Load())

	check(!deadlocked, "soak completed (no deadlock)")
	check(calls == uint64(requests), "all %d calls accounted for (got %d)", requests, calls)
	check(hostPanics.Load() == 0, "no panic escaped a worker (%d)", hostPanics.Load())
	check(simPanics.Load() == 0, "no simulator panic under corrupted code (%d)", simPanics.Load())
	check(trapPanics.Load() == 0, "no trap handler panic (%d)", trapPanics.Load())
	check(inj.BitFlips > 0 && inj.FetchErrors > 0 && inj.LoadErrors+inj.StoreErrors > 0 &&
		inj.CompileErrors > 0 && inj.CompilePanics > 0,
		"fault mix exercised every class (%d total)", inj.Total())
	check(compilePanics.Load() > 0,
		"injected compile panics surfaced as *CompilePanicError (%d) — flights closed", compilePanics.Load())
	check(injectedErrs.Load() > 0, "injected access faults surfaced typed (%d)", injectedErrs.Load())
	check(fuelErrs.Load() > 0, "runaway loops cut by fuel (%d ErrFuelExhausted)", fuelErrs.Load())
	check(deadlineErrs.Load() > 0, "deadlined calls cancelled mid-loop (%d)", deadlineErrs.Load())
	lat := time.Duration(maxCallNanos.Load())
	check(lat < 2*time.Second, "max single-call latency %v < 2s (bounded error latency)", lat.Round(time.Microsecond))

	if fail > 0 {
		return fmt.Errorf("%d invariant(s) violated", fail)
	}
	return nil
}
