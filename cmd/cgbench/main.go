// Command cgbench regenerates the paper's headline code-generation-cost
// comparison (abstract, §5.1, §5.3, §7): VCODE against the DCG-style
// IR-building baseline, plus the hard-coded-register and raw-emitter fast
// paths, reported as host nanoseconds per generated instruction.
//
// With -cache it instead drives the concurrent code-cache subsystem
// (internal/codecache) with a mixed key stream across goroutines,
// verifying single-flight compilation, the zero-recompile warm path and
// eviction-bounded resident code memory.
//
// With -batch M it benchmarks the parallel batch compilation pipeline
// (internal/batch): M-function batches through the worker pool with
// per-worker reused assemblers and one batched install per batch,
// against the pre-batch serial baseline (fresh assembler plus
// per-function install), reporting funcs/sec and ns per generated
// instruction for both.
//
// With -tier3 it benchmarks the profile-guided superblock tier
// (internal/superblock): the full interpret → compile → superblock →
// bias-flip-deopt lifecycle runs through jit.Adaptive on all three
// backends, then the loop workload's simulated cycles per call are
// compared tier-2 vs tier-3 per backend.  The optimized body must beat
// tier 2 by at least 15% cycles/call or the run fails.
//
// With -faults it soaks the hardened pipeline under deterministic fault
// injection (internal/faultinject) across all three simulated targets,
// verifying that no fault — corrupted code words, failed accesses,
// panicking compiles, runaway loops — ever panics, hangs, or escapes as
// anything but a typed error.
//
// With -crash-soak it repeatedly SIGKILLs a real journaled vcoded child
// mid-checkpoint — under injected fsync/write faults and bit-flipped
// journal tails — and asserts every durably-acknowledged key is served
// correctly after each restart (cycles alternate shard counts to cover
// resharded restore; -crash-cycles sets the kill count).
//
// Observability flags (any mode):
//
//	-metrics       enable the telemetry registry + trace ring and print
//	               the Prometheus-text dump after the run
//	-json PATH     write a machine-readable benchmark record ("-" = stdout)
//	-profile PATH  PC-sample the simulator workload and write a
//	               pprof-compatible profile
//	-trace PATH    record lifecycle spans (compile → regalloc → emit →
//	               verify → install → call → evict) and write Chrome
//	               trace-event JSON, loadable in Perfetto ("-" = stdout);
//	               in -cache mode the run fails unless some function's
//	               full lifecycle chain is present
//	-annotate PATH write profile-annotated disassembly with branch-bias
//	               comments for a loop workload on all three backends
//	-http ADDR     serve /metrics, /metrics.json, /debug/vars, /trace and
//	               /trace.txt; the process keeps serving after the
//	               workload until killed
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/cgbench"
	"repro/internal/core"
	"repro/internal/dcg"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	iters := flag.Int("iters", 2000, "workload repetitions per system")
	engineName := flag.String("engine", "threaded", "execution engine for simulator workloads: switch or threaded")
	cacheMode := flag.Bool("cache", false, "drive the concurrent code-cache subsystem instead")
	faultsMode := flag.Bool("faults", false, "soak the pipeline under fault injection instead")
	workers := flag.Int("workers", 0, "cache/faults/batch mode: concurrent workers (0 = GOMAXPROCS)")
	batchSize := flag.Int("batch", 0, "batch mode: functions per batch (> 0 runs the batch-compile benchmark)")
	batches := flag.Int("batches", 16, "batch mode: number of batches")
	keys := flag.Int("keys", 64, "cache/faults mode: distinct functions in the key stream")
	capacity := flag.Int("capacity", 16, "cache/faults mode: cache capacity in entries")
	requests := flag.Int("requests", 200000, "cache mode: warm-phase lookup requests")
	calls := flag.Int("calls", 120000, "faults mode: mixed compile/execute calls")
	seed := flag.Int64("seed", 1, "faults mode: base PRNG seed (reproduces a fault stream)")
	metricsOn := flag.Bool("metrics", false, "enable telemetry and print the registry dump")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark record to this path (\"-\" = stdout)")
	profilePath := flag.String("profile", "", "PC-sample generated code and write a pprof profile to this path")
	stride := flag.Uint64("stride", profile.DefaultStride, "profiling: sample every N simulated instructions")
	tracePath := flag.String("trace", "", "record lifecycle spans and write Chrome trace-event JSON to this path (\"-\" = stdout)")
	annotatePath := flag.String("annotate", "", "write profile-annotated disassembly for all three backends to this path (\"-\" = stdout)")
	edgeStride := flag.Uint64("edgestride", profile.DefaultEdgeStride, "edge profiling: record every N conditional-branch resolutions")
	httpAddr := flag.String("http", "", "serve telemetry over HTTP on this address (e.g. :8317)")
	serveURL := flag.String("serve-url", "", "client mode: drive a running vcoded server at this base URL")
	serveSoak := flag.Bool("serve-soak", false, "spin up an in-process vcoded server under fault injection and soak it")
	serveCalls := flag.Int("serve-calls", 4000, "serve modes: total requests across workers")
	serveTenants := flag.Int("serve-tenants", 4, "serve modes: synthetic tenants in the load mix")
	tier3Mode := flag.Bool("tier3", false, "benchmark the superblock tier: tier-2 vs tier-3 cycles/call per backend")
	crashSoak := flag.Bool("crash-soak", false, "SIGKILL a child vcoded mid-checkpoint repeatedly and verify recovery")
	crashCycles := flag.Int("crash-cycles", 20, "crash-soak: kill/recover cycles")
	flag.Parse()

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgbench:", err)
			os.Exit(1)
		}
	}
	engine, err := core.ParseEngine(*engineName)
	die(err)

	if *metricsOn {
		telemetry.SetEnabled(true)
		telemetry.SetTraceEnabled(true)
	}
	if *tracePath != "" {
		trace.SetEnabled(true)
	}
	var prof *profile.Profiler
	if *profilePath != "" {
		prof = profile.New(*stride)
		prof.RegisterTelemetry(telemetry.Default, "cgbench")
	}
	if *httpAddr != "" {
		telemetry.SetEnabled(true)
		mux := telemetry.NewMux(telemetry.Default)
		trace.RegisterHTTP(mux, telemetry.Default)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "cgbench: http:", err)
			}
		}()
		fmt.Printf("serving telemetry on http://%s/metrics\n", *httpAddr)
	}

	var rep *jsonReport
	switch {
	case *crashSoak:
		die(runCrashSoak(*crashCycles, *seed))
	case *serveURL != "" || *serveSoak:
		if *jsonPath != "" {
			rep = newReport("serve")
		}
		if *serveSoak {
			die(runServeSoak(*serveCalls, *workers, *serveTenants, *seed, rep))
		} else {
			die(runServeLoad(*serveURL, *serveCalls, *workers, *serveTenants, *seed, true, rep))
		}
		if rep != nil {
			die(rep.measureCodegen(max(50, *iters/10)))
		}
	case *batchSize > 0:
		if *jsonPath != "" {
			rep = newReport("batch")
		}
		die(runBatchBench(*workers, *batchSize, *batches, rep))
		if rep != nil {
			// Keep the headline ns/insn numbers in every record.
			die(rep.measureCodegen(max(50, *iters/10)))
		}
	case *cacheMode:
		if *jsonPath != "" {
			rep = newReport("cache")
		}
		die(runCacheBench(*workers, *keys, *capacity, *requests, engine, prof, rep))
		if rep != nil {
			// A short emit-only pass so the record always carries the
			// headline ns/insn numbers alongside the cache workload.
			die(rep.measureCodegen(max(50, *iters/10)))
			// Per-backend engine comparison: threaded calls/sec and its
			// speedup over the fetch/switch oracle.
			die(rep.measureExec(max(200, *requests/25)))
		}
	case *tier3Mode:
		if *jsonPath != "" {
			rep = newReport("tier3")
		}
		die(runTier3Bench(rep))
		if rep != nil {
			// Keep the headline ns/insn numbers in every record.
			die(rep.measureCodegen(max(50, *iters/10)))
		}
	case *faultsMode:
		die(runFaultsBench(*workers, *keys, *capacity, *calls, *seed))
		if *jsonPath != "" {
			rep = newReport("faults")
			die(rep.measureCodegen(max(50, *iters/10)))
		}
	default:
		rep = runCodegenBench(*iters, *jsonPath != "")
		if prof != nil {
			// Emit-only mode runs no simulator; profile a small JIT
			// workload so -profile still demonstrates the sampler.
			die(runProfileDemo(prof))
		}
	}

	if *tracePath != "" {
		if *cacheMode {
			// The cache workload must leave a complete lifecycle in the
			// ring; exiting nonzero here is the CI acceptance check.
			die(verifyLifecycleChain())
		}
		die(writeTraceFile(*tracePath))
	}
	if *annotatePath != "" {
		die(runAnnotateDemo(*annotatePath, *edgeStride, rep))
	}
	if prof != nil {
		die(writeProfile(prof, *profilePath, rep))
	}
	if rep != nil && *jsonPath != "" {
		if *metricsOn {
			rep.attachTelemetry()
		}
		die(rep.write(*jsonPath))
	}
	if *metricsOn {
		fmt.Println("\n--- telemetry ---")
		fmt.Print(telemetry.Default.TextString())
	}
	if *httpAddr != "" {
		fmt.Printf("workload done; still serving http://%s/metrics (Ctrl-C to exit)\n", *httpAddr)
		select {}
	}
}

// runCodegenBench reproduces the E1 table on the mips port and, when
// wantJSON is set, returns a report with all three backends measured.
func runCodegenBench(iters int, wantJSON bool) *jsonReport {
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgbench:", err)
			os.Exit(1)
		}
	}
	bk := mips.New()

	measure := func(f func() (int, error)) float64 {
		// One warm-up, then time.
		n, err := f()
		die(err)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if n, err = f(); err != nil {
				die(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters*n)
	}

	asm := core.NewAsm(bk)
	vcode := measure(func() (int, error) {
		_, n, err := cgbench.EmitVCODE(asm, cgbench.Blocks, false)
		return n, err
	})
	hard := measure(func() (int, error) {
		_, n, err := cgbench.EmitVCODE(asm, cgbench.Blocks, true)
		return n, err
	})
	g := dcg.New(bk)
	dcgNs := measure(func() (int, error) {
		_, n, err := cgbench.EmitDCG(g, cgbench.Blocks)
		return n, err
	})
	buf := core.NewBuf(16 * cgbench.Blocks)
	raw := measure(func() (int, error) {
		buf.Reset()
		t0, t1 := core.GPR(8), core.GPR(9)
		for j := 0; j < cgbench.Blocks; j++ {
			k := int64(j&15 + 1)
			_ = bk.ALUImm(buf, core.OpAdd, core.TypeI, t0, t1, k)
			_ = bk.ALUImm(buf, core.OpLsh, core.TypeI, t1, t0, 3)
			_ = bk.ALU(buf, core.OpXor, core.TypeI, t0, t0, t1)
			_ = bk.Load(buf, core.TypeI, t1, t0, k*4)
			_ = bk.ALU(buf, core.OpAdd, core.TypeI, t1, t1, t0)
			_ = bk.Store(buf, core.TypeI, t1, t0, k*4)
			_ = bk.ALUImm(buf, core.OpSub, core.TypeI, t0, t0, 7)
			_ = bk.ALUImm(buf, core.OpAnd, core.TypeI, t1, t1, 0xff)
			_, _ = bk.BranchImm(buf, core.OpBlt, core.TypeI, t0, 1000)
			_ = bk.ALU(buf, core.OpOr, core.TypeI, t0, t0, t1)
		}
		return 10 * cgbench.Blocks, nil
	})

	rows := []cgbench.Result{
		{System: "VCODE (virtual registers)", NsPerInsn: vcode, Ratio: 1},
		{System: "VCODE (hard-coded regs)", NsPerInsn: hard, Ratio: hard / vcode},
		{System: "raw emitters (macro analog)", NsPerInsn: raw, Ratio: raw / vcode},
		{System: "DCG (IR trees)", NsPerInsn: dcgNs, Ratio: dcgNs / vcode},
	}
	fmt.Print(cgbench.Format(rows))
	fmt.Printf("\nDCG/VCODE = %.1fx, DCG/raw = %.1fx\n", dcgNs/vcode, dcgNs/raw)

	if !wantJSON {
		return nil
	}
	rep := newReport("codegen")
	die(rep.measureCodegen(max(50, iters/4)))
	// The mips row from the table run is the higher-precision number;
	// keep it.
	rep.Codegen["mips"] = codegenStats{NsPerInsn: vcode, HardNsPerInsn: hard}
	return rep
}

// runProfileDemo exercises the PC-sampling profiler when no simulator
// workload was requested: two JIT-compiled functions, one called 20x as
// often, so the report shows the expected skew.
func runProfileDemo(prof *profile.Profiler) error {
	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		return err
	}
	if err := prof.Attach(m.Core()); err != nil {
		return err
	}
	defer prof.Detach(m.Core())
	hotFn, err := m.Compile(jit.Synthetic(1))
	if err != nil {
		return err
	}
	coldFn, err := m.Compile(jit.Synthetic(2))
	if err != nil {
		return err
	}
	for i := 0; i < 400; i++ {
		if _, _, err := m.Run(hotFn, 50); err != nil {
			return err
		}
		if i%20 == 0 {
			if _, _, err := m.Run(coldFn, 50); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeProfile renders the flat report to stdout, writes the pprof file,
// and records the headline in the JSON report when one is being built.
func writeProfile(prof *profile.Profiler, path string, rep *jsonReport) error {
	snap := prof.Snapshot(10)
	fmt.Println("\n--- profile ---")
	snap.Render(os.Stdout)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := prof.WritePprof(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d samples, stride %d)\n", path, snap.TotalSamples, snap.Stride)
	if rep != nil {
		ps := &profileStats{Samples: snap.TotalSamples, Stride: snap.Stride, Path: path}
		if len(snap.Funcs) > 0 {
			ps.TopFunc, ps.TopPct = snap.Funcs[0].Name, snap.Funcs[0].Pct
		}
		rep.Profile = ps
	}
	return nil
}
