// Command cgbench regenerates the paper's headline code-generation-cost
// comparison (abstract, §5.1, §5.3, §7): VCODE against the DCG-style
// IR-building baseline, plus the hard-coded-register and raw-emitter fast
// paths, reported as host nanoseconds per generated instruction.
//
// With -cache it instead drives the concurrent code-cache subsystem
// (internal/codecache) with a mixed key stream across goroutines,
// verifying single-flight compilation, the zero-recompile warm path and
// eviction-bounded resident code memory.
//
// With -faults it soaks the hardened pipeline under deterministic fault
// injection (internal/faultinject) across all three simulated targets,
// verifying that no fault — corrupted code words, failed accesses,
// panicking compiles, runaway loops — ever panics, hangs, or escapes as
// anything but a typed error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cgbench"
	"repro/internal/core"
	"repro/internal/dcg"
	"repro/internal/mips"
)

func main() {
	iters := flag.Int("iters", 2000, "workload repetitions per system")
	cacheMode := flag.Bool("cache", false, "drive the concurrent code-cache subsystem instead")
	faultsMode := flag.Bool("faults", false, "soak the pipeline under fault injection instead")
	workers := flag.Int("workers", 0, "cache/faults mode: concurrent workers (0 = GOMAXPROCS)")
	keys := flag.Int("keys", 64, "cache/faults mode: distinct functions in the key stream")
	capacity := flag.Int("capacity", 16, "cache/faults mode: cache capacity in entries")
	requests := flag.Int("requests", 200000, "cache mode: warm-phase lookup requests")
	calls := flag.Int("calls", 120000, "faults mode: mixed compile/execute calls")
	seed := flag.Int64("seed", 1, "faults mode: base PRNG seed (reproduces a fault stream)")
	flag.Parse()

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgbench:", err)
			os.Exit(1)
		}
	}
	if *cacheMode {
		die(runCacheBench(*workers, *keys, *capacity, *requests))
		return
	}
	if *faultsMode {
		die(runFaultsBench(*workers, *keys, *capacity, *calls, *seed))
		return
	}

	bk := mips.New()

	measure := func(f func() (int, error)) float64 {
		// One warm-up, then time.
		n, err := f()
		die(err)
		start := time.Now()
		for i := 0; i < *iters; i++ {
			if n, err = f(); err != nil {
				die(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(*iters*n)
	}

	asm := core.NewAsm(bk)
	vcode := measure(func() (int, error) {
		_, n, err := cgbench.EmitVCODE(asm, cgbench.Blocks, false)
		return n, err
	})
	hard := measure(func() (int, error) {
		_, n, err := cgbench.EmitVCODE(asm, cgbench.Blocks, true)
		return n, err
	})
	g := dcg.New(bk)
	dcgNs := measure(func() (int, error) {
		_, n, err := cgbench.EmitDCG(g, cgbench.Blocks)
		return n, err
	})
	buf := core.NewBuf(16 * cgbench.Blocks)
	raw := measure(func() (int, error) {
		buf.Reset()
		t0, t1 := core.GPR(8), core.GPR(9)
		for j := 0; j < cgbench.Blocks; j++ {
			k := int64(j&15 + 1)
			_ = bk.ALUImm(buf, core.OpAdd, core.TypeI, t0, t1, k)
			_ = bk.ALUImm(buf, core.OpLsh, core.TypeI, t1, t0, 3)
			_ = bk.ALU(buf, core.OpXor, core.TypeI, t0, t0, t1)
			_ = bk.Load(buf, core.TypeI, t1, t0, k*4)
			_ = bk.ALU(buf, core.OpAdd, core.TypeI, t1, t1, t0)
			_ = bk.Store(buf, core.TypeI, t1, t0, k*4)
			_ = bk.ALUImm(buf, core.OpSub, core.TypeI, t0, t0, 7)
			_ = bk.ALUImm(buf, core.OpAnd, core.TypeI, t1, t1, 0xff)
			_, _ = bk.BranchImm(buf, core.OpBlt, core.TypeI, t0, 1000)
			_ = bk.ALU(buf, core.OpOr, core.TypeI, t0, t0, t1)
		}
		return 10 * cgbench.Blocks, nil
	})

	rows := []cgbench.Result{
		{System: "VCODE (virtual registers)", NsPerInsn: vcode, Ratio: 1},
		{System: "VCODE (hard-coded regs)", NsPerInsn: hard, Ratio: hard / vcode},
		{System: "raw emitters (macro analog)", NsPerInsn: raw, Ratio: raw / vcode},
		{System: "DCG (IR trees)", NsPerInsn: dcgNs, Ratio: dcgNs / vcode},
	}
	fmt.Print(cgbench.Format(rows))
	fmt.Printf("\nDCG/VCODE = %.1fx, DCG/raw = %.1fx\n", dcgNs/vcode, dcgNs/raw)
}
