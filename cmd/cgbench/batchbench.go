package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/batch"
	"repro/internal/cgbench"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/mips"
)

// batchBlocks sizes each compiled function in the batch workload: small
// functions (a few dozen instructions) are the adaptive-promotion /
// service-warmup shape where per-function overheads — assembler
// construction, the install lock, the address-map publication — dominate
// raw emit cost, which is exactly what the batch pipeline amortizes.
const batchBlocks = 3

// compileStats is the -batch section of the JSON record: compile
// throughput through the pool against the pre-batch serial baseline
// (fresh assembler + per-function install), measured over the same
// total work on identically fresh machines.
type compileStats struct {
	Workers           int     `json:"workers"`
	Batch             int     `json:"batch"`
	Batches           int     `json:"batches"`
	Funcs             int     `json:"funcs"`
	InsnsPerFunc      int     `json:"insns_per_func"`
	FuncsPerSec       float64 `json:"funcs_per_sec"`
	NsPerInsn         float64 `json:"ns_per_insn"`
	SerialFuncsPerSec float64 `json:"serial_funcs_per_sec"`
	SerialNsPerInsn   float64 `json:"serial_ns_per_insn"`
	Speedup           float64 `json:"speedup"`
	NumCPU            int     `json:"num_cpu"`
}

// runBatchBench measures generate→install throughput for funcs =
// batches×batchSize small functions two ways on the mips port:
//
//	serial: one fresh core.Asm per function, one Machine.Install per
//	        function — the pre-batch pipeline;
//	pooled: the batch.Pool — per-worker reused assemblers and one
//	        batched, verification-included install per batchSize funcs.
//
// Each leg gets its own fresh machine so arena and address-map state
// (the span list the serial path republishes per install) start equal.
func runBatchBench(workers, batchSize, batches int, rep *jsonReport) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batches <= 0 {
		batches = 16
	}
	funcs := batches * batchSize

	emit := func(name string) func(a *core.Asm) (*core.Func, error) {
		return func(a *core.Asm) (*core.Func, error) {
			a.SetName(name)
			fn, _, err := cgbench.EmitVCODE(a, batchBlocks, false)
			return fn, err
		}
	}
	// One probe compile for the per-function instruction count.
	probeAsm := core.NewAsm(mips.New())
	_, insns, err := cgbench.EmitVCODE(probeAsm, batchBlocks, false)
	if err != nil {
		return err
	}

	// Serial baseline: fresh Asm + per-function install.
	sm, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		return err
	}
	serialStart := time.Now()
	for i := 0; i < funcs; i++ {
		a := core.NewAsm(sm.Core().Backend())
		fn, err := emit(fmt.Sprintf("s%d", i))(a)
		if err != nil {
			return err
		}
		if err := sm.Core().Install(fn); err != nil {
			return err
		}
	}
	serialNs := float64(time.Since(serialStart).Nanoseconds())

	// Pooled: reused per-worker assemblers, batched installs.
	pm, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		return err
	}
	pool, err := batch.New(batch.Config{Machine: pm.Core(), Workers: workers, Name: "cgbench"})
	if err != nil {
		return err
	}
	defer pool.Close()
	reqs := make([]batch.Request, batchSize)
	pooledStart := time.Now()
	for b := 0; b < batches; b++ {
		for i := range reqs {
			name := fmt.Sprintf("b%d_%d", b, i)
			reqs[i] = batch.Request{Name: name, Compile: emit(name)}
		}
		for i, r := range pool.CompileBatch(context.Background(), reqs) {
			if r.Err != nil {
				return fmt.Errorf("batch %d item %d: %w", b, i, r.Err)
			}
		}
	}
	pooledNs := float64(time.Since(pooledStart).Nanoseconds())

	// Sanity: both arenas hold the same generated code volume.
	if sr, pr := sm.Core().CodeBytesResident(), pm.Core().CodeBytesResident(); sr != pr {
		return fmt.Errorf("arena mismatch: serial %d bytes, pooled %d bytes", sr, pr)
	}

	totalInsns := float64(funcs * insns)
	st := &compileStats{
		Workers:           workers,
		Batch:             batchSize,
		Batches:           batches,
		Funcs:             funcs,
		InsnsPerFunc:      insns,
		FuncsPerSec:       float64(funcs) / (pooledNs / 1e9),
		NsPerInsn:         pooledNs / totalInsns,
		SerialFuncsPerSec: float64(funcs) / (serialNs / 1e9),
		SerialNsPerInsn:   serialNs / totalInsns,
		NumCPU:            runtime.NumCPU(),
	}
	st.Speedup = st.FuncsPerSec / st.SerialFuncsPerSec

	fmt.Printf("batch compile: %d funcs x %d insns (batch=%d, workers=%d, %d CPU)\n",
		funcs, insns, batchSize, workers, st.NumCPU)
	fmt.Printf("%-28s %14s %12s\n", "pipeline", "funcs/sec", "ns/insn")
	fmt.Printf("%-28s %14.0f %12.1f\n", "serial (Asm+Install per fn)", st.SerialFuncsPerSec, st.SerialNsPerInsn)
	fmt.Printf("%-28s %14.0f %12.1f\n", "batched (pool+InstallBatch)", st.FuncsPerSec, st.NsPerInsn)
	fmt.Printf("speedup = %.2fx\n", st.Speedup)

	if rep != nil {
		rep.Compile = st
	}
	return nil
}
