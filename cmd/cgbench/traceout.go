package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/trace"
)

// openOut opens path for writing, with "-" meaning stdout (which the
// returned closer leaves open).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// writeTraceFile exports the span ring as Chrome trace-event JSON
// (chrome://tracing / Perfetto both load it directly).
func writeTraceFile(path string) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(w); err != nil {
		closeFn()
		return err
	}
	if err := closeFn(); err != nil {
		return err
	}
	n := trace.Len()
	if path != "-" {
		fmt.Printf("wrote %s (%d spans)\n", path, n)
	}
	return nil
}

// lifecycleKinds is the full generate-install-execute-evict chain one
// function's flow must show for the trace to count as complete.
var lifecycleKinds = []trace.Kind{
	trace.KindCompile, trace.KindRegalloc, trace.KindEmit,
	trace.KindVerify, trace.KindInstall, trace.KindCall, trace.KindEvict,
}

// verifyLifecycleChain asserts that at least one flow in the span ring
// carries the complete lifecycle.  The cache workload compiles, runs and
// evicts far more functions than the ring holds spans, so this is a real
// end-to-end check, not a formality.
func verifyLifecycleChain() error {
	byFlow := make(map[uint64]map[trace.Kind]bool)
	for _, s := range trace.Spans() {
		if s.Flow == 0 {
			continue
		}
		m := byFlow[s.Flow]
		if m == nil {
			m = make(map[trace.Kind]bool)
			byFlow[s.Flow] = m
		}
		m[s.Kind] = true
	}
	for _, kinds := range byFlow {
		complete := true
		for _, k := range lifecycleKinds {
			if !kinds[k] {
				complete = false
				break
			}
		}
		if complete {
			return nil
		}
	}
	return fmt.Errorf("trace: no flow shows the full %v lifecycle across %d flows", lifecycleKinds, len(byFlow))
}

// runAnnotateDemo compiles and runs the same loop on all three backends
// with a PC-sampler and an edge profiler attached, writes annotated
// disassembly plus the branch-bias report for each, and verifies the
// edge counts are internally consistent (every undropped event in
// exactly one bucket, biases in [0,1]).  Returns an error — nonzero
// exit — on any inconsistency.
func runAnnotateDemo(path string, edgeStride uint64, rep *jsonReport) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()

	var totalEvents uint64
	var totalBranches int
	var topBias float64
	for _, target := range []string{"mips", "sparc", "alpha"} {
		m, err := jit.NewMachineTarget(target, mem.Uncosted)
		if err != nil {
			return err
		}
		p := profile.New(16)
		e := profile.NewEdgeProfiler(edgeStride)
		if err := p.Attach(m.Core()); err != nil {
			return err
		}
		if err := e.Attach(m.Core()); err != nil {
			return err
		}
		fn, err := m.Compile(jit.Synthetic(1))
		if err != nil {
			return err
		}
		for i := 0; i < 200; i++ {
			if _, _, err := m.Run(fn, 100); err != nil {
				return err
			}
		}

		profile.Annotate(w, m.Core().Backend(), []*core.Func{fn}, p, e)
		er := e.Snapshot(-1)
		er.Render(w)
		fmt.Fprintln(w)
		p.Detach(m.Core())
		e.Detach(m.Core())

		// Consistency: the per-branch counts must partition the events.
		var sum uint64
		for _, s := range er.Edges {
			sum += s.Taken + s.NotTaken
			if s.Bias < 0 || s.Bias > 1 {
				return fmt.Errorf("annotate[%s]: bias %v out of [0,1] at %#x", target, s.Bias, s.PC)
			}
		}
		if sum != er.TotalEvents-er.DroppedPCs {
			return fmt.Errorf("annotate[%s]: edge counts sum to %d, want %d (total %d - dropped %d)",
				target, sum, er.TotalEvents-er.DroppedPCs, er.TotalEvents, er.DroppedPCs)
		}
		if len(er.Edges) == 0 {
			return fmt.Errorf("annotate[%s]: loop workload produced no edge events", target)
		}
		totalEvents += er.TotalEvents
		totalBranches += len(er.Edges)
		if b := er.Edges[0].Bias; b > topBias {
			topBias = b
		}
	}
	if path != "-" {
		fmt.Printf("wrote %s (annotated disassembly, 3 backends, %d edge events)\n", path, totalEvents)
	}
	if rep != nil {
		rep.Edges = &edgeStats{Events: totalEvents, Stride: edgeStride, Branches: totalBranches, TopBias: topBias}
	}
	return nil
}
