package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/server"
)

// The crash soak (-crash-soak) is the recovery harness for the journaled
// vcoded server: it builds the real binary, then repeatedly SIGKILLs it
// mid-checkpoint under load — some cycles with injected journal
// write/fsync faults, some with a bit flipped in the journal tail after
// the kill — and asserts the durability contract on every restart:
//
//   - every key acknowledged durable=true serves its exact expected
//     result after recovery (a bit-flip cycle relaxes this to
//     correct-or-404: simulated disk corruption may truncate the replay,
//     but a recovered key must never compute a different answer);
//   - the restarted process never panics and every failure is typed;
//   - restarts alternate the shard count, and a final restart with yet
//     another count verifies resharded restore conserves the residency
//     ledger (Σ tenant resident bytes == Σ shard unit bytes).
type crashLedger struct {
	mu   sync.Mutex
	want map[string]int64
}

func (l *crashLedger) add(key string, want int64) {
	l.mu.Lock()
	l.want[key] = want
	l.mu.Unlock()
}

func (l *crashLedger) drop(key string) {
	l.mu.Lock()
	delete(l.want, key)
	l.mu.Unlock()
}

func (l *crashLedger) snapshot() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.want))
	for k, v := range l.want {
		out[k] = v
	}
	return out
}

func (l *crashLedger) keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.want))
	for k := range l.want {
		out = append(out, k)
	}
	return out
}

// child is one vcoded process under test.
type child struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
}

func startChild(bin, dir string, shards int, chaos bool, seed int64) (*child, error) {
	port, err := pickPort()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-snapshot", filepath.Join(dir, "snap.vcsnap"),
		"-journal", filepath.Join(dir, "journal.vcjrnl"),
		"-checkpoint-interval", "150ms",
		"-fsync-interval", "1ms",
		"-drain-timeout", "2s",
		"-shards", fmt.Sprintf("%d", shards),
		"-default-resident-bytes", "16777216",
		"-default-compile-concurrency", "16",
	}
	if chaos {
		args = append(args,
			"-chaos-seed", fmt.Sprintf("%d", seed),
			"-chaos-journal-write-rate", "0.03",
			"-chaos-journal-sync-rate", "0.03",
		)
	}
	c := &child{
		cmd:    exec.Command(bin, args...),
		base:   fmt.Sprintf("http://127.0.0.1:%d", port),
		stderr: &bytes.Buffer{},
	}
	c.cmd.Stderr = c.stderr
	if err := c.cmd.Start(); err != nil {
		return nil, err
	}
	return c, nil
}

// kill SIGKILLs the child and reaps it.  cmd.Wait (not Process.Wait)
// also joins the stderr-copier goroutine, so reading c.stderr afterwards
// is safe.
func (c *child) kill() {
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait()
}

// stop drains the child gracefully (SIGTERM) and waits for exit.
func (c *child) stop() error {
	_ = c.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		c.kill()
		return fmt.Errorf("crash-soak: child did not drain within 15s of SIGTERM")
	}
}

func (c *child) panicked() bool { return strings.Contains(c.stderr.String(), "panic:") }

func pickPort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("crash-soak: %s not ready within %v", base, timeout)
}

// crashResp is the slice of the exec/compile response the harness needs.
type crashResp struct {
	status  int
	key     string
	durable bool
	result  int64
	code    string
}

func crashExec(client *http.Client, base string, body map[string]any) (crashResp, error) {
	raw, _ := json.Marshal(body)
	resp, err := client.Post(base+"/v1/exec", "application/json", bytes.NewReader(raw))
	if err != nil {
		return crashResp{}, err
	}
	defer resp.Body.Close()
	var out struct {
		Key     string      `json:"key"`
		Durable bool        `json:"durable"`
		Result  json.Number `json:"result"`
		Error   *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return crashResp{}, fmt.Errorf("undecodable body (status %d): %v", resp.StatusCode, err)
	}
	r := crashResp{status: resp.StatusCode, key: out.Key, durable: out.Durable}
	if out.Error != nil {
		r.code = out.Error.Code
	}
	if out.Result != "" {
		r.result, _ = out.Result.Int64()
	}
	return r, nil
}

// runLoad fires compile-and-exec traffic at the child until stop closes,
// recording durable acks in the ledger.  New-key compiles are capped per
// cycle; past the cap the workers re-exec ledger keys so the checkpoint
// the kill lands in always has traffic behind it.
func runLoad(client *http.Client, base string, ledger *crashLedger, keyCtr *atomic.Int64, newKeyCap int, stop <-chan struct{}) (ackedWrong []string) {
	const workers = 4
	var mu sync.Mutex
	var added atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + keyCtr.Load()))
			hot := ledger.keys()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if added.Load() < int64(newKeyCap) {
					n := keyCtr.Add(1)
					a, b := n*31+7, n%997
					want := 3*a + b
					r, err := crashExec(client, base, map[string]any{
						"lang":   "tinyc",
						"source": fmt.Sprintf("int main(int n) { return n * %d + %d; }", a, b),
						"args":   []int{3},
					})
					if err != nil || r.status != http.StatusOK {
						continue // the kill may race the request; only acks matter
					}
					if r.result != want {
						mu.Lock()
						ackedWrong = append(ackedWrong, fmt.Sprintf("%s: acked %d want %d", r.key, r.result, want))
						mu.Unlock()
						continue
					}
					if r.durable {
						ledger.add(r.key, want)
						added.Add(1)
					}
				} else if len(hot) > 0 {
					key := hot[rng.Intn(len(hot))]
					_, _ = crashExec(client, base, map[string]any{"key": key, "args": []int{3}})
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	return ackedWrong
}

// verifyLedger checks every acknowledged key against the restarted
// server.  relaxed (after deliberate journal corruption) accepts
// not_found — and prunes it — but never a wrong answer.
func verifyLedger(client *http.Client, base string, ledger *crashLedger, relaxed bool) (ok, dropped int, violations []string) {
	for key, want := range ledger.snapshot() {
		r, err := crashExec(client, base, map[string]any{"key": key, "args": []int{3}})
		if err != nil {
			violations = append(violations, fmt.Sprintf("%s: transport: %v", key, err))
			continue
		}
		switch {
		case r.status == http.StatusOK && r.result == want:
			ok++
		case r.status == http.StatusNotFound && relaxed:
			ledger.drop(key)
			dropped++
		default:
			violations = append(violations, fmt.Sprintf("%s: status=%d code=%q result=%d want=%d", key, r.status, r.code, r.result, want))
		}
	}
	return ok, dropped, violations
}

// flipJournalTail flips one bit in the last quarter of the journal file —
// simulated disk corruption the next recovery must survive (truncated
// replay, typed log line, no panic, no wrong answers).
func flipJournalTail(path string, rng *rand.Rand) error {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < 16 {
		return err
	}
	i := len(data) - 1 - rng.Intn(len(data)/4+1)
	if i < 8 {
		i = len(data) - 1 // never the header; that is a separate test's job
	}
	data[i] ^= 1 << uint(rng.Intn(8))
	return os.WriteFile(path, data, 0o644)
}

// saveBundle fetches /debug/bundle from a live child and writes it
// beside the bench outputs — the post-mortem artifact CI uploads when a
// soak check fails.  Best effort: a child too broken to serve the
// bundle still fails with the original violation.
func saveBundle(client *http.Client, base, path string) {
	resp, err := client.Get(base + "/debug/bundle")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	if os.WriteFile(path, data, 0o644) == nil {
		fmt.Printf("crash-soak: diagnostic bundle written to %s\n", path)
	}
}

// bundleFlightEvents fetches /debug/bundle and returns the decoded
// flight-recorder ring from it.
func bundleFlightEvents(client *http.Client, base string) ([]flightEvent, error) {
	resp, err := client.Get(base + "/debug/bundle")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/bundle: %d", resp.StatusCode)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("bundle not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("bundle has no flight.json")
		}
		if err != nil {
			return nil, fmt.Errorf("bundle tar: %v", err)
		}
		if hdr.Name != "flight.json" {
			continue
		}
		var events []flightEvent
		if err := json.NewDecoder(tr).Decode(&events); err != nil {
			return nil, fmt.Errorf("flight.json: %v", err)
		}
		return events, nil
	}
}

// flightEvent is the slice of a flight-recorder event the harness
// checks (decoded from bundle JSON, not linked against the package, so
// this also pins the wire format).
type flightEvent struct {
	Stage   string `json:"stage"`
	ReqID   string `json:"request_id"`
	Verdict string `json:"verdict"`
	LSN     uint64 `json:"lsn"`
	Fuel    uint64 `json:"fuel"`
}

// verifyFlightChain drives one fresh durably-acked exec with a known
// request ID against the finale child, pulls its diagnostic bundle, and
// asserts the flight ring reconstructs the complete
// admit→journal→compile→exec→outcome chain for that request — the
// incident-debugging contract: any durable ack is explainable from a
// bundle alone.
func verifyFlightChain(client *http.Client, base string, keyCtr *atomic.Int64) error {
	const reqID = "crash-finale-chain"
	n := keyCtr.Add(1)
	a, b := n*31+7, n%997
	r, err := crashExec(client, base, map[string]any{
		"lang":       "tinyc",
		"source":     fmt.Sprintf("int main(int n) { return n * %d + %d; }", a, b),
		"args":       []int{3},
		"request_id": reqID,
	})
	if err != nil || r.status != http.StatusOK {
		return fmt.Errorf("chain exec: status=%d err=%v", r.status, err)
	}
	if !r.durable {
		return fmt.Errorf("chain exec not durable (key %s)", r.key)
	}
	events, err := bundleFlightEvents(client, base)
	if err != nil {
		return err
	}
	var got []string
	var lsn uint64
	for _, e := range events {
		if e.ReqID != reqID {
			continue
		}
		got = append(got, e.Stage+":"+e.Verdict)
		if e.Stage == "journal" {
			lsn = e.LSN
		}
	}
	want := []string{"admit:ok", "journal:durable", "cache:compiled", "exec:ok", "outcome:ok"}
	if len(got) != len(want) {
		return fmt.Errorf("chain for %s = %v, want %v", reqID, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("chain for %s = %v, want %v", reqID, got, want)
		}
	}
	if lsn == 0 {
		return fmt.Errorf("chain for %s: durable journal event carries no LSN", reqID)
	}
	fmt.Printf("crash-soak: flight chain reconstructed for %s (lsn=%d): %s\n", reqID, lsn, strings.Join(got, " → "))
	return nil
}

func runCrashSoak(cycles int, seed int64) error {
	if cycles <= 0 {
		cycles = 20
	}
	dir, err := os.MkdirTemp("", "cgbench-crash")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "vcoded")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vcoded")
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("crash-soak: building vcoded: %v\n%s", err, out)
	}
	fmt.Printf("crash-soak: %d SIGKILL cycles, seed %d, state in %s\n", cycles, seed, dir)

	client := &http.Client{Timeout: 10 * time.Second}
	rng := rand.New(rand.NewSource(seed))
	ledger := &crashLedger{want: make(map[string]int64)}
	var keyCtr atomic.Int64
	keyCtr.Store(seed * 1000)
	var totalVerified, totalDropped, chaosCycles, flipCycles int
	relaxed := false

	for cycle := 0; cycle < cycles; cycle++ {
		shards := 2
		if cycle%7 == 3 {
			shards = 3 // restart into a different shard count mid-soak
		}
		chaos := cycle%3 == 1
		if chaos {
			chaosCycles++
		}
		c, err := startChild(bin, dir, shards, chaos, seed+int64(cycle))
		if err != nil {
			return fmt.Errorf("crash-soak: cycle %d: start: %v", cycle, err)
		}
		if err := waitReady(client, c.base, 20*time.Second); err != nil {
			c.kill()
			return fmt.Errorf("crash-soak: cycle %d: %v\n--- child stderr ---\n%s", cycle, err, c.stderr.String())
		}

		// Recovery assertion: everything durably acked before the last
		// kill must serve its exact result now.
		ok, dropped, violations := verifyLedger(client, c.base, ledger, relaxed)
		totalVerified += ok
		totalDropped += dropped
		if len(violations) > 0 {
			saveBundle(client, c.base, "crash-soak-bundle.tar.gz")
			c.kill()
			show := violations
			if len(show) > 5 {
				show = show[:5]
			}
			return fmt.Errorf("crash-soak: cycle %d: %d acknowledged keys wrong after recovery, e.g. %v", cycle, len(violations), show)
		}
		relaxed = false

		// Load until the kill timer fires — 100–400ms, against a 150ms
		// checkpoint interval, so kills land in every rotation window.
		stop := make(chan struct{})
		killAfter := time.Duration(100+rng.Intn(300)) * time.Millisecond
		go func() {
			time.Sleep(killAfter)
			close(stop)
		}()
		ackedWrong := runLoad(client, c.base, ledger, &keyCtr, 12, stop)
		c.kill()
		if len(ackedWrong) > 0 {
			return fmt.Errorf("crash-soak: cycle %d: wrong results at ack time: %v", cycle, ackedWrong[:1])
		}
		if c.panicked() {
			return fmt.Errorf("crash-soak: cycle %d: child panicked\n--- child stderr ---\n%s", cycle, c.stderr.String())
		}

		if cycle%5 == 4 {
			if err := flipJournalTail(filepath.Join(dir, "journal.vcjrnl"), rng); err == nil {
				relaxed = true
				flipCycles++
			}
		}
		fmt.Printf("crash-soak: cycle %2d: shards=%d chaos=%-5v killed after %3dms, ledger=%d verified=%d dropped=%d\n",
			cycle, shards, chaos, killAfter.Milliseconds(), len(ledger.snapshot()), ok, dropped)
	}

	// Finale: restore the whole soak's state into yet another shard
	// count, verify every key, and check the residency ledger and the
	// resharding counter server-side.
	c, err := startChild(bin, dir, 5, false, seed)
	if err != nil {
		return fmt.Errorf("crash-soak: finale start: %v", err)
	}
	if err := waitReady(client, c.base, 30*time.Second); err != nil {
		c.kill()
		return fmt.Errorf("crash-soak: finale: %v\n--- child stderr ---\n%s", err, c.stderr.String())
	}
	ok, dropped, violations := verifyLedger(client, c.base, ledger, relaxed)
	totalVerified += ok
	totalDropped += dropped
	if len(violations) > 0 {
		saveBundle(client, c.base, "crash-soak-bundle.tar.gz")
		c.kill()
		return fmt.Errorf("crash-soak: finale: %d keys wrong after 5-shard restore, e.g. %v", len(violations), violations[0])
	}
	// Incident-debugging contract: a durably-acked request is fully
	// explainable from the child's diagnostic bundle by request ID.
	if err := verifyFlightChain(client, c.base, &keyCtr); err != nil {
		saveBundle(client, c.base, "crash-soak-bundle.tar.gz")
		c.kill()
		return fmt.Errorf("crash-soak: finale: %v", err)
	}
	var stats server.Stats
	if err := getJSON(client, c.base+"/v1/stats", &stats); err != nil {
		c.kill()
		return fmt.Errorf("crash-soak: finale stats: %v", err)
	}
	var tenantBytes, shardBytes int64
	for _, tn := range stats.Tenants {
		tenantBytes += tn.ResidentBytes
	}
	for _, sh := range stats.Shards {
		shardBytes += sh.UnitBytes
	}
	if tenantBytes != shardBytes {
		c.kill()
		return fmt.Errorf("crash-soak: finale: residency ledger broken after resharding: tenants=%dB shards=%dB", tenantBytes, shardBytes)
	}
	if stats.Resharded == 0 {
		c.kill()
		return fmt.Errorf("crash-soak: finale: resharded counter is zero after a 2/3-shard soak restored into 5 shards")
	}
	if err := c.stop(); err != nil {
		return fmt.Errorf("crash-soak: finale: %v\n--- child stderr ---\n%s", err, c.stderr.String())
	}
	if c.panicked() {
		return fmt.Errorf("crash-soak: finale: child panicked\n--- child stderr ---\n%s", c.stderr.String())
	}
	fmt.Printf("crash-soak: PASS — %d cycles (%d chaos, %d bit-flip), %d acked keys, %d verifications, %d corruption drops, recovery_ms=%d, resharded=%d, ledger %dB conserved\n",
		cycles, chaosCycles, flipCycles, len(ledger.snapshot()), totalVerified, totalDropped, stats.RecoveryMS, stats.Resharded, tenantBytes)
	return nil
}
