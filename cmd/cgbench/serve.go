package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flightrec"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// Serve modes: -serve-url drives a running vcoded server as a load
// client (mixed-tenant, mixed-language, compile-heavy and cache-hot
// requests); -serve-soak spins the same server up in-process under
// deterministic fault injection and runs the identical load against it.
// Either way the invariants are the server's contract: no request ever
// crashes the server, and every failure comes back as a typed JSON
// error from the published taxonomy.  The -json record gains a "serve"
// section (calls/sec, p50/p99, errors by code, shard and tenant
// breakdowns) that cmd/benchdiff gates.

const serveFactVasm = `
.func fact (%i) leaf
.reg acc temp i
    seti    acc, 1
loop:
    bleii   arg0, 1, done
    muli    acc, acc, arg0
    subii   arg0, arg0, 1
    jmp     loop
done:
    reti    acc
.end
`

// knownServeCodes is the published error taxonomy: a response outside it
// fails the soak.
var knownServeCodes = map[string]bool{}

func init() {
	for _, c := range []server.Code{
		server.CodeBadRequest, server.CodeUnknownTenant, server.CodeNotFound,
		server.CodeQueueFull, server.CodeQuotaConcurrency, server.CodeQuotaCodeBytes,
		server.CodeQuotaFuel, server.CodeVerifyReject, server.CodeCompileError,
		server.CodeCompilePanic, server.CodeFuelExhausted, server.CodeDeadline,
		server.CodeTrapPanic, server.CodeSimPanic, server.CodeInjectedFault,
		server.CodeExecError, server.CodeShuttingDown,
		server.CodeRateLimited, server.CodeCircuitOpen, server.CodeOverloaded,
	} {
		knownServeCodes[string(c)] = true
	}
}

// serveRequest builds the i-th request for a worker: mostly cache-hot
// programs from a small corpus, a slice of fresh never-seen sources to
// keep the compile path and eviction exercised, and periodic fuel
// burners so quota rejections stay in the mix.
func serveRequest(rng *rand.Rand, tenants, worker, i int) (path string, body map[string]any) {
	tenant := fmt.Sprintf("t%d", rng.Intn(tenants))
	switch rng.Intn(8) {
	case 0: // fresh source: always a compile
		return "/v1/exec", map[string]any{
			"tenant": tenant, "lang": "tinyc",
			"source": fmt.Sprintf("int main(int n) { return n * %d + %d; }", worker+2, i),
			"args":   []int{3},
		}
	case 1: // compile-and-cache only
		return "/v1/compile", map[string]any{
			"tenant": tenant, "lang": "vasm",
			"source": serveFactVasm + fmt.Sprintf("; variant %d", i%32),
		}
	case 2: // fuel burner: hits the per-call quota
		return "/v1/exec", map[string]any{
			"tenant": tenant, "lang": "vasm",
			"source": serveFactVasm, "args": []int{1 << 20},
		}
	default: // cache-hot corpus
		v := rng.Intn(8)
		return "/v1/exec", map[string]any{
			"tenant": tenant, "lang": "tinyc",
			"source": fmt.Sprintf("int main(int n) { int a = 0; int i = 0; while (i < n) { a = a + i * %d; i = i + 1; } return a; }", v+1),
			"args":   []int{20},
		}
	}
}

// postMaybeRetry posts one request.  With retry set (the -serve-url
// client mode) it behaves like a well-behaved production client: a 429
// or 503 is retried up to 3 times with capped exponential backoff,
// honoring the server's (jittered) retry_after_ms hint.  The soak keeps
// retry off so its throughput numbers stay comparable across runs.
func postMaybeRetry(client *http.Client, url string, raw []byte, retry bool, retried *uint64) (*http.Response, error) {
	backoff := 25 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		if !retry || attempt >= 3 ||
			(resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable) {
			return resp, nil
		}
		// The JSON body carries the hint at millisecond resolution (the
		// Retry-After header only has seconds).
		var out struct {
			Error *struct {
				RetryAfterMS int64 `json:"retry_after_ms"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		wait := backoff
		if out.Error != nil && out.Error.RetryAfterMS > 0 {
			wait = time.Duration(out.Error.RetryAfterMS) * time.Millisecond
		}
		if wait > maxBackoff {
			wait = maxBackoff
		}
		time.Sleep(wait)
		backoff *= 2
		*retried++
	}
}

// runServeLoad fires calls requests at a vcoded server and checks the
// contract.  With rep set it fills the report's serve section, including
// the shard/tenant breakdown from /v1/stats.  retry turns on the
// Retry-After-honoring client (the -serve-url mode).
func runServeLoad(baseURL string, calls, workers, tenants int, seed int64, retry bool, rep *jsonReport) error {
	if workers <= 0 {
		workers = 8
	}
	if tenants <= 0 {
		tenants = 4
	}
	client := &http.Client{Timeout: 30 * time.Second}

	type result struct {
		lat     []time.Duration
		byCode  map[string]uint64
		errs    uint64
		retries uint64
		untyped []string
	}
	results := make([]result, workers)
	per := calls / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			res := &results[w]
			res.byCode = make(map[string]uint64)
			for i := 0; i < per; i++ {
				path, body := serveRequest(rng, tenants, w, i)
				raw, _ := json.Marshal(body)
				t0 := time.Now()
				resp, err := postMaybeRetry(client, baseURL+path, raw, retry, &res.retries)
				res.lat = append(res.lat, time.Since(t0))
				if err != nil {
					res.untyped = append(res.untyped, fmt.Sprintf("transport: %v", err))
					continue
				}
				var out struct {
					Error *struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					continue
				}
				res.errs++
				switch {
				case decErr != nil:
					res.untyped = append(res.untyped, fmt.Sprintf("%s -> %d: undecodable body: %v", path, resp.StatusCode, decErr))
				case out.Error == nil || out.Error.Code == "":
					res.untyped = append(res.untyped, fmt.Sprintf("%s -> %d: no error code", path, resp.StatusCode))
				case !knownServeCodes[out.Error.Code]:
					res.untyped = append(res.untyped, fmt.Sprintf("%s -> %d: unknown code %q", path, resp.StatusCode, out.Error.Code))
				default:
					res.byCode[out.Error.Code]++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	byCode := make(map[string]uint64)
	var errs, retries uint64
	var untyped []string
	for i := range results {
		lat = append(lat, results[i].lat...)
		errs += results[i].errs
		retries += results[i].retries
		untyped = append(untyped, results[i].untyped...)
		for c, n := range results[i].byCode {
			byCode[c] += n
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	cps := float64(len(lat)) / elapsed.Seconds()

	fmt.Printf("serve: %d calls in %v (%.0f calls/sec), p50 %v, p99 %v\n",
		len(lat), elapsed.Round(time.Millisecond), cps, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	codes := make([]string, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Printf("serve:   %-20s %6d\n", c, byCode[c])
	}

	// Shard/tenant breakdown from the server's own accounting.
	var stats server.Stats
	statErr := getJSON(client, baseURL+"/v1/stats", &stats)
	if statErr == nil {
		for _, sh := range stats.Shards {
			fmt.Printf("serve: shard %d: units=%d resident=%dB hiwater=%dB calls=%d compiles=%d hits=%d evictions=%d\n",
				sh.ID, sh.Units, sh.CodeBytesResident, sh.CodeBytesHighWater,
				sh.Calls, sh.Compiles, sh.Cache.Hits, sh.Cache.Evictions)
		}
		for _, tn := range stats.Tenants {
			fmt.Printf("serve: tenant %s: requests=%d errors=%d rejected=%d resident=%dB p99=%v\n",
				tn.Name, tn.Requests, tn.Errors, tn.Rejected, tn.ResidentBytes,
				time.Duration(tn.CallP99NS).Round(time.Microsecond))
		}
	} else {
		fmt.Printf("serve: /v1/stats unavailable: %v\n", statErr)
	}

	if retries > 0 {
		fmt.Printf("serve: %d retries after Retry-After hints\n", retries)
	}

	if rep != nil {
		rep.Serve = &serveStats{
			Calls:        uint64(len(lat)),
			Errors:       errs,
			Retries:      retries,
			CallsPerSec:  cps,
			P50NS:        uint64(p50),
			P99NS:        uint64(p99),
			ErrorsByCode: byCode,
		}
		if statErr == nil {
			rep.Serve.RateLimited = stats.RateLimited
			rep.Serve.Shed = stats.Shed
			rep.Serve.BreakerOpen = stats.BreakerOpen
			rep.Serve.Shards = stats.Shards
			rep.Serve.Tenants = stats.Tenants
			if stats.SLO != nil {
				rep.Serve.SLO = &sloStats{
					GlobalP99NS:     stats.SLO.Global.P99NS,
					GlobalErrorRate: stats.SLO.Global.ErrorRate,
					LatencyBreaches: stats.SLO.Global.LatencyBreaches,
					ErrorBreaches:   stats.SLO.Global.ErrorBreaches,
					BudgetBurnMS:    stats.SLO.Global.BudgetBurnMS,
					Degraded:        stats.SLO.Degraded,
				}
			}
		}
	}

	if len(untyped) > 0 {
		show := untyped
		if len(show) > 5 {
			show = show[:5]
		}
		return fmt.Errorf("serve: %d failures outside the typed taxonomy, e.g. %v", len(untyped), show)
	}
	return nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runServeSoak is the CI soak: an in-process vcoded server with
// deterministic fault injection on every shard (memory faults inside
// running code, compile errors and panics around the front ends), the
// mixed-tenant load on top, and the contract checks of runServeLoad.
// Surviving means zero panics and an all-typed failure stream.
func runServeSoak(calls, workers, tenants int, seed int64, rep *jsonReport) error {
	telemetry.SetEnabled(true)
	inj := faultinject.New(faultinject.Config{
		Seed:             seed,
		FetchErrorRate:   0.0002,
		FetchFlipRate:    0.0005,
		LoadErrorRate:    0.001,
		StoreErrorRate:   0.001,
		CompileErrorRate: 0.05,
		CompilePanicRate: 0.02,
	})
	srv, err := server.New(server.Config{
		Shards:             4,
		WorkersPerShard:    2,
		MaxEntriesPerShard: 64,
		QueueBound:         64,
		DefaultQuota: server.Quota{
			FuelPerCall:           1 << 18,
			MaxResidentBytes:      128 << 10,
			MaxCompileConcurrency: 4,
			// A per-tenant rate keeps the limiter in the soak's error
			// mix; 429s are cheap, so throughput is barely touched.
			RatePerSec: 400,
			Burst:      100,
		},
		AllowUnknownTenants: true,
		Injector:            inj,
	})
	if err != nil {
		return err
	}
	if _, err := srv.Restore(""); err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	// The soak runs with the flight recorder on, as production would:
	// its overhead is inside the bench gate, and on a contract failure
	// the bundle below carries every failed request's decision chain.
	flightWas := flightrec.Enabled()
	flightrec.SetEnabled(true)
	defer flightrec.SetEnabled(flightWas)
	fmt.Printf("serve-soak: in-process vcoded, seed %d, faults on, flight recorder on\n", seed)
	if err := runServeLoad(ts.URL, calls, workers, tenants, seed, false, rep); err != nil {
		if path, berr := srv.WriteBundleFile(".", "serve-soak"); berr == nil {
			fmt.Printf("serve-soak: diagnostic bundle written to %s\n", path)
		}
		return err
	}
	st := inj.Stats()
	fmt.Printf("serve-soak: injected fetchErr=%d bitflip=%d loadErr=%d storeErr=%d compileErr=%d compilePanic=%d — zero panics escaped\n",
		st.FetchErrors, st.BitFlips, st.LoadErrors, st.StoreErrors, st.CompileErrors, st.CompilePanics)
	if err := measureServeBackends(max(1000, calls/4), workers, tenants, seed, rep); err != nil {
		return err
	}
	return measureSoakRecovery(srv, tenants, rep)
}

// measureServeBackends attributes serve throughput to the execution
// engine per port: a clean in-process server per backend (no fault
// injection — faults would add seed-dependent noise to the comparison),
// the same mixed load, wall-clocked end-to-end.  The aggregate soak
// number above stays the headline; this split is what makes an engine
// change visible per backend in the benchmark record.
func measureServeBackends(calls, workers, tenants int, seed int64, rep *jsonReport) error {
	if rep == nil || rep.Serve == nil {
		return nil
	}
	if workers <= 0 {
		workers = 8
	}
	rep.Serve.CallsPerSecByBackend = map[string]float64{}
	for _, bk := range []string{"mips", "sparc", "alpha"} {
		srv, err := server.New(server.Config{
			Shards:             4,
			WorkersPerShard:    2,
			MaxEntriesPerShard: 64,
			QueueBound:         64,
			Backend:            bk,
			DefaultQuota: server.Quota{
				FuelPerCall:           1 << 18,
				MaxResidentBytes:      128 << 10,
				MaxCompileConcurrency: 4,
			},
			AllowUnknownTenants: true,
			Registry:            telemetry.NewRegistry(),
		})
		if err != nil {
			return err
		}
		if _, err := srv.Restore(""); err != nil {
			srv.Close()
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		cps, err := timedServeLoad(ts.URL, calls, workers, tenants, seed)
		ts.Close()
		srv.Close()
		if err != nil {
			return err
		}
		rep.Serve.CallsPerSecByBackend[bk] = cps
		fmt.Printf("serve-soak: backend %-5s %9.0f calls/sec\n", bk, cps)
	}
	return nil
}

// timedServeLoad is the throughput-only load: same request mix as
// runServeLoad, but no latency capture or taxonomy bookkeeping — only
// transport failures (which would corrupt the timing) are fatal.
func timedServeLoad(baseURL string, calls, workers, tenants int, seed int64) (float64, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	per := calls / workers
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	var transport atomic.Uint64
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			var retried uint64
			for i := 0; i < per; i++ {
				path, body := serveRequest(rng, tenants, w, i)
				raw, _ := json.Marshal(body)
				resp, err := postMaybeRetry(client, baseURL+path, raw, false, &retried)
				if err != nil {
					transport.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := transport.Load(); n > 0 {
		return 0, fmt.Errorf("serve backend measure: %d transport errors", n)
	}
	return float64(per*workers) / elapsed.Seconds(), nil
}

// measureSoakRecovery folds the soak's resident set into a snapshot and
// times a cold 3-shard server recovering from it — recovery wall time
// for the benchmark record, and (because the soak ran 4 shards) a live
// check that resharded restore conserves the residency ledger.
func measureSoakRecovery(srv *server.Server, tenants int, rep *jsonReport) error {
	dir, err := os.MkdirTemp("", "cgbench-serve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "soak.vcsnap")
	saved, err := srv.SaveSnapshot(snap)
	if err != nil {
		return err
	}
	cold, err := server.New(server.Config{
		Shards:             3, // deliberately != the soak's 4: exercises resharding
		WorkersPerShard:    2,
		MaxEntriesPerShard: 64,
		QueueBound:         64,
		DefaultQuota: server.Quota{
			FuelPerCall:           1 << 18,
			MaxResidentBytes:      128 << 10,
			MaxCompileConcurrency: 4,
		},
		AllowUnknownTenants: true,
		Registry:            telemetry.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer cold.Close()
	t0 := time.Now()
	rst, err := cold.Recover(snap, "")
	recMS := float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		return fmt.Errorf("serve-soak: recovery: %v", err)
	}
	stats := cold.StatsView()
	var tenantBytes, shardBytes int64
	for _, tn := range stats.Tenants {
		tenantBytes += tn.ResidentBytes
	}
	for _, sh := range stats.Shards {
		shardBytes += sh.UnitBytes
	}
	if tenantBytes != shardBytes {
		return fmt.Errorf("serve-soak: residency ledger broken after resharded restore: tenants=%dB shards=%dB", tenantBytes, shardBytes)
	}
	fmt.Printf("serve-soak: recovery of %d-entry snapshot into 3 shards: warm=%d resharded=%d in %.1fms (ledger %dB conserved)\n",
		saved, rst.Warm, rst.Resharded, recMS, tenantBytes)
	if rep != nil && rep.Serve != nil {
		rep.Serve.RecoveryMS = recMS
	}
	return nil
}
