// Command benchdiff is the CI benchmark-regression gate: it compares a
// cgbench/v2 JSON record against a committed baseline and exits nonzero
// when any tracked metric regressed beyond the tolerance.
//
//	benchdiff [-tolerance 0.25] baseline.json current.json [current2.json ...]
//
// Several current files merge into one record (first file with a section
// wins), because the cache workload and the batch-compile workload write
// separate records.  Tracked metrics:
//
//   - codegen.<backend>.ns_per_insn — lower is better; every backend in
//     the baseline must be present in the current record;
//   - cache.hit_rate — higher is better;
//   - cache.calls_per_sec — higher is better (warm-cache sandboxed call
//     throughput, the execution-engine headline);
//   - exec.<backend>.calls_per_sec — higher is better (threaded-engine
//     warm call rate per port, standard band);
//   - exec.<backend>.speedup_vs_switch — higher is better (the threaded
//     engine must stay ahead of the fetch/switch oracle);
//   - compile.funcs_per_sec — higher is better (batch pipeline
//     throughput);
//   - compile.serial_funcs_per_sec — higher is better (the pre-batch
//     baseline must not rot either);
//   - serve.calls_per_sec — higher is better (vcoded end-to-end
//     throughput under the mixed-tenant load);
//   - serve.calls_per_sec_by_backend.<backend> — higher is better
//     (fault-free per-port serve throughput, wide band like the
//     aggregate);
//   - serve.p99_ns — lower is better (vcoded tail latency);
//   - serve.recovery_ms — lower is better (warm recovery of the soak's
//     snapshot into a resharded cold server);
//   - serve.rate_limited / serve.shed — presence-only: the record must
//     keep carrying the overload counters (their values are
//     load-dependent, but losing the measurement is a regression);
//   - serve.slo.global_p99_ns / serve.slo.global_error_rate —
//     presence-only: the SLO watchdog's view must stay in the record
//     (its values depend on the soak's fault mix, but dropping the
//     observability surface is a regression);
//   - tier3.<backend>.cycles_per_call — lower is better (simulated
//     cycles of the superblock-optimized body on the loop workload;
//     deterministic, so the band stays at the default tolerance);
//   - tier3.<backend>.tier2_cycles_per_call — lower is better (the
//     tier-2 body the speedup is measured against must not rot);
//   - tier3.<backend>.speedup — higher is better (the optimized body's
//     cycles/call win over tier 2);
//   - superblock.formed / installed / side_exits / deopt —
//     presence-only: the tier's lifecycle counters must keep appearing
//     in the record (their values depend on the pipeline workload).
//
// A metric in the baseline but absent from the current record fails the
// gate: silently dropping a measurement is how regressions hide.
// Metrics absent from the baseline are reported as new and pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record is the slice of the cgbench/v2 schema the gate reads.
type record struct {
	Schema  string                  `json:"schema"`
	Codegen map[string]codegenEntry `json:"codegen"`
	Cache   *cacheEntry             `json:"cache"`
	Compile *compileEntry           `json:"compile"`
	Serve   *serveEntry             `json:"serve"`
	Exec    map[string]execEntry    `json:"exec"`
	Tier3   map[string]tier3Entry   `json:"tier3"`
	// Superblock gates on presence: the tier's lifecycle counters must
	// keep appearing in the record.  Pointers distinguish "key absent"
	// from "counted zero".
	Superblock *superblockEntry `json:"superblock"`
}

type tier3Entry struct {
	Tier2CyclesPerCall float64 `json:"tier2_cycles_per_call"`
	CyclesPerCall      float64 `json:"cycles_per_call"`
	Speedup            float64 `json:"speedup"`
}

type superblockEntry struct {
	Formed    *float64 `json:"formed"`
	Installed *float64 `json:"installed"`
	SideExits *float64 `json:"side_exits"`
	Deopt     *float64 `json:"deopt"`
}

type codegenEntry struct {
	NsPerInsn float64 `json:"ns_per_insn"`
}

type cacheEntry struct {
	HitRate float64 `json:"hit_rate"`
	// Pointer so records from before the threaded engine (no
	// calls_per_sec key) still load; nil never gates.
	CallsPerSec *float64 `json:"calls_per_sec"`
}

type execEntry struct {
	CallsPerSec     float64 `json:"calls_per_sec"`
	SpeedupVsSwitch float64 `json:"speedup_vs_switch"`
}

type compileEntry struct {
	FuncsPerSec       float64 `json:"funcs_per_sec"`
	SerialFuncsPerSec float64 `json:"serial_funcs_per_sec"`
	Speedup           float64 `json:"speedup"`
}

type serveEntry struct {
	CallsPerSec float64 `json:"calls_per_sec"`
	P99NS       float64 `json:"p99_ns"`
	// Pointers so the gate can tell "key absent" from "measured zero":
	// recovery_ms gates on value, rate_limited/shed on presence alone.
	RecoveryMS  *float64 `json:"recovery_ms"`
	RateLimited *float64 `json:"rate_limited"`
	Shed        *float64 `json:"shed"`

	CallsPerSecByBackend map[string]float64 `json:"calls_per_sec_by_backend"`

	// SLO gates on presence: the watchdog's keys must keep appearing.
	SLO *sloEntry `json:"slo"`
}

type sloEntry struct {
	GlobalP99NS     *float64 `json:"global_p99_ns"`
	GlobalErrorRate *float64 `json:"global_error_rate"`
}

// metric is one gate comparison.  higherIsBetter flips the direction the
// tolerance band is applied in.  tolScale (default 1) widens the band
// per metric: wall-clock tail latency needs more headroom on shared CI
// machines than throughput ratios do, while still catching
// order-of-magnitude regressions.
type metric struct {
	name           string
	base, cur      float64
	curPresent     bool
	higherIsBetter bool
	tolScale       float64
	// presenceOnly gates only that the measurement still exists — used
	// for counters whose values are load-dependent.
	presenceOnly bool
}

// verdict classifies m under the relative tolerance tol.
func (m metric) verdict(tol float64) (ok bool, why string) {
	if !m.curPresent {
		return false, "missing from current record"
	}
	if m.presenceOnly {
		return true, "present"
	}
	if m.base == 0 {
		return true, "new"
	}
	if m.tolScale > 0 {
		tol *= m.tolScale
	}
	delta := (m.cur - m.base) / m.base
	if m.higherIsBetter {
		if m.cur < m.base*(1-tol) {
			return false, fmt.Sprintf("%.1f%% below baseline (tolerance %.0f%%)", -100*delta, 100*tol)
		}
	} else if m.cur > m.base*(1+tol) {
		return false, fmt.Sprintf("%.1f%% above baseline (tolerance %.0f%%)", 100*delta, 100*tol)
	}
	return true, fmt.Sprintf("%+.1f%%", 100*delta)
}

// load reads and merges the given record files: the first file carrying
// a section provides it.
func load(paths ...string) (*record, error) {
	out := &record{Codegen: map[string]codegenEntry{}}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r record
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if r.Schema != "cgbench/v2" {
			return nil, fmt.Errorf("%s: schema %q, want cgbench/v2", p, r.Schema)
		}
		for bk, cg := range r.Codegen {
			if _, done := out.Codegen[bk]; !done {
				out.Codegen[bk] = cg
			}
		}
		if out.Exec == nil && len(r.Exec) > 0 {
			out.Exec = r.Exec
		}
		if out.Cache == nil {
			out.Cache = r.Cache
		}
		if out.Compile == nil {
			out.Compile = r.Compile
		}
		if out.Serve == nil {
			out.Serve = r.Serve
		}
		if out.Tier3 == nil && len(r.Tier3) > 0 {
			out.Tier3 = r.Tier3
		}
		if out.Superblock == nil {
			out.Superblock = r.Superblock
		}
	}
	return out, nil
}

// compare builds the gate's metric list from a baseline and a (merged)
// current record.
func compare(base, cur *record) []metric {
	var ms []metric
	backends := make([]string, 0, len(base.Codegen))
	for bk := range base.Codegen {
		backends = append(backends, bk)
	}
	sort.Strings(backends)
	for _, bk := range backends {
		c, ok := cur.Codegen[bk]
		ms = append(ms, metric{
			name: "codegen." + bk + ".ns_per_insn",
			base: base.Codegen[bk].NsPerInsn, cur: c.NsPerInsn, curPresent: ok,
		})
	}
	if base.Cache != nil {
		m := metric{name: "cache.hit_rate", base: base.Cache.HitRate, higherIsBetter: true}
		if cur.Cache != nil {
			m.cur, m.curPresent = cur.Cache.HitRate, true
		}
		ms = append(ms, m)
		if base.Cache.CallsPerSec != nil {
			// Wall-clock end-to-end throughput: wide band like
			// serve.calls_per_sec.
			cps := metric{name: "cache.calls_per_sec", base: *base.Cache.CallsPerSec, higherIsBetter: true, tolScale: 2}
			if cur.Cache != nil && cur.Cache.CallsPerSec != nil {
				cps.cur, cps.curPresent = *cur.Cache.CallsPerSec, true
			}
			ms = append(ms, cps)
		}
	}
	execBackends := make([]string, 0, len(base.Exec))
	for bk := range base.Exec {
		execBackends = append(execBackends, bk)
	}
	sort.Strings(execBackends)
	for _, bk := range execBackends {
		c, ok := cur.Exec[bk]
		ms = append(ms,
			metric{
				name: "exec." + bk + ".calls_per_sec",
				base: base.Exec[bk].CallsPerSec, cur: c.CallsPerSec, curPresent: ok,
				higherIsBetter: true,
			},
			metric{
				name: "exec." + bk + ".speedup_vs_switch",
				base: base.Exec[bk].SpeedupVsSwitch, cur: c.SpeedupVsSwitch, curPresent: ok,
				higherIsBetter: true,
			})
	}
	if base.Compile != nil {
		pooled := metric{name: "compile.funcs_per_sec", base: base.Compile.FuncsPerSec, higherIsBetter: true}
		serial := metric{name: "compile.serial_funcs_per_sec", base: base.Compile.SerialFuncsPerSec, higherIsBetter: true}
		if cur.Compile != nil {
			pooled.cur, pooled.curPresent = cur.Compile.FuncsPerSec, true
			serial.cur, serial.curPresent = cur.Compile.SerialFuncsPerSec, true
		}
		ms = append(ms, pooled, serial)
	}
	if base.Serve != nil {
		cps := metric{name: "serve.calls_per_sec", base: base.Serve.CallsPerSec, higherIsBetter: true, tolScale: 2}
		p99 := metric{name: "serve.p99_ns", base: base.Serve.P99NS, tolScale: 8}
		if cur.Serve != nil {
			cps.cur, cps.curPresent = cur.Serve.CallsPerSec, true
			p99.cur, p99.curPresent = cur.Serve.P99NS, true
		}
		ms = append(ms, cps, p99)
		serveBackends := make([]string, 0, len(base.Serve.CallsPerSecByBackend))
		for bk := range base.Serve.CallsPerSecByBackend {
			serveBackends = append(serveBackends, bk)
		}
		sort.Strings(serveBackends)
		for _, bk := range serveBackends {
			m := metric{
				name: "serve.calls_per_sec_by_backend." + bk,
				base: base.Serve.CallsPerSecByBackend[bk], higherIsBetter: true, tolScale: 2,
			}
			if cur.Serve != nil {
				m.cur, m.curPresent = cur.Serve.CallsPerSecByBackend[bk], cur.Serve.CallsPerSecByBackend[bk] != 0
			}
			ms = append(ms, m)
		}
		if base.Serve.RecoveryMS != nil {
			rec := metric{name: "serve.recovery_ms", base: *base.Serve.RecoveryMS, tolScale: 8}
			if cur.Serve != nil && cur.Serve.RecoveryMS != nil {
				rec.cur, rec.curPresent = *cur.Serve.RecoveryMS, true
			}
			ms = append(ms, rec)
		}
		if base.Serve.RateLimited != nil {
			rl := metric{name: "serve.rate_limited", presenceOnly: true}
			if cur.Serve != nil && cur.Serve.RateLimited != nil {
				rl.cur, rl.curPresent = *cur.Serve.RateLimited, true
			}
			ms = append(ms, rl)
		}
		if base.Serve.Shed != nil {
			sh := metric{name: "serve.shed", presenceOnly: true}
			if cur.Serve != nil && cur.Serve.Shed != nil {
				sh.cur, sh.curPresent = *cur.Serve.Shed, true
			}
			ms = append(ms, sh)
		}
		if base.Serve.SLO != nil {
			p99 := metric{name: "serve.slo.global_p99_ns", presenceOnly: true}
			er := metric{name: "serve.slo.global_error_rate", presenceOnly: true}
			if cur.Serve != nil && cur.Serve.SLO != nil {
				if cur.Serve.SLO.GlobalP99NS != nil {
					p99.cur, p99.curPresent = *cur.Serve.SLO.GlobalP99NS, true
				}
				if cur.Serve.SLO.GlobalErrorRate != nil {
					er.cur, er.curPresent = *cur.Serve.SLO.GlobalErrorRate, true
				}
			}
			ms = append(ms, p99, er)
		}
	}
	t3Backends := make([]string, 0, len(base.Tier3))
	for bk := range base.Tier3 {
		t3Backends = append(t3Backends, bk)
	}
	sort.Strings(t3Backends)
	for _, bk := range t3Backends {
		c, ok := cur.Tier3[bk]
		ms = append(ms,
			metric{
				name: "tier3." + bk + ".cycles_per_call",
				base: base.Tier3[bk].CyclesPerCall, cur: c.CyclesPerCall, curPresent: ok,
			},
			metric{
				name: "tier3." + bk + ".tier2_cycles_per_call",
				base: base.Tier3[bk].Tier2CyclesPerCall, cur: c.Tier2CyclesPerCall, curPresent: ok,
			},
			metric{
				name: "tier3." + bk + ".speedup",
				base: base.Tier3[bk].Speedup, cur: c.Speedup, curPresent: ok,
				higherIsBetter: true,
			})
	}
	if base.Superblock != nil {
		counters := []struct {
			name string
			get  func(*superblockEntry) *float64
		}{
			{"superblock.formed", func(e *superblockEntry) *float64 { return e.Formed }},
			{"superblock.installed", func(e *superblockEntry) *float64 { return e.Installed }},
			{"superblock.side_exits", func(e *superblockEntry) *float64 { return e.SideExits }},
			{"superblock.deopt", func(e *superblockEntry) *float64 { return e.Deopt }},
		}
		for _, c := range counters {
			if c.get(base.Superblock) == nil {
				continue
			}
			m := metric{name: c.name, presenceOnly: true}
			if cur.Superblock != nil {
				if v := c.get(cur.Superblock); v != nil {
					m.cur, m.curPresent = *v, true
				}
			}
			ms = append(ms, m)
		}
	}
	return ms
}

// run is the testable core: compare, render, report regression.
func run(w *os.File, tol float64, base, cur *record) bool {
	ms := compare(base, cur)
	regressed := false
	fmt.Fprintf(w, "%-34s %14s %14s  %s\n", "metric", "baseline", "current", "verdict")
	for _, m := range ms {
		ok, why := m.verdict(tol)
		status := "ok"
		if !ok {
			status, regressed = "REGRESSED", true
		}
		curText := "-"
		if m.curPresent {
			curText = fmt.Sprintf("%.1f", m.cur)
		}
		fmt.Fprintf(w, "%-34s %14.1f %14s  %s (%s)\n", m.name, m.base, curText, status, why)
	}
	return regressed
}

func main() {
	tol := flag.Float64("tolerance", 0.25, "allowed relative regression (0.25 = 25%)")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance F] baseline.json current.json [current2.json ...]")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Args()[1:]...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if run(os.Stdout, *tol, base, cur) {
		fmt.Fprintln(os.Stderr, "benchdiff: benchmark regression against", flag.Arg(0))
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regression")
}
