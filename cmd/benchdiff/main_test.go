package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func fptr(v float64) *float64 { return &v }

func baseRecord() *record {
	return &record{
		Schema: "cgbench/v2",
		Codegen: map[string]codegenEntry{
			"mips":  {NsPerInsn: 30},
			"sparc": {NsPerInsn: 33},
			"alpha": {NsPerInsn: 37},
		},
		Cache:   &cacheEntry{HitRate: 0.99, CallsPerSec: fptr(800000)},
		Compile: &compileEntry{FuncsPerSec: 100000, SerialFuncsPerSec: 25000, Speedup: 4},
		Serve: &serveEntry{CallsPerSec: 8000, P99NS: 2e6,
			RecoveryMS: fptr(50), RateLimited: fptr(100), Shed: fptr(0),
			CallsPerSecByBackend: map[string]float64{"mips": 5000, "sparc": 4800, "alpha": 4700},
			SLO:                  &sloEntry{GlobalP99NS: fptr(3e6), GlobalErrorRate: fptr(0.01)}},
		Exec: map[string]execEntry{
			"mips":  {CallsPerSec: 900000, SpeedupVsSwitch: 3.5},
			"sparc": {CallsPerSec: 850000, SpeedupVsSwitch: 3.0},
			"alpha": {CallsPerSec: 950000, SpeedupVsSwitch: 2.9},
		},
		Tier3: map[string]tier3Entry{
			"mips":  {Tier2CyclesPerCall: 5800, CyclesPerCall: 3000, Speedup: 1.93},
			"sparc": {Tier2CyclesPerCall: 3800, CyclesPerCall: 2800, Speedup: 1.35},
			"alpha": {Tier2CyclesPerCall: 5200, CyclesPerCall: 2600, Speedup: 2.0},
		},
		Superblock: &superblockEntry{
			Formed: fptr(6), Installed: fptr(3), SideExits: fptr(300), Deopt: fptr(3),
		},
	}
}

func TestNoRegressionWithinTolerance(t *testing.T) {
	cur := baseRecord()
	cur.Codegen["mips"] = codegenEntry{NsPerInsn: 36}                         // +20%: inside ±25%
	cur.Cache.HitRate = 0.80                                                  // -19%: inside
	cur.Compile = &compileEntry{FuncsPerSec: 80000, SerialFuncsPerSec: 20000} // -20%: inside
	cur.Serve = &serveEntry{CallsPerSec: 4800, P99NS: 5.5e6,                  // inside the widened serve bands
		RecoveryMS: fptr(90), RateLimited: fptr(0), Shed: fptr(12345), // overload counters gate on presence, not value
		CallsPerSecByBackend: map[string]float64{"mips": 3000, "sparc": 4800, "alpha": 4000}, // -40%: inside the widened band
		SLO:                  &sloEntry{GlobalP99NS: fptr(9e6), GlobalErrorRate: fptr(0.4)}}  // SLO gates on presence, not value
	cur.Cache.CallsPerSec = fptr(500000)                                                         // -37%: inside the widened band
	cur.Exec["mips"] = execEntry{CallsPerSec: 700000, SpeedupVsSwitch: 2.7}                      // -22%: inside ±25%
	cur.Tier3["mips"] = tier3Entry{Tier2CyclesPerCall: 6800, CyclesPerCall: 3500, Speedup: 1.94} // +17%: inside ±25%
	cur.Superblock = &superblockEntry{                                                           // counter values are load-dependent: presence gates, values don't
		Formed: fptr(60), Installed: fptr(1), SideExits: fptr(99999), Deopt: fptr(0)}
	if run(os.Stdout, 0.25, baseRecord(), cur) {
		t.Fatal("within-tolerance drift flagged as regression")
	}
}

func TestDoctoredRegressionFails(t *testing.T) {
	cases := []struct {
		name   string
		doctor func(r *record)
	}{
		{"ns_per_insn +50%", func(r *record) { r.Codegen["sparc"] = codegenEntry{NsPerInsn: 49.5} }},
		{"hit rate halved", func(r *record) { r.Cache.HitRate = 0.49 }},
		{"funcs/sec halved", func(r *record) { r.Compile.FuncsPerSec = 50000 }},
		{"serial funcs/sec halved", func(r *record) { r.Compile.SerialFuncsPerSec = 12000 }},
		{"backend dropped", func(r *record) { delete(r.Codegen, "alpha") }},
		{"compile section dropped", func(r *record) { r.Compile = nil }},
		{"serve throughput collapsed", func(r *record) { r.Serve.CallsPerSec = 2000 }},
		{"serve p99 blown up 4x", func(r *record) { r.Serve.P99NS = 8.1e6 }},
		{"serve section dropped", func(r *record) { r.Serve = nil }},
		{"recovery 10x slower", func(r *record) { r.Serve.RecoveryMS = fptr(500) }},
		{"recovery_ms dropped", func(r *record) { r.Serve.RecoveryMS = nil }},
		{"rate_limited counter dropped", func(r *record) { r.Serve.RateLimited = nil }},
		{"shed counter dropped", func(r *record) { r.Serve.Shed = nil }},
		{"cache calls/sec collapsed", func(r *record) { r.Cache.CallsPerSec = fptr(300000) }},
		{"cache calls/sec dropped", func(r *record) { r.Cache.CallsPerSec = nil }},
		{"exec backend dropped", func(r *record) { delete(r.Exec, "sparc") }},
		{"exec calls/sec halved", func(r *record) { r.Exec["mips"] = execEntry{CallsPerSec: 450000, SpeedupVsSwitch: 3.5} }},
		{"threaded engine slower than oracle", func(r *record) {
			r.Exec["alpha"] = execEntry{CallsPerSec: 950000, SpeedupVsSwitch: 0.9}
		}},
		{"serve backend split dropped", func(r *record) { delete(r.Serve.CallsPerSecByBackend, "alpha") }},
		{"serve backend throughput collapsed", func(r *record) { r.Serve.CallsPerSecByBackend["mips"] = 2000 }},
		{"slo section dropped", func(r *record) { r.Serve.SLO = nil }},
		{"slo p99 key dropped", func(r *record) { r.Serve.SLO.GlobalP99NS = nil }},
		{"slo error-rate key dropped", func(r *record) { r.Serve.SLO.GlobalErrorRate = nil }},
		{"tier3 cycles/call +50%", func(r *record) {
			r.Tier3["mips"] = tier3Entry{Tier2CyclesPerCall: 5800, CyclesPerCall: 4500, Speedup: 1.29}
		}},
		{"tier2 reference body rotted", func(r *record) {
			r.Tier3["alpha"] = tier3Entry{Tier2CyclesPerCall: 9000, CyclesPerCall: 2600, Speedup: 3.46}
		}},
		{"tier3 speedup collapsed", func(r *record) {
			r.Tier3["sparc"] = tier3Entry{Tier2CyclesPerCall: 3800, CyclesPerCall: 3750, Speedup: 1.01}
		}},
		{"tier3 backend dropped", func(r *record) { delete(r.Tier3, "alpha") }},
		{"tier3 section dropped", func(r *record) { r.Tier3 = nil }},
		{"superblock section dropped", func(r *record) { r.Superblock = nil }},
		{"superblock installed key dropped", func(r *record) { r.Superblock.Installed = nil }},
		{"superblock deopt key dropped", func(r *record) { r.Superblock.Deopt = nil }},
		{"superblock side_exits key dropped", func(r *record) { r.Superblock.SideExits = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := baseRecord()
			tc.doctor(cur)
			if !run(os.Stdout, 0.25, baseRecord(), cur) {
				t.Fatal("doctored regression passed the gate")
			}
		})
	}
}

func TestImprovementsPass(t *testing.T) {
	cur := baseRecord()
	cur.Codegen["mips"] = codegenEntry{NsPerInsn: 10} // 3x faster
	cur.Compile.FuncsPerSec = 500000
	if run(os.Stdout, 0.25, baseRecord(), cur) {
		t.Fatal("improvement flagged as regression")
	}
}

// TestLoadMerges pins the multi-file merge: the cache record supplies
// codegen+cache, the batch record supplies compile, and the merged view
// carries all three.
func TestLoadMerges(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *record) string {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cacheRec := baseRecord()
	cacheRec.Compile = nil
	batchRec := &record{Schema: "cgbench/v2", Compile: &compileEntry{FuncsPerSec: 90000, SerialFuncsPerSec: 24000}}
	merged, err := load(write("cache.json", cacheRec), write("batch.json", batchRec))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Compile == nil || merged.Compile.FuncsPerSec != 90000 {
		t.Fatalf("compile section not merged: %+v", merged.Compile)
	}
	if merged.Cache == nil || len(merged.Codegen) != 3 {
		t.Fatalf("cache/codegen sections lost in merge")
	}
	if run(os.Stdout, 0.25, baseRecord(), merged) {
		t.Fatal("merged record regressed unexpectedly")
	}

	// Schema drift is a hard error, not a silent pass.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"cgbench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad); err == nil {
		t.Fatal("v1 schema accepted")
	}
}
