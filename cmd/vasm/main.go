// Command vasm assembles a VCODE assembly file (see internal/vasm for the
// syntax, which uses the paper's instruction naming) onto a simulated
// target and runs one of its functions.
//
//	vasm -target sparc -entry fact -args 6 fact.vs
//	vasm -dis prog.vs            # print the generated machine code
//	vasm -trace prog.vs          # disassemble each executed instruction
//	vasm -annotate - prog.vs     # profile the run, print annotated
//	                             # disassembly with branch-bias comments
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/profile"
	"repro/internal/sparc"
	"repro/internal/vasm"
)

func main() {
	target := flag.String("target", "mips", "target architecture: mips, sparc, alpha")
	entry := flag.String("entry", "", "function to run (default: first in file)")
	argsFlag := flag.String("args", "", "comma-separated arguments (int or float literals)")
	dis := flag.Bool("dis", false, "print the generated code for each function")
	trace := flag.Bool("trace", false, "disassemble each executed instruction to stderr")
	annotate := flag.String("annotate", "", "profile the run and write annotated disassembly to this path (\"-\" = stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vasm [flags] FILE.vs")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	die(err)

	var machine *core.Machine
	var backend core.Backend
	switch *target {
	case "mips":
		m := mem.New(1<<24, false)
		bk := mips.New()
		backend = bk
		machine = core.NewMachine(bk, mips.NewCPU(m), m)
	case "sparc":
		m := mem.New(1<<24, true)
		bk := sparc.New()
		backend = bk
		machine = core.NewMachine(bk, sparc.NewCPU(m), m)
	case "alpha":
		m := mem.New(1<<24, false)
		bk := alpha.New()
		backend = bk
		machine = core.NewMachine(bk, alpha.NewCPU(m), m)
	default:
		die(fmt.Errorf("unknown target %q", *target))
	}

	prog, err := vasm.Assemble(machine, string(src))
	die(err)

	if *dis {
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			fmt.Printf("%s: (%d words, entry +%d)\n", name, len(fn.Words), fn.Entry)
			for i := fn.Entry; i < len(fn.Words); i++ {
				pc := fn.Addr() + 4*uint64(i)
				fmt.Printf("  %08x: %08x  %s\n", pc, fn.Words[i], backend.Disasm(fn.Words[i], pc))
			}
		}
	}

	name := *entry
	if name == "" && len(prog.Order) > 0 {
		name = prog.Order[0]
	}
	var args []core.Value
	if *argsFlag != "" {
		for _, s := range strings.Split(*argsFlag, ",") {
			s = strings.TrimSpace(s)
			if strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") {
				f, err := strconv.ParseFloat(s, 64)
				die(err)
				args = append(args, core.D(f))
			} else {
				v, err := strconv.ParseInt(s, 0, 64)
				die(err)
				args = append(args, core.I(int32(v)))
			}
		}
	}
	if *trace {
		machine.SetTrace(os.Stderr)
	}
	var prof *profile.Profiler
	var edges *profile.EdgeProfiler
	if *annotate != "" {
		// Dense strides: a single run has to light up every hot line.
		prof = profile.New(4)
		edges = profile.NewEdgeProfiler(1)
		die(prof.Attach(machine))
		die(edges.Attach(machine))
	}
	got, err := prog.Run(name, args...)
	die(err)
	fmt.Printf("%s(%s) = %v  [%d insns, %d cycles]\n",
		name, *argsFlag, got, machine.CPU().Insns(), machine.CPU().Cycles())

	if *annotate != "" {
		// Detach only after rendering: Snapshot resolves function base
		// addresses through the still-attached machines.
		defer prof.Detach(machine)
		defer edges.Detach(machine)
		w := os.Stdout
		if *annotate != "-" {
			f, err := os.Create(*annotate)
			die(err)
			defer f.Close()
			w = f
		}
		funcs := make([]*core.Func, 0, len(prog.Order))
		for _, fname := range prog.Order {
			funcs = append(funcs, prog.Funcs[fname])
		}
		profile.Annotate(w, backend, funcs, prof, edges)
		edges.Snapshot(-1).Render(w)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(1)
	}
}
