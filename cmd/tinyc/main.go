// Command tinyc compiles a tiny-C source file at runtime with VCODE as
// the target machine and runs a function from it on a simulated target.
//
//	tinyc -target mips -entry main -args 10,20 prog.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
	"repro/internal/tinyc"
)

func main() {
	target := flag.String("target", "mips", "target architecture: mips, sparc, alpha")
	entry := flag.String("entry", "main", "function to run")
	argsFlag := flag.String("args", "", "comma-separated arguments (int or float literals)")
	stats := flag.Bool("stats", true, "print executed instruction/cycle counts")
	trace := flag.Bool("trace", false, "disassemble every executed instruction to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tinyc [-target T] [-entry F] [-args a,b,...] FILE.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	die(err)

	var machine *core.Machine
	switch *target {
	case "mips":
		m := mem.New(1<<24, false)
		machine = core.NewMachine(mips.New(), mips.NewCPU(m), m)
	case "sparc":
		m := mem.New(1<<24, true)
		machine = core.NewMachine(sparc.New(), sparc.NewCPU(m), m)
	case "alpha":
		m := mem.New(1<<24, false)
		machine = core.NewMachine(alpha.New(), alpha.NewCPU(m), m)
	default:
		die(fmt.Errorf("unknown target %q", *target))
	}

	prog, err := tinyc.Parse(string(src))
	die(err)
	c := tinyc.NewCompiler(machine)
	die(c.Compile(prog))

	var args []core.Value
	if *argsFlag != "" {
		for _, s := range strings.Split(*argsFlag, ",") {
			s = strings.TrimSpace(s)
			if strings.ContainsAny(s, ".eE") {
				f, err := strconv.ParseFloat(s, 64)
				die(err)
				args = append(args, core.D(f))
			} else {
				v, err := strconv.ParseInt(s, 0, 32)
				die(err)
				args = append(args, core.I(int32(v)))
			}
		}
	}

	if *trace {
		machine.SetTrace(os.Stderr)
	}
	got, err := c.Run(*entry, args...)
	die(err)
	fmt.Printf("%s(%s) = %v\n", *entry, *argsFlag, got)
	if *stats {
		fmt.Printf("[%s: %d instructions, %d cycles]\n",
			*target, machine.CPU().Insns(), machine.CPU().Cycles())
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tinyc:", err)
		os.Exit(1)
	}
}
