package main

import (
	"bytes"
	"go/format"
	"os"
	"testing"
)

// TestGeneratedFileInSync regenerates the core instruction layer and
// compares it with the committed internal/core/instructions_gen.go, so
// the preprocessor and its output cannot drift apart.
func TestGeneratedFileInSync(t *testing.T) {
	var buf bytes.Buffer
	genCore(&buf)
	want, err := format.Source(buf.Bytes())
	if err != nil {
		t.Fatalf("generated source does not format: %v", err)
	}
	got, err := os.ReadFile("../../internal/core/instructions_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("internal/core/instructions_gen.go is out of date; regenerate with:\n  go run ./cmd/vcodegen -core > internal/core/instructions_gen.go")
	}
}

// TestCoreLayerShape sanity-checks the generated family counts.
func TestCoreLayerShape(t *testing.T) {
	var buf bytes.Buffer
	genCore(&buf)
	src := buf.String()
	for _, want := range []string{
		"func (a *Asm) Addi(rd, rs1, rs2 Reg)",
		"func (a *Asm) Adduli(rd, rs Reg, imm int64)",
		"func (a *Asm) Ldusi(rd, rs Reg, off int64)",
		"func (a *Asm) Bltuli(rs Reg, imm int64, l Label)",
		"func (a *Asm) Cvd2f(rd, rs Reg)",
		"func (a *Asm) Retv()",
		"func (a *Asm) Setd(rd Reg, imm float64)",
	} {
		if !bytes.Contains([]byte(src), []byte(want)) {
			t.Errorf("generated layer missing %q", want)
		}
	}
	// Count generated methods as a coarse completeness check.
	n := bytes.Count([]byte(src), []byte("func (a *Asm) "))
	if n < 250 {
		t.Errorf("only %d generated methods; Table 2 composition should exceed 250", n)
	}
}
