// Package vreg implements the extension layer the paper describes as in
// progress (§5.4, §6.2): unlimited virtual registers on top of VCODE's
// client-managed physical registers.  The first virtual registers get
// dedicated physical registers; the rest live in stack locals and are
// staged through two reserved scratch registers per bank around each
// instruction.  The paper estimates this support costs roughly a factor
// of two in code-generation speed; BenchmarkCodegenVReg at the repository
// root measures our layer's factor.
//
// The layer is exactly that — a layer: it is built entirely on the public
// core API (GetReg, Local, and the generic emitters), demonstrating the
// claim that such machinery belongs above the generic VCODE system
// rather than inside it.
package vreg

import (
	"fmt"

	"repro/internal/core"
)

// Reg is a virtual register handle.
type Reg int

// Asm layers unlimited virtual registers over a core.Asm.  Create it
// after core.Asm.Begin; virtual registers hold values of a fixed type
// chosen at allocation.
type Asm struct {
	A *core.Asm

	vars []vinfo

	stageI [2]core.Reg
	stageF [2]core.Reg
}

type vinfo struct {
	t       core.Type
	phys    core.Reg
	local   int64
	spilled bool
}

// New builds the layer, reserving its staging registers and claiming up
// to maxPhys persistent physical registers per bank for the fastest
// virtual registers (pass 0 to claim as many as the machine offers).
func New(a *core.Asm, maxPhys int) (*Asm, error) {
	v := &Asm{A: a}
	for i := range v.stageI {
		r, err := a.GetReg(core.Temp)
		if err != nil {
			return nil, fmt.Errorf("vreg: reserving staging registers: %w", err)
		}
		v.stageI[i] = r
	}
	for i := range v.stageF {
		r, err := a.GetFReg(core.Temp)
		if err != nil {
			return nil, fmt.Errorf("vreg: reserving FP staging registers: %w", err)
		}
		v.stageF[i] = r
	}
	_ = maxPhys
	return v, nil
}

// Reg allocates a virtual register of type t.  Physical registers are
// used while the allocator has them (persistent class, so values survive
// calls); later virtual registers spill to stack locals.
func (v *Asm) Reg(t core.Type) Reg {
	var phys core.Reg
	var err error
	if t.IsFloat() {
		phys, err = v.A.GetFReg(core.Var)
	} else {
		phys, err = v.A.GetReg(core.Var)
	}
	if err == nil {
		v.vars = append(v.vars, vinfo{t: t, phys: phys})
	} else {
		v.vars = append(v.vars, vinfo{t: t, local: v.A.Local(t), spilled: true})
	}
	return Reg(len(v.vars) - 1)
}

// Spilled reports whether r lives on the stack (tests, diagnostics).
func (v *Asm) Spilled(r Reg) bool { return v.vars[r].spilled }

// use brings a virtual register's value into a physical register for
// reading, staging through slot when spilled.
func (v *Asm) use(r Reg, slot int) core.Reg {
	in := v.vars[r]
	if !in.spilled {
		return in.phys
	}
	stage := v.stageI[slot]
	if in.t.IsFloat() {
		stage = v.stageF[slot]
	}
	v.A.LdLocal(in.t, stage, in.local)
	return stage
}

// def returns a physical register to compute a result into, and a commit
// function storing it back when the virtual register is spilled.
func (v *Asm) def(r Reg) (core.Reg, func()) {
	in := v.vars[r]
	if !in.spilled {
		return in.phys, func() {}
	}
	stage := v.stageI[0]
	if in.t.IsFloat() {
		stage = v.stageF[0]
	}
	return stage, func() { v.A.StLocal(in.t, stage, in.local) }
}

// ALU emits rd = rs1 op rs2 over virtual registers.
func (v *Asm) ALU(op core.Op, t core.Type, rd, rs1, rs2 Reg) {
	a := v.use(rs1, 0)
	b := v.use(rs2, 1)
	d, commit := v.def(rd)
	v.A.ALU(op, t, d, a, b)
	commit()
}

// ALUI emits rd = rs op imm.
func (v *Asm) ALUI(op core.Op, t core.Type, rd, rs Reg, imm int64) {
	a := v.use(rs, 1)
	d, commit := v.def(rd)
	v.A.ALUI(op, t, d, a, imm)
	commit()
}

// Unary emits rd = op rs.
func (v *Asm) Unary(op core.Op, t core.Type, rd, rs Reg) {
	a := v.use(rs, 1)
	d, commit := v.def(rd)
	v.A.Unary(op, t, d, a)
	commit()
}

// SetI emits rd = imm.
func (v *Asm) SetI(t core.Type, rd Reg, imm int64) {
	d, commit := v.def(rd)
	v.A.SetI(t, d, imm)
	commit()
}

// SetD emits rd = imm for doubles.
func (v *Asm) SetD(rd Reg, imm float64) {
	d, commit := v.def(rd)
	v.A.SetD(d, imm)
	commit()
}

// LdI emits rd = *(t*)(base + off).
func (v *Asm) LdI(t core.Type, rd, base Reg, off int64) {
	b := v.use(base, 1)
	d, commit := v.def(rd)
	v.A.LdI(t, d, b, off)
	commit()
}

// StI emits *(t*)(base + off) = rs.
func (v *Asm) StI(t core.Type, rs, base Reg, off int64) {
	s := v.use(rs, 0)
	b := v.use(base, 1)
	v.A.StI(t, s, b, off)
}

// Br emits a conditional branch comparing two virtual registers.
func (v *Asm) Br(op core.Op, t core.Type, rs1, rs2 Reg, l core.Label) {
	a := v.use(rs1, 0)
	b := v.use(rs2, 1)
	v.A.Br(op, t, a, b, l)
}

// BrI emits a conditional branch against an immediate.
func (v *Asm) BrI(op core.Op, t core.Type, rs Reg, imm int64, l core.Label) {
	a := v.use(rs, 0)
	v.A.BrI(op, t, a, imm, l)
}

// MovFrom copies a physical register (e.g. an incoming argument) into a
// virtual register.
func (v *Asm) MovFrom(t core.Type, rd Reg, src core.Reg) {
	d, commit := v.def(rd)
	v.A.Unary(core.OpMov, t, d, src)
	commit()
}

// Ret returns the value of a virtual register.
func (v *Asm) Ret(t core.Type, rs Reg) {
	v.A.Ret(t, v.use(rs, 0))
}
