package vreg

import (
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
)

type target struct {
	name string
	bk   core.Backend
	mk   func() *core.Machine
}

func targets() []target {
	return []target{
		{"mips", mips.New(), func() *core.Machine {
			m := mem.New(1<<22, false)
			return core.NewMachine(mips.New(), mips.NewCPU(m), m)
		}},
		{"sparc", sparc.New(), func() *core.Machine {
			m := mem.New(1<<22, true)
			return core.NewMachine(sparc.New(), sparc.NewCPU(m), m)
		}},
		{"alpha", alpha.New(), func() *core.Machine {
			m := mem.New(1<<22, false)
			return core.NewMachine(alpha.New(), alpha.NewCPU(m), m)
		}},
	}
}

// TestManyVirtualRegisters allocates far more virtual registers than the
// machine has physical ones, fills each with a distinct value, and sums
// them — spilled and register-resident virtuals must behave identically.
func TestManyVirtualRegisters(t *testing.T) {
	const n = 40
	for _, tg := range targets() {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			a := core.NewAsm(tg.bk)
			if _, err := a.Begin("", core.NonLeaf); err != nil {
				t.Fatal(err)
			}
			v, err := New(a, 0)
			if err != nil {
				t.Fatal(err)
			}
			regs := make([]Reg, n)
			spilled := 0
			for i := range regs {
				regs[i] = v.Reg(core.TypeI)
				v.SetI(core.TypeI, regs[i], int64(i+1))
				if v.Spilled(regs[i]) {
					spilled++
				}
			}
			if spilled == 0 {
				t.Fatalf("expected some of %d virtual registers to spill", n)
			}
			acc := v.Reg(core.TypeI)
			v.SetI(core.TypeI, acc, 0)
			for i := range regs {
				v.ALU(core.OpAdd, core.TypeI, acc, acc, regs[i])
			}
			v.Ret(core.TypeI, acc)
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tg.mk().Call(fn)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(n * (n + 1) / 2); got.Int() != want {
				t.Fatalf("sum = %d, want %d", got.Int(), want)
			}
		})
	}
}

// TestVirtualLoop runs a loop keeping its induction variable and
// accumulator in spilled virtual registers.
func TestVirtualLoop(t *testing.T) {
	tg := targets()[0]
	a := core.NewAsm(tg.bk)
	args, err := a.Begin("%i", core.NonLeaf)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust physical registers so the loop state is genuinely spilled.
	for i := 0; i < 32; i++ {
		v.Reg(core.TypeI)
	}
	n := v.Reg(core.TypeI)
	acc := v.Reg(core.TypeI)
	if !v.Spilled(n) || !v.Spilled(acc) {
		t.Fatal("loop state should be spilled for this test")
	}
	v.MovFrom(core.TypeI, n, args[0])
	v.SetI(core.TypeI, acc, 0)
	top, done := a.NewLabel(), a.NewLabel()
	a.Bind(top)
	v.BrI(core.OpBle, core.TypeI, n, 0, done)
	v.ALU(core.OpAdd, core.TypeI, acc, acc, n)
	v.ALUI(core.OpSub, core.TypeI, n, n, 1)
	a.Jmp(top)
	a.Bind(done)
	v.Ret(core.TypeI, acc)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tg.mk().Call(fn, core.I(100))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 5050 {
		t.Fatalf("sum(100) = %d", got.Int())
	}
}

// TestVirtualDoubles exercises the FP bank including spills.
func TestVirtualDoubles(t *testing.T) {
	tg := targets()[0]
	a := core.NewAsm(tg.bk)
	if _, err := a.Begin("", core.NonLeaf); err != nil {
		t.Fatal(err)
	}
	v, err := New(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	regs := make([]Reg, n)
	spilled := 0
	for i := range regs {
		regs[i] = v.Reg(core.TypeD)
		v.SetD(regs[i], float64(i)+0.5)
		if v.Spilled(regs[i]) {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("expected FP spills")
	}
	acc := v.Reg(core.TypeD)
	v.SetD(acc, 0)
	for i := range regs {
		v.ALU(core.OpAdd, core.TypeD, acc, acc, regs[i])
	}
	v.Ret(core.TypeD, acc)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tg.mk().Call(fn)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < n; i++ {
		want += float64(i) + 0.5
	}
	if got.Float64() != want {
		t.Fatalf("sum = %v, want %v", got.Float64(), want)
	}
}
