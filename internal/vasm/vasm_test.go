package vasm

import (
	"strings"
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
)

func machines() map[string]*core.Machine {
	mm := mem.New(1<<24, false)
	sm := mem.New(1<<24, true)
	am := mem.New(1<<24, false)
	return map[string]*core.Machine{
		"mips":  core.NewMachine(mips.New(), mips.NewCPU(mm), mm),
		"sparc": core.NewMachine(sparc.New(), sparc.NewCPU(sm), sm),
		"alpha": core.NewMachine(alpha.New(), alpha.NewCPU(am), am),
	}
}

const factSrc = `
; iterative factorial
.func fact (%i) leaf
.reg acc temp i
    seti    acc, 1
loop:
    bleii   arg0, 1, done
    muli    acc, acc, arg0
    subii   arg0, arg0, 1
    jmp     loop
done:
    reti    acc
.end
`

func TestFactorialAllTargets(t *testing.T) {
	for name, m := range machines() {
		prog, err := Assemble(m, factSrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := prog.Run("fact", core.I(6))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Int() != 720 {
			t.Errorf("%s: fact(6) = %d", name, got.Int())
		}
	}
}

const callSrc = `
.func square (%i) leaf
    muli   arg0, arg0, arg0
    reti   arg0
.end

; sum of squares 1..n, calling square (defined above) each iteration
.func sumsq (%i)
.reg acc var i
.reg n var i
    movi    n, arg0
    seti    acc, 0
loop:
    bleii   n, 0, done
    startcall (%i)
    setarg  0, n
    call    square
.reg tmp temp i
    retval  i, tmp
    addi    acc, acc, tmp
    subii   n, n, 1
    jmp     loop
done:
    reti    acc
.end
`

func TestCrossFunctionCalls(t *testing.T) {
	for name, m := range machines() {
		prog, err := Assemble(m, callSrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := prog.Run("sumsq", core.I(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Int() != 55 {
			t.Errorf("%s: sumsq(5) = %d, want 55", name, got.Int())
		}
	}
}

const recSrc = `
; recursive fibonacci: forward reference to itself through the table
.func fib (%i)
.reg n var i
.reg a var i
    movi    n, arg0
    bltii   n, 2, base
    startcall (%i)
    subii   n, n, 1
    setarg  0, n
    call    fib
    retval  i, a
    startcall (%i)
    subii   n, n, 1
    setarg  0, n
    call    fib
.reg b temp i
    retval  i, b
    addi    a, a, b
    reti    a
base:
    reti    n
.end
`

func TestRecursion(t *testing.T) {
	m := machines()["mips"]
	prog, err := Assemble(m, recSrc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run("fib", core.I(12))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 144 {
		t.Errorf("fib(12) = %d, want 144", got.Int())
	}
}

const localSrc = `
.func spill (%i) leaf
.local slot i
.reg r temp i
    stii    arg0, sp, slot
    seti    arg0, 0
    ldii    r, sp, slot
    addii   r, r, 5
    reti    r
.end
`

func TestLocalsAndDoubles(t *testing.T) {
	m := machines()["mips"]
	prog, err := Assemble(m, localSrc+`
.func half (%d) leaf
.reg two temp d
    setd   two, 2.0
    divd   arg0, arg0, two
    retd   arg0
.end

.func hyp (%d%d) leaf
    muld   arg0, arg0, arg0
    muld   arg1, arg1, arg1
    addd   arg0, arg0, arg1
    ext    sqrt, d, arg0, arg0
    retd   arg0
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run("spill", core.I(37))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Errorf("spill(37) = %d", got.Int())
	}
	got, err = prog.Run("half", core.D(9))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float64() != 4.5 {
		t.Errorf("half(9) = %v", got.Float64())
	}
	got, err = prog.Run("hyp", core.D(3), core.D(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float64() != 5 {
		t.Errorf("hyp(3,4) = %v", got.Float64())
	}
}

const dataSrc = `
.data squares
.word 0, 1, 4, 9, 16, 25, 36, 49

.func lookup (%i) leaf
.reg p temp p
.reg idx temp i
    setsym  p, squares
    lshii   idx, arg0, 2
    ldi     arg0, p, idx
    reti    arg0
.end
`

func TestDataSections(t *testing.T) {
	for name, m := range machines() {
		prog, err := Assemble(m, dataSrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for n := int32(0); n < 8; n++ {
			got, err := prog.Run("lookup", core.I(n))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got.Int() != int64(n*n) {
				t.Errorf("%s: lookup(%d) = %d", name, n, got.Int())
			}
		}
	}
}

func TestAssemblyErrors(t *testing.T) {
	m := machines()["mips"]
	for _, src := range []string{
		".func f (%i) leaf\n frob arg0\n.end",       // unknown instruction
		".func f (%i) leaf\n addi arg0, arg0\n.end", // wrong arity
		".func f (%i) leaf\n reti argX\n.end",       // unknown register
		".func f (%i) leaf\n jmp nowhere\n.end",     // unbound label
		".func f (%i) leaf\n reti arg0",             // missing .end
		"addi t0, t0, t0",                           // outside .func
		".func f (%i) leaf\n call g\n.end",          // unknown function
		".func f (%i) leaf\n.func g (%i)\n.end\n.end",
	} {
		if _, err := Assemble(m, src); err == nil {
			t.Errorf("assembled without error:\n%s", src)
		}
	}
}

func TestCallSymTrap(t *testing.T) {
	m := machines()["mips"]
	conv := m.Backend().DefaultConv()
	if err := m.DefineTrap("triple", func(c core.CPU, _ *mem.Memory) {
		c.SetReg(conv.RetInt, 3*c.Reg(conv.IntArgs[0]))
	}); err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(m, `
.func t3 (%i)
.reg r temp i
    startcall (%i)
    setarg  0, arg0
    callsym triple
    retval  i, r
    reti    r
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run("t3", core.I(14))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Fatalf("t3(14) = %d", got.Int())
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	m := machines()["mips"]
	src := strings.ReplaceAll(factSrc, "loop:", "loop: ; top of loop")
	prog, err := Assemble(m, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run("fact", core.I(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 6 {
		t.Errorf("fact(3) = %d", got.Int())
	}
}
