package vasm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

// FuzzVasmParse feeds arbitrary source through the full assemble path —
// parse, emit, install (which runs the pre-install verifier) — on a
// fresh machine.  Any input must yield a program or an error; a panic
// fails the fuzz run.
func FuzzVasmParse(f *testing.F) {
	f.Add(factSrc)
	f.Add(callSrc)
	f.Add(recSrc)
	f.Add(".func f (%i) leaf\n reti arg0\n.end\n")
	f.Add(".func f (%i) leaf\n.reg a\n seti a, 9\nloop:\n subii arg0, arg0, 1\n bgtii arg0, 0, loop\n reti a\n.end\n")
	f.Add(".func f () leaf\n.local x 8\n retv\n.end\n")
	f.Add(".func f (%i)\n startcall (%i)\n setarg 0, arg0\n callsym missing\n retv\n.end\n")
	f.Add("; comment only\n")
	f.Add(".func")
	f.Add(".end")
	f.Fuzz(func(t *testing.T, src string) {
		m := mem.New(1<<21, false)
		machine := core.NewMachine(mips.New(), mips.NewCPU(m), m)
		prog, err := Assemble(machine, src)
		if err == nil && prog == nil {
			t.Error("nil program without error")
		}
	})
}
