package vasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

type insnKind uint8

const (
	kALU insnKind = iota
	kALUI
	kUnary
	kSet
	kLd
	kLdI
	kSt
	kStI
	kBr
	kBrI
	kRet
	kCvt
)

type insnDef struct {
	kind     insnKind
	op       core.Op
	t        core.Type
	from, to core.Type
}

// insnTable maps the paper's instruction names (addii, bltuli, cvi2d, …)
// onto the generic emitters — built by composition, exactly like the
// generated method layer.  A construction failure (a typo'd type letter in
// the table source) is held in insnTableErr and surfaced on first lookup
// rather than panicking at package init.
var insnTable, insnTableErr = buildInsnTable()

func buildInsnTable() (map[string]insnDef, error) {
	m := map[string]insnDef{}
	var buildErr error
	types := func(ss ...string) []core.Type {
		out := make([]core.Type, len(ss))
		for i, s := range ss {
			t, err := core.ParseType(s)
			if err != nil {
				if buildErr == nil {
					buildErr = fmt.Errorf("vasm: instruction table: %w", err)
				}
				continue
			}
			out[i] = t
		}
		return out
	}
	word := types("i", "u", "l", "ul")
	all := types("i", "u", "l", "ul", "p", "f", "d")
	memT := types("c", "uc", "s", "us", "i", "u", "l", "ul", "p", "f", "d")

	addFam := func(base string, op core.Op, ts []core.Type, imm bool) {
		for _, t := range ts {
			m[base+t.Letter()] = insnDef{kind: kALU, op: op, t: t}
			if imm && !t.IsFloat() {
				m[base+t.Letter()+"i"] = insnDef{kind: kALUI, op: op, t: t}
			}
		}
	}
	addFam("add", core.OpAdd, all, true)
	addFam("sub", core.OpSub, all, true)
	addFam("mul", core.OpMul, all, true)
	addFam("div", core.OpDiv, all, true)
	addFam("mod", core.OpMod, types("i", "u", "l", "ul", "p"), true)
	addFam("and", core.OpAnd, word, true)
	addFam("or", core.OpOr, word, true)
	addFam("xor", core.OpXor, word, true)
	addFam("lsh", core.OpLsh, word, true)
	addFam("rsh", core.OpRsh, word, true)

	for _, u := range []struct {
		base string
		op   core.Op
		ts   []core.Type
	}{
		{"com", core.OpCom, word},
		{"not", core.OpNot, word},
		{"mov", core.OpMov, all},
		{"neg", core.OpNeg, types("i", "l", "f", "d")},
	} {
		for _, t := range u.ts {
			m[u.base+t.Letter()] = insnDef{kind: kUnary, op: u.op, t: t}
		}
	}
	for _, t := range all {
		m["set"+t.Letter()] = insnDef{kind: kSet, t: t}
		m["ret"+t.Letter()] = insnDef{kind: kRet, t: t}
	}
	for _, t := range memT {
		m["ld"+t.Letter()] = insnDef{kind: kLd, t: t}
		m["ld"+t.Letter()+"i"] = insnDef{kind: kLdI, t: t}
		m["st"+t.Letter()] = insnDef{kind: kSt, t: t}
		m["st"+t.Letter()+"i"] = insnDef{kind: kStI, t: t}
	}
	for _, b := range []struct {
		base string
		op   core.Op
	}{
		{"blt", core.OpBlt}, {"ble", core.OpBle}, {"bgt", core.OpBgt},
		{"bge", core.OpBge}, {"beq", core.OpBeq}, {"bne", core.OpBne},
	} {
		for _, t := range all {
			m[b.base+t.Letter()] = insnDef{kind: kBr, op: b.op, t: t}
			if !t.IsFloat() {
				m[b.base+t.Letter()+"i"] = insnDef{kind: kBrI, op: b.op, t: t}
			}
		}
	}
	for _, from := range all {
		for _, to := range all {
			if from != to {
				m["cv"+from.Letter()+"2"+to.Letter()] = insnDef{kind: kCvt, from: from, to: to}
			}
		}
	}
	return m, buildErr
}

func (p *parser) insn(f []string) error {
	name, ops := f[0], f[1:]
	a := p.a

	// Directive-like instructions first.
	switch name {
	case "nop":
		a.Nop()
		return a.Err()
	case "retv":
		a.RetVoid()
		return a.Err()
	case "jmp":
		if len(ops) != 1 {
			return p.errf("jmp needs a label")
		}
		a.Jmp(p.label(ops[0]))
		return a.Err()
	case "jmpr":
		r, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		a.JmpReg(r)
		return a.Err()
	case "startcall":
		if len(ops) != 1 {
			return p.errf("startcall needs a signature")
		}
		a.StartCall(strings.Trim(ops[0], "()"))
		return a.Err()
	case "setarg":
		if len(ops) != 2 {
			return p.errf("setarg needs: index, reg")
		}
		n, err := strconv.Atoi(ops[0])
		if err != nil {
			return p.errf("bad argument index %q", ops[0])
		}
		r, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		a.SetArg(n, r)
		return a.Err()
	case "call":
		if len(ops) != 1 {
			return p.errf("call needs a function name")
		}
		slot, ok := p.prog.slots[ops[0]]
		if !ok {
			return p.errf("call to unknown function %q", ops[0])
		}
		ptrReg, err := a.GetReg(core.Temp)
		if err != nil {
			return p.errf("%v", err)
		}
		addr := p.prog.table + uint64(slot*p.backend.PtrBytes())
		a.Setp(ptrReg, int64(addr))
		a.Ldpi(ptrReg, ptrReg, 0)
		a.CallReg(ptrReg)
		a.PutReg(ptrReg)
		return a.Err()
	case "setsym":
		if len(ops) != 2 {
			return p.errf("setsym needs: reg, symbol")
		}
		r, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		a.SetSym(r, ops[1])
		return a.Err()
	case "callsym":
		if len(ops) != 1 {
			return p.errf("callsym needs a symbol")
		}
		a.CallSym(ops[0])
		return a.Err()
	case "callr":
		r, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		a.CallReg(r)
		return a.Err()
	case "retval":
		if len(ops) != 2 {
			return p.errf("retval needs: type, reg")
		}
		t, err := core.ParseType(ops[0])
		if err != nil {
			return p.errf("%v", err)
		}
		r, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		a.RetVal(t, r)
		return a.Err()
	case "ext":
		if len(ops) < 3 {
			return p.errf("ext needs: name, type, rd [, rs...]")
		}
		t, err := core.ParseType(ops[1])
		if err != nil {
			return p.errf("%v", err)
		}
		rd, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		var rs []core.Reg
		for _, o := range ops[3:] {
			r, err := p.reg(o)
			if err != nil {
				return err
			}
			rs = append(rs, r)
		}
		a.Ext(ops[0], t, rd, rs...)
		return a.Err()
	}

	if insnTableErr != nil {
		return insnTableErr
	}
	d, ok := insnTable[name]
	if !ok {
		return p.errf("unknown instruction %q", name)
	}
	need := func(n int) error {
		if len(ops) != n {
			return p.errf("%s takes %d operands, got %d", name, n, len(ops))
		}
		return nil
	}
	switch d.kind {
	case kALU:
		if err := need(3); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		a.ALU(d.op, d.t, rd, rs1, rs2)
	case kALUI:
		if err := need(3); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		imm, err := p.imm(ops[2])
		if err != nil {
			return err
		}
		a.ALUI(d.op, d.t, rd, rs, imm)
	case kUnary:
		if err := need(2); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		a.Unary(d.op, d.t, rd, rs)
	case kSet:
		if err := need(2); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		switch d.t {
		case core.TypeF:
			v, err := strconv.ParseFloat(ops[1], 32)
			if err != nil {
				return p.errf("bad float %q", ops[1])
			}
			a.SetF(rd, float32(v))
		case core.TypeD:
			v, err := strconv.ParseFloat(ops[1], 64)
			if err != nil {
				return p.errf("bad double %q", ops[1])
			}
			a.SetD(rd, v)
		default:
			imm, err := p.imm(ops[1])
			if err != nil {
				return err
			}
			a.SetI(d.t, rd, imm)
		}
	case kLd, kSt:
		if err := need(3); err != nil {
			return err
		}
		r0, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		r1, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		r2, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		if d.kind == kLd {
			a.Ld(d.t, r0, r1, r2)
		} else {
			a.St(d.t, r0, r1, r2)
		}
	case kLdI, kStI:
		if err := need(3); err != nil {
			return err
		}
		r0, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		r1, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		// The offset may be a named local.
		var off int64
		if lo, ok := p.locals[ops[2]]; ok {
			off = lo
			r1stash := r1
			_ = r1stash
			if ops[1] != "sp" {
				return p.errf("local %q must be addressed off sp", ops[2])
			}
		} else {
			off, err = p.imm(ops[2])
			if err != nil {
				return err
			}
		}
		if d.kind == kLdI {
			a.LdI(d.t, r0, r1, off)
		} else {
			a.StI(d.t, r0, r1, off)
		}
	case kBr:
		if err := need(3); err != nil {
			return err
		}
		rs1, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs2, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		a.Br(d.op, d.t, rs1, rs2, p.label(ops[2]))
	case kBrI:
		if err := need(3); err != nil {
			return err
		}
		rs, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		imm, err := p.imm(ops[1])
		if err != nil {
			return err
		}
		a.BrI(d.op, d.t, rs, imm, p.label(ops[2]))
	case kRet:
		if err := need(1); err != nil {
			return err
		}
		rs, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		a.Ret(d.t, rs)
	case kCvt:
		if err := need(2); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		a.Cvt(d.from, d.to, rd, rs)
	default:
		return p.errf("unhandled instruction kind for %q", name)
	}
	if err := a.Err(); err != nil {
		return fmt.Errorf("vasm: line %d: %s: %w", p.line, name, err)
	}
	return nil
}
