// Package vasm implements a textual assembly language for the VCODE
// instruction set, using the paper's instruction naming (v_addii is
// written addii).  It is both a demonstration client — every instruction
// line maps one-to-one onto a VCODE per-instruction call — and a handy
// tool: cmd/vasm assembles a file, installs the functions on a simulated
// target, and runs one of them.
//
// Syntax:
//
//	; comment
//	.func name (%i%i) leaf     ; v_lambda: signature and leaf flag
//	.reg  acc var i            ; v_getreg: named register, class, type
//	.local buf d               ; v_local: named stack slot (use with ld/st)
//	    seti    acc, 0
//	loop:                      ; label binds here
//	    addi    acc, acc, arg0
//	    subii   arg1, arg1, 1
//	    bgtii   arg1, 0, loop
//	    reti    acc
//	.end                       ; v_end
//
// Registers: arg0..argN name the incoming parameters, t0../s0../ft0../fs0..
// are the hard-coded names of §5.3, and .reg-declared names are
// allocator-managed.  call <func> invokes another .func from the same
// file (resolved through a function table, so order and recursion are
// unconstrained); callsym <symbol> invokes a machine symbol.
//
// Data sections declare named tables in simulated memory:
//
//	.data squares
//	.word 0, 1, 4, 9, 16
//
// and generated code takes their address with `setsym rd, squares`.
package vasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Program is an assembled unit, ready to install.
type Program struct {
	Funcs map[string]*core.Func
	Order []string

	machine *core.Machine
	slots   map[string]int
	table   uint64
}

// Assemble parses and assembles src for the machine's backend.  All
// functions are installed and cross-function calls resolved.
func Assemble(machine *core.Machine, src string) (*Program, error) {
	p := &parser{
		machine: machine,
		backend: machine.Backend(),
		prog: &Program{
			Funcs:   map[string]*core.Func{},
			machine: machine,
			slots:   map[string]int{},
		},
	}
	if err := p.scanFuncs(src); err != nil {
		return nil, err
	}
	if err := p.layoutData(src); err != nil {
		return nil, err
	}
	ptr := p.backend.PtrBytes()
	table, err := machine.Alloc(ptr * len(p.prog.slots))
	if err != nil {
		return nil, err
	}
	p.prog.table = table
	if err := p.assemble(src); err != nil {
		return nil, err
	}
	for _, name := range p.prog.Order {
		if err := machine.Install(p.prog.Funcs[name]); err != nil {
			return nil, err
		}
	}
	for name, slot := range p.prog.slots {
		addr := table + uint64(slot*ptr)
		if err := machine.Mem().Store(addr, ptr, p.prog.Funcs[name].EntryAddr()); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

// Run calls an assembled function.
func (p *Program) Run(name string, args ...core.Value) (core.Value, error) {
	fn, ok := p.Funcs[name]
	if !ok {
		return core.Value{}, fmt.Errorf("vasm: no function %q", name)
	}
	return p.machine.Call(fn, args...)
}

type parser struct {
	machine *core.Machine
	backend core.Backend
	prog    *Program

	// per-function state
	a      *core.Asm
	name   string
	regs   map[string]core.Reg
	locals map[string]int64
	labels map[string]core.Label
	line   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("vasm: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// scanFuncs pre-registers every function name so calls resolve in any
// order.
func (p *parser) scanFuncs(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		f := fields(raw)
		if len(f) > 0 && f[0] == ".func" {
			if len(f) < 2 {
				return p.errf(".func needs a name")
			}
			if _, dup := p.prog.slots[f[1]]; dup {
				return p.errf("function %q redefined", f[1])
			}
			p.prog.slots[f[1]] = len(p.prog.slots)
			p.prog.Order = append(p.prog.Order, f[1])
		}
	}
	return nil
}

// layoutData allocates and fills .data sections and registers their
// symbols before any code is assembled.
func (p *parser) layoutData(src string) error {
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		p.line = i + 1
		f := fields(lines[i])
		if len(f) == 0 || f[0] != ".data" {
			continue
		}
		if len(f) != 2 {
			return p.errf(".data needs a name")
		}
		name := f[1]
		var words []uint32
		j := i + 1
		for ; j < len(lines); j++ {
			p.line = j + 1
			df := fields(lines[j])
			if len(df) == 0 {
				continue
			}
			if df[0] != ".word" {
				break
			}
			for _, tok := range df[1:] {
				v, err := strconv.ParseInt(tok, 0, 64)
				if err != nil {
					return p.errf("bad .word value %q", tok)
				}
				words = append(words, uint32(v))
			}
		}
		if len(words) == 0 {
			return p.errf(".data %s has no .word lines", name)
		}
		addr, err := p.machine.Alloc(4 * len(words))
		if err != nil {
			return p.errf("%v", err)
		}
		for k, w := range words {
			if err := p.machine.Mem().Store(addr+uint64(4*k), 4, uint64(w)); err != nil {
				return p.errf("%v", err)
			}
		}
		if err := p.machine.DefineSym(name, addr); err != nil {
			return p.errf("%v", err)
		}
		i = j - 1
	}
	return nil
}

// fields splits an assembly line into tokens, dropping comments and
// commas.
func fields(raw string) []string {
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	raw = strings.ReplaceAll(raw, ",", " ")
	return strings.Fields(raw)
}

func (p *parser) assemble(src string) error {
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		p.line = i + 1
		f := fields(lines[i])
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case ".func":
			if p.a != nil {
				return p.errf("nested .func")
			}
			if err := p.beginFunc(f[1:]); err != nil {
				return err
			}
		case ".end":
			if p.a == nil {
				return p.errf(".end outside .func")
			}
			fn, err := p.a.End()
			if err != nil {
				return p.errf("%v", err)
			}
			p.prog.Funcs[p.name] = fn
			p.a = nil
		case ".data", ".word":
			// Consumed by layoutData; must sit outside functions.
			if p.a != nil {
				return p.errf("%s inside .func", f[0])
			}
		case ".reg":
			if err := p.declReg(f[1:]); err != nil {
				return err
			}
		case ".local":
			if err := p.declLocal(f[1:]); err != nil {
				return err
			}
		default:
			if p.a == nil {
				return p.errf("instruction outside .func")
			}
			if strings.HasSuffix(f[0], ":") {
				p.a.Bind(p.label(strings.TrimSuffix(f[0], ":")))
				f = f[1:]
				if len(f) == 0 {
					continue
				}
			}
			if err := p.insn(f); err != nil {
				return err
			}
		}
	}
	if p.a != nil {
		return p.errf("missing .end")
	}
	return nil
}

func (p *parser) beginFunc(f []string) error {
	if len(f) < 2 {
		return p.errf(".func needs: name (sig) [leaf]")
	}
	p.name = f[0]
	sig := strings.Trim(f[1], "()")
	leaf := len(f) > 2 && f[2] == "leaf"
	p.a = core.NewAsm(p.backend)
	p.a.SetName(p.name)
	args, err := p.a.Begin(sig, leaf)
	if err != nil {
		return p.errf("%v", err)
	}
	p.regs = map[string]core.Reg{}
	p.locals = map[string]int64{}
	p.labels = map[string]core.Label{}
	for i, r := range args {
		p.regs[fmt.Sprintf("arg%d", i)] = r
	}
	return nil
}

func (p *parser) declReg(f []string) error {
	if p.a == nil {
		return p.errf(".reg outside .func")
	}
	if len(f) != 3 {
		return p.errf(".reg needs: name temp|var type")
	}
	class := core.Temp
	switch f[1] {
	case "temp":
	case "var":
		class = core.Var
	default:
		return p.errf("class %q (want temp or var)", f[1])
	}
	t, err := core.ParseType(f[2])
	if err != nil {
		return p.errf("%v", err)
	}
	var r core.Reg
	if t.IsFloat() {
		r, err = p.a.GetFReg(class)
	} else {
		r, err = p.a.GetReg(class)
	}
	if err != nil {
		return p.errf("%v", err)
	}
	p.regs[f[0]] = r
	return nil
}

func (p *parser) declLocal(f []string) error {
	if p.a == nil {
		return p.errf(".local outside .func")
	}
	if len(f) != 2 {
		return p.errf(".local needs: name type")
	}
	t, err := core.ParseType(f[1])
	if err != nil {
		return p.errf("%v", err)
	}
	p.locals[f[0]] = p.a.Local(t)
	return nil
}

func (p *parser) label(name string) core.Label {
	if l, ok := p.labels[name]; ok {
		return l
	}
	l := p.a.NewLabel()
	p.labels[name] = l
	return l
}

func (p *parser) reg(tok string) (core.Reg, error) {
	if r, ok := p.regs[tok]; ok {
		return r, nil
	}
	if tok == "sp" {
		return p.a.SP(), nil
	}
	for _, h := range []struct {
		prefix string
		get    func(int) core.Reg
	}{
		{"ft", p.a.FT}, {"fs", p.a.FS}, {"t", p.a.T}, {"s", p.a.S},
	} {
		if strings.HasPrefix(tok, h.prefix) {
			if n, err := strconv.Atoi(tok[len(h.prefix):]); err == nil {
				r := h.get(n)
				if err := p.a.Err(); err != nil {
					return core.NoReg, p.errf("%q: %v", tok, err)
				}
				return r, nil
			}
		}
	}
	return core.NoReg, p.errf("unknown register %q", tok)
}

func (p *parser) imm(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", tok)
	}
	return v, nil
}
