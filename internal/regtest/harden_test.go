package regtest

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/verify"
)

// buildCountdown assembles f(n) = n + (n-1) + … + 1 with a backward
// conditional branch — the shape the corruption tests pick apart.
func buildCountdown(t *testing.T, tg Target) *core.Func {
	t.Helper()
	a := core.NewAsm(tg.Backend)
	a.SetName("countdown")
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a.Seti(acc, 0)
	top := a.NewLabel()
	a.Bind(top)
	a.Addi(acc, acc, args[0])
	a.Subii(args[0], args[0], 1)
	a.Bgtii(args[0], 0, top)
	a.Reti(acc)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// TestVerifierRejectsCorruptedBranch flips the displacement sign bit of
// the loop branch in a good function: the pre-install verifier must
// reject the now out-of-range target, the failed install must roll back
// cleanly, and the restored function must install and run.
func TestVerifierRejectsCorruptedBranch(t *testing.T) {
	// Displacement sign-bit position per target ISA (imm16 / disp22 /
	// disp21) — flipping it keeps the opcode but throws the target far
	// out of the function.
	signBit := map[string]uint{"mips": 15, "sparc": 21, "alpha": 20}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			fn := buildCountdown(t, tg)

			branch := -1
			for i, w := range fn.Words {
				in := tg.Backend.Classify(w, uint64(4*i))
				if in.Kind == verify.KindBranch && in.HasTarget {
					branch = i
					break
				}
			}
			if branch < 0 {
				t.Fatal("no conditional branch found to corrupt")
			}
			good := fn.Words[branch]
			fn.Words[branch] = good ^ 1<<signBit[tg.Name]

			err := m.Install(fn)
			if err == nil {
				t.Fatal("install accepted a corrupted branch")
			}
			if !errors.Is(err, verify.ErrBranchTarget) {
				t.Fatalf("err = %v, want ErrBranchTarget", err)
			}
			if m.Installed(fn) {
				t.Fatal("failed install left function marked installed")
			}

			// The rejected install must have rolled back completely:
			// restore the word and everything works.
			fn.Words[branch] = good
			if err := m.Install(fn); err != nil {
				t.Fatalf("reinstall after rollback: %v", err)
			}
			got, err := m.Call(fn, core.I(10))
			if err != nil {
				t.Fatal(err)
			}
			if got.Int() != 55 {
				t.Errorf("countdown(10) = %d, want 55", got.Int())
			}
		})
	}
}

// TestUnboundSymbolInstall installs a function calling a symbol nobody
// defined; the relocation step must fail with an error, not link
// garbage.
func TestUnboundSymbolInstall(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			a := core.NewAsm(tg.Backend)
			a.SetName("dangling")
			if _, err := a.Begin("%i", core.NonLeaf); err != nil {
				t.Fatal(err)
			}
			a.StartCall("")
			a.CallSym("no-such-helper")
			a.RetVoid()
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Install(fn); err == nil {
				t.Fatal("install resolved a symbol that was never defined")
			}
			if m.Installed(fn) {
				t.Error("failed install left function marked installed")
			}
		})
	}
}

// TestCallDeadlineMidLoop runs an infinite loop under a context
// deadline and under a fuel budget; both sandboxes must cut it short
// with their typed error while the simulated CPU is mid-flight.
func TestCallDeadlineMidLoop(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			a := core.NewAsm(tg.Backend)
			a.SetName("spin")
			args, err := a.Begin("%i", core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			top := a.NewLabel()
			a.Bind(top)
			a.Addii(args[0], args[0], 1)
			a.Jmp(top)
			a.Reti(args[0]) // unreachable
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Install(fn); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = m.CallContext(ctx, fn, core.I(0))
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Errorf("cancellation took %v", el)
			}

			_, err = m.CallWith(context.Background(), core.CallOpts{Fuel: 5000}, fn, core.I(0))
			if !errors.Is(err, core.ErrFuelExhausted) {
				t.Fatalf("err = %v, want ErrFuelExhausted", err)
			}
		})
	}
}

// TestTrapPanicRecovery registers a runtime helper that panics; the
// sandbox must surface it as a *TrapPanicError naming the trap, and the
// machine must stay usable afterwards.
func TestTrapPanicRecovery(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			if err := m.DefineTrap("boom", func(core.CPU, *mem.Memory) {
				panic("helper exploded")
			}); err != nil {
				t.Fatal(err)
			}

			a := core.NewAsm(tg.Backend)
			a.SetName("caller")
			if _, err := a.Begin("%i", core.NonLeaf); err != nil {
				t.Fatal(err)
			}
			a.StartCall("")
			a.CallSym("boom")
			a.RetVoid()
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Install(fn); err != nil {
				t.Fatal(err)
			}

			_, err = m.Call(fn, core.I(0))
			var tp *core.TrapPanicError
			if !errors.As(err, &tp) {
				t.Fatalf("err = %v, want *TrapPanicError", err)
			}
			if tp.Sym != "boom" || tp.Value != "helper exploded" {
				t.Errorf("trap panic contents: %+v", tp)
			}

			// The machine survives: a healthy function still runs.
			ok := buildCountdown(t, tg)
			if err := m.Install(ok); err != nil {
				t.Fatal(err)
			}
			got, err := m.Call(ok, core.I(4))
			if err != nil {
				t.Fatal(err)
			}
			if got.Int() != 10 {
				t.Errorf("countdown(4) = %d, want 10", got.Int())
			}
		})
	}
}
