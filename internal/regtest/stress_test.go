package regtest

import (
	"testing"

	"repro/internal/core"
)

// TestAsmReuse generates many functions through a single Asm (the paper's
// one-function-at-a-time lifecycle) onto one machine and calls them all:
// state from one function must never leak into the next.
func TestAsmReuse(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			a := core.NewAsm(tg.Backend)
			fns := make([]*core.Func, 60)
			for i := range fns {
				args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
				if err != nil {
					t.Fatalf("fn %d: %v", i, err)
				}
				// Alternate shapes so leftover labels/pools would show.
				switch i % 3 {
				case 0:
					a.Addii(args[0], args[0], int64(i))
				case 1:
					l := a.NewLabel()
					a.Bltii(args[0], 0, l)
					a.Addii(args[0], args[0], int64(i))
					a.Bind(l)
				case 2:
					f, err := a.GetFReg(core.Temp)
					if err != nil {
						t.Fatal(err)
					}
					a.Setd(f, float64(i))
					r, err := a.GetReg(core.Temp)
					if err != nil {
						t.Fatal(err)
					}
					a.Cvd2i(r, f)
					a.Addi(args[0], args[0], r)
				}
				a.Reti(args[0])
				fn, err := a.End()
				if err != nil {
					t.Fatalf("fn %d: %v", i, err)
				}
				fns[i] = fn
			}
			for i, fn := range fns {
				got, err := m.Call(fn, core.I(1000))
				if err != nil {
					t.Fatalf("fn %d: %v", i, err)
				}
				want := int64(1000 + i)
				if i%3 == 1 && 1000 >= 0 {
					want = 1000 + int64(i)
				}
				if got.Int() != want {
					t.Errorf("fn %d returned %d, want %d", i, got.Int(), want)
				}
			}
		})
	}
}

// TestManyInstallsGrowCodeRegion installs enough functions to span a
// large code region and confirms the last still runs.
func TestManyInstallsGrowCodeRegion(t *testing.T) {
	tg := Targets()[0]
	m := tg.NewMachine()
	a := core.NewAsm(tg.Backend)
	var last *core.Func
	for i := 0; i < 300; i++ {
		args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			a.Addii(args[0], args[0], 1)
		}
		a.Reti(args[0])
		fn, err := a.End()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Install(fn); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
		last = fn
	}
	got, err := m.Call(last, core.I(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 50 {
		t.Fatalf("got %d", got.Int())
	}
}

// TestRunawayGuard pins the MaxSteps backstop against non-terminating
// generated code.
func TestRunawayGuard(t *testing.T) {
	tg := Targets()[0]
	m := tg.NewMachine()
	m.MaxSteps = 10000
	a := core.NewAsm(tg.Backend)
	if _, err := a.BeginTypes(nil, core.Leaf); err != nil {
		t.Fatal(err)
	}
	l := a.NewLabel()
	a.Bind(l)
	a.Jmp(l)
	a.Retv()
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(fn); err == nil {
		t.Fatal("infinite loop should trip MaxSteps")
	}
}

// TestMarkRelease reclaims code and heap space (the §5.2 deallocation
// story): after Release, re-installation reuses the same addresses.
func TestMarkRelease(t *testing.T) {
	tg := Targets()[0]
	m := tg.NewMachine()
	build := func(k int64) *core.Func {
		a := core.NewAsm(tg.Backend)
		args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
		if err != nil {
			t.Fatal(err)
		}
		a.Addii(args[0], args[0], k)
		a.Reti(args[0])
		fn, err := a.End()
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}
	mark := m.Mark()
	f1 := build(1)
	if err := m.Install(f1); err != nil {
		t.Fatal(err)
	}
	addr1 := f1.Addr()
	h1, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(mark)
	f2 := build(2)
	if err := m.Install(f2); err != nil {
		t.Fatal(err)
	}
	if f2.Addr() != addr1 {
		t.Errorf("released code space not reused: %#x vs %#x", f2.Addr(), addr1)
	}
	h2, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h1 {
		t.Errorf("released heap not reused: %#x vs %#x", h2, h1)
	}
	got, err := m.Call(f2, core.I(40))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Fatalf("replacement function returned %d", got.Int())
	}
}

// TestBigFrames allocates many locals (well past the save area) and spills
// through them.
func TestBigFrames(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			a := core.NewAsm(tg.Backend)
			args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			const n = 200
			offs := make([]int64, n)
			for i := range offs {
				offs[i] = a.Local(core.TypeI)
				a.Addii(args[0], args[0], 1)
				a.StLocal(core.TypeI, args[0], offs[i])
			}
			acc, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			tmp, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			a.Seti(acc, 0)
			for i := range offs {
				a.LdLocal(core.TypeI, tmp, offs[i])
				a.Addi(acc, acc, tmp)
			}
			a.Reti(acc)
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Call(fn, core.I(0))
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(n * (n + 1) / 2); got.Int() != want {
				t.Fatalf("got %d, want %d", got.Int(), want)
			}
			if fn.FrameBytes < 4*n {
				t.Errorf("frame %d bytes for %d locals", fn.FrameBytes, n)
			}
		})
	}
}
