package regtest

import (
	"fmt"

	"repro/internal/core"
)

// BuildALU generates fn(x, y) { return x op y } for type t.
func BuildALU(bk core.Backend, op core.Op, t core.Type) (*core.Func, error) {
	return BuildALUOn(core.NewAsm(bk), op, t)
}

// BuildALUOn is BuildALU on a caller-supplied assembler, so clients that
// need build-time features configured on the Asm (recording, pooling) can
// reuse the matrix.
func BuildALUOn(a *core.Asm, op core.Op, t core.Type) (*core.Func, error) {
	a.SetName(fmt.Sprintf("%s%s", op, t.Letter()))
	args, err := a.BeginTypes([]core.Type{t, t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	a.ALU(op, t, args[0], args[0], args[1])
	a.Ret(t, args[0])
	return a.End()
}

// BuildALUImm generates fn(x) { return x op imm }.
func BuildALUImm(bk core.Backend, op core.Op, t core.Type, imm int64) (*core.Func, error) {
	return BuildALUImmOn(core.NewAsm(bk), op, t, imm)
}

// BuildALUImmOn is BuildALUImm on a caller-supplied assembler.
func BuildALUImmOn(a *core.Asm, op core.Op, t core.Type, imm int64) (*core.Func, error) {
	a.SetName(fmt.Sprintf("%s%si", op, t.Letter()))
	args, err := a.BeginTypes([]core.Type{t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	a.ALUI(op, t, args[0], args[0], imm)
	a.Ret(t, args[0])
	return a.End()
}

// BuildUnary generates fn(x) { return op x }.
func BuildUnary(bk core.Backend, op core.Op, t core.Type) (*core.Func, error) {
	return BuildUnaryOn(core.NewAsm(bk), op, t)
}

// BuildUnaryOn is BuildUnary on a caller-supplied assembler.
func BuildUnaryOn(a *core.Asm, op core.Op, t core.Type) (*core.Func, error) {
	a.SetName(fmt.Sprintf("%s%s", op, t.Letter()))
	args, err := a.BeginTypes([]core.Type{t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	var rd core.Reg
	if t.IsFloat() {
		rd, err = a.GetFReg(core.Temp)
	} else {
		rd, err = a.GetReg(core.Temp)
	}
	if err != nil {
		return nil, err
	}
	a.Unary(op, t, rd, args[0])
	a.Ret(t, rd)
	return a.End()
}

// BuildBranch generates fn(x, y) { if x op y { return 1 } return 0 }.
func BuildBranch(bk core.Backend, op core.Op, t core.Type) (*core.Func, error) {
	return BuildBranchOn(core.NewAsm(bk), op, t)
}

// BuildBranchOn is BuildBranch on a caller-supplied assembler.
func BuildBranchOn(a *core.Asm, op core.Op, t core.Type) (*core.Func, error) {
	a.SetName(fmt.Sprintf("%s%s", op, t.Letter()))
	args, err := a.BeginTypes([]core.Type{t, t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	r, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	yes := a.NewLabel()
	a.Seti(r, 1)
	a.Br(op, t, args[0], args[1], yes)
	a.Seti(r, 0)
	a.Bind(yes)
	a.Reti(r)
	return a.End()
}

// BuildBranchImm generates fn(x) { if x op imm { return 1 } return 0 }.
func BuildBranchImm(bk core.Backend, op core.Op, t core.Type, imm int64) (*core.Func, error) {
	return BuildBranchImmOn(core.NewAsm(bk), op, t, imm)
}

// BuildBranchImmOn is BuildBranchImm on a caller-supplied assembler.
func BuildBranchImmOn(a *core.Asm, op core.Op, t core.Type, imm int64) (*core.Func, error) {
	a.SetName(fmt.Sprintf("%s%si", op, t.Letter()))
	args, err := a.BeginTypes([]core.Type{t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	r, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	yes := a.NewLabel()
	a.Seti(r, 1)
	a.BrI(op, t, args[0], imm, yes)
	a.Seti(r, 0)
	a.Bind(yes)
	a.Reti(r)
	return a.End()
}

// BuildCvt generates fn(x from) { return (to)x }.
func BuildCvt(bk core.Backend, from, to core.Type) (*core.Func, error) {
	return BuildCvtOn(core.NewAsm(bk), from, to)
}

// BuildCvtOn is BuildCvt on a caller-supplied assembler.
func BuildCvtOn(a *core.Asm, from, to core.Type) (*core.Func, error) {
	a.SetName(fmt.Sprintf("cv%s2%s", from.Letter(), to.Letter()))
	args, err := a.BeginTypes([]core.Type{from}, core.Leaf)
	if err != nil {
		return nil, err
	}
	var rd core.Reg
	if to.IsFloat() {
		rd, err = a.GetFReg(core.Temp)
	} else {
		rd, err = a.GetReg(core.Temp)
	}
	if err != nil {
		return nil, err
	}
	a.Cvt(from, to, rd, args[0])
	a.Ret(to, rd)
	return a.End()
}

// ArgTypeFor returns the register-width parameter type used to carry a
// (possibly sub-word) memory value of type t.
func ArgTypeFor(t core.Type) core.Type {
	switch t {
	case core.TypeC, core.TypeUC, core.TypeS, core.TypeUS:
		return core.TypeI
	default:
		return t
	}
}

// BuildMemRoundtrip generates fn(p, x) { *(t*)p = x; return *(t*)p },
// exercising every load/store type including the synthesized byte and
// halfword forms on Alpha.
func BuildMemRoundtrip(bk core.Backend, t core.Type) (*core.Func, error) {
	return BuildMemRoundtripOn(core.NewAsm(bk), t)
}

// BuildMemRoundtripOn is BuildMemRoundtrip on a caller-supplied assembler.
func BuildMemRoundtripOn(a *core.Asm, t core.Type) (*core.Func, error) {
	at := ArgTypeFor(t)
	a.SetName(fmt.Sprintf("mem%s", t.Letter()))
	args, err := a.BeginTypes([]core.Type{core.TypeP, at}, core.Leaf)
	if err != nil {
		return nil, err
	}
	a.StI(t, args[1], args[0], 0)
	a.LdI(t, args[1], args[0], 0)
	a.Ret(at, args[1])
	return a.End()
}

// BuildMemRoundtripRR is BuildMemRoundtrip with register-offset
// addressing (v_ld / v_st with a register offset): fn(p, off, x).
func BuildMemRoundtripRR(bk core.Backend, t core.Type) (*core.Func, error) {
	return BuildMemRoundtripRROn(core.NewAsm(bk), t)
}

// BuildMemRoundtripRROn is BuildMemRoundtripRR on a caller-supplied
// assembler.
func BuildMemRoundtripRROn(a *core.Asm, t core.Type) (*core.Func, error) {
	at := ArgTypeFor(t)
	a.SetName(fmt.Sprintf("memrr%s", t.Letter()))
	args, err := a.BeginTypes([]core.Type{core.TypeP, core.TypeP, at}, core.Leaf)
	if err != nil {
		return nil, err
	}
	a.St(t, args[2], args[0], args[1])
	a.Ld(t, args[2], args[0], args[1])
	a.Ret(at, args[2])
	return a.End()
}

// RefMemRoundtrip truncates and re-extends x through memory type t.
func RefMemRoundtrip(t core.Type, x core.Value, ptrBytes int) core.Value {
	switch t {
	case core.TypeC:
		return core.I(int32(int8(x.Bits)))
	case core.TypeUC:
		return core.I(int32(uint8(x.Bits)))
	case core.TypeS:
		return core.I(int32(int16(x.Bits)))
	case core.TypeUS:
		return core.I(int32(uint16(x.Bits)))
	default:
		return MakeValue(t, x.Bits, ptrBytes)
	}
}

// BuildWeightedSum generates fn(a0..ak) { return sum (i+1)*ai } computed
// in 64-bit-safe integer arithmetic for integer/pointer parameters and in
// double for FP parameters, exercising the calling convention (register
// and stack argument passing) for the given signature.
func BuildWeightedSum(bk core.Backend, params []core.Type) (*core.Func, error) {
	return BuildWeightedSumOn(core.NewAsm(bk), params)
}

// BuildWeightedSumOn is BuildWeightedSum on a caller-supplied assembler.
func BuildWeightedSumOn(a *core.Asm, params []core.Type) (*core.Func, error) {
	a.SetName(fmt.Sprintf("sum%d", len(params)))
	args, err := a.BeginTypes(params, core.Leaf)
	if err != nil {
		return nil, err
	}
	acc, err := a.GetFReg(core.Temp)
	if err != nil {
		return nil, err
	}
	tmp, err := a.GetFReg(core.Temp)
	if err != nil {
		return nil, err
	}
	wt, err := a.GetFReg(core.Temp)
	if err != nil {
		return nil, err
	}
	a.Setd(acc, 0)
	for i, t := range params {
		switch {
		case t == core.TypeD:
			a.Movd(tmp, args[i])
		case t == core.TypeF:
			a.Cvf2d(tmp, args[i])
		default:
			a.Cvt(t, core.TypeD, tmp, args[i])
		}
		a.Setd(wt, float64(i+1))
		a.Muld(tmp, tmp, wt)
		a.Addd(acc, acc, tmp)
	}
	a.Retd(acc)
	return a.End()
}

// RefWeightedSum mirrors BuildWeightedSum in Go.
func RefWeightedSum(params []core.Type, args []core.Value, ptrBytes int) float64 {
	var acc float64
	for i, t := range params {
		var v float64
		switch {
		case t == core.TypeD:
			v = args[i].Float64()
		case t == core.TypeF:
			v = float64(args[i].Float32())
		case t.IsSigned():
			x := int64(args[i].Bits)
			if wordBits(t, ptrBytes) == 32 {
				x = int64(int32(x))
			}
			v = float64(x)
		default:
			x := args[i].Bits
			if wordBits(t, ptrBytes) == 32 {
				x = uint64(uint32(x))
			}
			v = float64(x)
		}
		acc += float64(i+1) * v
	}
	return acc
}
