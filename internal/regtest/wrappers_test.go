package regtest

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestWrapperLayerComplete exercises every method of the generated
// per-instruction layer (instructions_gen.go) by name on every target:
// each family member must exist, emit without error, and the finished
// function must link.  This is the executable form of Table 2's
// completeness.
func TestWrapperLayerComplete(t *testing.T) {
	type family struct {
		base  string
		kind  string
		types []string
	}
	intTypes := []string{"i", "u", "l", "ul", "p"}
	wordTypes := []string{"i", "u", "l", "ul"}
	allALU := []string{"i", "u", "l", "ul", "p", "f", "d"}
	memTypes := []string{"c", "uc", "s", "us", "i", "u", "l", "ul", "p", "f", "d"}
	families := []family{
		{"Add", "alu", allALU}, {"Sub", "alu", allALU}, {"Mul", "alu", allALU},
		{"Div", "alu", allALU}, {"Mod", "alu", intTypes},
		{"And", "alu", wordTypes}, {"Or", "alu", wordTypes}, {"Xor", "alu", wordTypes},
		{"Lsh", "alu", wordTypes}, {"Rsh", "alu", wordTypes},
		{"Com", "unary", wordTypes}, {"Not", "unary", wordTypes},
		{"Mov", "unary", allALU}, {"Neg", "unary", []string{"i", "l", "f", "d"}},
		{"Set", "set", allALU},
		{"Ld", "mem", memTypes}, {"St", "mem", memTypes},
		{"Blt", "branch", allALU}, {"Ble", "branch", allALU}, {"Bgt", "branch", allALU},
		{"Bge", "branch", allALU}, {"Beq", "branch", allALU}, {"Bne", "branch", allALU},
		{"Ret", "ret", allALU},
	}
	cvt := map[string][]string{
		"i":  {"u", "l", "ul", "f", "d"},
		"u":  {"i", "l", "ul", "f", "d"},
		"l":  {"i", "u", "ul", "p", "f", "d"},
		"ul": {"i", "u", "l", "p", "f", "d"},
		"p":  {"ul", "l"},
		"f":  {"i", "l", "d"},
		"d":  {"i", "l", "f"},
	}

	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			a := core.NewAsm(tg.Backend)
			if _, err := a.BeginTypes(nil, core.NonLeaf); err != nil {
				t.Fatal(err)
			}
			ir, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			ir2, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			fr, err := a.GetFReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			fr2, err := a.GetFReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			lbl := a.NewLabel()
			a.Seti(ir, 0)
			a.Seti(ir2, 8)
			a.Setd(fr, 1)
			a.Setd(fr2, 2)

			av := reflect.ValueOf(a)
			call := func(name string, args ...any) {
				t.Helper()
				m := av.MethodByName(name)
				if !m.IsValid() {
					t.Fatalf("missing generated method %s", name)
				}
				in := make([]reflect.Value, len(args))
				for i, x := range args {
					in[i] = reflect.ValueOf(x)
				}
				m.Call(in)
				if err := a.Err(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			regFor := func(ty string) (core.Reg, core.Reg) {
				if ty == "f" || ty == "d" {
					return fr, fr2
				}
				return ir, ir2
			}

			for _, f := range families {
				for _, ty := range f.types {
					name := f.base + ty
					r1, r2 := regFor(ty)
					isFloat := ty == "f" || ty == "d"
					switch f.kind {
					case "alu":
						call(name, r1, r1, r2)
						if !isFloat {
							call(name+"i", r1, r1, int64(3))
						}
					case "unary":
						call(name, r1, r1)
					case "set":
						switch ty {
						case "f":
							call(name, fr, float32(1.5))
						case "d":
							call(name, fr, float64(2.5))
						default:
							call(name, r1, int64(9))
						}
					case "mem":
						// Use a harmless stack address as the base; the
						// code is never executed.
						base := a.SP()
						mr, _ := regFor(ty)
						if f.base == "Ld" {
							call(name, mr, base, ir2)
							call(name+"i", mr, base, int64(8))
						} else {
							call(name, mr, base, ir2)
							call(name+"i", mr, base, int64(8))
						}
					case "branch":
						call(name, r1, r2, lbl)
						if !isFloat {
							call(name+"i", r1, int64(4), lbl)
						}
					case "ret":
						call(name, r1)
					}
				}
			}
			for from, tos := range cvt {
				for _, to := range tos {
					r1, _ := regFor(to)
					_, r2 := regFor(from)
					call("Cv"+from+"2"+to, r1, r2)
				}
			}
			call("Retv")
			a.Bind(lbl)
			call("Reti", ir)
			fn, err := a.End()
			if err != nil {
				t.Fatalf("End: %v", err)
			}
			if fn.NumInsns < 250 {
				t.Errorf("only %d instructions specified; the full layer should exceed 250", fn.NumInsns)
			}
			if !strings.Contains(fn.BackendName, tg.Name) {
				t.Errorf("backend name %q", fn.BackendName)
			}
		})
	}
}

// TestJalRegIndirect covers the call-through-register form on every
// target by calling a helper whose address arrives in a register.
func TestJalRegIndirect(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			bk := tg.Backend
			a := core.NewAsm(bk)
			args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			a.Addii(args[0], args[0], 11)
			a.Reti(args[0])
			callee, err := a.End()
			if err != nil {
				t.Fatal(err)
			}

			a2 := core.NewAsm(bk)
			args, err = a2.BeginTypes([]core.Type{core.TypeI}, core.NonLeaf)
			if err != nil {
				t.Fatal(err)
			}
			ptr, err := a2.GetReg(core.Var)
			if err != nil {
				t.Fatal(err)
			}
			a2.Setfunc(ptr, callee)
			// No StartCall: the argument is already in the right
			// register; JalReg is the raw v_jalp form.
			a2.JalReg(ptr)
			res, err := a2.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			a2.RetVal(core.TypeI, res)
			a2.Reti(res)
			caller, err := a2.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tg.NewMachine().Call(caller, core.I(4))
			if err != nil {
				t.Fatal(err)
			}
			if got.Int() != 15 {
				t.Fatalf("got %d", got.Int())
			}
		})
	}
}
