// Package regtest is VCODE's retargeting aid (paper §3.3): it
// automatically generates regression tests for errors in instruction
// mappings and calling conventions.  For every target it builds
// one-instruction functions over the full op × type matrix, runs them on
// the target's simulator with deterministic pseudo-random operands, and
// compares the results against Go reference semantics.  The paper notes
// that mis-mapped instructions were the most common VCODE bug and that
// exactly this kind of generated test catches them; the same held while
// porting this reproduction.
package regtest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
)

// Target bundles a backend with a fresh machine for it.
type Target struct {
	Name       string
	Backend    core.Backend
	NewMachine func() *core.Machine
}

// Targets returns all three ports.
func Targets() []Target {
	return []Target{
		{
			Name:    "mips",
			Backend: mips.New(),
			NewMachine: func() *core.Machine {
				m := mem.New(1<<24, false)
				return core.NewMachine(mips.New(), mips.NewCPU(m), m)
			},
		},
		{
			Name:    "sparc",
			Backend: sparc.New(),
			NewMachine: func() *core.Machine {
				m := mem.New(1<<24, true)
				return core.NewMachine(sparc.New(), sparc.NewCPU(m), m)
			},
		},
		{
			Name:    "alpha",
			Backend: alpha.New(),
			NewMachine: func() *core.Machine {
				m := mem.New(1<<24, false)
				return core.NewMachine(alpha.New(), alpha.NewCPU(m), m)
			},
		},
	}
}

// WordBits returns the width of type t on a target with ptrBytes words.
// Shift counts are only defined for values in [0, WordBits).
func WordBits(t core.Type, ptrBytes int) int { return wordBits(t, ptrBytes) }

// wordBits returns the width of type t on a target with ptrBytes words.
func wordBits(t core.Type, ptrBytes int) int {
	switch t {
	case core.TypeI, core.TypeU:
		return 32
	case core.TypeL, core.TypeUL, core.TypeP:
		return 8 * ptrBytes
	}
	return 64
}

// MakeValue wraps raw bits as a canonical Value of type t for a target.
func MakeValue(t core.Type, bits uint64, ptrBytes int) core.Value {
	switch t {
	case core.TypeI:
		return core.I(int32(bits))
	case core.TypeU:
		return core.U(uint32(bits))
	case core.TypeL:
		if ptrBytes == 4 {
			return core.L(int64(int32(bits)))
		}
		return core.L(int64(bits))
	case core.TypeUL, core.TypeP:
		if ptrBytes == 4 {
			bits = uint64(uint32(bits))
		}
		v := core.UL(bits)
		v.T = t
		return v
	case core.TypeF:
		return core.F(math.Float32frombits(uint32(bits)))
	case core.TypeD:
		return core.D(math.Float64frombits(bits))
	}
	return core.Value{T: t, Bits: bits}
}

// Samples returns interesting operand bit patterns for a type, always
// including boundary values plus deterministic random fill.
func Samples(t core.Type, n int, rng *rand.Rand) []uint64 {
	var out []uint64
	switch t {
	case core.TypeF:
		for _, f := range []float32{0, 1, -1, 0.5, -2.25, 1e10, -1e-10, 3.14159} {
			out = append(out, uint64(math.Float32bits(f)))
		}
		for len(out) < n {
			out = append(out, uint64(math.Float32bits(rng.Float32()*2000-1000)))
		}
	case core.TypeD:
		for _, f := range []float64{0, 1, -1, 0.5, -2.25, 1e100, -1e-100, 2.718281828} {
			out = append(out, math.Float64bits(f))
		}
		for len(out) < n {
			out = append(out, math.Float64bits(rng.Float64()*2e6-1e6))
		}
	default:
		out = append(out, 0, 1, ^uint64(0), 0x7fffffff, 0x80000000, 0xffff, 0x10000,
			0x7fffffffffffffff, 0x8000000000000000, 0x1234567890abcdef)
		for len(out) < n {
			out = append(out, rng.Uint64())
		}
	}
	return out
}

// RefALU computes the Go reference result of a binary op, or ok=false when
// the case is skipped (division edge cases where architectures disagree).
func RefALU(op core.Op, t core.Type, ptrBytes int, x, y core.Value) (core.Value, bool) {
	if t.IsFloat() {
		if t == core.TypeF {
			a, b := x.Float32(), y.Float32()
			var r float32
			switch op {
			case core.OpAdd:
				r = a + b
			case core.OpSub:
				r = a - b
			case core.OpMul:
				r = a * b
			case core.OpDiv:
				if b == 0 {
					return core.Value{}, false
				}
				r = a / b
			default:
				return core.Value{}, false
			}
			return core.F(r), true
		}
		a, b := x.Float64(), y.Float64()
		var r float64
		switch op {
		case core.OpAdd:
			r = a + b
		case core.OpSub:
			r = a - b
		case core.OpMul:
			r = a * b
		case core.OpDiv:
			if b == 0 {
				return core.Value{}, false
			}
			r = a / b
		default:
			return core.Value{}, false
		}
		return core.D(r), true
	}

	bits := wordBits(t, ptrBytes)
	signed := t.IsSigned()
	shiftMask := uint64(bits - 1)

	if signed {
		a, b := int64(x.Bits), int64(y.Bits)
		if bits == 32 {
			a, b = int64(int32(a)), int64(int32(b))
		}
		var r int64
		switch op {
		case core.OpAdd:
			r = a + b
		case core.OpSub:
			r = a - b
		case core.OpMul:
			r = a * b
		case core.OpDiv, core.OpMod:
			if b == 0 || (b == -1 && ((bits == 32 && a == math.MinInt32) || (bits == 64 && a == math.MinInt64))) {
				return core.Value{}, false
			}
			if op == core.OpDiv {
				r = a / b
			} else {
				r = a % b
			}
		case core.OpAnd:
			r = a & b
		case core.OpOr:
			r = a | b
		case core.OpXor:
			r = a ^ b
		case core.OpLsh:
			r = a << (uint64(b) & shiftMask)
		case core.OpRsh:
			r = a >> (uint64(b) & shiftMask)
		default:
			return core.Value{}, false
		}
		return MakeValue(t, uint64(r), ptrBytes), true
	}

	a, b := x.Bits, y.Bits
	if bits == 32 {
		a, b = uint64(uint32(a)), uint64(uint32(b))
	}
	var r uint64
	switch op {
	case core.OpAdd:
		r = a + b
	case core.OpSub:
		r = a - b
	case core.OpMul:
		r = a * b
	case core.OpDiv, core.OpMod:
		if b == 0 {
			return core.Value{}, false
		}
		if op == core.OpDiv {
			r = a / b
		} else {
			r = a % b
		}
	case core.OpAnd:
		r = a & b
	case core.OpOr:
		r = a | b
	case core.OpXor:
		r = a ^ b
	case core.OpLsh:
		r = a << (b & shiftMask)
	case core.OpRsh:
		r = a >> (b & shiftMask)
	default:
		return core.Value{}, false
	}
	return MakeValue(t, r, ptrBytes), true
}

// RefBranch computes the Go reference of a comparison.
func RefBranch(op core.Op, t core.Type, ptrBytes int, x, y core.Value) bool {
	cmp := 0
	switch {
	case t.IsFloat():
		var a, b float64
		if t == core.TypeF {
			a, b = float64(x.Float32()), float64(y.Float32())
		} else {
			a, b = x.Float64(), y.Float64()
		}
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
	case t.IsSigned():
		a, b := int64(x.Bits), int64(y.Bits)
		if wordBits(t, ptrBytes) == 32 {
			a, b = int64(int32(a)), int64(int32(b))
		}
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
	default:
		a, b := x.Bits, y.Bits
		if wordBits(t, ptrBytes) == 32 {
			a, b = uint64(uint32(a)), uint64(uint32(b))
		}
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
	}
	switch op {
	case core.OpBlt:
		return cmp < 0
	case core.OpBle:
		return cmp <= 0
	case core.OpBgt:
		return cmp > 0
	case core.OpBge:
		return cmp >= 0
	case core.OpBeq:
		return cmp == 0
	case core.OpBne:
		return cmp != 0
	}
	return false
}

// RefUnary computes the Go reference of a unary op.
func RefUnary(op core.Op, t core.Type, ptrBytes int, x core.Value) (core.Value, bool) {
	if t.IsFloat() {
		switch op {
		case core.OpMov:
			return x, true
		case core.OpNeg:
			if t == core.TypeF {
				return core.F(-x.Float32()), true
			}
			return core.D(-x.Float64()), true
		}
		return core.Value{}, false
	}
	bits := wordBits(t, ptrBytes)
	a := x.Bits
	if bits == 32 {
		a = uint64(uint32(a))
	}
	switch op {
	case core.OpMov:
		return MakeValue(t, a, ptrBytes), true
	case core.OpCom:
		return MakeValue(t, ^a, ptrBytes), true
	case core.OpNot:
		if a == 0 {
			return MakeValue(t, 1, ptrBytes), true
		}
		return MakeValue(t, 0, ptrBytes), true
	case core.OpNeg:
		return MakeValue(t, -a, ptrBytes), true
	}
	return core.Value{}, false
}

// RefCvt computes the Go reference of a conversion.
func RefCvt(from, to core.Type, ptrBytes int, x core.Value) (core.Value, bool) {
	// Source as a wide value.
	var sf float64
	var si int64
	var su uint64
	switch {
	case from == core.TypeF:
		sf = float64(x.Float32())
	case from == core.TypeD:
		sf = x.Float64()
	case from.IsSigned():
		si = int64(x.Bits)
		if wordBits(from, ptrBytes) == 32 {
			si = int64(int32(si))
		}
		sf = float64(si)
		su = uint64(si)
	default:
		su = x.Bits
		if wordBits(from, ptrBytes) == 32 {
			su = uint64(uint32(su))
			sf = float64(su)
		} else {
			// Mirror the synthesized conversion (signed convert plus a
			// 2^64 bias when negative) so rounding agrees bit-for-bit.
			sf = float64(int64(su))
			if int64(su) < 0 {
				sf += 18446744073709551616.0
			}
		}
		si = int64(su)
	}
	isFloatSrc := from.IsFloat()

	switch {
	case to == core.TypeF:
		return core.F(float32(sf)), true
	case to == core.TypeD:
		return core.D(sf), true
	case isFloatSrc:
		// Truncating float->signed-int; skip out-of-range.
		lim := float64(int64(1) << (wordBits(to, ptrBytes) - 1))
		if sf != sf || sf >= lim || sf <= -lim {
			return core.Value{}, false
		}
		return MakeValue(to, uint64(int64(sf)), ptrBytes), true
	case from.IsSigned():
		return MakeValue(to, uint64(si), ptrBytes), true
	default:
		return MakeValue(to, su, ptrBytes), true
	}
}

// CaseName renders a readable id like "mips/addi" for failures.
func CaseName(target string, op core.Op, t core.Type) string {
	return fmt.Sprintf("%s/%s%s", target, op, t.Letter())
}

// ALUTypes lists the legal types for a binary op (mirrors Table 2).
func ALUTypes(op core.Op) []core.Type {
	switch op {
	case core.OpAdd, core.OpSub, core.OpMul, core.OpDiv:
		return []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP, core.TypeF, core.TypeD}
	case core.OpMod:
		return []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP}
	case core.OpAnd, core.OpOr, core.OpXor, core.OpLsh, core.OpRsh:
		return []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL}
	}
	return nil
}

// BinaryOps lists the binary operations of the core set.
func BinaryOps() []core.Op {
	return []core.Op{
		core.OpAdd, core.OpSub, core.OpMul, core.OpDiv, core.OpMod,
		core.OpAnd, core.OpOr, core.OpXor, core.OpLsh, core.OpRsh,
	}
}

// BranchOps lists the conditional branches.
func BranchOps() []core.Op {
	return []core.Op{core.OpBlt, core.OpBle, core.OpBgt, core.OpBge, core.OpBeq, core.OpBne}
}
