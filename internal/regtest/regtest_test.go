package regtest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// TestGeneratedALU runs the full binary-op matrix on every target with
// deterministic random operands against the Go reference.
func TestGeneratedALU(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(1))
			for _, op := range BinaryOps() {
				for _, ty := range ALUTypes(op) {
					fn, err := BuildALU(tg.Backend, op, ty)
					if err != nil {
						t.Fatalf("%s: build: %v", CaseName(tg.Name, op, ty), err)
					}
					xs := Samples(ty, 12, rng)
					ys := Samples(ty, 12, rng)
					for _, xb := range xs {
						for _, yb := range ys {
							x := MakeValue(ty, xb, ptr)
							y := MakeValue(ty, yb, ptr)
							if (op == core.OpLsh || op == core.OpRsh) && !ty.IsFloat() {
								y = MakeValue(ty, yb%uint64(WordBits(ty, ptr)), ptr)
							}
							want, ok := RefALU(op, ty, ptr, x, y)
							if !ok {
								continue
							}
							got, err := m.Call(fn, x, y)
							if err != nil {
								t.Fatalf("%s(%v,%v): %v", CaseName(tg.Name, op, ty), x, y, err)
							}
							if got.Bits != want.Bits {
								t.Errorf("%s(%v,%v) = %v, want %v",
									CaseName(tg.Name, op, ty), x, y, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestGeneratedALUImm runs the immediate forms across boundary immediates
// (the class of bug the paper calls out: constants that don't fit in
// immediate fields).
func TestGeneratedALUImm(t *testing.T) {
	imms := []int64{0, 1, -1, 7, 255, 256, 4095, 4096, 32767, 32768, -32768, -32769,
		0x12345, 0x7fffffff, -0x80000000}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(2))
			for _, op := range BinaryOps() {
				for _, ty := range ALUTypes(op) {
					if ty.IsFloat() {
						continue
					}
					for _, imm := range imms {
						useImm := imm
						if op == core.OpLsh || op == core.OpRsh {
							w := int64(WordBits(ty, ptr))
							useImm = (imm%w + w) % w
						}
						fn, err := BuildALUImm(tg.Backend, op, ty, useImm)
						if err != nil {
							t.Fatalf("%s imm=%d: build: %v", CaseName(tg.Name, op, ty), useImm, err)
						}
						for _, xb := range Samples(ty, 6, rng) {
							x := MakeValue(ty, xb, ptr)
							y := MakeValue(ty, uint64(useImm), ptr)
							want, ok := RefALU(op, ty, ptr, x, y)
							if !ok {
								continue
							}
							got, err := m.Call(fn, x)
							if err != nil {
								t.Fatalf("%s(%v) imm=%d: %v", CaseName(tg.Name, op, ty), x, useImm, err)
							}
							if got.Bits != want.Bits {
								t.Errorf("%s(%v, imm %d) = %v, want %v",
									CaseName(tg.Name, op, ty), x, useImm, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestGeneratedUnary covers com/not/mov/neg.
func TestGeneratedUnary(t *testing.T) {
	cases := []struct {
		op    core.Op
		types []core.Type
	}{
		{core.OpCom, []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL}},
		{core.OpNot, []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL}},
		{core.OpMov, []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP, core.TypeF, core.TypeD}},
		{core.OpNeg, []core.Type{core.TypeI, core.TypeL, core.TypeF, core.TypeD}},
	}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(3))
			for _, c := range cases {
				for _, ty := range c.types {
					fn, err := BuildUnary(tg.Backend, c.op, ty)
					if err != nil {
						t.Fatalf("%s: build: %v", CaseName(tg.Name, c.op, ty), err)
					}
					for _, xb := range Samples(ty, 10, rng) {
						x := MakeValue(ty, xb, ptr)
						want, ok := RefUnary(c.op, ty, ptr, x)
						if !ok {
							continue
						}
						got, err := m.Call(fn, x)
						if err != nil {
							t.Fatalf("%s(%v): %v", CaseName(tg.Name, c.op, ty), x, err)
						}
						if got.Bits != want.Bits {
							t.Errorf("%s(%v) = %v, want %v", CaseName(tg.Name, c.op, ty), x, got, want)
						}
					}
				}
			}
		})
	}
}

// TestGeneratedBranches covers all six branches over all types, register
// and immediate forms.
func TestGeneratedBranches(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(4))
			types := []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP, core.TypeF, core.TypeD}
			for _, op := range BranchOps() {
				for _, ty := range types {
					fn, err := BuildBranch(tg.Backend, op, ty)
					if err != nil {
						t.Fatalf("%s: build: %v", CaseName(tg.Name, op, ty), err)
					}
					xs := Samples(ty, 8, rng)
					for _, xb := range xs {
						for _, yb := range xs {
							x, y := MakeValue(ty, xb, ptr), MakeValue(ty, yb, ptr)
							want := int64(0)
							if RefBranch(op, ty, ptr, x, y) {
								want = 1
							}
							got, err := m.Call(fn, x, y)
							if err != nil {
								t.Fatalf("%s(%v,%v): %v", CaseName(tg.Name, op, ty), x, y, err)
							}
							if got.Int() != want {
								t.Errorf("%s(%v,%v) = %d, want %d", CaseName(tg.Name, op, ty), x, y, got.Int(), want)
							}
						}
					}
				}
			}
			// Immediate forms over integer types and boundary immediates.
			for _, op := range BranchOps() {
				for _, ty := range []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP} {
					for _, imm := range []int64{0, 1, -1, 255, 4095, 32767, 65536} {
						fn, err := BuildBranchImm(tg.Backend, op, ty, imm)
						if err != nil {
							t.Fatalf("%si imm=%d: build: %v", CaseName(tg.Name, op, ty), imm, err)
						}
						for _, xb := range Samples(ty, 6, rng) {
							x := MakeValue(ty, xb, ptr)
							y := MakeValue(ty, uint64(imm), ptr)
							want := int64(0)
							if RefBranch(op, ty, ptr, x, y) {
								want = 1
							}
							got, err := m.Call(fn, x)
							if err != nil {
								t.Fatalf("%si(%v, %d): %v", CaseName(tg.Name, op, ty), x, imm, err)
							}
							if got.Int() != want {
								t.Errorf("%si(%v, imm %d) = %d, want %d",
									CaseName(tg.Name, op, ty), x, imm, got.Int(), want)
							}
						}
					}
				}
			}
		})
	}
}

// TestGeneratedCvt covers the conversion matrix.
func TestGeneratedCvt(t *testing.T) {
	pairs := []struct{ from, to core.Type }{
		{core.TypeI, core.TypeU}, {core.TypeI, core.TypeL}, {core.TypeI, core.TypeUL},
		{core.TypeI, core.TypeF}, {core.TypeI, core.TypeD},
		{core.TypeU, core.TypeI}, {core.TypeU, core.TypeL}, {core.TypeU, core.TypeUL},
		{core.TypeU, core.TypeD}, {core.TypeU, core.TypeF},
		{core.TypeL, core.TypeI}, {core.TypeL, core.TypeU}, {core.TypeL, core.TypeUL},
		{core.TypeL, core.TypeP}, {core.TypeL, core.TypeF}, {core.TypeL, core.TypeD},
		{core.TypeUL, core.TypeI}, {core.TypeUL, core.TypeL}, {core.TypeUL, core.TypeP},
		{core.TypeUL, core.TypeD},
		{core.TypeP, core.TypeUL}, {core.TypeP, core.TypeL},
		{core.TypeF, core.TypeI}, {core.TypeF, core.TypeL}, {core.TypeF, core.TypeD},
		{core.TypeD, core.TypeI}, {core.TypeD, core.TypeL}, {core.TypeD, core.TypeF},
	}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(5))
			for _, p := range pairs {
				fn, err := BuildCvt(tg.Backend, p.from, p.to)
				if err != nil {
					t.Fatalf("%s/cv%s2%s: build: %v", tg.Name, p.from.Letter(), p.to.Letter(), err)
				}
				for _, xb := range Samples(p.from, 10, rng) {
					x := MakeValue(p.from, xb, ptr)
					want, ok := RefCvt(p.from, p.to, ptr, x)
					if !ok {
						continue
					}
					got, err := m.Call(fn, x)
					if err != nil {
						t.Fatalf("%s/cv%s2%s(%v): %v", tg.Name, p.from.Letter(), p.to.Letter(), x, err)
					}
					if got.Bits != want.Bits {
						t.Errorf("%s/cv%s2%s(%v) = %v, want %v",
							tg.Name, p.from.Letter(), p.to.Letter(), x, got, want)
					}
				}
			}
		})
	}
}

// TestGeneratedMem round-trips every memory type, including the
// synthesized byte/halfword sequences on Alpha.
func TestGeneratedMem(t *testing.T) {
	memTypes := []core.Type{
		core.TypeC, core.TypeUC, core.TypeS, core.TypeUS,
		core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP,
		core.TypeF, core.TypeD,
	}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(6))
			addr, err := m.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			for _, ty := range memTypes {
				fn, err := BuildMemRoundtrip(tg.Backend, ty)
				if err != nil {
					t.Fatalf("%s/mem%s: build: %v", tg.Name, ty.Letter(), err)
				}
				fnRR, err := BuildMemRoundtripRR(tg.Backend, ty)
				if err != nil {
					t.Fatalf("%s/memrr%s: build: %v", tg.Name, ty.Letter(), err)
				}
				at := ArgTypeFor(ty)
				for _, xb := range Samples(at, 8, rng) {
					x := MakeValue(at, xb, ptr)
					want := RefMemRoundtrip(ty, x, ptr)
					got, err := m.Call(fn, core.P(addr+8), x)
					if err != nil {
						t.Fatalf("%s/mem%s(%v): %v", tg.Name, ty.Letter(), x, err)
					}
					if got.Bits != want.Bits {
						t.Errorf("%s/mem%s(%v) = %v, want %v", tg.Name, ty.Letter(), x, got, want)
					}
					got, err = m.Call(fnRR, core.P(addr), core.P(16), x)
					if err != nil {
						t.Fatalf("%s/memrr%s(%v): %v", tg.Name, ty.Letter(), x, err)
					}
					if got.Bits != want.Bits {
						t.Errorf("%s/memrr%s(%v) = %v, want %v", tg.Name, ty.Letter(), x, got, want)
					}
				}
			}
		})
	}
}

// TestCallingConventions sweeps arities 1..8 over mixed signatures,
// exercising register arguments, stack overflow arguments and FP argument
// registers on every target (the second half of §3.3's generated tests).
func TestCallingConventions(t *testing.T) {
	sigTypes := []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeD, core.TypeF, core.TypeP}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(7))
			for arity := 1; arity <= 8; arity++ {
				for trial := 0; trial < 4; trial++ {
					params := make([]core.Type, arity)
					for i := range params {
						params[i] = sigTypes[rng.Intn(len(sigTypes))]
					}
					fn, err := BuildWeightedSum(tg.Backend, params)
					if err != nil {
						t.Fatalf("%s arity %d %v: build: %v", tg.Name, arity, params, err)
					}
					args := make([]core.Value, arity)
					for i, ty := range params {
						switch ty {
						case core.TypeD:
							args[i] = core.D(float64(rng.Intn(2000) - 1000))
						case core.TypeF:
							args[i] = core.F(float32(rng.Intn(2000) - 1000))
						case core.TypeP:
							args[i] = core.P(uint64(rng.Intn(1 << 20)))
						default:
							args[i] = MakeValue(ty, uint64(int64(rng.Intn(1<<20)-1<<19)), ptr)
						}
					}
					want := RefWeightedSum(params, args, ptr)
					got, err := m.Call(fn, args...)
					if err != nil {
						t.Fatalf("%s arity %d %v: %v", tg.Name, arity, params, err)
					}
					if math.Abs(got.Float64()-want) > 1e-9 {
						t.Errorf("%s weighted sum %v(%v) = %v, want %v",
							tg.Name, params, args, got.Float64(), want)
					}
				}
			}
		})
	}
}

// TestQuickAdd property-tests 32-bit addition end-to-end on each target
// with testing/quick.
func TestQuickAdd(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			fn, err := BuildALU(tg.Backend, core.OpAdd, core.TypeI)
			if err != nil {
				t.Fatal(err)
			}
			f := func(x, y int32) bool {
				got, err := m.Call(fn, core.I(x), core.I(y))
				return err == nil && got.Int() == int64(x+y)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickMulDiv property-tests the multiply/divide/remainder identity
// x == (x/y)*y + x%y on each target.
func TestQuickMulDiv(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			div, err := BuildALU(tg.Backend, core.OpDiv, core.TypeI)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := BuildALU(tg.Backend, core.OpMod, core.TypeI)
			if err != nil {
				t.Fatal(err)
			}
			f := func(x, y int32) bool {
				if y == 0 || (x == math.MinInt32 && y == -1) {
					return true
				}
				q, err := m.Call(div, core.I(x), core.I(y))
				if err != nil {
					return false
				}
				r, err := m.Call(mod, core.I(x), core.I(y))
				if err != nil {
					return false
				}
				return int32(q.Int())*y+int32(r.Int()) == x
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}
