package regtest

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/trace"
)

// lifecycle is the complete generate-install-execute-evict span chain
// one function must leave in the flight recorder.
var lifecycle = []trace.Kind{
	trace.KindCompile, trace.KindRegalloc, trace.KindEmit,
	trace.KindVerify, trace.KindInstall, trace.KindCall, trace.KindEvict,
}

// TestLifecycleTraceAllTargets drives compile → run → evict on each port
// with span tracing on and asserts that a single flow ID ties the whole
// chain together — the property the Chrome-trace export renders as one
// Perfetto lane per function.
func TestLifecycleTraceAllTargets(t *testing.T) {
	trace.SetEnabled(true)
	defer func() { trace.SetEnabled(false); trace.Reset() }()

	for _, target := range []string{"mips", "sparc", "alpha"} {
		trace.Reset()
		m, err := jit.NewMachineTarget(target, mem.Uncosted)
		if err != nil {
			t.Fatal(err)
		}
		fn, err := m.Compile(jit.FibIter())
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		for i := 0; i < 3; i++ {
			if got, _, err := m.Run(fn, 10); err != nil || got != 55 {
				t.Fatalf("%s: fib(10) = %d, %v", target, got, err)
			}
		}
		if err := m.Core().Uninstall(fn); err != nil {
			t.Fatalf("%s: %v", target, err)
		}

		flow := fn.TraceFlow()
		if flow == 0 {
			t.Fatalf("%s: function has no trace flow after traced lifecycle", target)
		}
		kinds := map[trace.Kind]int{}
		for _, s := range trace.Spans() {
			if s.Flow != flow {
				continue
			}
			kinds[s.Kind]++
			if s.Backend != target {
				t.Errorf("%s: span %v carries backend %q", target, s.Kind, s.Backend)
			}
			if s.Name != "fib" {
				t.Errorf("%s: span %v carries name %q, want fib", target, s.Kind, s.Name)
			}
		}
		for _, k := range lifecycle {
			if kinds[k] == 0 {
				t.Errorf("%s: lifecycle flow %d missing %v span (have %v)", target, flow, k, kinds)
			}
		}
		if kinds[trace.KindCall] != 3 {
			t.Errorf("%s: call spans = %d, want 3", target, kinds[trace.KindCall])
		}

		// The exported Chrome trace must parse and keep the chain on one
		// tid (Perfetto lane).
		var buf bytes.Buffer
		if err := trace.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph   string  `json:"ph"`
				Name string  `json:"name"`
				Tid  uint64  `json:"tid"`
				Dur  float64 `json:"dur"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: chrome trace does not parse: %v", target, err)
		}
		onLane := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" && ev.Tid == flow {
				onLane[ev.Name] = true
			}
		}
		for _, k := range lifecycle {
			if !onLane[k.String()] {
				t.Errorf("%s: chrome trace lane %d missing %q event", target, flow, k)
			}
		}
	}
}

// TestEvictedCallKeepsTrace pins the uninstall-vs-stats interaction: a
// call that fails because the function was evicted still records a call
// span carrying the error, so traces never show a silent gap.
func TestEvictedCallKeepsTrace(t *testing.T) {
	trace.SetEnabled(true)
	defer func() { trace.SetEnabled(false); trace.Reset() }()
	trace.Reset()

	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := m.Compile(jit.SumSquares())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(fn, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Core().Uninstall(fn); err != nil {
		t.Fatal(err)
	}
	// Post-eviction the machine reinstalls on demand; force the
	// not-installed path through the core call instead.
	var evictSeen bool
	for _, s := range trace.Spans() {
		if s.Flow == fn.TraceFlow() && s.Kind == trace.KindEvict {
			evictSeen = true
			if s.Attrs.Bytes == 0 {
				t.Error("evict span carries no reclaimed-bytes attribute")
			}
		}
	}
	if !evictSeen {
		t.Fatal("no evict span for uninstalled function")
	}
}
