package regtest

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestSetfuncIndirectCalls materializes a generated function's entry
// address with Setfunc and calls through it (install-time resolution of
// RelocAddr entry references) on every target.
func TestSetfuncIndirectCalls(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			bk := tg.Backend
			a := core.NewAsm(bk)
			args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			a.Addii(args[0], args[0], 1000)
			a.Reti(args[0])
			callee, err := a.End()
			if err != nil {
				t.Fatal(err)
			}

			a2 := core.NewAsm(bk)
			args, err = a2.BeginTypes([]core.Type{core.TypeI}, core.NonLeaf)
			if err != nil {
				t.Fatal(err)
			}
			ptr, err := a2.GetReg(core.Var)
			if err != nil {
				t.Fatal(err)
			}
			a2.Setfunc(ptr, callee)
			a2.StartCall("%i")
			a2.SetArg(0, args[0])
			a2.CallReg(ptr)
			res, err := a2.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			a2.RetVal(core.TypeI, res)
			a2.Reti(res)
			caller, err := a2.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tg.NewMachine().Call(caller, core.I(7))
			if err != nil {
				t.Fatal(err)
			}
			if got.Int() != 1007 {
				t.Fatalf("got %d, want 1007", got.Int())
			}
		})
	}
}

// TestJalIntraFunction exercises v_jal to a label: a local subroutine
// reached twice, returning through JmpReg(RA).  The subroutine must not
// touch RA-saving machinery itself (the caller frame holds it).
func TestJalIntraFunction(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			bk := tg.Backend
			conv := bk.DefaultConv()
			a := core.NewAsm(bk)
			args, err := a.BeginTypes([]core.Type{core.TypeI}, core.NonLeaf)
			if err != nil {
				t.Fatal(err)
			}
			n := args[0]
			ret, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			sub := a.NewLabel()
			done := a.NewLabel()
			// Call the local subroutine twice: n = ((n*2)+1)*2+1.
			a.Jal(sub)
			a.Jal(sub)
			a.Jmp(done)
			a.Bind(sub) // subroutine: n = n*2 + 1; return via RA
			a.Addi(n, n, n)
			a.Addii(n, n, 1)
			// Return through the link register, honouring the target's
			// return-address offset (SPARC returns to RA+8).
			a.Addpi(ret, conv.RA, int64(bk.RetAddrOffset()))
			a.JmpReg(ret)
			a.Bind(done)
			a.Reti(n)
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tg.NewMachine().Call(fn, core.I(5))
			if err != nil {
				t.Fatal(err)
			}
			if got.Int() != 23 {
				t.Fatalf("got %d, want 23", got.Int())
			}
		})
	}
}

// TestSetfSingles pushes float32 constants through the pool on every
// target.
func TestSetfSingles(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			for _, val := range []float32{0, 1.5, -2.25, 3.4e38, 1e-38, float32(math.Inf(1))} {
				a := core.NewAsm(tg.Backend)
				if _, err := a.BeginTypes(nil, core.Leaf); err != nil {
					t.Fatal(err)
				}
				f, err := a.GetFReg(core.Temp)
				if err != nil {
					t.Fatal(err)
				}
				a.Setf(f, val)
				a.Retf(f)
				fn, err := a.End()
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Call(fn)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float32bits(got.Float32()) != math.Float32bits(val) {
					t.Errorf("Setf(%v) returned %v", val, got.Float32())
				}
			}
		})
	}
}

// TestExtensionsAllTargets runs the portable extension layer — and the
// hardware-overridden sqrt — on every port.
func TestExtensionsAllTargets(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			// bswap4 (portable synthesis).
			a := core.NewAsm(tg.Backend)
			args, err := a.BeginTypes([]core.Type{core.TypeU}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			a.Ext("bswap4", core.TypeU, args[0], args[0])
			a.Retu(args[0])
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Call(fn, core.U(0x11223344))
			if err != nil {
				t.Fatal(err)
			}
			if got.Uint() != 0x44332211 {
				t.Errorf("bswap4 = %#x", got.Uint())
			}

			// sqrt (hardware via TryExt on all three ports).
			a2 := core.NewAsm(tg.Backend)
			argsd, err := a2.BeginTypes([]core.Type{core.TypeD}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			a2.Ext("sqrt", core.TypeD, argsd[0], argsd[0])
			a2.Retd(argsd[0])
			fn2, err := a2.End()
			if err != nil {
				t.Fatal(err)
			}
			got, err = m.Call(fn2, core.D(2.25))
			if err != nil {
				t.Fatal(err)
			}
			if got.Float64() != 1.5 {
				t.Errorf("sqrt(2.25) = %v", got.Float64())
			}

			// prefetch (portable nop) must at least be accepted.
			a3 := core.NewAsm(tg.Backend)
			argp, err := a3.BeginTypes([]core.Type{core.TypeP}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			a3.Ext("prefetch", core.TypeP, argp[0], argp[0])
			a3.Retp(argp[0])
			if _, err := a3.End(); err != nil {
				t.Errorf("prefetch: %v", err)
			}
		})
	}
}
