package regtest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// BuildForwarder generates a caller that receives params, forwards them
// all to callee via StartCall/SetArg (exercising outgoing stack
// arguments), and returns the callee's result.
func BuildForwarder(bk core.Backend, params []core.Type, callee *core.Func) (*core.Func, error) {
	a := core.NewAsm(bk)
	a.SetName("forwarder")
	args, err := a.BeginTypes(params, core.NonLeaf)
	if err != nil {
		return nil, err
	}
	// Move incoming values into persistent registers first: the
	// outgoing SetArg moves would otherwise overwrite incoming argument
	// registers that later arguments still need.
	saved := make([]core.Reg, len(args))
	for i, t := range params {
		var r core.Reg
		if t.IsFloat() {
			r, err = a.GetFReg(core.Var)
		} else {
			r, err = a.GetReg(core.Var)
		}
		if err != nil {
			return nil, err
		}
		a.Unary(core.OpMov, t, r, args[i])
		saved[i] = r
	}
	sig := ""
	for _, t := range params {
		sig += "%" + t.Letter()
	}
	a.StartCall(sig)
	for i, r := range saved {
		a.SetArg(i, r)
	}
	a.CallFunc(callee)
	res, err := a.GetFReg(core.Temp)
	if err != nil {
		return nil, err
	}
	a.RetVal(core.TypeD, res)
	a.Retd(res)
	return a.End()
}

// TestGeneratedCallerStackArgs exercises generated calls with up to 10
// arguments — several of which travel on the stack on every target — by
// forwarding through a generated caller into the weighted-sum callee.
func TestGeneratedCallerStackArgs(t *testing.T) {
	sigTypes := []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeD, core.TypeF, core.TypeP}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			ptr := tg.Backend.PtrBytes()
			rng := rand.New(rand.NewSource(21))
			for arity := 1; arity <= 10; arity++ {
				for trial := 0; trial < 3; trial++ {
					params := make([]core.Type, arity)
					for i := range params {
						params[i] = sigTypes[rng.Intn(len(sigTypes))]
					}
					callee, err := BuildWeightedSum(tg.Backend, params)
					if err != nil {
						t.Fatalf("%v: callee: %v", params, err)
					}
					fwd, err := BuildForwarder(tg.Backend, params, callee)
					if err != nil {
						// Register pressure at high arity is a legal
						// failure mode; require success at low arity.
						if arity <= 6 {
							t.Fatalf("%v: forwarder: %v", params, err)
						}
						continue
					}
					args := make([]core.Value, arity)
					for i, ty := range params {
						switch ty {
						case core.TypeD:
							args[i] = core.D(float64(rng.Intn(1000)))
						case core.TypeF:
							args[i] = core.F(float32(rng.Intn(1000)))
						case core.TypeP:
							args[i] = core.P(uint64(rng.Intn(1 << 16)))
						default:
							args[i] = MakeValue(ty, uint64(int64(rng.Intn(1<<16))), ptr)
						}
					}
					want := RefWeightedSum(params, args, ptr)
					got, err := m.Call(fwd, args...)
					if err != nil {
						t.Fatalf("%v: %v", params, err)
					}
					if math.Abs(got.Float64()-want) > 1e-9 {
						t.Errorf("%s forward %v = %v, want %v", tg.Name, params, got.Float64(), want)
					}
				}
			}
		})
	}
}

// TestBranchRangeError pins the error for displacements beyond the
// encodable range (the latent-bug class the paper calls out: "constants
// that don't fit in immediate fields").
func TestBranchRangeError(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			a := core.NewAsm(tg.Backend)
			args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			far := a.NewLabel()
			a.BrI(core.OpBeq, core.TypeI, args[0], 0, far)
			// MIPS/SPARC branches reach far; Alpha's 21-bit reaches
			// ~1M words, so emit past the shortest range (2^15 words
			// on MIPS).
			limit := 1 << 16
			if tg.Name != "mips" {
				t.Skip("only the 16-bit-displacement target needs the short-range check")
			}
			for i := 0; i < limit; i++ {
				a.Nop()
			}
			a.Bind(far)
			a.Reti(args[0])
			_, err = a.End()
			if err == nil {
				t.Fatal("out-of-range branch should fail at End")
			}
		})
	}
}

// TestPoolDeduplication checks identical float constants share one pool
// entry and distinct ones do not collide.
func TestPoolDeduplication(t *testing.T) {
	tg := Targets()[0]
	a := core.NewAsm(tg.Backend)
	_, err := a.BeginTypes(nil, core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.GetFReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a.Setd(f, 3.25)
	lenOne := -1
	a.Setd(f, 3.25) // duplicate: no new pool entry
	a.Setd(f, -3.25)
	a.Retd(f)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	_ = lenOne
	// Pool entries are 2 words each: expect exactly 2 distinct doubles.
	poolRelocs := 0
	for _, r := range fn.Relocs {
		if r.Target == fn {
			poolRelocs++
		}
	}
	if poolRelocs != 3 {
		t.Errorf("pool references = %d, want 3", poolRelocs)
	}
	addends := map[int64]bool{}
	for _, r := range fn.Relocs {
		if r.Target == fn {
			addends[r.Addend] = true
		}
	}
	if len(addends) != 2 {
		t.Errorf("distinct pool entries = %d, want 2", len(addends))
	}
	// And the values execute correctly.
	got, err := tg.NewMachine().Call(fn)
	if err != nil {
		t.Fatal(err)
	}
	if got.Float64() != -3.25 {
		t.Errorf("got %v", got.Float64())
	}
}

// TestFloatSpecialValues pushes infinities, tiny and negative-zero
// constants through the pool and back.
func TestFloatSpecialValues(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			for _, val := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), 5e-324, 1e308} {
				a := core.NewAsm(tg.Backend)
				if _, err := a.BeginTypes(nil, core.Leaf); err != nil {
					t.Fatal(err)
				}
				f, err := a.GetFReg(core.Temp)
				if err != nil {
					t.Fatal(err)
				}
				a.Setd(f, val)
				a.Retd(f)
				fn, err := a.End()
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Call(fn)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(got.Float64()) != math.Float64bits(val) {
					t.Errorf("Setd(%v) returned %v", val, got.Float64())
				}
			}
		})
	}
}
