package regtest

import (
	"testing"

	"repro/internal/core"
)

// TestStalePredecodeNeverExecutes pins the eviction-ordering hazard the
// predecoded-body registry must never expose: after Uninstall returns a
// function's code region and a different function is installed at the
// same arena address, a call through the threaded engine must execute
// the new function's predecoded body, never the stale one.  The two
// functions are built to the same size but different constants, so
// executing the old body is observable in the return value.
func TestStalePredecodeNeverExecutes(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			if m.Engine() != core.EngineThreaded {
				t.Fatalf("threaded engine is not the default on %s", tg.Name)
			}

			f1 := buildAdd(t, tg, 1)
			if err := m.Install(f1); err != nil {
				t.Fatal(err)
			}
			if got := m.PredecodedBodies(); got != 1 {
				t.Fatalf("after install: %d predecoded bodies, want 1", got)
			}
			if v, err := m.Call(f1, core.I(10)); err != nil || v.Int() != 11 {
				t.Fatalf("f1(10) = %v, %v; want 11", v, err)
			}
			addr1 := f1.Addr()

			if err := m.Uninstall(f1); err != nil {
				t.Fatal(err)
			}
			if got := m.PredecodedBodies(); got != 0 {
				t.Fatalf("after uninstall: %d predecoded bodies, want 0", got)
			}

			// Same code size, different constant: first-fit reuses the
			// hole, so f2 lands exactly where f1's body used to be.
			f2 := buildAdd(t, tg, 1000)
			if err := m.Install(f2); err != nil {
				t.Fatal(err)
			}
			if f2.Addr() != addr1 {
				t.Fatalf("f2 installed at %#x, want reused %#x", f2.Addr(), addr1)
			}
			v, err := m.Call(f2, core.I(10))
			if err != nil {
				t.Fatal(err)
			}
			if v.Int() == 11 {
				t.Fatalf("f2(10) = 11: the stale predecoded body executed")
			}
			if v.Int() != 1010 {
				t.Fatalf("f2(10) = %d, want 1010", v.Int())
			}

			// Release must drop bodies above the mark just like
			// Uninstall drops the per-function body.
			mark := m.Mark()
			f3 := buildAdd(t, tg, 7)
			if err := m.Install(f3); err != nil {
				t.Fatal(err)
			}
			if got := m.PredecodedBodies(); got != 2 {
				t.Fatalf("after third install: %d predecoded bodies, want 2", got)
			}
			m.Release(mark)
			if got := m.PredecodedBodies(); got != 1 {
				t.Fatalf("after release: %d predecoded bodies, want 1", got)
			}
			if v, err := m.Call(f2, core.I(1)); err != nil || v.Int() != 1001 {
				t.Fatalf("f2(1) after release = %v, %v; want 1001", v, err)
			}
		})
	}
}
