package regtest

import (
	"testing"

	"repro/internal/core"
)

// TestDataSymbols registers a data table under a machine symbol,
// materializes its address with SetSym, and indexes it from generated
// code on every target.
func TestDataSymbols(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			table, err := m.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				if err := m.Mem().Store(table+uint64(4*i), 4, uint64(i*i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.DefineSym("squares", table); err != nil {
				t.Fatal(err)
			}

			a := core.NewAsm(tg.Backend)
			args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			ptr, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := a.GetReg(core.Temp)
			if err != nil {
				t.Fatal(err)
			}
			a.SetSym(ptr, "squares")
			a.Lshii(idx, args[0], 2)
			a.Ldi(args[0], ptr, idx) // register-offset load
			a.Reti(args[0])
			fn, err := a.End()
			if err != nil {
				t.Fatal(err)
			}
			for n := int32(0); n < 16; n++ {
				got, err := m.Call(fn, core.I(n))
				if err != nil {
					t.Fatal(err)
				}
				if got.Int() != int64(n*n) {
					t.Errorf("squares[%d] = %d", n, got.Int())
				}
			}
		})
	}
}

// TestOpHelpers covers the client-facing Op utility methods.
func TestOpHelpers(t *testing.T) {
	if core.OpBlt.InvertBranch() != core.OpBge || core.OpBne.InvertBranch() != core.OpBeq {
		t.Error("InvertBranch wrong")
	}
	if core.OpBlt.SwapBranch() != core.OpBgt || core.OpBeq.SwapBranch() != core.OpBeq {
		t.Error("SwapBranch wrong")
	}
	if !core.OpAdd.IsCommutative() || core.OpSub.IsCommutative() {
		t.Error("IsCommutative wrong")
	}
	if !core.OpBlt.IsBranch() || core.OpAdd.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if len(core.BuiltinExtNames()) < 8 {
		t.Error("builtin extension list too short")
	}
}

// TestHardFPNames exercises the FT/FS hard-coded FP names on a target
// that has them (MIPS) and the register-assertion failure on one that
// does not (SPARC has no callee-saved FP bank exposed as FS?  it does
// here; use an out-of-range index instead).
func TestHardFPNames(t *testing.T) {
	tg := Targets()[0]
	m := tg.NewMachine()
	a := core.NewAsm(tg.Backend)
	args, err := a.BeginTypes([]core.Type{core.TypeD}, core.NonLeaf)
	if err != nil {
		t.Fatal(err)
	}
	ft, fs, s0 := a.FT(0), a.FS(0), a.S(0)
	if err := a.Err(); err != nil {
		t.Fatalf("hard names: %v", err)
	}
	a.Movd(fs, args[0])
	a.Addd(ft, args[0], fs)
	a.Seti(s0, 0)
	a.Retd(ft)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.D(3.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float64() != 7 {
		t.Fatalf("got %v", got.Float64())
	}
	// FS use in a non-leaf must have forced a save (callee-saved FP).
	if fn.FrameBytes == 0 {
		t.Error("FS/S use should force a frame")
	}
	// Out-of-range hard names record the register assertion.
	a2 := core.NewAsm(tg.Backend)
	if _, err := a2.BeginTypes(nil, core.Leaf); err != nil {
		t.Fatal(err)
	}
	a2.FT(99)
	if a2.Err() == nil {
		t.Error("FT(99) should fail the register assertion")
	}
}
