package regtest

import (
	"testing"

	"repro/internal/core"
)

// TestSimultaneousConstruction interleaves the construction of two
// functions on independent assemblers — the interface extension the
// paper's footnote 1 promises ("in the future, this interface will be
// extended so that clients can create several functions simultaneously").
// Independent Asm instances make it fall out of the design.
func TestSimultaneousConstruction(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			a1 := core.NewAsm(tg.Backend)
			a2 := core.NewAsm(tg.Backend)

			args1, err := a1.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			args2, err := a2.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
			if err != nil {
				t.Fatal(err)
			}
			// Interleave emission instruction by instruction.
			a1.Addii(args1[0], args1[0], 1)
			a2.Mulii(args2[0], args2[0], 3)
			a1.Lshii(args1[0], args1[0], 2)
			a2.Subii(args2[0], args2[0], 5)
			a1.Reti(args1[0])
			a2.Reti(args2[0])

			fn2, err := a2.End()
			if err != nil {
				t.Fatal(err)
			}
			fn1, err := a1.End()
			if err != nil {
				t.Fatal(err)
			}
			got1, err := m.Call(fn1, core.I(10))
			if err != nil {
				t.Fatal(err)
			}
			got2, err := m.Call(fn2, core.I(10))
			if err != nil {
				t.Fatal(err)
			}
			if got1.Int() != (10+1)<<2 {
				t.Errorf("fn1(10) = %d, want %d", got1.Int(), (10+1)<<2)
			}
			if got2.Int() != 10*3-5 {
				t.Errorf("fn2(10) = %d, want %d", got2.Int(), 25)
			}
		})
	}
}
