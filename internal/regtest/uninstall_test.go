package regtest

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// buildAdd compiles "f(x) = x + k" for a target.
func buildAdd(t *testing.T, tg Target, k int64) *core.Func {
	t.Helper()
	a := core.NewAsm(tg.Backend)
	args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Addii(args[0], args[0], k)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// TestUninstallFreesAndReuses pins the per-function reclamation path on
// every target: Uninstall returns the code region to a free list, a
// same-size install reuses the hole, and surviving functions keep
// working.
func TestUninstallFreesAndReuses(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := tg.NewMachine()
			f1, f2, f3 := buildAdd(t, tg, 1), buildAdd(t, tg, 2), buildAdd(t, tg, 3)
			for _, f := range []*core.Func{f1, f2} {
				if err := m.Install(f); err != nil {
					t.Fatal(err)
				}
			}
			two := m.CodeBytesResident()
			addr1 := f1.Addr()

			if err := m.Uninstall(f1); err != nil {
				t.Fatal(err)
			}
			if m.Installed(f1) || f1.Installed() {
				t.Error("f1 still reports installed after Uninstall")
			}
			if !m.Installed(f2) {
				t.Error("f2 lost by f1's Uninstall")
			}
			if r := m.CodeBytesResident(); r >= two {
				t.Errorf("resident %d did not shrink from %d", r, two)
			}
			if err := m.Uninstall(f1); err == nil {
				t.Error("double Uninstall succeeded")
			}

			// The freed hole is reused by a same-size install.
			if err := m.Install(f3); err != nil {
				t.Fatal(err)
			}
			if f3.Addr() != addr1 {
				t.Errorf("freed region not reused: f3 at %#x, hole at %#x", f3.Addr(), addr1)
			}
			if r := m.CodeBytesResident(); r != two {
				t.Errorf("resident %d after refill, want %d", r, two)
			}
			for _, c := range []struct {
				f    *core.Func
				want int64
			}{{f2, 12}, {f3, 13}} {
				got, err := m.Call(c.f, core.I(10))
				if err != nil {
					t.Fatal(err)
				}
				if got.Int() != c.want {
					t.Errorf("%s(10) = %d, want %d", c.f.Name, got.Int(), c.want)
				}
			}

			// An uninstalled function is re-installable and correct.
			if err := m.Install(f1); err != nil {
				t.Fatal(err)
			}
			got, err := m.Call(f1, core.I(10))
			if err != nil {
				t.Fatal(err)
			}
			if got.Int() != 11 {
				t.Errorf("reinstalled f1(10) = %d, want 11", got.Int())
			}
		})
	}
}

// TestDoubleInstallMutated is the regression test for the silent-no-op
// hazard: re-installing an installed function is fine while its code is
// unchanged, and an explicit error once the code was mutated.
func TestDoubleInstallMutated(t *testing.T) {
	tg := Targets()[0]
	m := tg.NewMachine()
	f := buildAdd(t, tg, 5)
	if err := m.Install(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Install(f); err != nil {
		t.Errorf("unmodified re-Install errored: %v", err)
	}
	f.Words[len(f.Words)-1] ^= 1
	if err := m.Install(f); err == nil || !strings.Contains(err.Error(), "mutated") {
		t.Errorf("mutated re-Install: err = %v, want mutation error", err)
	}
	// Uninstall clears the fingerprint; the rebuilt words install cleanly.
	f.Words[len(f.Words)-1] ^= 1
	if err := m.Uninstall(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Install(f); err != nil {
		t.Errorf("reinstall after Uninstall: %v", err)
	}
}

// TestInstallForeignMachine: a function installed on one machine is
// rejected, not silently accepted, by another.
func TestInstallForeignMachine(t *testing.T) {
	tg := Targets()[0]
	m1, m2 := tg.NewMachine(), tg.NewMachine()
	f := buildAdd(t, tg, 7)
	if err := m1.Install(f); err != nil {
		t.Fatal(err)
	}
	if m2.Installed(f) {
		t.Error("m2 claims a function installed on m1")
	}
	if err := m2.Install(f); err == nil {
		t.Error("installing on a second machine should error while installed on the first")
	}
	if err := m2.Uninstall(f); err == nil {
		t.Error("uninstalling from the wrong machine should error")
	}
	// Moving a function between machines works via Uninstall.
	if err := m1.Uninstall(f); err != nil {
		t.Fatal(err)
	}
	if err := m2.Install(f); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Call(f, core.I(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 8 {
		t.Errorf("migrated f(1) = %d, want 8", got.Int())
	}
}
