package ash

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/mem"
)

// TestStagePipelineMatchesBuiltin composes checksum+swap through the
// Stage interface and checks it produces the same destination bytes and
// checksum as the builtin pipeline.
func TestStagePipelineMatchesBuiltin(t *testing.T) {
	sys, err := NewSystem(mem.DEC5000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsg(1024)
	_, wantSum, err := sys.Run(ASH, Pipeline{Checksum: true, Swap: true}, msg, false)
	if err != nil {
		t.Fatal(err)
	}
	wantDst, err := sys.Dst(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), wantDst...)

	_, sum, err := sys.RunStages([]Stage{ChecksumStage(), SwapStage()}, msg, false)
	if err != nil {
		t.Fatal(err)
	}
	if uint16(sum) != wantSum {
		t.Errorf("stage checksum %#x, builtin %#x", sum, wantSum)
	}
	dst, err := sys.Dst(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Error("stage pipeline destination differs from builtin")
	}
}

// TestClientStageComposition adds a client-defined XOR layer and checks
// ordering semantics: checksum sees the pre-XOR data when composed first.
func TestClientStageComposition(t *testing.T) {
	sys, err := NewSystem(mem.Uncosted, 2048)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsg(256)
	const key = 0xdeadbeef

	_, sum, err := sys.RunStages([]Stage{ChecksumStage(), XorStage(key)}, msg, false)
	if err != nil {
		t.Fatal(err)
	}
	if uint16(sum) != RefChecksum(msg) {
		t.Errorf("checksum-before-xor = %#x, want %#x", sum, RefChecksum(msg))
	}
	dst, err := sys.Dst(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+3 < len(msg); i += 4 {
		want := binary.LittleEndian.Uint32(msg[i:]) ^ key
		got := binary.LittleEndian.Uint32(dst[i:])
		if got != want {
			t.Fatalf("word %d: %#x, want %#x", i/4, got, want)
		}
	}

	// Composed the other way, the checksum covers the XORed words.
	_, sum2, err := sys.RunStages([]Stage{XorStage(key), ChecksumStage()}, msg, false)
	if err != nil {
		t.Fatal(err)
	}
	xored, err := sys.Dst(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if uint16(sum2) != RefChecksum(xored) {
		t.Errorf("xor-before-checksum = %#x, want %#x", sum2, RefChecksum(xored))
	}
	if uint16(sum2) == uint16(sum) {
		t.Error("orderings should differ for this key")
	}
}

// TestThreeStageComposition chains three layers, the modular-composition
// scenario the paper motivates.
func TestThreeStageComposition(t *testing.T) {
	sys, err := NewSystem(mem.DEC5000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsg(512)
	cycles, sum, err := sys.RunStages([]Stage{ChecksumStage(), SwapStage(), XorStage(0x01010101)}, msg, false)
	if err != nil {
		t.Fatal(err)
	}
	if uint16(sum) != RefChecksum(msg) {
		t.Errorf("checksum = %#x, want %#x", sum, RefChecksum(msg))
	}
	if cycles == 0 {
		t.Error("no cycles charged")
	}
	dst, err := sys.Dst(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	swapped := RefSwap(msg)
	for i := 0; i+3 < len(msg); i += 4 {
		want := binary.LittleEndian.Uint32(swapped[i:]) ^ 0x01010101
		if got := binary.LittleEndian.Uint32(dst[i:]); got != want {
			t.Fatalf("word %d: %#x, want %#x", i/4, got, want)
		}
	}
}
