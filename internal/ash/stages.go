package ash

import (
	"fmt"

	"repro/internal/core"
)

// Stage is one modular message data operation, written in terms of VCODE
// instructions (the paper's point: "by writing each data processing step
// in terms of VCODE it is possible for clients to write code that is more
// efficient than if it were written in a high-level language"), which the
// ASH system composes with others into a single dynamically generated
// pass over memory.
type Stage struct {
	Name string
	// Setup emits pre-loop code (load masks and constants into
	// registers — specialization the static separate-pass world pays
	// for on every call).
	Setup func(a *core.Asm, r *StageRegs)
	// Word emits the per-word processing; w holds the current message
	// word and may be transformed in place.
	Word func(a *core.Asm, r *StageRegs, w core.Reg)
	// Finish emits post-loop code; a stage producing a summary value
	// (e.g. a checksum) moves it into r.Acc.
	Finish func(a *core.Asm, r *StageRegs)
}

// StageRegs exposes the registers a stage may use.
type StageRegs struct {
	// Acc is the pipeline's summary accumulator (returned by the
	// generated function).
	Acc core.Reg
	// Tmp are per-stage scratch registers, valid within one emitted
	// fragment.
	Tmp [2]core.Reg
	// Const are registers a stage may fill in Setup and rely on in
	// every Word (one per stage; ask for more via Asm.GetReg).
	Const core.Reg
}

// ChecksumStage is the internet-checksum stage expressed through the
// Stage interface.
func ChecksumStage() Stage {
	return Stage{
		Name: "checksum",
		Word: func(a *core.Asm, r *StageRegs, w core.Reg) {
			a.Andui(r.Tmp[0], w, 0xffff)
			a.Addu(r.Acc, r.Acc, r.Tmp[0])
			a.Rshui(r.Tmp[0], w, 16)
			a.Addu(r.Acc, r.Acc, r.Tmp[0])
		},
		Finish: func(a *core.Asm, r *StageRegs) {
			for i := 0; i < 2; i++ {
				a.Rshui(r.Tmp[0], r.Acc, 16)
				a.Andui(r.Acc, r.Acc, 0xffff)
				a.Addu(r.Acc, r.Acc, r.Tmp[0])
			}
		},
	}
}

// SwapStage byte-swaps each halfword of every word.
func SwapStage() Stage {
	return Stage{
		Name: "byteswap",
		Setup: func(a *core.Asm, r *StageRegs) {
			a.Setu(r.Const, 0x00ff00ff)
		},
		Word: func(a *core.Asm, r *StageRegs, w core.Reg) {
			a.Andu(r.Tmp[0], w, r.Const)
			a.Lshui(r.Tmp[0], r.Tmp[0], 8)
			a.Rshui(r.Tmp[1], w, 8)
			a.Andu(r.Tmp[1], r.Tmp[1], r.Const)
			a.Oru(w, r.Tmp[0], r.Tmp[1])
		},
	}
}

// XorStage is the kind of stage a client protocol layer adds: XOR every
// word with a key chosen at composition time (a toy obfuscation layer).
func XorStage(key uint32) Stage {
	return Stage{
		Name: fmt.Sprintf("xor[%#x]", key),
		Setup: func(a *core.Asm, r *StageRegs) {
			a.Setu(r.Const, int64(key))
		},
		Word: func(a *core.Asm, r *StageRegs, w core.Reg) {
			a.Xoru(w, w, r.Const)
		},
	}
}

// CompileStages dynamically composes the stages — in order — into one
// copying loop over the message, unrolled `unroll` words per iteration.
// The generated function has the same (src, dst, nbytes) -> word
// signature as the builtin pipelines.
func (s *System) CompileStages(stages []Stage, unroll int) (*core.Func, error) {
	if unroll < 1 {
		return nil, fmt.Errorf("ash: unroll must be >= 1")
	}
	a := core.NewAsm(s.backend)
	name := "ash"
	for _, st := range stages {
		name += "+" + st.Name
	}
	a.SetName(name)
	args, err := a.Begin("%p%p%i", core.Leaf)
	if err != nil {
		return nil, err
	}
	src, dst, n := args[0], args[1], args[2]
	get := func() (core.Reg, error) { return a.GetReg(core.Temp) }
	end, err := get()
	if err != nil {
		return nil, err
	}
	acc, err := get()
	if err != nil {
		return nil, err
	}
	t0, err := get()
	if err != nil {
		return nil, err
	}
	t1, err := get()
	if err != nil {
		return nil, err
	}
	w, err := get()
	if err != nil {
		return nil, err
	}
	a.Addp(end, src, n)
	a.Setu(acc, 0)

	// Per-stage constant registers, filled by Setup.
	regs := make([]*StageRegs, len(stages))
	for i, st := range stages {
		r := &StageRegs{Acc: acc, Tmp: [2]core.Reg{t0, t1}, Const: core.NoReg}
		if st.Setup != nil {
			c, err := a.GetReg(core.Var)
			if err != nil {
				return nil, fmt.Errorf("ash: stage %s constants exceed registers: %w", st.Name, err)
			}
			r.Const = c
			st.Setup(a, r)
		}
		regs[i] = r
	}

	top := a.NewLabel()
	a.Bind(top)
	for u := 0; u < unroll; u++ {
		a.Ldui(w, src, int64(4*u))
		for i, st := range stages {
			if st.Word != nil {
				st.Word(a, regs[i], w)
			}
		}
		a.Stui(w, dst, int64(4*u))
	}
	a.Addpi(src, src, int64(4*unroll))
	a.Addpi(dst, dst, int64(4*unroll))
	a.Bltp(src, end, top)
	for i, st := range stages {
		if st.Finish != nil {
			st.Finish(a, regs[i])
		}
	}
	a.Retu(acc)
	return a.End()
}

// RunStages compiles (with 4x unrolling, as the ASH system does),
// installs and runs a composed pipeline over msg, returning the cycle
// cost and the accumulator value.
func (s *System) RunStages(stages []Stage, msg []byte, flush bool) (cycles uint64, acc uint32, err error) {
	if len(msg) > s.capBytes || len(msg)%16 != 0 {
		return 0, 0, fmt.Errorf("ash: message must fit the buffer and be a multiple of 16 bytes")
	}
	fn, err := s.CompileStages(stages, 4)
	if err != nil {
		return 0, 0, err
	}
	if err := s.machine.Install(fn); err != nil {
		return 0, 0, err
	}
	if err := s.machine.Mem().WriteBytes(s.src, msg); err != nil {
		return 0, 0, err
	}
	if flush {
		s.machine.Mem().FlushCache()
	}
	s.cpu.ResetStats()
	v, err := s.machine.Call(fn, core.P(s.src), core.P(s.dst), core.I(int32(len(msg))))
	if err != nil {
		return 0, 0, err
	}
	return s.cpu.Cycles(), uint32(v.Uint()), nil
}
