package ash

import (
	"fmt"

	"repro/internal/mem"
)

// Table4Row is one cell block of the paper's Table 4: a machine, a
// method, and the microsecond cost of each pipeline.
type Table4Row struct {
	Machine  string
	Method   string  // "separate uncached", "separate", "C integrated", "ASH"
	CkMicros float64 // copy + checksum
	SwMicros float64 // copy + checksum + byte swap
}

// Table4Message is the message size processed per trial (the experiment
// models handler delivery of a large message).
const Table4Message = 4096

// RunTable4 reproduces Table 4: the cost of integrated and non-integrated
// memory operations on the two DECstation models.  Rows mirror the
// paper's: "separate uncached" flushes the data cache before each trial;
// the other rows run warm.
func RunTable4() ([]Table4Row, error) {
	msg := make([]byte, Table4Message)
	for i := range msg {
		msg[i] = byte(i*7 + 3)
	}

	var rows []Table4Row
	for _, conf := range []mem.MachineConfig{mem.DEC3100, mem.DEC5000} {
		sys, err := NewSystem(conf, Table4Message)
		if err != nil {
			return nil, err
		}
		type variant struct {
			label  string
			method Method
			flush  bool
		}
		for _, v := range []variant{
			{"separate uncached", Separate, true},
			{"separate", Separate, false},
			{"C integrated", CIntegrated, false},
			{"ASH", ASH, false},
		} {
			row := Table4Row{Machine: conf.Name, Method: v.label}
			for _, p := range []Pipeline{{Checksum: true}, {Checksum: true, Swap: true}} {
				// Warm-up run to populate the cache (and the code
				// path); flushed again below when uncached.
				if _, _, err := sys.Run(v.method, p, msg, false); err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", conf.Name, v.label, p, err)
				}
				cycles, sum, err := sys.Run(v.method, p, msg, v.flush)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", conf.Name, v.label, p, err)
				}
				if want := RefChecksum(msg); sum != want {
					return nil, fmt.Errorf("%s/%s/%s: checksum %#x, want %#x", conf.Name, v.label, p, sum, want)
				}
				if p.Swap {
					row.SwMicros = conf.Micros(cycles)
				} else {
					row.CkMicros = conf.Micros(cycles)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable4 renders the rows in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	s := "Table 4: cost of integrated and non-integrated memory operations (us)\n"
	s += fmt.Sprintf("%-10s %-18s %16s %24s\n", "machine", "method", "copy+checksum", "copy+checksum+byteswap")
	last := ""
	for _, r := range rows {
		m := r.Machine
		if m == last {
			m = ""
		} else {
			last = r.Machine
		}
		s += fmt.Sprintf("%-10s %-18s %16.0f %24.0f\n", m, r.Method, r.CkMicros, r.SwMicros)
	}
	return s
}
