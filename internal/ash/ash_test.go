package ash

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testMsg(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i*31 + 7)
	}
	return msg
}

// TestMethodsProduceSameResults checks all three implementations against
// the Go reference for every pipeline.
func TestMethodsProduceSameResults(t *testing.T) {
	sys, err := NewSystem(mem.DEC5000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsg(1024)
	for _, p := range []Pipeline{{}, {Checksum: true}, {Swap: true}, {Checksum: true, Swap: true}} {
		wantDst := msg
		if p.Swap {
			wantDst = RefSwap(msg)
		}
		wantSum := uint16(0)
		if p.Checksum {
			wantSum = RefChecksum(msg)
		}
		for _, m := range []Method{Separate, CIntegrated, ASH} {
			_, sum, err := sys.Run(m, p, msg, false)
			if err != nil {
				t.Fatalf("%s/%s: %v", m, p, err)
			}
			if p.Checksum && sum != wantSum {
				t.Errorf("%s/%s: checksum %#x, want %#x", m, p, sum, wantSum)
			}
			dst, err := sys.Dst(len(msg))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, wantDst) {
				t.Errorf("%s/%s: destination buffer differs from reference", m, p)
			}
		}
	}
}

// TestChecksumQuick property-tests the generated checksum code against
// the reference over random messages.
func TestChecksumQuick(t *testing.T) {
	sys, err := NewSystem(mem.Uncosted, 4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint32, blocks uint8) bool {
		n := (int(blocks%64) + 1) * 16
		msg := make([]byte, n)
		s := seed
		for i := range msg {
			s = s*1664525 + 1013904223
			msg[i] = byte(s >> 24)
		}
		_, sum, err := sys.Run(ASH, Pipeline{Checksum: true}, msg, false)
		return err == nil && sum == RefChecksum(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIntegrationOrdering checks Table 4's qualitative claims: ASH beats
// the hand-integrated loop, which beats separate passes; flushing the
// cache hurts separate passes more than it hurts the integrated one.
func TestIntegrationOrdering(t *testing.T) {
	sys, err := NewSystem(mem.DEC5000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsg(4096)
	p := Pipeline{Checksum: true, Swap: true}
	cost := func(m Method, flush bool) uint64 {
		// Warm, then measure.
		if _, _, err := sys.Run(m, p, msg, false); err != nil {
			t.Fatal(err)
		}
		c, _, err := sys.Run(m, p, msg, flush)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sep := cost(Separate, false)
	sepU := cost(Separate, true)
	ci := cost(CIntegrated, false)
	ashc := cost(ASH, false)
	if !(ashc < ci && ci < sep && sep < sepU) {
		t.Errorf("ordering wrong: ash=%d < C=%d < separate=%d < separate-uncached=%d", ashc, ci, sep, sepU)
	}
	// The integration benefit must grow when the separate passes start
	// from a cold cache (they re-touch memory the cache no longer
	// holds), the paper's "factor of two with a flush" observation.
	if float64(sepU)/float64(ashc) <= float64(sep)/float64(ashc) {
		t.Errorf("uncached integration benefit (%.2fx) should exceed cached (%.2fx)",
			float64(sepU)/float64(ashc), float64(sep)/float64(ashc))
	}
}

// TestTable4Runs smoke-tests the full table.
func TestTable4Runs(t *testing.T) {
	rows, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.CkMicros <= 0 || r.SwMicros <= r.CkMicros {
			t.Errorf("%s/%s: implausible cells %v/%v", r.Machine, r.Method, r.CkMicros, r.SwMicros)
		}
	}
}
