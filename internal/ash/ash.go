// Package ash reproduces the paper's §4.3 experiment: ASHs (application
// safe handlers) use VCODE to compose message data operations —
// copying, internet checksumming, byte swapping — into a single
// specialized pass over memory, instead of one modular pass per
// operation.  Three implementations of each operation pipeline are built:
//
//   - Separate: one loop per operation (the modular composition whose
//     cost the paper attacks): copy src->dst, then checksum dst, then
//     byte-swap dst in place;
//   - CIntegrated: a hand-integrated single-pass loop of the quality a C
//     compiler produces (one word per iteration, straight-line body);
//   - ASH: the dynamically generated loop VCODE emits — specialized to
//     exactly the requested operations, constants preloaded, unrolled.
//
// All three run as generated MIPS code on the cycle-counted simulator
// under a DECstation machine model, so Table 4's cached/uncached rows
// fall out of the cache model (write-through, no write-allocate — which
// is why the separate checksum pass over the freshly written destination
// misses even when the source was cached).
package ash

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

// Pipeline selects the data operations composed with the copy.
type Pipeline struct {
	Checksum bool
	Swap     bool
}

func (p Pipeline) String() string {
	s := "copy"
	if p.Checksum {
		s += "+checksum"
	}
	if p.Swap {
		s += "+byteswap"
	}
	return s
}

// Method names one implementation strategy.
type Method string

// The three compared implementations.
const (
	Separate    Method = "separate"
	CIntegrated Method = "C integrated"
	ASH         Method = "ASH"
)

// System owns a simulated machine and compiles/runs message pipelines.
type System struct {
	machine *core.Machine
	backend *mips.Backend
	cpu     *mips.CPU
	conf    mem.MachineConfig

	src, dst uint64
	capBytes int

	funcs map[string][]*core.Func
}

// NewSystem builds a system on the given machine model with buffers of
// capBytes.
func NewSystem(conf mem.MachineConfig, capBytes int) (*System, error) {
	bk := mips.New()
	m, err := conf.Build(false)
	if err != nil {
		return nil, err
	}
	cpu := mips.NewCPU(m)
	mc := core.NewMachine(bk, cpu, m)
	s := &System{machine: mc, backend: bk, cpu: cpu, conf: conf, capBytes: capBytes,
		funcs: make(map[string][]*core.Func)}
	if s.src, err = mc.Alloc(capBytes); err != nil {
		return nil, err
	}
	if s.dst, err = mc.Alloc(capBytes); err != nil {
		return nil, err
	}
	return s, nil
}

// Machine exposes the simulated machine.
func (s *System) Machine() *core.Machine { return s.machine }

// Funcs returns (compiling on first use) the function chain implementing
// a pipeline with a method.  Separate returns one function per pass;
// the integrated methods return a single function.
func (s *System) Funcs(m Method, p Pipeline) ([]*core.Func, error) {
	key := fmt.Sprintf("%s/%s", m, p)
	if fs, ok := s.funcs[key]; ok {
		return fs, nil
	}
	var fs []*core.Func
	var err error
	switch m {
	case Separate:
		fs, err = s.compileSeparate(p)
	case CIntegrated:
		f, e := s.compileIntegrated(p, 1)
		fs, err = []*core.Func{f}, e
	case ASH:
		f, e := s.compileIntegrated(p, 4)
		fs, err = []*core.Func{f}, e
	default:
		return nil, fmt.Errorf("ash: unknown method %q", m)
	}
	if err != nil {
		return nil, err
	}
	for _, f := range fs {
		if err := s.machine.Install(f); err != nil {
			return nil, err
		}
	}
	s.funcs[key] = fs
	return fs, nil
}

// Run processes msg through the pipeline with the given method and
// returns the cycle cost and the computed checksum (0 when the pipeline
// does not checksum).  When flush is true the data cache is invalidated
// first (the table's "uncached" rows); otherwise a warm-up run has
// usually already populated it.
func (s *System) Run(m Method, p Pipeline, msg []byte, flush bool) (cycles uint64, sum uint16, err error) {
	if len(msg) > s.capBytes {
		return 0, 0, fmt.Errorf("ash: message of %d bytes exceeds buffer", len(msg))
	}
	if len(msg)%16 != 0 {
		return 0, 0, fmt.Errorf("ash: message length must be a multiple of 16 (got %d)", len(msg))
	}
	fs, err := s.Funcs(m, p)
	if err != nil {
		return 0, 0, err
	}
	if err := s.machine.Mem().WriteBytes(s.src, msg); err != nil {
		return 0, 0, err
	}
	if flush {
		s.machine.Mem().FlushCache()
	}
	s.cpu.ResetStats()
	for _, f := range fs {
		v, cerr := s.machine.Call(f, core.P(s.src), core.P(s.dst), core.I(int32(len(msg))))
		if cerr != nil {
			return 0, 0, cerr
		}
		// The checksum comes from the pass that computed it (the only
		// pass in the integrated methods, the middle pass when
		// separate).
		if p.Checksum && (m != Separate || f.Name == "ash-checksum") {
			sum = uint16(v.Uint())
		}
	}
	return s.cpu.Cycles(), sum, nil
}

// Dst reads back the destination buffer (for verification).
func (s *System) Dst(n int) ([]byte, error) {
	return s.machine.Mem().ReadBytes(s.dst, n)
}

// --- reference implementations (for tests) ---

// RefChecksum is the 16-bit ones-complement internet checksum of the
// buffer, summed over little-endian halfwords.
func RefChecksum(b []byte) uint16 {
	var acc uint32
	for i := 0; i+1 < len(b); i += 2 {
		acc += uint32(binary.LittleEndian.Uint16(b[i:]))
	}
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return uint16(acc)
}

// RefSwap returns the buffer with the bytes of each halfword swapped.
func RefSwap(b []byte) []byte {
	out := make([]byte, len(b))
	for i := 0; i+1 < len(b); i += 2 {
		out[i], out[i+1] = b[i+1], b[i]
	}
	return out
}

// --- code generation ---

// loopRegs are the registers common to every generated pass.
type loopRegs struct {
	src, dst, n core.Reg
	end, acc    core.Reg
	maskLo, tmp core.Reg
	tmp2        core.Reg
}

func (s *System) begin(a *core.Asm, name string) (loopRegs, error) {
	var r loopRegs
	a.SetName(name)
	args, err := a.Begin("%p%p%i", core.Leaf)
	if err != nil {
		return r, err
	}
	r.src, r.dst, r.n = args[0], args[1], args[2]
	get := func() core.Reg {
		reg, gerr := a.GetReg(core.Temp)
		if gerr != nil && err == nil {
			err = gerr
		}
		return reg
	}
	r.end, r.acc, r.maskLo, r.tmp, r.tmp2 = get(), get(), get(), get(), get()
	if err != nil {
		return r, err
	}
	a.Addp(r.end, r.src, r.n)
	a.Setu(r.acc, 0)
	return r, nil
}

// emitChecksumWord adds the two halfwords of w into acc (4 instructions).
func emitChecksumWord(a *core.Asm, r loopRegs, w core.Reg) {
	a.Andui(r.tmp, w, 0xffff)
	a.Addu(r.acc, r.acc, r.tmp)
	a.Rshui(r.tmp, w, 16)
	a.Addu(r.acc, r.acc, r.tmp)
}

// emitSwapWord byte-swaps each halfword of w in place (5 instructions;
// the 0x00ff00ff mask register is preloaded outside the loop — part of
// what specialization buys).
func emitSwapWord(a *core.Asm, r loopRegs, w core.Reg) {
	a.Andu(r.tmp, w, r.maskLo)
	a.Lshui(r.tmp, r.tmp, 8)
	a.Rshui(r.tmp2, w, 8)
	a.Andu(r.tmp2, r.tmp2, r.maskLo)
	a.Oru(w, r.tmp, r.tmp2)
}

// emitFold folds the 32-bit accumulator into the final 16-bit checksum.
func emitFold(a *core.Asm, r loopRegs) {
	for i := 0; i < 2; i++ {
		a.Rshui(r.tmp, r.acc, 16)
		a.Andui(r.acc, r.acc, 0xffff)
		a.Addu(r.acc, r.acc, r.tmp)
	}
}

// compileIntegrated generates the single-pass loop processing `unroll`
// words per iteration.  unroll=1 is the hand-integrated "C" code shape;
// unroll=4 is what the ASH system emits.
func (s *System) compileIntegrated(p Pipeline, unroll int) (*core.Func, error) {
	a := core.NewAsm(s.backend)
	r, err := s.begin(a, fmt.Sprintf("ash-%s-x%d", p, unroll))
	if err != nil {
		return nil, err
	}
	if p.Swap {
		a.Setu(r.maskLo, 0x00ff00ff)
	}
	w, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	top := a.NewLabel()
	a.Bind(top)
	for i := 0; i < unroll; i++ {
		a.Ldui(w, r.src, int64(4*i))
		if p.Checksum {
			emitChecksumWord(a, r, w)
		}
		if p.Swap {
			emitSwapWord(a, r, w)
		}
		a.Stui(w, r.dst, int64(4*i))
	}
	a.Addpi(r.src, r.src, int64(4*unroll))
	a.Addpi(r.dst, r.dst, int64(4*unroll))
	a.Bltp(r.src, r.end, top)
	if p.Checksum {
		emitFold(a, r)
	}
	a.Retu(r.acc)
	return a.End()
}

// compileSeparate generates one loop per operation: copy, then checksum
// over the destination, then byte-swap the destination in place.
func (s *System) compileSeparate(p Pipeline) ([]*core.Func, error) {
	var fs []*core.Func

	// Pass 1: copy.
	a := core.NewAsm(s.backend)
	r, err := s.begin(a, "ash-copy")
	if err != nil {
		return nil, err
	}
	w, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	top := a.NewLabel()
	a.Bind(top)
	a.Ldui(w, r.src, 0)
	a.Stui(w, r.dst, 0)
	a.Addpi(r.src, r.src, 4)
	a.Addpi(r.dst, r.dst, 4)
	a.Bltp(r.src, r.end, top)
	a.Retu(r.acc)
	f, err := a.End()
	if err != nil {
		return nil, err
	}
	fs = append(fs, f)

	// Pass 2: checksum over dst.
	if p.Checksum {
		a := core.NewAsm(s.backend)
		r, err := s.begin(a, "ash-checksum")
		if err != nil {
			return nil, err
		}
		w, err := a.GetReg(core.Temp)
		if err != nil {
			return nil, err
		}
		// end tracks dst in this pass.
		a.Addp(r.end, r.dst, r.n)
		top := a.NewLabel()
		a.Bind(top)
		a.Ldui(w, r.dst, 0)
		emitChecksumWord(a, r, w)
		a.Addpi(r.dst, r.dst, 4)
		a.Bltp(r.dst, r.end, top)
		emitFold(a, r)
		a.Retu(r.acc)
		f, err := a.End()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}

	// Pass 3: byte swap dst in place, preserving the checksum in the
	// return value (the driver returns the last call's value).
	if p.Swap {
		a := core.NewAsm(s.backend)
		r, err := s.begin(a, "ash-swap")
		if err != nil {
			return nil, err
		}
		a.Setu(r.maskLo, 0x00ff00ff)
		w, err := a.GetReg(core.Temp)
		if err != nil {
			return nil, err
		}
		a.Addp(r.end, r.dst, r.n)
		top := a.NewLabel()
		a.Bind(top)
		a.Ldui(w, r.dst, 0)
		emitSwapWord(a, r, w)
		a.Stui(w, r.dst, 0)
		a.Addpi(r.dst, r.dst, 4)
		a.Bltp(r.dst, r.end, top)
		a.Retu(r.acc)
		f, err := a.End()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}
