// Package spec implements VCODE's concise instruction-specification
// language (paper §5.4).  A specification is a sequence of s-expressions,
// one per instruction family:
//
//	( base-insn-name ( param-list ) ( type-list mach-insn [mach-imm-insn] )+ )
//
// For example, the paper's square-root extension for the MIPS:
//
//	(sqrt (rd, rs) (f fsqrts) (d fsqrtd))
//
// composes the base name sqrt with the types f and d and associates each
// with a target machine instruction.  The package provides three
// consumers: Parse (the reader), GenerateGo (the preprocessor — it emits a
// Go wrapper family, used by cmd/vcodegen), and Apply (runtime
// registration of the family on an assembler, where hardware mappings are
// honoured through Backend.TryExt and portable definitions are supplied as
// synthesis functions).
package spec

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Clause associates a list of types with a target machine instruction (and
// optionally an immediate-form instruction).
type Clause struct {
	Types    []core.Type
	MachInsn string
	MachImm  string
}

// Def is one parsed instruction-family definition.
type Def struct {
	Name    string
	Params  []string
	Clauses []Clause
}

// Types returns the union of types the family composes with.
func (d *Def) AllTypes() []core.Type {
	var out []core.Type
	seen := map[core.Type]bool{}
	for _, c := range d.Clauses {
		for _, t := range c.Types {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// ---- s-expression reader ----

type sexpr struct {
	atom string   // set when leaf
	list []*sexpr // set when list
}

type parser struct {
	src   string
	pos   int
	depth int
}

// maxListDepth bounds s-expression nesting: the parser is recursive, and
// without a limit "((((…" input overflows the goroutine stack — a fatal
// runtime error that no recover can catch.
const maxListDepth = 200

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' {
			p.pos++
			continue
		}
		break
	}
}

func (p *parser) parse() (*sexpr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, nil
	}
	if p.src[p.pos] == '(' {
		p.depth++
		defer func() { p.depth-- }()
		if p.depth > maxListDepth {
			return nil, fmt.Errorf("spec: lists nested deeper than %d", maxListDepth)
		}
		p.pos++
		node := &sexpr{list: []*sexpr{}}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("spec: unterminated list")
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return node, nil
			}
			child, err := p.parse()
			if err != nil {
				return nil, err
			}
			node.list = append(node.list, child)
		}
	}
	if p.src[p.pos] == ')' {
		return nil, fmt.Errorf("spec: unexpected ')'")
	}
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune(" \t\n\r(),;", rune(p.src[p.pos])) {
		p.pos++
	}
	return &sexpr{atom: p.src[start:p.pos]}, nil
}

// Parse reads a full specification.
func Parse(text string) ([]*Def, error) {
	p := &parser{src: text}
	var defs []*Def
	for {
		node, err := p.parse()
		if err != nil {
			return nil, err
		}
		if node == nil {
			return defs, nil
		}
		d, err := toDef(node)
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
}

func toDef(node *sexpr) (*Def, error) {
	if node.atom != "" || len(node.list) < 3 {
		return nil, fmt.Errorf("spec: definition needs (name (params) (clause)+)")
	}
	name := node.list[0].atom
	if name == "" {
		return nil, fmt.Errorf("spec: family name must be an atom")
	}
	params := node.list[1]
	if params.atom != "" {
		return nil, fmt.Errorf("spec: %s: parameter list must be a list", name)
	}
	d := &Def{Name: name}
	for _, pn := range params.list {
		if pn.atom == "" {
			return nil, fmt.Errorf("spec: %s: bad parameter", name)
		}
		d.Params = append(d.Params, pn.atom)
	}
	if len(d.Params) == 0 || d.Params[0] != "rd" {
		return nil, fmt.Errorf("spec: %s: first parameter must be rd", name)
	}
	for _, cn := range node.list[2:] {
		if cn.atom != "" || len(cn.list) < 2 {
			return nil, fmt.Errorf("spec: %s: clause needs (type-list mach-insn [imm-insn])", name)
		}
		var c Clause
		i := 0
		for ; i < len(cn.list); i++ {
			t, err := core.ParseType(cn.list[i].atom)
			if err != nil || cn.list[i].atom == "" {
				break
			}
			c.Types = append(c.Types, t)
		}
		if len(c.Types) == 0 {
			return nil, fmt.Errorf("spec: %s: clause has no types", name)
		}
		rest := cn.list[i:]
		if len(rest) < 1 || len(rest) > 2 || rest[0].atom == "" {
			return nil, fmt.Errorf("spec: %s: clause needs one or two machine instructions", name)
		}
		c.MachInsn = rest[0].atom
		if len(rest) == 2 {
			c.MachImm = rest[1].atom
		}
		d.Clauses = append(d.Clauses, c)
	}
	return d, nil
}

// ---- preprocessor output ----

// GenerateGo emits a Go source file defining one wrapper function per
// family/type composition, in the paper's v_<name><type> naming.  The
// wrappers route through the assembler's extension mechanism, so they pick
// up hardware implementations via Backend.TryExt and portable definitions
// registered with Apply.
func GenerateGo(pkg string, defs []*Def) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by vcodegen -spec; DO NOT EDIT.\n\n")
	fmt.Fprintf(&b, "package %s\n\n", pkg)
	fmt.Fprintf(&b, "import \"repro/internal/core\"\n\n")
	for _, d := range defs {
		srcs := d.Params[1:]
		args := make([]string, len(srcs))
		for i, s := range srcs {
			args[i] = s
		}
		for _, c := range d.Clauses {
			for _, t := range c.Types {
				fn := "V" + capitalize(d.Name) + t.Letter()
				fmt.Fprintf(&b, "// %s emits v_%s%s (machine form %s).\n", fn, d.Name, t.Letter(), c.MachInsn)
				fmt.Fprintf(&b, "func %s(a *core.Asm, rd", fn)
				for _, s := range args {
					fmt.Fprintf(&b, ", %s", s)
				}
				fmt.Fprintf(&b, " core.Reg) {\n")
				fmt.Fprintf(&b, "\ta.Ext(%q, core.%s, rd", d.Name, typeConstName(t))
				for _, s := range args {
					fmt.Fprintf(&b, ", %s", s)
				}
				fmt.Fprintf(&b, ")\n}\n\n")
			}
		}
	}
	return b.String(), nil
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func typeConstName(t core.Type) string {
	switch t {
	case core.TypeC:
		return "TypeC"
	case core.TypeUC:
		return "TypeUC"
	case core.TypeS:
		return "TypeS"
	case core.TypeUS:
		return "TypeUS"
	case core.TypeI:
		return "TypeI"
	case core.TypeU:
		return "TypeU"
	case core.TypeL:
		return "TypeL"
	case core.TypeUL:
		return "TypeUL"
	case core.TypeP:
		return "TypeP"
	case core.TypeF:
		return "TypeF"
	case core.TypeD:
		return "TypeD"
	}
	return "TypeV"
}

// ---- runtime registration ----

// Synth is a portable definition for a family, expressed (as the paper
// requires) purely in terms of core VCODE instructions.
type Synth func(a *core.Asm, t core.Type, rd core.Reg, rs []core.Reg)

// Apply registers every family in defs on the assembler.  A family whose
// machine instructions the backend recognizes (through TryExt) needs no
// synthesis; families with an entry in synths carry a portable definition
// and therefore work on every target.
func Apply(a *core.Asm, defs []*Def, synths map[string]Synth) {
	for _, d := range defs {
		ext := &core.ExtDef{
			Name:  d.Name,
			NSrc:  len(d.Params) - 1,
			Types: d.AllTypes(),
		}
		if s, ok := synths[d.Name]; ok {
			ext.Synth = s
		}
		a.DefineExt(ext)
	}
}
