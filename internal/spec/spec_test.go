package spec

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

const paperExample = `
; the paper's §5.4 example: add a square-root instruction on the MIPS
(sqrt (rd, rs) (f fsqrts) (d fsqrtd))
`

func TestParsePaperExample(t *testing.T) {
	defs, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 {
		t.Fatalf("got %d defs", len(defs))
	}
	d := defs[0]
	if d.Name != "sqrt" || len(d.Params) != 2 || d.Params[1] != "rs" {
		t.Errorf("def parsed wrong: %+v", d)
	}
	if len(d.Clauses) != 2 {
		t.Fatalf("got %d clauses", len(d.Clauses))
	}
	if d.Clauses[0].Types[0] != core.TypeF || d.Clauses[0].MachInsn != "fsqrts" {
		t.Errorf("clause 0: %+v", d.Clauses[0])
	}
	if d.Clauses[1].Types[0] != core.TypeD || d.Clauses[1].MachInsn != "fsqrtd" {
		t.Errorf("clause 1: %+v", d.Clauses[1])
	}
}

func TestParseMultipleTypesAndImm(t *testing.T) {
	defs, err := Parse(`(clip (rd, rs1, rs2) (i u l ul clipw clipwi) (d clipd))`)
	if err != nil {
		t.Fatal(err)
	}
	c := defs[0].Clauses[0]
	if len(c.Types) != 4 || c.MachInsn != "clipw" || c.MachImm != "clipwi" {
		t.Errorf("clause: %+v", c)
	}
	all := defs[0].AllTypes()
	if len(all) != 5 {
		t.Errorf("AllTypes: %v", all)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"(",
		")",
		"(sqrt)",
		"(sqrt rd (f fsqrts))",
		"((x) (rd) (f y))",
		"(sqrt (rs, rd) (f fsqrts))", // first param must be rd
		"(sqrt (rd, rs) ())",
		"(sqrt (rd, rs) (f))",
		"(sqrt (rd, rs) (q fsqrtq))", // unknown type
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed without error", src)
		}
	}
}

func TestGenerateGo(t *testing.T) {
	defs, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateGo("myext", defs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package myext",
		"func VSqrtf(a *core.Asm, rd, rs core.Reg)",
		"func VSqrtd(a *core.Asm, rd, rs core.Reg)",
		`a.Ext("sqrt", core.TypeF, rd, rs)`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
}

// TestApplyEndToEnd registers a spec-defined family and executes it: the
// hardware clause is honoured via TryExt (sqrt on MIPS), and a portable
// synthesis runs where provided.
func TestApplyEndToEnd(t *testing.T) {
	defs, err := Parse(`
(sqrt (rd, rs) (f fsqrts) (d fsqrtd))
(double2 (rd, rs) (i addpair))
`)
	if err != nil {
		t.Fatal(err)
	}
	bk := mips.New()
	m := mem.New(1<<22, false)
	machine := core.NewMachine(bk, mips.NewCPU(m), m)

	a := core.NewAsm(bk)
	Apply(a, defs, map[string]Synth{
		"double2": func(a *core.Asm, t core.Type, rd core.Reg, rs []core.Reg) {
			a.Addi(rd, rs[0], rs[0])
		},
	})

	args, err := a.Begin("%d%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	// r = sqrt(arg0) — hardware; n = double2(arg1) — synthesized;
	// return (int)r + n.
	a.Ext("sqrt", core.TypeD, args[0], args[0])
	a.Ext("double2", core.TypeI, args[1], args[1])
	conv, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a.Cvd2i(conv, args[0])
	a.Addi(conv, conv, args[1])
	a.Reti(conv)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := machine.Call(fn, core.D(144), core.I(5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 12+10 {
		t.Fatalf("got %d, want 22", got.Int())
	}
}
