package spec

import (
	"strings"
	"testing"
)

// FuzzSpecParse feeds arbitrary text to the instruction-spec parser;
// malformed specs must come back as errors, never panics.
func FuzzSpecParse(f *testing.F) {
	f.Add(paperExample)
	f.Add("(clip (rd, rs1, rs2) (i u l ul clipw clipwi) (d clipd))")
	f.Add("(a (rd) (i x))\n(b (rd, rs) (f y))")
	f.Add("; comment\n(sqrt (rd, rs) (f fsqrts))")
	f.Add("(")
	f.Add("()")
	f.Add("(x)")
	f.Add("(x (rd,) (i y))")
	f.Add("(x (rd) ())")
	// Regression: deep nesting must hit the depth limit, not the stack.
	f.Add(strings.Repeat("(", 2000))
	f.Fuzz(func(t *testing.T, text string) {
		defs, err := Parse(text)
		if err != nil {
			return
		}
		for _, d := range defs {
			if d == nil {
				t.Error("nil def without error")
			}
		}
	})
}
