// Package faultinject is a deterministic, probabilistic fault layer over
// the simulated machine stack.  An Injector plugs into internal/mem as a
// FaultHook — corrupting fetched instruction words with bit flips and
// failing fetches, loads and stores at configured rates — and wraps code
// cache compile callbacks with injected errors and panics.
//
// Its purpose is to prove the hardening contract: under any injected
// fault the generate→install→execute pipeline must degrade to typed
// errors — never panic, never hang.  Every fault the injector raises
// wraps ErrInjected, so a soak driver can separate "failures we caused"
// from "failures the stack invented" with errors.Is.
//
// All fault decisions come from a single seeded PRNG, so a failing soak
// run reproduces exactly from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ErrInjected is wrapped by every error the injector raises.  Use
// errors.Is(err, faultinject.ErrInjected) to recognize deliberate faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is the concrete error for one injected fault.
type Fault struct {
	Op   string // "fetch", "load", "store", "compile"
	Addr uint64 // faulted address (0 for compile faults)
	Size int    // access size in bytes (0 for fetch/compile)
}

func (f *Fault) Error() string {
	switch f.Op {
	case "compile", "journal-write", "journal-sync":
		return "faultinject: injected " + f.Op + " failure"
	}
	return fmt.Sprintf("faultinject: injected %s fault at %#x", f.Op, f.Addr)
}

// Unwrap makes every Fault match ErrInjected.
func (f *Fault) Unwrap() error { return ErrInjected }

// Config sets the per-event fault probabilities (all in [0,1]; zero
// disables that fault class).
type Config struct {
	// Seed initializes the PRNG; runs with equal seeds and equal event
	// sequences inject identical faults.
	Seed int64

	// FetchErrorRate fails an instruction fetch outright.
	FetchErrorRate float64
	// FetchFlipRate corrupts a fetched instruction word by flipping one
	// random bit — the simulator must then decode-or-reject it, never
	// panic.
	FetchFlipRate float64
	// LoadErrorRate / StoreErrorRate fail data accesses.
	LoadErrorRate  float64
	StoreErrorRate float64

	// CompileErrorRate makes a wrapped compile callback return an
	// injected error; CompilePanicRate makes it panic instead (the code
	// cache must recover it into a CompilePanicError and close the
	// single-flight).  Panic is rolled first.
	CompileErrorRate float64
	CompilePanicRate float64

	// JournalWriteErrorRate / JournalSyncErrorRate fail the server's
	// crash journal: a write fault simulates a lost append (nothing
	// reaches the OS), a sync fault a disk that accepted the bytes but
	// refused the fsync.  The journal must degrade to non-durable typed
	// acks, never corrupt acknowledged state.
	JournalWriteErrorRate float64
	JournalSyncErrorRate  float64
}

// Stats counts injected faults by class.
type Stats struct {
	FetchErrors        uint64
	BitFlips           uint64
	LoadErrors         uint64
	StoreErrors        uint64
	CompileErrors      uint64
	CompilePanics      uint64
	JournalWriteErrors uint64
	JournalSyncErrors  uint64
}

// Total is the number of faults injected across all classes.
func (s Stats) Total() uint64 {
	return s.FetchErrors + s.BitFlips + s.LoadErrors + s.StoreErrors +
		s.CompileErrors + s.CompilePanics + s.JournalWriteErrors + s.JournalSyncErrors
}

func (s Stats) String() string {
	return fmt.Sprintf("injected %d faults: %d fetch errors, %d bit flips, %d load errors, %d store errors, %d compile errors, %d compile panics, %d journal write errors, %d journal sync errors",
		s.Total(), s.FetchErrors, s.BitFlips, s.LoadErrors, s.StoreErrors, s.CompileErrors, s.CompilePanics,
		s.JournalWriteErrors, s.JournalSyncErrors)
}

// Injector implements mem.FaultHook and wraps compile callbacks.  Safe
// for concurrent use; fault decisions serialize on one PRNG so a given
// seed yields a reproducible fault stream for a deterministic caller.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg Config

	fetchErrors        atomic.Uint64
	bitFlips           atomic.Uint64
	loadErrors         atomic.Uint64
	storeErrors        atomic.Uint64
	compileErrors      atomic.Uint64
	compilePanics      atomic.Uint64
	journalWriteErrors atomic.Uint64
	journalSyncErrors  atomic.Uint64
}

// New builds an injector with the given rates and seed.
func New(cfg Config) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// roll draws one uniform variate under the PRNG lock; true with
// probability p.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// bit picks a random bit position in a 32-bit word.
func (in *Injector) bit() uint {
	in.mu.Lock()
	b := uint(in.rng.Intn(32))
	in.mu.Unlock()
	return b
}

// FetchFault implements mem.FaultHook: fail the fetch, or flip one bit of
// the fetched word, at the configured rates.
func (in *Injector) FetchFault(addr uint64, w uint32) (uint32, error) {
	if in.roll(in.cfg.FetchErrorRate) {
		in.fetchErrors.Add(1)
		return 0, &Fault{Op: "fetch", Addr: addr}
	}
	if in.roll(in.cfg.FetchFlipRate) {
		in.bitFlips.Add(1)
		w ^= 1 << in.bit()
	}
	return w, nil
}

// LoadFault implements mem.FaultHook.
func (in *Injector) LoadFault(addr uint64, size int) error {
	if in.roll(in.cfg.LoadErrorRate) {
		in.loadErrors.Add(1)
		return &Fault{Op: "load", Addr: addr, Size: size}
	}
	return nil
}

// StoreFault implements mem.FaultHook.
func (in *Injector) StoreFault(addr uint64, size int) error {
	if in.roll(in.cfg.StoreErrorRate) {
		in.storeErrors.Add(1)
		return &Fault{Op: "store", Addr: addr, Size: size}
	}
	return nil
}

// WrapCompile decorates a code cache compile callback with injected
// failures and panics at the configured rates.
func (in *Injector) WrapCompile(compile func() (*core.Func, error)) func() (*core.Func, error) {
	return func() (*core.Func, error) {
		if in.roll(in.cfg.CompilePanicRate) {
			in.compilePanics.Add(1)
			panic("faultinject: injected compile panic")
		}
		if in.roll(in.cfg.CompileErrorRate) {
			in.compileErrors.Add(1)
			return nil, &Fault{Op: "compile"}
		}
		return compile()
	}
}

// JournalWriteFault rolls for an injected journal append failure.
func (in *Injector) JournalWriteFault() error {
	if in.roll(in.cfg.JournalWriteErrorRate) {
		in.journalWriteErrors.Add(1)
		return &Fault{Op: "journal-write"}
	}
	return nil
}

// JournalSyncFault rolls for an injected journal fsync failure.
func (in *Injector) JournalSyncFault() error {
	if in.roll(in.cfg.JournalSyncErrorRate) {
		in.journalSyncErrors.Add(1)
		return &Fault{Op: "journal-sync"}
	}
	return nil
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		FetchErrors:        in.fetchErrors.Load(),
		BitFlips:           in.bitFlips.Load(),
		LoadErrors:         in.loadErrors.Load(),
		StoreErrors:        in.storeErrors.Load(),
		CompileErrors:      in.compileErrors.Load(),
		CompilePanics:      in.compilePanics.Load(),
		JournalWriteErrors: in.journalWriteErrors.Load(),
		JournalSyncErrors:  in.journalSyncErrors.Load(),
	}
}
