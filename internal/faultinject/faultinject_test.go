package faultinject

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// TestDeterminism: equal seeds and event sequences inject identical
// faults (same corrupted words, same errors, same counters).
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, FetchErrorRate: 0.05, FetchFlipRate: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 2000; i++ {
		wa, ea := a.FetchFault(uint64(4*i), 0xdeadbeef)
		wb, eb := b.FetchFault(uint64(4*i), 0xdeadbeef)
		if wa != wb || (ea == nil) != (eb == nil) {
			t.Fatalf("event %d diverged: (%#x,%v) vs (%#x,%v)", i, wa, ea, wb, eb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %v vs %v", a.Stats(), b.Stats())
	}
	if a.Stats().BitFlips == 0 || a.Stats().FetchErrors == 0 {
		t.Errorf("expected some faults at these rates: %v", a.Stats())
	}
}

// TestZeroConfig: the zero rates never fault and never corrupt.
func TestZeroConfig(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if w, err := in.FetchFault(0x1000, 0x1234); w != 0x1234 || err != nil {
			t.Fatalf("fetch corrupted with zero config: %#x, %v", w, err)
		}
		if err := in.LoadFault(0x2000, 4); err != nil {
			t.Fatal(err)
		}
		if err := in.StoreFault(0x2000, 4); err != nil {
			t.Fatal(err)
		}
	}
	if got := in.Stats().Total(); got != 0 {
		t.Errorf("injected %d faults with zero config", got)
	}
}

// TestRates: a 50% load-fault rate lands near half over many trials.
func TestRates(t *testing.T) {
	in := New(Config{Seed: 7, LoadErrorRate: 0.5})
	const n = 10000
	fails := 0
	for i := 0; i < n; i++ {
		if in.LoadFault(0, 4) != nil {
			fails++
		}
	}
	if fails < 4500 || fails > 5500 {
		t.Errorf("50%% rate yielded %d/%d faults", fails, n)
	}
}

// TestFaultTyping: every injected error matches ErrInjected and carries
// the faulted operation.
func TestFaultTyping(t *testing.T) {
	in := New(Config{Seed: 3, StoreErrorRate: 1})
	err := in.StoreFault(0xbeef, 8)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Op != "store" || f.Addr != 0xbeef || f.Size != 8 {
		t.Errorf("fault contents: %+v", f)
	}
}

// TestWrapCompile: injected compile errors are typed; injected panics
// actually panic (the code cache recovers them downstream).
func TestWrapCompile(t *testing.T) {
	in := New(Config{Seed: 5, CompileErrorRate: 1})
	wrapped := in.WrapCompile(func() (*core.Func, error) {
		t.Fatal("inner compile ran despite injected failure")
		return nil, nil
	})
	if _, err := wrapped(); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	in = New(Config{Seed: 5, CompilePanicRate: 1})
	wrapped = in.WrapCompile(func() (*core.Func, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Error("injected panic did not fire")
		}
		if in.Stats().CompilePanics != 1 {
			t.Errorf("CompilePanics = %d", in.Stats().CompilePanics)
		}
	}()
	wrapped()
}

// TestHookThroughMemory: the injector plugs into mem.Memory and faults
// surface from Load/Store/FetchWord with ErrInjected preserved.
func TestHookThroughMemory(t *testing.T) {
	m := mem.New(1<<16, false)
	in := New(Config{Seed: 9, LoadErrorRate: 1, StoreErrorRate: 1, FetchErrorRate: 1})
	m.SetFaultHook(in)
	if _, err := m.Load(0x100, 4); !errors.Is(err, ErrInjected) {
		t.Errorf("Load: %v", err)
	}
	if err := m.Store(0x100, 4, 0); !errors.Is(err, ErrInjected) {
		t.Errorf("Store: %v", err)
	}
	if _, err := m.FetchWord(0x100); !errors.Is(err, ErrInjected) {
		t.Errorf("FetchWord: %v", err)
	}
	m.SetFaultHook(nil)
	if err := m.Store(0x100, 4, 0); err != nil {
		t.Errorf("Store after hook removal: %v", err)
	}
}
