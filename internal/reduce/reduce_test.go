package reduce

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

func newMachine() (*mips.Backend, *core.Machine) {
	b := mips.New()
	m := mem.New(1<<22, false)
	return b, core.NewMachine(b, mips.NewCPU(m), m)
}

func buildMul(bk core.Backend, k int64) (*core.Func, error) {
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		return nil, err
	}
	rd, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	MulI(a, core.TypeI, rd, args[0], k)
	a.Reti(rd)
	return a.End()
}

// TestMulReduction checks every interesting multiplier shape against
// native multiplication semantics.
func TestMulReduction(t *testing.T) {
	bk, m := newMachine()
	ks := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 17, 24, 31, 32, 33,
		63, 64, 100, 255, 256, 1000, -1, -2, -3, -7, -8, -100}
	for _, k := range ks {
		fn, err := buildMul(bk, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for _, x := range []int32{0, 1, -1, 7, -13, 1 << 20, -(1 << 20), 2147483647} {
			got, err := m.Call(fn, core.I(x))
			if err != nil {
				t.Fatalf("k=%d x=%d: %v", k, x, err)
			}
			want := int64(int32(int64(x) * k))
			if got.Int() != want {
				t.Errorf("mul %d * %d = %d, want %d", x, k, got.Int(), want)
			}
		}
	}
}

// TestMulReductionShorter verifies the reducer actually avoids the
// multiply instruction for reducible constants (MIPS mult is 2 words and
// 12 cycles; a shift is 1 word, 1 cycle).
func TestMulReductionShorter(t *testing.T) {
	bk, m := newMachine()
	cycles := func(k int64) uint64 {
		fn, err := buildMul(bk, k)
		if err != nil {
			t.Fatal(err)
		}
		m.CPU().ResetStats()
		if _, err := m.Call(fn, core.I(12345)); err != nil {
			t.Fatal(err)
		}
		return m.CPU().Cycles()
	}
	if by8, by100 := cycles(8), cycles(100); by8 >= by100 {
		t.Errorf("mul by 8 (%d cycles) should beat the mul fallback (%d cycles)", by8, by100)
	}
}

// TestDivModPow2Quick property-tests the signed power-of-two reductions
// against C semantics.
func TestDivModPow2Quick(t *testing.T) {
	bk, m := newMachine()
	type pair struct{ div, mod *core.Func }
	built := map[int]pair{}
	for _, n := range []int{1, 2, 5, 12} {
		a := core.NewAsm(bk)
		args, err := a.Begin("%i", core.Leaf)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := a.GetReg(core.Temp)
		if err != nil {
			t.Fatal(err)
		}
		DivPow2(a, core.TypeI, rd, args[0], n)
		a.Reti(rd)
		df, err := a.End()
		if err != nil {
			t.Fatal(err)
		}
		a2 := core.NewAsm(bk)
		args, err = a2.Begin("%i", core.Leaf)
		if err != nil {
			t.Fatal(err)
		}
		rd, err = a2.GetReg(core.Temp)
		if err != nil {
			t.Fatal(err)
		}
		ModPow2(a2, core.TypeI, rd, args[0], n)
		a2.Reti(rd)
		mf, err := a2.End()
		if err != nil {
			t.Fatal(err)
		}
		built[n] = pair{df, mf}
	}
	f := func(x int32, which uint8) bool {
		ns := []int{1, 2, 5, 12}
		n := ns[which%4]
		k := int32(1) << n
		d, err := m.Call(built[n].div, core.I(x))
		if err != nil {
			return false
		}
		r, err := m.Call(built[n].mod, core.I(x))
		if err != nil {
			return false
		}
		return d.Int() == int64(x/k) && r.Int() == int64(x%k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUnsignedReduction checks the unsigned fast paths.
func TestUnsignedReduction(t *testing.T) {
	bk, m := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%u", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	DivI(a, core.TypeU, rd, args[0], 16)
	r2, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	ModI(a, core.TypeU, r2, args[0], 16)
	a.Muli(rd, rd, r2) // combine so one call checks both: (x/16)*(x%16)
	a.Retu(rd)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.U(1000))
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1000 / 16 * (1000 % 16)); got.Uint() != want {
		t.Fatalf("got %d, want %d", got.Uint(), want)
	}
}
