// Package reduce is the strength reducer the paper describes building on
// top of VCODE (§5.4: "we have built a sophisticated strength reducer for
// multiplication and division by integer constants on top of VCODE") —
// a client-side layer, written entirely against the portable instruction
// set, that rewrites multiplication and division by runtime constants
// into shift/add sequences.  On the modelled R3000, integer multiply
// costs 12 cycles and divide 35, so the payoff is real; BenchmarkStrength*
// at the repository root measures it.
package reduce

import (
	"math/bits"

	"repro/internal/core"
)

// MulI emits rd = rs * k for a runtime constant k, strength-reducing to
// shifts and adds when profitable, falling back to the multiply
// instruction otherwise.  rd must not alias rs.
func MulI(a *core.Asm, t core.Type, rd, rs core.Reg, k int64) {
	if rd == rs {
		a.ALUI(core.OpMul, t, rd, rs, k)
		return
	}
	neg := false
	uk := uint64(k)
	if t.IsSigned() && k < 0 {
		neg = true
		uk = uint64(-k)
	}
	switch {
	case uk == 0:
		a.SetI(t, rd, 0)
		return
	case uk == 1:
		a.Unary(core.OpMov, t, rd, rs)
	case bits.OnesCount64(uk) == 1:
		// Single shift.
		a.ALUI(core.OpLsh, t, rd, rs, int64(bits.TrailingZeros64(uk)))
	case bits.OnesCount64(uk) == 2:
		// Two shifts and an add: rd = (rs<<a) + (rs<<b).
		hi := 63 - bits.LeadingZeros64(uk)
		lo := bits.TrailingZeros64(uk)
		a.ALUI(core.OpLsh, t, rd, rs, int64(hi))
		if lo == 0 {
			a.ALU(core.OpAdd, t, rd, rd, rs)
		} else {
			tmp, err := a.GetReg(core.Temp)
			if err != nil {
				a.ALUI(core.OpMul, t, rd, rs, k)
				return
			}
			a.ALUI(core.OpLsh, t, tmp, rs, int64(lo))
			a.ALU(core.OpAdd, t, rd, rd, tmp)
			a.PutReg(tmp)
		}
	case bits.OnesCount64(uk+1) == 1:
		// 2^n - 1: rd = (rs<<n) - rs.
		a.ALUI(core.OpLsh, t, rd, rs, int64(bits.TrailingZeros64(uk+1)))
		a.ALU(core.OpSub, t, rd, rd, rs)
	default:
		a.ALUI(core.OpMul, t, rd, rs, k)
		return
	}
	if neg {
		a.Unary(core.OpNeg, t, rd, rd)
	}
}

// MulNoTemp reports whether MulI(t, rd, rs, k) will reduce the multiply
// to a shift/add sequence that writes only rd and allocates no temporary
// register.  That is the precondition for rewriting inside a superblock
// trace, where every recorded destination must keep its exact value and
// no registers beyond the recording's own may be touched.
func MulNoTemp(t core.Type, rd, rs core.Reg, k int64) bool {
	if rd == rs {
		return false
	}
	uk := uint64(k)
	if t.IsSigned() && k < 0 {
		uk = uint64(-k)
	}
	switch {
	case uk == 0, uk == 1:
		return true
	case bits.OnesCount64(uk) == 1:
		return true
	case bits.OnesCount64(uk) == 2:
		// The lo != 0 form needs a scratch register for the second shift.
		return bits.TrailingZeros64(uk) == 0
	case bits.OnesCount64(uk+1) == 1:
		return true
	}
	return false
}

// DivPow2 emits rd = rs / 2^n with correct C (round toward zero)
// semantics for signed types: negative dividends are biased by 2^n - 1
// before the arithmetic shift.  rd may alias rs.
func DivPow2(a *core.Asm, t core.Type, rd, rs core.Reg, n int) {
	if n == 0 {
		a.Unary(core.OpMov, t, rd, rs)
		return
	}
	if !t.IsSigned() {
		a.ALUI(core.OpRsh, t, rd, rs, int64(n))
		return
	}
	width := 32
	if t == core.TypeL {
		width = 8 * a.Backend().PtrBytes()
	}
	tmp, err := a.GetReg(core.Temp)
	if err != nil {
		a.ALUI(core.OpDiv, t, rd, rs, 1<<n)
		return
	}
	// tmp = (rs >> (w-1)) logical-shifted to the low n bits: the bias.
	a.ALUI(core.OpRsh, t, tmp, rs, int64(width-1))
	ut := core.TypeU
	if width == 64 {
		ut = core.TypeUL
	}
	a.ALUI(core.OpRsh, ut, tmp, tmp, int64(width-n))
	a.ALU(core.OpAdd, t, tmp, tmp, rs)
	a.ALUI(core.OpRsh, t, rd, tmp, int64(n))
	a.PutReg(tmp)
}

// ModPow2 emits rd = rs % 2^n with C semantics (the result has the sign
// of the dividend).  rd must not alias rs.
func ModPow2(a *core.Asm, t core.Type, rd, rs core.Reg, n int) {
	if n == 0 {
		a.SetI(t, rd, 0)
		return
	}
	if !t.IsSigned() {
		a.ALUI(core.OpAnd, pickWordType(t), rd, rs, int64(1<<n)-1)
		return
	}
	// rd = rs - (rs / 2^n) * 2^n.
	DivPow2(a, t, rd, rs, n)
	a.ALUI(core.OpLsh, pickWordType(t), rd, rd, int64(n))
	a.ALU(core.OpSub, t, rd, rs, rd)
}

// pickWordType maps signed word types onto their shift/mask-legal
// equivalents (and/lsh take i u l ul).
func pickWordType(t core.Type) core.Type {
	switch t {
	case core.TypeP:
		return core.TypeUL
	default:
		return t
	}
}

// DivI emits rd = rs / k, reducing powers of two; other constants fall
// back to the divide instruction.  rd must not alias rs for reduced
// paths.
func DivI(a *core.Asm, t core.Type, rd, rs core.Reg, k int64) {
	if k > 0 && k&(k-1) == 0 {
		DivPow2(a, t, rd, rs, bits.TrailingZeros64(uint64(k)))
		return
	}
	a.ALUI(core.OpDiv, t, rd, rs, k)
}

// ModI emits rd = rs % k, reducing powers of two.
func ModI(a *core.Asm, t core.Type, rd, rs core.Reg, k int64) {
	if k > 0 && k&(k-1) == 0 {
		ModPow2(a, t, rd, rs, bits.TrailingZeros64(uint64(k)))
		return
	}
	a.ALUI(core.OpMod, t, rd, rs, k)
}
