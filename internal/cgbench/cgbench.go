// Package cgbench defines the code-generation-cost workload behind the
// paper's headline numbers (abstract, §5.1, §7): the cost per generated
// instruction of VCODE with allocator-managed virtual registers, of VCODE
// with hard-coded register names (§5.3, about 2x cheaper), and of the
// DCG-style IR-building baseline (about an order of magnitude and more
// costlier).  The same emitters back BenchmarkCodegen* at the repository
// root and the cmd/cgbench table generator.
package cgbench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dcg"
)

// Blocks is the standard workload size: each block specifies ten VCODE
// instructions mixing ALU, immediate, memory and branch forms — the mix a
// compiler front end or packet-filter generator produces.
const Blocks = 100

// EmitVCODE generates the workload through the per-instruction interface.
// hard selects hard-coded register names instead of the allocator.  It
// returns the generated function and the number of VCODE instructions.
func EmitVCODE(a *core.Asm, blocks int, hard bool) (*core.Func, int, error) {
	args, err := a.Begin("%p%i", core.Leaf)
	if err != nil {
		return nil, 0, err
	}
	base, n := args[0], args[1]
	var r1, r2 core.Reg
	if hard {
		r1, r2 = a.T(0), a.T(1)
	} else {
		if r1, err = a.GetReg(core.Temp); err != nil {
			return nil, 0, err
		}
		if r2, err = a.GetReg(core.Temp); err != nil {
			return nil, 0, err
		}
	}
	for i := 0; i < blocks; i++ {
		k := int64(i&15 + 1)
		a.Addii(r1, n, k)
		a.Lshii(r2, r1, 3)
		a.Xori(r1, r1, r2)
		a.Ldii(r2, base, k*4)
		a.Addi(r2, r2, r1)
		a.Stii(r2, base, k*4)
		a.Subii(r1, r1, 7)
		a.Andii(r2, r2, 0xff)
		l := a.NewLabel()
		a.Bltii(n, 1000, l)
		a.Bind(l)
		a.Ori(r1, r1, r2)
	}
	a.Reti(r1)
	insns := a.InsnCount()
	fn, err := a.End()
	return fn, insns, err
}

// EmitDCG generates the equivalent instruction stream through the
// IR-building baseline: every block builds the same expressions as trees,
// which the DCG labeller and reducer then consume.
func EmitDCG(g *dcg.Gen, blocks int) (*core.Func, int, error) {
	args, err := g.Begin("%p%i", core.Leaf)
	if err != nil {
		return nil, 0, err
	}
	base, n := args[0], args[1]
	ty := core.TypeI
	count := 0
	for i := 0; i < blocks; i++ {
		k := int64(i&15 + 1)
		// t1 = ((n + k) ^ ((n + k) << 3)) - 7
		nk := g.Op(core.OpAdd, ty, g.Reg(ty, n), g.Imm(ty, k))
		sh := g.Op(core.OpLsh, ty, g.Op(core.OpAdd, ty, g.Reg(ty, n), g.Imm(ty, k)), g.Imm(ty, 3))
		t1 := g.Op(core.OpSub, ty, g.Op(core.OpXor, ty, nk, sh), g.Imm(ty, 7))
		// mem[base+k*4] = (mem[base+k*4] + t1) & 0xff
		sum := g.Op(core.OpAnd, ty,
			g.Op(core.OpAdd, ty, g.Load(ty, g.Reg(core.TypeP, base), k*4), t1),
			g.Imm(ty, 0xff))
		if err := g.Store(ty, g.Reg(core.TypeP, base), k*4, sum); err != nil {
			return nil, 0, err
		}
		l := g.NewLabel()
		if err := g.Branch(core.OpBlt, ty, g.Reg(ty, n), g.Imm(ty, 1000), l); err != nil {
			return nil, 0, err
		}
		g.Bind(l)
		count += 10
	}
	if err := g.Ret(ty, g.Reg(ty, n)); err != nil {
		return nil, 0, err
	}
	fn, err := g.End()
	return fn, count, err
}

// Result is one measured system in the E1 table.
type Result struct {
	System    string
	NsPerInsn float64
	Ratio     float64 // relative to the first (VCODE dynamic) row
}

// Format renders results in the paper's framing.
func Format(rs []Result) string {
	s := "E1: dynamic code generation cost per generated instruction\n"
	s += fmt.Sprintf("%-28s %12s %8s\n", "system", "ns/insn", "ratio")
	for _, r := range rs {
		s += fmt.Sprintf("%-28s %12.1f %8.2fx\n", r.System, r.NsPerInsn, r.Ratio)
	}
	s += "\npaper: VCODE ~6-10 instructions/instruction; hard-coded register\n"
	s += "names ~2x cheaper (~5 insns); DCG ~35x more expensive than VCODE.\n"
	return s
}
