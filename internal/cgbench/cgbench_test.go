package cgbench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dcg"
	"repro/internal/mem"
	"repro/internal/mips"
)

// Go references for the two benchmark workloads, mirroring EmitVCODE and
// EmitDCG instruction for instruction, so the functions whose generation
// cost E1 measures are also verified to be *correct* code.

func refVCODE(m []uint32, n int32) int32 {
	var r1, r2 int32
	for i := 0; i < Blocks; i++ {
		k := int32(i&15 + 1)
		r1 = n + k
		r2 = r1 << 3
		r1 = r1 ^ r2
		r2 = int32(m[k])
		r2 = r2 + r1
		m[k] = uint32(r2)
		r1 = r1 - 7
		r2 = r2 & 0xff
		r1 = r1 | r2
	}
	return r1
}

func refDCG(m []uint32, n int32) int32 {
	for i := 0; i < Blocks; i++ {
		k := int32(i&15 + 1)
		nk := n + k
		sh := (n + k) << 3
		t1 := (nk ^ sh) - 7
		m[k] = uint32((int32(m[k]) + t1) & 0xff)
	}
	return n
}

func run(t *testing.T, machine *core.Machine, fn *core.Func, n int32) (int32, []uint32) {
	t.Helper()
	buf, err := machine.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]uint32, 64)
	for i := range init {
		init[i] = uint32(i * 3)
		if err := machine.Mem().Store(buf+uint64(4*i), 4, uint64(init[i])); err != nil {
			t.Fatal(err)
		}
	}
	got, err := machine.Call(fn, core.P(buf), core.I(n))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, 64)
	for i := range out {
		v, err := machine.Mem().Load(buf+uint64(4*i), 4)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = uint32(v)
	}
	return int32(got.Int()), out
}

// TestWorkloadsCorrect verifies the three E1 workload emitters generate
// code that matches their Go references, so the cost comparison compares
// working code generation.
func TestWorkloadsCorrect(t *testing.T) {
	bk := mips.New()
	m := mem.New(1<<22, false)
	machine := core.NewMachine(bk, mips.NewCPU(m), m)

	check := func(name string, fn *core.Func, ref func([]uint32, int32) int32) {
		gotRet, gotMem := run(t, machine, fn, 77)
		wantMem := make([]uint32, 64)
		for i := range wantMem {
			wantMem[i] = uint32(i * 3)
		}
		wantRet := ref(wantMem, 77)
		if gotRet != wantRet {
			t.Errorf("%s: returned %d, reference %d", name, gotRet, wantRet)
		}
		for i := range wantMem {
			if gotMem[i] != wantMem[i] {
				t.Errorf("%s: mem[%d] = %d, reference %d", name, i, gotMem[i], wantMem[i])
				break
			}
		}
	}

	a := core.NewAsm(bk)
	vfn, vinsns, err := EmitVCODE(a, Blocks, false)
	if err != nil {
		t.Fatal(err)
	}
	check("vcode", vfn, refVCODE)

	a2 := core.NewAsm(bk)
	hfn, hinsns, err := EmitVCODE(a2, Blocks, true)
	if err != nil {
		t.Fatal(err)
	}
	check("vcode-hard", hfn, refVCODE)

	g := dcg.New(bk)
	dfn, dinsns, err := EmitDCG(g, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	check("dcg", dfn, refDCG)

	// The per-instruction denominators must agree (within the final
	// return instruction).
	if vinsns != hinsns || vinsns-dinsns > 1 || dinsns-vinsns > 1 {
		t.Errorf("instruction counts diverge: vcode=%d hard=%d dcg=%d", vinsns, hinsns, dinsns)
	}
}
