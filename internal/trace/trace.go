// Package trace is the lifecycle flight recorder for the code-generation
// pipeline: a ring-buffered span tracer that records one span tree per
// generated function across compile → regalloc → emit → verify → install
// → call×N → evict, with per-span attributes (backend, bytes emitted,
// verify verdict, cache hit/miss, fuel used).
//
// It follows the same gating discipline as internal/telemetry: one global
// atomic switch, and with it off an instrumented call site pays a single
// atomic load and allocates nothing (pinned by a zero-alloc test).  With
// it on, recording a span is one mutex acquisition and a struct copy into
// a preallocated ring — no allocation on the record path either.
//
// Spans within one function lifecycle share a flow ID (see NextFlow);
// exporters group by flow, so the Chrome trace-event rendering shows one
// lane per generated function and the text timeline one line per
// lifecycle.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one stage of a generated function's lifecycle.  The
// order matches the pipeline: the jit front end compiles bytecode
// (assigning registers on the way), the Asm emits target instructions,
// the Machine verifies, installs, calls and eventually evicts the code.
type Kind uint8

const (
	// KindCompile covers a whole front-end compilation (jit bytecode →
	// VCODE emission); regalloc and emit nest inside it.
	KindCompile Kind = iota
	// KindRegalloc is register and spill-slot assignment.
	KindRegalloc
	// KindEmit covers v_lambda through v_end in the Asm.
	KindEmit
	// KindVerify is the pre-install static verifier.
	KindVerify
	// KindInstall is code placement, relocation and the memory copy.
	KindInstall
	// KindCall is one execution of an installed function.
	KindCall
	// KindEvict is code reclamation (cache eviction or Uninstall).
	KindEvict
	// KindLookup is a code-cache probe; its Verdict attribute records
	// hit, miss, coalesced or negative.
	KindLookup
	// KindBatch covers one whole batch through the parallel compilation
	// pipeline (internal/batch): fan-out compile plus the batched
	// install.  Its N attribute is the item count, Bytes the installed
	// code bytes.
	KindBatch
	// KindRequest covers one whole server request (internal/server):
	// admission, cache lookup/compile, and the sandboxed call.  Its
	// Name carries "tenant/request-id" so a lifecycle lane ties back to
	// the network request that drove it.
	KindRequest
	// KindSuperblock covers one tier-3 promotion: superblock formation
	// from the tier-2 recording plus the optimized re-emission.  Its N
	// attribute is the trace's block count, Bytes the installed optimized
	// body.
	KindSuperblock

	numKinds = int(KindSuperblock) + 1
)

var kindNames = [numKinds]string{
	"compile", "regalloc", "emit", "verify", "install", "call", "evict", "lookup", "batch", "request",
	"superblock",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Attrs carries the phase-specific span attributes.  It is a fixed struct
// rather than a map so that recording a span never allocates; unused
// fields are zero and elided by the exporters.
type Attrs struct {
	// Bytes is the code size the phase handled (emit/install/evict).
	Bytes int64
	// N is a phase-specific magnitude: source instructions for
	// compile/emit, words checked for verify, simulator instructions
	// retired for call.
	N int64
	// Fuel is the step budget a call consumed (0 when unlimited or
	// unknown).
	Fuel uint64
	// Verdict is a short outcome label: "ok"/"reject" for verify,
	// "hit"/"miss"/"coalesced"/"negative" for cache lookups.
	Verdict string
	// Err is the error text when the phase failed (truncated).
	Err string
}

// Span is one recorded lifecycle phase.  Start is nanoseconds since the
// tracer epoch (process-local, monotonic); Dur is the phase wall time.
type Span struct {
	Seq     uint64
	Flow    uint64 // lifecycle ID shared by all spans of one function
	Kind    Kind
	Backend string
	Name    string
	Start   int64 // ns since epoch
	Dur     int64 // ns
	Attrs   Attrs
}

// enabled is the global gate; see the package comment.
var enabled atomic.Bool

// Enabled reports whether span recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns span recording on or off (default off).  The ring is
// allocated lazily on the first recorded span, so a build that never
// traces pays no memory.
func SetEnabled(on bool) { enabled.Store(on) }

// flowSeq allocates lifecycle IDs; 0 means "no flow assigned yet".
var flowSeq atomic.Uint64

// NextFlow returns a fresh lifecycle ID.  All spans recorded for one
// generated function should share the ID so exporters can reassemble the
// compile→…→evict chain.
func NextFlow() uint64 { return flowSeq.Add(1) }

// epoch anchors span timestamps.  time.Since(epoch) uses the monotonic
// clock, so spans order correctly even across wall-clock adjustments.
var epoch = time.Now()

// spanCap bounds the ring: the most recent spanCap spans are retained.
// At ~120 bytes per span the ring tops out near 1 MiB, allocated lazily.
const spanCap = 8192

var (
	ringMu  sync.Mutex
	ring    []Span // nil until the first span; len == spanCap after
	ringSeq uint64
)

// Active is an in-flight span handle returned by Begin.  It is a value —
// holding one costs no allocation — and End on a zero Active is a no-op,
// so call sites can unconditionally End a handle they conditionally
// began.
type Active struct {
	start   time.Time
	backend string
	name    string
	kind    Kind
	live    bool
}

// Begin opens a span if tracing is enabled; otherwise it returns an inert
// handle.  The flow ID is supplied at End because many call sites only
// learn it after the phase completes (e.g. the compile span learns its
// function's flow from the assembled Func).
func Begin(kind Kind, backend, name string) Active {
	if !enabled.Load() {
		return Active{}
	}
	return Active{start: time.Now(), backend: backend, name: name, kind: kind, live: true}
}

// End closes the span and records it.  No-op on an inert handle or if
// tracing was disabled mid-span.
func (a Active) End(flow uint64, at Attrs) {
	if !a.live || !enabled.Load() {
		return
	}
	record(a.kind, a.backend, a.name, flow, a.start, time.Since(a.start), at)
}

// Record appends one span with caller-measured timing.  It is a no-op
// (one atomic load) unless tracing is enabled.  Use this where the caller
// already times the phase for telemetry; use Begin/End otherwise.
func Record(kind Kind, backend, name string, flow uint64, start time.Time, dur time.Duration, at Attrs) {
	if !enabled.Load() {
		return
	}
	record(kind, backend, name, flow, start, dur, at)
}

func record(kind Kind, backend, name string, flow uint64, start time.Time, dur time.Duration, at Attrs) {
	// Build the span outside the lock: recording is on the per-call hot
	// path when tracing is on, so the critical section is just the slot
	// copy and sequence bump.
	sp := Span{
		Flow:    flow,
		Kind:    kind,
		Backend: backend,
		Name:    name,
		Start:   start.Sub(epoch).Nanoseconds(),
		Dur:     dur.Nanoseconds(),
		Attrs:   at,
	}
	ringMu.Lock()
	if ring == nil {
		ring = make([]Span, spanCap)
	}
	sp.Seq = ringSeq
	ring[ringSeq%spanCap] = sp
	ringSeq++
	ringMu.Unlock()
}

// Spans snapshots the ring, oldest first.
func Spans() []Span {
	ringMu.Lock()
	defer ringMu.Unlock()
	n := ringSeq
	if n > spanCap {
		n = spanCap
	}
	out := make([]Span, 0, n)
	for i := ringSeq - n; i < ringSeq; i++ {
		out = append(out, ring[i%spanCap])
	}
	return out
}

// Len reports how many spans are currently retained (bounded by the ring
// capacity regardless of how many were ever recorded).
func Len() int {
	ringMu.Lock()
	defer ringMu.Unlock()
	if ringSeq > spanCap {
		return spanCap
	}
	return int(ringSeq)
}

// Reset discards all recorded spans (the ring memory is kept).
func Reset() {
	ringMu.Lock()
	ringSeq = 0
	ringMu.Unlock()
}
