package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// chromeEvent is one Chrome trace-event record.  Complete events
// (ph "X") carry a start and duration in microseconds; metadata events
// (ph "M") name processes and threads.  Perfetto and chrome://tracing
// both load this shape.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the current span ring as Chrome trace-event
// JSON.  Each lifecycle flow becomes one named track (tid = flow), so a
// generated function's compile → … → evict chain reads as a single lane
// in Perfetto.
func WriteChromeTrace(w io.Writer) error {
	spans := Spans()
	evs := make([]chromeEvent, 0, len(spans)+16)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "vcode codegen"},
	})
	// Name each flow's track after its function; the first span carrying
	// a non-empty name wins (all spans of a flow describe one function).
	flowName := map[uint64]string{}
	for _, s := range spans {
		if s.Flow != 0 && s.Name != "" {
			if _, ok := flowName[s.Flow]; !ok {
				flowName[s.Flow] = s.Name + " [" + s.Backend + "]"
			}
		}
	}
	flows := make([]uint64, 0, len(flowName))
	for f := range flowName {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: f,
			Args: map[string]any{"name": flowName[f]},
		})
	}
	for _, s := range spans {
		args := map[string]any{"func": s.Name, "seq": s.Seq}
		if s.Attrs.Bytes != 0 {
			args["bytes"] = s.Attrs.Bytes
		}
		if s.Attrs.N != 0 {
			args["n"] = s.Attrs.N
		}
		if s.Attrs.Fuel != 0 {
			args["fuel"] = s.Attrs.Fuel
		}
		if s.Attrs.Verdict != "" {
			args["verdict"] = s.Attrs.Verdict
		}
		if s.Attrs.Err != "" {
			args["err"] = s.Attrs.Err
		}
		dur := float64(s.Dur) / 1e3
		if dur <= 0 {
			// Zero-width slices render invisibly; give instantaneous
			// spans a sliver so every lifecycle phase stays clickable.
			dur = 0.001
		}
		evs = append(evs, chromeEvent{
			Name: s.Kind.String(),
			Cat:  s.Backend,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  dur,
			Pid:  1,
			Tid:  s.Flow,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// flowLine aggregates one lifecycle for the text timeline.
type flowLine struct {
	flow     uint64
	backend  string
	name     string
	start    int64
	count    [numKinds]int
	total    [numKinds]int64 // ns
	bytes    int64
	insns    int64
	verdicts []string
}

// WriteTimeline renders the span ring as a compact text timeline: one
// line per lifecycle flow, phases in order with durations and attributes,
// calls aggregated.  When reg is non-nil a header of per-phase histogram
// summaries (the *_ns instruments) precedes the flows.
func WriteTimeline(w io.Writer, reg *telemetry.Registry) {
	spans := Spans()
	fmt.Fprintf(w, "trace: %d span(s) retained (ring capacity %d)\n", len(spans), spanCap)
	if reg != nil {
		var hdr []string
		reg.EachHistogram(func(name string, h *telemetry.Histogram) {
			if !strings.HasSuffix(name, "_ns") {
				return
			}
			s := h.Summary()
			if s.Count == 0 {
				return
			}
			hdr = append(hdr, fmt.Sprintf("  %-28s n=%-8d p50=%-10v p99=%-10v max=%v",
				name, s.Count, fmtNS(int64(s.P50)), fmtNS(int64(s.P99)), fmtNS(int64(s.Max))))
		})
		if len(hdr) > 0 {
			fmt.Fprintln(w, "phase summaries:")
			for _, l := range hdr {
				fmt.Fprintln(w, l)
			}
		}
	}
	byFlow := map[uint64]*flowLine{}
	order := []uint64{}
	for _, s := range spans {
		fl, ok := byFlow[s.Flow]
		if !ok {
			fl = &flowLine{flow: s.Flow, backend: s.Backend, name: s.Name, start: s.Start}
			byFlow[s.Flow] = fl
			order = append(order, s.Flow)
		}
		fl.count[s.Kind]++
		fl.total[s.Kind] += s.Dur
		if s.Kind == KindInstall || s.Kind == KindEmit {
			fl.bytes = max(fl.bytes, s.Attrs.Bytes)
		}
		if s.Kind == KindCall {
			fl.insns += s.Attrs.N
		}
		if s.Attrs.Verdict != "" {
			fl.verdicts = append(fl.verdicts, s.Attrs.Verdict)
		}
	}
	sort.Slice(order, func(i, j int) bool { return byFlow[order[i]].start < byFlow[order[j]].start })
	for _, f := range order {
		fl := byFlow[f]
		var b strings.Builder
		if fl.flow == 0 {
			fmt.Fprintf(&b, "(no flow)            ")
		} else {
			fmt.Fprintf(&b, "flow %-4d %-10s ", fl.flow, fl.name+" ["+fl.backend+"]")
		}
		for k := 0; k < numKinds; k++ {
			if fl.count[k] == 0 {
				continue
			}
			if fl.count[k] == 1 {
				fmt.Fprintf(&b, " %s=%v", Kind(k), fmtNS(fl.total[k]))
			} else {
				fmt.Fprintf(&b, " %s×%d=%v", Kind(k), fl.count[k], fmtNS(fl.total[k]))
			}
		}
		if fl.bytes > 0 {
			fmt.Fprintf(&b, " bytes=%d", fl.bytes)
		}
		if fl.insns > 0 {
			fmt.Fprintf(&b, " sim_insns=%d", fl.insns)
		}
		if len(fl.verdicts) > 0 {
			fmt.Fprintf(&b, " verdicts=%s", strings.Join(fl.verdicts, ","))
		}
		fmt.Fprintln(w, b.String())
	}
}

// fmtNS renders a nanosecond count with a human unit.
func fmtNS(ns int64) string {
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// RegisterHTTP mounts the trace exporters on mux:
//
//	/trace      Chrome trace-event JSON (load in Perfetto / chrome://tracing)
//	/trace.txt  compact text timeline (with reg's phase summaries if non-nil)
//
// Pair it with telemetry.NewMux to serve metrics and traces together.
func RegisterHTTP(mux *http.ServeMux, reg *telemetry.Registry) {
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w)
	})
	mux.HandleFunc("/trace.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteTimeline(w, reg)
	})
}
