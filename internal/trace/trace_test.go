package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// withTracing flips the global gate for one test and restores a clean
// ring afterwards.
func withTracing(t *testing.T, on bool) {
	t.Helper()
	Reset()
	SetEnabled(on)
	t.Cleanup(func() {
		SetEnabled(false)
		Reset()
	})
}

func TestSpanRingOrderAndReset(t *testing.T) {
	withTracing(t, true)
	flow := NextFlow()
	for i := 0; i < 5; i++ {
		Record(KindCall, "mips", "f", flow, time.Now(), time.Microsecond, Attrs{N: int64(i)})
	}
	spans := Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	for i, s := range spans {
		if s.Attrs.N != int64(i) {
			t.Fatalf("span %d out of order: N=%d", i, s.Attrs.N)
		}
		if s.Flow != flow || s.Kind != KindCall || s.Backend != "mips" {
			t.Fatalf("span %d corrupted: %+v", i, s)
		}
	}
	Reset()
	if Len() != 0 || len(Spans()) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestRingBounded(t *testing.T) {
	withTracing(t, true)
	for i := 0; i < spanCap+100; i++ {
		Record(KindCall, "mips", "f", 1, time.Now(), 0, Attrs{N: int64(i)})
	}
	if Len() != spanCap {
		t.Fatalf("Len = %d, want ring capacity %d", Len(), spanCap)
	}
	spans := Spans()
	if len(spans) != spanCap {
		t.Fatalf("got %d spans, want %d", len(spans), spanCap)
	}
	// Oldest retained span is the 100th recorded; newest is the last.
	if spans[0].Attrs.N != 100 || spans[len(spans)-1].Attrs.N != spanCap+99 {
		t.Fatalf("ring window wrong: first N=%d last N=%d", spans[0].Attrs.N, spans[len(spans)-1].Attrs.N)
	}
}

// TestDisabledSpanEmitZeroAlloc pins the acceptance criterion that the
// disabled span-emit path allocates nothing: Begin/End and Record must be
// a single atomic load when tracing is off.
func TestDisabledSpanEmitZeroAlloc(t *testing.T) {
	withTracing(t, false)
	var start time.Time
	if n := testing.AllocsPerRun(1000, func() {
		a := Begin(KindEmit, "mips", "f")
		a.End(7, Attrs{Bytes: 64, N: 16})
		Record(KindCall, "mips", "f", 7, start, time.Microsecond, Attrs{Fuel: 100})
	}); n != 0 {
		t.Fatalf("disabled span emit allocates %v per op, want 0", n)
	}
}

// TestEnabledRecordZeroAlloc pins the record path itself: once the ring
// exists, recording a span copies into preallocated storage.
func TestEnabledRecordZeroAlloc(t *testing.T) {
	withTracing(t, true)
	Record(KindCall, "mips", "warm", 1, time.Now(), 0, Attrs{}) // allocate the ring
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		Record(KindCall, "mips", "f", 1, start, time.Microsecond, Attrs{N: 3})
	}); n != 0 {
		t.Fatalf("enabled Record allocates %v per op, want 0", n)
	}
}

// TestSpanRingConcurrent hammers the ring from many writers while readers
// snapshot it, asserting bounded memory and no torn records (run under
// -race in CI).
func TestSpanRingConcurrent(t *testing.T) {
	withTracing(t, true)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: snapshots must always be internally consistent.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spans := Spans()
				if len(spans) > spanCap {
					t.Error("snapshot exceeds ring capacity")
					return
				}
				for i := 1; i < len(spans); i++ {
					if spans[i].Seq != spans[i-1].Seq+1 {
						t.Errorf("torn snapshot: seq %d follows %d", spans[i].Seq, spans[i-1].Seq)
						return
					}
				}
			}
		}()
	}
	var wrs sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wrs.Add(2)
		go func(wr int) {
			defer wrs.Done()
			name := fmt.Sprintf("w%d", wr)
			for i := 0; i < perWriter; i++ {
				a := Begin(KindCall, "mips", name)
				a.End(uint64(wr+1), Attrs{N: int64(i)})
			}
		}(wr)
		go func() {
			defer wrs.Done()
			for i := 0; i < perWriter; i++ {
				Record(KindLookup, "", "k", 0, time.Now(), 0, Attrs{Verdict: "hit"})
			}
		}()
	}
	wrs.Wait()
	close(stop)
	wg.Wait()
	if got := Len(); got > spanCap {
		t.Fatalf("ring grew past capacity: %d > %d", got, spanCap)
	}
	// Every retained span must be one of the two shapes written — a torn
	// write would mix fields across them.
	for _, s := range Spans() {
		switch s.Kind {
		case KindCall:
			if !strings.HasPrefix(s.Name, "w") || s.Backend != "mips" || s.Flow == 0 {
				t.Fatalf("torn call span: %+v", s)
			}
		case KindLookup:
			if s.Name != "k" || s.Attrs.Verdict != "hit" || s.Flow != 0 {
				t.Fatalf("torn lookup span: %+v", s)
			}
		default:
			t.Fatalf("unexpected span kind %v", s.Kind)
		}
	}
}

// recordLifecycle writes one complete compile→…→evict chain for a flow.
func recordLifecycle(flow uint64, name string) {
	base := time.Now()
	at := func(off time.Duration) time.Time { return base.Add(off) }
	Record(KindCompile, "mips", name, flow, at(0), 10*time.Microsecond, Attrs{N: 8})
	Record(KindRegalloc, "mips", name, flow, at(time.Microsecond), time.Microsecond, Attrs{N: 3})
	Record(KindEmit, "mips", name, flow, at(2*time.Microsecond), 5*time.Microsecond, Attrs{Bytes: 64, N: 8})
	Record(KindVerify, "mips", name, flow, at(11*time.Microsecond), 2*time.Microsecond, Attrs{Verdict: "ok"})
	Record(KindInstall, "mips", name, flow, at(13*time.Microsecond), time.Microsecond, Attrs{Bytes: 64})
	Record(KindCall, "mips", name, flow, at(15*time.Microsecond), 20*time.Microsecond, Attrs{N: 500, Fuel: 512})
	Record(KindEvict, "mips", name, flow, at(40*time.Microsecond), time.Microsecond, Attrs{Bytes: 64})
}

func TestWriteChromeTraceParsesWithLifecycleChain(t *testing.T) {
	withTracing(t, true)
	f1, f2 := NextFlow(), NextFlow()
	recordLifecycle(f1, "alpha_fn")
	recordLifecycle(f2, "beta_fn")
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("Chrome trace JSON does not parse: %v", err)
	}
	chain := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.Tid == f1 {
			chain[ev.Name] = true
			if ev.Dur <= 0 {
				t.Fatalf("span %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		}
	}
	for _, phase := range []string{"compile", "regalloc", "emit", "verify", "install", "call", "evict"} {
		if !chain[phase] {
			t.Fatalf("flow %d missing lifecycle phase %q (got %v)", f1, phase, chain)
		}
	}
	// Track metadata must name the flow after the function.
	named := false
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid == f1 {
			if n, _ := ev.Args["name"].(string); strings.Contains(n, "alpha_fn") {
				named = true
			}
		}
	}
	if !named {
		t.Fatal("flow track not named after its function")
	}
}

func TestWriteTimeline(t *testing.T) {
	withTracing(t, true)
	reg := telemetry.NewRegistry()
	h := reg.Histogram("codegen.mips.emit_ns", nil)
	for _, v := range []uint64{500, 1500, 3000} {
		h.Observe(v)
	}
	flow := NextFlow()
	recordLifecycle(flow, "gamma_fn")
	var buf bytes.Buffer
	WriteTimeline(&buf, reg)
	out := buf.String()
	for _, want := range []string{"codegen.mips.emit_ns", "gamma_fn", "compile=", "evict=", "verdicts=ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}
