package tinyc

import "fmt"

// Interp is a reference AST interpreter for tiny-C.  It exists for
// differential testing: the compiled code running on a simulated target
// must agree with direct interpretation — and it is the layer of
// interpretation that dynamic code generation strips (§1).
type Interp struct {
	prog  *Program
	sigs  map[string]*FuncDecl
	steps int
}

// NewInterp builds an interpreter over a parsed program.
func NewInterp(prog *Program) *Interp {
	in := &Interp{prog: prog, sigs: map[string]*FuncDecl{}}
	for _, f := range prog.Funcs {
		in.sigs[f.Name] = f
	}
	return in
}

// CVal is an interpreter value.
type CVal struct {
	T CType
	I int32
	D float64
}

// IntV wraps an int value.
func IntV(v int32) CVal { return CVal{T: CInt, I: v} }

// DblV wraps a double value.
func DblV(v float64) CVal { return CVal{T: CDouble, D: v} }

func (v CVal) toI() int32 {
	if v.T == CDouble {
		return int32(v.D)
	}
	return v.I
}

func (v CVal) toD() float64 {
	if v.T == CDouble {
		return v.D
	}
	return float64(v.I)
}

func (v CVal) truthy() bool {
	if v.T == CDouble {
		return v.D != 0
	}
	return v.I != 0
}

type interpFrame struct {
	vars []map[string]*CVal
}

func (f *interpFrame) lookup(name string) (*CVal, bool) {
	for i := len(f.vars) - 1; i >= 0; i-- {
		if v, ok := f.vars[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

type ctlFlow uint8

const (
	flowNormal ctlFlow = iota
	flowReturn
	flowBreak
	flowContinue
)

// Call interprets a function.
func (in *Interp) Call(name string, args ...CVal) (CVal, error) {
	fd, ok := in.sigs[name]
	if !ok {
		return CVal{}, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(fd.Params) {
		return CVal{}, fmt.Errorf("interp: %s takes %d args, got %d", name, len(fd.Params), len(args))
	}
	in.steps++
	if in.steps > 1<<22 {
		return CVal{}, fmt.Errorf("interp: step budget exceeded")
	}
	fr := &interpFrame{vars: []map[string]*CVal{{}}}
	for i, p := range fd.Params {
		v := convertVal(args[i], p.Type)
		fr.vars[0][p.Name] = &v
	}
	rv, flow, err := in.stmt(fr, fd.Body)
	if err != nil {
		return CVal{}, err
	}
	if flow != flowReturn {
		rv = convertVal(IntV(0), fd.Ret)
	}
	return convertVal(rv, fd.Ret), nil
}

func convertVal(v CVal, to CType) CVal {
	if v.T == to {
		return v
	}
	if to == CDouble {
		return DblV(v.toD())
	}
	return IntV(v.toI())
}

func (in *Interp) stmt(fr *interpFrame, s Stmt) (CVal, ctlFlow, error) {
	switch st := s.(type) {
	case *Block:
		fr.vars = append(fr.vars, map[string]*CVal{})
		defer func() { fr.vars = fr.vars[:len(fr.vars)-1] }()
		for _, x := range st.Stmts {
			v, flow, err := in.stmt(fr, x)
			if err != nil || flow != flowNormal {
				return v, flow, err
			}
		}
		return CVal{}, flowNormal, nil
	case *DeclStmt:
		v := convertVal(IntV(0), st.Type)
		if st.Init != nil {
			iv, err := in.expr(fr, st.Init)
			if err != nil {
				return CVal{}, flowNormal, err
			}
			v = convertVal(iv, st.Type)
		}
		fr.vars[len(fr.vars)-1][st.Name] = &v
		return CVal{}, flowNormal, nil
	case *AssignStmt:
		slot, ok := fr.lookup(st.Name)
		if !ok {
			return CVal{}, flowNormal, fmt.Errorf("interp: undefined %q", st.Name)
		}
		v, err := in.expr(fr, st.Val)
		if err != nil {
			return CVal{}, flowNormal, err
		}
		*slot = convertVal(v, slot.T)
		return CVal{}, flowNormal, nil
	case *ReturnStmt:
		v, err := in.expr(fr, st.Val)
		return v, flowReturn, err
	case *IfStmt:
		c, err := in.expr(fr, st.Cond)
		if err != nil {
			return CVal{}, flowNormal, err
		}
		if c.truthy() {
			return in.stmt(fr, st.Then)
		}
		if st.Else != nil {
			return in.stmt(fr, st.Else)
		}
		return CVal{}, flowNormal, nil
	case *WhileStmt:
		for {
			c, err := in.expr(fr, st.Cond)
			if err != nil {
				return CVal{}, flowNormal, err
			}
			if !c.truthy() {
				return CVal{}, flowNormal, nil
			}
			in.steps++
			if in.steps > 1<<22 {
				return CVal{}, flowNormal, fmt.Errorf("interp: step budget exceeded")
			}
			v, flow, err := in.stmt(fr, st.Body)
			if err != nil {
				return CVal{}, flowNormal, err
			}
			switch flow {
			case flowReturn:
				return v, flowReturn, nil
			case flowBreak:
				return CVal{}, flowNormal, nil
			}
			// Normal completion and continue both run the post clause.
			if st.Post != nil {
				if _, _, err := in.stmt(fr, st.Post); err != nil {
					return CVal{}, flowNormal, err
				}
			}
		}
	case *BreakStmt:
		return CVal{}, flowBreak, nil
	case *ContinueStmt:
		return CVal{}, flowContinue, nil
	case *ExprStmt:
		_, err := in.expr(fr, st.X)
		return CVal{}, flowNormal, err
	}
	return CVal{}, flowNormal, fmt.Errorf("interp: unknown stmt %T", s)
}

func (in *Interp) expr(fr *interpFrame, e Expr) (CVal, error) {
	switch ex := e.(type) {
	case *IntLit:
		return IntV(int32(ex.V)), nil
	case *FloatLit:
		return DblV(ex.V), nil
	case *VarRef:
		v, ok := fr.lookup(ex.Name)
		if !ok {
			return CVal{}, fmt.Errorf("interp: undefined %q", ex.Name)
		}
		return *v, nil
	case *UnExpr:
		v, err := in.expr(fr, ex.X)
		if err != nil {
			return CVal{}, err
		}
		switch ex.Op {
		case "-":
			if v.T == CDouble {
				return DblV(-v.D), nil
			}
			return IntV(-v.I), nil
		case "!":
			if v.truthy() {
				return IntV(0), nil
			}
			return IntV(1), nil
		}
		return CVal{}, fmt.Errorf("interp: unary %q", ex.Op)
	case *CastExpr:
		v, err := in.expr(fr, ex.X)
		if err != nil {
			return CVal{}, err
		}
		return convertVal(v, ex.To), nil
	case *CallExpr:
		args := make([]CVal, len(ex.Args))
		for i, a := range ex.Args {
			v, err := in.expr(fr, a)
			if err != nil {
				return CVal{}, err
			}
			args[i] = v
		}
		return in.Call(ex.Name, args...)
	case *BinExpr:
		if ex.Op == "&&" || ex.Op == "||" {
			l, err := in.expr(fr, ex.L)
			if err != nil {
				return CVal{}, err
			}
			if ex.Op == "&&" && !l.truthy() {
				return IntV(0), nil
			}
			if ex.Op == "||" && l.truthy() {
				return IntV(1), nil
			}
			r, err := in.expr(fr, ex.R)
			if err != nil {
				return CVal{}, err
			}
			if r.truthy() {
				return IntV(1), nil
			}
			return IntV(0), nil
		}
		l, err := in.expr(fr, ex.L)
		if err != nil {
			return CVal{}, err
		}
		r, err := in.expr(fr, ex.R)
		if err != nil {
			return CVal{}, err
		}
		if l.T == CDouble || r.T == CDouble {
			a, b := l.toD(), r.toD()
			switch ex.Op {
			case "+":
				return DblV(a + b), nil
			case "-":
				return DblV(a - b), nil
			case "*":
				return DblV(a * b), nil
			case "/":
				return DblV(a / b), nil
			case "<":
				return boolV(a < b), nil
			case "<=":
				return boolV(a <= b), nil
			case ">":
				return boolV(a > b), nil
			case ">=":
				return boolV(a >= b), nil
			case "==":
				return boolV(a == b), nil
			case "!=":
				return boolV(a != b), nil
			}
			return CVal{}, fmt.Errorf("interp: double op %q", ex.Op)
		}
		a, b := l.I, r.I
		switch ex.Op {
		case "+":
			return IntV(a + b), nil
		case "-":
			return IntV(a - b), nil
		case "*":
			return IntV(a * b), nil
		case "/":
			if b == 0 {
				return IntV(0), nil // matches the machine helpers
			}
			if a == -2147483648 && b == -1 {
				return IntV(a), nil
			}
			return IntV(a / b), nil
		case "%":
			if b == 0 {
				return IntV(0), nil
			}
			if a == -2147483648 && b == -1 {
				return IntV(0), nil
			}
			return IntV(a % b), nil
		case "<":
			return boolV(a < b), nil
		case "<=":
			return boolV(a <= b), nil
		case ">":
			return boolV(a > b), nil
		case ">=":
			return boolV(a >= b), nil
		case "==":
			return boolV(a == b), nil
		case "!=":
			return boolV(a != b), nil
		}
		return CVal{}, fmt.Errorf("interp: int op %q", ex.Op)
	}
	return CVal{}, fmt.Errorf("interp: unknown expr %T", e)
}

func boolV(b bool) CVal {
	if b {
		return IntV(1)
	}
	return IntV(0)
}
