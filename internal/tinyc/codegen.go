package tinyc

import (
	"fmt"

	"repro/internal/core"
)

// Compiler compiles tiny-C programs through VCODE onto one simulated
// machine.  Functions call each other through a function-pointer table in
// data memory, so mutual recursion needs no compile ordering; the table
// is patched once every function is installed.
type Compiler struct {
	machine *core.Machine
	backend core.Backend

	sigs  map[string]*FuncDecl
	funcs map[string]*core.Func
	slots map[string]int
	table uint64
}

// NewCompiler returns a compiler bound to a machine.
func NewCompiler(m *core.Machine) *Compiler {
	return &Compiler{
		machine: m,
		backend: m.Backend(),
		sigs:    make(map[string]*FuncDecl),
		funcs:   make(map[string]*core.Func),
		slots:   make(map[string]int),
	}
}

// Funcs returns the compiled functions by name.
func (c *Compiler) Funcs() map[string]*core.Func { return c.funcs }

// Compile compiles a whole program and installs it.
func (c *Compiler) Compile(prog *Program) error {
	for _, fd := range prog.Funcs {
		if _, dup := c.sigs[fd.Name]; dup {
			return fmt.Errorf("line %d: function %q redefined", fd.Line, fd.Name)
		}
		c.sigs[fd.Name] = fd
		c.slots[fd.Name] = len(c.slots)
	}
	ptr := c.backend.PtrBytes()
	table, err := c.machine.Alloc(ptr * len(c.slots))
	if err != nil {
		return err
	}
	c.table = table

	for _, fd := range prog.Funcs {
		fn, err := c.compileFunc(fd)
		if err != nil {
			return fmt.Errorf("function %s: %w", fd.Name, err)
		}
		c.funcs[fd.Name] = fn
	}
	for _, fn := range c.funcs {
		if err := c.machine.Install(fn); err != nil {
			return err
		}
	}
	for name, slot := range c.slots {
		addr := c.table + uint64(slot*ptr)
		if err := c.machine.Mem().Store(addr, ptr, c.funcs[name].EntryAddr()); err != nil {
			return err
		}
	}
	return nil
}

// Run calls a compiled function.
func (c *Compiler) Run(name string, args ...core.Value) (core.Value, error) {
	fn, ok := c.funcs[name]
	if !ok {
		return core.Value{}, fmt.Errorf("tinyc: no function %q", name)
	}
	return c.machine.Call(fn, args...)
}

// CompileAndRun is the one-shot convenience used by examples.
func (c *Compiler) CompileAndRun(src, entry string, args ...core.Value) (core.Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return core.Value{}, err
	}
	if err := c.Compile(prog); err != nil {
		return core.Value{}, err
	}
	return c.Run(entry, args...)
}

// --- per-function generation ---

type varInfo struct {
	t     CType
	reg   core.Reg
	local int64
	inReg bool
}

type fnGen struct {
	c      *Compiler
	a      *core.Asm
	fd     *FuncDecl
	scopes []map[string]varInfo
	breaks []core.Label
	conts  []core.Label
}

func (c *Compiler) compileFunc(fd *FuncDecl) (*core.Func, error) {
	a := core.NewAsm(c.backend)
	a.SetName(fd.Name)
	sig := ""
	for _, p := range fd.Params {
		sig += "%" + p.Type.VType().Letter()
	}
	// Functions that make no calls are declared leaf, buying the leaf
	// optimizations (no RA save, caller-saved registers satisfy
	// persistent requests).
	leaf := !hasCallStmt(fd.Body)
	args, err := a.Begin(sig, leaf)
	if err != nil {
		return nil, err
	}
	g := &fnGen{c: c, a: a, fd: fd}
	g.push()
	// Move parameters out of the argument registers into persistent
	// homes (argument registers die across calls).
	for i, p := range fd.Params {
		v, err := g.declare(p.Name, p.Type, fd.Line)
		if err != nil {
			return nil, err
		}
		g.storeVar(v, args[i])
	}
	if err := g.block(fd.Body); err != nil {
		return nil, err
	}
	// Fall off the end: return zero.
	z, err := g.temp(fd.Ret, false)
	if err != nil {
		return nil, err
	}
	if fd.Ret == CDouble {
		a.Setd(z, 0)
	} else {
		a.Seti(z, 0)
	}
	a.Ret(fd.Ret.VType(), z)
	return a.End()
}

func (g *fnGen) push() { g.scopes = append(g.scopes, map[string]varInfo{}) }
func (g *fnGen) pop()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *fnGen) lookup(name string) (varInfo, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if v, ok := g.scopes[i][name]; ok {
			return v, true
		}
	}
	return varInfo{}, false
}

// declare allocates a home for a variable: a persistent register when one
// is available, otherwise a stack local — exactly the division of labor
// the paper describes for VCODE's limited-scope allocator.
func (g *fnGen) declare(name string, t CType, line int) (varInfo, error) {
	scope := g.scopes[len(g.scopes)-1]
	if _, dup := scope[name]; dup {
		return varInfo{}, fmt.Errorf("line %d: %q redeclared", line, name)
	}
	v := varInfo{t: t}
	var reg core.Reg
	var err error
	if t == CDouble {
		reg, err = g.a.GetFReg(core.Var)
	} else {
		reg, err = g.a.GetReg(core.Var)
	}
	if err == nil {
		v.reg, v.inReg = reg, true
	} else if err == core.ErrRegExhausted {
		v.local = g.a.Local(t.VType())
	} else {
		return varInfo{}, err
	}
	scope[name] = v
	return v, nil
}

func (g *fnGen) storeVar(v varInfo, src core.Reg) {
	if v.inReg {
		g.a.Unary(core.OpMov, v.t.VType(), v.reg, src)
		return
	}
	g.a.StLocal(v.t.VType(), src, v.local)
}

func (g *fnGen) loadVar(v varInfo, dst core.Reg) {
	if v.inReg {
		g.a.Unary(core.OpMov, v.t.VType(), dst, v.reg)
		return
	}
	g.a.LdLocal(v.t.VType(), dst, v.local)
}

// temp allocates an expression register.  wantVar requests a register
// that survives calls (used when a sibling subexpression contains one).
func (g *fnGen) temp(t CType, wantVar bool) (core.Reg, error) {
	class := core.Temp
	if wantVar {
		class = core.Var
	}
	if t == CDouble {
		return g.a.GetFReg(class)
	}
	return g.a.GetReg(class)
}

func (g *fnGen) free(r core.Reg) { g.a.PutReg(r) }

// --- statements ---

func (g *fnGen) block(b *Block) error {
	g.push()
	defer g.pop()
	for _, s := range b.Stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *fnGen) stmt(s Stmt) error {
	a := g.a
	switch st := s.(type) {
	case *Block:
		return g.block(st)
	case *DeclStmt:
		v, err := g.declare(st.Name, st.Type, st.Line)
		if err != nil {
			return err
		}
		if st.Init != nil {
			r, t, err := g.expr(st.Init, false)
			if err != nil {
				return err
			}
			r, err = g.convert(r, t, st.Type)
			if err != nil {
				return err
			}
			g.storeVar(v, r)
			g.free(r)
		}
		return nil
	case *AssignStmt:
		v, ok := g.lookup(st.Name)
		if !ok {
			return fmt.Errorf("line %d: undefined variable %q", st.Line, st.Name)
		}
		r, t, err := g.expr(st.Val, false)
		if err != nil {
			return err
		}
		r, err = g.convert(r, t, v.t)
		if err != nil {
			return err
		}
		g.storeVar(v, r)
		g.free(r)
		return nil
	case *ReturnStmt:
		r, t, err := g.expr(st.Val, false)
		if err != nil {
			return err
		}
		r, err = g.convert(r, t, g.fd.Ret)
		if err != nil {
			return err
		}
		a.Ret(g.fd.Ret.VType(), r)
		g.free(r)
		return nil
	case *IfStmt:
		elseL := a.NewLabel()
		if err := g.condBranchFalse(st.Cond, elseL); err != nil {
			return err
		}
		if err := g.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			doneL := a.NewLabel()
			a.Jmp(doneL)
			a.Bind(elseL)
			if err := g.stmt(st.Else); err != nil {
				return err
			}
			a.Bind(doneL)
			return nil
		}
		a.Bind(elseL)
		return nil
	case *WhileStmt:
		top, done := a.NewLabel(), a.NewLabel()
		cont := top
		if st.Post != nil {
			cont = a.NewLabel()
		}
		a.Bind(top)
		if err := g.condBranchFalse(st.Cond, done); err != nil {
			return err
		}
		g.breaks = append(g.breaks, done)
		g.conts = append(g.conts, cont)
		err := g.stmt(st.Body)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		if err != nil {
			return err
		}
		if st.Post != nil {
			a.Bind(cont)
			if err := g.stmt(st.Post); err != nil {
				return err
			}
		}
		a.Jmp(top)
		a.Bind(done)
		return nil
	case *BreakStmt:
		if len(g.breaks) == 0 {
			return fmt.Errorf("line %d: break outside loop", st.Line)
		}
		a.Jmp(g.breaks[len(g.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(g.conts) == 0 {
			return fmt.Errorf("line %d: continue outside loop", st.Line)
		}
		a.Jmp(g.conts[len(g.conts)-1])
		return nil
	case *ExprStmt:
		r, _, err := g.expr(st.X, false)
		if err != nil {
			return err
		}
		g.free(r)
		return nil
	}
	return fmt.Errorf("tinyc: unknown statement %T", s)
}

// condBranchFalse evaluates cond and branches to l when it is false.
func (g *fnGen) condBranchFalse(cond Expr, l core.Label) error {
	r, t, err := g.expr(cond, false)
	if err != nil {
		return err
	}
	if t == CDouble {
		fz := g.c.backend.ScratchFPR()
		g.a.Setd(fz, 0)
		g.a.Br(core.OpBeq, core.TypeD, r, fz, l)
	} else {
		g.a.BrI(core.OpBeq, core.TypeI, r, 0, l)
	}
	g.free(r)
	return g.a.Err()
}

// --- expressions ---

var intOps = map[string]core.Op{
	"+": core.OpAdd, "-": core.OpSub, "*": core.OpMul, "/": core.OpDiv, "%": core.OpMod,
}

var cmpOps = map[string]core.Op{
	"<": core.OpBlt, "<=": core.OpBle, ">": core.OpBgt, ">=": core.OpBge,
	"==": core.OpBeq, "!=": core.OpBne,
}

// expr compiles e into a freshly allocated register owned by the caller.
// wantVar forces a call-surviving register class for the result.
func (g *fnGen) expr(e Expr, wantVar bool) (core.Reg, CType, error) {
	a := g.a
	switch ex := e.(type) {
	case *IntLit:
		r, err := g.temp(CInt, wantVar)
		if err != nil {
			return core.NoReg, 0, err
		}
		a.Seti(r, ex.V)
		return r, CInt, a.Err()
	case *FloatLit:
		r, err := g.temp(CDouble, wantVar)
		if err != nil {
			return core.NoReg, 0, err
		}
		a.Setd(r, ex.V)
		return r, CDouble, a.Err()
	case *VarRef:
		v, ok := g.lookup(ex.Name)
		if !ok {
			return core.NoReg, 0, fmt.Errorf("line %d: undefined variable %q", ex.Line, ex.Name)
		}
		r, err := g.temp(v.t, wantVar)
		if err != nil {
			return core.NoReg, 0, err
		}
		g.loadVar(v, r)
		return r, v.t, a.Err()
	case *UnExpr:
		r, t, err := g.expr(ex.X, wantVar)
		if err != nil {
			return core.NoReg, 0, err
		}
		switch ex.Op {
		case "-":
			vt := core.TypeI
			if t == CDouble {
				vt = core.TypeD
			}
			a.Unary(core.OpNeg, vt, r, r)
			return r, t, a.Err()
		case "!":
			if t == CDouble {
				// (d == 0.0) as an int.
				ri, err := g.temp(CInt, wantVar)
				if err != nil {
					return core.NoReg, 0, err
				}
				fz := g.c.backend.ScratchFPR()
				a.Setd(fz, 0)
				yes := a.NewLabel()
				a.Seti(ri, 1)
				a.Br(core.OpBeq, core.TypeD, r, fz, yes)
				a.Seti(ri, 0)
				a.Bind(yes)
				g.free(r)
				return ri, CInt, a.Err()
			}
			a.Unary(core.OpNot, core.TypeI, r, r)
			return r, CInt, a.Err()
		}
		return core.NoReg, 0, fmt.Errorf("tinyc: unknown unary %q", ex.Op)
	case *CastExpr:
		r, t, err := g.expr(ex.X, wantVar)
		if err != nil {
			return core.NoReg, 0, err
		}
		r, err = g.convert(r, t, ex.To)
		return r, ex.To, err
	case *BinExpr:
		return g.binExpr(ex, wantVar)
	case *CallExpr:
		return g.call(ex, wantVar)
	}
	return core.NoReg, 0, fmt.Errorf("tinyc: unknown expression %T", e)
}

func (g *fnGen) binExpr(ex *BinExpr, wantVar bool) (core.Reg, CType, error) {
	a := g.a
	if ex.Op == "&&" || ex.Op == "||" {
		return g.shortCircuit(ex, wantVar)
	}
	// The left value must survive evaluation of the right; if the right
	// contains a call, hold it in a persistent register.
	l, lt, err := g.expr(ex.L, wantVar || hasCall(ex.R))
	if err != nil {
		return core.NoReg, 0, err
	}
	r, rt, err := g.expr(ex.R, false)
	if err != nil {
		return core.NoReg, 0, err
	}
	// Usual arithmetic conversions.
	ct := CInt
	if lt == CDouble || rt == CDouble {
		ct = CDouble
		if l, err = g.convert(l, lt, CDouble); err != nil {
			return core.NoReg, 0, err
		}
		if r, err = g.convert(r, rt, CDouble); err != nil {
			return core.NoReg, 0, err
		}
	}
	vt := ct.VType()

	if op, ok := intOps[ex.Op]; ok {
		if ct == CDouble && (ex.Op == "%") {
			return core.NoReg, 0, fmt.Errorf("line %d: %% needs integer operands", ex.Line)
		}
		a.ALU(op, vt, l, l, r)
		g.free(r)
		return l, ct, a.Err()
	}
	if op, ok := cmpOps[ex.Op]; ok {
		res, err := g.temp(CInt, wantVar)
		if err != nil {
			return core.NoReg, 0, err
		}
		yes := a.NewLabel()
		a.Seti(res, 1)
		a.Br(op, vt, l, r, yes)
		a.Seti(res, 0)
		a.Bind(yes)
		g.free(l)
		g.free(r)
		return res, CInt, a.Err()
	}
	return core.NoReg, 0, fmt.Errorf("line %d: unknown operator %q", ex.Line, ex.Op)
}

func (g *fnGen) shortCircuit(ex *BinExpr, wantVar bool) (core.Reg, CType, error) {
	a := g.a
	res, err := g.temp(CInt, wantVar || hasCall(ex.R))
	if err != nil {
		return core.NoReg, 0, err
	}
	out := a.NewLabel()
	// The short-circuit value is loaded first; if the left operand
	// decides, we jump straight out with it.
	shortVal := int64(0) // && shorts to 0 when the left is false
	brOnShort := core.OpBeq
	if ex.Op == "||" {
		shortVal = 1 // || shorts to 1 when the left is true
		brOnShort = core.OpBne
	}
	l, lt, err := g.expr(ex.L, false)
	if err != nil {
		return core.NoReg, 0, err
	}
	if l, err = g.truthy(l, lt); err != nil {
		return core.NoReg, 0, err
	}
	a.Seti(res, shortVal)
	a.BrI(brOnShort, core.TypeI, l, 0, out)
	g.free(l)
	// Otherwise the result is the truthiness of the right operand.
	r, rt, err := g.expr(ex.R, false)
	if err != nil {
		return core.NoReg, 0, err
	}
	if r, err = g.truthy(r, rt); err != nil {
		return core.NoReg, 0, err
	}
	a.Seti(res, 1)
	a.BrI(core.OpBne, core.TypeI, r, 0, out)
	a.Seti(res, 0)
	a.Bind(out)
	g.free(r)
	return res, CInt, a.Err()
}

// truthy normalizes a value to 0/1 in an int register.
func (g *fnGen) truthy(r core.Reg, t CType) (core.Reg, error) {
	a := g.a
	if t != CDouble {
		return r, nil
	}
	ri, err := g.temp(CInt, false)
	if err != nil {
		return core.NoReg, err
	}
	fz := g.c.backend.ScratchFPR()
	a.Setd(fz, 0)
	yes := a.NewLabel()
	a.Seti(ri, 1)
	a.Br(core.OpBne, core.TypeD, r, fz, yes)
	a.Seti(ri, 0)
	a.Bind(yes)
	g.free(r)
	return ri, a.Err()
}

func (g *fnGen) call(ex *CallExpr, wantVar bool) (core.Reg, CType, error) {
	a := g.a
	fd, ok := g.c.sigs[ex.Name]
	if !ok {
		return core.NoReg, 0, fmt.Errorf("line %d: call to undefined function %q", ex.Line, ex.Name)
	}
	if len(ex.Args) != len(fd.Params) {
		return core.NoReg, 0, fmt.Errorf("line %d: %s takes %d args, got %d",
			ex.Line, ex.Name, len(fd.Params), len(ex.Args))
	}
	// If any argument itself contains a call, every earlier argument
	// value must survive it.
	anyCall := false
	for _, arg := range ex.Args {
		if hasCall(arg) {
			anyCall = true
		}
	}
	sig := ""
	regs := make([]core.Reg, len(ex.Args))
	for i, arg := range ex.Args {
		pt := fd.Params[i].Type
		sig += "%" + pt.VType().Letter()
		r, t, err := g.expr(arg, anyCall)
		if err != nil {
			return core.NoReg, 0, err
		}
		if r, err = g.convert(r, t, pt); err != nil {
			return core.NoReg, 0, err
		}
		regs[i] = r
	}
	// Load the callee's entry from the function table (the table slot
	// address is a link-time constant of this compilation).
	ptr, err := g.a.GetReg(core.Temp)
	if err != nil {
		return core.NoReg, 0, err
	}
	slotAddr := g.c.table + uint64(g.c.slots[ex.Name]*g.c.backend.PtrBytes())
	a.Setp(ptr, int64(slotAddr))
	a.Ldpi(ptr, ptr, 0)
	a.StartCall(sig)
	for i, r := range regs {
		a.SetArg(i, r)
	}
	a.CallReg(ptr)
	g.free(ptr)
	for _, r := range regs {
		g.free(r)
	}
	res, err := g.temp(fd.Ret, wantVar)
	if err != nil {
		return core.NoReg, 0, err
	}
	a.RetVal(fd.Ret.VType(), res)
	return res, fd.Ret, a.Err()
}

// convert moves a value between tiny-C types, re-homing it in a register
// of the right bank.
func (g *fnGen) convert(r core.Reg, from, to CType) (core.Reg, error) {
	if from == to {
		return r, nil
	}
	nr, err := g.temp(to, false)
	if err != nil {
		return core.NoReg, err
	}
	if to == CDouble {
		g.a.Cvi2d(nr, r)
	} else {
		g.a.Cvd2i(nr, r)
	}
	g.free(r)
	return nr, g.a.Err()
}

// --- call analysis ---

func hasCall(e Expr) bool {
	switch ex := e.(type) {
	case *CallExpr:
		return true
	case *BinExpr:
		return hasCall(ex.L) || hasCall(ex.R)
	case *UnExpr:
		return hasCall(ex.X)
	case *CastExpr:
		return hasCall(ex.X)
	}
	return false
}

func hasCallStmt(s Stmt) bool {
	switch st := s.(type) {
	case *Block:
		for _, x := range st.Stmts {
			if hasCallStmt(x) {
				return true
			}
		}
	case *DeclStmt:
		return st.Init != nil && hasCall(st.Init)
	case *AssignStmt:
		return hasCall(st.Val)
	case *ReturnStmt:
		return hasCall(st.Val)
	case *IfStmt:
		return hasCall(st.Cond) || hasCallStmt(st.Then) || (st.Else != nil && hasCallStmt(st.Else))
	case *WhileStmt:
		return hasCall(st.Cond) || hasCallStmt(st.Body) ||
			(st.Post != nil && hasCallStmt(st.Post))
	case *ExprStmt:
		return hasCall(st.X)
	}
	return false
}
