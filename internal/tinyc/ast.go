package tinyc

import "repro/internal/core"

// CType is a tiny-C type.
type CType uint8

const (
	// CInt is a 32-bit signed integer.
	CInt CType = iota
	// CDouble is a double-precision float.
	CDouble
)

func (t CType) String() string {
	if t == CDouble {
		return "double"
	}
	return "int"
}

// VType maps a tiny-C type to its VCODE type.
func (t CType) VType() core.Type {
	if t == CDouble {
		return core.TypeD
	}
	return core.TypeI
}

// Program is a parsed translation unit.
type Program struct {
	Funcs []*FuncDecl
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Ret    CType
	Params []Param
	Body   *Block
	Line   int
}

// Param is a formal parameter.
type Param struct {
	Name string
	Type CType
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	Name string
	Type CType
	Init Expr
	Line int
}

// AssignStmt assigns to a variable.
type AssignStmt struct {
	Name string
	Val  Expr
	Line int
}

// ReturnStmt returns a value.
type ReturnStmt struct {
	Val  Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is a while (or desugared for) loop; Post, when present, runs
// after the body and is the target of continue.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Post Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

// ExprStmt evaluates an expression for effect (a call, usually).
type ExprStmt struct{ X Expr }

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*ReturnStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating literal.
type FloatLit struct{ V float64 }

// VarRef references a variable.
type VarRef struct {
	Name string
	Line int
}

// BinExpr is a binary operation ("+", "==", "&&", ...).
type BinExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnExpr is unary ("-" or "!").
type UnExpr struct {
	Op string
	X  Expr
}

// CastExpr is an explicit conversion.
type CastExpr struct {
	To CType
	X  Expr
}

// CallExpr calls a named function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*IntLit) expr()   {}
func (*FloatLit) expr() {}
func (*VarRef) expr()   {}
func (*BinExpr) expr()  {}
func (*UnExpr) expr()   {}
func (*CastExpr) expr() {}
func (*CallExpr) expr() {}
