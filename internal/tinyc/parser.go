package tinyc

import "fmt"

// Parse parses a tiny-C translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fd)
	}
	return prog, nil
}

type parser struct {
	toks  []token
	pos   int
	depth int
}

// maxParseDepth bounds statement and expression nesting.  The parser is
// recursive-descent, so without a limit pathological input ("((((…" or
// "{{{{…") grows the goroutine stack until the runtime kills the whole
// process — a fatal error no recover can catch.
const maxParseDepth = 500

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("line %d: nesting deeper than %d", p.line(), maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) tok() token { return p.toks[p.pos] }
func (p *parser) line() int  { return p.tok().line }
func (p *parser) advance()   { p.pos++ }

func (p *parser) at(k tokKind, text string) bool {
	t := p.tok()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	t := p.tok()
	if !p.at(k, text) {
		return t, fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) typeName() (CType, bool) {
	switch {
	case p.accept(tokKeyword, "int"):
		return CInt, true
	case p.accept(tokKeyword, "double"):
		return CDouble, true
	}
	return CInt, false
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.line()
	ret, ok := p.typeName()
	if !ok {
		return nil, fmt.Errorf("line %d: expected return type", line)
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name.text, Ret: ret, Line: line}
	if !p.accept(tokPunct, ")") {
		for {
			pt, ok := p.typeName()
			if !ok {
				return nil, fmt.Errorf("line %d: expected parameter type", p.line())
			}
			pn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, Param{Name: pn.text, Type: pt})
			if p.accept(tokPunct, ")") {
				break
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	line := p.line()
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.accept(tokKeyword, "return"):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: e, Line: line}, nil
	case p.accept(tokKeyword, "break"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil
	case p.accept(tokKeyword, "continue"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil
	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept(tokKeyword, "else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.accept(tokKeyword, "for"):
		// for (init; cond; post) body  ==  { init; while (cond) { body; post } }
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		blk := &Block{}
		if !p.accept(tokPunct, ";") {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, init)
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		var cond Expr = &IntLit{V: 1}
		if !p.at(tokPunct, ";") {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = c
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		var post Stmt
		if !p.at(tokPunct, ")") {
			ps, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = ps
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, &WhileStmt{Cond: cond, Body: body, Post: post})
		return blk, nil
	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.at(tokKeyword, "int") || p.at(tokKeyword, "double"):
		t, _ := p.typeName()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: name.text, Type: t, Line: line}
		if p.accept(tokPunct, "=") {
			if d.Init, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil
	case p.at(tokIdent, "") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=":
		name := p.tok().text
		p.advance()
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name, Val: v, Line: line}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

// simpleStmt parses a declaration, assignment or expression statement
// without its trailing semicolon (the for-clause forms).
func (p *parser) simpleStmt() (Stmt, error) {
	line := p.line()
	switch {
	case p.at(tokKeyword, "int") || p.at(tokKeyword, "double"):
		t, _ := p.typeName()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: name.text, Type: t, Line: line}
		if p.accept(tokPunct, "=") {
			if d.Init, err = p.expr(); err != nil {
				return nil, err
			}
		}
		return d, nil
	case p.at(tokIdent, "") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=":
		name := p.tok().text
		p.advance()
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name, Val: v, Line: line}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

// Operator precedence (C subset).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.accept(tokPunct, "-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x}, nil
	case p.accept(tokPunct, "!"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "!", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.tok()
	switch {
	case t.kind == tokInt:
		p.advance()
		return &IntLit{V: t.ival}, nil
	case t.kind == tokFloat:
		p.advance()
		return &FloatLit{V: t.fval}, nil
	case p.at(tokPunct, "("):
		// Either a cast "(int) expr" or a parenthesized expression.
		if p.toks[p.pos+1].kind == tokKeyword &&
			(p.toks[p.pos+1].text == "int" || p.toks[p.pos+1].text == "double") {
			p.advance()
			ct, _ := p.typeName()
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{To: ct, X: x}, nil
		}
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		if p.accept(tokPunct, "(") {
			call := &CallExpr{Name: t.text, Line: t.line}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return &VarRef{Name: t.text, Line: t.line}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected token %q", t.line, t.text)
}
