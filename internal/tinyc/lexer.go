// Package tinyc is the reproduction's analog of tcc (§4.1): a small
// C-like language whose compiler uses VCODE as its abstract target
// machine.  Like tcc, it relies on VCODE for calling conventions and
// instruction selection, and the same compiler back end works unchanged
// on every architecture VCODE has been ported to — compiling to VCODE is
// easier than compiling to any one of them.
//
// The language: functions over `int` and `double`, locals, assignment,
// `if`/`else`, `while`, `return`, calls (including recursion), the usual
// arithmetic/comparison/logical operators and explicit casts.
package tinyc

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
}

var keywords = map[string]bool{
	"int": true, "double": true, "return": true, "if": true,
	"else": true, "while": true, "for": true, "break": true, "continue": true,
}

var punct2 = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
	"<<": true, ">>": true,
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			goto body
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

body:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: l.line}, nil
	case unicode.IsDigit(rune(c)):
		isFloat := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' || ch == 'e' || ch == 'E' {
				isFloat = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') && (ch == 'e' || ch == 'E') {
					l.pos++
				}
				continue
			}
			if unicode.IsDigit(rune(ch)) || ch == 'x' || ch == 'X' ||
				(ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F') {
				l.pos++
				continue
			}
			break
		}
		text := l.src[start:l.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, fmt.Errorf("line %d: bad number %q", l.line, text)
			}
			return token{kind: tokFloat, text: text, fval: f, line: l.line}, nil
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, fmt.Errorf("line %d: bad number %q", l.line, text)
		}
		return token{kind: tokInt, text: text, ival: v, line: l.line}, nil
	default:
		if l.pos+1 < len(l.src) && punct2[l.src[l.pos:l.pos+2]] {
			l.pos += 2
			return token{kind: tokPunct, text: l.src[start:l.pos], line: l.line}, nil
		}
		l.pos++
		return token{kind: tokPunct, text: l.src[start:l.pos], line: l.line}, nil
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
