package tinyc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

// FuzzTinyCCompile parses arbitrary source and, when it parses, compiles
// it through codegen and install (including the pre-install verifier).
// Both stages must reject bad input with errors, never panic.
func FuzzTinyCCompile(f *testing.F) {
	f.Add(programs)
	f.Add("int f(int n) { return n + 1; }")
	f.Add("int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }")
	f.Add("double f(double x) { return x * 2.0; }")
	f.Add("int f(int n) { if (n % 2 == 0) return 0; return f(n - 1); }")
	f.Add("int f() { return g(); } int g() { return 7; }")
	f.Add("int f(")
	f.Add("{}")
	f.Add("int 0bad() { return; }")
	// Regression: pathological nesting must be rejected by the parse
	// depth limit, not overflow the goroutine stack.
	f.Add("int f() { return " + strings.Repeat("(", 2000) + "1")
	f.Add("int f() " + strings.Repeat("{", 2000))
	f.Add("int f() { return " + strings.Repeat("!", 2000) + "1; }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		m := mem.New(1<<22, false)
		machine := core.NewMachine(mips.New(), mips.NewCPU(m), m)
		_ = NewCompiler(machine).Compile(prog)
	})
}
