package tinyc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
)

type target struct {
	name string
	mk   func() *core.Machine
}

func targets() []target {
	return []target{
		{"mips", func() *core.Machine {
			m := mem.New(1<<24, false)
			return core.NewMachine(mips.New(), mips.NewCPU(m), m)
		}},
		{"sparc", func() *core.Machine {
			m := mem.New(1<<24, true)
			return core.NewMachine(sparc.New(), sparc.NewCPU(m), m)
		}},
		{"alpha", func() *core.Machine {
			m := mem.New(1<<24, false)
			return core.NewMachine(alpha.New(), alpha.NewCPU(m), m)
		}},
	}
}

const programs = `
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}

int fib(int n) {
	int a = 0;
	int b = 1;
	while (n > 0) {
		int t = a + b;
		a = b;
		b = t;
		n = n - 1;
	}
	return a;
}

int gcd(int a, int b) {
	while (b != 0) {
		int t = a % b;
		a = b;
		b = t;
	}
	return a;
}

int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps = steps + 1;
	}
	return steps;
}

double newton(double x) {
	double g = x;
	int i = 0;
	while (i < 30) {
		g = (g + x / g) / 2.0;
		i = i + 1;
	}
	return g;
}

int primes(int limit) {
	int count = 0;
	int n = 2;
	while (n < limit) {
		int isp = 1;
		int d = 2;
		while (d * d <= n) {
			if (n % d == 0) { isp = 0; break; }
			d = d + 1;
		}
		if (isp) count = count + 1;
		n = n + 1;
	}
	return count;
}

int logic(int a, int b) {
	if (a > 0 && b > 0) return 1;
	if (a > 0 || b > 0) return 2;
	if (!a && !b) return 3;
	return 4;
}

int mixed(int n) {
	double acc = 0.0;
	int i = 1;
	while (i <= n) {
		acc = acc + 1.0 / (double)i;
		i = i + 1;
	}
	return (int)(acc * 1000.0);
}

int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}

int forsum(int n) {
	int s = 0;
	for (int i = 1; i <= n; i = i + 1) {
		if (i % 3 == 0) continue;
		if (i > 100) break;
		s = s + i;
	}
	return s;
}

int nestedfor(int n) {
	int c = 0;
	for (int i = 0; i < n; i = i + 1)
		for (int j = 0; j < n; j = j + 1)
			if ((i + j) % 2 == 0) c = c + 1;
	return c;
}

int dlogic(double x, double y) {
	if (x && y) return 1;
	if (x || y) return 2;
	if (!x) return 3;
	return 4;
}

double dloop(double x) {
	double s = 0.0;
	while (x) {
		s = s + x;
		x = x - 1.0;
	}
	return s;
}

int manyvars(int n) {
	int a = n + 1;  int b = n + 2;  int c = n + 3;  int d = n + 4;
	int e = n + 5;  int f = n + 6;  int g = n + 7;  int h = n + 8;
	int i = n + 9;  int j = n + 10; int k = n + 11; int l = n + 12;
	int m = n + 13; int o = n + 14; int p = n + 15; int q = n + 16;
	return a + b + c + d + e + f + g + h + i + j + k + l + m + o + p + q;
}
`

func compileAll(t *testing.T, tg target) *Compiler {
	t.Helper()
	prog, err := Parse(programs)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := NewCompiler(tg.mk())
	if err := c.Compile(prog); err != nil {
		t.Fatalf("%s: compile: %v", tg.name, err)
	}
	return c
}

func TestProgramsOnAllTargets(t *testing.T) {
	type icase struct {
		fn   string
		args []core.Value
		want int64
	}
	cases := []icase{
		{"fact", []core.Value{core.I(10)}, 3628800},
		{"fib", []core.Value{core.I(20)}, 6765},
		{"gcd", []core.Value{core.I(1071), core.I(462)}, 21},
		{"gcd", []core.Value{core.I(17), core.I(5)}, 1},
		{"collatz", []core.Value{core.I(27)}, 111},
		{"primes", []core.Value{core.I(100)}, 25},
		{"logic", []core.Value{core.I(1), core.I(2)}, 1},
		{"logic", []core.Value{core.I(1), core.I(-2)}, 2},
		{"logic", []core.Value{core.I(0), core.I(0)}, 3},
		{"mixed", []core.Value{core.I(10)}, 2928},
		{"ack", []core.Value{core.I(2), core.I(3)}, 9},
		// forsum(10): 1..10 minus multiples of 3 = 55 - 18 = 37.
		{"forsum", []core.Value{core.I(10)}, 37},
		{"nestedfor", []core.Value{core.I(4)}, 8},
		// manyvars forces named variables onto stack locals (the
		// allocator-exhaustion fallback the paper prescribes).
		{"manyvars", []core.Value{core.I(0)}, 136},
		{"manyvars", []core.Value{core.I(10)}, 296},
	}
	dcases := []struct {
		x, y float64
		want int64
	}{
		{1.5, 2.0, 1}, {1.5, 0, 2}, {0, 2.5, 2}, {0, 0, 3},
	}
	for _, tg := range targets() {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			c := compileAll(t, tg)
			for _, tc := range cases {
				got, err := c.Run(tc.fn, tc.args...)
				if err != nil {
					t.Fatalf("%s%v: %v", tc.fn, tc.args, err)
				}
				if got.Int() != tc.want {
					t.Errorf("%s%v = %d, want %d", tc.fn, tc.args, got.Int(), tc.want)
				}
			}
			got, err := c.Run("newton", core.D(2.0))
			if err != nil {
				t.Fatalf("newton: %v", err)
			}
			if math.Abs(got.Float64()-math.Sqrt2) > 1e-12 {
				t.Errorf("newton(2) = %v, want sqrt(2)", got.Float64())
			}
			for _, dc := range dcases {
				got, err := c.Run("dlogic", core.D(dc.x), core.D(dc.y))
				if err != nil {
					t.Fatalf("dlogic: %v", err)
				}
				if got.Int() != dc.want {
					t.Errorf("dlogic(%v,%v) = %d, want %d", dc.x, dc.y, got.Int(), dc.want)
				}
			}
			got, err = c.Run("dloop", core.D(5))
			if err != nil {
				t.Fatalf("dloop: %v", err)
			}
			if got.Float64() != 15 {
				t.Errorf("dloop(5) = %v, want 15", got.Float64())
			}
		})
	}
}

// TestCompiledAgreesWithInterpreter differentially tests the compiler
// against the AST interpreter on the named programs with random inputs.
func TestCompiledAgreesWithInterpreter(t *testing.T) {
	prog, err := Parse(programs)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp(prog)
	rng := rand.New(rand.NewSource(11))
	for _, tg := range targets() {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			c := compileAll(t, tg)
			for trial := 0; trial < 25; trial++ {
				n := int32(rng.Intn(25) + 1)
				m := int32(rng.Intn(25) + 1)
				for _, fn := range []string{"fib", "gcd", "collatz", "primes", "mixed", "forsum", "nestedfor"} {
					var args []core.Value
					var iargs []CVal
					switch fn {
					case "gcd":
						args = []core.Value{core.I(n), core.I(m)}
						iargs = []CVal{IntV(n), IntV(m)}
					default:
						args = []core.Value{core.I(n)}
						iargs = []CVal{IntV(n)}
					}
					got, err := c.Run(fn, args...)
					if err != nil {
						t.Fatalf("%s(%d,%d): %v", fn, n, m, err)
					}
					want, err := in.Call(fn, iargs...)
					if err != nil {
						t.Fatalf("interp %s: %v", fn, err)
					}
					if got.Int() != int64(want.toI()) {
						t.Errorf("%s(%d,%d) = %d, interp says %d", fn, n, m, got.Int(), want.toI())
					}
				}
			}
		})
	}
}

// TestRandomExprPrograms generates random expression functions and checks
// compiled-vs-interpreted equality on every target (the expression
// analog of §3.3's generated regression tests, at the language level).
func TestRandomExprPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var genExpr func(depth int) string
	genExpr = func(depth int) string {
		if depth <= 0 || rng.Intn(4) == 0 {
			switch rng.Intn(3) {
			case 0:
				return fmt.Sprintf("%d", rng.Intn(200)-100)
			case 1:
				return "a"
			default:
				return "b"
			}
		}
		ops := []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
		op := ops[rng.Intn(len(ops))]
		l, r := genExpr(depth-1), genExpr(depth-1)
		if op == "/" || op == "%" {
			// Keep divisors nonzero-ish; zero is defined (helpers
			// return 0) but exercise it rarely.
			return fmt.Sprintf("(%s %s (%s + 101))", l, op, r)
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}

	for trial := 0; trial < 20; trial++ {
		src := fmt.Sprintf("int f(int a, int b) { return %s; }", genExpr(4))
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		in := NewInterp(prog)
		for _, tg := range targets() {
			c := NewCompiler(tg.mk())
			if err := c.Compile(prog); err != nil {
				t.Fatalf("%s: compile %q: %v", tg.name, src, err)
			}
			for k := 0; k < 4; k++ {
				a := int32(rng.Intn(100) - 50)
				b := int32(rng.Intn(100) - 50)
				got, err := c.Run("f", core.I(a), core.I(b))
				if err != nil {
					t.Fatalf("%s: run %q: %v", tg.name, src, err)
				}
				want, err := in.Call("f", IntV(a), IntV(b))
				if err != nil {
					t.Fatalf("interp %q: %v", src, err)
				}
				if got.Int() != int64(want.toI()) {
					t.Errorf("%s: f(%d,%d) over %q = %d, interp %d",
						tg.name, a, b, src, got.Int(), want.toI())
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"int f( { return 1; }",
		"int f() { return ; }",
		"int f() { x = 1; return 0; }",
		"int f() { int x x; return 0; }",
		"int f() { break; }",
		"float f() { return 1; }",
	} {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-time rejection is fine
		}
		for _, tg := range targets()[:1] {
			c := NewCompiler(tg.mk())
			if err := c.Compile(prog); err == nil {
				t.Errorf("%q compiled without error", src)
			}
		}
	}
}
