// Package codecache is a concurrency-safe cache of compiled functions —
// the layer that turns the paper's one-shot dynamic code generation into a
// service shape: adaptive JIT compilation and DPF demultiplexing (§1,
// §4.2) win only when generated code is *reused*, so the compile results
// are kept keyed by a client-supplied content hash of their source
// (bytecode, filter spec, vasm text).
//
// The cache is sharded (per-shard lock + LRU list, a global touch clock
// ordering eviction across shards), deduplicates concurrent compiles of
// the same key into a single flight, and bounds capacity by entry count
// and by resident code bytes.  When bound to a core.Machine it installs
// compiled functions on insert and reclaims their simulated code memory on
// eviction through Machine.Uninstall — the eager, out-of-order complement
// to the paper's stack-style Mark/Release arena (§5.2).
package codecache

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// CompileFunc produces the function for a key on a cache miss.  It runs
// without any cache lock held, so it may itself use the machine (allocate
// dispatch tables, define symbols).
type CompileFunc func() (*core.Func, error)

// Config sizes a Cache.
type Config struct {
	// Shards is the number of lock domains (rounded up to a power of
	// two; default 8).  Use 1 for strict global LRU order.
	Shards int
	// MaxEntries bounds the cached function count (0 = unlimited).
	MaxEntries int
	// MaxCodeBytes bounds the summed SizeBytes of cached functions
	// (0 = unlimited).
	MaxCodeBytes int64
	// Machine, when set, receives Install on insert and Uninstall on
	// eviction, so eviction actually frees simulator code memory.
	Machine *core.Machine
	// FailureBackoff, when positive, negative-caches failed compiles:
	// requests for a key whose compile just failed are answered with the
	// cached error (no recompile) until the backoff expires, so a bad key
	// under heavy traffic cannot form a compile storm.  Zero keeps the
	// legacy behaviour — failures are not cached and the next request
	// retries immediately.
	FailureBackoff time.Duration
	// Name, when non-empty, registers the cache's counters in the
	// process-wide telemetry registry under "codecache.<Name>.*", so the
	// HTTP/JSON exporters include hit/miss/eviction/single-flight rates
	// alongside the codegen metrics.  Leave empty for throwaway caches
	// (tests); an unnamed cache can still be exported later with
	// RegisterTelemetry.
	Name string
	// OnEvict, when set, runs after an entry leaves the cache (capacity
	// eviction or Invalidate) and after the bound Machine uninstall.  A
	// caller that attaches resources to a key beyond the cached function
	// itself — sibling functions of a multi-function program, per-tenant
	// residency accounting — reclaims them here.  It runs without any
	// cache lock held and may call back into the cache.
	OnEvict func(key string, fn *core.Func)
	// OnCompileResult, when set, fires exactly once per actual compile
	// flight as it settles — err is nil on success, the compile/install
	// failure otherwise.  Coalesced waiters and negative-cache hits do
	// not fire it, which makes it the right signal for consecutive-
	// failure accounting (circuit breakers) layered above the cache.  It
	// runs without any cache lock held.
	OnCompileResult func(key string, err error)
}

// CompilePanicError reports that a compile callback panicked.  The cache
// recovers the panic, converts it to this error for every waiter of the
// flight, and (with FailureBackoff) negative-caches it like any other
// compile failure.
type CompilePanicError struct {
	Key   string
	Value any
}

func (e *CompilePanicError) Error() string {
	return fmt.Sprintf("codecache: compile for key %q panicked: %v", e.Key, e.Value)
}

// Cache is a sharded, single-flight, LRU-evicting map from content hash to
// compiled function.  The zero value is not usable; call New.
type Cache struct {
	machine         *core.Machine
	maxEntries      int
	maxBytes        int64
	failureBackoff  time.Duration
	onEvict         func(key string, fn *core.Func)
	onCompileResult func(key string, err error)
	shards          []*shard
	mask            uint32

	// clock is a global touch counter: every hit or insert stamps the
	// entry, and eviction picks the smallest stamp among the shard LRU
	// tails — exact LRU per shard, near-exact globally.
	clock atomic.Uint64

	hits, misses, coalesced     atomic.Uint64
	evictions, compiles         atomic.Uint64
	compileErrors, compileNanos atomic.Uint64
	compilePanics, negativeHits atomic.Uint64
	warmed, warmSkipped         atomic.Uint64
	entries, codeBytes          atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	// LRU list head (most recent) and tail (eviction candidate); only
	// ready entries are linked.
	head, tail *entry
}

type entry struct {
	key   string
	fn    *core.Func
	err   error
	size  int64
	stamp uint64
	// done is closed when the flight finishes (fn or err is set); ready
	// marks the entry linked into the LRU and visible as a hit.  failed
	// marks a negative entry (err set, never linked); it stays mapped
	// until negUntil so repeated requests for a broken key back off
	// instead of recompiling.  ready/failed are written under the shard
	// lock; waiters blocked on done read fn/err through the channel's
	// happens-before edge instead.
	done     chan struct{}
	ready    bool
	failed   bool
	negUntil time.Time

	prev, next *entry
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{
		machine:         cfg.Machine,
		maxEntries:      cfg.MaxEntries,
		maxBytes:        cfg.MaxCodeBytes,
		failureBackoff:  cfg.FailureBackoff,
		onEvict:         cfg.OnEvict,
		onCompileResult: cfg.OnCompileResult,
		shards:          make([]*shard, pow),
		mask:            uint32(pow - 1),
	}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make(map[string]*entry)}
	}
	if cfg.Name != "" {
		c.RegisterTelemetry(telemetry.Default, cfg.Name)
	}
	return c
}

// HashKey condenses arbitrary client content into a cache key (FNV-1a).
// Clients hash whatever determines the generated code: source bytecode,
// a filter specification, assembly text.
func HashKey(content string) string {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(content); i++ {
		h ^= uint64(content[i])
		h *= prime
	}
	return strconv.FormatUint(h, 16)
}

func (c *Cache) shard(key string) *shard {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return c.shards[h&c.mask]
}

// GetOrCompile returns the cached function for key, compiling (and, when a
// machine is bound, installing) it on a miss.  Concurrent calls for the
// same key coalesce into one compile: exactly one caller runs compile, the
// rest wait for its result.  A compile that fails — or panics; the panic
// is recovered into a *CompilePanicError — always closes the flight, so
// waiters never deadlock.  Failed keys are negative-cached for
// Config.FailureBackoff (not at all when zero — the next request retries).
func (c *Cache) GetOrCompile(key string, compile CompileFunc) (*core.Func, error) {
	var lkStart time.Time
	if trace.Enabled() {
		lkStart = time.Now()
	}
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		switch {
		case e.ready:
			e.stamp = c.clock.Add(1)
			s.moveToFront(e)
			s.mu.Unlock()
			c.hits.Add(1)
			lookupSpan(lkStart, "hit", e.fn, key, nil)
			return e.fn, nil
		case e.failed:
			if time.Now().Before(e.negUntil) {
				err := e.err
				s.mu.Unlock()
				c.negativeHits.Add(1)
				lookupSpan(lkStart, "negative", nil, key, err)
				return nil, err
			}
			// Backoff expired: drop the negative entry and retry below.
			delete(s.entries, key)
		default:
			s.mu.Unlock()
			c.coalesced.Add(1)
			<-e.done
			if e.err != nil {
				lookupSpan(lkStart, "coalesced", nil, key, e.err)
				return nil, e.err
			}
			lookupSpan(lkStart, "coalesced", e.fn, key, nil)
			return e.fn, nil
		}
	}
	e := &entry{key: key, done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()
	c.misses.Add(1)

	start := time.Now()
	fn, err := c.runCompile(key, compile)
	c.compileNanos.Add(uint64(time.Since(start)))
	if err == nil {
		c.compiles.Add(1)
		if c.machine != nil {
			err = c.machine.Install(fn)
		}
	}
	if err != nil {
		c.compileErrors.Add(1)
		e.err = err
		s.mu.Lock()
		if c.failureBackoff > 0 {
			e.failed = true
			e.negUntil = time.Now().Add(c.failureBackoff)
		} else {
			delete(s.entries, key)
		}
		s.mu.Unlock()
		close(e.done)
		if c.onCompileResult != nil {
			c.onCompileResult(key, err)
		}
		lookupSpan(lkStart, "miss", nil, key, err)
		return nil, err
	}
	e.fn = fn
	e.size = int64(fn.SizeBytes())
	s.mu.Lock()
	e.stamp = c.clock.Add(1)
	e.ready = true
	s.pushFront(e)
	s.mu.Unlock()
	c.entries.Add(1)
	c.codeBytes.Add(e.size)
	close(e.done)
	if c.onCompileResult != nil {
		c.onCompileResult(key, nil)
	}
	c.enforce()
	lookupSpan(lkStart, "miss", fn, key, nil)
	return fn, nil
}

// lookupSpan records a KindLookup trace span for one GetOrCompile
// outcome.  lkStart is zero when tracing was off at entry — then this is
// a no-op, keeping the disabled path at its single atomic load.  On a
// miss the span covers the whole flight (compile + install), which is
// exactly the latency the caller saw.
func lookupSpan(lkStart time.Time, verdict string, fn *core.Func, key string, err error) {
	if lkStart.IsZero() {
		return
	}
	name, backend, flow := key, "", uint64(0)
	if fn != nil {
		name, backend, flow = fn.Name, fn.BackendName, fn.TraceFlow()
	}
	at := trace.Attrs{Verdict: verdict}
	if err != nil {
		at.Err = err.Error()
	}
	trace.Record(trace.KindLookup, backend, name, flow, lkStart, time.Since(lkStart), at)
}

// runCompile runs the client's compile callback with panic isolation: the
// single-flight contract requires the flight to complete no matter what
// the callback does, so a panic becomes an error like any other.
func (c *Cache) runCompile(key string, compile CompileFunc) (fn *core.Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.compilePanics.Add(1)
			fn, err = nil, &CompilePanicError{Key: key, Value: r}
		}
	}()
	return compile()
}

// Get returns the cached function for key without compiling, counting a
// hit when present.  It does not wait for an in-flight compile.
func (c *Cache) Get(key string) (*core.Func, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || !e.ready {
		s.mu.Unlock()
		return nil, false
	}
	e.stamp = c.clock.Add(1)
	s.moveToFront(e)
	s.mu.Unlock()
	c.hits.Add(1)
	return e.fn, true
}

// Contains reports whether key is cached and ready, without touching LRU
// order or metrics.
func (c *Cache) Contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	ready := ok && e.ready
	s.mu.Unlock()
	return ready
}

// Len returns the number of ready entries.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Invalidate drops key from the cache (uninstalling its function when a
// machine is bound), reporting whether it was present.  In-flight compiles
// are not interrupted.
func (c *Cache) Invalidate(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || !e.ready {
		if ok && e.failed {
			// Invalidating a negative entry clears the backoff so the
			// next request retries immediately.
			delete(s.entries, key)
		}
		s.mu.Unlock()
		return false
	}
	delete(s.entries, key)
	s.unlink(e)
	s.mu.Unlock()
	c.drop(e, false)
	return true
}

// over reports whether a capacity bound is exceeded.
func (c *Cache) over() bool {
	if c.maxEntries > 0 && int(c.entries.Load()) > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.codeBytes.Load() > c.maxBytes
}

// enforce evicts least-recently-used entries until within capacity.  The
// globally most-recently-touched entry is never evicted, so a single
// oversized function does not evict itself out from under its caller.
func (c *Cache) enforce() {
	for c.over() {
		var vs *shard
		var victim *entry
		var victimStamp, newest uint64
		for _, s := range c.shards {
			s.mu.Lock()
			if s.head != nil && s.head.stamp > newest {
				newest = s.head.stamp
			}
			if t := s.tail; t != nil && (victim == nil || t.stamp < victimStamp) {
				vs, victim, victimStamp = s, t, t.stamp
			}
			s.mu.Unlock()
		}
		if victim == nil || victimStamp == newest {
			return
		}
		vs.mu.Lock()
		// Re-check under the lock: the victim may have been touched or
		// removed since the scan.
		if e, ok := vs.entries[victim.key]; !ok || e != victim || victim != vs.tail {
			vs.mu.Unlock()
			continue
		}
		delete(vs.entries, victim.key)
		vs.unlink(victim)
		vs.mu.Unlock()
		c.drop(victim, true)
	}
}

// drop finalizes a removed entry: bookkeeping plus machine uninstall.
func (c *Cache) drop(e *entry, evicted bool) {
	c.entries.Add(-1)
	c.codeBytes.Add(-e.size)
	if evicted {
		c.evictions.Add(1)
		if telemetry.Enabled() {
			telemetry.TraceRecord(telemetry.PhaseEvict, e.fn.BackendName, e.fn.Name, 0, e.size)
		}
	}
	if c.machine != nil {
		// A racing caller may already be re-running the function (Call
		// re-installs on demand), so a failed uninstall is not fatal.
		_ = c.machine.Uninstall(e.fn)
	}
	if c.onEvict != nil {
		c.onEvict(e.key, e.fn)
	}
}

// Each calls fn for every ready entry — the enumeration a warm-cache
// snapshot walks at shutdown.  The key set is captured per shard under
// its lock, but fn runs with no lock held, so it may call back into the
// cache; entries inserted or evicted while Each runs may or may not be
// seen.
func (c *Cache) Each(fn func(key string, f *core.Func)) {
	for _, s := range c.shards {
		type pair struct {
			key string
			fn  *core.Func
		}
		s.mu.Lock()
		pairs := make([]pair, 0, len(s.entries))
		for k, e := range s.entries {
			if e.ready {
				pairs = append(pairs, pair{k, e.fn})
			}
		}
		s.mu.Unlock()
		for _, p := range pairs {
			fn(p.key, p.fn)
		}
	}
}

// --- intrusive LRU list (entries are linked only while ready) ---

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Metrics is a point-in-time snapshot of cache activity.
type Metrics struct {
	// Hits and Misses count GetOrCompile/Get outcomes; Coalesced counts
	// callers that waited on another caller's in-flight compile instead
	// of compiling themselves.
	Hits, Misses, Coalesced uint64
	// Compiles counts successful compilations, CompileErrors failed
	// ones, and CompileNanos the wall time summed over both.
	Compiles, CompileErrors, CompileNanos uint64
	// CompilePanics counts compile callbacks that panicked (a subset of
	// CompileErrors); NegativeHits counts requests answered from the
	// failure backoff window without recompiling.
	CompilePanics, NegativeHits uint64
	// Evictions counts capacity-driven removals.
	Evictions uint64
	// Warmed counts entries inserted by WarmUp batches; WarmSkipped
	// counts WarmUp items that were already ready or in flight.
	Warmed, WarmSkipped uint64
	// Entries and CodeBytes describe current residency as accounted by
	// the cache (the bound Machine's CodeBytesResident may differ if
	// other clients install code too).
	Entries   int64
	CodeBytes int64
}

// Snapshot captures current metrics.
func (c *Cache) Snapshot() Metrics {
	return Metrics{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Compiles:      c.compiles.Load(),
		CompileErrors: c.compileErrors.Load(),
		CompileNanos:  c.compileNanos.Load(),
		CompilePanics: c.compilePanics.Load(),
		NegativeHits:  c.negativeHits.Load(),
		Evictions:     c.evictions.Load(),
		Warmed:        c.warmed.Load(),
		WarmSkipped:   c.warmSkipped.Load(),
		Entries:       c.entries.Load(),
		CodeBytes:     c.codeBytes.Load(),
	}
}

// String renders the snapshot through the telemetry text formatter — the
// same rendering path the registry HTTP endpoint uses, so there is one
// metrics format across the system.
//
// Deprecated: bind the live cache to a registry instead (Config.Name or
// RegisterTelemetry) and render the registry; String survives for
// existing CLI output and renders a frozen snapshot.
func (m Metrics) String() string {
	reg := telemetry.NewRegistry()
	m.register(reg, "codecache")
	return "codecache:\n" + reg.TextString()
}
