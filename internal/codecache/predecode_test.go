package codecache

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestEvictionDropsPredecodedBody pins the body half of the eviction
// path: a cache eviction uninstalls the function AND drops its
// predecoded threaded-engine body, and the recompiled replacement at
// the reused address executes its own fresh body (correct results, not
// the evicted function's).
func TestEvictionDropsPredecodedBody(t *testing.T) {
	m := newTestMachine(t)
	if m.Engine() != core.EngineThreaded {
		t.Fatal("threaded engine is not the default")
	}
	c := New(Config{Shards: 1, MaxEntries: 1, Machine: m})

	get := func(k int64) *core.Func {
		t.Helper()
		fn, err := c.GetOrCompile(fmt.Sprint(k), func() (*core.Func, error) {
			return buildAdder(t, k), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}

	f1 := get(100)
	if got := m.PredecodedBodies(); got != 1 {
		t.Fatalf("bodies after first fill: %d, want 1", got)
	}
	if v, err := m.Call(f1, core.I(1)); err != nil || v.Int() != 101 {
		t.Fatalf("f1(1) = %v, %v; want 101", v, err)
	}

	// Capacity 1: every new key evicts the previous function; the body
	// count must stay pinned at one, and each resident function must
	// compute its own sum even though it reuses the same arena hole.
	for k := int64(200); k < 210; k++ {
		fn := get(k)
		if got := m.PredecodedBodies(); got != 1 {
			t.Fatalf("bodies after evicting fill %d: %d, want 1", k, got)
		}
		v, err := m.Call(fn, core.I(5))
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != 5+k {
			t.Fatalf("f%d(5) = %d, want %d (stale predecoded body?)", k, v.Int(), 5+k)
		}
	}
}
