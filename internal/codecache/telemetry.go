package codecache

import "repro/internal/telemetry"

// RegisterTelemetry exports the cache's counters through reg as derived
// gauges named "codecache.<name>.*" — the hit/miss/eviction/single-flight
// metrics the cache already keeps, re-read live at every snapshot.  The
// derived hit_rate_pct and mean_compile_ns gauges replace the arithmetic
// the old ad-hoc Metrics.String formatting performed inline.
func (c *Cache) RegisterTelemetry(reg *telemetry.Registry, name string) {
	prefix := "codecache." + name + "."
	u := func(metric string, load func() uint64) {
		reg.GaugeFunc(prefix+metric, func() float64 { return float64(load()) })
	}
	u("hits", c.hits.Load)
	u("misses", c.misses.Load)
	u("coalesced", c.coalesced.Load)
	u("negative_hits", c.negativeHits.Load)
	u("compiles", c.compiles.Load)
	u("compile_errors", c.compileErrors.Load)
	u("compile_panics", c.compilePanics.Load)
	u("compile_ns_total", c.compileNanos.Load)
	u("evictions", c.evictions.Load)
	u("warmed", c.warmed.Load)
	u("warm_skipped", c.warmSkipped.Load)
	reg.GaugeFunc(prefix+"entries", func() float64 { return float64(c.entries.Load()) })
	reg.GaugeFunc(prefix+"code_bytes", func() float64 { return float64(c.codeBytes.Load()) })
	reg.GaugeFunc(prefix+"hit_rate_pct", func() float64 {
		return hitRatePct(c.hits.Load(), c.misses.Load())
	})
	reg.GaugeFunc(prefix+"mean_compile_ns", func() float64 {
		return meanCompileNS(c.compileNanos.Load(), c.compiles.Load()+c.compileErrors.Load())
	})
}

// register exports a frozen Metrics snapshot (the deprecated String path)
// through the same gauge names RegisterTelemetry uses live.
func (m Metrics) register(reg *telemetry.Registry, name string) {
	prefix := name + "."
	set := func(metric string, v float64) {
		reg.GaugeFunc(prefix+metric, func() float64 { return v })
	}
	set("hits", float64(m.Hits))
	set("misses", float64(m.Misses))
	set("coalesced", float64(m.Coalesced))
	set("negative_hits", float64(m.NegativeHits))
	set("compiles", float64(m.Compiles))
	set("compile_errors", float64(m.CompileErrors))
	set("compile_panics", float64(m.CompilePanics))
	set("compile_ns_total", float64(m.CompileNanos))
	set("evictions", float64(m.Evictions))
	set("warmed", float64(m.Warmed))
	set("warm_skipped", float64(m.WarmSkipped))
	set("entries", float64(m.Entries))
	set("code_bytes", float64(m.CodeBytes))
	set("hit_rate_pct", hitRatePct(m.Hits, m.Misses))
	set("mean_compile_ns", meanCompileNS(m.CompileNanos, m.Compiles+m.CompileErrors))
}

func hitRatePct(hits, misses uint64) float64 {
	if total := hits + misses; total > 0 {
		return 100 * float64(hits) / float64(total)
	}
	return 0
}

func meanCompileNS(nanos, compiles uint64) float64 {
	if compiles > 0 {
		return float64(nanos / compiles)
	}
	return 0
}
