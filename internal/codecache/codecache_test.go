package codecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/trace"
)

// fake returns a CompileFunc yielding a standalone (uninstallable) Func
// and counting invocations.
func fake(n *atomic.Int64, words int) CompileFunc {
	return func() (*core.Func, error) {
		n.Add(1)
		return &core.Func{Name: "fake", Words: make([]uint32, words)}, nil
	}
}

func newTestMachine(t testing.TB) *core.Machine {
	t.Helper()
	m := mem.New(1<<22, false)
	return core.NewMachine(mips.New(), mips.NewCPU(m), m)
}

// buildAdder compiles "f(x) = x + k" for a real MIPS machine.
func buildAdder(t testing.TB, k int64) *core.Func {
	t.Helper()
	a := core.NewAsm(mips.New())
	a.SetName(fmt.Sprintf("add%d", k))
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Addii(args[0], args[0], k)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// TestSingleFlight launches K goroutines at one cold key and requires
// exactly one compile; everyone else must coalesce or hit.
func TestSingleFlight(t *testing.T) {
	c := New(Config{})
	var compiles atomic.Int64
	const K = 32
	compile := func() (*core.Func, error) {
		compiles.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return &core.Func{Name: "slow", Words: make([]uint32, 8)}, nil
	}

	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	fns := make([]*core.Func, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			fn, err := c.GetOrCompile("hot", compile)
			if err != nil {
				t.Error(err)
			}
			fns[i] = fn
		}(i)
	}
	start.Done()
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	for i := 1; i < K; i++ {
		if fns[i] != fns[0] {
			t.Fatalf("goroutine %d got a different *Func", i)
		}
	}
	s := c.Snapshot()
	if s.Misses != 1 || s.Compiles != 1 {
		t.Errorf("misses=%d compiles=%d, want 1/1", s.Misses, s.Compiles)
	}
	if s.Hits+s.Coalesced != K-1 {
		t.Errorf("hits+coalesced = %d+%d, want %d", s.Hits, s.Coalesced, K-1)
	}
}

// TestLRUEvictionOrder pins strict LRU order on a single shard: touching
// an entry saves it, the least-recently-used one goes.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 2})
	var n atomic.Int64
	for _, k := range []string{"a", "b"} {
		if _, err := c.GetOrCompile(k, fake(&n, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GetOrCompile("a", fake(&n, 4)); err != nil { // touch a: b is now LRU
		t.Fatal(err)
	}
	if _, err := c.GetOrCompile("c", fake(&n, 4)); err != nil { // evicts b
		t.Fatal(err)
	}
	if c.Contains("b") {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if !c.Contains(k) {
			t.Errorf("%s should be resident", k)
		}
	}
	s := c.Snapshot()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("evictions=%d entries=%d, want 1/2", s.Evictions, s.Entries)
	}
}

// TestByteBoundEviction bounds the cache by code bytes rather than count.
func TestByteBoundEviction(t *testing.T) {
	c := New(Config{Shards: 1, MaxCodeBytes: 100})
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		if _, err := c.GetOrCompile(fmt.Sprint(i), fake(&n, 8)); err != nil { // 32 bytes each
			t.Fatal(err)
		}
	}
	s := c.Snapshot()
	if s.CodeBytes > 100 {
		t.Errorf("resident %d bytes exceeds 100-byte bound", s.CodeBytes)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions under byte pressure")
	}
}

// TestEvictionFreesAndRecompiles is the machine-integrated round trip:
// eviction must uninstall (freeing simulator code memory for reuse) and a
// later request for the evicted key must recompile a working function.
func TestEvictionFreesAndRecompiles(t *testing.T) {
	m := newTestMachine(t)
	base := m.CodeBytesResident()
	c := New(Config{Shards: 1, MaxEntries: 1, Machine: m})

	compiles := 0
	get := func(k int64) *core.Func {
		t.Helper()
		fn, err := c.GetOrCompile(fmt.Sprint(k), func() (*core.Func, error) {
			compiles++
			return buildAdder(t, k), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}
	call := func(fn *core.Func, x, want int32) {
		t.Helper()
		got, err := m.Call(fn, core.I(x))
		if err != nil {
			t.Fatal(err)
		}
		if int32(got.Int()) != want {
			t.Fatalf("got %d, want %d", got.Int(), want)
		}
	}

	f1 := get(1)
	call(f1, 10, 11)
	oneResident := m.CodeBytesResident()

	f2 := get(2) // evicts f1
	if m.Installed(f1) {
		t.Error("evicted function still installed")
	}
	if !m.Installed(f2) {
		t.Error("resident function not installed")
	}
	if r := m.CodeBytesResident(); r != oneResident {
		t.Errorf("resident bytes %d after eviction, want %d (memory not freed)", r, oneResident)
	}
	call(f2, 10, 12)

	// Round trip: the evicted key recompiles and runs correctly.
	f1b := get(1)
	call(f1b, 10, 11)
	if compiles != 3 {
		t.Errorf("compiles = %d, want 3 (evicted key must recompile)", compiles)
	}
	if s := c.Snapshot(); s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
	// Steady state: capacity 1 means resident code never grows past one
	// function even after a long mixed stream.
	for i := 0; i < 20; i++ {
		call(get(int64(i%5)), 1, int32(1+i%5))
	}
	if r := m.CodeBytesResident(); r != oneResident {
		t.Errorf("resident bytes %d after stream, want %d", r, oneResident)
	}
	_ = base
}

// TestCompileErrorNotCached: failures propagate to every coalesced waiter
// and the next request retries.
func TestCompileErrorNotCached(t *testing.T) {
	c := New(Config{})
	boom := errors.New("boom")
	if _, err := c.GetOrCompile("k", func() (*core.Func, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Contains("k") {
		t.Error("failed compile cached")
	}
	var n atomic.Int64
	if _, err := c.GetOrCompile("k", fake(&n, 4)); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if n.Load() != 1 {
		t.Error("retry did not recompile")
	}
}

// TestConcurrentStress hammers a machine-bound cache from many goroutines
// with a key space larger than capacity; meaningful chiefly under -race.
func TestConcurrentStress(t *testing.T) {
	m := newTestMachine(t)
	c := New(Config{MaxEntries: 4, Machine: m})
	const workers, opsPerWorker, keys = 8, 150, 16

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				k := int64((w + i*7) % keys)
				fn, err := c.GetOrCompile(fmt.Sprint(k), func() (*core.Func, error) {
					return buildAdder(t, k), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					got, err := m.Call(fn, core.I(100))
					if err != nil {
						t.Error(err)
						return
					}
					if int32(got.Int()) != int32(100+k) {
						t.Errorf("key %d: got %d", k, got.Int())
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.Snapshot()
	if s.Entries > 4 {
		t.Errorf("entries %d exceed capacity 4", s.Entries)
	}
	if s.Hits+s.Misses+s.Coalesced != workers*opsPerWorker {
		t.Errorf("request accounting off: %+v", s)
	}
	if s.CompileErrors != 0 {
		t.Errorf("%d compile errors", s.CompileErrors)
	}
}

// TestMetricsString smoke-tests the human-readable dump.
func TestMetricsString(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 1})
	var n atomic.Int64
	c.GetOrCompile("a", fake(&n, 4))
	c.GetOrCompile("a", fake(&n, 4))
	c.GetOrCompile("b", fake(&n, 4))
	got := c.Snapshot().String()
	for _, want := range []string{"codecache_entries 1", "codecache_hits 1", "codecache_evictions 1"} {
		if !contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestInvalidate removes an entry explicitly and uninstalls it.
func TestInvalidate(t *testing.T) {
	m := newTestMachine(t)
	c := New(Config{Machine: m})
	fn, err := c.GetOrCompile("k", func() (*core.Func, error) { return buildAdder(t, 3), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !c.Invalidate("k") {
		t.Fatal("Invalidate reported absent")
	}
	if c.Contains("k") || m.Installed(fn) {
		t.Error("entry survived Invalidate")
	}
	if c.Invalidate("k") {
		t.Error("second Invalidate reported present")
	}
}

// TestPanickingCompileClosesFlight rushes one key whose compile panics:
// the leader and every coalesced waiter must get a *CompilePanicError
// (not deadlock on the flight channel), and the key must stay retryable.
func TestPanickingCompileClosesFlight(t *testing.T) {
	c := New(Config{})
	const K = 16
	release := make(chan struct{})
	errs := make(chan error, K)
	for i := 0; i < K; i++ {
		go func() {
			_, err := c.GetOrCompile("bad", func() (*core.Func, error) {
				<-release
				panic("compiler bug")
			})
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters pile onto the flight
	close(release)
	for i := 0; i < K; i++ {
		select {
		case err := <-errs:
			var pe *CompilePanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *CompilePanicError", err)
			}
			if pe.Key != "bad" || pe.Value != "compiler bug" {
				t.Errorf("panic error contents: %+v", pe)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter deadlocked on panicked flight")
		}
	}
	if c.Contains("bad") {
		t.Error("panicked compile left a cached entry")
	}
	if got := c.Snapshot().CompilePanics; got == 0 {
		t.Error("CompilePanics metric not incremented")
	}
	var n atomic.Int64
	if _, err := c.GetOrCompile("bad", fake(&n, 4)); err != nil || n.Load() != 1 {
		t.Errorf("key not retryable after panic: err=%v compiles=%d", err, n.Load())
	}
}

// TestFailureBackoff negative-caches a failed compile: within the window
// requests get the stored error without invoking the compiler; after it
// expires the key recompiles.
func TestFailureBackoff(t *testing.T) {
	c := New(Config{FailureBackoff: 80 * time.Millisecond})
	boom := errors.New("boom")
	var calls atomic.Int64
	failing := func() (*core.Func, error) { calls.Add(1); return nil, boom }

	if _, err := c.GetOrCompile("k", failing); !errors.Is(err, boom) {
		t.Fatalf("first compile: err = %v", err)
	}
	if _, err := c.GetOrCompile("k", failing); !errors.Is(err, boom) {
		t.Fatalf("negative hit: err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compiler invoked %d times inside backoff window", calls.Load())
	}
	if got := c.Snapshot().NegativeHits; got != 1 {
		t.Errorf("NegativeHits = %d, want 1", got)
	}
	if c.Contains("k") {
		t.Error("Contains reports a negative entry as present")
	}
	if _, ok := c.Get("k"); ok {
		t.Error("Get returned a negative entry")
	}

	time.Sleep(100 * time.Millisecond)
	var n atomic.Int64
	if _, err := c.GetOrCompile("k", fake(&n, 4)); err != nil {
		t.Fatalf("recompile after expiry: %v", err)
	}
	if calls.Load() != 1 || n.Load() != 1 {
		t.Errorf("expiry retry: failing=%d fresh=%d", calls.Load(), n.Load())
	}

	// Invalidate clears a fresh negative entry immediately.
	if _, err := c.GetOrCompile("k2", failing); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if c.Invalidate("k2") {
		t.Error("Invalidate counted a negative entry as live")
	}
	var n2 atomic.Int64
	if _, err := c.GetOrCompile("k2", fake(&n2, 4)); err != nil || n2.Load() != 1 {
		t.Errorf("k2 not retryable after Invalidate: err=%v compiles=%d", err, n2.Load())
	}
}

// TestLookupTraceVerdicts: GetOrCompile emits one KindLookup span per
// outcome, with the verdict naming which path answered.
func TestLookupTraceVerdicts(t *testing.T) {
	trace.SetEnabled(true)
	trace.Reset()
	defer func() { trace.SetEnabled(false); trace.Reset() }()

	c := New(Config{FailureBackoff: time.Minute})
	var n atomic.Int64
	if _, err := c.GetOrCompile("k1", fake(&n, 4)); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.GetOrCompile("k1", fake(&n, 4)); err != nil { // hit
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := c.GetOrCompile("bad", func() (*core.Func, error) { return nil, boom }); err == nil {
		t.Fatal("want compile error") // miss (failed)
	}
	if _, err := c.GetOrCompile("bad", fake(&n, 4)); err == nil {
		t.Fatal("want negative-cache error") // negative
	}

	got := map[string]int{}
	for _, s := range trace.Spans() {
		if s.Kind == trace.KindLookup {
			got[s.Attrs.Verdict]++
		}
	}
	if got["miss"] != 2 || got["hit"] != 1 || got["negative"] != 1 {
		t.Errorf("lookup verdicts = %v, want miss=2 hit=1 negative=1", got)
	}
	for _, s := range trace.Spans() {
		if s.Kind == trace.KindLookup && s.Attrs.Verdict == "hit" && s.Name != "fake" {
			t.Errorf("hit span name = %q, want compiled function name", s.Name)
		}
	}
}
