package codecache

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

// AsmCompileFunc produces the function for a key on a caller-supplied
// assembler — the batch pipeline hands each compile the worker-owned
// Asm so buffer allocations amortize across a warmup batch.
type AsmCompileFunc func(a *core.Asm) (*core.Func, error)

// WarmItem is one WarmUp work unit: a cache key and the compile that
// produces its function.
type WarmItem struct {
	Key     string
	Compile AsmCompileFunc
}

// WarmUp precompiles a working set through the batch pool and inserts
// the results as ready cache entries, deduplicating against concurrent
// GetOrCompile callers with the same single-flight protocol:
//
//   - a key that is already ready is skipped (counted as warm-skipped);
//   - a key some other caller is compiling right now is not compiled
//     again — WarmUp waits for that flight and reports its outcome;
//   - every remaining key is claimed as an in-flight entry first, so
//     GetOrCompile callers arriving during the batch coalesce onto the
//     warmup flight instead of compiling themselves.
//
// Claimed keys compile on the pool's workers and install into the
// machine in one batched critical section (Pool.CompileBatch).  The
// returned slice has one error per item, index-aligned; nil means the
// key is warm (newly compiled, already present, or compiled by the
// flight WarmUp waited on).  A panicking compile surfaces as
// *CompilePanicError for the warmup caller and every coalesced waiter.
// Cancellation and pool-shutdown errors are not negative-cached — only
// genuine compile failures poison a key.
//
// The pool must install into the cache's bound machine (Config.Machine)
// when one is set; WarmUp rejects a mismatched pool.
func (c *Cache) WarmUp(ctx context.Context, pool *batch.Pool, items []WarmItem) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if c.machine != nil && pool.Machine() != c.machine {
		err := errors.New("codecache: WarmUp pool targets a different machine")
		for i := range errs {
			errs[i] = err
		}
		return errs
	}

	// Claim phase: decide per key — skip, wait, or own the flight.
	type wait struct {
		idx int
		e   *entry
	}
	var waits []wait
	var reqs []batch.Request
	var claimed []*entry
	var claimedIdx []int
	for i := range items {
		key, compile := items[i].Key, items[i].Compile
		if compile == nil {
			errs[i] = fmt.Errorf("codecache: WarmUp item %q has no compile", key)
			continue
		}
		s := c.shard(key)
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			switch {
			case e.ready:
				s.mu.Unlock()
				c.warmSkipped.Add(1)
				continue
			case e.failed:
				if time.Now().Before(e.negUntil) {
					err := e.err
					s.mu.Unlock()
					c.negativeHits.Add(1)
					errs[i] = err
					continue
				}
				delete(s.entries, key) // backoff expired: reclaim below
			default:
				// In flight elsewhere (a GetOrCompile caller, or an
				// earlier duplicate of this key in the same warmup) —
				// that is the dedup: wait, don't recompile.
				s.mu.Unlock()
				c.warmSkipped.Add(1)
				waits = append(waits, wait{idx: i, e: e})
				continue
			}
		}
		e := &entry{key: key, done: make(chan struct{})}
		s.entries[key] = e
		s.mu.Unlock()
		claimed = append(claimed, e)
		claimedIdx = append(claimedIdx, i)
		k, cf := key, compile
		reqs = append(reqs, batch.Request{
			Name: k,
			Compile: func(a *core.Asm) (*core.Func, error) {
				return c.runCompileAsm(k, cf, a)
			},
		})
	}

	// Compile + batched install on the pool.
	if len(reqs) > 0 {
		res := pool.CompileBatch(ctx, reqs)
		inserted := false
		for k, r := range res {
			i, e := claimedIdx[k], claimed[k]
			if r.Err != nil {
				c.compileErrors.Add(1)
				errs[i] = r.Err
				e.err = r.Err
				s := c.shard(e.key)
				s.mu.Lock()
				if c.failureBackoff > 0 && !transientWarmErr(r.Err) {
					e.failed = true
					e.negUntil = time.Now().Add(c.failureBackoff)
				} else {
					delete(s.entries, e.key)
				}
				s.mu.Unlock()
				close(e.done)
				if c.onCompileResult != nil {
					c.onCompileResult(e.key, r.Err)
				}
				continue
			}
			c.compiles.Add(1)
			c.warmed.Add(1)
			e.fn = r.Func
			e.size = int64(r.Func.SizeBytes())
			s := c.shard(e.key)
			s.mu.Lock()
			e.stamp = c.clock.Add(1)
			e.ready = true
			s.pushFront(e)
			s.mu.Unlock()
			c.entries.Add(1)
			c.codeBytes.Add(e.size)
			close(e.done)
			if c.onCompileResult != nil {
				c.onCompileResult(e.key, nil)
			}
			inserted = true
		}
		if inserted {
			c.enforce()
		}
	}

	// Settle the flights we deferred to (theirs, not ours).
	for _, w := range waits {
		select {
		case <-w.e.done:
			errs[w.idx] = w.e.err
		case <-ctx.Done():
			errs[w.idx] = ctx.Err()
		}
	}
	return errs
}

// transientWarmErr reports whether a warmup failure says nothing about
// the key itself (cancellation, pool shutdown) — such errors must not
// negative-cache the key.
func transientWarmErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, batch.ErrClosed)
}

// runCompileAsm runs an assembler-reusing compile callback with the same
// panic isolation and accounting as runCompile: the flight must settle
// no matter what the callback does, and a panic becomes a
// *CompilePanicError for every waiter.
func (c *Cache) runCompileAsm(key string, compile AsmCompileFunc, a *core.Asm) (fn *core.Func, err error) {
	start := time.Now()
	defer func() {
		c.compileNanos.Add(uint64(time.Since(start)))
		if r := recover(); r != nil {
			c.compilePanics.Add(1)
			fn, err = nil, &CompilePanicError{Key: key, Value: r}
		}
	}()
	return compile(a)
}
