package codecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

// asmAdder is buildAdder on a caller-supplied assembler (the WarmUp
// shape): f(x) = x + k.
func asmAdder(k int64) AsmCompileFunc {
	return func(a *core.Asm) (*core.Func, error) {
		a.SetName(fmt.Sprintf("warm%d", k))
		args, err := a.Begin("%i", core.Leaf)
		if err != nil {
			return nil, err
		}
		a.Addii(args[0], args[0], k)
		a.Reti(args[0])
		return a.End()
	}
}

func newWarmPool(t testing.TB, m *core.Machine, workers int) *batch.Pool {
	t.Helper()
	p, err := batch.New(batch.Config{Machine: m, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestWarmUpBasic(t *testing.T) {
	m := newTestMachine(t)
	c := New(Config{Machine: m})
	p := newWarmPool(t, m, 4)

	const n = 32
	items := make([]WarmItem, n)
	for i := range items {
		items[i] = WarmItem{Key: fmt.Sprintf("k%d", i), Compile: asmAdder(int64(i))}
	}
	for i, err := range c.WarmUp(context.Background(), p, items) {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	snap := c.Snapshot()
	if snap.Warmed != n {
		t.Fatalf("Warmed = %d, want %d", snap.Warmed, n)
	}
	// Every key must now be a hit — the compile callback must not run.
	for i := 0; i < n; i++ {
		fn, err := c.GetOrCompile(fmt.Sprintf("k%d", i), func() (*core.Func, error) {
			return nil, errors.New("recompiled a warmed key")
		})
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		got, err := m.Call(fn, core.I(100))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got.Int() != int64(100+i) {
			t.Fatalf("warm%d(100) = %d, want %d", i, got.Int(), 100+i)
		}
	}
}

func TestWarmUpSkipsReadyAndDedupsInBatch(t *testing.T) {
	m := newTestMachine(t)
	c := New(Config{Machine: m})
	p := newWarmPool(t, m, 2)

	if _, err := c.GetOrCompile("pre", func() (*core.Func, error) { return buildAdder(t, 7), nil }); err != nil {
		t.Fatal(err)
	}
	var compiles atomic.Int64
	compileOnce := func(k int64) AsmCompileFunc {
		inner := asmAdder(k)
		return func(a *core.Asm) (*core.Func, error) {
			compiles.Add(1)
			return inner(a)
		}
	}
	items := []WarmItem{
		{Key: "pre", Compile: compileOnce(7)},  // already ready: skipped
		{Key: "new", Compile: compileOnce(1)},  // compiles
		{Key: "new", Compile: compileOnce(99)}, // duplicate: coalesces onto the first
	}
	errs := c.WarmUp(context.Background(), p, items)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d compiles, want 1 (ready key skipped, duplicate coalesced)", got)
	}
	snap := c.Snapshot()
	if snap.WarmSkipped != 2 {
		t.Fatalf("WarmSkipped = %d, want 2", snap.WarmSkipped)
	}
	fn, err := c.GetOrCompile("new", func() (*core.Func, error) { return nil, errors.New("recompile") })
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.Call(fn, core.I(1)); err != nil || got.Int() != 2 {
		t.Fatalf("new(1) = %v, %v (first duplicate must win)", got, err)
	}
}

func TestWarmUpErrorHandling(t *testing.T) {
	m := newTestMachine(t)
	c := New(Config{Machine: m, FailureBackoff: time.Minute})
	p := newWarmPool(t, m, 2)

	boom := errors.New("boom")
	errs := c.WarmUp(context.Background(), p, []WarmItem{
		{Key: "ok", Compile: asmAdder(1)},
		{Key: "bad", Compile: func(a *core.Asm) (*core.Func, error) { return nil, boom }},
		{Key: "panic", Compile: func(a *core.Asm) (*core.Func, error) { panic("kaboom") }},
	})
	if errs[0] != nil {
		t.Fatalf("ok item: %v", errs[0])
	}
	if !errors.Is(errs[1], boom) {
		t.Fatalf("bad item: %v, want %v", errs[1], boom)
	}
	var pe *CompilePanicError
	if !errors.As(errs[2], &pe) || pe.Key != "panic" {
		t.Fatalf("panic item: %v, want *CompilePanicError", errs[2])
	}
	// Genuine failures are negative-cached under FailureBackoff.
	if _, err := c.GetOrCompile("bad", func() (*core.Func, error) {
		t.Error("negative-cached key recompiled")
		return nil, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("negative lookup: %v", err)
	}

	// A canceled warmup must not poison keys.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs = c.WarmUp(ctx, p, []WarmItem{{Key: "fresh", Compile: asmAdder(2)}})
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("canceled warmup: %v", errs[0])
	}
	fn, err := c.GetOrCompile("fresh", func() (*core.Func, error) { return buildAdder(t, 2), nil })
	if err != nil || fn == nil {
		t.Fatalf("key poisoned by canceled warmup: %v", err)
	}
}

// TestWarmUpRacesGetOrCompile drives WarmUp batches against concurrent
// GetOrCompile callers over the same key space: single-flight must hold
// (exactly one compile per key) and every caller must get a working
// function.  Run with -race.
func TestWarmUpRacesGetOrCompile(t *testing.T) {
	m := newTestMachine(t)
	c := New(Config{Machine: m})
	p := newWarmPool(t, m, 4)

	const keys = 24
	compiles := make([]atomic.Int64, keys)
	keyName := func(i int) string { return fmt.Sprintf("k%d", i) }

	var wg sync.WaitGroup
	// Lookup traffic.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				i := (g*31 + r) % keys
				fn, err := c.GetOrCompile(keyName(i), func() (*core.Func, error) {
					compiles[i].Add(1)
					return buildAdder(t, int64(i)), nil
				})
				if err != nil {
					t.Errorf("get %d: %v", i, err)
					return
				}
				if fn == nil {
					t.Errorf("get %d: nil fn", i)
					return
				}
			}
		}(g)
	}
	// Warmup sweeps over the same keys, concurrently.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := make([]WarmItem, keys)
			for i := range items {
				i := i
				inner := asmAdder(int64(i))
				items[i] = WarmItem{Key: keyName(i), Compile: func(a *core.Asm) (*core.Func, error) {
					compiles[i].Add(1)
					return inner(a)
				}}
			}
			for i, err := range c.WarmUp(context.Background(), p, items) {
				if err != nil {
					t.Errorf("warm %d: %v", i, err)
				}
			}
		}()
	}
	wg.Wait()
	for i := range compiles {
		if got := compiles[i].Load(); got != 1 {
			t.Errorf("key %d compiled %d times, want 1", i, got)
		}
	}
	// Everything warm and callable.
	for i := 0; i < keys; i++ {
		fn, ok := c.Get(keyName(i))
		if !ok {
			t.Fatalf("key %d not ready after the storm", i)
		}
		if got, err := m.Call(fn, core.I(5)); err != nil || got.Int() != int64(5+i) {
			t.Fatalf("key %d: call = %v, %v", i, got, err)
		}
	}
}
