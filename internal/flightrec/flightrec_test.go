package flightrec

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// withRecording flips the gate for one test and restores the prior
// state (plus a clean ring) afterwards.
func withRecording(t *testing.T, on bool) {
	t.Helper()
	prev := Enabled()
	SetEnabled(on)
	Reset()
	t.Cleanup(func() {
		SetEnabled(prev)
		Reset()
		SetWindow(60 * time.Second)
	})
}

func TestDisabledZeroAlloc(t *testing.T) {
	withRecording(t, false)
	allocs := testing.AllocsPerRun(1000, func() {
		fr := Begin("r1", "acme")
		fr.Event(StageAdmit, Event{Verdict: "ok", Shard: 2, Priority: 5})
		fr.Event(StageExec, Event{Verdict: "ok", Fuel: 100})
		fr.Finish("ok", "", 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled flight recording allocated %v times per request, want 0", allocs)
	}
}

func TestChainRecorded(t *testing.T) {
	withRecording(t, true)
	fr := Begin("r42", "acme")
	fr.Event(StageAdmit, Event{Verdict: "ok", Shard: 1, Priority: 7, Key: "k1"})
	fr.Event(StageCache, Event{Verdict: "compiled", Shard: 1, Key: "k1"})
	fr.Event(StageJournal, Event{Verdict: "durable", LSN: 9, Shard: 1, Key: "k1"})
	fr.Event(StageExec, Event{Verdict: "ok", Detail: "threaded", Fuel: 123, Shard: 1})
	fr.Finish("ok", "", 77)

	evs := Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	wantStages := []Stage{StageAdmit, StageCache, StageJournal, StageExec, StageOutcome}
	for i, ev := range evs {
		if ev.Stage != wantStages[i] {
			t.Fatalf("event %d stage %v, want %v", i, ev.Stage, wantStages[i])
		}
		if ev.ReqID != "r42" || ev.Tenant != "acme" {
			t.Fatalf("event %d identity %q/%q, want r42/acme", i, ev.ReqID, ev.Tenant)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d seq %d", i, ev.Seq)
		}
	}
	if evs[2].LSN != 9 {
		t.Fatalf("journal event LSN %d, want 9", evs[2].LSN)
	}
	if evs[3].Fuel != 123 || evs[3].Detail != "threaded" {
		t.Fatalf("exec event fuel/engine = %d/%q", evs[3].Fuel, evs[3].Detail)
	}
	if evs[4].DurNS <= 0 {
		t.Fatalf("outcome event has no duration")
	}
}

func TestStageJSONNames(t *testing.T) {
	raw, err := json.Marshal(Event{Stage: StageJournal, Verdict: "durable"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["stage"] != "journal" {
		t.Fatalf("stage marshaled as %v, want \"journal\"", m["stage"])
	}
}

// TestRingConcurrent hammers the ring from many writers while readers
// snapshot it, mirroring the trace ring race test: every snapshot must
// hold contiguous sequence numbers and no torn events (an event's
// request ID must match its verdict's writer).
func TestRingConcurrent(t *testing.T) {
	withRecording(t, true)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for i := 0; i < perWriter; i++ {
				fr := Begin(id, id)
				fr.Event(StageAdmit, Event{Verdict: id, Shard: int32(w), Priority: int8(w)})
				fr.Finish("ok", "", 0)
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := Events()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq != evs[i-1].Seq+1 {
						t.Errorf("non-contiguous seq %d after %d", evs[i].Seq, evs[i-1].Seq)
						return
					}
				}
				for _, ev := range evs {
					if ev.Stage == StageAdmit && ev.Verdict != ev.ReqID {
						t.Errorf("torn event: request %q verdict %q", ev.ReqID, ev.Verdict)
						return
					}
				}
				_ = Exemplars()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if Len() != ringCap {
		t.Fatalf("ring holds %d events after %d records, want full %d", Len(), writers*perWriter*3, ringCap)
	}
}

func TestExemplarErroredRetention(t *testing.T) {
	withRecording(t, true)
	for i := 0; i < errCap+5; i++ {
		fr := Begin(fmt.Sprintf("e%d", i), "t")
		fr.Event(StageAdmit, Event{Verdict: "ok"})
		fr.Finish("sim_panic", "boom", 0)
	}
	set := Exemplars()
	if len(set.Errored) != errCap {
		t.Fatalf("got %d errored exemplars, want the %d most recent", len(set.Errored), errCap)
	}
	// Oldest first: the first 5 must have aged out.
	if set.Errored[0].ReqID != "e5" {
		t.Fatalf("oldest retained errored exemplar is %s, want e5", set.Errored[0].ReqID)
	}
	last := set.Errored[len(set.Errored)-1]
	if last.Outcome != "sim_panic" || len(last.Events) != 2 {
		t.Fatalf("exemplar outcome %q with %d events, want sim_panic with full 2-event chain", last.Outcome, len(last.Events))
	}
}

func TestExemplarSlowestWindow(t *testing.T) {
	withRecording(t, true)
	SetWindow(time.Hour) // no rotation during the test
	// More ok requests than slots: only the slowest survive.  Durations
	// are faked by backdating the start time.
	for i := 0; i < slowCap*3; i++ {
		fr := Begin(fmt.Sprintf("s%d", i), "t")
		fr.start = time.Now().Add(-time.Duration(i+1) * time.Millisecond)
		fr.Event(StageAdmit, Event{Verdict: "ok"})
		fr.Finish("ok", "", uint64(i))
	}
	set := Exemplars()
	if len(set.Slowest) != slowCap {
		t.Fatalf("got %d slowest exemplars, want %d", len(set.Slowest), slowCap)
	}
	for i := 1; i < len(set.Slowest); i++ {
		if set.Slowest[i].DurNS > set.Slowest[i-1].DurNS {
			t.Fatalf("slowest set unsorted at %d", i)
		}
	}
	// The slowest request was the last one submitted (largest backdate).
	if want := fmt.Sprintf("s%d", slowCap*3-1); set.Slowest[0].ReqID != want {
		t.Fatalf("slowest exemplar is %s, want %s", set.Slowest[0].ReqID, want)
	}
	if set.Slowest[0].Flow != uint64(slowCap*3-1) {
		t.Fatalf("exemplar lost its flow/span ID")
	}
}

func TestWindowRotation(t *testing.T) {
	withRecording(t, true)
	SetWindow(time.Nanosecond) // every Finish rotates
	for i := 0; i < 4; i++ {
		fr := Begin(fmt.Sprintf("w%d", i), "t")
		fr.Finish("ok", "", 0)
	}
	set := Exemplars()
	// Current + previous window survive; older windows are discarded.
	if len(set.Slowest) == 0 || len(set.Slowest) > 2 {
		t.Fatalf("got %d slowest exemplars across rotating windows, want 1-2", len(set.Slowest))
	}
}
