// Package flightrec is the per-request black box for the vcoded server:
// a ring-buffered event recorder that captures, per request ID, every
// decision the service made on the way to a response — the admission
// verdict (rate limit, breaker, shed, queue, quota) with the request's
// shed priority, the shard and cache verdict, the journal LSN behind a
// durable ack, the engine and fuel of the sandboxed call, and the final
// outcome code.  After an incident the ring reconstructs the full
// admission→compile→journal→exec→outcome chain for any recent request
// without ever having logged a line.
//
// It follows the same gating discipline as internal/trace and
// internal/telemetry: one global atomic switch, and with it off an
// instrumented call site pays a single atomic load and allocates nothing
// (pinned by a zero-alloc test).  Begin returns nil when disabled and
// every method is nil-receiver-safe, so call sites thread the handle
// unconditionally.  With it on, recording an event is one mutex
// acquisition and a struct copy into a preallocated ring.
//
// On top of the ring sits bounded exemplar capture: the slowest-N
// requests per rolling window and the most recent errored requests keep
// their complete event chain (plus the trace flow/span ID), so the tail
// and the failures stay reconstructible even after the ring has lapped.
package flightrec

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one decision point in a request's life.  The order
// matches the request path: admission control, the shard cache, the
// durability journal, the sandboxed call, the final outcome.
type Stage uint8

const (
	// StageAdmit is the admission verdict: "ok" once past the rate
	// limiter, breaker, shed watermarks, queue bound and tenant quotas,
	// or the typed rejection code.  Priority carries the request's shed
	// priority.
	StageAdmit Stage = iota
	// StageCache is the shard + cache verdict: "hit", "compiled",
	// "coalesced" (another request's flight produced the function) or
	// "error".
	StageCache
	// StageJournal is the durability decision: "durable" with the
	// record's LSN once the group commit fsynced, "degraded" when the
	// journal is failing and the ack goes out non-durable.
	StageJournal
	// StageExec is the sandboxed call: Detail carries the engine name,
	// Fuel the steps consumed, DurNS the call wall time.
	StageExec
	// StageOutcome closes the chain: the response's verdict ("ok" or the
	// error code) and the whole request's wall time.
	StageOutcome

	numStages = int(StageOutcome) + 1
)

var stageNames = [numStages]string{"admit", "cache", "journal", "exec", "outcome"}

func (s Stage) String() string {
	if int(s) < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// MarshalJSON renders the stage by name so bundle consumers (and humans)
// never decode enum ordinals.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the stage name back — bundle tooling round-trips
// rings through JSON.
func (s *Stage) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("flightrec: unknown stage %q", name)
}

// Event is one recorded decision.  It is a fixed-shape struct rather
// than a map so recording never allocates; unused fields are zero.
type Event struct {
	Seq      uint64 `json:"seq"`
	Time     int64  `json:"t_ns"` // ns since the recorder epoch
	Stage    Stage  `json:"stage"`
	ReqID    string `json:"request_id"`
	Tenant   string `json:"tenant"`
	Key      string `json:"key,omitempty"`
	Verdict  string `json:"verdict"`
	Detail   string `json:"detail,omitempty"` // engine name, truncated error
	Shard    int32  `json:"shard"`            // -1 before a shard is chosen
	Priority int8   `json:"priority"`
	Fuel     uint64 `json:"fuel,omitempty"`
	LSN      uint64 `json:"lsn,omitempty"`
	DurNS    int64  `json:"dur_ns,omitempty"`
	// Tier is the execution tier that served a StageExec event: 1
	// interpreted, 2 compiled, 3 superblock-optimized.  Zero on stages
	// where no tier applies (and in rings recorded before the field
	// existed).
	Tier int8 `json:"tier,omitempty"`
}

// enabled is the global gate; see the package comment.
var enabled atomic.Bool

// Enabled reports whether flight recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns flight recording on or off (default off).  The ring
// is allocated lazily on the first event, so a build that never records
// pays no memory.
func SetEnabled(on bool) { enabled.Store(on) }

// epoch anchors event timestamps; time.Since(epoch) uses the monotonic
// clock so events order correctly across wall-clock adjustments.
var epoch = time.Now()

// ringCap bounds the event ring: the most recent ringCap events are
// retained.  Five-ish events per request means the ring holds the last
// ~3000 requests.
const ringCap = 16384

var (
	ringMu  sync.Mutex
	ring    []Event // nil until the first event; len == ringCap after
	ringSeq uint64
)

// chainCap bounds one request's retained chain: admit + cache + journal
// + exec + outcome plus slack for repeated admission events.
const chainCap = 10

// Request is the per-request recording handle.  Begin returns nil when
// recording is disabled and every method no-ops on a nil receiver, so
// call sites never branch.  Handles are pooled; after Finish the handle
// must not be used again.
type Request struct {
	reqID  string
	tenant string
	start  time.Time
	n      int
	events [chainCap]Event
}

var reqPool = sync.Pool{New: func() any { return new(Request) }}

// Begin opens a request chain.  Returns nil (an inert handle) when
// recording is disabled.
func Begin(reqID, tenant string) *Request {
	if !enabled.Load() {
		return nil
	}
	r := reqPool.Get().(*Request)
	r.reqID, r.tenant, r.start, r.n = reqID, tenant, time.Now(), 0
	return r
}

// Event records one decision on the request's chain and in the global
// ring.  The caller fills the stage-specific fields; Seq, Time, ReqID
// and Tenant are stamped here.
func (r *Request) Event(stage Stage, e Event) {
	if r == nil {
		return
	}
	e.Stage = stage
	e.Time = time.Since(epoch).Nanoseconds()
	e.ReqID = r.reqID
	e.Tenant = r.tenant
	ringMu.Lock()
	if ring == nil {
		ring = make([]Event, ringCap)
	}
	e.Seq = ringSeq
	ring[ringSeq%ringCap] = e
	ringSeq++
	ringMu.Unlock()
	if r.n < chainCap {
		r.events[r.n] = e
		r.n++
	}
}

// Finish closes the chain with a StageOutcome event (outcome "ok" or the
// error code, detail the truncated error text, flow the trace span/flow
// ID when known), runs exemplar retention, and returns the handle to the
// pool.  The handle must not be used afterwards.
func (r *Request) Finish(outcome, detail string, flow uint64) {
	if r == nil {
		return
	}
	dur := time.Since(r.start).Nanoseconds()
	r.Event(StageOutcome, Event{Verdict: outcome, Detail: detail, Shard: -1, DurNS: dur})
	retain(r, outcome, flow, dur)
	r.reqID, r.tenant, r.n = "", "", 0
	reqPool.Put(r)
}

// --- exemplars ---

// Exemplar is one retained request: its identity, outcome, the trace
// flow/span ID that joins it to the lifecycle tracer, and a copy of its
// complete event chain.
type Exemplar struct {
	ReqID   string  `json:"request_id"`
	Tenant  string  `json:"tenant"`
	Outcome string  `json:"outcome"`
	Flow    uint64  `json:"flow,omitempty"` // trace span/flow ID
	StartNS int64   `json:"start_ns"`       // ns since the recorder epoch
	DurNS   int64   `json:"dur_ns"`
	Events  []Event `json:"events"`
}

const (
	// slowCap bounds the slowest-request exemplars kept per window.
	slowCap = 8
	// errCap bounds the errored-request exemplars (a ring of the most
	// recent; "every errored request" up to this retention).
	errCap = 32
)

var (
	exMu       sync.Mutex
	exWindow   = int64(60 * time.Second) // rotation period, ns
	exWindowAt int64                     // current window's start, ns since epoch
	slowCur    []Exemplar                // slowest-N of the current window
	slowPrev   []Exemplar                // the completed previous window
	errRing    [errCap]Exemplar
	errSeq     uint64
	exRetained atomic.Uint64 // exemplars admitted (slow + errored)
)

// SetWindow changes the slowest-N rotation window (default 60s).
func SetWindow(d time.Duration) {
	exMu.Lock()
	exWindow = d.Nanoseconds()
	exMu.Unlock()
}

func retain(r *Request, outcome string, flow uint64, dur int64) {
	errored := outcome != "ok"
	now := time.Since(epoch).Nanoseconds()
	exMu.Lock()
	defer exMu.Unlock()
	if now-exWindowAt >= exWindow {
		slowPrev, slowCur = slowCur, nil
		exWindowAt = now
	}
	// Slowest-N admission: fill up, then displace the fastest member.
	slowIdx := -1
	if len(slowCur) < slowCap {
		slowIdx = len(slowCur)
		slowCur = append(slowCur, Exemplar{})
	} else {
		min := 0
		for i := 1; i < len(slowCur); i++ {
			if slowCur[i].DurNS < slowCur[min].DurNS {
				min = i
			}
		}
		if dur > slowCur[min].DurNS {
			slowIdx = min
		}
	}
	if slowIdx < 0 && !errored {
		return
	}
	ex := Exemplar{
		ReqID:   r.reqID,
		Tenant:  r.tenant,
		Outcome: outcome,
		Flow:    flow,
		StartNS: now - dur,
		DurNS:   dur,
		Events:  append([]Event(nil), r.events[:r.n]...),
	}
	if slowIdx >= 0 {
		slowCur[slowIdx] = ex
		exRetained.Add(1)
	}
	if errored {
		errRing[errSeq%errCap] = ex
		errSeq++
		exRetained.Add(1)
	}
}

// ExemplarSet is the Exemplars snapshot.
type ExemplarSet struct {
	// Slowest merges the current and previous windows, slowest first.
	Slowest []Exemplar `json:"slowest"`
	// Errored is the retained errored requests, oldest first.
	Errored []Exemplar `json:"errored"`
}

// Exemplars snapshots the retained exemplars.
func Exemplars() ExemplarSet {
	exMu.Lock()
	defer exMu.Unlock()
	var set ExemplarSet
	set.Slowest = append(append([]Exemplar(nil), slowCur...), slowPrev...)
	for i := 0; i+1 < len(set.Slowest); i++ {
		for j := i + 1; j < len(set.Slowest); j++ {
			if set.Slowest[j].DurNS > set.Slowest[i].DurNS {
				set.Slowest[i], set.Slowest[j] = set.Slowest[j], set.Slowest[i]
			}
		}
	}
	n := errSeq
	if n > errCap {
		n = errCap
	}
	for i := errSeq - n; i < errSeq; i++ {
		set.Errored = append(set.Errored, errRing[i%errCap])
	}
	return set
}

// Retained reports how many exemplars were ever admitted.
func Retained() uint64 { return exRetained.Load() }

// Events snapshots the ring, oldest first.
func Events() []Event {
	ringMu.Lock()
	defer ringMu.Unlock()
	n := ringSeq
	if n > ringCap {
		n = ringCap
	}
	out := make([]Event, 0, n)
	for i := ringSeq - n; i < ringSeq; i++ {
		out = append(out, ring[i%ringCap])
	}
	return out
}

// Len reports how many events are currently retained (bounded by the
// ring capacity regardless of how many were ever recorded).
func Len() int {
	ringMu.Lock()
	defer ringMu.Unlock()
	if ringSeq > ringCap {
		return ringCap
	}
	return int(ringSeq)
}

// Reset discards all recorded events and exemplars (ring memory kept).
func Reset() {
	ringMu.Lock()
	ringSeq = 0
	ringMu.Unlock()
	exMu.Lock()
	slowCur, slowPrev = nil, nil
	errSeq = 0
	exWindowAt = time.Since(epoch).Nanoseconds()
	exMu.Unlock()
}
