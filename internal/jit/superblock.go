package jit

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/superblock"
	"repro/internal/trace"
)

// SuperblockConfig enables the third execution tier: once a function has
// stayed hot past its tier-2 compile, its portable-emission recording is
// re-formed into a profile-guided superblock (internal/superblock) and
// installed alongside the tier-2 body.  Calls run the optimized trace;
// side-exit counters are polled for bias flips and a flipped function is
// de-optimized back to tier 2, its edge profile reset, and re-promoted
// once the fresh profile is decisive again.
type SuperblockConfig struct {
	// Threshold is how many calls past the tier-2 Threshold a function
	// must reach before formation is attempted.  Zero selects 100.
	Threshold int64
	// Edges supplies branch bias and is reset on de-optimization.  It
	// must be attached to the Adaptive's core machine; without it no
	// branch is ever decisive and no superblock installs.
	Edges *profile.EdgeProfiler
	// DeoptFactor triggers de-optimization when observed side exits
	// exceed DeoptFactor × tier-3 calls.  A healthy loop exits its trace
	// about once per call, so the factor measures exits per call; a
	// flipped branch inside a loop exits once per iteration and crosses
	// any small factor immediately.  Zero selects 8.
	DeoptFactor uint64
	// PollEvery is the tier-3 call period between side-exit counter
	// polls.  Zero selects 64.
	PollEvery int64
	// Cooldown is how many additional calls a de-optimized (or
	// failed-to-form) function waits before formation is retried, giving
	// the reset profile time to become decisive.  Zero selects
	// 2×Threshold.
	Cooldown int64
	// Options tunes formation; its CounterAddr is ignored (the tier
	// allocates one counter word per function in simulated memory).
	Options superblock.Options
}

func (c SuperblockConfig) withDefaults() SuperblockConfig {
	if c.Threshold == 0 {
		c.Threshold = 100
	}
	if c.DeoptFactor == 0 {
		c.DeoptFactor = 8
	}
	if c.PollEvery == 0 {
		c.PollEvery = 64
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2 * c.Threshold
	}
	return c
}

// tier3state is one function's superblock lifecycle.  fn is nil while the
// function is on tier 2 (not yet formed, formation failed, or deopted);
// retryAt is the hot-count at which formation may be attempted again
// (math.MaxInt64 = never, for recordings that cannot replay).
type tier3state struct {
	mu      sync.RWMutex
	fn      *core.Func
	counter uint64 // side-exit counter word (simulated memory), 0 until allocated
	exits   uint64 // counter value at the last poll
	calls   atomic.Int64
	retryAt atomic.Int64
}

// EnableSuperblocks turns on the tier-3 superblock pipeline.  Not safe to
// call concurrently with Call.
func (ad *Adaptive) EnableSuperblocks(cfg SuperblockConfig) {
	c := cfg.withDefaults()
	ad.sb = &c
}

// Superblocked reports whether f currently runs its tier-3 body.
func (ad *Adaptive) Superblocked(f *Func) bool {
	sti, ok := ad.sbState.Load(ad.key(f))
	if !ok {
		return false
	}
	st := sti.(*tier3state)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fn != nil
}

// runCompiled is the tier-2/tier-3 dispatch for a hot function whose
// compiled body fn2 is resident: it runs the superblock body when one is
// installed (polling its side-exit counter), and otherwise runs tier 2,
// kicking background formation once the call count warrants it.
func (ad *Adaptive) runCompiled(key string, f *Func, fn2 *core.Func, n int64, args ...int32) (int32, uint64, error) {
	cfg := ad.sb
	if cfg == nil {
		return ad.m.Run(fn2, args...)
	}
	sti, ok := ad.sbState.Load(key)
	if !ok {
		if n >= int64(ad.Threshold)+cfg.Threshold {
			ad.formSuperblock(key, f, fn2)
		}
		return ad.m.Run(fn2, args...)
	}
	st := sti.(*tier3state)
	st.mu.RLock()
	fn3 := st.fn
	st.mu.RUnlock()
	if fn3 == nil {
		if n >= st.retryAt.Load() {
			ad.formSuperblock(key, f, fn2)
		}
		return ad.m.Run(fn2, args...)
	}
	if calls := st.calls.Add(1); calls%cfg.PollEvery == 0 {
		ad.pollSideExits(key, st, fn2, calls)
	}
	return ad.m.Run(fn3, args...)
}

// pollSideExits reads the function's side-exit counter and de-optimizes
// when exits outrun calls by the configured factor: the tier-3 body is
// uninstalled, the stale edge profile over the tier-2 body is discarded so
// retraining starts clean, and formation is retried after the cooldown.
func (ad *Adaptive) pollSideExits(key string, st *tier3state, fn2 *core.Func, calls int64) {
	cfg := ad.sb
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fn == nil || st.counter == 0 {
		return
	}
	mem := ad.m.Core().Mem()
	exits, err := mem.Load(st.counter, 4)
	if err != nil {
		return
	}
	if d := exits - st.exits; d > 0 {
		superblock.NoteSideExits(d)
	}
	st.exits = exits
	if exits <= cfg.DeoptFactor*uint64(calls) {
		return
	}
	// Bias flip: back to tier 2.
	old := st.fn
	st.fn = nil
	st.exits = 0
	st.calls.Store(0)
	_ = mem.Store(st.counter, 4, 0)
	_ = ad.m.Core().Uninstall(old)
	superblock.NoteDeopt()
	if cfg.Edges != nil && fn2.Addr() != 0 {
		cfg.Edges.ResetSpan(fn2.Addr(), fn2.Addr()+uint64(fn2.SizeBytes()))
	}
	st.retryAt.Store(ad.hot.Get(key) + cfg.Cooldown)
}

// formSuperblock runs formation in the background (one flight per key):
// re-derive the tier-2 recording, form against the live edge profile,
// compile, install, and publish.  Failure modes park the state: recordings
// that cannot replay never retry; indecisive profiles retry after the
// cooldown with more training data.
func (ad *Adaptive) formSuperblock(key string, f *Func, fn2 *core.Func) {
	if _, inflight := ad.sbForming.LoadOrStore(key, struct{}{}); inflight {
		return
	}
	ad.promoteWG.Add(1)
	go func() {
		defer ad.promoteWG.Done()
		defer ad.sbForming.Delete(key)
		cfg := ad.sb
		bk := ad.backendOf()
		sti, _ := ad.sbState.LoadOrStore(key, &tier3state{})
		st := sti.(*tier3state)
		park := func(until int64) {
			st.retryAt.Store(until)
		}
		sp := trace.Begin(trace.KindSuperblock, bk.Name(), f.Name)

		// Re-derive the portable-emission recording.  CompileInto is
		// deterministic, so the recording's event sites are the word
		// indices of the installed tier-2 body and the edge profile's
		// PCs line up as fn2.Addr() + 4*site.
		a := core.NewAsm(bk)
		a.Record(true)
		if _, err := CompileInto(a, f); err != nil {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "compile-error"})
			park(math.MaxInt64)
			return
		}
		rec := a.TakeRecording()
		if rec == nil {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "no-recording"})
			park(math.MaxInt64)
			return
		}
		if ok, _ := rec.Eligible(); !ok {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "ineligible"})
			park(math.MaxInt64)
			return
		}

		st.mu.Lock()
		if st.counter == 0 {
			if addr, err := ad.m.Core().Alloc(8); err == nil {
				st.counter = addr
			}
		}
		counter := st.counter
		st.mu.Unlock()
		if counter == 0 {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "no-counter"})
			park(ad.hot.Get(key) + cfg.Cooldown)
			return
		}

		bias := func(site int) (uint64, uint64, bool) {
			if cfg.Edges == nil {
				return 0, 0, false
			}
			return cfg.Edges.EdgeAt(fn2.Addr() + 4*uint64(site))
		}
		opt := cfg.Options
		opt.CounterAddr = counter
		plan, err := superblock.Form(rec, bias, opt)
		if err != nil {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "form-error"})
			park(math.MaxInt64)
			return
		}
		if !plan.Interesting() {
			// Nothing decisive yet: keep training, retry later.
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "indecisive"})
			park(ad.hot.Get(key) + cfg.Cooldown)
			return
		}
		fn3, _, err := plan.Compile(core.NewAsm(bk))
		if err != nil {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "emit-error"})
			park(math.MaxInt64)
			return
		}
		if err := ad.m.Core().Install(fn3); err != nil {
			sp.End(fn2.TraceFlow(), trace.Attrs{Verdict: "install-error"})
			park(ad.hot.Get(key) + cfg.Cooldown)
			return
		}
		_ = ad.m.Core().Mem().Store(counter, 4, 0)
		st.mu.Lock()
		st.exits = 0
		st.calls.Store(0)
		st.fn = fn3
		st.mu.Unlock()
		superblock.NoteInstalled()
		sp.End(fn3.TraceFlow(), trace.Attrs{
			N: int64(plan.TraceBlocks()), Bytes: int64(fn3.SizeBytes()), Verdict: "installed"})
	}()
}

// backendOf returns the machine's backend for tier-3 re-emission.
func (ad *Adaptive) backendOf() core.Backend { return ad.m.backend }
