package jit

import (
	"fmt"
	"testing"

	"repro/internal/batch"
	"repro/internal/mem"
)

// TestAdaptivePoolPromotion drives the pool-backed promotion path: the
// call that crosses the threshold hands the compile to the batch pool
// and keeps interpreting; once the background promotion lands, calls
// run machine code.
func TestAdaptivePoolPromotion(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	p, err := batch.New(batch.Config{Machine: m.Core(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ad := NewAdaptive(m, 3)
	ad.SetPool(p)
	f := FibIter()
	want := refFib(20)

	// Cold and threshold-crossing calls all interpret; none may block on
	// a compile, and every one must return the right answer.
	var interpCycles uint64
	for i := 0; i < 6; i++ {
		got, cycles, err := ad.Call(f, 20)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("call %d: got %d, want %d", i, got, want)
		}
		if i == 0 {
			interpCycles = cycles
		}
	}

	ad.WaitPromotions()
	if !ad.Compiled(f) {
		t.Fatal("background promotion did not land")
	}
	got, hotCycles, err := ad.Call(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("compiled call: got %d, want %d", got, want)
	}
	if hotCycles*2 >= interpCycles {
		t.Errorf("compiled call should be much cheaper: interp %d, hot %d", interpCycles, hotCycles)
	}

	// However many hot calls raced the in-flight promotion, the function
	// compiled exactly once.
	if mets := ad.Metrics(); mets.Compiles != 1 || mets.Warmed != 1 {
		t.Fatalf("compiles=%d warmed=%d, want 1/1", mets.Compiles, mets.Warmed)
	}
}

// TestAdaptivePoolConcurrent hammers pool-backed promotion from many
// goroutines under -race: every call returns the right answer whether
// it interpreted, raced the promotion, or ran compiled code.
func TestAdaptivePoolConcurrent(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	p, err := batch.New(batch.Config{Machine: m.Core(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ad := NewAdaptive(m, 2)
	ad.SetPool(p)
	progs := []*Func{FibIter(), SumSquares()}
	wantFib := refFib(15)
	wantSum := int32(0)
	for i := int32(1); i <= 15; i++ {
		wantSum += i * i
	}

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 25; i++ {
				f := progs[(w+i)%len(progs)]
				want := wantFib
				if f == progs[1] {
					want = wantSum
				}
				got, _, err := ad.Call(f, 15)
				if err != nil {
					done <- err
					return
				}
				if got != want {
					done <- fmt.Errorf("got %d, want %d", got, want)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	ad.WaitPromotions()
	for _, f := range progs {
		if !ad.Compiled(f) {
			t.Fatalf("%s never promoted", f.Name)
		}
	}
	if mets := ad.Metrics(); mets.Compiles != 2 {
		t.Fatalf("compiles=%d, want 2 (one per program)", mets.Compiles)
	}
}
