package jit

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// BenchmarkRun measures end-to-end call throughput (marshal + simulate +
// result) for the warm-cache hot path on both execution engines — the
// number behind cgbench's cache.calls_per_sec and exec.calls_per_sec.
func BenchmarkRun(b *testing.B) {
	for _, backend := range []string{"mips", "sparc", "alpha"} {
		for _, engine := range []core.Engine{core.EngineSwitch, core.EngineThreaded} {
			b.Run(fmt.Sprintf("%s/%s", backend, engine), func(b *testing.B) {
				m, err := NewMachineTarget(backend, mem.Uncosted)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Core().SetEngine(engine); err != nil {
					b.Fatal(err)
				}
				fn, err := m.Compile(Synthetic(1))
				if err != nil {
					b.Fatal(err)
				}
				if got, _, err := m.Run(fn, 10); err != nil || got != 395 {
					b.Fatalf("warmup: got %d, %v; want 395", got, err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := m.Run(fn, 10); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
