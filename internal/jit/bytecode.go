// Package jit demonstrates the paper's motivating use of dynamic code
// generation (§1, §2): an interpreter that strips its layer of
// interpretation by compiling bytecode to machine code at runtime.  The
// abstract's claim is that runtime information can "improve performance
// by up to an order of magnitude"; BenchmarkJIT* at the repository root
// measures our interpreter against its VCODE-compiled output under the
// same machine cost model.
//
// The bytecode is a small stack machine.  Because the operand-stack depth
// at every program point is statically determined, the JIT assigns each
// stack slot a VCODE register at compile time — the paper's central
// recipe: clients do the expensive reasoning (here: stack-to-register
// assignment) at their own "compile time", leaving VCODE the simple job
// of in-place instruction emission.
package jit

import (
	"fmt"
	"strings"

	"repro/internal/codecache"
)

// Op is a bytecode opcode.
type Op byte

// The instruction set of the stack machine.
const (
	OpPushK    Op = iota // push consts[A]
	OpLoadArg            // push args[A]
	OpLoadVar            // push locals[A]
	OpStoreVar           // locals[A] = pop
	OpAdd                // push(pop2 + pop1)
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpLt // comparisons push 0/1
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpJmp // pc = A
	OpJz  // if pop == 0: pc = A
	OpRet // return pop
)

var opNames = [...]string{
	"pushk", "loadarg", "loadvar", "storevar",
	"add", "sub", "mul", "div", "mod", "neg",
	"lt", "le", "gt", "ge", "eq", "ne",
	"jmp", "jz", "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Insn is one bytecode instruction.
type Insn struct {
	Op Op
	A  int
}

// Func is a bytecode function.
type Func struct {
	Name   string
	NArgs  int
	NVars  int
	Consts []int32
	Code   []Insn
}

// CacheKey returns a content hash of everything that determines the
// compiled code — arity, locals, constants and bytecode, but not Name —
// so two functions with identical bodies share a code-cache entry.
func (f *Func) CacheKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "jit|%d|%d|%v|", f.NArgs, f.NVars, f.Consts)
	for _, in := range f.Code {
		fmt.Fprintf(&sb, "%d,%d;", in.Op, in.A)
	}
	return codecache.HashKey(sb.String())
}

// stackEffect returns pops and pushes for an opcode.
func stackEffect(o Op) (pops, pushes int) {
	switch o {
	case OpPushK, OpLoadArg, OpLoadVar:
		return 0, 1
	case OpStoreVar, OpJz, OpRet:
		return 1, 0
	case OpNeg:
		return 1, 1
	case OpJmp:
		return 0, 0
	default: // binary ops
		return 2, 1
	}
}

// Validate checks structural sanity and computes the stack depth at every
// instruction; conflicting depths at a join point are an error (the same
// property the JIT's register assignment relies on).  It returns the
// maximum operand-stack depth.
func (f *Func) Validate() (int, error) {
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = -1
	}
	max := 0
	var walk func(pc, d int) error
	walk = func(pc, d int) error {
		for pc < len(f.Code) {
			if d > max {
				max = d
			}
			if depth[pc] >= 0 {
				if depth[pc] != d {
					return fmt.Errorf("jit: %s: depth mismatch at pc %d (%d vs %d)", f.Name, pc, depth[pc], d)
				}
				return nil
			}
			depth[pc] = d
			in := f.Code[pc]
			pops, pushes := stackEffect(in.Op)
			if d < pops {
				return fmt.Errorf("jit: %s: stack underflow at pc %d", f.Name, pc)
			}
			d = d - pops + pushes
			switch in.Op {
			case OpPushK:
				if in.A < 0 || in.A >= len(f.Consts) {
					return fmt.Errorf("jit: %s: bad constant index at pc %d", f.Name, pc)
				}
			case OpLoadArg:
				if in.A < 0 || in.A >= f.NArgs {
					return fmt.Errorf("jit: %s: bad arg index at pc %d", f.Name, pc)
				}
			case OpLoadVar, OpStoreVar:
				if in.A < 0 || in.A >= f.NVars {
					return fmt.Errorf("jit: %s: bad var index at pc %d", f.Name, pc)
				}
			case OpJmp:
				if in.A < 0 || in.A >= len(f.Code) {
					return fmt.Errorf("jit: %s: bad jump target at pc %d", f.Name, pc)
				}
				pc = in.A
				continue
			case OpJz:
				if in.A < 0 || in.A >= len(f.Code) {
					return fmt.Errorf("jit: %s: bad branch target at pc %d", f.Name, pc)
				}
				if err := walk(in.A, d); err != nil {
					return err
				}
			case OpRet:
				return nil
			}
			pc++
		}
		return fmt.Errorf("jit: %s: fell off the end", f.Name)
	}
	if err := walk(0, 0); err != nil {
		return 0, err
	}
	return max, nil
}

// --- the interpreter being stripped ---

// Interpreter cost model (cycles per dynamic operation on the modelled
// DEC5000-class machine): a threaded interpreter pays fetch/decode/
// dispatch on every bytecode plus the operation itself.
const (
	jitDispatch = 7
	jitALUCost  = 1
	jitMulCost  = 12
	jitDivCost  = 35
	jitMemCost  = 2 // stack/local traffic
)

// Interp executes f directly, returning the result and the modelled
// cycle cost.
func Interp(f *Func, args ...int32) (int32, uint64, error) {
	r, cycles, _, err := InterpCounted(f, args...)
	return r, cycles, err
}

// InterpCounted is Interp, additionally counting loop backedges (control
// transfers to a lower-or-equal pc).  Backedges approximate basic-block
// heat: one call that spins a million-iteration loop reports a million
// backedges, which lets the adaptive JIT promote on block heat rather
// than call counts alone.
func InterpCounted(f *Func, args ...int32) (int32, uint64, int64, error) {
	if len(args) != f.NArgs {
		return 0, 0, 0, fmt.Errorf("jit: %s takes %d args", f.Name, f.NArgs)
	}
	var cycles uint64
	var backedges int64
	stack := make([]int32, 0, 16)
	vars := make([]int32, f.NVars)
	pop := func() int32 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	pc := 0
	for steps := 0; ; steps++ {
		if steps > 1<<26 {
			return 0, cycles, backedges, fmt.Errorf("jit: %s: runaway", f.Name)
		}
		if pc < 0 || pc >= len(f.Code) {
			return 0, cycles, backedges, fmt.Errorf("jit: %s: pc out of range", f.Name)
		}
		in := f.Code[pc]
		cycles += jitDispatch
		switch in.Op {
		case OpPushK:
			stack = append(stack, f.Consts[in.A])
			cycles += jitMemCost
		case OpLoadArg:
			stack = append(stack, args[in.A])
			cycles += jitMemCost
		case OpLoadVar:
			stack = append(stack, vars[in.A])
			cycles += jitMemCost
		case OpStoreVar:
			vars[in.A] = pop()
			cycles += jitMemCost
		case OpNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]
			cycles += jitALUCost
		case OpJmp:
			if in.A <= pc {
				backedges++
			}
			pc = in.A
			cycles += jitALUCost
			continue
		case OpJz:
			if pop() == 0 {
				if in.A <= pc {
					backedges++
				}
				pc = in.A
				cycles += jitALUCost
				continue
			}
			cycles += jitALUCost
		case OpRet:
			return pop(), cycles, backedges, nil
		default:
			b, a := pop(), pop()
			var r int32
			switch in.Op {
			case OpAdd:
				r = a + b
				cycles += jitALUCost
			case OpSub:
				r = a - b
				cycles += jitALUCost
			case OpMul:
				r = a * b
				cycles += jitMulCost
			case OpDiv:
				if b != 0 {
					if !(a == -2147483648 && b == -1) {
						r = a / b
					} else {
						r = a
					}
				}
				cycles += jitDivCost
			case OpMod:
				if b != 0 && !(a == -2147483648 && b == -1) {
					r = a % b
				}
				cycles += jitDivCost
			case OpLt:
				r = b2i(a < b)
				cycles += jitALUCost
			case OpLe:
				r = b2i(a <= b)
				cycles += jitALUCost
			case OpGt:
				r = b2i(a > b)
				cycles += jitALUCost
			case OpGe:
				r = b2i(a >= b)
				cycles += jitALUCost
			case OpEq:
				r = b2i(a == b)
				cycles += jitALUCost
			case OpNe:
				r = b2i(a != b)
				cycles += jitALUCost
			default:
				return 0, cycles, backedges, fmt.Errorf("jit: %s: bad opcode %v at pc %d", f.Name, in.Op, pc)
			}
			stack = append(stack, r)
		}
		pc++
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
