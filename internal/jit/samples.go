package jit

import "fmt"

// Sample bytecode programs used by tests, the benchmark and the example.

// FibIter is iterative fibonacci: fib(n).
//
//	a = 0; b = 1;
//	while (n > 0) { t = a + b; a = b; b = t; n = n - 1 }
//	return a
func FibIter() *Func {
	// vars: 0=a 1=b 2=t 3=n
	return &Func{
		Name:   "fib",
		NArgs:  1,
		NVars:  4,
		Consts: []int32{0, 1},
		Code: []Insn{
			{OpPushK, 0}, {OpStoreVar, 0}, // a = 0
			{OpPushK, 1}, {OpStoreVar, 1}, // b = 1
			{OpLoadArg, 0}, {OpStoreVar, 3}, // n = arg0
			// loop head (pc 6)
			{OpLoadVar, 3}, {OpPushK, 0}, {OpGt, 0}, {OpJz, 23},
			{OpLoadVar, 0}, {OpLoadVar, 1}, {OpAdd, 0}, {OpStoreVar, 2}, // t = a+b
			{OpLoadVar, 1}, {OpStoreVar, 0}, // a = b
			{OpLoadVar, 2}, {OpStoreVar, 1}, // b = t
			{OpLoadVar, 3}, {OpPushK, 1}, {OpSub, 0}, {OpStoreVar, 3}, // n--
			{OpJmp, 6},
			// done (pc 23)
			{OpLoadVar, 0}, {OpRet, 0},
		},
	}
}

// SumSquares computes sum i*i for i in 1..n.
func SumSquares() *Func {
	// vars: 0=acc 1=i
	return &Func{
		Name:   "sumsq",
		NArgs:  1,
		NVars:  2,
		Consts: []int32{0, 1},
		Code: []Insn{
			{OpPushK, 0}, {OpStoreVar, 0},
			{OpPushK, 1}, {OpStoreVar, 1},
			// head (pc 4): while (i <= n)
			{OpLoadVar, 1}, {OpLoadArg, 0}, {OpLe, 0}, {OpJz, 19},
			{OpLoadVar, 0}, {OpLoadVar, 1}, {OpLoadVar, 1}, {OpMul, 0},
			{OpAdd, 0}, {OpStoreVar, 0},
			{OpLoadVar, 1}, {OpPushK, 1}, {OpAdd, 0}, {OpStoreVar, 1},
			{OpJmp, 4},
			// done (pc 19)
			{OpLoadVar, 0}, {OpRet, 0},
		},
	}
}

// Gcd computes gcd(a, b) with Euclid's algorithm.
func Gcd() *Func {
	// vars: 0=a 1=b 2=t
	return &Func{
		Name:   "gcd",
		NArgs:  2,
		NVars:  3,
		Consts: []int32{0},
		Code: []Insn{
			{OpLoadArg, 0}, {OpStoreVar, 0},
			{OpLoadArg, 1}, {OpStoreVar, 1},
			// head (pc 4): while (b != 0)
			{OpLoadVar, 1}, {OpPushK, 0}, {OpNe, 0}, {OpJz, 17},
			{OpLoadVar, 0}, {OpLoadVar, 1}, {OpMod, 0}, {OpStoreVar, 2}, // t = a % b
			{OpLoadVar, 1}, {OpStoreVar, 0}, // a = b
			{OpLoadVar, 2}, {OpStoreVar, 1}, // b = t
			{OpJmp, 4},
			// done (pc 17)
			{OpLoadVar, 0}, {OpRet, 0},
		},
	}
}

// Synthetic builds a family of distinct bytecode functions for cache
// benchmarking: Synthetic(k) computes sum of (i*i + k) for i in 1..n, so
// every k yields different code (distinct cache key) of identical shape,
// and Synthetic(k)(n) == SumSquares()(n) + n*k checks the cache returned
// the right code for the key.
func Synthetic(k int32) *Func {
	// vars: 0=acc 1=i
	return &Func{
		Name:   fmt.Sprintf("syn%d", k),
		NArgs:  1,
		NVars:  2,
		Consts: []int32{0, 1, k},
		Code: []Insn{
			{OpPushK, 0}, {OpStoreVar, 0},
			{OpPushK, 1}, {OpStoreVar, 1},
			// head (pc 4): while (i <= n)
			{OpLoadVar, 1}, {OpLoadArg, 0}, {OpLe, 0}, {OpJz, 21},
			{OpLoadVar, 0}, {OpLoadVar, 1}, {OpLoadVar, 1}, {OpMul, 0},
			{OpPushK, 2}, {OpAdd, 0},
			{OpAdd, 0}, {OpStoreVar, 0},
			{OpLoadVar, 1}, {OpPushK, 1}, {OpAdd, 0}, {OpStoreVar, 1},
			{OpJmp, 4},
			// done (pc 21)
			{OpLoadVar, 0}, {OpRet, 0},
		},
	}
}

// BiasedLoop runs a 100-iteration loop whose inner branch direction
// depends only on the argument: acc += 1 when x < 50, else acc += 2.
// Calls with x on one side of 50 train a decisive edge profile (the
// superblock tier straightens the hot arm); switching sides afterwards
// drives every iteration through the side exit, which is the bias-flip
// signal the de-optimizer polls for.  BiasedLoop()(x<50) == 100,
// otherwise 200.
func BiasedLoop() *Func {
	// vars: 0=acc 1=i
	return &Func{
		Name:   "biased",
		NArgs:  1,
		NVars:  2,
		Consts: []int32{0, 1, 2, 50, 100},
		Code: []Insn{
			{OpPushK, 0}, {OpStoreVar, 0}, // acc = 0
			{OpPushK, 0}, {OpStoreVar, 1}, // i = 0
			// head (pc 4): while (i < 100)
			{OpLoadVar, 1}, {OpPushK, 4}, {OpLt, 0}, {OpJz, 26},
			// if (x < 50) acc += 1 else acc += 2
			{OpLoadArg, 0}, {OpPushK, 3}, {OpLt, 0}, {OpJz, 17},
			{OpLoadVar, 0}, {OpPushK, 1}, {OpAdd, 0}, {OpStoreVar, 0},
			{OpJmp, 21},
			{OpLoadVar, 0}, {OpPushK, 2}, {OpAdd, 0}, {OpStoreVar, 0}, // pc 17
			// cont (pc 21): i++
			{OpLoadVar, 1}, {OpPushK, 1}, {OpAdd, 0}, {OpStoreVar, 1},
			{OpJmp, 4},
			// done (pc 26)
			{OpLoadVar, 0}, {OpRet, 0},
		},
	}
}

// Poly evaluates 3x^2 - 4x + 7 with straight-line stack code.
func Poly() *Func {
	return &Func{
		Name:   "poly",
		NArgs:  1,
		NVars:  0,
		Consts: []int32{3, 4, 7},
		Code: []Insn{
			{OpPushK, 0}, {OpLoadArg, 0}, {OpMul, 0}, {OpLoadArg, 0}, {OpMul, 0},
			{OpPushK, 1}, {OpLoadArg, 0}, {OpMul, 0}, {OpSub, 0},
			{OpPushK, 2}, {OpAdd, 0},
			{OpRet, 0},
		},
	}
}
