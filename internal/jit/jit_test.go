package jit

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func refFib(n int32) int32 {
	a, b := int32(0), int32(1)
	for ; n > 0; n-- {
		a, b = b, a+b
	}
	return a
}

func TestInterpSamples(t *testing.T) {
	for _, tc := range []struct {
		f    *Func
		args []int32
		want int32
	}{
		{FibIter(), []int32{10}, 55},
		{FibIter(), []int32{0}, 0},
		{SumSquares(), []int32{5}, 55},
		{Gcd(), []int32{1071, 462}, 21},
		{Poly(), []int32{10}, 267},
	} {
		got, _, err := Interp(tc.f, tc.args...)
		if err != nil {
			t.Fatalf("%s: %v", tc.f.Name, err)
		}
		if got != tc.want {
			t.Errorf("interp %s%v = %d, want %d", tc.f.Name, tc.args, got, tc.want)
		}
	}
}

// TestJITAgreesWithInterp compiles every sample and cross-checks against
// interpretation over a range of inputs.
func TestJITAgreesWithInterp(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	for _, f := range []*Func{FibIter(), SumSquares(), Gcd(), Poly()} {
		fn, err := m.Compile(f)
		if err != nil {
			t.Fatalf("compile %s: %v", f.Name, err)
		}
		for trial := int32(0); trial < 12; trial++ {
			args := make([]int32, f.NArgs)
			for i := range args {
				args[i] = trial*7 + int32(i) + 1
			}
			want, _, err := Interp(f, args...)
			if err != nil {
				t.Fatalf("interp %s: %v", f.Name, err)
			}
			got, _, err := m.Run(fn, args...)
			if err != nil {
				t.Fatalf("run %s: %v", f.Name, err)
			}
			if got != want {
				t.Errorf("%s%v: jit %d, interp %d", f.Name, args, got, want)
			}
		}
	}
}

// TestJITQuickFib property-tests fib over its defined range.
func TestJITQuickFib(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	fn, err := m.Compile(FibIter())
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint8) bool {
		x := int32(n % 40)
		got, _, err := m.Run(fn, x)
		return err == nil && got == refFib(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestJITSpeedup pins the motivating result: compiled code beats the
// interpreter by several-fold under the same cost model.
func TestJITSpeedup(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	f := FibIter()
	fn, err := m.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	_, icycles, err := Interp(f, 30)
	if err != nil {
		t.Fatal(err)
	}
	_, ccycles, err := m.Run(fn, 30)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(icycles) / float64(ccycles); ratio < 4 {
		t.Errorf("JIT speedup only %.1fx (interp %d vs compiled %d cycles)", ratio, icycles, ccycles)
	}
}

// TestValidateErrors exercises the verifier.
func TestValidateErrors(t *testing.T) {
	bad := []*Func{
		{Name: "underflow", Code: []Insn{{OpAdd, 0}, {OpRet, 0}}, Consts: []int32{0}},
		{Name: "offend", Code: []Insn{{OpPushK, 0}}, Consts: []int32{0}},
		{Name: "badconst", Code: []Insn{{OpPushK, 3}, {OpRet, 0}}, Consts: []int32{0}},
		{Name: "badjump", Code: []Insn{{OpJmp, 99}}},
		{Name: "depthjoin", Consts: []int32{0, 1},
			Code: []Insn{
				{OpPushK, 0}, {OpJz, 3}, {OpPushK, 1}, // join at 3 with depth 0 vs 1
				{OpPushK, 0}, {OpRet, 0},
			}},
	}
	for _, f := range bad {
		if _, err := f.Validate(); err == nil {
			t.Errorf("%s validated without error", f.Name)
		}
	}
}

// TestAdaptive checks the interpret-then-compile lifecycle: cold calls
// interpret, the threshold triggers compilation, and results never
// change across the transition.
func TestAdaptive(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	ad := NewAdaptive(m, 5)
	f := FibIter()
	var coldCycles, hotCycles uint64
	for i := 0; i < 10; i++ {
		got, cycles, err := ad.Call(f, 20)
		if err != nil {
			t.Fatal(err)
		}
		if got != refFib(20) {
			t.Fatalf("call %d: got %d", i, got)
		}
		wantCompiled := i >= 5
		if ad.Compiled(f) != wantCompiled {
			t.Fatalf("call %d: compiled=%v, want %v", i, ad.Compiled(f), wantCompiled)
		}
		if i == 0 {
			coldCycles = cycles
		}
		if i == 9 {
			hotCycles = cycles
		}
	}
	if hotCycles*2 >= coldCycles {
		t.Errorf("compiled calls should be much cheaper: cold %d, hot %d", coldCycles, hotCycles)
	}
	if ad.Calls(f) != 10 {
		t.Errorf("call count %d", ad.Calls(f))
	}
}

// TestJITOnAllTargets retargets the bytecode compiler and checks results
// agree across ports.
func TestJITOnAllTargets(t *testing.T) {
	for _, target := range []string{"mips", "sparc", "alpha"} {
		m, err := NewMachineTarget(target, mem.Uncosted)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []*Func{FibIter(), SumSquares(), Gcd(), Poly()} {
			fn, err := m.Compile(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", target, f.Name, err)
			}
			args := []int32{17}
			if f.NArgs == 2 {
				args = []int32{84, 18}
			}
			want, _, err := Interp(f, args...)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := m.Run(fn, args...)
			if err != nil {
				t.Fatalf("%s/%s: %v", target, f.Name, err)
			}
			if got != want {
				t.Errorf("%s/%s%v = %d, interp %d", target, f.Name, args, got, want)
			}
		}
	}
}

// TestAdaptiveConcurrent promotes the same functions from many
// goroutines: results must stay correct, and single-flight must collapse
// the racing promotions into one compile per distinct function
// (meaningful chiefly under -race).
func TestAdaptiveConcurrent(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	ad := NewAdaptive(m, 3)
	progs := []*Func{FibIter(), SumSquares(), Gcd()}
	wantFib, wantSum := refFib(15), int32(0)
	for i := int32(1); i <= 15; i++ {
		wantSum += i * i
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				f := progs[(w+i)%len(progs)]
				var got, want int32
				var err error
				switch f {
				case progs[0]:
					got, _, err = ad.Call(f, 15)
					want = wantFib
				case progs[1]:
					got, _, err = ad.Call(f, 15)
					want = wantSum
				default:
					got, _, err = ad.Call(f, 36, 24)
					want = 12
				}
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("%s: got %d, want %d", f.Name, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := ad.Metrics()
	if s.Compiles != uint64(len(progs)) {
		t.Errorf("compiles = %d, want %d (single-flight must coalesce)", s.Compiles, len(progs))
	}
	if total := int(s.Hits + s.Misses + s.Coalesced); total == 0 {
		t.Error("no cache traffic recorded")
	}
	if ad.Calls(progs[0]) == 0 {
		t.Error("call counting lost under concurrency")
	}
}

// TestConcurrentRunCycles pins the statistics fix: per-call cycle counts
// come from CallStats deltas taken under the machine lock, so concurrent
// Runs of a deterministic function must all report the identical cost —
// with the old reset-the-CPU-counters scheme, interleaved calls would
// corrupt each other's numbers.
func TestConcurrentRunCycles(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	fn, err := m.Compile(Synthetic(1))
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := m.Run(fn, 50)
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("baseline call reported zero cycles")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, cycles, err := m.Run(fn, 50)
				if err != nil {
					t.Error(err)
					return
				}
				if cycles != want {
					t.Errorf("concurrent call cost %d cycles, want %d", cycles, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestInterpCountedBackedges: FibIter's loop takes one backward jump per
// iteration, so fib(n) interprets with exactly n backedges; straight-line
// code takes none.
func TestInterpCountedBackedges(t *testing.T) {
	_, _, backedges, err := InterpCounted(FibIter(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if backedges != 20 {
		t.Errorf("fib(20) backedges = %d, want 20", backedges)
	}
	_, _, backedges, err = InterpCounted(Poly(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if backedges != 0 {
		t.Errorf("poly backedges = %d, want 0 (straight-line)", backedges)
	}
	// Interp must agree with InterpCounted on results and cycles.
	r1, c1, err := Interp(FibIter(), 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, c2, _, err := InterpCounted(FibIter(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || c1 != c2 {
		t.Errorf("Interp (%d, %d) disagrees with InterpCounted (%d, %d)", r1, c1, r2, c2)
	}
}

// TestAdaptiveBlockPromotion: with a call threshold that would never
// trigger, block heat alone must promote a function whose single call
// spins a long loop — the paper's motivating case for profile-directed
// compilation.
func TestAdaptiveBlockPromotion(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	ad := NewAdaptive(m, 1<<30) // call count alone never promotes
	ad.BlockThreshold = 50

	f := FibIter()
	if _, _, err := ad.Call(f, 100); err != nil { // 100 backedges >= 50
		t.Fatal(err)
	}
	if ad.Compiled(f) {
		t.Fatal("compiled during the first (interpreted) call")
	}
	got, _, err := ad.Call(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Compiled(f) {
		t.Errorf("block heat %d >= %d did not promote", ad.Blocks().GetByName(f.Name), ad.BlockThreshold)
	}
	if got != refFib(20) {
		t.Errorf("post-promotion result %d, want %d", got, refFib(20))
	}

	// Cold loops below the threshold must keep interpreting.
	g := SumSquares()
	for i := 0; i < 3; i++ {
		if _, _, err := ad.Call(g, 10); err != nil { // 10 backedges/call
			t.Fatal(err)
		}
	}
	if ad.Compiled(g) {
		t.Errorf("block heat %d < %d promoted anyway", ad.Blocks().GetByName(g.Name), ad.BlockThreshold)
	}

	// Disabled (zero) threshold: never promotes on blocks.
	ad2 := NewAdaptive(m, 1<<30)
	if _, _, err := ad2.Call(FibIter(), 1000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ad2.Call(FibIter(), 1000); err != nil {
		t.Fatal(err)
	}
	if ad2.Compiled(FibIter()) {
		t.Error("BlockThreshold=0 must disable block promotion")
	}
}
