package jit

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/profile"
)

// sbAdaptive builds an Adaptive with an attached stride-1 edge profiler
// and the superblock tier enabled with small, test-friendly thresholds.
func sbAdaptive(t *testing.T) (*Adaptive, *profile.EdgeProfiler) {
	t.Helper()
	m := NewMachine(mem.DEC5000)
	ad := NewAdaptive(m, 3)
	ep := profile.NewEdgeProfiler(1)
	if err := ep.Attach(m.Core()); err != nil {
		t.Fatalf("attach edge profiler: %v", err)
	}
	ad.EnableSuperblocks(SuperblockConfig{
		Threshold:   8,
		Edges:       ep,
		DeoptFactor: 8,
		PollEvery:   2,
		Cooldown:    6,
	})
	return ad, ep
}

// settle drains background promotions (tier-2 compiles and tier-3
// formations both ride promoteWG).
func settle(ad *Adaptive) { ad.WaitPromotions() }

// callChecked runs f(x) and asserts the result, whatever tier served it.
func callChecked(t *testing.T, ad *Adaptive, f *Func, x, want int32) {
	t.Helper()
	got, _, err := ad.Call(f, x)
	if err != nil {
		t.Fatalf("%s(%d): %v", f.Name, x, err)
	}
	if got != want {
		t.Fatalf("%s(%d) = %d, want %d", f.Name, x, got, want)
	}
}

// TestSuperblockPromotes drives BiasedLoop hot with a stable bias and
// checks the function climbs all three tiers, with results identical on
// each.
func TestSuperblockPromotes(t *testing.T) {
	ad, _ := sbAdaptive(t)
	f := BiasedLoop()
	for i := 0; i < 40; i++ {
		callChecked(t, ad, f, 10, 100)
		settle(ad)
	}
	if !ad.Compiled(f) {
		t.Fatal("function never reached tier 2")
	}
	if !ad.Superblocked(f) {
		t.Fatal("function never reached tier 3")
	}
	// Tier-3 results stay correct for both arms (cold arm runs through
	// the side exit into the unmodified cold copy).
	callChecked(t, ad, f, 10, 100)
	callChecked(t, ad, f, 90, 200)
}

// TestSuperblockDeoptAndRepromote flips the branch bias under an
// installed superblock: every iteration now leaves through the side exit,
// the poll detects exits outrunning calls, the tier-3 body is evicted (no
// stale predecoded body may survive — results must stay correct through
// demotion), the edge profile retrains, and the function re-promotes onto
// a superblock formed for the NEW bias.
func TestSuperblockDeoptAndRepromote(t *testing.T) {
	ad, _ := sbAdaptive(t)
	f := BiasedLoop()

	// Phase 1: train x<50 until tier 3 lands.
	for i := 0; i < 40 && !ad.Superblocked(f); i++ {
		callChecked(t, ad, f, 10, 100)
		settle(ad)
	}
	if !ad.Superblocked(f) {
		t.Fatal("function never reached tier 3")
	}

	// Phase 2: flip the bias.  Each call exits the trace ~100 times; the
	// counter poll (every 2 calls) must demote quickly.
	deopted := false
	for i := 0; i < 30; i++ {
		callChecked(t, ad, f, 90, 200)
		if !ad.Superblocked(f) {
			deopted = true
			break
		}
	}
	if !deopted {
		t.Fatal("bias flip never de-optimized")
	}
	// Demoted execution is tier 2: still correct, for both arms.
	callChecked(t, ad, f, 90, 200)
	callChecked(t, ad, f, 10, 100)

	// Phase 3: keep the new bias hot; after the cooldown the retrained
	// profile is decisive the other way and tier 3 re-forms.  The old
	// body was uninstalled, so the reinstall must execute fresh code —
	// a stale predecoded body would produce phase-1 results here.
	repromoted := false
	for i := 0; i < 60; i++ {
		callChecked(t, ad, f, 90, 200)
		settle(ad)
		if ad.Superblocked(f) {
			repromoted = true
			break
		}
	}
	if !repromoted {
		t.Fatal("function never re-promoted after retraining")
	}
	callChecked(t, ad, f, 90, 200)
	callChecked(t, ad, f, 10, 100)
}

// TestBlockHeatScopedToIdentity is the regression test for block-heat
// promotion reading heat by display name: two different functions sharing
// a name must not promote each other.  The cold twin here has the same
// name but different code; the hot one's backedge heat must not promote
// it.
func TestBlockHeatScopedToIdentity(t *testing.T) {
	m := NewMachine(mem.DEC5000)
	ad := NewAdaptive(m, 1<<30) // call counts never promote
	ad.BlockThreshold = 500

	hot := SumSquares()
	cold := FibIter()
	cold.Name = hot.Name // same display name, different content

	// Drive the hot function's block heat well past the threshold.
	for i := 0; i < 8; i++ {
		if _, _, err := ad.Call(hot, 200); err != nil {
			t.Fatal(err)
		}
	}
	if !ad.Compiled(hot) {
		t.Fatal("hot function should promote on block heat")
	}
	// One call of the same-named cold function: under the old
	// name-merged heat it promoted immediately; identity-scoped heat
	// keeps it interpreted.
	if _, _, err := ad.Call(cold, 5); err != nil {
		t.Fatal(err)
	}
	if ad.Compiled(cold) {
		t.Fatal("cold same-named function cross-promoted on the hot twin's block heat")
	}
}
