package jit

import (
	"context"
	"fmt"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
	"repro/internal/trace"
)

// Machine owns a simulated target for JIT-compiled bytecode.  Compile may
// run from any number of goroutines; Run serializes on the single
// simulated CPU (inside core.Machine), and per-call cycle costs come from
// the machine's CallStats deltas — no stat reset, and so no reset race
// between concurrent Runs.
type Machine struct {
	machine *core.Machine
	backend core.Backend
	cpu     core.CPU
	conf    mem.MachineConfig
}

// NewMachine builds a MIPS JIT target with the given cost model.
func NewMachine(conf mem.MachineConfig) *Machine {
	m, _ := NewMachineTarget("mips", conf)
	return m
}

// NewMachineTarget builds a JIT target on any of the three ports — the
// JIT's compiler is written against the portable VCODE set, so it
// retargets for free.
func NewMachineTarget(target string, conf mem.MachineConfig) (*Machine, error) {
	var bk core.Backend
	var cpu core.CPU
	var m *mem.Memory
	var err error
	switch target {
	case "mips":
		if m, err = conf.Build(false); err != nil {
			return nil, err
		}
		bk = mips.New()
		cpu = mips.NewCPU(m)
	case "sparc":
		if m, err = conf.Build(true); err != nil {
			return nil, err
		}
		bk = sparc.New()
		cpu = sparc.NewCPU(m)
	case "alpha":
		if m, err = conf.Build(false); err != nil {
			return nil, err
		}
		bk = alpha.New()
		cpu = alpha.NewCPU(m)
	default:
		return nil, fmt.Errorf("jit: unknown target %q", target)
	}
	return &Machine{machine: core.NewMachine(bk, cpu, m), backend: bk, cpu: cpu, conf: conf}, nil
}

// Compile translates a bytecode function to machine code.  Every operand
// stack slot and local variable is assigned a VCODE register at compile
// time; stack traffic disappears entirely.
func (m *Machine) Compile(f *Func) (*core.Func, error) {
	return CompileInto(core.NewAsm(m.backend), f)
}

// CompileInto is Compile emitting into a caller-supplied assembler, so
// callers that compile many functions (the batch pipeline's per-worker
// buffers) amortize the assembler's buffer and bookkeeping allocations
// across functions.  The assembler must be idle (not mid-build); the
// returned Func does not alias it.
func CompileInto(a *core.Asm, f *Func) (*core.Func, error) {
	backend := a.Backend()
	comp := trace.Begin(trace.KindCompile, backend.Name(), f.Name)
	maxDepth, err := f.Validate()
	if err != nil {
		return nil, err
	}
	a.SetName(f.Name)
	params := make([]core.Type, f.NArgs)
	for i := range params {
		params[i] = core.TypeI
	}
	args, err := a.BeginTypes(params, core.Leaf)
	if err != nil {
		return nil, err
	}

	// Register assignment: locals first (persistent), then one register
	// per operand-stack slot (temporaries — the stack is empty across
	// no call, and this machine has no calls).
	ra := trace.Begin(trace.KindRegalloc, backend.Name(), f.Name)
	vars := make([]core.Reg, f.NVars)
	for i := range vars {
		if vars[i], err = a.GetReg(core.Var); err != nil {
			return nil, fmt.Errorf("jit: %s: locals exceed registers: %w", f.Name, err)
		}
	}
	slots := make([]core.Reg, maxDepth)
	for i := range slots {
		if slots[i], err = a.GetReg(core.Temp); err != nil {
			return nil, fmt.Errorf("jit: %s: stack depth %d exceeds registers: %w", f.Name, maxDepth, err)
		}
	}
	ra.End(a.TraceFlow(), trace.Attrs{N: int64(len(vars) + len(slots))})

	labels := make([]core.Label, len(f.Code))
	needLabel := make([]bool, len(f.Code))
	for _, in := range f.Code {
		if in.Op == OpJmp || in.Op == OpJz {
			needLabel[in.A] = true
		}
	}
	for pc := range f.Code {
		if needLabel[pc] {
			labels[pc] = a.NewLabel()
		}
	}

	ty := core.TypeI
	depth := 0
	for pc, in := range f.Code {
		if needLabel[pc] {
			a.Bind(labels[pc])
		}
		switch in.Op {
		case OpPushK:
			a.Seti(slots[depth], int64(f.Consts[in.A]))
			depth++
		case OpLoadArg:
			a.Movi(slots[depth], args[in.A])
			depth++
		case OpLoadVar:
			a.Movi(slots[depth], vars[in.A])
			depth++
		case OpStoreVar:
			depth--
			a.Movi(vars[in.A], slots[depth])
		case OpNeg:
			a.Negi(slots[depth-1], slots[depth-1])
		case OpJmp:
			a.Jmp(labels[in.A])
			depth = -1 // unreachable until next label; re-established below
		case OpJz:
			depth--
			a.Beqii(slots[depth], 0, labels[in.A])
		case OpRet:
			a.Reti(slots[depth-1])
			depth = -1
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			op := map[Op]core.Op{OpAdd: core.OpAdd, OpSub: core.OpSub,
				OpMul: core.OpMul, OpDiv: core.OpDiv, OpMod: core.OpMod}[in.Op]
			a.ALU(op, ty, slots[depth-2], slots[depth-2], slots[depth-1])
			depth--
		case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
			op := map[Op]core.Op{OpLt: core.OpBlt, OpLe: core.OpBle, OpGt: core.OpBgt,
				OpGe: core.OpBge, OpEq: core.OpBeq, OpNe: core.OpBne}[in.Op]
			set1 := a.NewLabel()
			a.Br(op, ty, slots[depth-2], slots[depth-1], set1)
			// Fall-through: 0; taken: 1.  Use the same slot.
			done := a.NewLabel()
			a.Seti(slots[depth-2], 0)
			a.Jmp(done)
			a.Bind(set1)
			a.Seti(slots[depth-2], 1)
			a.Bind(done)
			depth--
		default:
			return nil, fmt.Errorf("jit: %s: unhandled opcode %v", f.Name, in.Op)
		}
		if depth < 0 {
			// After an unconditional transfer the depth is whatever
			// the next labelled instruction was validated at; recover
			// it lazily.
			depth = depthAfter(f, pc+1)
		}
	}
	fn, err := a.End()
	if err != nil {
		return nil, err
	}
	comp.End(fn.TraceFlow(), trace.Attrs{N: int64(len(f.Code)), Bytes: int64(fn.SizeBytes())})
	return fn, nil
}

// depthAfter recomputes the validated stack depth at instruction pc
// (0 when pc is past the end or unreachable).
func depthAfter(f *Func, pc int) int {
	depths := map[int]int{}
	var walk func(p, d int)
	walk = func(p, d int) {
		for p < len(f.Code) {
			if _, seen := depths[p]; seen {
				return
			}
			depths[p] = d
			in := f.Code[p]
			pops, pushes := stackEffect(in.Op)
			d = d - pops + pushes
			switch in.Op {
			case OpJmp:
				p = in.A
				continue
			case OpJz:
				walk(in.A, d)
			case OpRet:
				return
			}
			p++
		}
	}
	walk(0, 0)
	if d, ok := depths[pc]; ok {
		return d
	}
	return 0
}

// Core exposes the underlying simulated machine (the code cache binds to
// it so eviction can free installed code).
func (m *Machine) Core() *core.Machine { return m.machine }

// Run executes a compiled function on the simulator, returning the result
// and cycle cost.
func (m *Machine) Run(fn *core.Func, args ...int32) (int32, uint64, error) {
	return m.RunWith(context.Background(), core.CallOpts{}, fn, args...)
}

// RunContext is Run with cancellation: the simulator run loop observes
// ctx's deadline on a stride.
func (m *Machine) RunContext(ctx context.Context, fn *core.Func, args ...int32) (int32, uint64, error) {
	return m.RunWith(ctx, core.CallOpts{}, fn, args...)
}

// RunWith executes with the full sandbox (context plus per-call fuel).
// The returned cycle count is this call's simulator delta (CallStats), so
// concurrent Runs never clobber each other's statistics.
func (m *Machine) RunWith(ctx context.Context, opts core.CallOpts, fn *core.Func, args ...int32) (int32, uint64, error) {
	vals := make([]core.Value, len(args))
	for i, a := range args {
		vals[i] = core.I(a)
	}
	got, stats, err := m.machine.CallWithStats(ctx, opts, fn, vals...)
	if err != nil {
		return 0, 0, err
	}
	return int32(got.Int()), stats.Cycles, nil
}

// Micros converts cycles under the machine's clock.
func (m *Machine) Micros(c uint64) float64 { return m.conf.Micros(c) }
