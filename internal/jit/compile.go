package jit

import (
	"context"
	"fmt"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
	"repro/internal/trace"
)

// Machine owns a simulated target for JIT-compiled bytecode.  Compile may
// run from any number of goroutines; Run serializes on the single
// simulated CPU (inside core.Machine), and per-call cycle costs come from
// the machine's CallStats deltas — no stat reset, and so no reset race
// between concurrent Runs.
type Machine struct {
	machine *core.Machine
	backend core.Backend
	cpu     core.CPU
	conf    mem.MachineConfig
}

// NewMachine builds a MIPS JIT target with the given cost model.
func NewMachine(conf mem.MachineConfig) *Machine {
	m, _ := NewMachineTarget("mips", conf)
	return m
}

// NewMachineTarget builds a JIT target on any of the three ports — the
// JIT's compiler is written against the portable VCODE set, so it
// retargets for free.
func NewMachineTarget(target string, conf mem.MachineConfig) (*Machine, error) {
	var bk core.Backend
	var cpu core.CPU
	var m *mem.Memory
	var err error
	switch target {
	case "mips":
		if m, err = conf.Build(false); err != nil {
			return nil, err
		}
		bk = mips.New()
		cpu = mips.NewCPU(m)
	case "sparc":
		if m, err = conf.Build(true); err != nil {
			return nil, err
		}
		bk = sparc.New()
		cpu = sparc.NewCPU(m)
	case "alpha":
		if m, err = conf.Build(false); err != nil {
			return nil, err
		}
		bk = alpha.New()
		cpu = alpha.NewCPU(m)
	default:
		return nil, fmt.Errorf("jit: unknown target %q", target)
	}
	return &Machine{machine: core.NewMachine(bk, cpu, m), backend: bk, cpu: cpu, conf: conf}, nil
}

// Compile translates a bytecode function to machine code.  Every operand
// stack slot and local variable is assigned a VCODE register at compile
// time; stack traffic disappears entirely.
func (m *Machine) Compile(f *Func) (*core.Func, error) {
	return CompileInto(core.NewAsm(m.backend), f)
}

// CompileInto is Compile emitting into a caller-supplied assembler, so
// callers that compile many functions (the batch pipeline's per-worker
// buffers) amortize the assembler's buffer and bookkeeping allocations
// across functions.  The assembler must be idle (not mid-build); the
// returned Func does not alias it.
func CompileInto(a *core.Asm, f *Func) (*core.Func, error) {
	backend := a.Backend()
	comp := trace.Begin(trace.KindCompile, backend.Name(), f.Name)
	maxDepth, err := f.Validate()
	if err != nil {
		return nil, err
	}
	a.SetName(f.Name)
	params := make([]core.Type, f.NArgs)
	for i := range params {
		params[i] = core.TypeI
	}
	args, err := a.BeginTypes(params, core.Leaf)
	if err != nil {
		return nil, err
	}

	// Register assignment: locals first (persistent), then one register
	// per operand-stack slot (temporaries — the stack is empty across
	// no call, and this machine has no calls).
	ra := trace.Begin(trace.KindRegalloc, backend.Name(), f.Name)
	vars := make([]core.Reg, f.NVars)
	for i := range vars {
		if vars[i], err = a.GetReg(core.Var); err != nil {
			return nil, fmt.Errorf("jit: %s: locals exceed registers: %w", f.Name, err)
		}
	}
	slots := make([]core.Reg, maxDepth)
	for i := range slots {
		if slots[i], err = a.GetReg(core.Temp); err != nil {
			return nil, fmt.Errorf("jit: %s: stack depth %d exceeds registers: %w", f.Name, maxDepth, err)
		}
	}
	ra.End(a.TraceFlow(), trace.Attrs{N: int64(len(vars) + len(slots))})

	labels := make([]core.Label, len(f.Code))
	needLabel := make([]bool, len(f.Code))
	for _, in := range f.Code {
		if in.Op == OpJmp || in.Op == OpJz {
			needLabel[in.A] = true
		}
	}
	for pc := range f.Code {
		if needLabel[pc] {
			labels[pc] = a.NewLabel()
		}
	}

	// Copy propagation: OpLoadVar/OpLoadArg do not emit a Movi into
	// their stack slot.  Instead the slot records the source register as
	// an alias, and consumers read the var/arg register directly — the
	// Movi only materializes if the value must survive past a point where
	// the alias could go stale (the var is overwritten) or where the
	// canonical slot assignment is observable (a control-flow join).
	alias := make([]core.Reg, maxDepth)
	aliased := make([]bool, maxDepth)
	src := func(d int) core.Reg {
		if aliased[d] {
			return alias[d]
		}
		return slots[d]
	}
	// spill materializes every live aliased slot below d into its
	// canonical register, so code reached through a label (which assumes
	// the canonical assignment) sees the right values.
	spill := func(d int) {
		for j := 0; j < d && j < maxDepth; j++ {
			if aliased[j] {
				a.Movi(slots[j], alias[j])
				aliased[j] = false
			}
		}
	}
	clearAliases := func() {
		for j := range aliased {
			aliased[j] = false
		}
	}

	ty := core.TypeI
	depth := 0
	skip := false
	for pc, in := range f.Code {
		if skip {
			// Second half of a fused compare+jz pair (never a label
			// target — fusion requires that).
			skip = false
			continue
		}
		if needLabel[pc] {
			// Fall-through into a join point: canonicalize first, then
			// forget aliases (the other predecessors did the same).
			spill(depth)
			clearAliases()
			a.Bind(labels[pc])
		}
		switch in.Op {
		case OpPushK:
			a.Seti(slots[depth], int64(f.Consts[in.A]))
			aliased[depth] = false
			depth++
		case OpLoadArg:
			alias[depth], aliased[depth] = args[in.A], true
			depth++
		case OpLoadVar:
			alias[depth], aliased[depth] = vars[in.A], true
			depth++
		case OpStoreVar:
			depth--
			// Any live slot still aliasing this var must be
			// materialized before the var changes under it.
			for j := 0; j < depth; j++ {
				if aliased[j] && alias[j] == vars[in.A] {
					a.Movi(slots[j], alias[j])
					aliased[j] = false
				}
			}
			if from := src(depth); from != vars[in.A] {
				a.Movi(vars[in.A], from)
			}
			aliased[depth] = false
		case OpNeg:
			a.Negi(slots[depth-1], src(depth-1))
			aliased[depth-1] = false
		case OpJmp:
			spill(depth)
			a.Jmp(labels[in.A])
			depth = -1 // unreachable until next label; re-established below
		case OpJz:
			depth--
			cond := src(depth)
			spill(depth)
			a.Beqii(cond, 0, labels[in.A])
			aliased[depth] = false
		case OpRet:
			a.Reti(src(depth - 1))
			depth = -1
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			op := map[Op]core.Op{OpAdd: core.OpAdd, OpSub: core.OpSub,
				OpMul: core.OpMul, OpDiv: core.OpDiv, OpMod: core.OpMod}[in.Op]
			a.ALU(op, ty, slots[depth-2], src(depth-2), src(depth-1))
			aliased[depth-2] = false
			depth--
		case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
			// Peephole: a comparison feeding directly into OpJz fuses
			// into one inverted conditional branch — the materialized
			// 0/1 flag, its re-test, and two jumps all disappear.  Only
			// legal when the OpJz is not itself a branch target (a
			// jump landing there expects a flag on the stack).
			if pc+1 < len(f.Code) && f.Code[pc+1].Op == OpJz && !needLabel[pc+1] {
				inv := map[Op]core.Op{OpLt: core.OpBge, OpLe: core.OpBgt, OpGt: core.OpBle,
					OpGe: core.OpBlt, OpEq: core.OpBne, OpNe: core.OpBeq}[in.Op]
				sa, sb := src(depth-2), src(depth-1)
				depth -= 2
				spill(depth)
				a.Br(inv, ty, sa, sb, labels[f.Code[pc+1].A])
				aliased[depth], aliased[depth+1] = false, false
				skip = true
				continue
			}
			op := map[Op]core.Op{OpLt: core.OpBlt, OpLe: core.OpBle, OpGt: core.OpBgt,
				OpGe: core.OpBge, OpEq: core.OpBeq, OpNe: core.OpBne}[in.Op]
			set1 := a.NewLabel()
			a.Br(op, ty, src(depth-2), src(depth-1), set1)
			// Fall-through: 0; taken: 1.  Use the same slot.
			done := a.NewLabel()
			a.Seti(slots[depth-2], 0)
			a.Jmp(done)
			a.Bind(set1)
			a.Seti(slots[depth-2], 1)
			a.Bind(done)
			aliased[depth-2] = false
			depth--
		default:
			return nil, fmt.Errorf("jit: %s: unhandled opcode %v", f.Name, in.Op)
		}
		if depth < 0 {
			// After an unconditional transfer the depth is whatever
			// the next labelled instruction was validated at; recover
			// it lazily.
			depth = depthAfter(f, pc+1)
			clearAliases()
		}
	}
	fn, err := a.End()
	if err != nil {
		return nil, err
	}
	comp.End(fn.TraceFlow(), trace.Attrs{N: int64(len(f.Code)), Bytes: int64(fn.SizeBytes())})
	return fn, nil
}

// depthAfter recomputes the validated stack depth at instruction pc
// (0 when pc is past the end or unreachable).
func depthAfter(f *Func, pc int) int {
	depths := map[int]int{}
	var walk func(p, d int)
	walk = func(p, d int) {
		for p < len(f.Code) {
			if _, seen := depths[p]; seen {
				return
			}
			depths[p] = d
			in := f.Code[p]
			pops, pushes := stackEffect(in.Op)
			d = d - pops + pushes
			switch in.Op {
			case OpJmp:
				p = in.A
				continue
			case OpJz:
				walk(in.A, d)
			case OpRet:
				return
			}
			p++
		}
	}
	walk(0, 0)
	if d, ok := depths[pc]; ok {
		return d
	}
	return 0
}

// Core exposes the underlying simulated machine (the code cache binds to
// it so eviction can free installed code).
func (m *Machine) Core() *core.Machine { return m.machine }

// Run executes a compiled function on the simulator, returning the result
// and cycle cost.
func (m *Machine) Run(fn *core.Func, args ...int32) (int32, uint64, error) {
	return m.RunWith(context.Background(), core.CallOpts{}, fn, args...)
}

// RunContext is Run with cancellation: the simulator run loop observes
// ctx's deadline on a stride.
func (m *Machine) RunContext(ctx context.Context, fn *core.Func, args ...int32) (int32, uint64, error) {
	return m.RunWith(ctx, core.CallOpts{}, fn, args...)
}

// RunWith executes with the full sandbox (context plus per-call fuel).
// The returned cycle count is this call's simulator delta (CallStats), so
// concurrent Runs never clobber each other's statistics.
func (m *Machine) RunWith(ctx context.Context, opts core.CallOpts, fn *core.Func, args ...int32) (int32, uint64, error) {
	// Marshal through a small stack buffer: Run sits on the warm-cache
	// hot path, and a per-call slice allocation is measurable there.
	var buf [8]core.Value
	vals := buf[:0]
	if len(args) > len(buf) {
		vals = make([]core.Value, 0, len(args))
	}
	for _, a := range args {
		vals = append(vals, core.I(a))
	}
	got, stats, err := m.machine.CallWithStats(ctx, opts, fn, vals...)
	if err != nil {
		return 0, 0, err
	}
	return int32(got.Int()), stats.Cycles, nil
}

// Micros converts cycles under the machine's clock.
func (m *Machine) Micros(c uint64) float64 { return m.conf.Micros(c) }
