package jit

import "repro/internal/core"

// Adaptive is the full shape of the paper's best-known application of
// dynamic code generation (§1): an interpreter "that compiles frequently
// used code to machine code and then executes it directly".  Functions
// are interpreted until they have run Threshold times; the next call
// compiles them with VCODE and every call thereafter executes machine
// code.
type Adaptive struct {
	m *Machine
	// Threshold is the call count at which a function becomes hot.
	Threshold int

	counts   map[*Func]int
	compiled map[*Func]*core.Func
}

// NewAdaptive wraps a JIT machine.
func NewAdaptive(m *Machine, threshold int) *Adaptive {
	return &Adaptive{
		m:         m,
		Threshold: threshold,
		counts:    map[*Func]int{},
		compiled:  map[*Func]*core.Func{},
	}
}

// Compiled reports whether f has been compiled yet.
func (ad *Adaptive) Compiled(f *Func) bool { return ad.compiled[f] != nil }

// Calls returns how many times f has been invoked through the wrapper.
func (ad *Adaptive) Calls(f *Func) int { return ad.counts[f] }

// Call runs f, interpreting while it is cold and compiling it once it
// crosses the threshold.  It returns the result and the modelled cycle
// cost of this call.
func (ad *Adaptive) Call(f *Func, args ...int32) (int32, uint64, error) {
	ad.counts[f]++
	if fn := ad.compiled[f]; fn != nil {
		return ad.m.Run(fn, args...)
	}
	if ad.counts[f] > ad.Threshold {
		fn, err := ad.m.Compile(f)
		if err != nil {
			return 0, 0, err
		}
		if err := ad.m.machine.Install(fn); err != nil {
			return 0, 0, err
		}
		ad.compiled[f] = fn
		return ad.m.Run(fn, args...)
	}
	return Interp(f, args...)
}
