package jit

import (
	"context"
	"sync"

	"repro/internal/batch"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/profile"
)

// Adaptive is the full shape of the paper's best-known application of
// dynamic code generation (§1): an interpreter "that compiles frequently
// used code to machine code and then executes it directly".  Functions
// are interpreted until they have run Threshold times; the next call
// compiles them with VCODE and every call thereafter executes machine
// code.
//
// Compiled code lives in a codecache.Cache keyed by bytecode content, so
// concurrent promotions of the same function coalesce into one compile,
// capacity-driven eviction reclaims simulator code memory, and two Funcs
// with identical bytecode share one compilation.  Adaptive is safe for
// concurrent use.
type Adaptive struct {
	m *Machine
	// Threshold is the call count at which a function becomes hot.
	Threshold int
	// BlockThreshold, when positive, also promotes on block heat: a
	// function whose accumulated loop backedges (interpreted calls) plus
	// estimated branch resolutions (edge-profiled compiled runs) reach it
	// compiles on the next call even if its call count is still cold.
	// One call spinning a million-iteration loop promotes this way; it
	// never would on call counts alone.
	BlockThreshold int64

	cache *codecache.Cache

	// pool, when set, takes over promotion compiles: a hot function is
	// handed to the batch pipeline in the background while the caller
	// keeps interpreting, so crossing the threshold never blocks a call
	// on compile+install latency.  Nil means promotion compiles inline
	// (the classic blocking behaviour).
	pool *batch.Pool
	// promoting tracks keys with a background promotion in flight so a
	// hot function is submitted once, not once per call.
	promoting sync.Map // key (string) -> struct{}
	promoteWG sync.WaitGroup

	// hot is the shared hot-count table (profile.HotCounts): one atomic
	// bump per call replaces the old mutex-guarded count map, and the
	// profiler joins the same counts into its reports.
	hot *profile.HotCounts
	// blocks accumulates per-function block heat under the same content
	// key (interpreter backedges feed it directly; an attached
	// profile.EdgeProfiler may feed it too via SetHotCounts(ad.Blocks())).
	blocks *profile.HotCounts

	keys sync.Map // *Func -> memoized content hash (string)

	// sb, when set (EnableSuperblocks), adds the third tier: hot compiled
	// functions are re-formed into profile-guided superblocks.
	sb        *SuperblockConfig
	sbState   sync.Map // key (string) -> *tier3state
	sbForming sync.Map // key (string) -> struct{} (formation in flight)
}

// NewAdaptive wraps a JIT machine with a cache bounded at 128 compiled
// functions; use NewAdaptiveCache to tune capacity or share a cache.
func NewAdaptive(m *Machine, threshold int) *Adaptive {
	return NewAdaptiveCache(m, threshold,
		codecache.New(codecache.Config{Machine: m.Core(), MaxEntries: 128}))
}

// NewAdaptiveCache wraps a JIT machine with an explicit code cache.  The
// cache must be bound to m.Core() (or to no machine at all, in which case
// compiled functions install lazily on first call).
func NewAdaptiveCache(m *Machine, threshold int, cache *codecache.Cache) *Adaptive {
	return &Adaptive{
		m:         m,
		Threshold: threshold,
		cache:     cache,
		hot:       profile.NewHotCounts(),
		blocks:    profile.NewHotCounts(),
	}
}

// SetPool routes promotion compiles through a batch pool: once a
// function crosses the threshold it is submitted to the pool in the
// background and the triggering call (and every call until the compile
// lands) keeps interpreting.  The pool must install into the same
// core.Machine the Adaptive runs on.  Pass nil to restore inline
// (blocking) promotion.  SetPool is not safe to call concurrently with
// Call.
func (ad *Adaptive) SetPool(p *batch.Pool) { ad.pool = p }

// WaitPromotions blocks until every background promotion submitted so
// far has settled (landed in the cache or failed).  Tests and shutdown
// paths use it; steady-state callers never need to.
func (ad *Adaptive) WaitPromotions() { ad.promoteWG.Wait() }

// promote hands f's compile to the pool unless a promotion for the same
// key is already in flight.  The WarmUp path claims the cache entry
// before compiling, so GetOrCompile callers arriving while the pool
// works coalesce onto this flight instead of compiling inline.
func (ad *Adaptive) promote(key string, f *Func) {
	if _, inflight := ad.promoting.LoadOrStore(key, struct{}{}); inflight {
		return
	}
	ad.promoteWG.Add(1)
	go func() {
		defer ad.promoteWG.Done()
		defer ad.promoting.Delete(key)
		// Errors land in the cache's negative-cache/metrics; the function
		// simply stays interpreted and a later hot call retries.
		ad.cache.WarmUp(context.Background(), ad.pool, []codecache.WarmItem{{
			Key:     key,
			Compile: func(a *core.Asm) (*core.Func, error) { return CompileInto(a, f) },
		}})
	}()
}

// Cache exposes the underlying code cache (for metrics and sharing).
func (ad *Adaptive) Cache() *codecache.Cache { return ad.cache }

// Metrics snapshots the cache counters.
func (ad *Adaptive) Metrics() codecache.Metrics { return ad.cache.Snapshot() }

// Hot exposes the invocation-count table, keyed by bytecode content
// hash; a profiler links it with SetHotCounts to show calls alongside
// samples.
func (ad *Adaptive) Hot() *profile.HotCounts { return ad.hot }

// Blocks exposes the block-heat table.  Link an edge profiler with
// e.SetHotCounts(ad.Blocks()) so compiled-code branch activity keeps
// feeding the same promotion signal the interpreter's backedge counts
// seed.
func (ad *Adaptive) Blocks() *profile.HotCounts { return ad.blocks }

// key memoizes f's content hash (hashing bytecode on every call would
// erase the win of calling compiled code).
func (ad *Adaptive) key(f *Func) string {
	if k, ok := ad.keys.Load(f); ok {
		return k.(string)
	}
	k, _ := ad.keys.LoadOrStore(f, f.CacheKey())
	return k.(string)
}

// Compiled reports whether f's code is resident in the cache.
func (ad *Adaptive) Compiled(f *Func) bool { return ad.cache.Contains(ad.key(f)) }

// Calls returns how many times f has been invoked through the wrapper
// (two Funcs with identical bytecode share a count, as they share a
// compilation).
func (ad *Adaptive) Calls(f *Func) int { return int(ad.hot.Get(ad.key(f))) }

// Call runs f, interpreting while it is cold and compiling it once it
// crosses the threshold.  It returns the result and the modelled cycle
// cost of this call.
func (ad *Adaptive) Call(f *Func, args ...int32) (int32, uint64, error) {
	key := ad.key(f)
	n := ad.hot.Inc(key, f.Name)

	hot := int(n) > ad.Threshold || ad.cache.Contains(key)
	if !hot && ad.BlockThreshold > 0 {
		// Block-heat check last (it walks a sync.Map; the cheap paths
		// above decide most calls).  The interpreter's backedge entry is
		// keyed by content hash and an edge profiler's by "edge:"+name;
		// summing exactly those two keys scopes the signal to THIS
		// function's identity — the old GetByName merge summed every
		// entry sharing a display name, so a hot function in one tenant
		// could promote a cold same-named function in another.
		hot = ad.blocks.Get(key)+ad.blocks.Get("edge:"+f.Name) >= ad.BlockThreshold
	}
	if hot {
		if ad.pool != nil {
			// Pool mode: run compiled code when it has landed; otherwise
			// kick the background promotion and keep interpreting — the
			// hot call never blocks on compile+install latency.
			if fn, ok := ad.cache.Get(key); ok {
				return ad.runCompiled(key, f, fn, n, args...)
			}
			ad.promote(key, f)
		} else {
			fn, err := ad.cache.GetOrCompile(key, func() (*core.Func, error) {
				return ad.m.Compile(f)
			})
			if err != nil {
				return 0, 0, err
			}
			return ad.runCompiled(key, f, fn, n, args...)
		}
	}
	r, cycles, backedges, err := InterpCounted(f, args...)
	if backedges > 0 {
		ad.blocks.Add(key, f.Name, backedges)
	}
	return r, cycles, err
}
