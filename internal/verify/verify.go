// Package verify statically checks generated machine code before it is
// installed into executable memory.  It is the pre-install half of the
// defense-in-depth story: the encoders are regression-tested at port time
// (paper §3.3), but a client that hand-patches words, a buggy extension,
// or a corrupted cache entry can still produce a word stream the encoders
// never emitted.  The verifier decodes every word through the target
// disassembler and checks the structural invariants every well-formed
// VCODE function satisfies:
//
//   - every word in the code region decodes (no ".word" fallbacks);
//   - pc-relative branch targets land inside the function's code;
//   - call targets are inside the function or on a resolved external
//     address the machine vouches for (installed code, trap vectors);
//   - on delayed-branch targets, no control transfer sits in a delay slot;
//   - constant-pool references stay inside the function's pool.
//
// The package depends on nothing else in the repo: targets describe their
// control flow through the small Decoder interface, and the machine layer
// supplies addresses and symbol knowledge through Code and Options.
package verify

import (
	"errors"
	"fmt"
	"strings"
)

// Kind classifies one instruction word's control-flow behaviour.
type Kind int

const (
	// KindOther is a non-control-transfer instruction (ALU, load, store,
	// ...).  Classify does not vouch for its legality; the disassembler
	// round-trip does.
	KindOther Kind = iota
	// KindBranch is a pc-relative (or region-absolute) jump or
	// conditional branch whose target must stay inside the function.
	KindBranch
	// KindCall is a call: the target (when statically known) may be
	// inside the function or an external address the machine resolves.
	KindCall
	// KindJumpReg is a register-indirect jump, call or return; its
	// target cannot be checked statically.
	KindJumpReg
	// KindIllegal is a word Classify knows the simulator will reject.
	KindIllegal
)

func (k Kind) String() string {
	switch k {
	case KindOther:
		return "other"
	case KindBranch:
		return "branch"
	case KindCall:
		return "call"
	case KindJumpReg:
		return "jump-reg"
	case KindIllegal:
		return "illegal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsControl reports whether the kind transfers control (and therefore owns
// a delay slot on delayed-branch targets).
func (k Kind) IsControl() bool {
	return k == KindBranch || k == KindCall || k == KindJumpReg
}

// Insn is the classification of one instruction word.
type Insn struct {
	Kind      Kind
	Target    uint64 // absolute target address; meaningful iff HasTarget
	HasTarget bool
}

// Decoder is the slice of a backend the verifier needs.  Backends satisfy
// it directly.
type Decoder interface {
	// Classify decodes the control-flow behaviour of w at address pc.
	Classify(w uint32, pc uint64) Insn
	// Disasm renders w; a ".word" prefix marks an undecodable word.
	Disasm(w uint32, pc uint64) string
	// BranchDelaySlots returns the architectural delay-slot count (0/1).
	BranchDelaySlots() int
}

// DecodableDecoder is an optional Decoder fast path: Decodable reports
// whether w decodes at pc — exactly when Disasm would not fall back to a
// ".word" rendering — without building the disassembly string.  The
// round-trip check is the hot inner loop of every install (one string
// format per verified word without it), so backends that can answer
// decodability from the bit pattern alone should implement this; the
// equivalence is regression-tested per backend against Disasm itself.
type DecodableDecoder interface {
	Decodable(w uint32, pc uint64) bool
}

// PoolRef is a relocated reference from code into the function's own
// constant pool, expressed as a byte offset from the function base.
type PoolRef struct {
	Sites  []int // referencing word indices (informational)
	Offset int64 // byte offset from the function base
	Size   int   // bytes read at Offset (8 for pool constants)
}

// Code is one relocated function image about to be installed.
type Code struct {
	Name      string
	Words     []uint32
	Base      uint64 // simulated address of Words[0]
	Entry     int    // word index execution starts at
	PoolStart int    // word index where the constant pool begins (== len(Words) if none)
	PoolRefs  []PoolRef
}

// Options carries machine-level knowledge into a verification.
type Options struct {
	// ExternTarget reports whether an out-of-function call target is a
	// valid destination (installed code, a trap vector, the halt
	// address).  A nil ExternTarget rejects every external call.
	ExternTarget func(addr uint64) bool
}

// Sentinel errors; a verification failure wraps exactly one of these.
var (
	ErrIllegalInsn  = errors.New("illegal instruction")
	ErrRoundTrip    = errors.New("word does not disassemble")
	ErrBranchTarget = errors.New("branch target outside function code")
	ErrCallTarget   = errors.New("call target not a known destination")
	ErrDelaySlot    = errors.New("control transfer in delay slot")
	ErrPoolRef      = errors.New("constant-pool reference outside pool")
	ErrBounds       = errors.New("inconsistent code bounds")
)

// Error is a structured verification failure: which function, which word,
// what the disassembler thought it was, and the invariant it broke.
type Error struct {
	Func string
	Word int    // word index within the function (-1 when not word-specific)
	PC   uint64 // simulated address of the word
	Text string // disassembly of the offending word
	Err  error  // one of the sentinel errors above
}

func (e *Error) Error() string {
	if e.Word < 0 {
		return fmt.Sprintf("verify %s: %v", e.Func, e.Err)
	}
	return fmt.Sprintf("verify %s: word %d at %#x (%s): %v", e.Func, e.Word, e.PC, e.Text, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Verify checks one relocated function image.  It returns nil when every
// invariant holds, or an *Error wrapping a sentinel describing the first
// violation found.
func Verify(d Decoder, c *Code, opt Options) error {
	n := len(c.Words)
	if c.PoolStart < 0 || c.PoolStart > n || c.Entry < 0 || c.Entry > c.PoolStart {
		return &Error{Func: c.Name, Word: -1, Err: fmt.Errorf("%w: entry %d, pool %d, len %d", ErrBounds, c.Entry, c.PoolStart, n)}
	}
	codeLo := c.Base + 4*uint64(c.Entry)
	codeHi := c.Base + 4*uint64(c.PoolStart)
	delay := d.BranchDelaySlots()

	fail := func(i int, pc uint64, w uint32, err error) error {
		return &Error{Func: c.Name, Word: i, PC: pc, Text: d.Disasm(w, pc), Err: err}
	}
	dec, fastDecode := d.(DecodableDecoder)

	prevControl := false
	for i := c.Entry; i < c.PoolStart; i++ {
		w := c.Words[i]
		pc := c.Base + 4*uint64(i)
		ins := d.Classify(w, pc)
		if ins.Kind == KindIllegal {
			return fail(i, pc, w, ErrIllegalInsn)
		}
		// Round-trip: anything Classify accepts must disassemble.  The
		// generated disassembler covers exactly the encoder's
		// vocabulary, so a ".word" fallback means the word cannot have
		// come from the encoders.  Decodable answers the same question
		// without rendering the string.
		if fastDecode {
			if !dec.Decodable(w, pc) {
				return fail(i, pc, w, ErrRoundTrip)
			}
		} else if strings.HasPrefix(d.Disasm(w, pc), ".word") {
			return fail(i, pc, w, ErrRoundTrip)
		}
		if delay > 0 && prevControl && ins.Kind.IsControl() {
			return fail(i, pc, w, ErrDelaySlot)
		}
		prevControl = ins.Kind.IsControl()

		if ins.HasTarget {
			switch ins.Kind {
			case KindBranch:
				if ins.Target < codeLo || ins.Target >= codeHi || ins.Target%4 != 0 {
					return fail(i, pc, w, fmt.Errorf("%w: %#x not in [%#x,%#x)", ErrBranchTarget, ins.Target, codeLo, codeHi))
				}
			case KindCall:
				in := ins.Target >= codeLo && ins.Target < codeHi && ins.Target%4 == 0
				if !in && (opt.ExternTarget == nil || !opt.ExternTarget(ins.Target)) {
					return fail(i, pc, w, fmt.Errorf("%w: %#x", ErrCallTarget, ins.Target))
				}
			}
		}
	}
	// A function whose last code word owns a delay slot would execute the
	// first pool word; the emitters always pad with a nop.
	if delay > 0 && prevControl && c.PoolStart == n {
		// The delay slot of the last word lies outside the function.
		pc := c.Base + 4*uint64(n-1)
		return fail(n-1, pc, c.Words[n-1], ErrDelaySlot)
	}

	for _, pr := range c.PoolRefs {
		sz := pr.Size
		if sz <= 0 {
			sz = 8
		}
		if pr.Offset < 4*int64(c.PoolStart) || pr.Offset+int64(sz) > 4*int64(n) {
			site := -1
			if len(pr.Sites) > 0 {
				site = pr.Sites[0]
			}
			return &Error{
				Func: c.Name, Word: site, PC: c.Base + 4*uint64(max(site, 0)),
				Text: "pool ref",
				Err:  fmt.Errorf("%w: offset %d not in [%d,%d)", ErrPoolRef, pr.Offset, 4*c.PoolStart, 4*n),
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
