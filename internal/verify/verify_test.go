package verify

import (
	"errors"
	"fmt"
	"testing"
)

// fakeDecoder interprets a tiny synthetic ISA so every verifier rule can
// be driven without a real backend.  Word layout: the top byte selects
// the kind, the low 24 bits are a signed word displacement for
// branch/call.
const (
	opNop     = 0x00 << 24
	opBranch  = 0x01 << 24
	opCall    = 0x02 << 24
	opJumpReg = 0x03 << 24
	opIllegal = 0x04 << 24
	opGarble  = 0x05 << 24 // classifies as other but does not disassemble
)

type fakeDecoder struct {
	delaySlots int
}

func disp(w uint32) int64 {
	d := int64(w & 0xffffff)
	if d&0x800000 != 0 {
		d -= 1 << 24
	}
	return d
}

func (f fakeDecoder) Classify(w uint32, pc uint64) Insn {
	switch w & 0xff000000 {
	case opBranch:
		return Insn{Kind: KindBranch, Target: uint64(int64(pc) + 4*disp(w)), HasTarget: true}
	case opCall:
		return Insn{Kind: KindCall, Target: uint64(int64(pc) + 4*disp(w)), HasTarget: true}
	case opJumpReg:
		return Insn{Kind: KindJumpReg}
	case opIllegal:
		return Insn{Kind: KindIllegal}
	}
	return Insn{Kind: KindOther}
}

func (f fakeDecoder) Disasm(w uint32, pc uint64) string {
	if w&0xff000000 == opGarble {
		return fmt.Sprintf(".word %#x", w)
	}
	return fmt.Sprintf("op%d %d", w>>24, disp(w))
}

func (f fakeDecoder) BranchDelaySlots() int { return f.delaySlots }

func code(words ...uint32) *Code {
	return &Code{Name: "t", Words: words, Base: 0x1000, PoolStart: len(words)}
}

func TestVerifySentinels(t *testing.T) {
	d := fakeDecoder{}
	dly := fakeDecoder{delaySlots: 1}
	ext := Options{ExternTarget: func(addr uint64) bool { return addr == 0x9000 }}

	branchTo := func(delta int64) uint32 { return opBranch | uint32(delta)&0xffffff }
	callTo := func(delta int64) uint32 { return opCall | uint32(delta)&0xffffff }

	cases := []struct {
		name string
		dec  Decoder
		c    *Code
		opt  Options
		want error // nil means must verify clean
	}{
		{"clean", d, code(opNop, branchTo(-1), opNop), Options{}, nil},
		{"illegal", d, code(opNop, opIllegal), Options{}, ErrIllegalInsn},
		{"roundtrip", d, code(opGarble), Options{}, ErrRoundTrip},
		{"branch-past-end", d, code(branchTo(5), opNop), Options{}, ErrBranchTarget},
		{"branch-before-start", d, code(opNop, branchTo(-2)), Options{}, ErrBranchTarget},
		{"branch-into-pool", d, &Code{Name: "t", Words: []uint32{branchTo(1), opNop}, Base: 0x1000, PoolStart: 1}, Options{}, ErrBranchTarget},
		{"call-unknown-extern", d, code(callTo(100), opNop), Options{}, ErrCallTarget},
		{"call-known-extern", d, code(callTo(int64(0x9000-0x1000)/4), opNop), ext, nil},
		{"call-in-function", d, code(callTo(1), opNop), Options{}, nil},
		{"control-in-delay-slot", dly, code(branchTo(1), opJumpReg, opNop), Options{}, ErrDelaySlot},
		{"trailing-delay-slot", dly, code(opNop, branchTo(-1)), Options{}, ErrDelaySlot},
		{"delay-slot-padded-ok", dly, code(branchTo(1), opNop, opNop), Options{}, nil},
		{"no-delay-machine-ok", d, code(opNop, branchTo(-1)), Options{}, nil},
		{"bad-entry", d, &Code{Name: "t", Words: []uint32{opNop}, Base: 0x1000, Entry: 2, PoolStart: 1}, Options{}, ErrBounds},
		{"bad-pool", d, &Code{Name: "t", Words: []uint32{opNop}, Base: 0x1000, PoolStart: 5}, Options{}, ErrBounds},
		{"pool-ref-outside", d, &Code{
			Name: "t", Words: []uint32{opNop, 0, 0}, Base: 0x1000, PoolStart: 1,
			PoolRefs: []PoolRef{{Sites: []int{0}, Offset: 12, Size: 8}},
		}, Options{}, ErrPoolRef},
		{"pool-ref-ok", d, &Code{
			Name: "t", Words: []uint32{opNop, 0, 0}, Base: 0x1000, PoolStart: 1,
			PoolRefs: []PoolRef{{Sites: []int{0}, Offset: 4, Size: 8}},
		}, Options{}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Verify(tc.dec, tc.c, tc.opt)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Verify() = %v, want ok", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Verify() = %v, want %v", err, tc.want)
			}
			var ve *Error
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *Error", err)
			}
			if ve.Func != "t" {
				t.Errorf("Error.Func = %q", ve.Func)
			}
		})
	}
}

// TestErrorFormat pins the human-readable shape: function, word index,
// pc, disassembly.
func TestErrorFormat(t *testing.T) {
	err := Verify(fakeDecoder{}, code(opNop, opIllegal), Options{})
	var ve *Error
	if !errors.As(err, &ve) {
		t.Fatal(err)
	}
	if ve.Word != 1 || ve.PC != 0x1004 {
		t.Errorf("Word=%d PC=%#x, want 1/0x1004", ve.Word, ve.PC)
	}
	want := "verify t: word 1 at 0x1004 (op4 0): illegal instruction"
	if ve.Error() != want {
		t.Errorf("Error() = %q, want %q", ve.Error(), want)
	}
}

// fastDecoder layers Decodable over the fake ISA.  Its Disasm and
// Decodable deliberately disagree so tests can prove which one Verify
// consulted for the round-trip check.
type fastDecoder struct {
	fakeDecoder
	decodable func(w uint32, pc uint64) bool
}

func (f fastDecoder) Decodable(w uint32, pc uint64) bool { return f.decodable(w, pc) }

// TestDecodableFastPath pins the optional-interface dispatch: when the
// decoder implements DecodableDecoder, the round-trip check must ask
// Decodable instead of string-matching Disasm.
func TestDecodableFastPath(t *testing.T) {
	// Disasm says opGarble is undecodable, Decodable vouches for
	// everything: Verify must pass, proving Disasm was not consulted.
	d := fastDecoder{decodable: func(w uint32, pc uint64) bool { return true }}
	if err := Verify(d, code(opGarble), Options{}); err != nil {
		t.Fatalf("Decodable=true was ignored: %v", err)
	}
	// And the converse: Decodable rejects a word Disasm renders fine.
	d.decodable = func(w uint32, pc uint64) bool { return false }
	err := Verify(d, code(opNop), Options{})
	if !errors.Is(err, ErrRoundTrip) {
		t.Fatalf("Decodable=false was ignored: %v", err)
	}
}
