// Package dcg reimplements the baseline VCODE is measured against: DCG
// (Engler & Proebsting, ASPLOS 1994), a general-purpose dynamic code
// generation system that — unlike VCODE — builds an intermediate
// representation at runtime.  Clients construct expression trees; code
// generation then makes a labelling pass (bottom-up cost assignment, in
// the lburg tradition) and a reduction pass (post-order emission with
// temporary-register management) over every tree.
//
// The paper's headline comparison is that eliminating exactly this
// build-then-consume-IR work makes VCODE roughly 35x faster at generating
// code; BenchmarkCodegen* in the repository root measures the two systems
// against each other on identical instruction streams.
package dcg

import (
	"fmt"

	"repro/internal/core"
)

// NodeKind discriminates tree nodes.
type NodeKind uint8

const (
	// KindOp is an interior operator node.
	KindOp NodeKind = iota
	// KindImm is an immediate leaf.
	KindImm
	// KindReg is a register leaf (e.g. an incoming parameter).
	KindReg
	// KindLoad is a memory load from address+offset.
	KindLoad
)

// Node is one IR tree node.  Nodes are heap-allocated at runtime —
// deliberately so: the cost VCODE eliminates is precisely this allocation
// and the later traversal.
type Node struct {
	Kind NodeKind
	Op   core.Op
	T    core.Type
	L, R *Node
	Imm  int64
	Reg  core.Reg
	Off  int64

	// Labelling state.
	cost    int
	useImmR bool // right operand folds into an immediate form
}

// Gen builds and compiles IR trees for one function at a time.  Nodes are
// retained on an arena until End, as DCG retains its IR while generating —
// this is the storage proportional to instruction count that VCODE's
// in-place generation eliminates (§3).
type Gen struct {
	asm   *core.Asm
	arena []*Node
	roots int
}

// New returns a generator for the given backend.
func New(b core.Backend) *Gen {
	return &Gen{asm: core.NewAsm(b)}
}

func (g *Gen) alloc(n Node) *Node {
	p := new(Node)
	*p = n
	g.arena = append(g.arena, p)
	return p
}

// Asm exposes the underlying assembler (tests, register queries).
func (g *Gen) Asm() *core.Asm { return g.asm }

// Begin starts a function; see core.Asm.Begin.
func (g *Gen) Begin(sig string, leaf bool) ([]core.Reg, error) {
	g.roots = 0
	g.arena = g.arena[:0]
	return g.asm.Begin(sig, leaf)
}

// End finishes the function.
func (g *Gen) End() (*core.Func, error) { return g.asm.End() }

// --- tree constructors (the DCG client interface) ---

// Imm builds an immediate leaf.
func (g *Gen) Imm(t core.Type, v int64) *Node {
	return g.alloc(Node{Kind: KindImm, T: t, Imm: v})
}

// Reg builds a register leaf.
func (g *Gen) Reg(t core.Type, r core.Reg) *Node {
	return g.alloc(Node{Kind: KindReg, T: t, Reg: r})
}

// Load builds a memory load of type t from base+off.
func (g *Gen) Load(t core.Type, base *Node, off int64) *Node {
	return g.alloc(Node{Kind: KindLoad, T: t, L: base, Off: off})
}

// Op builds a binary operator node.
func (g *Gen) Op(op core.Op, t core.Type, l, r *Node) *Node {
	return g.alloc(Node{Kind: KindOp, Op: op, T: t, L: l, R: r})
}

// Unary builds a unary operator node (com, not, mov, neg).
func (g *Gen) Unary(op core.Op, t core.Type, l *Node) *Node {
	return g.alloc(Node{Kind: KindOp, Op: op, T: t, L: l})
}

// --- statements: each consumes (labels + reduces) its trees ---

// Ret compiles "return tree".
func (g *Gen) Ret(t core.Type, n *Node) error {
	r, err := g.compile(n)
	if err != nil {
		return err
	}
	g.asm.Ret(t, r)
	g.asm.PutReg(r)
	return g.asm.Err()
}

// Store compiles "*(t*)(base+off) = tree".
func (g *Gen) Store(t core.Type, base *Node, off int64, val *Node) error {
	rb, err := g.compile(base)
	if err != nil {
		return err
	}
	rv, err := g.compile(val)
	if err != nil {
		return err
	}
	g.asm.StI(t, rv, rb, off)
	g.asm.PutReg(rb)
	g.asm.PutReg(rv)
	return g.asm.Err()
}

// Branch compiles "if l op r goto label".
func (g *Gen) Branch(op core.Op, t core.Type, l, r *Node, lbl core.Label) error {
	rl, err := g.compile(l)
	if err != nil {
		return err
	}
	label(r)
	if r.Kind == KindImm {
		g.asm.BrI(op, t, rl, r.Imm, lbl)
		g.asm.PutReg(rl)
		return g.asm.Err()
	}
	rr, err := g.compile(r)
	if err != nil {
		return err
	}
	g.asm.Br(op, t, rl, rr, lbl)
	g.asm.PutReg(rl)
	g.asm.PutReg(rr)
	return g.asm.Err()
}

// NewLabel and Bind delegate to the assembler.
func (g *Gen) NewLabel() core.Label { return g.asm.NewLabel() }

// Bind binds a label at the current position.
func (g *Gen) Bind(l core.Label) { g.asm.Bind(l) }

// --- the two IR passes VCODE exists to avoid ---

// rule is one entry of the BURS-style rule table the labeller matches
// trees against, in the lburg tradition DCG descends from.
type rule struct {
	kind     NodeKind
	op       core.Op
	anyOp    bool
	immRight bool // right operand folds into the immediate form
	cost     int
}

// ruleTable holds one register-form and one immediate-form rule per
// operator, plus the leaf and memory rules.  The labeller's job — walk
// every node, try every candidate rule, keep the cheapest — is exactly
// the per-node runtime work that VCODE's zero-pass design avoids.
var ruleTable = buildRules()

func buildRules() []rule {
	ops := []core.Op{
		core.OpAdd, core.OpSub, core.OpMul, core.OpDiv, core.OpMod,
		core.OpAnd, core.OpOr, core.OpXor, core.OpLsh, core.OpRsh,
	}
	rs := []rule{
		{kind: KindImm, cost: 1},
		{kind: KindReg, cost: 0},
		{kind: KindLoad, cost: 1},
		{kind: KindOp, anyOp: true, cost: 1}, // generic unary/binary
	}
	for _, op := range ops {
		rs = append(rs, rule{kind: KindOp, op: op, cost: 1})
		rs = append(rs, rule{kind: KindOp, op: op, immRight: true, cost: 1})
	}
	return rs
}

func (r *rule) matches(n *Node) bool {
	if n.Kind != r.kind {
		return false
	}
	if n.Kind != KindOp {
		return true
	}
	if !r.anyOp && n.Op != r.op {
		return false
	}
	if r.immRight {
		return n.R != nil && n.R.Kind == KindImm && !n.T.IsFloat()
	}
	return true
}

// label performs the bottom-up cost/rule assignment pass.
func label(n *Node) int {
	if n == nil {
		return 0
	}
	cl := label(n.L)
	cr := label(n.R)
	best := 1 << 30
	for i := range ruleTable {
		r := &ruleTable[i]
		if !r.matches(n) {
			continue
		}
		c := r.cost + cl
		if !r.immRight {
			c += cr
		}
		if c < best {
			best = c
			n.useImmR = r.immRight
		}
	}
	n.cost = best
	return n.cost
}

// compile labels and reduces a tree, returning the register holding its
// value.  The caller owns the returned register and must PutReg it.
func (g *Gen) compile(n *Node) (core.Reg, error) {
	label(n)
	return g.reduce(n)
}

// reduce is the post-order emission pass.
func (g *Gen) reduce(n *Node) (core.Reg, error) {
	switch n.Kind {
	case KindReg:
		// Copy into a fresh register so the value can be consumed
		// uniformly (DCG's uniform-temporary discipline).
		rd, err := g.tempFor(n.T)
		if err != nil {
			return core.NoReg, err
		}
		g.asm.Unary(core.OpMov, n.T, rd, n.Reg)
		return rd, g.asm.Err()
	case KindImm:
		rd, err := g.tempFor(n.T)
		if err != nil {
			return core.NoReg, err
		}
		g.asm.SetI(n.T, rd, n.Imm)
		return rd, g.asm.Err()
	case KindLoad:
		base, err := g.reduce(n.L)
		if err != nil {
			return core.NoReg, err
		}
		rd := base
		if n.T.IsFloat() {
			g.asm.PutReg(base)
			rd, err = g.tempFor(n.T)
			if err != nil {
				return core.NoReg, err
			}
		}
		g.asm.LdI(n.T, rd, base, n.Off)
		return rd, g.asm.Err()
	case KindOp:
		if n.R == nil { // unary
			l, err := g.reduce(n.L)
			if err != nil {
				return core.NoReg, err
			}
			g.asm.Unary(n.Op, n.T, l, l)
			return l, g.asm.Err()
		}
		l, err := g.reduce(n.L)
		if err != nil {
			return core.NoReg, err
		}
		if n.useImmR {
			g.asm.ALUI(n.Op, n.T, l, l, n.R.Imm)
			return l, g.asm.Err()
		}
		r, err := g.reduce(n.R)
		if err != nil {
			return core.NoReg, err
		}
		g.asm.ALU(n.Op, n.T, l, l, r)
		g.asm.PutReg(r)
		return l, g.asm.Err()
	}
	return core.NoReg, fmt.Errorf("dcg: bad node kind %d", n.Kind)
}

func (g *Gen) tempFor(t core.Type) (core.Reg, error) {
	if t.IsFloat() {
		return g.asm.GetFReg(core.Temp)
	}
	return g.asm.GetReg(core.Temp)
}
