package dcg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

func newMachine() (*mips.Backend, *core.Machine) {
	b := mips.New()
	m := mem.New(1<<22, false)
	return b, core.NewMachine(b, mips.NewCPU(m), m)
}

// TestExpressionTree compiles (x + 3) * (x - 1) through the IR path and
// runs it.
func TestExpressionTree(t *testing.T) {
	b, m := newMachine()
	g := New(b)
	args, err := g.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	ty := core.TypeI
	x := func() *Node { return g.Reg(ty, args[0]) }
	tree := g.Op(core.OpMul, ty,
		g.Op(core.OpAdd, ty, x(), g.Imm(ty, 3)),
		g.Op(core.OpSub, ty, x(), g.Imm(ty, 1)))
	if err := g.Ret(ty, tree); err != nil {
		t.Fatal(err)
	}
	fn, err := g.End()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int32{0, 1, 7, -5} {
		got, err := m.Call(fn, core.I(x))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(x+3) * int64(x-1)
		if got.Int() != int64(int32(want)) {
			t.Errorf("f(%d) = %d, want %d", x, got.Int(), int32(want))
		}
	}
}

// TestImmediateFolding checks the labeller picks the immediate rule: an
// add with an immediate right child must not materialize the constant.
func TestImmediateFolding(t *testing.T) {
	b, _ := newMachine()
	g := New(b)
	args, err := g.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	ty := core.TypeI
	before := g.Asm().Buf().Len()
	if err := g.Ret(ty, g.Op(core.OpAdd, ty, g.Reg(ty, args[0]), g.Imm(ty, 5))); err != nil {
		t.Fatal(err)
	}
	// mov arg into temp + addiu + ret move/jump: the imm must not take
	// its own set instruction.
	used := g.Asm().Buf().Len() - before
	if used > 5 {
		t.Errorf("immediate rule not used: %d words emitted", used)
	}
	if _, err := g.End(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreAndBranch exercises the statement forms: a loop summing a
// memory cell repeatedly.
func TestStoreAndBranch(t *testing.T) {
	b, m := newMachine()
	addr, err := m.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	g := New(b)
	args, err := g.Begin("%p%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	ty := core.TypeI
	// mem[p] = 0; while (n > 0) { mem[p] = mem[p] + n; n = n - 1 } ; return mem[p]
	if err := g.Store(ty, g.Reg(core.TypeP, args[0]), 0, g.Imm(ty, 0)); err != nil {
		t.Fatal(err)
	}
	top := g.NewLabel()
	done := g.NewLabel()
	g.Bind(top)
	if err := g.Branch(core.OpBle, ty, g.Reg(ty, args[1]), g.Imm(ty, 0), done); err != nil {
		t.Fatal(err)
	}
	sum := g.Op(core.OpAdd, ty, g.Load(ty, g.Reg(core.TypeP, args[0]), 0), g.Reg(ty, args[1]))
	if err := g.Store(ty, g.Reg(core.TypeP, args[0]), 0, sum); err != nil {
		t.Fatal(err)
	}
	// n = n - 1 via a store into the register through a Ret-less path:
	// reuse Branch/Store only; decrement with a tree assigned through
	// memory is clumsy, so decrement directly through the assembler.
	g.Asm().Subii(args[1], args[1], 1)
	g.Asm().Jmp(top)
	g.Bind(done)
	if err := g.Ret(ty, g.Load(ty, g.Reg(core.TypeP, args[0]), 0)); err != nil {
		t.Fatal(err)
	}
	fn, err := g.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.P(addr), core.I(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 55 {
		t.Fatalf("sum = %d, want 55", got.Int())
	}
}

// TestArenaGrows pins the IR-cost property the E7 benchmark reports:
// node allocation is proportional to program size.
func TestArenaGrows(t *testing.T) {
	b, _ := newMachine()
	g := New(b)
	if _, err := g.Begin("%i", core.Leaf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = g.Op(core.OpAdd, core.TypeI, g.Imm(core.TypeI, 1), g.Imm(core.TypeI, 2))
	}
	if len(g.arena) != 30 {
		t.Errorf("arena holds %d nodes, want 30", len(g.arena))
	}
	if err := g.Ret(core.TypeI, g.Imm(core.TypeI, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.End(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Begin("%i", core.Leaf); err != nil {
		t.Fatal(err)
	}
	if len(g.arena) != 0 {
		t.Error("Begin should reset the arena")
	}
}
