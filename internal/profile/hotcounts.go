package profile

import (
	"sort"
	"sync"
	"sync/atomic"
)

// HotCounts is a lock-light invocation counter table keyed by a stable
// content key (e.g. a bytecode hash), with a display name per entry.  The
// adaptive JIT bumps one atomic per call instead of a mutex-guarded map,
// and the profiler joins the counts into its reports — one shared notion
// of "hot" across promotion decisions and profiles.
type HotCounts struct {
	m sync.Map // key string -> *hotEntry
}

type hotEntry struct {
	name string
	n    atomic.Int64
}

// NewHotCounts returns an empty table.
func NewHotCounts() *HotCounts { return &HotCounts{} }

// Inc bumps the counter for key (creating it with the given display name
// on first sight) and returns the new count.
func (h *HotCounts) Inc(key, name string) int64 { return h.Add(key, name, 1) }

// Add adds n to the counter for key (creating it with the given display
// name on first sight) and returns the new count.  Weighted adds let
// sampled sources — the edge profiler records one event per stride
// branch resolutions — feed estimated true counts into the same table.
func (h *HotCounts) Add(key, name string, n int64) int64 {
	if e, ok := h.m.Load(key); ok {
		return e.(*hotEntry).n.Add(n)
	}
	e := &hotEntry{name: name}
	if prev, loaded := h.m.LoadOrStore(key, e); loaded {
		e = prev.(*hotEntry)
	}
	return e.n.Add(n)
}

// Get returns the count for key (0 when unseen).
func (h *HotCounts) Get(key string) int64 {
	if e, ok := h.m.Load(key); ok {
		return e.(*hotEntry).n.Load()
	}
	return 0
}

// GetByName sums counts over entries with the given display name (names
// need not be unique, unlike keys).
func (h *HotCounts) GetByName(name string) int64 {
	var n int64
	h.m.Range(func(_, v any) bool {
		if e := v.(*hotEntry); e.name == name {
			n += e.n.Load()
		}
		return true
	})
	return n
}

// HotCount is one snapshot row.
type HotCount struct {
	Key, Name string
	Calls     int64
}

// Snapshot returns all entries sorted by call count, hottest first.
func (h *HotCounts) Snapshot() []HotCount {
	var out []HotCount
	h.m.Range(func(k, v any) bool {
		e := v.(*hotEntry)
		out = append(out, HotCount{Key: k.(string), Name: e.name, Calls: e.n.Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len returns the number of tracked keys.
func (h *HotCounts) Len() int {
	n := 0
	h.m.Range(func(_, _ any) bool { n++; return true })
	return n
}
