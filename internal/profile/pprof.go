package profile

import (
	"compress/gzip"
	"io"
	"time"
)

// WritePprof serializes the profile in pprof's gzipped protobuf format
// (profile.proto), so standard tooling — `go tool pprof` — can read
// profiles of simulated generated code.  The encoding is hand-rolled:
// the format is a small, stable proto3 schema and the repo takes no
// dependencies.
//
// Two sample types are emitted: "samples/count" (raw sample counts) and
// "instructions/count" (samples scaled by the sampling stride), with the
// period recorded as one sample per stride instructions.
func (p *Profiler) WritePprof(w io.Writer) error {
	p.mu.Lock()
	type row struct {
		pc    uint64
		name  string
		count uint64
	}
	rows := make([]row, 0, len(p.samples))
	for pc, b := range p.samples {
		rows = append(rows, row{pc: pc, name: b.name, count: b.count})
	}
	stride := p.stride
	p.mu.Unlock()

	// String table: index 0 must be "".
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}
	samplesStr, countStr := intern("samples"), intern("count")
	insnsStr := intern("instructions")

	// Functions: one per distinct name.
	funcID := map[string]uint64{}
	var functions []byte
	for _, r := range rows {
		if _, ok := funcID[r.name]; ok {
			continue
		}
		id := uint64(len(funcID) + 1)
		funcID[r.name] = id
		var fn []byte
		fn = appendVarintField(fn, 1, id)                     // id
		fn = appendVarintField(fn, 2, uint64(intern(r.name))) // name
		fn = appendVarintField(fn, 3, uint64(intern(r.name))) // system_name
		functions = appendBytesField(functions, 5, fn)
	}

	// Locations and samples: one location per PC.
	var locations, samples []byte
	for i, r := range rows {
		locID := uint64(i + 1)
		var line []byte
		line = appendVarintField(line, 1, funcID[r.name]) // function_id
		var loc []byte
		loc = appendVarintField(loc, 1, locID) // id
		loc = appendVarintField(loc, 3, r.pc)  // address
		loc = appendBytesField(loc, 4, line)   // line
		locations = appendBytesField(locations, 4, loc)

		var smp []byte
		smp = appendPacked(smp, 1, []uint64{locID})                     // location_id
		smp = appendPacked(smp, 2, []uint64{r.count, r.count * stride}) // values
		samples = appendBytesField(samples, 2, smp)
	}

	var out []byte
	out = appendBytesField(out, 1, valueType(samplesStr, countStr)) // sample_type[0]
	out = appendBytesField(out, 1, valueType(insnsStr, countStr))   // sample_type[1]
	out = append(out, samples...)
	out = append(out, locations...)
	out = append(out, functions...)
	for _, s := range strs {
		out = appendBytesField(out, 6, []byte(s)) // string_table
	}
	out = appendVarintField(out, 9, uint64(time.Now().UnixNano())) // time_nanos
	out = appendBytesField(out, 11, valueType(insnsStr, countStr)) // period_type
	out = appendVarintField(out, 12, stride)                       // period

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out); err != nil {
		return err
	}
	return gz.Close()
}

// valueType encodes a ValueType{type, unit} message.
func valueType(typ, unit int64) []byte {
	var b []byte
	b = appendVarintField(b, 1, uint64(typ))
	b = appendVarintField(b, 2, uint64(unit))
	return b
}

// --- minimal proto3 wire-format helpers ---

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendVarintField appends a varint-typed field (wire type 0), omitting
// proto3 zero defaults.
func appendVarintField(b []byte, field int, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = appendUvarint(b, uint64(field)<<3|0)
	return appendUvarint(b, v)
}

// appendBytesField appends a length-delimited field (wire type 2).
func appendBytesField(b []byte, field int, data []byte) []byte {
	b = appendUvarint(b, uint64(field)<<3|2)
	b = appendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

// appendPacked appends a packed repeated varint field.
func appendPacked(b []byte, field int, vals []uint64) []byte {
	var payload []byte
	for _, v := range vals {
		payload = appendUvarint(payload, v)
	}
	return appendBytesField(b, field, payload)
}
