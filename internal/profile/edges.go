package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// DefaultEdgeStride is the branch-event sampling period.  It is prime so
// that strictly periodic sampling does not alias against loops containing
// a small, even number of conditional branches (with an even stride a
// two-branch loop body would always sample the same branch).
const DefaultEdgeStride = 13

// EdgeProfiler accumulates basic-block edge profiles: taken/not-taken
// counts per conditional-branch PC, fed by the simulators' countdown-
// gated edge probes (core.EdgeProfilingCPU).  Samples are symbolized
// eagerly through the machine's lock-free address map, keyed by
// (function, branch PC), so evicted functions keep their attribution —
// the same discipline as the PC-sampling Profiler.  Safe for concurrent
// use; may be attached to several machines.
type EdgeProfiler struct {
	stride   uint64
	maxEdges int

	mu       sync.Mutex
	edges    map[uint64]*edgeBucket
	total    uint64
	dropped  uint64
	machines []*core.Machine
	hot      *HotCounts
}

type edgeBucket struct {
	name   string
	hotKey string // "" when the PC never resolved (evicted/unknown)
	taken  uint64
	not    uint64
}

// NewEdgeProfiler returns an edge profiler recording every stride
// conditional-branch resolutions (0 selects DefaultEdgeStride).
// Distinct-branch tracking is bounded (65536 PCs); overflow events are
// counted but not attributed.
func NewEdgeProfiler(stride uint64) *EdgeProfiler {
	if stride == 0 {
		stride = DefaultEdgeStride
	}
	return &EdgeProfiler{
		stride:   stride,
		maxEdges: 1 << 16,
		edges:    make(map[uint64]*edgeBucket),
	}
}

// Stride returns the branch-event sampling period.
func (e *EdgeProfiler) Stride() uint64 { return e.stride }

// SetHotCounts links a block-heat table: every recorded edge event adds
// stride (the estimated true branch-resolution count it stands for) under
// the containing function's name.  jit.Adaptive reads the same table to
// promote functions whose *blocks* are hot even when their call counts
// are not (one call spinning a million-iteration loop).
func (e *EdgeProfiler) SetHotCounts(h *HotCounts) {
	e.mu.Lock()
	e.hot = h
	e.mu.Unlock()
}

// Attach hooks the profiler onto m's simulator.  It fails if the CPU does
// not support edge probing.  The per-machine symbolizer is captured here,
// at attach time.
func (e *EdgeProfiler) Attach(m *core.Machine) error {
	resolve, inCode := m.SymbolizePC, m.InCodeRegion
	if err := m.SetEdgeProbe(func(pc uint64, taken bool) { e.record(resolve, inCode, pc, taken) }, e.stride); err != nil {
		return err
	}
	e.mu.Lock()
	e.machines = append(e.machines, m)
	e.mu.Unlock()
	return nil
}

// Detach removes the profiler's probe from m.
func (e *EdgeProfiler) Detach(m *core.Machine) {
	_ = m.SetEdgeProbe(nil, 0)
	e.mu.Lock()
	for i, mm := range e.machines {
		if mm == m {
			e.machines = append(e.machines[:i], e.machines[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
}

// record is the edge probe: it runs inside the simulator's step loop, so
// it symbolizes lock-free and takes only the profiler's own lock.
func (e *EdgeProfiler) record(resolve func(uint64) (string, bool), inCode func(uint64) bool, pc uint64, taken bool) {
	name, ok := resolve(pc)
	var hot *HotCounts
	var hotKey, hotName string
	e.mu.Lock()
	e.total++
	b, seen := e.edges[pc]
	switch {
	case seen:
		if ok && b.name != name {
			// Address reuse after eviction: restart attribution under the
			// new owner rather than blending two functions' counts.
			b.name, b.hotKey, b.taken, b.not = name, "edge:"+name, 0, 0
		}
	case len(e.edges) < e.maxEdges:
		b = &edgeBucket{name: name}
		if ok {
			b.hotKey = "edge:" + name
		} else {
			b.name = "[unknown]"
			if inCode != nil && inCode(pc) {
				b.name = "[evicted]"
			}
		}
		e.edges[pc] = b
	default:
		e.dropped++
		e.mu.Unlock()
		return
	}
	if taken {
		b.taken++
	} else {
		b.not++
	}
	if ok && b.hotKey != "" {
		hot, hotKey, hotName = e.hot, b.hotKey, b.name
	}
	e.mu.Unlock()
	if hot != nil {
		hot.Add(hotKey, hotName, int64(e.stride))
	}
}

// TotalEvents returns the number of probe firings recorded so far (each
// stands for stride branch resolutions).
func (e *EdgeProfiler) TotalEvents() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// EdgeAt returns the recorded taken/not-taken counts for a branch PC.
func (e *EdgeProfiler) EdgeAt(pc uint64) (taken, notTaken uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, found := e.edges[pc]; found {
		return b.taken, b.not, true
	}
	return 0, 0, false
}

// Reset discards all accumulated edge counts.
func (e *EdgeProfiler) Reset() {
	e.mu.Lock()
	e.edges = make(map[uint64]*edgeBucket)
	e.total, e.dropped = 0, 0
	e.mu.Unlock()
}

// ResetSpan discards accumulated counts for branch PCs in [start, end).
// De-optimization uses it when a superblock's bias assumption flips: the
// demoted function retrains from fresh counts instead of blending the
// stale pre-flip history into the next formation decision.
func (e *EdgeProfiler) ResetSpan(start, end uint64) {
	e.mu.Lock()
	for pc := range e.edges {
		if pc >= start && pc < end {
			delete(e.edges, pc)
		}
	}
	e.mu.Unlock()
}

// EdgeSample is one branch-bias row.  Bias is the taken fraction in
// [0,1] of the recorded events for this branch.
type EdgeSample struct {
	PC       uint64  `json:"pc"`
	Name     string  `json:"name"`
	Offset   uint64  `json:"offset"` // byte offset within the function, when known
	Taken    uint64  `json:"taken"`
	NotTaken uint64  `json:"not_taken"`
	Bias     float64 `json:"bias"`
}

// EdgeReport is a symbolized snapshot of the edge profile.
type EdgeReport struct {
	Stride      uint64       `json:"stride"`
	TotalEvents uint64       `json:"total_events"`
	DroppedPCs  uint64       `json:"dropped_pcs"`
	Edges       []EdgeSample `json:"edges"` // sorted by event count desc
}

// Snapshot builds an EdgeReport listing at most topEdges rows (0 = 32;
// negative = all).
func (e *EdgeProfiler) Snapshot(topEdges int) EdgeReport {
	if topEdges == 0 {
		topEdges = 32
	}
	e.mu.Lock()
	rep := EdgeReport{Stride: e.stride, TotalEvents: e.total, DroppedPCs: e.dropped}
	rows := make([]EdgeSample, 0, len(e.edges))
	for pc, b := range e.edges {
		s := EdgeSample{PC: pc, Name: b.name, Taken: b.taken, NotTaken: b.not}
		if tot := b.taken + b.not; tot > 0 {
			s.Bias = float64(b.taken) / float64(tot)
		}
		rows = append(rows, s)
	}
	machines := append([]*core.Machine(nil), e.machines...)
	e.mu.Unlock()

	base := make(map[string]uint64)
	for _, m := range machines {
		for _, s := range m.FuncSpans() {
			if _, ok := base[s.Name]; !ok {
				base[s.Name] = s.Start
			}
		}
	}
	for i := range rows {
		if b, ok := base[rows[i].Name]; ok && rows[i].PC >= b {
			rows[i].Offset = rows[i].PC - b
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ti, tj := rows[i].Taken+rows[i].NotTaken, rows[j].Taken+rows[j].NotTaken
		if ti != tj {
			return ti > tj
		}
		return rows[i].PC < rows[j].PC
	})
	if topEdges > 0 && len(rows) > topEdges {
		rows = rows[:topEdges]
	}
	rep.Edges = rows
	return rep
}

// Render writes the branch-bias report, hottest edges first.
func (r EdgeReport) Render(w io.Writer) {
	fmt.Fprintf(w, "edge profile: %d events, 1 per %d branch resolutions (%d PCs dropped)\n",
		r.TotalEvents, r.Stride, r.DroppedPCs)
	fmt.Fprintf(w, "  bias%%     taken  not-taken          pc  branch\n")
	for _, s := range r.Edges {
		fmt.Fprintf(w, "  %5.1f %9d  %9d  %#010x  %s+%#x\n",
			100*s.Bias, s.Taken, s.NotTaken, s.PC, s.Name, s.Offset)
	}
}

func (r EdgeReport) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// RegisterTelemetry exports the edge profiler's aggregate state through a
// telemetry registry.
func (e *EdgeProfiler) RegisterTelemetry(reg *telemetry.Registry, name string) {
	prefix := "edges." + name + "."
	reg.GaugeFunc(prefix+"events", func() float64 { return float64(e.TotalEvents()) })
	reg.GaugeFunc(prefix+"stride", func() float64 { return float64(e.stride) })
	reg.GaugeFunc(prefix+"distinct_branches", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.edges))
	})
}
