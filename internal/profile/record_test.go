package profile

import (
	"strings"
	"testing"
)

// fakeResolver simulates a machine address map that can lose a function
// mid-profile (eviction between the sample firing and symbolization).
type fakeResolver struct {
	names  map[uint64]string
	arena  func(uint64) bool
	misses int
}

func (r *fakeResolver) resolve(pc uint64) (string, bool) {
	if name, ok := r.names[pc]; ok {
		return name, true
	}
	r.misses++
	return "", false
}

// TestRecordEvictionRegression pins the hardened sample-attribution
// contract: samples landing in a just-evicted function keep their
// last-known name when the PC was seen before, fresh unresolvable PCs
// inside the code arena count under "[evicted]", PCs outside it under
// "[unknown]" — and the total never silently drops a sample.
func TestRecordEvictionRegression(t *testing.T) {
	r := &fakeResolver{names: map[uint64]string{0x1000: "victim"}}
	inCode := func(pc uint64) bool { return pc >= 0x1000 && pc < 0x2000 }
	p := New(1)

	p.record(r.resolve, inCode, 0x1000) // resolves: seeds the bucket
	delete(r.names, 0x1000)             // evict between samples
	p.record(r.resolve, inCode, 0x1000) // seen PC, resolve now fails
	p.record(r.resolve, inCode, 0x1004) // fresh PC inside arena, unresolvable
	p.record(r.resolve, inCode, 0x9000) // fresh PC outside arena

	if got := p.TotalSamples(); got != 4 {
		t.Fatalf("TotalSamples = %d, want 4 (no sample may be dropped)", got)
	}
	rep := p.Snapshot(10)
	byName := make(map[string]uint64)
	for _, f := range rep.Funcs {
		byName[f.Name] += f.Count
	}
	if byName["victim"] != 2 {
		t.Errorf("victim samples = %d, want 2 (last-known attribution retained)\nfuncs: %+v",
			byName["victim"], rep.Funcs)
	}
	if byName["[evicted]"] != 1 {
		t.Errorf("[evicted] samples = %d, want 1\nfuncs: %+v", byName["[evicted]"], rep.Funcs)
	}
	if byName["[unknown]"] != 1 {
		t.Errorf("[unknown] samples = %d, want 1\nfuncs: %+v", byName["[unknown]"], rep.Funcs)
	}
}

// TestRecordReuseRebinds: a PC reused by a new function after eviction
// must rebind to the new owner on the next resolving sample.
func TestRecordReuseRebinds(t *testing.T) {
	r := &fakeResolver{names: map[uint64]string{0x1000: "old"}}
	inCode := func(uint64) bool { return true }
	p := New(1)
	p.record(r.resolve, inCode, 0x1000)
	r.names[0x1000] = "new"
	p.record(r.resolve, inCode, 0x1000)
	rep := p.Snapshot(10)
	if len(rep.TopPCs) != 1 || rep.TopPCs[0].Name != "new" || rep.TopPCs[0].Count != 2 {
		t.Errorf("reused PC = %+v, want name=new count=2", rep.TopPCs)
	}
}

// TestEdgeRecordEviction pins the same contract for the edge profiler,
// plus the address-reuse rule: counts restart under the new owner
// instead of blending two functions' branch statistics.
func TestEdgeRecordEviction(t *testing.T) {
	r := &fakeResolver{names: map[uint64]string{0x1000: "victim"}}
	inCode := func(pc uint64) bool { return pc >= 0x1000 && pc < 0x2000 }
	e := NewEdgeProfiler(1)

	e.record(r.resolve, inCode, 0x1000, true)
	delete(r.names, 0x1000)
	e.record(r.resolve, inCode, 0x1000, false) // seen PC keeps attribution
	e.record(r.resolve, inCode, 0x1004, true)  // fresh, in arena
	e.record(r.resolve, inCode, 0x9000, false) // fresh, outside arena

	if got := e.TotalEvents(); got != 4 {
		t.Fatalf("TotalEvents = %d, want 4", got)
	}
	if taken, not, ok := e.EdgeAt(0x1000); !ok || taken != 1 || not != 1 {
		t.Errorf("EdgeAt(0x1000) = %d/%d/%v, want 1/1/true", taken, not, ok)
	}
	rep := e.Snapshot(-1)
	byName := make(map[string]uint64)
	for _, s := range rep.Edges {
		byName[s.Name] += s.Taken + s.NotTaken
	}
	if byName["victim"] != 2 || byName["[evicted]"] != 1 || byName["[unknown]"] != 1 {
		t.Errorf("edge attribution = %v, want victim=2 [evicted]=1 [unknown]=1", byName)
	}

	// Address reuse: new owner resolves at the old PC.
	r.names[0x1000] = "heir"
	e.record(r.resolve, inCode, 0x1000, true)
	if taken, not, _ := e.EdgeAt(0x1000); taken != 1 || not != 0 {
		t.Errorf("after reuse EdgeAt = %d/%d, want counts restarted at 1/0", taken, not)
	}
	out := e.Snapshot(-1).String()
	if !strings.Contains(out, "heir") {
		t.Errorf("report after reuse missing new owner:\n%s", out)
	}
}

// TestEdgeHotCountsWeighted: each recorded event feeds stride (its
// estimated true branch-resolution count) into the linked HotCounts.
func TestEdgeHotCountsWeighted(t *testing.T) {
	r := &fakeResolver{names: map[uint64]string{0x1000: "loopy"}}
	e := NewEdgeProfiler(13)
	h := NewHotCounts()
	e.SetHotCounts(h)
	for i := 0; i < 5; i++ {
		e.record(r.resolve, nil, 0x1000, i%2 == 0)
	}
	if got := h.GetByName("loopy"); got != 5*13 {
		t.Errorf("block heat = %d, want %d (5 events x stride 13)", got, 5*13)
	}
	// Unresolvable events must not pollute the heat table.
	e.record(r.resolve, func(uint64) bool { return false }, 0x2000, true)
	if got := h.GetByName("[unknown]"); got != 0 {
		t.Errorf("[unknown] heat = %d, want 0", got)
	}
}
