package profile

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Annotate writes a profile-annotated disassembly of the given functions:
// one line per instruction word with PC-sample counts and percentages
// from p (nil = no sample columns) interleaved with the backend's
// disassembly, and branch-bias annotations from e (nil = none) on lines
// whose PC carries edge counts.  Only installed functions can be
// rendered — their word addresses are what the profiles are keyed by —
// so uninstalled ones are reported and skipped.
func Annotate(w io.Writer, backend core.Backend, funcs []*core.Func, p *Profiler, e *EdgeProfiler) {
	var pcCounts map[uint64]uint64
	var total uint64
	if p != nil {
		pcCounts = p.PCCounts()
		total = p.TotalSamples()
	}
	for _, fn := range funcs {
		if fn == nil {
			continue
		}
		if !fn.Installed() {
			fmt.Fprintf(w, "%s [%s]: not installed, skipping\n\n", fn.Name, fn.BackendName)
			continue
		}
		fmt.Fprintf(w, "%s [%s] @ %#x (%d bytes, entry +%#x):\n",
			fn.Name, fn.BackendName, fn.Addr(), fn.SizeBytes(), 4*uint64(fn.Entry))
		fmt.Fprintf(w, "  samples   pct%%          pc      word  disasm\n")
		for i, word := range fn.Words {
			pc := fn.Addr() + 4*uint64(i)
			if i == fn.PoolStart {
				fmt.Fprintf(w, "  ---- constant pool ----\n")
			}
			var samples, pct string
			if n := pcCounts[pc]; n > 0 {
				samples = fmt.Sprintf("%d", n)
				if total > 0 {
					pct = fmt.Sprintf("%.2f", 100*float64(n)/float64(total))
				}
			}
			var text string
			if i >= fn.PoolStart {
				text = fmt.Sprintf(".word %#08x", word)
			} else {
				text = backend.Disasm(word, pc)
			}
			var bias string
			if e != nil {
				if taken, not, ok := e.EdgeAt(pc); ok && taken+not > 0 {
					bias = fmt.Sprintf("   ; taken %.1f%% (%d/%d)",
						100*float64(taken)/float64(taken+not), taken, taken+not)
				}
			}
			fmt.Fprintf(w, "  %7s %5s  %#010x  %08x  %s%s\n", samples, pct, pc, word, text, bias)
		}
		fmt.Fprintln(w)
	}
}
