// Package profile is a PC-sampling profiler for dynamically generated
// code: it hooks the target simulators (via core.SamplingCPU) on a
// configurable retired-instruction stride, symbolizes each sample against
// the install-time address map core.Machine maintains, and renders flat
// (per-PC) and cumulative (per-function) reports plus a pprof-compatible
// protobuf profile.  It answers the question the Valgrind line of work
// poses for generated binary code — where do the cycles actually go? —
// which the adaptive JIT and later perf PRs need before they can act.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// DefaultStride is the sampling period in retired instructions.  At
// typical generated-code block sizes it keeps sampling overhead around a
// percent while still attributing hot loops within a few hundred calls.
const DefaultStride = 64

// Profiler accumulates PC samples.  Samples are symbolized eagerly (the
// machine's address map is lock-free), so functions evicted between
// sampling and reporting keep their attribution.  A profiler may be
// attached to several machines; each attachment carries its own
// symbolizer.  Safe for concurrent use.
type Profiler struct {
	stride uint64
	maxPCs int

	mu       sync.Mutex
	samples  map[uint64]*pcBucket
	total    uint64
	dropped  uint64
	machines []*core.Machine
	hot      *HotCounts
}

type pcBucket struct {
	name  string
	count uint64
}

// New returns a profiler sampling every stride retired instructions
// (0 selects DefaultStride).  Distinct-PC tracking is bounded (65536
// addresses); overflow samples are counted but not attributed.
func New(stride uint64) *Profiler {
	if stride == 0 {
		stride = DefaultStride
	}
	return &Profiler{
		stride:  stride,
		maxPCs:  1 << 16,
		samples: make(map[uint64]*pcBucket),
	}
}

// Stride returns the sampling period in retired instructions.
func (p *Profiler) Stride() uint64 { return p.stride }

// SetHotCounts links an invocation-count table (e.g. the adaptive JIT's)
// so reports can show calls alongside samples.
func (p *Profiler) SetHotCounts(h *HotCounts) {
	p.mu.Lock()
	p.hot = h
	p.mu.Unlock()
}

// Attach hooks the profiler onto m's simulator.  It fails if the CPU does
// not support sampling.  Attach may be called for several machines; the
// per-machine symbolizer is captured here, at attach time.
func (p *Profiler) Attach(m *core.Machine) error {
	resolve, inCode := m.SymbolizePC, m.InCodeRegion
	if err := m.SetSampler(func(pc uint64) { p.record(resolve, inCode, pc) }, p.stride); err != nil {
		return err
	}
	p.mu.Lock()
	p.machines = append(p.machines, m)
	p.mu.Unlock()
	return nil
}

// Detach removes the profiler's hook from m.
func (p *Profiler) Detach(m *core.Machine) {
	_ = m.SetSampler(nil, 0)
	p.mu.Lock()
	for i, mm := range p.machines {
		if mm == m {
			p.machines = append(p.machines[:i], p.machines[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// record is the sampling hook: it runs inside the simulator's step loop,
// so it symbolizes through the machine's lock-free address map and then
// takes only the profiler's own lock.  Samples that no longer resolve —
// the containing function was just evicted — keep their previous
// attribution if the PC was seen before, and otherwise count under
// "[evicted]" (PC inside the code arena) or "[unknown]"; they are never
// silently dropped.
func (p *Profiler) record(resolve func(uint64) (string, bool), inCode func(uint64) bool, pc uint64) {
	name, ok := resolve(pc)
	p.mu.Lock()
	p.total++
	if b, seen := p.samples[pc]; seen {
		b.count++
		if ok {
			b.name = name // re-resolve: the address may have been reused
		}
	} else if len(p.samples) < p.maxPCs {
		if !ok {
			name = "[unknown]"
			if inCode != nil && inCode(pc) {
				name = "[evicted]"
			}
		}
		p.samples[pc] = &pcBucket{name: name, count: 1}
	} else {
		p.dropped++
	}
	p.mu.Unlock()
}

// PCCounts snapshots the raw per-PC sample counts (the annotated-
// disassembly renderer joins them against function word addresses).
func (p *Profiler) PCCounts() map[uint64]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[uint64]uint64, len(p.samples))
	for pc, b := range p.samples {
		out[pc] = b.count
	}
	return out
}

// TotalSamples returns the number of samples recorded so far.
func (p *Profiler) TotalSamples() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Reset discards all accumulated samples.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.samples = make(map[uint64]*pcBucket)
	p.total, p.dropped = 0, 0
	p.mu.Unlock()
}

// PCSample is one flat-report row: samples attributed to a single
// program counter.
type PCSample struct {
	PC     uint64 `json:"pc"`
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	Pct    float64
	Offset uint64 `json:"offset"` // byte offset of PC within its function, when known
}

// FuncSample is one cumulative-report row: all samples landing anywhere
// in one function.
type FuncSample struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Pct   float64 `json:"pct"`
	Calls int64   `json:"calls,omitempty"` // from HotCounts, when linked
}

// Report is a symbolized snapshot of the profile.
type Report struct {
	TotalSamples uint64       `json:"total_samples"`
	DroppedPCs   uint64       `json:"dropped_pcs"`
	Stride       uint64       `json:"stride"`
	Funcs        []FuncSample `json:"funcs"` // cumulative, sorted by count desc
	TopPCs       []PCSample   `json:"top_pcs"`
}

// Snapshot builds a Report, listing at most topPCs flat rows (0 = 20).
func (p *Profiler) Snapshot(topPCs int) Report {
	if topPCs <= 0 {
		topPCs = 20
	}
	p.mu.Lock()
	pcs := make([]PCSample, 0, len(p.samples))
	byFunc := make(map[string]uint64)
	for pc, b := range p.samples {
		pcs = append(pcs, PCSample{PC: pc, Name: b.name, Count: b.count})
		byFunc[b.name] += b.count
	}
	rep := Report{TotalSamples: p.total, DroppedPCs: p.dropped, Stride: p.stride}
	hot := p.hot
	machines := append([]*core.Machine(nil), p.machines...)
	p.mu.Unlock()

	// Function base addresses (for PC offsets) from the live address maps.
	base := make(map[string]uint64)
	for _, m := range machines {
		for _, s := range m.FuncSpans() {
			if _, ok := base[s.Name]; !ok {
				base[s.Name] = s.Start
			}
		}
	}

	total := float64(rep.TotalSamples)
	for name, n := range byFunc {
		fs := FuncSample{Name: name, Count: n}
		if total > 0 {
			fs.Pct = 100 * float64(n) / total
		}
		if hot != nil {
			fs.Calls = hot.GetByName(name)
		}
		rep.Funcs = append(rep.Funcs, fs)
	}
	sort.Slice(rep.Funcs, func(i, j int) bool {
		if rep.Funcs[i].Count != rep.Funcs[j].Count {
			return rep.Funcs[i].Count > rep.Funcs[j].Count
		}
		return rep.Funcs[i].Name < rep.Funcs[j].Name
	})

	sort.Slice(pcs, func(i, j int) bool {
		if pcs[i].Count != pcs[j].Count {
			return pcs[i].Count > pcs[j].Count
		}
		return pcs[i].PC < pcs[j].PC
	})
	if len(pcs) > topPCs {
		pcs = pcs[:topPCs]
	}
	for i := range pcs {
		if total > 0 {
			pcs[i].Pct = 100 * float64(pcs[i].Count) / total
		}
		if b, ok := base[pcs[i].Name]; ok && pcs[i].PC >= b {
			pcs[i].Offset = pcs[i].PC - b
		}
	}
	rep.TopPCs = pcs
	return rep
}

// Render writes the report: a cumulative (per-function) section, then a
// flat (hottest-PC) section.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "profile: %d samples, 1 per %d instructions (%d PCs dropped)\n",
		r.TotalSamples, r.Stride, r.DroppedPCs)
	fmt.Fprintf(w, "cumulative (per function):\n")
	for _, f := range r.Funcs {
		calls := ""
		if f.Calls > 0 {
			calls = fmt.Sprintf("  (%d calls)", f.Calls)
		}
		fmt.Fprintf(w, "  %6.2f%% %10d  %s%s\n", f.Pct, f.Count, f.Name, calls)
	}
	fmt.Fprintf(w, "flat (hottest PCs):\n")
	for _, s := range r.TopPCs {
		fmt.Fprintf(w, "  %6.2f%% %10d  %#08x  %s+%#x\n", s.Pct, s.Count, s.PC, s.Name, s.Offset)
	}
}

func (r Report) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// RegisterTelemetry exports the profiler's aggregate state through a
// telemetry registry.
func (p *Profiler) RegisterTelemetry(reg *telemetry.Registry, name string) {
	prefix := "profile." + name + "."
	reg.GaugeFunc(prefix+"samples", func() float64 { return float64(p.TotalSamples()) })
	reg.GaugeFunc(prefix+"stride", func() float64 { return float64(p.stride) })
	reg.GaugeFunc(prefix+"distinct_pcs", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.samples))
	})
}
