package profile_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// hotColdMachine builds a mips JIT target with a profiler attached and
// runs a skewed workload: syn1 gets ~95% of the calls, syn2 the rest.
func hotColdMachine(t *testing.T, stride uint64) (*jit.Machine, *profile.Profiler) {
	t.Helper()
	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(stride)
	if err := p.Attach(m.Core()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Detach(m.Core()) })

	hot, err := m.Compile(jit.Synthetic(1))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.Compile(jit.Synthetic(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := m.Run(hot, 100); err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 {
			if _, _, err := m.Run(cold, 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, p
}

// TestSymbolization is the acceptance bar from the issue: on a workload
// of installed functions, at least 90% of samples must attribute to a
// named function (not "[unknown]").
func TestSymbolization(t *testing.T) {
	_, p := hotColdMachine(t, 8)
	rep := p.Snapshot(10)
	if rep.TotalSamples < 100 {
		t.Fatalf("too few samples to judge attribution: %d", rep.TotalSamples)
	}
	var named uint64
	for _, f := range rep.Funcs {
		if f.Name != "" && !strings.HasPrefix(f.Name, "[unknown") {
			named += f.Count
		}
	}
	if pct := 100 * float64(named) / float64(rep.TotalSamples); pct < 90 {
		t.Errorf("only %.1f%% of %d samples symbolized, want >= 90%%\nfuncs: %+v",
			pct, rep.TotalSamples, rep.Funcs)
	}
	// The skewed workload must surface the hot function on top.
	if len(rep.Funcs) == 0 || rep.Funcs[0].Name != "syn1" {
		t.Errorf("hottest function = %+v, want syn1 on top", rep.Funcs)
	}
}

func TestReportOffsetsAndRender(t *testing.T) {
	_, p := hotColdMachine(t, 16)
	rep := p.Snapshot(5)
	if len(rep.TopPCs) == 0 {
		t.Fatal("no flat rows")
	}
	if len(rep.TopPCs) > 5 {
		t.Errorf("topPCs = %d rows, want <= 5", len(rep.TopPCs))
	}
	out := rep.String()
	for _, want := range []string{"samples", "cumulative", "syn1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestHotCountsLinked(t *testing.T) {
	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		t.Fatal(err)
	}
	ad := jit.NewAdaptive(m, 3)
	p := profile.New(8)
	if err := p.Attach(m.Core()); err != nil {
		t.Fatal(err)
	}
	defer p.Detach(m.Core())
	p.SetHotCounts(ad.Hot())

	f := jit.Synthetic(7)
	for i := 0; i < 10; i++ {
		if _, _, err := ad.Call(f, 50); err != nil {
			t.Fatal(err)
		}
	}
	rep := p.Snapshot(5)
	for _, fs := range rep.Funcs {
		if fs.Name == "syn7" {
			if fs.Calls != 10 {
				t.Errorf("syn7 calls = %d, want 10 (from shared HotCounts)", fs.Calls)
			}
			return
		}
	}
	t.Fatalf("syn7 not in report: %+v", rep.Funcs)
}

func TestHotCounts(t *testing.T) {
	h := profile.NewHotCounts()
	for i := 0; i < 5; i++ {
		h.Inc("k1", "f1")
	}
	h.Inc("k2", "f2")
	if got := h.Get("k1"); got != 5 {
		t.Errorf("Get(k1) = %d, want 5", got)
	}
	if got := h.GetByName("f1"); got != 5 {
		t.Errorf("GetByName(f1) = %d, want 5", got)
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[0].Key != "k1" || snap[0].Calls != 5 {
		t.Errorf("snapshot = %+v, want k1 first with 5 calls", snap)
	}
}

// TestWritePprof checks the hand-rolled protobuf is a gzip stream whose
// payload carries the function names in its string table.
func TestWritePprof(t *testing.T) {
	_, p := hotColdMachine(t, 8)
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"syn1", "syn2", "samples", "instructions", "count"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("pprof payload missing string %q", want)
		}
	}
}

func TestResetAndTelemetry(t *testing.T) {
	_, p := hotColdMachine(t, 8)
	if p.TotalSamples() == 0 {
		t.Fatal("no samples before reset")
	}
	reg := telemetry.NewRegistry()
	p.RegisterTelemetry(reg, "t")
	text := reg.TextString()
	for _, want := range []string{"profile_t_samples", "profile_t_stride 8"} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry export missing %q:\n%s", want, text)
		}
	}
	p.Reset()
	if got := p.TotalSamples(); got != 0 {
		t.Errorf("samples after Reset = %d, want 0", got)
	}
}

// edgeMachine builds a mips JIT target with an edge profiler attached and
// runs a loop-heavy workload so conditional branches resolve many times.
func edgeMachine(t *testing.T, stride uint64) (*jit.Machine, *profile.EdgeProfiler) {
	t.Helper()
	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		t.Fatal(err)
	}
	e := profile.NewEdgeProfiler(stride)
	if err := e.Attach(m.Core()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Detach(m.Core()) })
	fn, err := m.Compile(jit.Synthetic(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := m.Run(fn, 200); err != nil {
			t.Fatal(err)
		}
	}
	return m, e
}

// TestEdgeProfileEndToEnd drives the full path: simulator edge probe →
// symbolized taken/not-taken counts → bias report.
func TestEdgeProfileEndToEnd(t *testing.T) {
	_, e := edgeMachine(t, 3)
	rep := e.Snapshot(-1)
	if rep.TotalEvents < 100 {
		t.Fatalf("too few edge events: %d", rep.TotalEvents)
	}
	var sum uint64
	for _, s := range rep.Edges {
		sum += s.Taken + s.NotTaken
		if s.Bias < 0 || s.Bias > 1 {
			t.Errorf("bias out of range: %+v", s)
		}
	}
	// Consistency: every undropped event lands in exactly one bucket.
	if sum != rep.TotalEvents-rep.DroppedPCs {
		t.Errorf("edge counts sum to %d, want %d (total %d - dropped %d)",
			sum, rep.TotalEvents-rep.DroppedPCs, rep.TotalEvents, rep.DroppedPCs)
	}
	if len(rep.Edges) == 0 || rep.Edges[0].Name != "syn1" {
		t.Errorf("hottest edge = %+v, want syn1", rep.Edges)
	}
	// The loop's back-to-top conditional is strongly biased one way.
	var skewed bool
	for _, s := range rep.Edges {
		if s.Taken+s.NotTaken >= 20 && (s.Bias > 0.9 || s.Bias < 0.1) {
			skewed = true
		}
	}
	if !skewed {
		t.Errorf("no strongly biased loop branch in report:\n%s", rep)
	}
	out := rep.String()
	for _, want := range []string{"edge profile", "bias", "syn1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered edge report missing %q:\n%s", want, out)
		}
	}
}

// TestEdgeDetachStops verifies the edge probe is actually removed.
func TestEdgeDetachStops(t *testing.T) {
	m, e := edgeMachine(t, 3)
	e.Detach(m.Core())
	before := e.TotalEvents()
	fn, err := m.Compile(jit.Synthetic(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(fn, 100); err != nil {
		t.Fatal(err)
	}
	if got := e.TotalEvents(); got != before {
		t.Errorf("edge events grew after Detach: %d -> %d", before, got)
	}
	reg := telemetry.NewRegistry()
	e.RegisterTelemetry(reg, "t")
	if !strings.Contains(reg.TextString(), "edges_t_events") {
		t.Error("edge telemetry export missing edges_t_events")
	}
	e.Reset()
	if e.TotalEvents() != 0 {
		t.Error("events survived Reset")
	}
}

// TestAnnotate renders annotated disassembly with sample counts and
// branch-bias comments, and reports uninstalled functions instead of
// silently skipping them.
func TestAnnotate(t *testing.T) {
	m, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(4)
	e := profile.NewEdgeProfiler(2)
	if err := p.Attach(m.Core()); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(m.Core()); err != nil {
		t.Fatal(err)
	}
	defer p.Detach(m.Core())
	defer e.Detach(m.Core())

	fn, err := m.Compile(jit.Synthetic(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, _, err := m.Run(fn, 100); err != nil {
			t.Fatal(err)
		}
	}
	gone, err := m.Compile(jit.Synthetic(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(gone, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Core().Uninstall(gone); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	profile.Annotate(&buf, m.Core().Backend(), []*core.Func{fn, gone}, p, e)
	out := buf.String()
	for _, want := range []string{"syn1 [mips]", "; taken", "samples", "syn2 [mips]: not installed"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated disassembly missing %q:\n%s", want, out)
		}
	}
}

// TestDetachStopsSampling verifies the sampler hook is actually removed.
func TestDetachStopsSampling(t *testing.T) {
	m, p := hotColdMachine(t, 8)
	p.Detach(m.Core())
	before := p.TotalSamples()
	fn, err := m.Compile(jit.Synthetic(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(fn, 100); err != nil {
		t.Fatal(err)
	}
	if got := p.TotalSamples(); got != before {
		t.Errorf("samples grew after Detach: %d -> %d", before, got)
	}
}
