package alpha

import (
	"fmt"
	"math"

	"repro/internal/exec"
)

// Alpha port of the predecoded direct-threaded execution engine
// (internal/exec); see internal/mips/threaded.go for the scheme.  Alpha
// has no delay slots, which makes RunBody the simplest of the three
// loops; the load-use interlock (ra always, rb only for register-form
// operates, r31 never charged) is precomputed into SrcA/SrcB/LoadReg.
// The fetch/switch Step in cpu.go stays the verification oracle;
// internal/exec/diff requires bit-identical state from both engines.

// Dense opcodes: indices into alphaHandlers.
const (
	aLda uint16 = iota // also ldah (displacement pre-shifted)
	aLdl
	aLdq
	aLdqU
	aLds
	aLdt
	aStl
	aStq
	aStqU
	aSts
	aStt
	aBr // also bsr: identical semantics
	aBeq
	aBne
	aBlt
	aBle
	aBgt
	aBge
	aFbeq
	aFbne
	aFblt
	aFble
	aFbgt
	aFbge
	aJump
	aAddl
	aSubl
	aAddq
	aSubq
	aCmpeq
	aCmplt
	aCmple
	aCmpult
	aCmpule
	aBadInta
	aAnd
	aBic
	aBis
	aOrnot
	aXor
	aEqv
	aBadIntl
	aSll
	aSrl
	aSra
	aZap
	aZapnot
	aExtbl
	aExtwl
	aInsbl
	aInswl
	aMskbl
	aMskwl
	aBadInts
	aMull
	aMulq
	aBadIntm
	aCpys
	aCpysn
	aBadFltl
	aSqrts
	aSqrtt
	aBadFlts
	aAdds
	aSubs
	aMuls
	aDivs
	aAddt
	aSubt
	aMultT
	aDivt
	aCmpteq
	aCmptlt
	aCmptle
	aCvtts
	aCvtst
	aCvtqs
	aCvtqt
	aCvttqc
	aBadFlti
	aBadOp
	aNumOps
)

type thandler func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error)

var alphaHandlers [exec.OpTableSize]thandler

// opMask aliases exec.OpMask for the dispatch hot loop; the next line
// fails to compile if the opcode count ever outgrows the table.
const opMask = exec.OpMask

var _ [exec.OpTableSize - aNumOps]struct{}

func (c *CPU) twr(n uint8, v uint64) {
	if n != 31 {
		c.r[n] = v
	}
}

// topnd is the predecoded operate second operand: the 8-bit literal
// baked at predecode time, or rb.
func (c *CPU) topnd(in *exec.Instr) uint64 {
	if in.Flags&exec.FImm != 0 {
		return uint64(in.Imm)
	}
	return c.r[in.B]
}

// ajump follows a statically resolved transfer.
func (c *CPU) ajump(in *exec.Instr) int32 {
	if in.Target == exec.External {
		c.extPC = uint64(in.Imm)
		return exec.External
	}
	return in.Target
}

// abr resolves a conditional branch; the edge probe fires on every
// resolution, taken or not.
func (c *CPU) abr(in *exec.Instr, taken bool) int32 {
	c.edge(in.PC, taken)
	if !taken {
		return exec.NoBranch
	}
	return c.ajump(in)
}

// PendingDelay: Alpha has no delay slots.
func (c *CPU) PendingDelay() bool { return false }

// Predecode unpacks words into a threaded body.  Pure function of its
// arguments (safe from batch-install workers); malformed words become
// error handlers reproducing the oracle's exact messages.
func (c *CPU) Predecode(words []uint32, base uint64) *exec.Body {
	code := make([]exec.Instr, len(words))
	n := len(words)
	for i, w := range words {
		in := &code[i]
		pc := base + 4*uint64(i)
		in.PC = pc

		op := w >> 26
		ra := uint8(w >> 21 & 31)
		rb := uint8(w >> 16 & 31)
		disp16 := int64(int16(w))
		disp21 := int64(int32(w<<11) >> 11)

		// Interlock metadata, mirroring the oracle's pre-dispatch check:
		// ra is always a stall candidate; rb only for register-form
		// operates.
		in.SrcA = ra
		in.SrcB = exec.NoReg
		in.LoadReg = exec.NoReg
		if op >= opInta && op <= opIntm && w>>12&1 == 0 {
			in.SrcB = rb
		}

		resolveBr := func() {
			t := pc + 4 + uint64(disp21*4)
			if idx, ok := exec.ResolveTarget(base, n, t); ok {
				in.Target = idx
			} else {
				in.Target = exec.External
				in.Imm = int64(t)
			}
		}
		setOperands := func() {
			in.A, in.C = ra, uint8(w&31)
			if w>>12&1 == 1 {
				in.Flags |= exec.FImm
				in.Imm = int64(w >> 13 & 0xff)
			} else {
				in.B = rb
			}
		}

		switch op {
		case opLda:
			in.Op, in.A, in.B, in.Imm = aLda, ra, rb, disp16
		case opLdah:
			in.Op, in.A, in.B, in.Imm = aLda, ra, rb, disp16<<16
		case opLdl:
			in.Op, in.A, in.B, in.Imm, in.LoadReg = aLdl, ra, rb, disp16, ra
		case opLdq:
			in.Op, in.A, in.B, in.Imm, in.LoadReg = aLdq, ra, rb, disp16, ra
		case opLdqU:
			in.Op, in.A, in.B, in.Imm, in.LoadReg = aLdqU, ra, rb, disp16, ra
		case opLds:
			in.Op, in.A, in.B, in.Imm = aLds, ra, rb, disp16
		case opLdt:
			in.Op, in.A, in.B, in.Imm = aLdt, ra, rb, disp16
		case opStl:
			in.Op, in.A, in.B, in.Imm = aStl, ra, rb, disp16
		case opStq:
			in.Op, in.A, in.B, in.Imm = aStq, ra, rb, disp16
		case opStqU:
			in.Op, in.A, in.B, in.Imm = aStqU, ra, rb, disp16
		case opSts:
			in.Op, in.A, in.B, in.Imm = aSts, ra, rb, disp16
		case opStt:
			in.Op, in.A, in.B, in.Imm = aStt, ra, rb, disp16
		case opBr, opBsr:
			in.Op, in.A = aBr, ra
			resolveBr()
		case opBeq:
			in.Op, in.A = aBeq, ra
			resolveBr()
		case opBne:
			in.Op, in.A = aBne, ra
			resolveBr()
		case opBlt:
			in.Op, in.A = aBlt, ra
			resolveBr()
		case opBle:
			in.Op, in.A = aBle, ra
			resolveBr()
		case opBgt:
			in.Op, in.A = aBgt, ra
			resolveBr()
		case opBge:
			in.Op, in.A = aBge, ra
			resolveBr()
		case opFbeq:
			in.Op, in.A = aFbeq, ra
			resolveBr()
		case opFbne:
			in.Op, in.A = aFbne, ra
			resolveBr()
		case opFblt:
			in.Op, in.A = aFblt, ra
			resolveBr()
		case opFble:
			in.Op, in.A = aFble, ra
			resolveBr()
		case opFbgt:
			in.Op, in.A = aFbgt, ra
			resolveBr()
		case opFbge:
			in.Op, in.A = aFbge, ra
			resolveBr()
		case opJump:
			in.Op, in.A, in.B = aJump, ra, rb
		case opInta:
			setOperands()
			switch w >> 5 & 0x7f {
			case fnAddl:
				in.Op = aAddl
			case fnSubl:
				in.Op = aSubl
			case fnAddq:
				in.Op = aAddq
			case fnSubq:
				in.Op = aSubq
			case fnCmpeq:
				in.Op = aCmpeq
			case fnCmplt:
				in.Op = aCmplt
			case fnCmple:
				in.Op = aCmple
			case fnCmpult:
				in.Op = aCmpult
			case fnCmpule:
				in.Op = aCmpule
			default:
				in.Op, in.Imm = aBadInta, int64(w)
			}
		case opIntl:
			setOperands()
			switch w >> 5 & 0x7f {
			case fnAnd:
				in.Op = aAnd
			case fnBic:
				in.Op = aBic
			case fnBis:
				in.Op = aBis
			case fnOrnot:
				in.Op = aOrnot
			case fnXor:
				in.Op = aXor
			case fnEqv:
				in.Op = aEqv
			default:
				in.Op, in.Imm = aBadIntl, int64(w)
			}
		case opInts:
			setOperands()
			switch w >> 5 & 0x7f {
			case fnSll:
				in.Op = aSll
			case fnSrl:
				in.Op = aSrl
			case fnSra:
				in.Op = aSra
			case fnZap:
				in.Op = aZap
			case fnZapnot:
				in.Op = aZapnot
			case fnExtbl:
				in.Op = aExtbl
			case fnExtwl:
				in.Op = aExtwl
			case fnInsbl:
				in.Op = aInsbl
			case fnInswl:
				in.Op = aInswl
			case fnMskbl:
				in.Op = aMskbl
			case fnMskwl:
				in.Op = aMskwl
			default:
				in.Op, in.Imm = aBadInts, int64(w)
			}
		case opIntm:
			setOperands()
			switch w >> 5 & 0x7f {
			case fnMull:
				in.Op = aMull
			case fnMulq:
				in.Op = aMulq
			default:
				in.Op, in.Imm = aBadIntm, int64(w)
			}
		case opFltl:
			in.A, in.B, in.C = ra, rb, uint8(w&31)
			switch w >> 5 & 0x7ff {
			case fnCpys:
				in.Op = aCpys
			case fnCpysn:
				in.Op = aCpysn
			default:
				in.Op, in.Imm = aBadFltl, int64(w)
			}
		case opFlts:
			in.A, in.B, in.C = ra, rb, uint8(w&31)
			switch w >> 5 & 0x7ff {
			case fnSqrts:
				in.Op = aSqrts
			case fnSqrtt:
				in.Op = aSqrtt
			default:
				in.Op, in.Imm = aBadFlts, int64(w)
			}
		case opFlti:
			in.A, in.B, in.C = ra, rb, uint8(w&31)
			switch w >> 5 & 0x7ff {
			case fnAdds:
				in.Op = aAdds
			case fnSubs:
				in.Op = aSubs
			case fnMuls:
				in.Op = aMuls
			case fnDivs:
				in.Op = aDivs
			case fnAddt:
				in.Op = aAddt
			case fnSubt:
				in.Op = aSubt
			case fnMult:
				in.Op = aMultT
			case fnDivt:
				in.Op = aDivt
			case fnCmpteq:
				in.Op = aCmpteq
			case fnCmptlt:
				in.Op = aCmptlt
			case fnCmptle:
				in.Op = aCmptle
			case fnCvtts:
				in.Op = aCvtts
			case fnCvtst:
				in.Op = aCvtst
			case fnCvtqs:
				in.Op = aCvtqs
			case fnCvtqt:
				in.Op = aCvtqt
			case fnCvttqc:
				in.Op = aCvttqc
			default:
				in.Op, in.Imm = aBadFlti, int64(w)
			}
		default:
			in.Op, in.Imm = aBadOp, int64(w)
		}
	}
	return &exec.Body{Base: base, Code: code}
}

// RunBody executes predecoded instructions starting at idx until allow
// retire, control leaves the body, or a fault; same contract as the
// MIPS engine minus delay slots.
func (c *CPU) RunBody(b *exec.Body, idx int, allow uint64) (uint64, error) {
	code := b.Code
	// Retired instructions and base cycles accumulate in locals (n, plus
	// stall for load-use bubbles) and flush into c.insns/c.baseCycles at
	// every exit (see the MIPS engine for the rationale); flushed tracks
	// how much of n is already applied so the sampler branch can flush
	// through the current instruction before its probe fires.
	var n, stall, flushed uint64
	ll := c.lastLoad
	sampling := c.sampleEvery != 0
	for n < allow {
		in := &code[idx]
		// One combined predicate guards both rare per-instruction
		// concerns (PC sampling, a pending load-use interlock), so the
		// common ALU-stream iteration pays a single not-taken branch.
		if sampling || ll >= 0 {
			if sampling {
				if c.sampleLeft--; c.sampleLeft == 0 {
					c.sampleLeft = c.sampleEvery
					c.insns += n + 1 - flushed
					c.baseCycles += n + 1 - flushed + stall
					flushed, stall = n+1, 0
					c.sampleFn(in.PC)
				}
			}
			if ll >= 0 && ll != 31 {
				if in.SrcA == uint8(ll) || in.SrcB == uint8(ll) {
					stall++
				}
			}
		}
		br, err := alphaHandlers[in.Op&opMask](c, b, in)
		n++
		if err != nil {
			c.pc = in.PC
			c.flushBody(n-flushed, stall, ll)
			return n, err
		}
		ll = int(int8(in.LoadReg))
		if br == exec.NoBranch {
			// Fall-through is always idx+1 (predecode sets Instr.Next to
			// exactly that), so skip the field load.
			idx++
			if idx == len(code) {
				c.pc = in.PC + 4
				c.flushBody(n-flushed, stall, ll)
				return n, nil
			}
			continue
		}
		if br == exec.External {
			c.pc = c.extPC
			c.flushBody(n-flushed, stall, ll)
			return n, nil
		}
		idx = int(br)
	}
	c.pc = code[idx].PC
	c.flushBody(n-flushed, stall, ll)
	return n, nil
}

// flushBody applies the dispatch loop's locally-accumulated bookkeeping:
// pend retired instructions not yet counted, their base cycles plus
// stall interlock bubbles, and the interlock producer register.
func (c *CPU) flushBody(pend, stall uint64, ll int) {
	c.insns += pend
	c.baseCycles += pend + stall
	c.lastLoad = ll
}

func init() {
	h := alphaHandlers[:]
	nb := exec.NoBranch

	h[aLda] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.A, c.r[in.B]+uint64(in.Imm))
		return nb, nil
	}
	h[aLdl] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load(c.r[in.B]+uint64(in.Imm), 4)
		if err != nil {
			return 0, fmt.Errorf("alpha: ldl at pc %#x: %w", in.PC, err)
		}
		c.twr(in.A, uint64(int64(int32(v))))
		return nb, nil
	}
	h[aLdq] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load(c.r[in.B]+uint64(in.Imm), 8)
		if err != nil {
			return 0, fmt.Errorf("alpha: ldq at pc %#x: %w", in.PC, err)
		}
		c.twr(in.A, v)
		return nb, nil
	}
	h[aLdqU] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load((c.r[in.B]+uint64(in.Imm))&^uint64(7), 8)
		if err != nil {
			return 0, fmt.Errorf("alpha: ldq_u at pc %#x: %w", in.PC, err)
		}
		c.twr(in.A, v)
		return nb, nil
	}
	h[aLds] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load(c.r[in.B]+uint64(in.Imm), 4)
		if err != nil {
			return 0, fmt.Errorf("alpha: lds at pc %#x: %w", in.PC, err)
		}
		if in.A != 31 {
			c.f[in.A] = v
		}
		return nb, nil
	}
	h[aLdt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load(c.r[in.B]+uint64(in.Imm), 8)
		if err != nil {
			return 0, fmt.Errorf("alpha: ldt at pc %#x: %w", in.PC, err)
		}
		if in.A != 31 {
			c.f[in.A] = v
		}
		return nb, nil
	}
	h[aStl] = astore(4, func(c *CPU, in *exec.Instr) uint64 { return uint64(uint32(c.r[in.A])) }, false)
	h[aStq] = astore(8, func(c *CPU, in *exec.Instr) uint64 { return c.r[in.A] }, false)
	h[aStqU] = astore(8, func(c *CPU, in *exec.Instr) uint64 { return c.r[in.A] }, true)
	h[aSts] = astore(4, func(c *CPU, in *exec.Instr) uint64 { return c.f[in.A] & 0xffffffff }, false)
	h[aStt] = astore(8, func(c *CPU, in *exec.Instr) uint64 { return c.f[in.A] }, false)
	h[aBr] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.A, in.PC+4)
		return c.ajump(in), nil
	}
	h[aBeq] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, int64(c.r[in.A]) == 0), nil
	}
	h[aBne] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, int64(c.r[in.A]) != 0), nil
	}
	h[aBlt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, int64(c.r[in.A]) < 0), nil
	}
	h[aBle] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, int64(c.r[in.A]) <= 0), nil
	}
	h[aBgt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, int64(c.r[in.A]) > 0), nil
	}
	h[aBge] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, int64(c.r[in.A]) >= 0), nil
	}
	h[aFbeq] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, c.fT(uint32(in.A)) == 0), nil
	}
	h[aFbne] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, c.fT(uint32(in.A)) != 0), nil
	}
	h[aFblt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, c.fT(uint32(in.A)) < 0), nil
	}
	h[aFble] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, c.fT(uint32(in.A)) <= 0), nil
	}
	h[aFbgt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, c.fT(uint32(in.A)) > 0), nil
	}
	h[aFbge] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.abr(in, c.fT(uint32(in.A)) >= 0), nil
	}
	h[aJump] = func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error) {
		// Read rb before the link write, as the oracle does.
		t := c.r[in.B] &^ 3
		c.twr(in.A, in.PC+4)
		if b.Contains(t) {
			return int32(b.IndexOf(t)), nil
		}
		c.extPC = t
		return exec.External, nil
	}
	h[aAddl] = aop(func(a, b uint64) uint64 { return uint64(int64(int32(a + b))) })
	h[aSubl] = aop(func(a, b uint64) uint64 { return uint64(int64(int32(a - b))) })
	h[aAddq] = aop(func(a, b uint64) uint64 { return a + b })
	h[aSubq] = aop(func(a, b uint64) uint64 { return a - b })
	h[aCmpeq] = aop(func(a, b uint64) uint64 { return b2u64(a == b) })
	h[aCmplt] = aop(func(a, b uint64) uint64 { return b2u64(int64(a) < int64(b)) })
	h[aCmple] = aop(func(a, b uint64) uint64 { return b2u64(int64(a) <= int64(b)) })
	h[aCmpult] = aop(func(a, b uint64) uint64 { return b2u64(a < b) })
	h[aCmpule] = aop(func(a, b uint64) uint64 { return b2u64(a <= b) })
	h[aBadInta] = badFn("alpha: unknown INTA funct %#x at %#x", 0x7f)
	h[aAnd] = aop(func(a, b uint64) uint64 { return a & b })
	h[aBic] = aop(func(a, b uint64) uint64 { return a &^ b })
	h[aBis] = aop(func(a, b uint64) uint64 { return a | b })
	h[aOrnot] = aop(func(a, b uint64) uint64 { return a | ^b })
	h[aXor] = aop(func(a, b uint64) uint64 { return a ^ b })
	h[aEqv] = aop(func(a, b uint64) uint64 { return a ^ ^b })
	h[aBadIntl] = badFn("alpha: unknown INTL funct %#x at %#x", 0x7f)
	h[aSll] = aop(func(a, b uint64) uint64 { return a << (b & 63) })
	h[aSrl] = aop(func(a, b uint64) uint64 { return a >> (b & 63) })
	h[aSra] = aop(func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) })
	h[aZap] = aop(func(a, b uint64) uint64 { return a &^ zapMask(b) })
	h[aZapnot] = aop(func(a, b uint64) uint64 { return a & zapMask(b) })
	h[aExtbl] = aop(func(a, b uint64) uint64 { return a >> (8 * (b & 7)) & 0xff })
	h[aExtwl] = aop(func(a, b uint64) uint64 { return a >> (8 * (b & 7)) & 0xffff })
	h[aInsbl] = aop(func(a, b uint64) uint64 { return (a & 0xff) << (8 * (b & 7)) })
	h[aInswl] = aop(func(a, b uint64) uint64 { return (a & 0xffff) << (8 * (b & 7)) })
	h[aMskbl] = aop(func(a, b uint64) uint64 { return a &^ (uint64(0xff) << (8 * (b & 7))) })
	h[aMskwl] = aop(func(a, b uint64) uint64 { return a &^ (uint64(0xffff) << (8 * (b & 7))) })
	h[aBadInts] = badFn("alpha: unknown INTS funct %#x at %#x", 0x7f)
	h[aMull] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, uint64(int64(int32(c.r[in.A])*int32(c.topnd(in)))))
		c.baseCycles += 7
		return nb, nil
	}
	h[aMulq] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.r[in.A]*c.topnd(in))
		c.baseCycles += 11
		return nb, nil
	}
	h[aBadIntm] = badFn("alpha: unknown INTM funct %#x at %#x", 0x7f)
	h[aCpys] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		if in.C != 31 {
			c.f[in.C] = c.f[in.B]&^(1<<63) | c.f[in.A]&(1<<63)
		}
		return nb, nil
	}
	h[aCpysn] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		// The oracle writes f31 here (no guard); keep the quirk.
		c.f[in.C] = c.f[in.B] ^ 1<<63
		return nb, nil
	}
	h[aBadFltl] = badFn11("alpha: unknown FLTL funct %#x at %#x")
	h[aSqrts] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfS(uint32(in.C), float32(math.Sqrt(float64(c.fS(uint32(in.B))))))
		c.baseCycles += 29
		return nb, nil
	}
	h[aSqrtt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), math.Sqrt(c.fT(uint32(in.B))))
		c.baseCycles += 29
		return nb, nil
	}
	h[aBadFlts] = badFn11("alpha: unknown FLTS funct %#x at %#x")
	h[aAdds] = afS(1, func(a, b float32) float32 { return a + b })
	h[aSubs] = afS(1, func(a, b float32) float32 { return a - b })
	h[aMuls] = afS(3, func(a, b float32) float32 { return a * b })
	h[aDivs] = afS(11, func(a, b float32) float32 { return a / b })
	h[aAddt] = afT(1, func(a, b float64) float64 { return a + b })
	h[aSubt] = afT(1, func(a, b float64) float64 { return a - b })
	h[aMultT] = afT(4, func(a, b float64) float64 { return a * b })
	h[aDivt] = afT(18, func(a, b float64) float64 { return a / b })
	h[aCmpteq] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), cmpResult(c.fT(uint32(in.A)) == c.fT(uint32(in.B))))
		return nb, nil
	}
	h[aCmptlt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), cmpResult(c.fT(uint32(in.A)) < c.fT(uint32(in.B))))
		return nb, nil
	}
	h[aCmptle] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), cmpResult(c.fT(uint32(in.A)) <= c.fT(uint32(in.B))))
		return nb, nil
	}
	h[aCvtts] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfS(uint32(in.C), float32(c.fT(uint32(in.B))))
		return nb, nil
	}
	h[aCvtst] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), float64(c.fS(uint32(in.B))))
		return nb, nil
	}
	h[aCvtqs] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfS(uint32(in.C), float32(int64(c.f[in.B])))
		return nb, nil
	}
	h[aCvtqt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), float64(int64(c.f[in.B])))
		return nb, nil
	}
	h[aCvttqc] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		// The oracle writes f[fc] unguarded here; keep the quirk.
		c.f[in.C] = uint64(truncToI64(c.fT(uint32(in.B))))
		return nb, nil
	}
	h[aBadFlti] = badFn11("alpha: unknown FLTI funct %#x at %#x")
	h[aBadOp] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("alpha: unknown opcode %#x (word %#08x) at %#x", uint32(in.Imm)>>26, uint32(in.Imm), in.PC)
	}
}

func zapMask(b uint64) uint64 {
	mask := uint64(0)
	for i := 0; i < 8; i++ {
		if b>>i&1 == 1 {
			mask |= 0xff << (8 * i)
		}
	}
	return mask
}

func aop(f func(a, b uint64) uint64) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, f(c.r[in.A], c.topnd(in)))
		return exec.NoBranch, nil
	}
}

func afS(cycles uint64, f func(a, b float32) float32) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfS(uint32(in.C), f(c.fS(uint32(in.A)), c.fS(uint32(in.B))))
		c.baseCycles += cycles
		return exec.NoBranch, nil
	}
}

func afT(cycles uint64, f func(a, b float64) float64) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfT(uint32(in.C), f(c.fT(uint32(in.A)), c.fT(uint32(in.B))))
		c.baseCycles += cycles
		return exec.NoBranch, nil
	}
}

func astore(size int, src func(c *CPU, in *exec.Instr) uint64, alignQ bool) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		addr := c.r[in.B] + uint64(in.Imm)
		if alignQ {
			addr &^= 7
		}
		if err := c.m.Store(addr, size, src(c, in)); err != nil {
			return 0, fmt.Errorf("alpha: store at pc %#x: %w", in.PC, err)
		}
		return exec.NoBranch, nil
	}
}

func badFn(format string, mask uint32) thandler {
	return func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf(format, uint32(in.Imm)>>5&mask, in.PC)
	}
}

func badFn11(format string) thandler {
	return func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf(format, uint32(in.Imm)>>5&0x7ff, in.PC)
	}
}
