package alpha

import "repro/internal/verify"

// Classify decodes the control-flow behaviour of one Alpha word for the
// pre-install verifier.  Branch-format displacements are relative to the
// updated pc (pc+4); the jump format (jmp/jsr/ret) is register-indirect.
func (a *Backend) Classify(w uint32, pc uint64) verify.Insn {
	op := w >> 26
	switch {
	case op == opJump:
		if w>>21&0x1f != 31 { // writes a link register: indirect call
			return verify.Insn{Kind: verify.KindCall}
		}
		return verify.Insn{Kind: verify.KindJumpReg}
	case op >= 0x30 && op <= 0x3f:
		disp := int64(int32(w<<11) >> 11)
		target := pc + 4 + uint64(disp*4)
		if op == opBsr {
			return verify.Insn{Kind: verify.KindCall, Target: target, HasTarget: true}
		}
		return verify.Insn{Kind: verify.KindBranch, Target: target, HasTarget: true}
	}
	return verify.Insn{Kind: verify.KindOther}
}
