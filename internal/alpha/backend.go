package alpha

import (
	"fmt"

	"repro/internal/core"
)

// Register numbers (OSF/1 conventional names).
const (
	rV0   = 0
	rA0   = 16
	rRA   = 26
	rPV   = 27 // procedure value: reserved for call sequences
	rAT   = 28 // assembler scratch
	rGP   = 29 // reserved; VCODE borrows it inside byte-store synthesis
	rSP   = 30
	rZero = 31
)

// Backend is the Alpha port of VCODE.
type Backend struct {
	conv *core.CallConv
	regs *core.RegFile
}

// New returns the Alpha backend.
func New() *Backend {
	return &Backend{conv: newConv(), regs: newRegFile()}
}

func newConv() *core.CallConv {
	g := core.GPR
	f := core.FPR
	return &core.CallConv{
		IntArgs: []core.Reg{g(16), g(17), g(18), g(19), g(20), g(21)},
		FPArgs:  []core.Reg{f(16), f(17), f(18), f(19), f(20), f(21)},
		RetInt:  g(rV0),
		RetFP:   f(0),
		RA:      g(rRA),
		SP:      g(rSP),
		Zero:    g(rZero),
		CallerSaved: []core.Reg{
			g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8), // t0-t7
			g(22), g(23), g(24), g(25), // t8-t11
			g(21), g(20), g(19), g(18), g(17), g(16), // unused args
		},
		CalleeSaved: []core.Reg{
			g(9), g(10), g(11), g(12), g(13), g(14), g(15), // s0-s6
		},
		CallerSavedFP: []core.Reg{
			f(10), f(11), f(12), f(13), f(14), f(15),
			f(22), f(23), f(24), f(25), f(26), f(27), f(28),
			f(21), f(20), f(19), f(18), f(17), f(16),
		},
		CalleeSavedFP: []core.Reg{f(2), f(3), f(4), f(5), f(6), f(7), f(8), f(9)},
		StackAlign:    16,
		SlotBytes:     8,
		HardTemp: []core.Reg{
			g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8), g(22), g(23), g(24), g(25),
		},
		HardVar:    []core.Reg{g(9), g(10), g(11), g(12), g(13), g(14)},
		HardTempFP: []core.Reg{f(10), f(11), f(12), f(13), f(14), f(15)},
		HardVarFP:  []core.Reg{f(2), f(3), f(4), f(5), f(6), f(7), f(8), f(9)},
	}
}

var gprNames = []string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
	"t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6",
	"a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
	"t10", "t11", "ra", "pv", "at", "gp", "sp", "zero",
}

func newRegFile() *core.RegFile {
	fpr := make([]string, 32)
	for i := range fpr {
		fpr[i] = fmt.Sprintf("f%d", i)
	}
	return &core.RegFile{NumGPR: 32, NumFPR: 32, GPRName: gprNames, FPRName: fpr}
}

func (*Backend) Name() string                  { return "alpha" }
func (*Backend) PtrBytes() int                 { return 8 }
func (a *Backend) RegFile() *core.RegFile      { return a.regs }
func (a *Backend) DefaultConv() *core.CallConv { return a.conv }
func (*Backend) BranchDelaySlots() int         { return 0 }
func (*Backend) LoadDelay() int                { return 2 }
func (*Backend) BigEndian() bool               { return false }
func (*Backend) ScratchReg() core.Reg          { return core.GPR(rAT) }
func (*Backend) ScratchFPR() core.Reg          { return core.FPR(30) }
func (*Backend) RetAddrOffset() int            { return 0 }

func gn(r core.Reg) uint32 { return uint32(r.Num()) }

func is32(t core.Type) bool { return t == core.TypeI || t == core.TypeU }

// materialize loads an arbitrary 64-bit constant into register r using
// lda/ldah chunks (with the usual sign-carry corrections) and a shift for
// constants wider than 32 bits.
func materialize(b *core.Buf, r uint32, imm int64) {
	l0 := int64(int16(imm))
	v1 := (imm - l0) >> 16
	l1 := int64(int16(v1))
	v2 := (v1 - l1) >> 16
	l2 := int64(int16(v2))
	v3 := (v2 - l2) >> 16
	l3 := int64(int16(v3))

	if v2 == 0 && v3 == 0 {
		// 32-bit path: at most ldah + lda.
		switch {
		case l1 != 0 && l0 != 0:
			b.Emit(memFmt(opLdah, r, rZero, int32(l1)))
			b.Emit(memFmt(opLda, r, r, int32(l0)))
		case l1 != 0:
			b.Emit(memFmt(opLdah, r, rZero, int32(l1)))
		default:
			b.Emit(memFmt(opLda, r, rZero, int32(l0)))
		}
		return
	}
	// 64-bit path: build the upper 32 bits, shift, add the lower.
	switch {
	case l3 != 0 && l2 != 0:
		b.Emit(memFmt(opLdah, r, rZero, int32(l3)))
		b.Emit(memFmt(opLda, r, r, int32(l2)))
	case l3 != 0:
		b.Emit(memFmt(opLdah, r, rZero, int32(l3)))
	default:
		b.Emit(memFmt(opLda, r, rZero, int32(l2)))
	}
	b.Emit(opFmtL(opInts, r, 32, fnSll, r))
	if l1 != 0 {
		b.Emit(memFmt(opLdah, r, r, int32(l1)))
	}
	if l0 != 0 {
		b.Emit(memFmt(opLda, r, r, int32(l0)))
	}
}

// canon32 sign-extends the low 32 bits of r into r (the canonical form).
func canon32(b *core.Buf, r uint32) {
	b.Emit(opFmtL(opInta, r, 0, fnAddl, r))
}

// ALU implements rd = rs1 op rs2.
func (a *Backend) ALU(b *core.Buf, op core.Op, t core.Type, rd, rs1, rs2 core.Reg) error {
	if t.IsFloat() {
		var fn uint32
		switch {
		case op == core.OpAdd && t == core.TypeF:
			fn = fnAdds
		case op == core.OpAdd:
			fn = fnAddt
		case op == core.OpSub && t == core.TypeF:
			fn = fnSubs
		case op == core.OpSub:
			fn = fnSubt
		case op == core.OpMul && t == core.TypeF:
			fn = fnMuls
		case op == core.OpMul:
			fn = fnMult
		case op == core.OpDiv && t == core.TypeF:
			fn = fnDivs
		case op == core.OpDiv:
			fn = fnDivt
		default:
			return fmt.Errorf("alpha: %s%s unsupported", op, t)
		}
		b.Emit(fpFmt(opFlti, gn(rs1), gn(rs2), fn, gn(rd)))
		return nil
	}
	return a.aluInt(b, op, t, gn(rd), gn(rs1), gn(rs2), 0, false)
}

// ALUImm implements rd = rs op imm.
func (a *Backend) ALUImm(b *core.Buf, op core.Op, t core.Type, rd, rs core.Reg, imm int64) error {
	if fitsLit8(imm) {
		return a.aluInt(b, op, t, gn(rd), gn(rs), 0, uint32(imm), true)
	}
	materialize(b, rAT, imm)
	return a.aluInt(b, op, t, gn(rd), gn(rs), rAT, 0, false)
}

// aluInt emits an integer binary operation in register or literal form.
func (a *Backend) aluInt(b *core.Buf, op core.Op, t core.Type, rd, rs1, rs2, lit uint32, isLit bool) error {
	emit := func(opc, fn uint32) {
		if isLit {
			b.Emit(opFmtL(opc, rs1, lit, fn, rd))
		} else {
			b.Emit(opFmtR(opc, rs1, rs2, fn, rd))
		}
	}
	w32 := is32(t)
	switch op {
	case core.OpAdd:
		if w32 {
			emit(opInta, fnAddl)
		} else {
			emit(opInta, fnAddq)
		}
	case core.OpSub:
		if w32 {
			emit(opInta, fnSubl)
		} else {
			emit(opInta, fnSubq)
		}
	case core.OpMul:
		if w32 {
			emit(opIntm, fnMull)
		} else {
			emit(opIntm, fnMulq)
		}
	case core.OpAnd:
		emit(opIntl, fnAnd)
	case core.OpOr:
		emit(opIntl, fnBis)
	case core.OpXor:
		emit(opIntl, fnXor)
	case core.OpLsh:
		if w32 {
			emit(opInts, fnSll)
			canon32(b, rd)
		} else {
			emit(opInts, fnSll)
		}
	case core.OpRsh:
		switch {
		case t.IsSigned():
			emit(opInts, fnSra) // canonical 32-bit values shift correctly
		case w32:
			// Zero-extend, 64-bit logical shift, re-canonicalize.
			b.Emit(opFmtL(opInts, rs1, 0x0f, fnZapnot, rAT))
			if isLit {
				b.Emit(opFmtL(opInts, rAT, lit, fnSrl, rd))
			} else {
				b.Emit(opFmtR(opInts, rAT, rs2, fnSrl, rd))
			}
			canon32(b, rd)
		default:
			emit(opInts, fnSrl)
		}
	default:
		return fmt.Errorf("alpha: ALU op %s%s unsupported (division is emulated)", op, t)
	}
	return nil
}

// Unary implements rd = op rs.
func (a *Backend) Unary(b *core.Buf, op core.Op, t core.Type, rd, rs core.Reg) error {
	if t.IsFloat() {
		switch {
		case op == core.OpMov:
			b.Emit(fpFmt(opFltl, gn(rs), gn(rs), fnCpys, gn(rd)))
		case op == core.OpNeg && t == core.TypeD:
			b.Emit(fpFmt(opFltl, gn(rs), gn(rs), fnCpysn, gn(rd)))
		case op == core.OpNeg: // single: promote, flip the sign, demote
			b.Emit(fpFmt(opFlti, 31, gn(rs), fnCvtst, 30))
			b.Emit(fpFmt(opFltl, 30, 30, fnCpysn, 30))
			b.Emit(fpFmt(opFlti, 31, 30, fnCvtts, gn(rd)))
		default:
			return fmt.Errorf("alpha: %s%s unsupported", op, t)
		}
		return nil
	}
	d, s := gn(rd), gn(rs)
	switch op {
	case core.OpMov:
		b.Emit(opFmtR(opIntl, s, s, fnBis, d))
	case core.OpCom:
		b.Emit(opFmtR(opIntl, rZero, s, fnOrnot, d))
	case core.OpNot:
		b.Emit(opFmtL(opInta, s, 0, fnCmpeq, d))
	case core.OpNeg:
		if is32(t) {
			b.Emit(opFmtR(opInta, rZero, s, fnSubl, d))
		} else {
			b.Emit(opFmtR(opInta, rZero, s, fnSubq, d))
		}
	default:
		return fmt.Errorf("alpha: unary op %s unsupported", op)
	}
	return nil
}

// SetImm implements rd = imm (canonical form for 32-bit types).
func (a *Backend) SetImm(b *core.Buf, t core.Type, rd core.Reg, imm int64) error {
	if is32(t) {
		imm = int64(int32(imm))
	}
	materialize(b, gn(rd), imm)
	return nil
}

// Cvt implements rd = (to)rs.  The 21064 moves values between the integer
// and FP banks through memory; VCODE uses a 16-byte scratch frame below SP.
func (a *Backend) Cvt(b *core.Buf, from, to core.Type, rd, rs core.Reg) error {
	switch {
	case from.IsInteger() && to.IsInteger():
		switch {
		case is32(to):
			canonTo(b, gn(rs), gn(rd))
		case from == core.TypeU:
			// Zero-extend the canonical 32-bit value.
			b.Emit(opFmtL(opInts, gn(rs), 0x0f, fnZapnot, gn(rd)))
		default:
			b.Emit(opFmtR(opIntl, gn(rs), gn(rs), fnBis, gn(rd)))
		}
	case from.IsInteger() && to.IsFloat():
		src := gn(rs)
		if from == core.TypeU {
			b.Emit(opFmtL(opInts, src, 0x0f, fnZapnot, rAT))
			src = rAT
		}
		b.Emit(memFmt(opLda, rSP, rSP, -16))
		b.Emit(memFmt(opStq, src, rSP, 0))
		b.Emit(memFmt(opLdt, 30, rSP, 0))
		b.Emit(memFmt(opLda, rSP, rSP, 16))
		if to == core.TypeF {
			b.Emit(fpFmt(opFlti, 31, 30, fnCvtqs, gn(rd)))
		} else {
			b.Emit(fpFmt(opFlti, 31, 30, fnCvtqt, gn(rd)))
		}
	case from.IsFloat() && to.IsInteger():
		src := gn(rs)
		if from == core.TypeF {
			b.Emit(fpFmt(opFlti, 31, src, fnCvtst, 30))
			src = 30
		}
		b.Emit(fpFmt(opFlti, 31, src, fnCvttqc, 30))
		b.Emit(memFmt(opLda, rSP, rSP, -16))
		b.Emit(memFmt(opStt, 30, rSP, 0))
		b.Emit(memFmt(opLdq, gn(rd), rSP, 0))
		b.Emit(memFmt(opLda, rSP, rSP, 16))
		if is32(to) {
			canon32(b, gn(rd))
		}
	case from == core.TypeF && to == core.TypeD:
		b.Emit(fpFmt(opFlti, 31, gn(rs), fnCvtst, gn(rd)))
	case from == core.TypeD && to == core.TypeF:
		b.Emit(fpFmt(opFlti, 31, gn(rs), fnCvtts, gn(rd)))
	default:
		return fmt.Errorf("alpha: cv%s2%s unsupported", from.Letter(), to.Letter())
	}
	return nil
}

// canonTo emits rd = sign-extended low 32 bits of rs.
func canonTo(b *core.Buf, rs, rd uint32) {
	b.Emit(opFmtL(opInta, rs, 0, fnAddl, rd))
}

// Load implements rd = *(t*)(base+off), synthesizing byte/halfword
// accesses from unaligned quad loads (§6.2).
func (a *Backend) Load(b *core.Buf, t core.Type, rd, base core.Reg, off int64) error {
	d, bs := gn(rd), gn(base)
	if !fitsS16(off) {
		materialize(b, rAT, off)
		b.Emit(opFmtR(opInta, rAT, bs, fnAddq, rAT))
		bs, off = rAT, 0
	}
	switch t {
	case core.TypeI, core.TypeU:
		b.Emit(memFmt(opLdl, d, bs, int32(off)))
	case core.TypeL, core.TypeUL, core.TypeP:
		b.Emit(memFmt(opLdq, d, bs, int32(off)))
	case core.TypeF:
		b.Emit(memFmt(opLds, d, bs, int32(off)))
	case core.TypeD:
		b.Emit(memFmt(opLdt, d, bs, int32(off)))
	case core.TypeC, core.TypeUC, core.TypeS, core.TypeUS:
		// lda at, off(base); ldq_u rd, 0(at); ext{b,w}l rd, at, rd
		// [; sll/sra to sign-extend].
		b.Emit(memFmt(opLda, rAT, bs, int32(off)))
		b.Emit(memFmt(opLdqU, d, rAT, 0))
		ext := uint32(fnExtbl)
		bits := uint32(56)
		if t == core.TypeS || t == core.TypeUS {
			ext, bits = fnExtwl, 48
		}
		b.Emit(opFmtR(opInts, d, rAT, ext, d))
		if t.IsSigned() {
			b.Emit(opFmtL(opInts, d, bits, fnSll, d))
			b.Emit(opFmtL(opInts, d, bits, fnSra, d))
		}
	default:
		return fmt.Errorf("alpha: ld%s unsupported", t)
	}
	return nil
}

// Store implements *(t*)(base+off) = rs; byte/halfword stores use the
// read-modify-write sequence that costs the paper's eleven-instruction
// worst case on the real machine.
func (a *Backend) Store(b *core.Buf, t core.Type, rs, base core.Reg, off int64) error {
	s, bs := gn(rs), gn(base)
	if !fitsS16(off) {
		materialize(b, rAT, off)
		b.Emit(opFmtR(opInta, rAT, bs, fnAddq, rAT))
		bs, off = rAT, 0
	}
	switch t {
	case core.TypeI, core.TypeU:
		b.Emit(memFmt(opStl, s, bs, int32(off)))
	case core.TypeL, core.TypeUL, core.TypeP:
		b.Emit(memFmt(opStq, s, bs, int32(off)))
	case core.TypeF:
		b.Emit(memFmt(opSts, s, bs, int32(off)))
	case core.TypeD:
		b.Emit(memFmt(opStt, s, bs, int32(off)))
	case core.TypeC, core.TypeUC, core.TypeS, core.TypeUS:
		ins, msk := uint32(fnInsbl), uint32(fnMskbl)
		if t == core.TypeS || t == core.TypeUS {
			ins, msk = fnInswl, fnMskwl
		}
		b.Emit(memFmt(opLda, rAT, bs, int32(off)))
		b.Emit(memFmt(opLdqU, rGP, rAT, 0))
		b.Emit(opFmtR(opInts, s, rAT, ins, rPV))
		b.Emit(opFmtR(opInts, rGP, rAT, msk, rGP))
		b.Emit(opFmtR(opIntl, rGP, rPV, fnBis, rGP))
		b.Emit(memFmt(opStqU, rGP, rAT, 0))
	default:
		return fmt.Errorf("alpha: st%s unsupported", t)
	}
	return nil
}

// LoadRR implements rd = *(t*)(base+idx).
func (a *Backend) LoadRR(b *core.Buf, t core.Type, rd, base, idx core.Reg) error {
	b.Emit(opFmtR(opInta, gn(base), gn(idx), fnAddq, rAT))
	return a.Load(b, t, rd, core.GPR(rAT), 0)
}

// StoreRR implements *(t*)(base+idx) = rs.
func (a *Backend) StoreRR(b *core.Buf, t core.Type, rs, base, idx core.Reg) error {
	b.Emit(opFmtR(opInta, gn(base), gn(idx), fnAddq, rAT))
	return a.Store(b, t, rs, core.GPR(rAT), 0)
}

// Branch emits compare + branch and returns the patch site.
func (a *Backend) Branch(b *core.Buf, op core.Op, t core.Type, rs1, rs2 core.Reg) (int, error) {
	if t.IsFloat() {
		return a.fpBranch(b, op, t, rs1, rs2)
	}
	s1, s2 := gn(rs1), gn(rs2)
	signed := t.IsSigned()
	cmp := func(fn uint32, x, y uint32) {
		b.Emit(opFmtR(opInta, x, y, fn, rAT))
	}
	brTrue := uint32(opBne)
	switch op {
	case core.OpBeq:
		cmp(fnCmpeq, s1, s2)
	case core.OpBne:
		cmp(fnCmpeq, s1, s2)
		brTrue = opBeq
	case core.OpBlt:
		if signed {
			cmp(fnCmplt, s1, s2)
		} else {
			cmp(fnCmpult, s1, s2)
		}
	case core.OpBge:
		if signed {
			cmp(fnCmplt, s1, s2)
		} else {
			cmp(fnCmpult, s1, s2)
		}
		brTrue = opBeq
	case core.OpBle:
		if signed {
			cmp(fnCmple, s1, s2)
		} else {
			cmp(fnCmpule, s1, s2)
		}
	case core.OpBgt:
		if signed {
			cmp(fnCmple, s1, s2)
		} else {
			cmp(fnCmpule, s1, s2)
		}
		brTrue = opBeq
	default:
		return 0, fmt.Errorf("alpha: branch op %s", op)
	}
	site := b.Len()
	b.Emit(brFmt(brTrue, rAT, 0))
	return site, nil
}

func (a *Backend) fpBranch(b *core.Buf, op core.Op, t core.Type, rs1, rs2 core.Reg) (int, error) {
	f1, f2 := gn(rs1), gn(rs2)
	if t == core.TypeF {
		// Promote singles to T format in the two FP scratches.
		b.Emit(fpFmt(opFlti, 31, f1, fnCvtst, 29))
		b.Emit(fpFmt(opFlti, 31, f2, fnCvtst, 30))
		f1, f2 = 29, 30
	}
	brTrue := uint32(opFbne)
	switch op {
	case core.OpBeq:
		b.Emit(fpFmt(opFlti, f1, f2, fnCmpteq, 30))
	case core.OpBne:
		b.Emit(fpFmt(opFlti, f1, f2, fnCmpteq, 30))
		brTrue = opFbeq
	case core.OpBlt:
		b.Emit(fpFmt(opFlti, f1, f2, fnCmptlt, 30))
	case core.OpBge:
		b.Emit(fpFmt(opFlti, f1, f2, fnCmptlt, 30))
		brTrue = opFbeq
	case core.OpBle:
		b.Emit(fpFmt(opFlti, f1, f2, fnCmptle, 30))
	case core.OpBgt:
		b.Emit(fpFmt(opFlti, f1, f2, fnCmptle, 30))
		brTrue = opFbeq
	default:
		return 0, fmt.Errorf("alpha: fp branch op %s", op)
	}
	site := b.Len()
	b.Emit(brFmt(brTrue, 30, 0))
	return site, nil
}

// BranchImm compares rs against an immediate; comparisons with zero use
// the native compare-and-branch forms directly.
func (a *Backend) BranchImm(b *core.Buf, op core.Op, t core.Type, rs core.Reg, imm int64) (int, error) {
	if imm == 0 && (t.IsSigned() || op == core.OpBeq || op == core.OpBne) {
		var brOp uint32
		switch op {
		case core.OpBeq:
			brOp = opBeq
		case core.OpBne:
			brOp = opBne
		case core.OpBlt:
			brOp = opBlt
		case core.OpBle:
			brOp = opBle
		case core.OpBgt:
			brOp = opBgt
		case core.OpBge:
			brOp = opBge
		default:
			return 0, fmt.Errorf("alpha: branch op %s", op)
		}
		site := b.Len()
		b.Emit(brFmt(brOp, gn(rs), 0))
		return site, nil
	}
	if fitsLit8(imm) {
		signed := t.IsSigned()
		brTrue := uint32(opBne)
		lit := uint32(imm)
		s := gn(rs)
		switch op {
		case core.OpBeq:
			b.Emit(opFmtL(opInta, s, lit, fnCmpeq, rAT))
		case core.OpBne:
			b.Emit(opFmtL(opInta, s, lit, fnCmpeq, rAT))
			brTrue = opBeq
		case core.OpBlt:
			b.Emit(opFmtL(opInta, s, lit, pick(signed, fnCmplt, fnCmpult), rAT))
		case core.OpBge:
			b.Emit(opFmtL(opInta, s, lit, pick(signed, fnCmplt, fnCmpult), rAT))
			brTrue = opBeq
		case core.OpBle:
			b.Emit(opFmtL(opInta, s, lit, pick(signed, fnCmple, fnCmpule), rAT))
		case core.OpBgt:
			b.Emit(opFmtL(opInta, s, lit, pick(signed, fnCmple, fnCmpule), rAT))
			brTrue = opBeq
		default:
			return 0, fmt.Errorf("alpha: branch op %s", op)
		}
		site := b.Len()
		b.Emit(brFmt(brTrue, rAT, 0))
		return site, nil
	}
	materialize(b, rAT, imm)
	return a.Branch(b, op, t, rs, core.GPR(rAT))
}

func pick(cond bool, a, b uint32) uint32 {
	if cond {
		return a
	}
	return b
}

// Jump emits br zero with an unresolved displacement.
func (a *Backend) Jump(b *core.Buf) (int, error) {
	site := b.Len()
	b.Emit(brFmt(opBr, rZero, 0))
	return site, nil
}

// JumpReg emits jmp (r).
func (a *Backend) JumpReg(b *core.Buf, r core.Reg) error {
	b.Emit(jmpFmt(rZero, gn(r), hintJmp))
	return nil
}

// CallSite materializes the target into pv and jsr's through it; the two
// address words are the relocation sites.
func (a *Backend) CallSite(b *core.Buf) ([]int, error) {
	s0 := b.Len()
	b.Emit(memFmt(opLdah, rPV, rZero, 0))
	b.Emit(memFmt(opLda, rPV, rPV, 0))
	b.Emit(jmpFmt(rRA, rPV, hintJsr))
	return []int{s0, s0 + 1}, nil
}

// CallLabel emits bsr.
func (a *Backend) CallLabel(b *core.Buf) (int, error) {
	site := b.Len()
	b.Emit(brFmt(opBsr, rRA, 0))
	return site, nil
}

// CallReg emits jsr ra, (r).
func (a *Backend) CallReg(b *core.Buf, r core.Reg) error {
	b.Emit(jmpFmt(rRA, gn(r), hintJsr))
	return nil
}

// PatchBranch resolves a branch-format displacement.
func (a *Backend) PatchBranch(b *core.Buf, site, target int) error {
	disp := int64(target - (site + 1))
	if disp < -(1<<20) || disp >= 1<<20 {
		return fmt.Errorf("%w: %d words", core.ErrBranchRange, disp)
	}
	b.Set(site, b.At(site)&^uint32(0x1fffff)|uint32(disp)&0x1fffff)
	return nil
}

// PatchCall resolves the ldah/lda pair of a CallSite.
func (a *Backend) PatchCall(b *core.Buf, sites []int, base, target uint64) error {
	return a.PatchAddr(b, sites, target)
}

// LoadAddr emits ldah/lda materializing a patched absolute address.
func (a *Backend) LoadAddr(b *core.Buf, rd core.Reg) ([]int, error) {
	s0 := b.Len()
	b.Emit(memFmt(opLdah, gn(rd), rZero, 0))
	b.Emit(memFmt(opLda, gn(rd), gn(rd), 0))
	return []int{s0, s0 + 1}, nil
}

// PatchAddr resolves a LoadAddr pair with the carry-corrected hi/lo split.
func (a *Backend) PatchAddr(b *core.Buf, sites []int, addr uint64) error {
	if len(sites) != 2 {
		return fmt.Errorf("alpha: PatchAddr wants 2 sites, got %d", len(sites))
	}
	if addr >= 1<<31 {
		return fmt.Errorf("alpha: address %#x out of ldah/lda range", addr)
	}
	hi := (int64(addr) + 0x8000) >> 16
	lo := int64(addr) - hi<<16
	b.Set(sites[0], b.At(sites[0])&^uint32(0xffff)|uint32(hi)&0xffff)
	b.Set(sites[1], b.At(sites[1])&^uint32(0xffff)|uint32(lo)&0xffff)
	return nil
}

// PatchMemOffset rewrites a disp16.
func (a *Backend) PatchMemOffset(b *core.Buf, site int, off int64) error {
	if !fitsS16(off) {
		return fmt.Errorf("alpha: patched offset %d out of range", off)
	}
	b.Set(site, b.At(site)&^uint32(0xffff)|uint32(off)&0xffff)
	return nil
}

// Nop emits bis zero, zero, zero.
func (a *Backend) Nop(b *core.Buf) { b.Emit(encNop) }

// IsNop reports the canonical nop.
func (a *Backend) IsNop(w uint32) bool { return w == encNop }

// RetEncoding returns ret zero, (ra).
func (a *Backend) RetEncoding(conv *core.CallConv) uint32 {
	return jmpFmt(rZero, rRA, hintRet)
}

// MaxPrologueWords: frame push + RA + callee-saved int and FP registers.
func (a *Backend) MaxPrologueWords(conv *core.CallConv) int {
	return 2 + len(conv.CalleeSaved) + len(conv.CalleeSavedFP)
}

// Prologue writes into the reserved region's tail.
func (a *Backend) Prologue(b *core.Buf, at int, conv *core.CallConv, fr *core.Frame) (int, error) {
	if !fitsS16(fr.Size) {
		return 0, fmt.Errorf("alpha: frame size %d out of range", fr.Size)
	}
	lay := core.NewSaveLayout(conv, 8)
	var w []uint32
	w = append(w, memFmt(opLda, rSP, rSP, int32(-fr.Size)))
	if fr.SaveRA {
		w = append(w, memFmt(opStq, rRA, rSP, int32(lay.RAOff())))
	}
	for _, r := range fr.SavedGPR {
		off := lay.GPROff(r)
		if off < 0 {
			return 0, fmt.Errorf("alpha: %v saved but not callee-saved", r)
		}
		w = append(w, memFmt(opStq, gn(r), rSP, int32(off)))
	}
	for _, r := range fr.SavedFPR {
		off := lay.FPROff(r)
		if off < 0 {
			return 0, fmt.Errorf("alpha: %v saved but not callee-saved", r)
		}
		w = append(w, memFmt(opStt, gn(r), rSP, int32(off)))
	}
	max := a.MaxPrologueWords(conv)
	if len(w) > max {
		return 0, fmt.Errorf("alpha: prologue overflow")
	}
	start := at + max - len(w)
	for i, word := range w {
		b.Set(start+i, word)
	}
	return len(w), nil
}

// Epilogue restores, pops and returns.
func (a *Backend) Epilogue(b *core.Buf, conv *core.CallConv, fr *core.Frame) error {
	lay := core.NewSaveLayout(conv, 8)
	if fr.SaveRA {
		b.Emit(memFmt(opLdq, rRA, rSP, int32(lay.RAOff())))
	}
	for _, r := range fr.SavedGPR {
		b.Emit(memFmt(opLdq, gn(r), rSP, int32(lay.GPROff(r))))
	}
	for _, r := range fr.SavedFPR {
		b.Emit(memFmt(opLdt, gn(r), rSP, int32(lay.FPROff(r))))
	}
	b.Emit(memFmt(opLda, rSP, rSP, int32(fr.Size)))
	b.Emit(jmpFmt(rZero, rRA, hintRet))
	return nil
}

// EmulatedOp: the Alpha has no integer divide; division and remainder go
// through the machine's runtime helpers (§5.2).
func (a *Backend) EmulatedOp(op core.Op, t core.Type) (string, bool) {
	if t.IsFloat() {
		return "", false
	}
	switch op {
	case core.OpDiv:
		switch t {
		case core.TypeI:
			return "__div_i", true
		case core.TypeU:
			return "__div_u", true
		case core.TypeL:
			return "__div_l", true
		default:
			return "__div_ul", true
		}
	case core.OpMod:
		switch t {
		case core.TypeI:
			return "__mod_i", true
		case core.TypeU:
			return "__mod_u", true
		case core.TypeL:
			return "__mod_l", true
		default:
			return "__mod_ul", true
		}
	}
	return "", false
}

// TryExt maps sqrt onto the hardware square-root group.
func (a *Backend) TryExt(b *core.Buf, name string, t core.Type, rd core.Reg, rs []core.Reg) (bool, error) {
	if name == "sqrt" && t.IsFloat() && len(rs) == 1 {
		fn := uint32(fnSqrtt)
		if t == core.TypeF {
			fn = fnSqrts
		}
		b.Emit(fpFmt(opFlts, 31, gn(rs[0]), fn, gn(rd)))
		return true, nil
	}
	return false, nil
}
