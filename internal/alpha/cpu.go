package alpha

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mem"
)

// CPU is a cycle-counted Alpha simulator: 64-bit registers, no delay
// slots, multiply latency, load-use stalls, and the cache model's memory
// stalls.  Singles (S format) are held as IEEE-754 single bits in the low
// word of the FP register — a simplification of the hardware's S-to-T
// register mapping that is consistent between this simulator and the
// encoder.
type CPU struct {
	r [32]uint64
	f [32]uint64

	pc         uint64
	m          *mem.Memory
	baseCycles uint64
	insns      uint64
	lastLoad   int

	// extPC holds the destination of a control transfer that leaves the
	// current predecoded body (threaded engine only; see threaded.go).
	extPC uint64

	// PC-sampling hook (core.SamplingCPU).
	sampleFn    func(pc uint64)
	sampleEvery uint64
	sampleLeft  uint64

	// Branch edge probe (core.EdgeProfilingCPU).
	edgeFn    func(pc uint64, taken bool)
	edgeEvery uint64
	edgeLeft  uint64
}

// SetSampler installs fn to be called with the pre-execution program
// counter every stride retired instructions; nil fn or zero stride
// disables sampling.
func (c *CPU) SetSampler(fn func(pc uint64), stride uint64) {
	if fn == nil || stride == 0 {
		c.sampleFn, c.sampleEvery, c.sampleLeft = nil, 0, 0
		return
	}
	c.sampleFn, c.sampleEvery, c.sampleLeft = fn, stride, stride
}

// SetEdgeProbe installs fn to be called with (branch PC, taken) every
// stride conditional-branch resolutions; nil fn or zero stride disables
// the probe.
func (c *CPU) SetEdgeProbe(fn func(pc uint64, taken bool), stride uint64) {
	if fn == nil || stride == 0 {
		c.edgeFn, c.edgeEvery, c.edgeLeft = nil, 0, 0
		return
	}
	c.edgeFn, c.edgeEvery, c.edgeLeft = fn, stride, stride
}

// edge is the countdown-gated probe call at conditional-branch
// resolution.
func (c *CPU) edge(pc uint64, taken bool) {
	// Split guard/slow-path so the no-probe case inlines into the branch
	// handlers: with no edge probe attached this is a loaded-field test,
	// not a call, and branch resolution is the threaded engine's hottest
	// non-ALU operation.
	if c.edgeEvery == 0 {
		return
	}
	c.edgeSlow(pc, taken)
}

func (c *CPU) edgeSlow(pc uint64, taken bool) {
	if c.edgeLeft--; c.edgeLeft == 0 {
		c.edgeLeft = c.edgeEvery
		c.edgeFn(pc, taken)
	}
}

// NewCPU returns a simulator bound to m.
func NewCPU(m *mem.Memory) *CPU { return &CPU{m: m, lastLoad: -1} }

// PC returns the program counter.
func (c *CPU) PC() uint64 { return c.pc }

// SetPC jumps the simulator.
func (c *CPU) SetPC(pc uint64) { c.pc = pc }

// Reg reads an integer register.
func (c *CPU) Reg(r core.Reg) uint64 { return c.r[r.Num()&31] }

// SetReg writes an integer register.
func (c *CPU) SetReg(r core.Reg, v uint64) {
	if n := r.Num(); n != 31 {
		c.r[n&31] = v
	}
}

// FReg reads an FP register.
func (c *CPU) FReg(r core.Reg, double bool) uint64 {
	if double {
		return c.f[r.Num()&31]
	}
	return c.f[r.Num()&31] & 0xffffffff
}

// SetFReg writes an FP register.
func (c *CPU) SetFReg(r core.Reg, v uint64, double bool) {
	if n := r.Num(); n != 31 {
		if double {
			c.f[n&31] = v
		} else {
			c.f[n&31] = v & 0xffffffff
		}
	}
}

// Cycles returns cycles including memory stalls.
func (c *CPU) Cycles() uint64 { return c.baseCycles + c.m.PenaltyCycles() }

// Insns returns retired instructions.
func (c *CPU) Insns() uint64 { return c.insns }

// ResetStats zeroes counters.
func (c *CPU) ResetStats() { c.baseCycles, c.insns = 0, 0; c.m.ResetStats() }

func (c *CPU) rr(n uint32) uint64 { return c.r[n] }

func (c *CPU) wr(n uint32, v uint64) {
	if n != 31 {
		c.r[n] = v
	}
}

func (c *CPU) fT(n uint32) float64 { return math.Float64frombits(c.f[n]) }
func (c *CPU) fS(n uint32) float32 { return math.Float32frombits(uint32(c.f[n])) }

func (c *CPU) wfT(n uint32, v float64) {
	if n != 31 {
		c.f[n] = math.Float64bits(v)
	}
}

func (c *CPU) wfS(n uint32, v float32) {
	if n != 31 {
		c.f[n] = uint64(math.Float32bits(v))
	}
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Step executes one instruction.
func (c *CPU) Step() error {
	w, err := c.m.FetchWord(c.pc)
	if err != nil {
		return fmt.Errorf("alpha: fetch at %#x: %w", c.pc, err)
	}
	c.insns++
	c.baseCycles++
	if c.sampleEvery != 0 {
		if c.sampleLeft--; c.sampleLeft == 0 {
			c.sampleLeft = c.sampleEvery
			c.sampleFn(c.pc)
		}
	}

	op := w >> 26
	ra := w >> 21 & 31
	rb := w >> 16 & 31
	disp16 := int64(int16(w))
	disp21 := int64(int32(w<<11) >> 11)

	// Approximate load-use interlock.
	if c.lastLoad >= 0 && c.lastLoad != 31 {
		ll := uint32(c.lastLoad)
		if ra == ll || (op >= opInta && op <= opIntm && w>>12&1 == 0 && rb == ll) {
			c.baseCycles++
		}
	}
	loaded := -1

	next := c.pc + 4
	switch op {
	case opLda:
		c.wr(ra, c.rr(rb)+uint64(disp16))
	case opLdah:
		c.wr(ra, c.rr(rb)+uint64(disp16<<16))
	case opLdl, opLdq, opLdqU, opLds, opLdt:
		addr := c.rr(rb) + uint64(disp16)
		switch op {
		case opLdl:
			v, err := c.m.Load(addr, 4)
			if err != nil {
				return fmt.Errorf("alpha: ldl at pc %#x: %w", c.pc, err)
			}
			c.wr(ra, uint64(int64(int32(v))))
			loaded = int(ra)
		case opLdq:
			v, err := c.m.Load(addr, 8)
			if err != nil {
				return fmt.Errorf("alpha: ldq at pc %#x: %w", c.pc, err)
			}
			c.wr(ra, v)
			loaded = int(ra)
		case opLdqU:
			v, err := c.m.Load(addr&^7, 8)
			if err != nil {
				return fmt.Errorf("alpha: ldq_u at pc %#x: %w", c.pc, err)
			}
			c.wr(ra, v)
			loaded = int(ra)
		case opLds:
			v, err := c.m.Load(addr, 4)
			if err != nil {
				return fmt.Errorf("alpha: lds at pc %#x: %w", c.pc, err)
			}
			if ra != 31 {
				c.f[ra] = v
			}
		case opLdt:
			v, err := c.m.Load(addr, 8)
			if err != nil {
				return fmt.Errorf("alpha: ldt at pc %#x: %w", c.pc, err)
			}
			if ra != 31 {
				c.f[ra] = v
			}
		}
	case opStl, opStq, opStqU, opSts, opStt:
		addr := c.rr(rb) + uint64(disp16)
		var size int
		var v uint64
		switch op {
		case opStl:
			size, v = 4, uint64(uint32(c.rr(ra)))
		case opStq:
			size, v = 8, c.rr(ra)
		case opStqU:
			size, v, addr = 8, c.rr(ra), addr&^7
		case opSts:
			size, v = 4, c.f[ra]&0xffffffff
		case opStt:
			size, v = 8, c.f[ra]
		}
		if err := c.m.Store(addr, size, v); err != nil {
			return fmt.Errorf("alpha: store at pc %#x: %w", c.pc, err)
		}
	case opBr, opBsr:
		if ra != 31 {
			c.wr(ra, next)
		}
		next = next + uint64(disp21*4)
	case opBeq, opBne, opBlt, opBle, opBgt, opBge:
		v := int64(c.rr(ra))
		taken := false
		switch op {
		case opBeq:
			taken = v == 0
		case opBne:
			taken = v != 0
		case opBlt:
			taken = v < 0
		case opBle:
			taken = v <= 0
		case opBgt:
			taken = v > 0
		case opBge:
			taken = v >= 0
		}
		c.edge(c.pc, taken)
		if taken {
			next = next + uint64(disp21*4)
		}
	case opFbeq, opFbne, opFblt, opFble, opFbgt, opFbge:
		v := c.fT(ra)
		taken := false
		switch op {
		case opFbeq:
			taken = v == 0
		case opFbne:
			taken = v != 0
		case opFblt:
			taken = v < 0
		case opFble:
			taken = v <= 0
		case opFbgt:
			taken = v > 0
		case opFbge:
			taken = v >= 0
		}
		c.edge(c.pc, taken)
		if taken {
			next = next + uint64(disp21*4)
		}
	case opJump:
		hint := w >> 14 & 3
		_ = hint
		target := c.rr(rb) &^ 3
		if ra != 31 {
			c.wr(ra, next)
		}
		next = target
	case opInta, opIntl, opInts, opIntm:
		if err := c.operate(w, op, ra, rb); err != nil {
			return err
		}
	case opFlti, opFltl, opFlts:
		if err := c.fpOperate(w, op); err != nil {
			return err
		}
	default:
		return fmt.Errorf("alpha: unknown opcode %#x (word %#08x) at %#x", op, w, c.pc)
	}

	c.lastLoad = loaded
	c.pc = next
	return nil
}

func (c *CPU) operate(w, op, ra, rb uint32) error {
	rc := w & 31
	fn := w >> 5 & 0x7f
	a := c.rr(ra)
	var b uint64
	if w>>12&1 == 1 {
		b = uint64(w >> 13 & 0xff)
	} else {
		b = c.rr(rb)
	}

	switch op {
	case opInta:
		switch fn {
		case fnAddl:
			c.wr(rc, uint64(int64(int32(a+b))))
		case fnSubl:
			c.wr(rc, uint64(int64(int32(a-b))))
		case fnAddq:
			c.wr(rc, a+b)
		case fnSubq:
			c.wr(rc, a-b)
		case fnCmpeq:
			c.wr(rc, b2u64(a == b))
		case fnCmplt:
			c.wr(rc, b2u64(int64(a) < int64(b)))
		case fnCmple:
			c.wr(rc, b2u64(int64(a) <= int64(b)))
		case fnCmpult:
			c.wr(rc, b2u64(a < b))
		case fnCmpule:
			c.wr(rc, b2u64(a <= b))
		default:
			return fmt.Errorf("alpha: unknown INTA funct %#x at %#x", fn, c.pc)
		}
	case opIntl:
		switch fn {
		case fnAnd:
			c.wr(rc, a&b)
		case fnBic:
			c.wr(rc, a&^b)
		case fnBis:
			c.wr(rc, a|b)
		case fnOrnot:
			c.wr(rc, a|^b)
		case fnXor:
			c.wr(rc, a^b)
		case fnEqv:
			c.wr(rc, a^^b)
		default:
			return fmt.Errorf("alpha: unknown INTL funct %#x at %#x", fn, c.pc)
		}
	case opInts:
		sh := b & 63
		switch fn {
		case fnSll:
			c.wr(rc, a<<sh)
		case fnSrl:
			c.wr(rc, a>>sh)
		case fnSra:
			c.wr(rc, uint64(int64(a)>>sh))
		case fnZap, fnZapnot:
			mask := uint64(0)
			for i := 0; i < 8; i++ {
				if b>>i&1 == 1 {
					mask |= 0xff << (8 * i)
				}
			}
			if fn == fnZap {
				c.wr(rc, a&^mask)
			} else {
				c.wr(rc, a&mask)
			}
		case fnExtbl:
			c.wr(rc, a>>(8*(b&7))&0xff)
		case fnExtwl:
			c.wr(rc, a>>(8*(b&7))&0xffff)
		case fnInsbl:
			c.wr(rc, (a&0xff)<<(8*(b&7)))
		case fnInswl:
			c.wr(rc, (a&0xffff)<<(8*(b&7)))
		case fnMskbl:
			c.wr(rc, a&^(uint64(0xff)<<(8*(b&7))))
		case fnMskwl:
			c.wr(rc, a&^(uint64(0xffff)<<(8*(b&7))))
		default:
			return fmt.Errorf("alpha: unknown INTS funct %#x at %#x", fn, c.pc)
		}
	case opIntm:
		switch fn {
		case fnMull:
			c.wr(rc, uint64(int64(int32(a)*int32(b))))
			c.baseCycles += 7
		case fnMulq:
			c.wr(rc, a*b)
			c.baseCycles += 11
		default:
			return fmt.Errorf("alpha: unknown INTM funct %#x at %#x", fn, c.pc)
		}
	}
	return nil
}

func (c *CPU) fpOperate(w, op uint32) error {
	fa := w >> 21 & 31
	fb := w >> 16 & 31
	fn := w >> 5 & 0x7ff
	fc := w & 31
	switch op {
	case opFltl:
		switch fn {
		case fnCpys:
			if fc != 31 {
				c.f[fc] = c.f[fb]&^(1<<63) | c.f[fa]&(1<<63)
			}
		case fnCpysn:
			c.f[fc] = c.f[fb] ^ 1<<63
		default:
			return fmt.Errorf("alpha: unknown FLTL funct %#x at %#x", fn, c.pc)
		}
	case opFlts:
		switch fn {
		case fnSqrts:
			c.wfS(fc, float32(math.Sqrt(float64(c.fS(fb)))))
			c.baseCycles += 29
		case fnSqrtt:
			c.wfT(fc, math.Sqrt(c.fT(fb)))
			c.baseCycles += 29
		default:
			return fmt.Errorf("alpha: unknown FLTS funct %#x at %#x", fn, c.pc)
		}
	case opFlti:
		switch fn {
		case fnAdds:
			c.wfS(fc, c.fS(fa)+c.fS(fb))
			c.baseCycles++
		case fnSubs:
			c.wfS(fc, c.fS(fa)-c.fS(fb))
			c.baseCycles++
		case fnMuls:
			c.wfS(fc, c.fS(fa)*c.fS(fb))
			c.baseCycles += 3
		case fnDivs:
			c.wfS(fc, c.fS(fa)/c.fS(fb))
			c.baseCycles += 11
		case fnAddt:
			c.wfT(fc, c.fT(fa)+c.fT(fb))
			c.baseCycles++
		case fnSubt:
			c.wfT(fc, c.fT(fa)-c.fT(fb))
			c.baseCycles++
		case fnMult:
			c.wfT(fc, c.fT(fa)*c.fT(fb))
			c.baseCycles += 4
		case fnDivt:
			c.wfT(fc, c.fT(fa)/c.fT(fb))
			c.baseCycles += 18
		case fnCmpteq:
			c.wfT(fc, cmpResult(c.fT(fa) == c.fT(fb)))
		case fnCmptlt:
			c.wfT(fc, cmpResult(c.fT(fa) < c.fT(fb)))
		case fnCmptle:
			c.wfT(fc, cmpResult(c.fT(fa) <= c.fT(fb)))
		case fnCvtts:
			c.wfS(fc, float32(c.fT(fb)))
		case fnCvtst:
			c.wfT(fc, float64(c.fS(fb)))
		case fnCvtqs:
			c.wfS(fc, float32(int64(c.f[fb])))
		case fnCvtqt:
			c.wfT(fc, float64(int64(c.f[fb])))
		case fnCvttqc:
			c.f[fc&31] = uint64(truncToI64(c.fT(fb)))
		default:
			return fmt.Errorf("alpha: unknown FLTI funct %#x at %#x", fn, c.pc)
		}
	}
	return nil
}

func cmpResult(b bool) float64 {
	if b {
		return 2.0
	}
	return 0
}

func truncToI64(v float64) int64 {
	switch {
	case v != v:
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(v)
	}
}

// Decodable reports whether w decodes at pc — exactly when Disasm would
// not fall back to ".word" — without building the disassembly string.
// It is the verifier's round-trip fast path (verify.DecodableDecoder);
// TestDecodableMatchesDisasm sweeps it against Disasm so the two cannot
// drift.
func (a *Backend) Decodable(w uint32, pc uint64) bool {
	if w == encNop {
		return true
	}
	switch w >> 26 {
	case opLda, opLdah,
		opLdl, opLdq, opLdqU, opLds, opLdt, opStl, opStq, opStqU, opSts, opStt,
		opBr, opBsr, opBeq, opBne, opBlt, opBle, opBgt, opBge,
		opFbeq, opFbne, opFblt, opFble, opFbgt, opFbge,
		opJump, opInta, opIntl, opInts, opIntm, opFlti, opFltl, opFlts:
		return true
	}
	return false
}

// Disasm decodes one instruction word (compact form).
func (a *Backend) Disasm(w uint32, pc uint64) string {
	if w == encNop {
		return "nop"
	}
	op := w >> 26
	ra := w >> 21 & 31
	rb := w >> 16 & 31
	disp16 := int64(int16(w))
	disp21 := int64(int32(w<<11) >> 11)
	g := func(n uint32) string { return gprNames[n] }
	switch op {
	case opLda:
		return fmt.Sprintf("lda %s, %d(%s)", g(ra), disp16, g(rb))
	case opLdah:
		return fmt.Sprintf("ldah %s, %d(%s)", g(ra), disp16, g(rb))
	case opLdl, opLdq, opLdqU, opLds, opLdt, opStl, opStq, opStqU, opSts, opStt:
		name := map[uint32]string{opLdl: "ldl", opLdq: "ldq", opLdqU: "ldq_u",
			opLds: "lds", opLdt: "ldt", opStl: "stl", opStq: "stq",
			opStqU: "stq_u", opSts: "sts", opStt: "stt"}[op]
		return fmt.Sprintf("%s %s, %d(%s)", name, g(ra), disp16, g(rb))
	case opBr, opBsr, opBeq, opBne, opBlt, opBle, opBgt, opBge,
		opFbeq, opFbne, opFblt, opFble, opFbgt, opFbge:
		name := map[uint32]string{opBr: "br", opBsr: "bsr", opBeq: "beq", opBne: "bne",
			opBlt: "blt", opBle: "ble", opBgt: "bgt", opBge: "bge",
			opFbeq: "fbeq", opFbne: "fbne", opFblt: "fblt", opFble: "fble",
			opFbgt: "fbgt", opFbge: "fbge"}[op]
		return fmt.Sprintf("%s %s, %#x", name, g(ra), pc+4+uint64(disp21*4))
	case opJump:
		hint := w >> 14 & 3
		name := map[uint32]string{hintJmp: "jmp", hintJsr: "jsr", hintRet: "ret"}[hint]
		return fmt.Sprintf("%s %s, (%s)", name, g(ra), g(rb))
	case opInta, opIntl, opInts, opIntm:
		fn := w >> 5 & 0x7f
		var o2 string
		if w>>12&1 == 1 {
			o2 = fmt.Sprintf("#%d", w>>13&0xff)
		} else {
			o2 = g(rb)
		}
		return fmt.Sprintf("op%x.%02x %s, %s, %s", op, fn, g(ra), o2, g(w&31))
	case opFlti, opFltl, opFlts:
		return fmt.Sprintf("fop%x.%03x f%d, f%d, f%d", op, w>>5&0x7ff, ra, rb, w&31)
	}
	return fmt.Sprintf(".word %#08x", w)
}
