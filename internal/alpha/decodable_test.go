package alpha

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDecodableMatchesDisasm pins the verifier fast path to the
// disassembler: Decodable must return true exactly when Disasm does not
// fall back to ".word".  The sweep covers every opcode with varied
// function/register fields plus a large pseudo-random sample.
func TestDecodableMatchesDisasm(t *testing.T) {
	b := New()
	const pc = 0x4000
	check := func(w uint32) {
		want := !strings.HasPrefix(b.Disasm(w, pc), ".word")
		if got := b.Decodable(w, pc); got != want {
			t.Fatalf("Decodable(%#08x) = %v, but Disasm(%#08x) = %q", w, got, w, b.Disasm(w, pc))
		}
	}
	for op := uint32(0); op < 64; op++ {
		for fn := uint32(0); fn < 0x80; fn++ {
			check(op<<26 | fn<<5)
			check(op<<26 | 0x1f<<21 | fn<<5 | 1<<12)
		}
		check(op<<26 | 0xffff)
		check(op<<26 | 0x1fffff)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<20; i++ {
		check(rng.Uint32())
	}
}
