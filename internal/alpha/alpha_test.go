package alpha

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func newMachine() (*Backend, *core.Machine) {
	b := New()
	m := mem.New(1<<24, false)
	return b, core.NewMachine(b, NewCPU(m), m)
}

// TestSmallMemSynthesisCost is experiment E6 (§6.2): the Alpha lacks byte
// and halfword memory instructions, so VCODE synthesizes them; the paper
// notes an unsigned store byte costs eleven instructions in the worst
// case.  We pin the instruction counts of our sequences so regressions in
// the synthesis are visible.
func TestSmallMemSynthesisCost(t *testing.T) {
	b := New()
	cases := []struct {
		t     core.Type
		store bool
		words int
	}{
		{core.TypeUC, false, 3}, // lda, ldq_u, extbl
		{core.TypeC, false, 5},  // + sll, sra sign extension
		{core.TypeUS, false, 3},
		{core.TypeS, false, 5},
		{core.TypeUC, true, 6}, // lda, ldq_u, insbl, mskbl, bis, stq_u
		{core.TypeUS, true, 6},
		{core.TypeI, false, 1}, // ldl exists
		{core.TypeL, true, 1},  // stq exists
	}
	for _, c := range cases {
		buf := core.NewBuf(16)
		var err error
		if c.store {
			err = b.Store(buf, c.t, core.GPR(1), core.GPR(2), 8)
		} else {
			err = b.Load(buf, c.t, core.GPR(1), core.GPR(2), 8)
		}
		if err != nil {
			t.Fatalf("%s store=%v: %v", c.t, c.store, err)
		}
		if buf.Len() != c.words {
			t.Errorf("%s store=%v: %d words, want %d", c.t, c.store, buf.Len(), c.words)
		}
	}
}

// TestByteStorePreservesNeighbors checks the read-modify-write sequence
// touches only its byte.
func TestByteStorePreservesNeighbors(t *testing.T) {
	b, m := newMachine()
	addr, err := m.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem().Store(addr, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	a := core.NewAsm(b)
	args, err := a.Begin("%p%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Stuci(args[1], args[0], 3)
	a.Retv()
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(fn, core.P(addr), core.I(0xAB)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Mem().Load(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x11223344AB667788 {
		t.Fatalf("quad after byte store: %#x", got)
	}
}

// TestDivisionEmulated checks that integer division routes through the
// runtime helpers (§5.2) — including inside a declared leaf procedure,
// the "VCODE ignores client hints" case — and preserves the borrowed
// registers.
func TestDivisionEmulated(t *testing.T) {
	b, m := newMachine()
	a := core.NewAsm(b)
	args, err := a.Begin("%i%i", core.Leaf) // leaf! the helper call must still work
	if err != nil {
		t.Fatal(err)
	}
	// Hold values in other argument registers to verify preservation.
	sentinel := a.T(0)
	a.Seti(sentinel, 12345)
	a.Divi(args[0], args[0], args[1])
	a.Addi(args[0], args[0], sentinel)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.I(-37), core.I(5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != -7+12345 {
		t.Fatalf("got %d, want %d", got.Int(), -7+12345)
	}
}

// TestCanonicalForm32 checks 32-bit values stay sign-extended through
// shifts and arithmetic (the Alpha canonical form).
func TestCanonicalForm32(t *testing.T) {
	b, m := newMachine()
	a := core.NewAsm(b)
	args, err := a.Begin("%u%u", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	// ((x << y) >> y) for unsigned 32-bit must mask correctly.
	a.Lshu(args[0], args[0], args[1])
	a.Rshu(args[0], args[0], args[1])
	a.Retu(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.U(0xffffffff), core.U(8))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint() != 0x00ffffff {
		t.Fatalf("got %#x, want 0x00ffffff", got.Uint())
	}
}

// TestWideConstants materializes 64-bit constants.
func TestWideConstants(t *testing.T) {
	b, m := newMachine()
	for _, v := range []int64{0, 1, -1, 0x7fff, 0x8000, -0x8000, -0x8001,
		0x12345678, -0x12345678, 0x123456789abcdef0, -0x123456789abcdef0,
		1 << 62, -(1 << 62), 0x8000_0000_0000_0000 - 1} {
		a := core.NewAsm(b)
		_, err := a.Begin("", core.Leaf)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.GetReg(core.Temp)
		if err != nil {
			t.Fatal(err)
		}
		a.Setl(r, v)
		a.Retl(r)
		fn, err := a.End()
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Call(fn)
		if err != nil {
			t.Fatalf("%#x: %v", v, err)
		}
		if got.Int() != v {
			t.Errorf("Setl(%#x) returned %#x", v, got.Int())
		}
	}
}

// TestDisasm checks a few encodings round-trip through Disasm.
func TestDisasm(t *testing.T) {
	b := New()
	buf := core.NewBuf(8)
	if err := b.Load(buf, core.TypeL, core.GPR(1), core.GPR(30), 16); err != nil {
		t.Fatal(err)
	}
	if s := b.Disasm(buf.At(0), 0); !strings.Contains(s, "ldq t0, 16(sp)") {
		t.Errorf("disasm: %q", s)
	}
	if s := b.Disasm(b.RetEncoding(b.DefaultConv()), 0); !strings.Contains(s, "ret") {
		t.Errorf("ret disasm: %q", s)
	}
}
