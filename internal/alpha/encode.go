// Package alpha is the Alpha port of VCODE: a 64-bit, little-endian
// target in the 21064 mould — no branch delay slots, no byte/halfword
// memory instructions (they are synthesized from ldq_u/extbl/insbl/mskbl,
// the paper's §6.2 worst case), and no integer divide (VCODE routes
// division through runtime emulation helpers, §5.2).  32-bit values are
// kept in canonical form: sign-extended to 64 bits, as the architecture
// handbook specifies.
package alpha

// Memory-format opcodes.
const (
	opLda  = 0x08
	opLdah = 0x09
	opLdqU = 0x0b
	opStqU = 0x0f
	opLds  = 0x22
	opLdt  = 0x23
	opSts  = 0x26
	opStt  = 0x27
	opLdl  = 0x28
	opLdq  = 0x29
	opStl  = 0x2c
	opStq  = 0x2d
)

// Branch-format opcodes.
const (
	opBr   = 0x30
	opFbeq = 0x31
	opFblt = 0x32
	opFble = 0x33
	opBsr  = 0x34
	opFbne = 0x35
	opFbge = 0x36
	opFbgt = 0x37
	opBeq  = 0x39
	opBlt  = 0x3a
	opBle  = 0x3b
	opBne  = 0x3d
	opBge  = 0x3e
	opBgt  = 0x3f
)

// Operate-format opcodes and function codes.
const (
	opInta = 0x10
	opIntl = 0x11
	opInts = 0x12
	opIntm = 0x13
	opJump = 0x1a
	opFlts = 0x14 // sqrt group
	opFlti = 0x16 // IEEE arithmetic
	opFltl = 0x17 // FP copy/sign ops
)

const (
	fnAddl   = 0x00
	fnSubl   = 0x09
	fnAddq   = 0x20
	fnSubq   = 0x29
	fnCmpult = 0x1d
	fnCmpeq  = 0x2d
	fnCmpule = 0x3d
	fnCmplt  = 0x4d
	fnCmple  = 0x6d

	fnAnd   = 0x00
	fnBic   = 0x08
	fnBis   = 0x20
	fnOrnot = 0x28
	fnXor   = 0x40
	fnEqv   = 0x48

	fnMskbl  = 0x02
	fnExtbl  = 0x06
	fnInsbl  = 0x0b
	fnMskwl  = 0x12
	fnExtwl  = 0x16
	fnInswl  = 0x1b
	fnZap    = 0x30
	fnZapnot = 0x31
	fnSrl    = 0x34
	fnSll    = 0x39
	fnSra    = 0x3c

	fnMull = 0x00
	fnMulq = 0x20
)

// FLTI function codes.
const (
	fnAdds   = 0x080
	fnSubs   = 0x081
	fnMuls   = 0x082
	fnDivs   = 0x083
	fnAddt   = 0x0a0
	fnSubt   = 0x0a1
	fnMult   = 0x0a2
	fnDivt   = 0x0a3
	fnCmpteq = 0x0a5
	fnCmptlt = 0x0a6
	fnCmptle = 0x0a7
	fnCvtts  = 0x0ac
	fnCvttqc = 0x02f // cvttq/c: truncating convert to quad
	fnCvtqs  = 0x0bc
	fnCvtqt  = 0x0be
	fnCvtst  = 0x2ac
)

// FLTL function codes.
const (
	fnCpys  = 0x020
	fnCpysn = 0x021
)

// FLTS (sqrt group) function codes.
const (
	fnSqrts = 0x08b
	fnSqrtt = 0x0ab
)

// Jump-format hints.
const (
	hintJmp = 0
	hintJsr = 1
	hintRet = 2
)

// memFmt builds a memory-format instruction.
func memFmt(op, ra, rb uint32, disp int32) uint32 {
	return op<<26 | ra<<21 | rb<<16 | uint32(disp)&0xffff
}

// brFmt builds a branch-format instruction (disp21 patched later).
func brFmt(op, ra uint32, disp int32) uint32 {
	return op<<26 | ra<<21 | uint32(disp)&0x1fffff
}

// opFmtR builds a register-form operate instruction.
func opFmtR(op, ra, rb, fn, rc uint32) uint32 {
	return op<<26 | ra<<21 | rb<<16 | fn<<5 | rc
}

// opFmtL builds a literal-form operate instruction (0 <= lit < 256).
func opFmtL(op, ra, lit, fn, rc uint32) uint32 {
	return op<<26 | ra<<21 | lit<<13 | 1<<12 | fn<<5 | rc
}

// fpFmt builds an FP operate instruction (11-bit function).
func fpFmt(op, fa, fb, fn, fc uint32) uint32 {
	return op<<26 | fa<<21 | fb<<16 | fn<<5 | fc
}

// jmpFmt builds a jump-format instruction.
func jmpFmt(ra, rb, hint uint32) uint32 {
	return opJump<<26 | ra<<21 | rb<<16 | hint<<14
}

// encNop is bis r31, r31, r31.
var encNop = opFmtR(opIntl, 31, 31, fnBis, 31)

func fitsS16(v int64) bool  { return v >= -32768 && v <= 32767 }
func fitsLit8(v int64) bool { return v >= 0 && v <= 255 }
