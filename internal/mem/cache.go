package mem

import "fmt"

// Cache is a direct-mapped, write-through, no-write-allocate data cache
// cost model, the organization of the DECstation R2000/R3000 machines in
// the paper's Table 4.  It does not hold data (the backing Memory is
// always authoritative); it tracks tags and charges stall cycles.
type Cache struct {
	lineSize    int // bytes, power of two
	numLines    int // power of two
	readMiss    uint64
	writeCycles uint64
	tags        []uint64
	valid       []bool
	hits        uint64
	misses      uint64
	writes      uint64
}

// NewCache builds a cache model.  readMiss is the stall charged per read
// miss; writeCycles is the per-write cost of the write-through path (the
// write buffer).  The geometry must be positive powers of two.
func NewCache(lineSize, numLines int, readMiss, writeCycles uint64) (*Cache, error) {
	if lineSize <= 0 || numLines <= 0 ||
		lineSize&(lineSize-1) != 0 || numLines&(numLines-1) != 0 {
		return nil, fmt.Errorf("mem: cache geometry must be powers of two (%d lines of %dB)", numLines, lineSize)
	}
	return &Cache{
		lineSize:    lineSize,
		numLines:    numLines,
		readMiss:    readMiss,
		writeCycles: writeCycles,
		tags:        make([]uint64, numLines),
		valid:       make([]bool, numLines),
	}, nil
}

// SizeBytes returns the total cache capacity.
func (c *Cache) SizeBytes() int { return c.lineSize * c.numLines }

// access charges one data access and returns the stall cycles.
func (c *Cache) access(addr uint64, write bool) uint64 {
	line := addr / uint64(c.lineSize)
	idx := line & uint64(c.numLines-1)
	hit := c.valid[idx] && c.tags[idx] == line
	if write {
		c.writes++
		// Write-through, no allocate: update the line only on hit.
		return c.writeCycles
	}
	if hit {
		c.hits++
		return 0
	}
	c.misses++
	c.tags[idx] = line
	c.valid[idx] = true
	return c.readMiss
}

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Stats returns read hits, read misses, and writes so far.
func (c *Cache) Stats() (hits, misses, writes uint64) { return c.hits, c.misses, c.writes }

// ResetStats zeroes the counters without invalidating lines.
func (c *Cache) ResetStats() { c.hits, c.misses, c.writes = 0, 0, 0 }
