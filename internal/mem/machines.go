package mem

// MachineConfig is a workstation cost model: clock rate plus cache
// geometry and stall costs.  Configurations approximate the two machines
// of the paper's Table 4.  Absolute penalties were calibrated so the
// baseline (separate, cached) rows land near the paper's magnitude; the
// comparisons in EXPERIMENTS.md are about shape, not absolute microseconds.
type MachineConfig struct {
	Name string
	// MHz converts cycles to microseconds.
	MHz float64
	// CacheLineBytes / CacheLines give the data-cache geometry.
	CacheLineBytes int
	CacheLines     int
	// ReadMissCycles / WriteCycles are the stall costs.
	ReadMissCycles uint64
	WriteCycles    uint64
	// MemBytes sizes the simulated memory.
	MemBytes int
}

// DEC3100 approximates the DECstation 3100 (R2000 @ 16.67 MHz, 64 KB
// direct-mapped write-through data cache with 4-byte lines).
var DEC3100 = MachineConfig{
	Name:           "DEC3100",
	MHz:            16.67,
	CacheLineBytes: 4,
	CacheLines:     16384,
	ReadMissCycles: 6,
	WriteCycles:    1,
	MemBytes:       16 << 20,
}

// DEC5000 approximates the DECstation 5000/200 (R3000 @ 25 MHz, 64 KB
// direct-mapped write-through data cache with 16-byte lines).
var DEC5000 = MachineConfig{
	Name:           "DEC5000",
	MHz:            25,
	CacheLineBytes: 16,
	CacheLines:     4096,
	ReadMissCycles: 15,
	WriteCycles:    1,
	MemBytes:       16 << 20,
}

// Uncosted is a convenience configuration with no cache model attached;
// loads and stores cost their base cycles only.
var Uncosted = MachineConfig{
	Name:     "flat",
	MHz:      25,
	MemBytes: 16 << 20,
}

// Build constructs the Memory (with cache attached when configured) for
// this machine model.  An invalid cache geometry is an error, not a
// panic: configurations can come from user input (cmd flags, config
// files), and a malformed one must not take the process down.
func (mc MachineConfig) Build(bigEndian bool) (*Memory, error) {
	m := New(mc.MemBytes, bigEndian)
	if mc.CacheLineBytes > 0 {
		c, err := NewCache(mc.CacheLineBytes, mc.CacheLines, mc.ReadMissCycles, mc.WriteCycles)
		if err != nil {
			return nil, err
		}
		m.AttachCache(c)
	}
	return m, nil
}

// Micros converts a cycle count to microseconds under this clock.
func (mc MachineConfig) Micros(cycles uint64) float64 {
	return float64(cycles) / mc.MHz
}
