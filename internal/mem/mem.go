// Package mem provides the simulated memory system under the ISA
// simulators: a flat byte-addressable memory with natural-alignment
// checking, plus an optional direct-mapped data-cache cost model used to
// reproduce the paper's DECstation measurements (Tables 3 and 4).
package mem

import (
	"encoding/binary"
	"fmt"
)

// Memory is a flat simulated memory.  Loads and stores are bounds- and
// alignment-checked; misaligned accesses are errors, which catches a large
// class of code generation bugs (the paper's "most common error" was
// instruction mis-mapping).
type Memory struct {
	data []byte
	big  bool
	dc   *Cache
	// penaltyCycles accumulates memory-system stall cycles charged by
	// the cache model.
	penaltyCycles uint64
	// hook, when set, intercepts accesses for fault injection
	// (internal/faultinject); nil in normal operation.
	hook FaultHook
}

// FaultHook intercepts memory operations for fault injection.  A hook may
// force an error on any access or corrupt fetched instruction words; the
// rest of the stack must degrade to typed errors under either.
type FaultHook interface {
	// FetchFault is consulted after every successful instruction fetch;
	// it may rewrite the word (bit flips) or replace it with an error.
	FetchFault(addr uint64, w uint32) (uint32, error)
	// LoadFault runs before a data load; a non-nil error aborts it.
	LoadFault(addr uint64, size int) error
	// StoreFault runs before a data store; a non-nil error aborts it.
	StoreFault(addr uint64, size int) error
}

// SetFaultHook installs (or with nil removes) a fault-injection hook.
func (m *Memory) SetFaultHook(h FaultHook) { m.hook = h }

// HasFaultHook reports whether a fault-injection hook is installed.  The
// threaded execution engine (internal/exec) skips per-instruction fetches,
// so it must yield to the fetch/switch engine whenever a hook could
// intercept them.
func (m *Memory) HasFaultHook() bool { return m.hook != nil }

// New returns a memory of the given size.  bigEndian selects the byte
// order (SPARC is big-endian; the DECstation MIPS and Alpha are little).
func New(size int, bigEndian bool) *Memory {
	return &Memory{data: make([]byte, size), big: bigEndian}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// BigEndian reports the configured byte order.
func (m *Memory) BigEndian() bool { return m.big }

func (m *Memory) check(addr uint64, size int) error {
	if addr+uint64(size) > uint64(len(m.data)) || addr+uint64(size) < addr {
		return fmt.Errorf("mem: access [%#x,+%d) out of range (size %#x)", addr, size, len(m.data))
	}
	if addr&uint64(size-1) != 0 {
		return fmt.Errorf("mem: misaligned %d-byte access at %#x", size, addr)
	}
	return nil
}

// Load reads a size-byte value (1, 2, 4 or 8) zero-extended into a uint64,
// charging the cache model for a data read.
func (m *Memory) Load(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	if m.hook != nil {
		if err := m.hook.LoadFault(addr, size); err != nil {
			return 0, err
		}
	}
	if m.dc != nil {
		m.penaltyCycles += m.dc.access(addr, false)
	}
	return m.loadRaw(addr, size), nil
}

// loadRaw reads without cost accounting or checks (callers have checked).
func (m *Memory) loadRaw(addr uint64, size int) uint64 {
	b := m.data[addr : addr+uint64(size)]
	if m.big {
		switch size {
		case 1:
			return uint64(b[0])
		case 2:
			return uint64(binary.BigEndian.Uint16(b))
		case 4:
			return uint64(binary.BigEndian.Uint32(b))
		default:
			return binary.BigEndian.Uint64(b)
		}
	}
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// Store writes the low size bytes of v, charging the cache model for a
// data write.
func (m *Memory) Store(addr uint64, size int, v uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	if m.hook != nil {
		if err := m.hook.StoreFault(addr, size); err != nil {
			return err
		}
	}
	if m.dc != nil {
		m.penaltyCycles += m.dc.access(addr, true)
	}
	b := m.data[addr : addr+uint64(size)]
	if m.big {
		switch size {
		case 1:
			b[0] = byte(v)
		case 2:
			binary.BigEndian.PutUint16(b, uint16(v))
		case 4:
			binary.BigEndian.PutUint32(b, uint32(v))
		default:
			binary.BigEndian.PutUint64(b, v)
		}
		return nil
	}
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
	return nil
}

// FetchWord reads an instruction word without data-cache accounting
// (instruction fetch is modelled as free; both compared systems in every
// experiment fetch from the same cache-resident loops).
func (m *Memory) FetchWord(addr uint64) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	w := uint32(m.loadRaw(addr, 4))
	if m.hook != nil {
		return m.hook.FetchFault(addr, w)
	}
	return w, nil
}

// WriteBytes copies raw bytes into memory (loader use; no cost accounting).
func (m *Memory) WriteBytes(addr uint64, p []byte) error {
	if addr+uint64(len(p)) > uint64(len(m.data)) {
		return fmt.Errorf("mem: WriteBytes [%#x,+%d) out of range", addr, len(p))
	}
	copy(m.data[addr:], p)
	return nil
}

// ReadBytes copies raw bytes out of memory (no cost accounting).
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	if addr+uint64(n) > uint64(len(m.data)) {
		return nil, fmt.Errorf("mem: ReadBytes [%#x,+%d) out of range", addr, n)
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// Bytes returns a writable window into memory (test and workload setup).
func (m *Memory) Bytes(addr uint64, n int) ([]byte, error) {
	if addr+uint64(n) > uint64(len(m.data)) {
		return nil, fmt.Errorf("mem: Bytes [%#x,+%d) out of range", addr, n)
	}
	return m.data[addr : addr+uint64(n)], nil
}

// AttachCache installs a data-cache cost model.
func (m *Memory) AttachCache(c *Cache) { m.dc = c }

// Cache returns the attached cache model (nil if none).
func (m *Memory) Cache() *Cache { return m.dc }

// PenaltyCycles returns the stall cycles accumulated by the cache model.
func (m *Memory) PenaltyCycles() uint64 { return m.penaltyCycles }

// ResetStats clears accumulated penalty cycles and cache statistics.
func (m *Memory) ResetStats() {
	m.penaltyCycles = 0
	if m.dc != nil {
		m.dc.ResetStats()
	}
}

// FlushCache invalidates every cache line (the Table 4 "uncached" rows
// flush between trials).
func (m *Memory) FlushCache() {
	if m.dc != nil {
		m.dc.Flush()
	}
}
