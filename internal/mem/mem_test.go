package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreEndianness(t *testing.T) {
	le := New(4096, false)
	be := New(4096, true)
	if err := le.Store(16, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	if err := be.Store(16, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	lb, _ := le.ReadBytes(16, 4)
	bb, _ := be.ReadBytes(16, 4)
	if lb[0] != 0x44 || lb[3] != 0x11 {
		t.Errorf("little-endian bytes %x", lb)
	}
	if bb[0] != 0x11 || bb[3] != 0x44 {
		t.Errorf("big-endian bytes %x", bb)
	}
}

func TestRoundtripQuick(t *testing.T) {
	m := New(1<<16, false)
	f := func(off uint16, v uint64, size uint8) bool {
		sz := []int{1, 2, 4, 8}[size%4]
		addr := uint64(off) &^ uint64(sz-1)
		if err := m.Store(addr, sz, v); err != nil {
			return false
		}
		got, err := m.Load(addr, sz)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if sz < 8 {
			mask = 1<<(8*sz) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlignmentAndBounds(t *testing.T) {
	m := New(64, false)
	if _, err := m.Load(2, 4); err == nil {
		t.Error("misaligned load should fail")
	}
	if err := m.Store(7, 2, 0); err == nil {
		t.Error("misaligned store should fail")
	}
	if _, err := m.Load(64, 4); err == nil {
		t.Error("out-of-range load should fail")
	}
	if _, err := m.Load(^uint64(0)-3, 4); err == nil {
		t.Error("wrapping load should fail")
	}
	if err := m.WriteBytes(60, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("out-of-range WriteBytes should fail")
	}
}

func TestCacheModel(t *testing.T) {
	m := New(1<<16, false)
	c, err := NewCache(16, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(c)

	// First read of a line misses; the second hits.
	if _, err := m.Load(0, 4); err != nil {
		t.Fatal(err)
	}
	if m.PenaltyCycles() != 10 {
		t.Errorf("first read penalty %d, want 10", m.PenaltyCycles())
	}
	if _, err := m.Load(4, 4); err != nil { // same 16-byte line
		t.Fatal(err)
	}
	if m.PenaltyCycles() != 10 {
		t.Errorf("hit should add nothing, got %d", m.PenaltyCycles())
	}
	// Writes cost the write-through path and do not allocate.
	if err := m.Store(256, 4, 1); err != nil {
		t.Fatal(err)
	}
	if m.PenaltyCycles() != 11 {
		t.Errorf("write penalty, got %d", m.PenaltyCycles())
	}
	if _, err := m.Load(256, 4); err != nil {
		t.Fatal(err)
	}
	if m.PenaltyCycles() != 21 {
		t.Errorf("read after write should miss (no write-allocate), got %d", m.PenaltyCycles())
	}
	// Conflict eviction: line 0 and line 0+4*16 map to the same set.
	if _, err := m.Load(0, 4); err != nil { // still cached? it was; hit
		t.Fatal(err)
	}
	before := m.PenaltyCycles()
	if _, err := m.Load(4*16, 4); err != nil { // evicts line 0's set
		t.Fatal(err)
	}
	if _, err := m.Load(0, 4); err != nil { // misses again
		t.Fatal(err)
	}
	if m.PenaltyCycles() != before+20 {
		t.Errorf("conflict misses, got %d want %d", m.PenaltyCycles(), before+20)
	}
	hits, misses, writes := c.Stats()
	if hits == 0 || misses == 0 || writes != 1 {
		t.Errorf("stats h=%d m=%d w=%d", hits, misses, writes)
	}

	m.FlushCache()
	before = m.PenaltyCycles()
	if _, err := m.Load(0, 4); err != nil {
		t.Fatal(err)
	}
	if m.PenaltyCycles() != before+10 {
		t.Error("flush should force a miss")
	}

	m.ResetStats()
	if m.PenaltyCycles() != 0 {
		t.Error("ResetStats")
	}
}

func TestFetchWordUncosted(t *testing.T) {
	m := New(4096, false)
	fc, err := NewCache(16, 16, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(fc)
	if err := m.Store(128, 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	w, err := m.FetchWord(128)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xdeadbeef {
		t.Errorf("fetch got %#x", w)
	}
	if m.PenaltyCycles() != 0 {
		t.Error("instruction fetch should not charge the data cache")
	}
}

func TestAccessors(t *testing.T) {
	m := New(128, true)
	if !m.BigEndian() {
		t.Error("BigEndian")
	}
	if m.Size() != 128 {
		t.Error("Size")
	}
	w, err := m.Bytes(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 0xab
	v, err := m.Load(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v>>24 != 0xab {
		t.Errorf("Bytes window not aliased: %#x", v)
	}
	if _, err := m.Bytes(120, 16); err == nil {
		t.Error("out-of-range Bytes should fail")
	}
}

func TestMachineConfigs(t *testing.T) {
	for _, mc := range []MachineConfig{DEC3100, DEC5000} {
		m, err := mc.Build(false)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cache() == nil {
			t.Errorf("%s: no cache attached", mc.Name)
		}
		if m.Cache().SizeBytes() != 64<<10 {
			t.Errorf("%s: cache is %d bytes, want 64KB", mc.Name, m.Cache().SizeBytes())
		}
	}
	if mu, err := Uncosted.Build(true); err != nil || mu.Cache() != nil {
		t.Errorf("Uncosted should build cacheless (err %v)", err)
	}
	if us := DEC5000.Micros(2500); us != 100 {
		t.Errorf("25MHz: 2500 cycles = %v us, want 100", us)
	}
}
