package dpf

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the "small safe language" the paper says packet
// filters are written in: a conjunction of masked comparisons over
// message words, e.g.
//
//	msg[12:2] == 0x0800 && msg[22:2] & 0xff00 == 0x0600 && msg[36:2] == 4007
//
// Each term is msg[offset:size] [& mask] == value with size 2 or 4.
// ParseFilter compiles the text into the Atom conjunction every engine
// (interpreted or dynamically compiled) consumes; the language is "safe"
// in the packet-filter sense — it can only read the message, and every
// access is bounds-checked by the engines.
func ParseFilter(id int, src string) (Filter, error) {
	f := Filter{ID: id}
	for _, term := range strings.Split(src, "&&") {
		term = strings.TrimSpace(term)
		if term == "" {
			return Filter{}, fmt.Errorf("dpf: empty term in filter")
		}
		atom, err := parseAtom(term)
		if err != nil {
			return Filter{}, err
		}
		f.Atoms = append(f.Atoms, atom)
	}
	if len(f.Atoms) == 0 {
		return Filter{}, fmt.Errorf("dpf: filter has no terms")
	}
	return f, nil
}

func parseAtom(term string) (Atom, error) {
	// msg[off:size] [& mask] == value
	rest, ok := strings.CutPrefix(term, "msg[")
	if !ok {
		return Atom{}, fmt.Errorf("dpf: term %q must start with msg[", term)
	}
	idx := strings.IndexByte(rest, ']')
	if idx < 0 {
		return Atom{}, fmt.Errorf("dpf: term %q missing ]", term)
	}
	offSize := strings.SplitN(rest[:idx], ":", 2)
	if len(offSize) != 2 {
		return Atom{}, fmt.Errorf("dpf: term %q needs msg[offset:size]", term)
	}
	off, err := strconv.ParseInt(strings.TrimSpace(offSize[0]), 0, 32)
	if err != nil {
		return Atom{}, fmt.Errorf("dpf: bad offset in %q: %v", term, err)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(offSize[1]), 0, 32)
	if err != nil || (size != 2 && size != 4) {
		return Atom{}, fmt.Errorf("dpf: size in %q must be 2 or 4", term)
	}
	if off < 0 || off%size != 0 {
		return Atom{}, fmt.Errorf("dpf: offset %d in %q must be non-negative and %d-aligned", off, term, size)
	}
	rest = strings.TrimSpace(rest[idx+1:])

	fullMask := uint32(0xffff)
	if size == 4 {
		fullMask = 0xffffffff
	}
	mask := fullMask
	if m, ok2 := strings.CutPrefix(rest, "&"); ok2 {
		eq := strings.Index(m, "==")
		if eq < 0 {
			return Atom{}, fmt.Errorf("dpf: term %q missing ==", term)
		}
		mv, err := strconv.ParseUint(strings.TrimSpace(m[:eq]), 0, 32)
		if err != nil {
			return Atom{}, fmt.Errorf("dpf: bad mask in %q: %v", term, err)
		}
		mask = uint32(mv) & fullMask
		rest = m[eq:]
	}
	val, ok := strings.CutPrefix(rest, "==")
	if !ok {
		return Atom{}, fmt.Errorf("dpf: term %q missing ==", term)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(val), 0, 33)
	if err != nil {
		return Atom{}, fmt.Errorf("dpf: bad value in %q: %v", term, err)
	}
	if uint64(v)&uint64(^mask) != 0 {
		return Atom{}, fmt.Errorf("dpf: value %#x in %q has bits outside mask %#x", v, term, mask)
	}
	return Atom{Off: int(off), Size: int(size), Mask: mask, Val: uint32(v)}, nil
}

// String renders a filter back in the language.
func (f *Filter) String() string {
	var b strings.Builder
	for i, a := range f.Atoms {
		if i > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "msg[%d:%d]", a.Off, a.Size)
		if !a.FullMask() {
			fmt.Fprintf(&b, " & %#x", a.Mask)
		}
		fmt.Fprintf(&b, " == %#x", a.Val)
	}
	return b.String()
}
