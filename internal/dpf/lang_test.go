package dpf

import (
	"testing"

	"repro/internal/mem"
)

func TestParseFilterRoundtrip(t *testing.T) {
	w := NewWorkload(3)
	for _, f := range w.Filters {
		src := f.String()
		got, err := ParseFilter(f.ID, src)
		if err != nil {
			t.Fatalf("reparse %q: %v", src, err)
		}
		if len(got.Atoms) != len(f.Atoms) {
			t.Fatalf("%q: %d atoms, want %d", src, len(got.Atoms), len(f.Atoms))
		}
		for i := range got.Atoms {
			if got.Atoms[i] != f.Atoms[i] {
				t.Errorf("%q atom %d: %+v != %+v", src, i, got.Atoms[i], f.Atoms[i])
			}
		}
	}
}

// TestParsedFiltersThroughDPF writes filters in the language, compiles
// them with DPF and classifies.
func TestParsedFiltersThroughDPF(t *testing.T) {
	mk := func(id int, dport uint16) Filter {
		f, err := ParseFilter(id, "msg[12:2] == 0x8 && msg[14:2] & 0x00ff == 0x45 && msg[22:2] & 0xff00 == 0x600 && msg[36:2] == "+itoa(dport))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return f
	}
	// Values above are little-endian raw loads of the header template:
	// ethertype 0x0800 big-endian reads as 0x0008, proto byte 6 sits in
	// the high byte of the halfword at 22, the port is byte-swapped.
	var filters []Filter
	var pkts [][]byte
	for i := 0; i < 4; i++ {
		port := uint16(4000 + 7*i)
		raw := port>>8 | port<<8 // little-endian halfword of a BE field
		filters = append(filters, mk(i+1, raw))
		pkts = append(pkts, MakeTCPPacket(0x0a000001, 0x0a000002, 2000, port, 32))
	}
	d, err := NewDPF(mem.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(filters); err != nil {
		t.Fatal(err)
	}
	for i, pkt := range pkts {
		id, _, err := d.Classify(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if id != i+1 {
			t.Errorf("packet %d classified as %d", i, id)
		}
	}
}

func itoa(v uint16) string {
	return "0x" + hex(uint32(v))
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v&15]
		v >>= 4
	}
	return string(b[i:])
}

func TestParseFilterErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"pkt[0:2] == 1",
		"msg[0:3] == 1",
		"msg[1:2] == 1",          // misaligned
		"msg[0:2] == 0x10000",    // value exceeds size
		"msg[0:2] & 0xf == 0x10", // value outside mask
		"msg[0:2] = 1",
		"msg[0:2]",
		"msg[0:2] == 1 && ",
	} {
		if _, err := ParseFilter(1, src); err == nil {
			t.Errorf("%q parsed without error", src)
		}
	}
}
