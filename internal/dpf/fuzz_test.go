package dpf

import (
	"testing"
)

// FuzzDPFFilter parses arbitrary filter source and, when it parses, runs
// the interpreted matcher over a few packets (including ones shorter
// than the filter's window — the bounds-check path).  Parse rejects bad
// input with an error; neither stage may panic.
func FuzzDPFFilter(f *testing.F) {
	f.Add("msg[12:2] == 0x0800")
	f.Add("msg[12:2] == 0x0800 && msg[22:2] & 0xff00 == 0x0600 && msg[36:2] == 4007")
	f.Add("msg[0:4] & 0xffffffff == 0xdeadbeef")
	f.Add("msg[2:2] == 1 && msg[4:4] == 2")
	f.Add("msg[65535:4] == 0")
	f.Add("msg[-1:2] == 0")
	f.Add("msg[0:3] == 0")
	f.Add("&&")
	f.Add("msg[")
	f.Fuzz(func(t *testing.T, src string) {
		flt, err := ParseFilter(1, src)
		if err != nil {
			return
		}
		if len(flt.Atoms) == 0 {
			t.Error("parsed filter has no atoms")
		}
		pkts := [][]byte{
			nil,
			{0x08, 0x00},
			make([]byte, 64),
			make([]byte, 9), // odd length exercises partial-word bounds
		}
		for _, p := range pkts {
			_ = flt.Match(p)
		}
	})
}
