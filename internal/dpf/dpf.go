package dpf

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/alpha"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/sparc"
)

// DPF is the paper's dynamic packet filter engine: when filters are
// installed, the whole filter set is merged into a trie and compiled to
// machine code with VCODE.  Two of the paper's specializations are
// implemented:
//
//   - value dispatch is specialized on the number of outgoing edges:
//     a short sequential search for few values, a binary search for
//     sparse sets, and a runtime-chosen multiplicative hash over a data
//     table for larger sets;
//   - because the number and value of keys are known at code-generation
//     time, the hash function is selected to be collision-free and the
//     collision checks a static system would need are never emitted.
//
// Classification runs the generated code on the cycle-counted MIPS
// simulator; Classify reports the cycles the generated code cost.
type DPF struct {
	mu      sync.Mutex
	machine *core.Machine
	backend core.Backend
	cpu     core.CPU
	conf    mem.MachineConfig

	// cache holds compiled classifiers keyed by filter-spec hash, so
	// re-installing a previously seen filter set (the demultiplexer
	// flipping between configurations) reuses its machine code instead
	// of recompiling; eviction frees the stale classifiers' code.  When
	// nil, every Install recompiles into a Mark/Release arena (the
	// paper's original discipline).
	cache *codecache.Cache

	fn      *core.Func
	mark    core.Mark
	marked  bool
	pktAddr uint64
	pktCap  int

	// MinHashEdges tunes when hash dispatch takes over from binary
	// search (exposed for the ablation benchmark).
	MinHashEdges int
	// DisableHash forces comparison-based dispatch.
	DisableHash bool
}

// NewDPF builds an engine on a fresh simulated MIPS machine using the
// given cost configuration (Table 3 uses mem.DEC5000, matching the
// paper's DECstation).
func NewDPF(conf mem.MachineConfig) (*DPF, error) {
	return NewDPFTarget("mips", conf)
}

// NewDPFTarget builds the engine on any of the three ports.  The paper's
// DPF ran only on MIPS ("our operating system only runs on MIPS
// machines"); because this compiler is written against the portable VCODE
// instruction set, it retargets for free.
func NewDPFTarget(target string, conf mem.MachineConfig) (*DPF, error) {
	var bk core.Backend
	var cpu core.CPU
	var m *mem.Memory
	var err error
	switch target {
	case "mips":
		if m, err = conf.Build(false); err != nil {
			return nil, err
		}
		bk = mips.New()
		cpu = mips.NewCPU(m)
	case "sparc":
		if m, err = conf.Build(true); err != nil {
			return nil, err
		}
		bk = sparc.New()
		cpu = sparc.NewCPU(m)
	case "alpha":
		if m, err = conf.Build(false); err != nil {
			return nil, err
		}
		bk = alpha.New()
		cpu = alpha.NewCPU(m)
	default:
		return nil, fmt.Errorf("dpf: unknown target %q", target)
	}
	mc := core.NewMachine(bk, cpu, m)
	d := &DPF{machine: mc, backend: bk, cpu: cpu, conf: conf, MinHashEdges: 6, pktCap: 4096}
	d.cache = codecache.New(codecache.Config{Machine: mc, MaxEntries: 8})
	addr, err := mc.Alloc(d.pktCap)
	if err != nil {
		return nil, err
	}
	d.pktAddr = addr
	return d, nil
}

// Name implements Engine.
func (d *DPF) Name() string { return "DPF" }

// Machine exposes the underlying simulated machine (examples print
// generated code through it).
func (d *DPF) Machine() *core.Machine { return d.machine }

// Func returns the compiled classifier.
func (d *DPF) Func() *core.Func { return d.fn }

// trie node for the merged filter set.
type trieNode struct {
	atom   Atom
	edges  []trieEdge
	accept int
}

type trieEdge struct {
	val   uint32
	child *trieNode
}

func buildTrie(filters []Filter) (*trieNode, error) {
	var root *trieNode
	for _, f := range filters {
		if len(f.Atoms) == 0 {
			return nil, fmt.Errorf("dpf: filter %d has no atoms", f.ID)
		}
		node := &root
		for i, a := range f.Atoms {
			if *node == nil {
				*node = &trieNode{atom: a, accept: 0}
			}
			n := *node
			if !sameKey(n.atom, a) {
				return nil, fmt.Errorf("dpf: filter %d diverges structurally at offset %d", f.ID, a.Off)
			}
			var e *trieEdge
			for j := range n.edges {
				if n.edges[j].val == a.Val {
					e = &n.edges[j]
					break
				}
			}
			if e == nil {
				n.edges = append(n.edges, trieEdge{val: a.Val})
				e = &n.edges[len(n.edges)-1]
			}
			if i == len(f.Atoms)-1 {
				if e.child != nil {
					return nil, fmt.Errorf("dpf: filter %d is a prefix of another filter", f.ID)
				}
				e.child = &trieNode{accept: f.ID}
			} else {
				if e.child == nil {
					e.child = &trieNode{atom: f.Atoms[i+1]}
				}
				node = &e.child
			}
		}
	}
	return root, nil
}

// DisableCache switches the engine to the paper's original discipline:
// every Install recompiles and the previous classifier's arena (code and
// dispatch tables) is released wholesale.  Used by the compile-cost
// benchmark; not reversible.
func (d *DPF) DisableCache() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache = nil
}

// CacheMetrics snapshots the classifier cache (zero Metrics when the
// cache is disabled).
func (d *DPF) CacheMetrics() codecache.Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cache == nil {
		return codecache.Metrics{}
	}
	return d.cache.Snapshot()
}

// filtersKey hashes everything that determines the generated classifier:
// the filter specs plus the dispatch-selection knobs.
func filtersKey(filters []Filter, minHashEdges int, disableHash bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dpf|%d|%v", minHashEdges, disableHash)
	for _, f := range filters {
		fmt.Fprintf(&sb, "|%d:", f.ID)
		for _, a := range f.Atoms {
			fmt.Fprintf(&sb, "%d,%d,%x,%x;", a.Off, a.Size, a.Mask, a.Val)
		}
	}
	return codecache.HashKey(sb.String())
}

// Install compiles the filter set (the paper compiles at install time)
// and makes it the active classifier.  With the cache enabled, a filter
// set seen before reactivates its resident machine code without any code
// generation; new sets compile once and stale ones are evicted (their
// code memory freed, though dispatch tables allocated on the simulated
// heap stay until the engine is discarded).
func (d *DPF) Install(filters []Filter) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cache == nil {
		return d.installFresh(filters)
	}
	fn, err := d.cache.GetOrCompile(filtersKey(filters, d.MinHashEdges, d.DisableHash),
		func() (*core.Func, error) {
			root, err := buildTrie(filters)
			if err != nil {
				return nil, err
			}
			c := &dpfCompiler{d: d, a: core.NewAsm(d.backend)}
			return c.compile(root)
		})
	if err != nil {
		return err
	}
	d.fn = fn
	return nil
}

// installFresh is the cache-disabled path: the previous classifier and
// its dispatch tables are reclaimed — deallocating a dynamic function
// frees all its storage (§5.2).
func (d *DPF) installFresh(filters []Filter) error {
	root, err := buildTrie(filters)
	if err != nil {
		return err
	}
	if d.marked {
		d.fn = nil
		d.machine.Release(d.mark)
	}
	d.mark = d.machine.Mark()
	d.marked = true
	c := &dpfCompiler{d: d, a: core.NewAsm(d.backend)}
	fn, err := c.compile(root)
	if err != nil {
		return err
	}
	if err := d.machine.Install(fn); err != nil {
		return err
	}
	d.fn = fn
	return nil
}

// Classify copies the packet into simulated memory and runs the compiled
// classifier, returning its result and cycle cost.
func (d *DPF) Classify(pkt []byte) (int, uint64, error) {
	return d.ClassifyContext(context.Background(), pkt)
}

// ClassifyContext is Classify with cancellation: a classifier driven from
// a request path can bound its latency with a context deadline, and a
// compiled trie gone wrong surfaces as a typed error instead of wedging
// the packet loop.
func (d *DPF) ClassifyContext(ctx context.Context, pkt []byte) (int, uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fn == nil {
		return 0, 0, fmt.Errorf("dpf: no filters installed")
	}
	if len(pkt) > d.pktCap {
		return 0, 0, fmt.Errorf("dpf: packet of %d bytes exceeds buffer", len(pkt))
	}
	if err := d.machine.Mem().WriteBytes(d.pktAddr, pkt); err != nil {
		return 0, 0, err
	}
	d.cpu.ResetStats()
	ret, err := d.machine.CallContext(ctx, d.fn, core.P(d.pktAddr), core.I(int32(len(pkt))))
	if err != nil {
		return 0, 0, err
	}
	return int(ret.Int()), d.cpu.Cycles(), nil
}

// Micros converts cycles to microseconds under the engine's machine
// configuration.
func (d *DPF) Micros(cycles uint64) float64 { return d.conf.Micros(cycles) }

// --- the compiler ---

type dpfCompiler struct {
	d    *DPF
	a    *core.Asm
	pkt  core.Reg
	plen core.Reg
	val  core.Reg
	res  core.Reg
	fail core.Label
}

func (c *dpfCompiler) compile(root *trieNode) (*core.Func, error) {
	a := c.a
	a.SetName("dpf-classify")
	args, err := a.Begin("%p%i", core.Leaf)
	if err != nil {
		return nil, err
	}
	c.pkt, c.plen = args[0], args[1]
	if c.val, err = a.GetReg(core.Temp); err != nil {
		return nil, err
	}
	if c.res, err = a.GetReg(core.Temp); err != nil {
		return nil, err
	}
	c.fail = a.NewLabel()

	// Reject packets shorter than the header region any filter touches.
	maxOff := 0
	walk(root, func(n *trieNode) {
		if n.atom.Off+n.atom.Size > maxOff {
			maxOff = n.atom.Off + n.atom.Size
		}
	})
	a.Bltii(c.plen, int64(maxOff), c.fail)

	if err := c.node(root); err != nil {
		return nil, err
	}

	a.Bind(c.fail)
	a.Seti(c.res, 0)
	a.Reti(c.res)
	return a.End()
}

func walk(n *trieNode, f func(*trieNode)) {
	if n == nil {
		return
	}
	f(n)
	for _, e := range n.edges {
		walk(e.child, f)
	}
}

// node emits the code for one trie node: load+mask the atom, dispatch on
// the value, and recurse into the children.
func (c *dpfCompiler) node(n *trieNode) error {
	a := c.a
	if n.accept != 0 {
		a.Seti(c.res, int64(n.accept))
		a.Reti(c.res)
		return a.Err()
	}
	// val = (load)(pkt + off) [& mask].  Atom values are defined in
	// little-endian raw-load terms; on a big-endian target the portable
	// byte-swap extension restores the language's semantics.
	if n.atom.Size == 2 {
		a.Ldusi(c.val, c.pkt, int64(n.atom.Off))
	} else {
		a.Ldui(c.val, c.pkt, int64(n.atom.Off))
	}
	if c.d.backend.BigEndian() {
		if n.atom.Size == 2 {
			a.Ext("bswap2", core.TypeU, c.val, c.val)
		} else {
			a.Ext("bswap4", core.TypeU, c.val, c.val)
		}
	}
	if !n.atom.FullMask() {
		a.Andui(c.val, c.val, int64(n.atom.Mask))
	}

	switch {
	case len(n.edges) <= 3:
		return c.sequential(n.edges)
	case !c.d.DisableHash && len(n.edges) >= c.d.MinHashEdges && n.atom.Size == 2:
		if err := c.hashed(n.edges); err == nil {
			return nil
		}
		// No collision-free hash found quickly: fall back.
		return c.binary(n.edges)
	default:
		return c.binary(n.edges)
	}
}

// sequential emits a short chain of compares ("a small range of values is
// searched directly").
func (c *dpfCompiler) sequential(edges []trieEdge) error {
	a := c.a
	for _, e := range edges {
		skip := a.NewLabel()
		a.Bneui(c.val, int64(e.val), skip)
		if err := c.node(e.child); err != nil {
			return err
		}
		a.Bind(skip)
	}
	a.Jmp(c.fail)
	return a.Err()
}

// binary emits a comparison tree ("sparse values are matched using binary
// search").
func (c *dpfCompiler) binary(edges []trieEdge) error {
	sorted := append([]trieEdge(nil), edges...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].val < sorted[j-1].val; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if err := c.binaryRange(sorted); err != nil {
		return err
	}
	return c.a.Err()
}

func (c *dpfCompiler) binaryRange(edges []trieEdge) error {
	a := c.a
	if len(edges) <= 2 {
		for _, e := range edges {
			skip := a.NewLabel()
			a.Bneui(c.val, int64(e.val), skip)
			if err := c.node(e.child); err != nil {
				return err
			}
			a.Bind(skip)
		}
		a.Jmp(c.fail)
		return a.Err()
	}
	mid := len(edges) / 2
	e := edges[mid]
	hit := a.NewLabel()
	hi := a.NewLabel()
	a.Bequi(c.val, int64(e.val), hit)
	a.Bgtui(c.val, int64(e.val), hi)
	if err := c.binaryRange(edges[:mid]); err != nil {
		return err
	}
	a.Bind(hi)
	if err := c.binaryRange(edges[mid+1:]); err != nil {
		return err
	}
	a.Bind(hit)
	return c.node(e.child)
}

// hashed emits the paper's hash dispatch: a hash function chosen at code
// generation time to be collision-free over the installed keys indexes a
// key/target-id table in data memory, and because the generator knows no
// keys collided, no collision chains or checks are emitted (§4.2).  Every
// key reaching this point must identify a distinct accepting filter one
// atom deeper (true for the final dispatch level of session filters); the
// table then stores the filter IDs directly.  Non-terminal children make
// the node ineligible and the caller falls back to binary search.
func (c *dpfCompiler) hashed(edges []trieEdge) error {
	for _, e := range edges {
		if e.child == nil || e.child.accept == 0 {
			return fmt.Errorf("dpf: hash dispatch needs terminal children")
		}
	}
	size := 4
	for size < 2*len(edges) {
		size *= 2
	}
	hash, emitHash, err := chooseHash(edges, size)
	if err != nil {
		return err
	}

	// Lay the key and id tables into simulated data memory.
	table, err := c.d.machine.Alloc(8 * size)
	if err != nil {
		return err
	}
	memv := c.d.machine.Mem()
	for i := 0; i < size; i++ {
		// Impossible key marker (keys here are 16-bit values).
		if err := memv.Store(table+uint64(8*i), 4, 0xffffffff); err != nil {
			return err
		}
	}
	for _, e := range edges {
		h := hash(e.val)
		if err := memv.Store(table+uint64(8*h), 4, uint64(e.val)); err != nil {
			return err
		}
		if err := memv.Store(table+uint64(8*h)+4, 4, uint64(e.child.accept)); err != nil {
			return err
		}
	}

	// entry = table + 8*hash(val); if key[entry] != val: fail;
	// return id[entry].
	a := c.a
	tmp, err := a.GetReg(core.Temp)
	if err != nil {
		return err
	}
	emitHash(a, tmp, c.val)
	a.Lshui(tmp, tmp, 3)
	base, err := a.GetReg(core.Temp)
	if err != nil {
		return err
	}
	a.Setp(base, int64(table))
	a.Addp(base, base, tmp)
	a.Ldui(tmp, base, 0)
	a.Bneu(tmp, c.val, c.fail)
	a.Ldii(c.res, base, 4)
	a.Reti(c.res)
	a.PutReg(tmp)
	a.PutReg(base)
	return a.Err()
}

// chooseHash selects among several hash functions at code-generation time
// ("DPF can select among several hash functions to obtain the best
// distribution"): the cheap shift family (v >> s) & (size-1) is tried
// first, then multiplicative hashes.  It returns the host-side function
// (for table layout) and the emitter producing the same computation in
// generated code, or an error if every candidate collides.
func chooseHash(edges []trieEdge, size int) (func(uint32) uint32, func(a *core.Asm, dst, src core.Reg), error) {
	collisionFree := func(h func(uint32) uint32) bool {
		used := make(map[uint32]bool, len(edges))
		for _, e := range edges {
			x := h(e.val)
			if used[x] {
				return false
			}
			used[x] = true
		}
		return true
	}
	mask := uint32(size - 1)
	for s := uint32(0); s <= 12; s++ {
		s := s
		h := func(v uint32) uint32 { return (v >> s) & mask }
		if collisionFree(h) {
			return h, func(a *core.Asm, dst, src core.Reg) {
				if s > 0 {
					a.Rshui(dst, src, int64(s))
					a.Andui(dst, dst, int64(mask))
				} else {
					a.Andui(dst, src, int64(mask))
				}
			}, nil
		}
	}
	for _, m := range []uint32{0x9e37, 0x85eb, 0xc2b2, 0x27d4, 0x1657, 0x61c8, 0x7feb, 0x0b4b} {
		m := m
		h := func(v uint32) uint32 { return (v * m >> 16) & mask }
		if collisionFree(h) {
			return h, func(a *core.Asm, dst, src core.Reg) {
				a.Setu(dst, int64(m))
				a.Mulu(dst, src, dst)
				a.Rshui(dst, dst, 16)
				a.Andui(dst, dst, int64(mask))
			}, nil
		}
	}
	return nil, nil, fmt.Errorf("dpf: no collision-free hash function over %d keys", len(edges))
}
