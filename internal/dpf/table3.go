package dpf

import (
	"fmt"

	"repro/internal/mem"
)

// Table3Row is one engine's result in the Table 3 experiment.
type Table3Row struct {
	Engine string
	Micros float64
	Cycles float64
}

// RunTable3 reproduces the paper's Table 3: the average time to classify
// TCP/IP headers destined for one of nFilters TCP/IP filters, over trials
// round-robined across the matching packets (the paper averages 100 000
// trials).  All engines are costed on the same DEC5000-class machine
// model.
func RunTable3(nFilters, trials int) ([]Table3Row, error) {
	w := NewWorkload(nFilters)

	dpfEngine, err := NewDPF(mem.DEC5000)
	if err != nil {
		return nil, err
	}
	engines := []Engine{NewMPF(), NewPathfinder(), dpfEngine}

	var rows []Table3Row
	for _, e := range engines {
		if err := e.Install(w.Filters); err != nil {
			return nil, fmt.Errorf("%s: install: %w", e.Name(), err)
		}
		if err := Verify(e, w); err != nil {
			return nil, err
		}
		var total uint64
		for i := 0; i < trials; i++ {
			pkt := w.Packets[i%len(w.Packets)]
			_, cycles, err := e.Classify(pkt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name(), err)
			}
			total += cycles
		}
		avg := float64(total) / float64(trials)
		rows = append(rows, Table3Row{
			Engine: e.Name(),
			Cycles: avg,
			Micros: avg / mem.DEC5000.MHz,
		})
	}
	return rows, nil
}

// ScalingPoint is one point of the filter-count sweep: how classification
// cost grows with the number of installed filters under each engine.
type ScalingPoint struct {
	Filters int
	Micros  map[string]float64
}

// RunScaling sweeps the number of installed filters.  The published
// systems' characters show up directly: MPF grows linearly (every filter
// interpreted), PATHFINDER grows with the width of its final dispatch
// level, and DPF stays nearly flat once its hash dispatch absorbs the
// port comparison.
func RunScaling(counts []int, trials int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, n := range counts {
		w := NewWorkload(n)
		dpfEngine, err := NewDPF(mem.DEC5000)
		if err != nil {
			return nil, err
		}
		pt := ScalingPoint{Filters: n, Micros: map[string]float64{}}
		for _, e := range []Engine{NewMPF(), NewPathfinder(), dpfEngine} {
			if err := e.Install(w.Filters); err != nil {
				return nil, err
			}
			if err := Verify(e, w); err != nil {
				return nil, err
			}
			var total uint64
			for i := 0; i < trials; i++ {
				_, c, err := e.Classify(w.Packets[i%len(w.Packets)])
				if err != nil {
					return nil, err
				}
				total += c
			}
			pt.Micros[e.Name()] = float64(total) / float64(trials) / mem.DEC5000.MHz
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatScaling renders the sweep as a series.
func FormatScaling(pts []ScalingPoint) string {
	s := "classification time (us) vs installed filters\n"
	s += fmt.Sprintf("%8s %10s %12s %8s\n", "filters", "MPF", "PATHFINDER", "DPF")
	for _, p := range pts {
		s += fmt.Sprintf("%8d %10.2f %12.2f %8.2f\n",
			p.Filters, p.Micros["MPF"], p.Micros["PATHFINDER"], p.Micros["DPF"])
	}
	return s
}

// FormatTable3 renders rows in the paper's style.
func FormatTable3(rows []Table3Row) string {
	s := "Table 3: average time to classify TCP/IP headers (10 filters)\n"
	s += fmt.Sprintf("%-12s %10s %12s\n", "engine", "time (us)", "cycles")
	for _, r := range rows {
		s += fmt.Sprintf("%-12s %10.2f %12.1f\n", r.Engine, r.Micros, r.Cycles)
	}
	return s
}
