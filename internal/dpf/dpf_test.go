package dpf

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestFiltersMatchOwnPackets(t *testing.T) {
	w := NewWorkload(10)
	for i, f := range w.Filters {
		for j, pkt := range w.Packets {
			got := f.Match(pkt)
			want := i == j
			if got != want {
				t.Errorf("filter %d vs packet %d: match=%v, want %v", i, j, got, want)
			}
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	w := NewWorkload(10)
	dpfEngine, err := NewDPF(mem.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{NewMPF(), NewPathfinder(), dpfEngine} {
		if err := e.Install(w.Filters); err != nil {
			t.Fatalf("%s: install: %v", e.Name(), err)
		}
		if err := Verify(e, w); err != nil {
			t.Error(err)
		}
	}
}

// TestEnginesAgreeQuick fuzzes random port pairs through all three
// engines and checks they classify identically.
func TestEnginesAgreeQuick(t *testing.T) {
	w := NewWorkload(10)
	dpfEngine, err := NewDPF(mem.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	engines := []Engine{NewMPF(), NewPathfinder(), dpfEngine}
	for _, e := range engines {
		if err := e.Install(w.Filters); err != nil {
			t.Fatalf("%s: install: %v", e.Name(), err)
		}
	}
	ref := func(pkt []byte) int {
		for _, f := range w.Filters {
			if f.Match(pkt) {
				return f.ID
			}
		}
		return 0
	}
	f := func(sp, dp uint16, wrongIP bool) bool {
		src := uint32(0x0a000001)
		if wrongIP {
			src = 0x0b0b0b0b
		}
		pkt := MakeTCPPacket(src, 0x0a000002, sp, dp, 32)
		want := ref(pkt)
		for _, e := range engines {
			got, _, err := e.Classify(pkt)
			if err != nil || got != want {
				t.Logf("%s: got %d want %d err %v (sp=%d dp=%d wrong=%v)", e.Name(), got, want, err, sp, dp, wrongIP)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestShortPacketRejected checks the compiled classifier's length guard.
func TestShortPacketRejected(t *testing.T) {
	w := NewWorkload(4)
	d, err := NewDPF(mem.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(w.Filters); err != nil {
		t.Fatal(err)
	}
	id, _, err := d.Classify(w.Packets[0][:20])
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("truncated packet classified as %d, want 0", id)
	}
}

// TestDispatchStrategies exercises the three dispatch shapes: sequential
// (2 filters), binary (hash disabled), and hash.
func TestDispatchStrategies(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		disable bool
	}{
		{"sequential", 2, false},
		{"binary", 10, true},
		{"hash", 10, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorkload(tc.n)
			d, err := NewDPF(mem.DEC5000)
			if err != nil {
				t.Fatal(err)
			}
			d.DisableHash = tc.disable
			if err := d.Install(w.Filters); err != nil {
				t.Fatal(err)
			}
			if err := Verify(d, w); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDPFOnAllTargets retargets the filter compiler (the paper ran it on
// MIPS only) and checks identical classification on SPARC (big-endian:
// loads go through the byte-swap extension) and Alpha (halfword loads are
// synthesized sequences).
func TestDPFOnAllTargets(t *testing.T) {
	w := NewWorkload(10)
	for _, target := range []string{"mips", "sparc", "alpha"} {
		t.Run(target, func(t *testing.T) {
			d, err := NewDPFTarget(target, mem.Uncosted)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Install(w.Filters); err != nil {
				t.Fatal(err)
			}
			if err := Verify(d, w); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestScalingShape checks how cost grows with filter count: MPF is
// linear, DPF is flat once hash dispatch engages.
func TestScalingShape(t *testing.T) {
	pts, err := RunScaling([]int{5, 10, 40}, 100)
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	if growth := last.Micros["MPF"] / first.Micros["MPF"]; growth < 4 {
		t.Errorf("MPF should grow ~linearly with filters: 5->40 grew only %.1fx", growth)
	}
	if growth := last.Micros["DPF"] / first.Micros["DPF"]; growth > 1.5 {
		t.Errorf("DPF should stay nearly flat: 5->40 grew %.1fx", growth)
	}
}

// TestTable3Shape checks the published ordering and rough magnitudes:
// DPF about an order of magnitude faster than PATHFINDER and about twice
// that again over MPF.
func TestTable3Shape(t *testing.T) {
	rows, err := RunTable3(10, 200)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Engine] = r.Micros
	}
	mpf, pf, dpf := byName["MPF"], byName["PATHFINDER"], byName["DPF"]
	if !(dpf < pf && pf < mpf) {
		t.Fatalf("ordering wrong: MPF=%.2f PATHFINDER=%.2f DPF=%.2f", mpf, pf, dpf)
	}
	if pf/dpf < 4 {
		t.Errorf("DPF should be several times faster than PATHFINDER; got %.1fx", pf/dpf)
	}
	if mpf/dpf < 8 {
		t.Errorf("DPF should be roughly an order of magnitude over MPF; got %.1fx", mpf/dpf)
	}
}

// TestDPFClassifierCache checks that re-installing a previously seen
// filter set reuses its compiled classifier (no recompile), that a new
// set compiles exactly once, and that classification stays correct when
// flipping between cached sets.
func TestDPFClassifierCache(t *testing.T) {
	d, err := NewDPF(mem.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	wA := NewWorkload(10)
	wB := NewWorkload(4)

	check := func(w *Workload) {
		t.Helper()
		if err := d.Install(w.Filters); err != nil {
			t.Fatal(err)
		}
		if err := Verify(d, w); err != nil {
			t.Fatal(err)
		}
	}

	check(wA)
	if m := d.CacheMetrics(); m.Compiles != 1 {
		t.Fatalf("compiles = %d after first install, want 1", m.Compiles)
	}
	check(wA) // same spec: must be a pure cache hit
	if m := d.CacheMetrics(); m.Compiles != 1 || m.Hits == 0 {
		t.Fatalf("reinstall recompiled: %+v", m)
	}
	check(wB) // different spec: one more compile
	check(wA) // flip back: still no recompile of A
	if m := d.CacheMetrics(); m.Compiles != 2 {
		t.Fatalf("compiles = %d after A,A,B,A, want 2", m.Compiles)
	}
	// Knobs that change the generated code must change the key.
	d.DisableHash = true
	check(wA)
	if m := d.CacheMetrics(); m.Compiles != 3 {
		t.Fatalf("compiles = %d after knob change, want 3", m.Compiles)
	}
}
