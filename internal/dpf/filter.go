// Package dpf reproduces the paper's §4.2 experiment: Dynamic Packet
// Filters.  A packet filter is a predicate, written in a small safe
// language, that claims packets belonging to an application.  The package
// contains three message demultiplexers over the same filter model:
//
//   - MPF: a bytecode interpreter in the Mach Packet Filter tradition,
//     which interprets every installed filter in turn;
//   - PATHFINDER: a pattern-matching interpreter that organizes filters
//     into a trie of cells so shared prefixes are evaluated once;
//   - DPF: the paper's system, which compiles the installed filter set to
//     machine code with VCODE when filters are installed, specializing
//     dispatch (sequential / binary search / runtime-chosen hash) on the
//     values present.
//
// The interpreters charge cycles through an explicit cost model; DPF's
// cycles come from running its generated code on the MIPS simulator.
// Both are microseconds on the same DEC5000-class machine model, which is
// what Table 3 reports.
package dpf

import (
	"encoding/binary"
	"fmt"
)

// Atom is one conjunct of a filter: (load(Off, Size) & Mask) == Val.
// Loads are Size bytes (2 or 4), naturally aligned, raw little-endian (the
// byte order of the DECstation the experiment models).
type Atom struct {
	Off  int
	Size int
	Mask uint32
	Val  uint32
}

// FullMask reports whether the atom compares the whole loaded value.
func (a Atom) FullMask() bool {
	if a.Size == 2 {
		return a.Mask == 0xffff
	}
	return a.Mask == 0xffffffff
}

// Eval evaluates the atom against a packet.
func (a Atom) Eval(pkt []byte) bool {
	v, ok := loadRaw(pkt, a.Off, a.Size)
	return ok && v&a.Mask == a.Val
}

// Filter is a conjunction of atoms with an identifier; identifiers are
// positive (0 means "no match").
type Filter struct {
	ID    int
	Atoms []Atom
}

// Match evaluates the whole filter.
func (f *Filter) Match(pkt []byte) bool {
	for _, a := range f.Atoms {
		if !a.Eval(pkt) {
			return false
		}
	}
	return true
}

func loadRaw(pkt []byte, off, size int) (uint32, bool) {
	if off+size > len(pkt) {
		return 0, false
	}
	switch size {
	case 2:
		return uint32(binary.LittleEndian.Uint16(pkt[off:])), true
	case 4:
		return binary.LittleEndian.Uint32(pkt[off:]), true
	}
	return 0, false
}

// --- the Table 3 workload: TCP/IP session filters ---

// Header layout offsets (Ethernet + IPv4 + TCP, no options).
const (
	offEtherType = 12
	offVerIHL    = 14
	offProto     = 22 // halfword containing the protocol byte
	offSrcIP     = 26
	offDstIP     = 30
	offSrcPort   = 34
	offDstPort   = 36
	headerLen    = 54
)

// MakeTCPPacket builds a byte image of an Ethernet/IPv4/TCP header for
// the given session, followed by payload bytes.
func MakeTCPPacket(srcIP, dstIP uint32, srcPort, dstPort uint16, payload int) []byte {
	pkt := make([]byte, headerLen+payload)
	binary.BigEndian.PutUint16(pkt[offEtherType:], 0x0800) // IPv4
	pkt[offVerIHL] = 0x45
	pkt[23] = 6 // TCP
	binary.BigEndian.PutUint32(pkt[offSrcIP:], srcIP)
	binary.BigEndian.PutUint32(pkt[offDstIP:], dstIP)
	binary.BigEndian.PutUint16(pkt[offSrcPort:], srcPort)
	binary.BigEndian.PutUint16(pkt[offDstPort:], dstPort)
	for i := headerLen; i < len(pkt); i++ {
		pkt[i] = byte(i)
	}
	return pkt
}

// SessionFilter builds the filter accepting exactly the TCP session built
// by MakeTCPPacket with the same parameters.  Atom values are derived
// from a template packet, so the filter is byte-order-correct by
// construction.
func SessionFilter(id int, srcIP, dstIP uint32, srcPort, dstPort uint16) Filter {
	tmpl := MakeTCPPacket(srcIP, dstIP, srcPort, dstPort, 0)
	atom := func(off, size int, mask uint32) Atom {
		v, _ := loadRaw(tmpl, off, size)
		return Atom{Off: off, Size: size, Mask: mask, Val: v & mask}
	}
	return Filter{
		ID: id,
		Atoms: []Atom{
			atom(offEtherType, 2, 0xffff),
			atom(offVerIHL, 2, 0x00ff),
			atom(offProto, 2, 0xff00),
			atom(offSrcIP, 2, 0xffff),
			atom(offSrcIP+2, 2, 0xffff),
			atom(offDstIP, 2, 0xffff),
			atom(offDstIP+2, 2, 0xffff),
			atom(offSrcPort, 2, 0xffff),
			atom(offDstPort, 2, 0xffff),
		},
	}
}

// Workload is the Table 3 experiment setup: n TCP/IP session filters that
// differ in their port pair, plus a matching packet for each.
type Workload struct {
	Filters []Filter
	Packets [][]byte
}

// NewWorkload builds the n-session workload (the paper uses n = 10).
func NewWorkload(n int) *Workload {
	w := &Workload{}
	const srcIP, dstIP = 0x0a000001, 0x0a000002
	for i := 0; i < n; i++ {
		// Sessions differ in destination port only (a server-side port
		// demultiplex), so the compiled trie ends in one multi-way
		// dispatch — the case DPF's hash specialization serves.
		sp := uint16(2000)
		dp := uint16(4000 + 7*i)
		w.Filters = append(w.Filters, SessionFilter(i+1, srcIP, dstIP, sp, dp))
		w.Packets = append(w.Packets, MakeTCPPacket(srcIP, dstIP, sp, dp, 64))
	}
	return w
}

// Engine is a message demultiplexer: it classifies a packet against the
// installed filters, returning the matching filter's ID (0 = none) and
// the machine cycles the classification cost.
type Engine interface {
	Name() string
	// Install replaces the installed filter set.
	Install(filters []Filter) error
	// Classify demultiplexes one packet.
	Classify(pkt []byte) (id int, cycles uint64, err error)
}

// Verify checks an engine against direct filter evaluation over the
// workload, returning an error on the first misclassification.
func Verify(e Engine, w *Workload) error {
	for i, pkt := range w.Packets {
		id, _, err := e.Classify(pkt)
		if err != nil {
			return fmt.Errorf("%s: classify packet %d: %w", e.Name(), i, err)
		}
		if id != w.Filters[i].ID {
			return fmt.Errorf("%s: packet %d classified as %d, want %d", e.Name(), i, id, w.Filters[i].ID)
		}
	}
	// A non-matching packet must return 0.
	stray := MakeTCPPacket(0x0afefe01, 0x0afefe02, 9, 9, 64)
	id, _, err := e.Classify(stray)
	if err != nil {
		return fmt.Errorf("%s: classify stray: %w", e.Name(), err)
	}
	if id != 0 {
		return fmt.Errorf("%s: stray packet classified as %d, want 0", e.Name(), id)
	}
	return nil
}
