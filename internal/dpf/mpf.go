package dpf

import "fmt"

// MPF models a Mach-Packet-Filter-style engine: each installed filter is
// compiled to a small stack-free bytecode program, and classification
// interprets every program in turn until one accepts.  Interpretation
// cost is charged with an explicit cycle model representing a tight
// switch-dispatch interpreter on a DEC5000-class machine; the constants
// are per dynamic bytecode operation.
type MPF struct {
	progs []mpfProg
}

// NewMPF returns an empty engine.
func NewMPF() *MPF { return &MPF{} }

// Name implements Engine.
func (m *MPF) Name() string { return "MPF" }

type mpfOp uint8

const (
	mpfLoadH   mpfOp = iota // acc = load16(off)
	mpfLoadW                // acc = load32(off)
	mpfAnd                  // acc &= k
	mpfJneFail              // if acc != k: reject
	mpfAccept               // accept with id
)

type mpfInsn struct {
	op  mpfOp
	off int
	k   uint32
}

type mpfProg struct {
	id    int
	insns []mpfInsn
}

// Cost model (cycles per dynamic operation, including the interpreter's
// fetch/decode/dispatch overhead).
const (
	mpfDispatch = 5 // fetch + decode + indirect branch
	mpfLoadCost = 3 // bounds check + packet load
	mpfALUCost  = 1
	mpfCmpCost  = 2
	mpfSetup    = 12 // per-program entry/exit (call, argument setup)
)

// Install compiles each filter to bytecode.
func (m *MPF) Install(filters []Filter) error {
	m.progs = m.progs[:0]
	for _, f := range filters {
		var p mpfProg
		p.id = f.ID
		for _, a := range f.Atoms {
			if a.Size == 2 {
				p.insns = append(p.insns, mpfInsn{op: mpfLoadH, off: a.Off})
			} else {
				p.insns = append(p.insns, mpfInsn{op: mpfLoadW, off: a.Off})
			}
			if !a.FullMask() {
				p.insns = append(p.insns, mpfInsn{op: mpfAnd, k: a.Mask})
			}
			p.insns = append(p.insns, mpfInsn{op: mpfJneFail, k: a.Val})
		}
		p.insns = append(p.insns, mpfInsn{op: mpfAccept})
		m.progs = append(m.progs, p)
	}
	return nil
}

// Classify interprets each program until one accepts.
func (m *MPF) Classify(pkt []byte) (int, uint64, error) {
	var cycles uint64
	for _, p := range m.progs {
		cycles += mpfSetup
		acc := uint32(0)
		rejected := false
		for _, in := range p.insns {
			cycles += mpfDispatch
			switch in.op {
			case mpfLoadH:
				v, ok := loadRaw(pkt, in.off, 2)
				if !ok {
					rejected = true
				}
				acc = v
				cycles += mpfLoadCost
			case mpfLoadW:
				v, ok := loadRaw(pkt, in.off, 4)
				if !ok {
					rejected = true
				}
				acc = v
				cycles += mpfLoadCost
			case mpfAnd:
				acc &= in.k
				cycles += mpfALUCost
			case mpfJneFail:
				cycles += mpfCmpCost
				if acc != in.k {
					rejected = true
				}
			case mpfAccept:
				return p.id, cycles, nil
			default:
				return 0, cycles, fmt.Errorf("mpf: bad opcode %d", in.op)
			}
			if rejected {
				break
			}
		}
	}
	return 0, cycles, nil
}
