package dpf

import "fmt"

// Pathfinder models the PATHFINDER engine (Bailey et al., OSDI 1994): a
// pattern-based classifier whose filters are merged into a DAG of
// "cells".  Each cell holds a (offset, size, mask) key and a list of
// (value -> next cell) lines; classification walks the DAG so prefixes
// shared between filters are evaluated once.  PATHFINDER interprets its
// cell structures; the cost model below charges each cell visit and each
// line comparison.
type Pathfinder struct {
	root *pfCell
}

// NewPathfinder returns an empty engine.
func NewPathfinder() *Pathfinder { return &Pathfinder{} }

// Name implements Engine.
func (p *Pathfinder) Name() string { return "PATHFINDER" }

type pfLine struct {
	val  uint32
	next *pfCell
	id   int // non-zero: accept here when next == nil
}

type pfCell struct {
	atom  Atom // Val ignored; lines carry the values
	lines []pfLine
}

// Cost model (cycles).  PATHFINDER's cells are heavyweight generic
// pattern-matching structures (header, chain links, postponed-cell
// bookkeeping); visiting one costs far more than DPF's two or three
// compiled instructions for the same comparison.
const (
	pfCellVisit = 34 // fetch cell, chase links, bounds check, load, mask
	pfLineCmp   = 8  // fetch line, compare value, advance
	pfSetup     = 20 // entry overhead per classification
)

// Install merges the filters into the cell DAG.  Filters must agree on
// cell structure where their prefixes overlap (true of the protocol
// filters this model is built for; PATHFINDER proper also handles
// divergent structures).
func (p *Pathfinder) Install(filters []Filter) error {
	p.root = nil
	for _, f := range filters {
		if err := insertAtoms(&p.root, f.Atoms, f.ID); err != nil {
			return err
		}
	}
	return nil
}

func sameKey(a, b Atom) bool {
	return a.Off == b.Off && a.Size == b.Size && a.Mask == b.Mask
}

func insertAtoms(cellp **pfCell, atoms []Atom, id int) error {
	a := atoms[0]
	if *cellp == nil {
		*cellp = &pfCell{atom: a}
	}
	c := *cellp
	if !sameKey(c.atom, a) {
		return fmt.Errorf("pathfinder: divergent cell structure at offset %d", a.Off)
	}
	var line *pfLine
	for j := range c.lines {
		if c.lines[j].val == a.Val {
			line = &c.lines[j]
			break
		}
	}
	if line == nil {
		c.lines = append(c.lines, pfLine{val: a.Val})
		line = &c.lines[len(c.lines)-1]
	}
	if len(atoms) == 1 {
		line.id = id
		return nil
	}
	return insertAtoms(&line.next, atoms[1:], id)
}

// Classify walks the DAG, charging the cost model.
func (p *Pathfinder) Classify(pkt []byte) (int, uint64, error) {
	cycles := uint64(pfSetup)
	c := p.root
	for c != nil {
		cycles += pfCellVisit
		v, ok := loadRaw(pkt, c.atom.Off, c.atom.Size)
		if !ok {
			return 0, cycles, nil
		}
		v &= c.atom.Mask
		var matched *pfLine
		for j := range c.lines {
			cycles += pfLineCmp
			if c.lines[j].val == v {
				matched = &c.lines[j]
				break
			}
		}
		if matched == nil {
			return 0, cycles, nil
		}
		if matched.next == nil {
			return matched.id, cycles, nil
		}
		c = matched.next
	}
	return 0, cycles, nil
}
