package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

func TestMain(m *testing.M) {
	telemetry.SetEnabled(true)
	os.Exit(m.Run())
}

const factVasm = `
.func fact (%i) leaf
.reg acc temp i
    seti    acc, 1
loop:
    bleii   arg0, 1, done
    muli    acc, acc, arg0
    subii   arg0, arg0, 1
    jmp     loop
done:
    reti    acc
.end
`

const fibTinyC = `
int main(int n) {
	int a = 0;
	int b = 1;
	while (n > 0) {
		int t = a + b;
		a = b;
		b = t;
		n = n - 1;
	}
	return a;
}
`

// newTestServer builds a Server on a fresh registry (no cross-test
// metric sharing), marks it ready, and wraps it in an httptest server.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Shards:              2,
		WorkersPerShard:     2,
		AllowUnknownTenants: true,
		Registry:            telemetry.NewRegistry(),
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Restore(""); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// newHTTP wraps an already-built Server in an httptest listener.
func newHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}

// post sends body as JSON and decodes the response into a generic map.
func post(t *testing.T, ts *httptest.Server, path string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return resp.StatusCode, out
}

func wantErrCode(t *testing.T, status int, out map[string]any, wantStatus int, want Code) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d (%v), want %d", status, out, wantStatus)
	}
	e, _ := out["error"].(map[string]any)
	if e == nil {
		t.Fatalf("no error object in %v", out)
	}
	if got := e["code"]; got != string(want) {
		t.Fatalf("error code = %v, want %s (message %v)", got, want, e["message"])
	}
}

func asInt(t *testing.T, v any) int64 {
	t.Helper()
	n, ok := v.(json.Number)
	if !ok {
		t.Fatalf("not a number: %v (%T)", v, v)
	}
	i, err := n.Int64()
	if err != nil {
		t.Fatalf("int64(%v): %v", n, err)
	}
	return i
}

func TestExecVasmAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm, "args": []int{6},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	if got := asInt(t, out["result"]); got != 720 {
		t.Fatalf("fact(6) = %d, want 720", got)
	}
	if out["cached"] != false {
		t.Fatalf("first call reported cached: %v", out)
	}
	key, _ := out["key"].(string)
	if key == "" {
		t.Fatalf("no key in response: %v", out)
	}

	// Same content from another tenant: cache hit, same key.
	status, out2 := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "bob", "lang": "vasm", "source": factVasm, "args": []int{5},
	})
	if status != http.StatusOK || out2["cached"] != true || out2["key"] != key {
		t.Fatalf("second call not a shared cache hit: %d %v", status, out2)
	}
	if got := asInt(t, out2["result"]); got != 120 {
		t.Fatalf("fact(5) = %d, want 120", got)
	}
}

func TestExecTinyC(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "tinyc", "source": fibTinyC, "args": []int{10},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	if got := asInt(t, out["result"]); got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestCompileThenExecByKey(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, out := post(t, ts, "/v1/compile", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm,
	})
	if status != http.StatusOK {
		t.Fatalf("compile status %d: %v", status, out)
	}
	key := out["key"].(string)
	if asInt(t, out["code_bytes"]) <= 0 || asInt(t, out["functions"]) != 1 {
		t.Fatalf("compile response: %v", out)
	}

	// Execute by key alone — no source re-upload.
	status, out = post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "key": key, "args": []int{7},
	})
	if status != http.StatusOK {
		t.Fatalf("exec-by-key status %d: %v", status, out)
	}
	if got := asInt(t, out["result"]); got != 5040 {
		t.Fatalf("fact(7) = %d, want 5040", got)
	}
	if out["cached"] != true {
		t.Fatalf("exec-by-key not cached: %v", out)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name   string
		path   string
		body   map[string]any
		status int
		code   Code
	}{
		{"unknown lang", "/v1/exec",
			map[string]any{"lang": "cobol", "source": "x"},
			http.StatusBadRequest, CodeBadRequest},
		{"no source no key", "/v1/exec",
			map[string]any{"lang": "vasm"},
			http.StatusBadRequest, CodeBadRequest},
		{"bad arity", "/v1/exec",
			map[string]any{"lang": "vasm", "source": factVasm, "args": []int{1, 2}},
			http.StatusBadRequest, CodeBadRequest},
		{"missing entry", "/v1/exec",
			map[string]any{"lang": "vasm", "source": factVasm, "entry": "nope", "args": []int{1}},
			http.StatusNotFound, CodeNotFound},
		{"unresident key", "/v1/exec",
			map[string]any{"key": "deadbeef", "args": []int{1}},
			http.StatusNotFound, CodeNotFound},
		{"parse error", "/v1/compile",
			map[string]any{"lang": "tinyc", "source": "int main( {"},
			http.StatusUnprocessableEntity, CodeCompileError},
		{"fuel exhausted", "/v1/exec",
			map[string]any{"lang": "vasm", "source": factVasm, "args": []int{1 << 20}, "fuel": 50},
			http.StatusUnprocessableEntity, CodeFuelExhausted},
		{"fuel over quota", "/v1/exec",
			map[string]any{"lang": "vasm", "source": factVasm, "args": []int{1}, "fuel": 1 << 40},
			http.StatusBadRequest, CodeQuotaFuel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, out := post(t, ts, tc.path, tc.body)
			wantErrCode(t, status, out, tc.status, tc.code)
		})
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.AllowUnknownTenants = false
		c.Tenants = map[string]Quota{"alice": {}}
	})
	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "mallory", "lang": "vasm", "source": factVasm, "args": []int{3},
	})
	wantErrCode(t, status, out, http.StatusForbidden, CodeUnknownTenant)

	status, _ = post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm, "args": []int{3},
	})
	if status != http.StatusOK {
		t.Fatalf("known tenant rejected: %d", status)
	}
}

func TestQuotaCodeBytes(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Tenants = map[string]Quota{"small": {MaxResidentBytes: 1}}
	})
	status, out := post(t, ts, "/v1/compile", map[string]any{
		"tenant": "small", "lang": "vasm", "source": factVasm,
	})
	if status != http.StatusOK {
		t.Fatalf("first compile: %d %v", status, out)
	}
	// Now at (over) quota: a different program must be rejected.
	status, out = post(t, ts, "/v1/compile", map[string]any{
		"tenant": "small", "lang": "tinyc", "source": fibTinyC,
	})
	wantErrCode(t, status, out, http.StatusTooManyRequests, CodeQuotaCodeBytes)
	e := out["error"].(map[string]any)
	if asInt(t, e["retry_after_ms"]) <= 0 {
		t.Fatalf("backpressure without retry_after_ms: %v", out)
	}
	// A cache hit on the resident program is still served.
	status, _ = post(t, ts, "/v1/exec", map[string]any{
		"tenant": "small", "lang": "vasm", "source": factVasm, "args": []int{4},
	})
	if status != http.StatusOK {
		t.Fatalf("cache hit rejected at quota: %d", status)
	}
}

func TestQuotaConcurrency(t *testing.T) {
	reg := telemetry.NewRegistry()
	tn := newTenant(reg, "x", Quota{MaxCompileConcurrency: 1})
	if ae := tn.admitCompile(); ae != nil {
		t.Fatalf("first admit: %v", ae)
	}
	ae := tn.admitCompile()
	if ae == nil || ae.Code != CodeQuotaConcurrency {
		t.Fatalf("second admit = %v, want quota_concurrency", ae)
	}
	if ae.Status() != http.StatusTooManyRequests || ae.RetryAfterMS <= 0 {
		t.Fatalf("quota_concurrency status/retry: %d %d", ae.Status(), ae.RetryAfterMS)
	}
	tn.releaseCompile()
	if ae := tn.admitCompile(); ae != nil {
		t.Fatalf("admit after release: %v", ae)
	}
}

func TestEvictionReturnsResidency(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Shards = 1
		c.MaxEntriesPerShard = 1
	})
	status, out := post(t, ts, "/v1/compile", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm,
	})
	if status != http.StatusOK {
		t.Fatalf("compile A: %d %v", status, out)
	}
	keyA := out["key"].(string)
	status, _ = post(t, ts, "/v1/compile", map[string]any{
		"tenant": "alice", "lang": "tinyc", "source": fibTinyC,
	})
	if status != http.StatusOK {
		t.Fatalf("compile B: %d", status)
	}

	// A was evicted to make room: its bytes must be returned.
	alice, ae := s.tenants.get("alice")
	if ae != nil {
		t.Fatalf("get tenant: %v", ae)
	}
	u := s.shards[0].unit(contentKey(LangTinyC, "", fibTinyC))
	if u == nil {
		t.Fatalf("unit B not registered")
	}
	if got := alice.resident.Load(); got != u.bytes {
		t.Fatalf("resident after eviction = %d, want %d (B only)", got, u.bytes)
	}
	status, out = post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "key": keyA, "args": []int{3},
	})
	wantErrCode(t, status, out, http.StatusNotFound, CodeNotFound)
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for i := 0; i < 3; i++ {
		post(t, ts, "/v1/exec", map[string]any{
			"tenant": "alice", "lang": "vasm", "source": factVasm, "args": []int{i + 2},
		})
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if len(st.Shards) != 2 || !st.Ready || st.Requests != 3 {
		t.Fatalf("stats: %+v", st)
	}
	var alice *TenantStats
	for i := range st.Tenants {
		if st.Tenants[i].Name == "alice" {
			alice = &st.Tenants[i]
		}
	}
	if alice == nil || alice.Requests != 3 || alice.Compiles != 1 || alice.ResidentBytes <= 0 {
		t.Fatalf("tenant stats: %+v", st.Tenants)
	}
	if alice.Calls != 3 || alice.CallP99NS == 0 {
		t.Fatalf("tenant call summary: %+v", alice)
	}
	total := 0
	for _, sh := range st.Shards {
		total += sh.Units
		if sh.Calls > 0 && sh.CodeBytesResident == 0 {
			t.Fatalf("shard with calls but no resident code: %+v", sh)
		}
	}
	if total != 1 {
		t.Fatalf("units across shards = %d, want 1", total)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	cfg := Config{Shards: 1, Registry: telemetry.NewRegistry()}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/healthz") != http.StatusOK {
		t.Fatalf("liveness before restore")
	}
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatalf("ready before Restore ran")
	}
	if _, err := s.Restore(""); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if get("/readyz") != http.StatusOK {
		t.Fatalf("not ready after Restore")
	}
}

func TestObservabilityMounted(t *testing.T) {
	_, ts := newTestServer(t, nil)
	post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm, "args": []int{3},
	})
	for _, path := range []string{"/metrics", "/metrics.json", "/trace.txt", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{core.ErrFuelExhausted, CodeFuelExhausted},
		{fmt.Errorf("wrap: %w", core.ErrFuelExhausted), CodeFuelExhausted},
		{context.DeadlineExceeded, CodeDeadline},
		{fmt.Errorf("x: %w", faultinject.ErrInjected), CodeInjectedFault},
		{errors.New("anything else"), CodeExecError},
		{apiErr(CodeQueueFull, "q"), CodeQueueFull},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got.Code != tc.want {
			t.Errorf("classify(%v) = %s, want %s", tc.err, got.Code, tc.want)
		}
	}
	if got := classifyCompile(errors.New("parse")); got.Code != CodeCompileError {
		t.Errorf("classifyCompile residual = %s", got.Code)
	}
	if got := classifyCompile(core.ErrFuelExhausted); got.Code != CodeFuelExhausted {
		t.Errorf("classifyCompile typed = %s", got.Code)
	}
	if !errorsIs(apiErr(CodeDeadline, "d"), CodeDeadline) {
		t.Errorf("errorsIs failed")
	}
}
