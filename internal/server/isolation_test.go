package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// Cross-tenant isolation: a tenant that grinds into every quota wall it
// has — fuel exhaustion on each call, resident-code quota, compile
// concurrency — must not break another tenant's correctness, and must
// not blow up the victim's tail latency.  Run under -race in CI.
//
// The latency assertion is deliberately generous and absolute (shared
// CI boxes): the point is "victim p99 stays in the same universe", not
// a benchmark — the bench-gate tracks regressions statistically.
const victimP99Bound = 500 * time.Millisecond

// quietPost is the raw client used by the isolation hammer: no testing
// assertions, just status + decoded body.
func quietPost(ts *httptest.Server, path string, body map[string]any) (int, map[string]any, error) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

func TestCrossTenantIsolation(t *testing.T) {
	cases := []struct {
		name   string
		lang   string
		source string
		arg    int
		want   int64
	}{
		{"vasm", LangVasm, factVasm, 7, 5040},
		{"tinyc", LangTinyC, fibTinyC, 10, 55},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, func(c *Config) {
				c.Shards = 2
				c.Tenants = map[string]Quota{
					"hostile": {
						FuelPerCall:           1 << 14,
						MaxResidentBytes:      8 << 10,
						MaxCompileConcurrency: 2,
					},
					"victim": {},
				}
				c.AllowUnknownTenants = false
			})

			// Warm the victim's program once so the steady state is the
			// cache-hit path a real tenant lives on.
			status, out := post(t, ts, "/v1/exec", map[string]any{
				"tenant": "victim", "lang": tc.lang, "source": tc.source, "args": []int{tc.arg},
			})
			if status != http.StatusOK {
				t.Fatalf("victim warmup: %d %v", status, out)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup

			// Hostile tenant: 4 goroutines hammering every quota.
			hostileCodes := make(map[string]int)
			var hostileMu sync.Mutex
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						var body map[string]any
						switch i % 3 {
						case 0: // burn the whole fuel budget
							body = map[string]any{
								"tenant": "hostile", "lang": LangVasm,
								"source": factVasm, "args": []int{1 << 20},
							}
						case 1: // unique programs into the resident-bytes wall
							body = map[string]any{
								"tenant": "hostile", "lang": LangVasm,
								"source": factVasm + fmt.Sprintf("; v%d-%d", g, i),
							}
						default: // concurrency pressure on one fresh key
							body = map[string]any{
								"tenant": "hostile", "lang": LangTinyC,
								"source": fmt.Sprintf("int main(int n) { return n + %d; }", i%7),
								"args":   []int{1},
							}
						}
						path := "/v1/exec"
						if i%3 == 1 {
							path = "/v1/compile"
						}
						st, out, err := quietPost(ts, path, body)
						if err != nil {
							continue // listener closing at test end
						}
						if st != http.StatusOK {
							e, _ := out["error"].(map[string]any)
							if e == nil || e["code"] == "" {
								t.Errorf("hostile failure without typed code: %d %v", st, out)
								return
							}
							hostileMu.Lock()
							hostileCodes[e["code"].(string)]++
							hostileMu.Unlock()
						}
					}
				}(g)
			}

			// Victim: steady requests; every one must be correct.
			const victimN = 200
			lat := make([]time.Duration, 0, victimN)
			for i := 0; i < victimN; i++ {
				begin := time.Now()
				st, out, err := quietPost(ts, "/v1/exec", map[string]any{
					"tenant": "victim", "lang": tc.lang, "source": tc.source, "args": []int{tc.arg},
				})
				lat = append(lat, time.Since(begin))
				if err != nil {
					t.Fatalf("victim request %d: %v", i, err)
				}
				if st != http.StatusOK {
					t.Fatalf("victim request %d failed: %d %v", i, st, out)
				}
				n, _ := out["result"].(json.Number).Int64()
				if n != tc.want {
					t.Fatalf("victim result %d = %d, want %d", i, n, tc.want)
				}
			}
			close(stop)
			wg.Wait()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := lat[len(lat)*99/100]
			if p99 > victimP99Bound {
				t.Fatalf("victim p99 = %v under hostile load (bound %v)", p99, victimP99Bound)
			}
			t.Logf("victim p99 = %v; hostile rejections by code: %v", p99, hostileCodes)

			// The hostile tenant actually hit its walls — otherwise this
			// test is not testing isolation.
			hostileMu.Lock()
			defer hostileMu.Unlock()
			if hostileCodes[string(CodeFuelExhausted)] == 0 {
				t.Errorf("hostile never exhausted fuel: %v", hostileCodes)
			}
			if hostileCodes[string(CodeQuotaCodeBytes)] == 0 {
				t.Errorf("hostile never hit resident-bytes quota: %v", hostileCodes)
			}
		})
	}
}

// TestIsolationResidencyLedger checks the accounting ends consistent
// after the storm: summed tenant residency equals summed live unit
// bytes.
func TestIsolationResidencyLedger(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Shards = 2
		c.MaxEntriesPerShard = 4 // force evictions
	})
	for i := 0; i < 40; i++ {
		tenantName := fmt.Sprintf("t%d", i%3)
		post(t, ts, "/v1/compile", map[string]any{
			"tenant": tenantName, "lang": LangTinyC,
			"source": fmt.Sprintf("int main(int n) { return n * %d; }", i),
		})
	}
	var unitBytes, tenantBytes int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, u := range sh.units {
			unitBytes += u.bytes
		}
		sh.mu.Unlock()
	}
	for _, name := range s.tenants.names() {
		tn, _ := s.tenants.get(name)
		tenantBytes += tn.resident.Load()
	}
	if unitBytes != tenantBytes {
		t.Fatalf("ledger mismatch: units hold %d bytes, tenants charged %d", unitBytes, tenantBytes)
	}
	if unitBytes == 0 {
		t.Fatalf("nothing resident after 40 compiles")
	}
}
