package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// newJournaledServer builds a server with shards arenas and runs Recover
// against the given snapshot+journal pair.
func newJournaledServer(t *testing.T, shards int, snap, jrnl string) (*Server, *httptest.Server, RecoveryStats, error) {
	t.Helper()
	s, err := New(Config{
		Shards:              shards,
		WorkersPerShard:     2,
		AllowUnknownTenants: true,
		Registry:            telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, rerr := s.Recover(snap, jrnl)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, st, rerr
}

// compileN compiles n distinct tinyc programs and returns key -> expected
// result for exec with args [3].  wantDurable asserts the ack's durability
// bit (true only when the server has a journal).
func compileN(t *testing.T, ts *httptest.Server, n, salt int, wantDurable bool) map[string]int64 {
	t.Helper()
	want := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		a, b := salt*100+i*7+1, i
		status, out := post(t, ts, "/v1/exec", map[string]any{
			"tenant": "alice", "lang": "tinyc",
			"source": "int main(int n) { return n * " + itoa(a) + " + " + itoa(b) + "; }",
			"args":   []int{3},
		})
		if status != http.StatusOK {
			t.Fatalf("exec %d: %d %v", i, status, out)
		}
		if got := asInt(t, out["result"]); got != int64(3*a+b) {
			t.Fatalf("exec %d: result %d, want %d", i, got, 3*a+b)
		}
		if out["durable"] != wantDurable {
			t.Fatalf("exec %d durable = %v, want %v: %v", i, out["durable"], wantDurable, out)
		}
		want[out["key"].(string)] = int64(3*a + b)
	}
	return want
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func verifyKeys(t *testing.T, ts *httptest.Server, want map[string]int64) {
	t.Helper()
	for key, exp := range want {
		status, out := post(t, ts, "/v1/exec", map[string]any{"tenant": "alice", "key": key, "args": []int{3}})
		if status != http.StatusOK {
			t.Fatalf("warm exec %s: %d %v", key, status, out)
		}
		if got := asInt(t, out["result"]); got != exp {
			t.Fatalf("warm exec %s: result %d, want %d — recovered unit computes a different program", key, got, exp)
		}
		if out["durable"] != true {
			t.Fatalf("restored key %s not durable: %v", key, out)
		}
	}
}

// ledgerConserved asserts Σ tenant resident bytes == Σ shard unit bytes.
func ledgerConserved(t *testing.T, s *Server) int64 {
	t.Helper()
	st := s.StatsView()
	var tenantBytes, shardBytes int64
	for _, tn := range st.Tenants {
		tenantBytes += tn.ResidentBytes
	}
	for _, sh := range st.Shards {
		shardBytes += sh.UnitBytes
	}
	if tenantBytes != shardBytes || tenantBytes == 0 {
		t.Fatalf("residency ledger broken: tenants=%dB shards=%dB", tenantBytes, shardBytes)
	}
	return tenantBytes
}

// TestJournalOnlyRecovery kills a journaled server without a checkpoint:
// everything acknowledged durable must come back from the journal tail.
func TestJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	snap, jrnl := filepath.Join(dir, "s.vcsnap"), filepath.Join(dir, "j.vcjrnl")

	s1, ts1, _, err := newJournaledServer(t, 2, snap, jrnl)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	want := compileN(t, ts1, 5, 1, true)
	// "Crash": no Checkpoint, no SaveSnapshot — the journal is all there is.
	ts1.Close()
	s1.Close()

	s2, ts2, st, err := newJournaledServer(t, 2, snap, jrnl)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if st.Warm != 5 || st.JournalRecords < 5 {
		t.Fatalf("recovery stats %+v, want 5 warm from >=5 journal records", st)
	}
	if ready, missing := s2.Health().Ready(); !ready {
		t.Fatalf("not ready after recovery: %v", missing)
	}
	verifyKeys(t, ts2, want)
	ledgerConserved(t, s2)
}

// TestReshardingRestore checkpoints an N-shard server and recovers into
// M != N shards: same keys, same answers, ledger conserved, resharding
// counted and exported.
func TestReshardingRestore(t *testing.T) {
	dir := t.TempDir()
	snap, jrnl := filepath.Join(dir, "s.vcsnap"), filepath.Join(dir, "j.vcjrnl")

	s1, ts1, _, err := newJournaledServer(t, 2, snap, jrnl)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	want := compileN(t, ts1, 8, 2, true)
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	bytes1 := ledgerConserved(t, s1)
	ts1.Close()
	s1.Close()

	s2, ts2, st, err := newJournaledServer(t, 3, snap, jrnl)
	if err != nil {
		t.Fatalf("resharded recovery: %v", err)
	}
	if st.Warm != 8 {
		t.Fatalf("warm = %d, want 8 (stats %+v)", st.Warm, st)
	}
	if st.Resharded == 0 {
		t.Fatalf("no unit resharded across a 2->3 shard change: %+v", st)
	}
	verifyKeys(t, ts2, want)
	if bytes2 := ledgerConserved(t, s2); bytes2 != bytes1 {
		t.Fatalf("ledger changed across resharding: %dB -> %dB", bytes1, bytes2)
	}
	view := s2.StatsView()
	if view.Resharded != uint64(st.Resharded) {
		t.Fatalf("Stats.Resharded = %d, want %d", view.Resharded, st.Resharded)
	}
	if view.RecoveryMS != st.DurationMS {
		t.Fatalf("Stats.RecoveryMS = %d, want %d", view.RecoveryMS, st.DurationMS)
	}
}

// TestCheckpointFoldsJournal verifies compaction: after Checkpoint the
// journal restarts near-empty and the snapshot alone carries the state.
func TestCheckpointFoldsJournal(t *testing.T) {
	dir := t.TempDir()
	snap, jrnl := filepath.Join(dir, "s.vcsnap"), filepath.Join(dir, "j.vcjrnl")

	s1, ts1, _, err := newJournaledServer(t, 2, snap, jrnl)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	want := compileN(t, ts1, 4, 3, true)
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	recs, diag := replayJournal(jrnl)
	if diag.HeaderBad || len(recs) != 0 {
		t.Fatalf("journal not emptied by checkpoint: %d records, %+v", len(recs), diag)
	}
	ts1.Close()
	s1.Close()

	// Delete the journal entirely: the folded snapshot must be enough.
	if err := os.Remove(jrnl); err != nil {
		t.Fatal(err)
	}
	_, ts2, st, err := newJournaledServer(t, 2, snap, jrnl)
	if err != nil {
		t.Fatalf("recovery from snapshot alone: %v", err)
	}
	if st.Warm != 4 || st.SnapshotEntries != 4 {
		t.Fatalf("recovery stats %+v, want 4 warm from the snapshot", st)
	}
	verifyKeys(t, ts2, want)
}

// TestSnapshotBitFlips flips single bytes across every region of the
// snapshot format — magic, version, CRC, gob payload — and requires the
// server to boot cold with a typed diagnostic each time: no panic, no
// partially-trusted payload, and (because the source CRC failed) never a
// wrong answer under a stale key.
func TestSnapshotBitFlips(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "s.vcsnap")
	s1, ts1, _, err := newJournaledServer(t, 2, snap, "")
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	want := compileN(t, ts1, 3, 4, false)
	if _, err := s1.SaveSnapshot(snap); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	ts1.Close()
	s1.Close()
	clean, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	regions := map[string]int{
		"magic":        0,
		"version":      len(snapshotMagic),
		"crc":          len(snapshotMagic) + 2,
		"payload-head": len(snapshotMagic) + 1 + 4 + 3,
		"payload-mid":  len(clean) / 2,
		"payload-tail": len(clean) - 2,
	}
	for name, off := range regions {
		t.Run(name, func(t *testing.T) {
			mangled := append([]byte(nil), clean...)
			mangled[off] ^= 0x10
			p := filepath.Join(t.TempDir(), "flip.vcsnap")
			if err := os.WriteFile(p, mangled, 0o644); err != nil {
				t.Fatal(err)
			}
			s, ts, st, rerr := newJournaledServer(t, 2, p, "")
			if rerr == nil {
				t.Fatalf("corrupt snapshot (%s) loaded without a diagnostic", name)
			}
			if !st.SnapshotCorrupt || st.Warm != 0 {
				t.Fatalf("stats %+v, want cold corrupt boot", st)
			}
			if ready, missing := s.Health().Ready(); !ready {
				t.Fatalf("server not serving after corrupt snapshot: %v", missing)
			}
			for key := range want {
				status, out := post(t, ts, "/v1/exec", map[string]any{"tenant": "alice", "key": key, "args": []int{3}})
				wantErrCode(t, status, out, http.StatusNotFound, CodeNotFound)
			}
		})
	}
}

// TestJournalBitFlipRecovery flips a byte inside a journal record region
// and requires a partially-warm boot: every record before the flip
// serves, the tail is truncated with JournalTorn set, nothing panics.
func TestJournalBitFlipRecovery(t *testing.T) {
	dir := t.TempDir()
	snap, jrnl := filepath.Join(dir, "s.vcsnap"), filepath.Join(dir, "j.vcjrnl")
	s1, ts1, _, err := newJournaledServer(t, 2, snap, jrnl)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	compileN(t, ts1, 6, 5, true)
	ts1.Close()
	s1.Close()

	clean, err := os.ReadFile(jrnl)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte around 2/3 in: some records live before it.
	mangled := append([]byte(nil), clean...)
	mangled[len(mangled)*2/3] ^= 0x20
	if err := os.WriteFile(jrnl, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	trusted, diag := replayJournal(jrnl)
	if !diag.Torn || len(trusted) == 0 || len(trusted) >= 6 {
		t.Fatalf("flip at 2/3 should leave a partial tail: %d records, %+v", len(trusted), diag)
	}

	s2, _, st, rerr := newJournaledServer(t, 2, snap, jrnl)
	if rerr == nil {
		t.Fatal("torn journal recovered without a diagnostic")
	}
	if !st.JournalTorn {
		t.Fatalf("stats %+v, want JournalTorn", st)
	}
	if st.Warm != len(trusted) {
		t.Fatalf("warm = %d, want the %d trusted records", st.Warm, len(trusted))
	}
	if ready, missing := s2.Health().Ready(); !ready {
		t.Fatalf("server not serving after torn journal: %v", missing)
	}
}

// TestDurableAckRequiresJournal pins the contract: without a journal the
// ack says durable=false; with one it says true only after the fsync.
func TestDurableAckRequiresJournal(t *testing.T) {
	_, ts := newTestServer(t, nil) // no journal
	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "a", "lang": "tinyc", "source": "int main(int n) { return n; }", "args": []int{1},
	})
	if status != http.StatusOK {
		t.Fatalf("exec: %d %v", status, out)
	}
	if out["durable"] != false {
		t.Fatalf("journal-less ack claims durability: %v", out)
	}
}

// TestGracefulDrain: BeginDrain flips readiness immediately and new
// requests get the typed shutdown rejection.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if ready, _ := s.Health().Ready(); !ready {
		t.Fatal("not ready before drain")
	}
	s.BeginDrain()
	if ready, _ := s.Health().Ready(); ready {
		t.Fatal("still ready after BeginDrain")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/readyz still 200 after BeginDrain")
	}
	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "a", "lang": "tinyc", "source": "int main(int n) { return n; }", "args": []int{1},
	})
	wantErrCode(t, status, out, http.StatusServiceUnavailable, CodeShuttingDown)
}
