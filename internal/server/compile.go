package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/tinyc"
	"repro/internal/vasm"
)

// Languages the server accepts.  Both front ends compile through the
// same VCODE pipeline onto the shard's machine: every function is
// emitted, verified and installed before the unit becomes visible.
const (
	LangVasm  = "vasm"
	LangTinyC = "tinyc"
)

// compileUnit runs the front end for lang over source on the shard's
// machine and assembles the resident unit.  It is called inside a
// single-flight compile (one caller per key), possibly on a batch-pool
// worker during warm restore.
func compileUnit(m *core.Machine, key, tenantName, lang, source, entry string) (*unit, error) {
	var fns map[string]*core.Func
	var order []string
	switch lang {
	case LangVasm:
		prog, err := vasm.Assemble(m, source)
		if err != nil {
			return nil, err
		}
		fns, order = prog.Funcs, prog.Order
	case LangTinyC:
		prog, err := tinyc.Parse(source)
		if err != nil {
			return nil, err
		}
		c := tinyc.NewCompiler(m)
		if err := c.Compile(prog); err != nil {
			return nil, err
		}
		fns = c.Funcs()
		if entry == "" {
			entry = "main"
		}
	default:
		return nil, apiErr(CodeBadRequest, "unknown language %q (want %q or %q)", lang, LangVasm, LangTinyC)
	}
	if entry == "" && len(order) > 0 {
		entry = order[0]
	}
	entryFn, ok := fns[entry]
	if !ok {
		names := make([]string, 0, len(fns))
		for name := range fns {
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, apiErr(CodeNotFound, "no entry function %q in program (have %v)", entry, names)
	}
	u := &unit{
		key:        key,
		tenantName: tenantName,
		lang:       lang,
		entry:      entry,
		source:     source,
		entryFn:    entryFn,
	}
	// Entry first: the cache holds fns[0]; eviction uninstalls the rest.
	u.fns = append(u.fns, entryFn)
	for _, f := range fns {
		if f != entryFn {
			u.fns = append(u.fns, f)
		}
	}
	for _, f := range u.fns {
		u.bytes += int64(f.SizeBytes())
	}
	return u, nil
}

// buildArgs marshals the JSON request arguments against the entry
// function's signature.  Integer parameters take JSON integers, float
// parameters JSON numbers; arity or domain mismatches are bad requests,
// not execution faults.
func buildArgs(params []core.Type, args []json.Number) ([]core.Value, error) {
	if len(args) != len(params) {
		return nil, apiErr(CodeBadRequest, "entry takes %d args, got %d", len(params), len(args))
	}
	out := make([]core.Value, len(params))
	for i, t := range params {
		if t.IsFloat() {
			f, err := args[i].Float64()
			if err != nil {
				return nil, apiErr(CodeBadRequest, "arg %d: %v", i, err)
			}
			if t == core.TypeF {
				out[i] = core.F(float32(f))
			} else {
				out[i] = core.D(f)
			}
			continue
		}
		n, err := args[i].Int64()
		if err != nil {
			// TypeUL/TypeP values above MaxInt64 still fit unsigned.
			if u, uerr := strconv.ParseUint(args[i].String(), 10, 64); uerr == nil && (t == core.TypeUL || t == core.TypeP) {
				if t == core.TypeUL {
					out[i] = core.UL(u)
				} else {
					out[i] = core.P(u)
				}
				continue
			}
			return nil, apiErr(CodeBadRequest, "arg %d: integer parameter %s: %v", i, t, err)
		}
		switch t {
		case core.TypeI:
			out[i] = core.I(int32(n))
		case core.TypeU:
			out[i] = core.U(uint32(n))
		case core.TypeL:
			out[i] = core.L(n)
		case core.TypeUL:
			out[i] = core.UL(uint64(n))
		case core.TypeP:
			out[i] = core.P(uint64(n))
		default:
			return nil, apiErr(CodeBadRequest, "unsupported parameter type %s at index %d", t, i)
		}
	}
	return out, nil
}

// renderResult converts a typed call result into its JSON form.
func renderResult(v core.Value) (any, string) {
	switch v.T {
	case core.TypeV:
		return nil, "void"
	case core.TypeF:
		return v.Float32(), "f"
	case core.TypeD:
		return v.Float64(), "d"
	case core.TypeU, core.TypeUL, core.TypeP:
		return v.Uint(), v.T.Letter()
	default:
		return v.Int(), v.T.Letter()
	}
}

// contentKey derives the cache key for a source submission: the content
// hash covers everything that determines the generated code — language,
// entry point and source text.
func contentKey(lang, entry, source string) string {
	return codecache.HashKey(fmt.Sprintf("%s\x00%s\x00%s", lang, entry, source))
}
