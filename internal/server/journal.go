package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// The crash journal (VCJRNL) makes acknowledged units durable between
// snapshots.  Each accepted compile appends one record; recovery loads
// the last full snapshot and replays the journal tail on top of it.
//
// On-disk layout: a header — the magic string "VCJRNL" plus one version
// byte — then a sequence of records, each framed as
//
//	[4-byte LE payload length][4-byte LE CRC32-IEEE of payload][payload]
//
// where the payload is a self-contained gob stream of one journalRecord.
// Replay stops at the first short, oversized, CRC-mismatching or
// undecodable record: everything before a torn tail is trusted,
// everything at and after it is discarded.  That is sound because a
// record is only acknowledged as durable after its batch fsynced.
//
// Appends funnel through one writer goroutine that group-commits: it
// drains the request channel up to a batch bound or the fsync interval,
// writes the batch with a single write+fsync, then releases every
// waiter.  A write or sync failure flips the journal into a degraded
// state — every current and future append fails fast (acks go out
// non-durable) — until the next checkpoint rotation hands the writer a
// fresh file.
const (
	journalMagic   = "VCJRNL"
	journalVersion = byte(1)

	journalOpAdd = byte(1)
	journalOpDel = byte(2)

	// maxJournalRecordBytes bounds one record at replay: a length field
	// larger than this is corruption, not a real record.
	maxJournalRecordBytes = 8 << 20
	// journalBatchMax bounds one group commit.
	journalBatchMax = 256
)

var (
	errJournalDegraded = errors.New("server: journal degraded (write or fsync failed; clears at next checkpoint)")
	errJournalClosed   = errors.New("server: journal closed")
)

// journalRecord is one logical mutation of the resident set.
type journalRecord struct {
	Op     byte
	Key    string    // set for del
	Entry  snapEntry // set for add
	Shards int       // shard count at write time (resharding diagnostics)
}

func journalHeader() []byte {
	return append([]byte(journalMagic), journalVersion)
}

// encodeRecord frames one record: length, CRC, gob payload.
func encodeRecord(rec journalRecord) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return nil, fmt.Errorf("server: encoding journal record: %w", err)
	}
	p := payload.Bytes()
	frame := make([]byte, 8+len(p))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
	copy(frame[8:], p)
	return frame, nil
}

// jreq is one writer-goroutine request: an append frame (done non-nil
// when the caller wants to block until its fsync), or a rotation.
type jreq struct {
	frame []byte
	done  chan error
	rot   chan error
}

type journal struct {
	path       string
	fsyncEvery time.Duration
	inj        *faultinject.Injector

	reqs chan jreq
	quit chan struct{}
	dead chan struct{} // closed when the writer goroutine exits

	closeOnce sync.Once

	// failed marks the degraded state: the current journal generation
	// took a write/sync error, so nothing after the failure point can be
	// trusted durable.  Cleared only by rotation (fresh file).
	failed  atomic.Bool
	rotated atomic.Bool // writing to path+".rot", rename pending
	pending atomic.Int64

	// lsn numbers accepted appends across the journal's lifetime (1 is
	// the first record).  It is a correlation ID for flight-recorder
	// events and diagnostic bundles — monotonic per process, not a disk
	// offset, and not reset by rotation.
	lsn atomic.Uint64

	f *os.File // owned by the writer goroutine once run starts

	appends    *telemetry.Counter
	appendErrs *telemetry.Counter
	tombstones *telemetry.Counter
	fsyncs     *telemetry.Counter
	rotations  *telemetry.Counter
	bytesOut   *telemetry.Counter
}

// openJournal truncates path to a fresh journal (header only, synced)
// and starts the writer goroutine.  Callers must have folded any
// previous journal contents into a snapshot first — open discards them.
func openJournal(path string, fsyncEvery time.Duration, inj *faultinject.Injector, reg *telemetry.Registry) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(journalHeader()); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	j := &journal{
		path:       path,
		fsyncEvery: fsyncEvery,
		inj:        inj,
		reqs:       make(chan jreq, 1024),
		quit:       make(chan struct{}),
		dead:       make(chan struct{}),
		f:          f,
		appends:    reg.Counter("server.journal.appends"),
		appendErrs: reg.Counter("server.journal.append_errors"),
		tombstones: reg.Counter("server.journal.tombstones"),
		fsyncs:     reg.Counter("server.journal.fsyncs"),
		rotations:  reg.Counter("server.journal.rotations"),
		bytesOut:   reg.Counter("server.journal.bytes"),
	}
	reg.GaugeFunc("server.journal.pending", func() float64 {
		return float64(j.pending.Load())
	})
	go j.run()
	return j, nil
}

func (j *journal) rotPath() string { return j.path + ".rot" }

// append journals one record and returns its LSN.  With wait set it
// blocks until the record has been written and fsynced (group commit) —
// a nil error is the durability guarantee.  Without wait the record
// rides the next batch on a best-effort basis (eviction tombstones).
func (j *journal) append(rec journalRecord, wait bool) (uint64, error) {
	frame, err := encodeRecord(rec)
	if err != nil {
		return 0, err
	}
	if j.failed.Load() {
		j.appendErrs.Inc()
		return 0, errJournalDegraded
	}
	lsn := j.lsn.Add(1)
	r := jreq{frame: frame}
	if wait {
		r.done = make(chan error, 1)
	}
	j.pending.Add(1)
	select {
	case j.reqs <- r:
	case <-j.dead:
		j.pending.Add(-1)
		return lsn, errJournalClosed
	}
	if !wait {
		return lsn, nil
	}
	select {
	case err := <-r.done:
		return lsn, err
	case <-j.dead:
		return lsn, errJournalClosed
	}
}

// rotate asks the writer to switch to a fresh path+".rot" generation
// (syncing and closing the old file first) and waits for it.  A second
// rotate while a rename is still pending is a sync-only no-op, so a
// failed checkpoint cannot orphan unsnapshotted records.
func (j *journal) rotate() error {
	ch := make(chan error, 1)
	select {
	case j.reqs <- jreq{rot: ch}:
	case <-j.dead:
		return errJournalClosed
	}
	select {
	case err := <-ch:
		return err
	case <-j.dead:
		return errJournalClosed
	}
}

// finishRotation completes a checkpoint: the new snapshot is on disk, so
// the rotation file becomes the journal (the writer's fd follows the
// inode across the rename).
func (j *journal) finishRotation() error {
	if !j.rotated.Load() {
		return nil
	}
	if err := os.Rename(j.rotPath(), j.path); err != nil {
		return err
	}
	j.rotated.Store(false)
	return nil
}

// close stops the writer, flushing and syncing anything queued.
func (j *journal) close() {
	j.closeOnce.Do(func() { close(j.quit) })
	<-j.dead
}

// run is the writer goroutine: group-commit batches off the request
// channel, one write+fsync per batch.
func (j *journal) run() {
	defer close(j.dead)
	var batch []jreq
	for {
		select {
		case r := <-j.reqs:
			if r.rot != nil {
				r.rot <- j.doRotate()
				continue
			}
			batch = append(batch[:0], r)
			timer := time.NewTimer(j.fsyncEvery)
			var rot chan error
		gather:
			for len(batch) < journalBatchMax {
				select {
				case r2 := <-j.reqs:
					if r2.rot != nil {
						rot = r2.rot
						break gather
					}
					batch = append(batch, r2)
				case <-timer.C:
					break gather
				case <-j.quit:
					timer.Stop()
					j.flush(batch)
					j.drainAndExit()
					return
				}
			}
			timer.Stop()
			j.flush(batch)
			batch = batch[:0]
			if rot != nil {
				rot <- j.doRotate()
			}
		case <-j.quit:
			j.drainAndExit()
			return
		}
	}
}

// drainAndExit serves whatever is still queued, then syncs and closes.
func (j *journal) drainAndExit() {
	for {
		select {
		case r := <-j.reqs:
			if r.rot != nil {
				r.rot <- errJournalClosed
				continue
			}
			j.flush([]jreq{r})
		default:
			if j.f != nil {
				_ = j.f.Sync()
				_ = j.f.Close()
			}
			return
		}
	}
}

// flush writes one batch with a single write and a single fsync, then
// releases every waiter.  Any failure degrades the journal: all waiters
// in the batch (and every later append until rotation) get an error,
// because nothing past the failure point is guaranteed on disk.
func (j *journal) flush(batch []jreq) {
	if len(batch) == 0 {
		return
	}
	defer j.pending.Add(-int64(len(batch)))
	fail := func(err error) {
		j.failed.Store(true)
		j.appendErrs.Add(uint64(len(batch)))
		for _, r := range batch {
			if r.done != nil {
				r.done <- err
			}
		}
	}
	if j.failed.Load() {
		fail(errJournalDegraded)
		return
	}
	var buf []byte
	for _, r := range batch {
		buf = append(buf, r.frame...)
	}
	if j.inj != nil {
		if err := j.inj.JournalWriteFault(); err != nil {
			fail(err)
			return
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		fail(err)
		return
	}
	if j.inj != nil {
		if err := j.inj.JournalSyncFault(); err != nil {
			fail(err)
			return
		}
	}
	if err := j.f.Sync(); err != nil {
		fail(err)
		return
	}
	j.appends.Add(uint64(len(batch)))
	j.fsyncs.Inc()
	j.bytesOut.Add(uint64(len(buf)))
	for _, r := range batch {
		if r.done != nil {
			r.done <- nil
		}
	}
}

// doRotate switches the writer to a fresh path+".rot" generation and
// clears the degraded state.  Runs on the writer goroutine.
func (j *journal) doRotate() error {
	if j.rotated.Load() {
		// The previous rotation's snapshot+rename never completed; keep
		// appending to the same generation rather than truncating
		// records no snapshot covers yet.
		if !j.failed.Load() {
			return j.f.Sync()
		}
		return errJournalDegraded
	}
	if j.f != nil {
		_ = j.f.Sync()
		_ = j.f.Close()
		j.f = nil
	}
	f, err := os.OpenFile(j.rotPath(), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		j.failed.Store(true)
		return err
	}
	if _, err := f.Write(journalHeader()); err != nil {
		f.Close()
		j.failed.Store(true)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.failed.Store(true)
		return err
	}
	j.f = f
	j.rotated.Store(true)
	j.failed.Store(false)
	j.rotations.Inc()
	return nil
}

// journalDiag describes what replay found.
type journalDiag struct {
	Missing   bool // no file
	HeaderBad bool // existing file without a valid header
	Torn      bool // stopped early at a short/corrupt record
	Records   int  // good records returned
}

// replayJournal reads every trustworthy record from path, stopping at
// the first torn or corrupt one.  It never fails hard: corruption just
// truncates the replay.
func replayJournal(path string) ([]journalRecord, journalDiag) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, journalDiag{Missing: true}
	}
	hdr := journalHeader()
	if len(raw) < len(hdr) || !bytes.Equal(raw[:len(hdr)], hdr) {
		return nil, journalDiag{HeaderBad: len(raw) > 0}
	}
	var (
		recs []journalRecord
		diag journalDiag
	)
	off := len(hdr)
	for off < len(raw) {
		if len(raw)-off < 8 {
			diag.Torn = true
			break
		}
		n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if n <= 0 || n > maxJournalRecordBytes || len(raw)-off-8 < n {
			diag.Torn = true
			break
		}
		payload := raw[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			diag.Torn = true
			break
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			diag.Torn = true
			break
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	diag.Records = len(recs)
	return recs, diag
}
