package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(1, 2)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d within burst failed", i)
		}
	}
	ok, wait := b.take()
	if ok {
		t.Fatal("third take within the same instant passed a burst-2 bucket")
	}
	if wait <= 0 || wait > 2*time.Second {
		t.Fatalf("wait hint %v, want ~1s", wait)
	}
	// Tokens accrue with time.
	b.mu.Lock()
	b.last = b.last.Add(-time.Second)
	b.mu.Unlock()
	if ok, _ := b.take(); !ok {
		t.Fatal("token did not accrue after a simulated second")
	}
}

func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.DefaultQuota = Quota{RatePerSec: 0.001, Burst: 2}
	})
	body := map[string]any{"tenant": "bob", "lang": "vasm", "source": factVasm, "args": []int{4}}
	for i := 0; i < 2; i++ {
		status, out := post(t, ts, "/v1/exec", body)
		if status != http.StatusOK {
			t.Fatalf("exec %d within burst: %d %v", i, status, out)
		}
	}
	status, out := post(t, ts, "/v1/exec", body)
	wantErrCode(t, status, out, http.StatusTooManyRequests, CodeRateLimited)
	errObj := out["error"].(map[string]any)
	if asInt(t, errObj["retry_after_ms"]) < 1 {
		t.Fatalf("429 without a retry hint: %v", out)
	}
}

func TestRateLimitRetryAfterHeader(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.DefaultQuota = Quota{RatePerSec: 0.001, Burst: 1}
	})
	post(t, ts, "/v1/exec", map[string]any{"tenant": "bob", "lang": "vasm", "source": factVasm, "args": []int{4}})
	raw, err := json.Marshal(map[string]any{"tenant": "bob", "lang": "vasm", "source": factVasm, "args": []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/exec", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if s.StatsView().RateLimited == 0 {
		t.Fatal("rate_limited counter not exported")
	}
}

func TestBreakerSet(t *testing.T) {
	bs := newBreakerSet(3, 50*time.Millisecond)
	boom := errors.New("compile exploded")
	for i := 0; i < 2; i++ {
		bs.record("k", boom)
		if _, open := bs.allow("k"); open {
			t.Fatalf("open after only %d failures", i+1)
		}
	}
	bs.record("k", boom)
	wait, open := bs.allow("k")
	if !open || wait <= 0 {
		t.Fatalf("not open after 3 consecutive failures (wait %v)", wait)
	}
	// Success closes a (different, still counting) key entirely.
	bs.record("j", boom)
	bs.record("j", nil)
	bs.record("j", boom)
	bs.record("j", boom)
	if _, open := bs.allow("j"); open {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	// Half-open: once the cooldown lapses one more failure reopens
	// immediately.
	time.Sleep(60 * time.Millisecond)
	if _, open := bs.allow("k"); open {
		t.Fatal("circuit still open after the cooldown")
	}
	bs.record("k", boom)
	if _, open := bs.allow("k"); !open {
		t.Fatal("half-open probe failure did not reopen the circuit")
	}
	// Transient errors say nothing about the key.
	transient := fmt.Errorf("flight aborted: %w", context.Canceled)
	for i := 0; i < 5; i++ {
		bs.record("t", transient)
	}
	if _, open := bs.allow("t"); open {
		t.Fatal("transient errors tripped the breaker")
	}
}

func TestServerBreakerOpens(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Injector = faultinject.New(faultinject.Config{Seed: 7, CompileErrorRate: 1})
		c.BreakerCooldown = time.Hour
	})
	body := map[string]any{"tenant": "a", "lang": "vasm", "source": factVasm, "entry": "fact", "key": "doomed", "args": []int{4}}
	// Three consecutive compile failures trip the breaker.  FailureBackoff
	// caches each failure briefly, so pace the attempts past its TTL —
	// only settled compile flights feed the breaker.
	sawFailure := 0
	for i := 0; i < 10 && sawFailure < 3; i++ {
		status, out := post(t, ts, "/v1/exec", body)
		if status == http.StatusInternalServerError || status == http.StatusBadRequest {
			sawFailure++
			_ = out
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sawFailure < 3 {
		t.Fatalf("only %d compile failures induced; cannot trip breaker", sawFailure)
	}
	// The circuit is now open with a one-hour cooldown: the next request
	// fast-fails as circuit_open without touching the compiler.
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, out := post(t, ts, "/v1/exec", body)
		if status == http.StatusServiceUnavailable {
			wantErrCode(t, status, out, http.StatusServiceUnavailable, CodeCircuitOpen)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: last %d %v", status, out)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s.StatsView().BreakerOpen == 0 {
		t.Fatal("breaker_open counter not exported")
	}
}

func TestShedWatermarks(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.ShedLowWatermark = 10
		c.ShedHighWatermark = 20
	})
	// Stub the queue-depth signal so the watermarks are deterministic.
	depth := int64(0)
	s.queueDepth = func() int64 { return depth }

	newBody := func(src string, prio int) map[string]any {
		return map[string]any{"tenant": "a", "lang": "vasm", "source": src, "args": []int{4}, "priority": prio}
	}

	// Below the low watermark everything compiles.
	status, out := post(t, ts, "/v1/exec", newBody(factVasm, 0))
	if status != http.StatusOK {
		t.Fatalf("idle exec: %d %v", status, out)
	}
	key := out["key"].(string)

	// Past the low watermark, priority<4 sheds and priority>=4 serves.
	depth = 15
	status, out = post(t, ts, "/v1/exec", newBody(factVasm+"\n; v2", 3))
	wantErrCode(t, status, out, http.StatusServiceUnavailable, CodeOverloaded)
	if status, out = post(t, ts, "/v1/exec", newBody(factVasm+"\n; v3", 5)); status != http.StatusOK {
		t.Fatalf("priority-5 exec shed at the low watermark: %d %v", status, out)
	}

	// Past the high watermark, even default priority sheds; 9 survives.
	depth = 25
	status, out = post(t, ts, "/v1/exec", newBody(factVasm+"\n; v4", 5))
	wantErrCode(t, status, out, http.StatusServiceUnavailable, CodeOverloaded)
	if status, out = post(t, ts, "/v1/exec", newBody(factVasm+"\n; v5", 9)); status != http.StatusOK {
		t.Fatalf("priority-9 exec shed at the high watermark: %d %v", status, out)
	}

	// Cache hits always serve, whatever the depth.
	if status, out = post(t, ts, "/v1/exec", map[string]any{"tenant": "a", "key": key, "args": []int{4}, "priority": 0}); status != http.StatusOK {
		t.Fatalf("cache hit shed under load: %d %v", status, out)
	}
	if s.StatsView().Shed != 2 {
		t.Fatalf("shed counter = %d, want 2", s.StatsView().Shed)
	}
}

func TestJitterMS(t *testing.T) {
	if jitterMS(0) != 0 {
		t.Fatal("jitter invented a retry hint from zero")
	}
	varied := false
	for i := 0; i < 100; i++ {
		j := jitterMS(1000)
		if j < 800 || j > 1200 {
			t.Fatalf("jitterMS(1000) = %d outside ±20%%", j)
		}
		if j != 1000 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never varied across 100 draws")
	}
}

func TestClampPriority(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-5, 0}, {0, 0}, {5, 5}, {9, 9}, {42, 9}} {
		if got := clampPriority(tc.in); got != tc.want {
			t.Fatalf("clampPriority(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
