package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// request is the JSON body shared by /v1/exec and /v1/compile.  A body
// may carry source (compile-if-needed) or just a key (must be
// resident); content hashes make retries and cross-client sharing
// idempotent.
type request struct {
	// Tenant names the quota row; empty means "default".
	Tenant string `json:"tenant"`
	// Lang is "vasm" or "tinyc"; required with Source.
	Lang string `json:"lang"`
	// Source is the program text.  Optional when Key names a resident
	// program.
	Source string `json:"source"`
	// Entry selects the function to run (default: tinyc "main", vasm
	// first function).
	Entry string `json:"entry"`
	// Key is the content hash from an earlier compile; send it alone to
	// run without re-uploading source.
	Key string `json:"key"`
	// Args are the call arguments, matched against the entry signature.
	Args []json.Number `json:"args"`
	// Fuel lowers (never raises) the tenant's per-call step budget.
	Fuel uint64 `json:"fuel"`
	// RequestID is echoed back and stamped onto trace spans; minted
	// when absent.
	RequestID string `json:"request_id"`
	// Priority is this request's shed priority, 0–9 (9 sheds last);
	// omitted inherits the tenant's default.
	Priority *int `json:"priority"`
}

// prio resolves the request's effective shed priority.
func (req *request) prio(t *tenant) int {
	if req.Priority != nil {
		return clampPriority(*req.Priority)
	}
	return t.priority
}

// execResponse is the /v1/exec success body.
type execResponse struct {
	RequestID  string `json:"request_id"`
	Key        string `json:"key"`
	Shard      int    `json:"shard"`
	Cached     bool   `json:"cached"`
	Durable    bool   `json:"durable"`
	Result     any    `json:"result"`
	ResultType string `json:"result_type"`
	Cycles     uint64 `json:"cycles"`
	Insns      uint64 `json:"insns"`
	WallNS     int64  `json:"wall_ns"`
}

// compileResponse is the /v1/compile success body.
type compileResponse struct {
	RequestID string `json:"request_id"`
	Key       string `json:"key"`
	Shard     int    `json:"shard"`
	Cached    bool   `json:"cached"`
	Durable   bool   `json:"durable"`
	Entry     string `json:"entry"`
	CodeBytes int64  `json:"code_bytes"`
	Functions int    `json:"functions"`
	Params    int    `json:"params"`
}

// errorResponse is every failure body: {"request_id": ..., "error":
// {"code": ..., "message": ..., "retry_after_ms": ...}}.
type errorResponse struct {
	RequestID string    `json:"request_id"`
	Error     *APIError `json:"error"`
}

const maxBodyBytes = 1 << 20 // source programs are small; cap abuse

// Handler builds the server's mux: the v1 API plus the observability
// surface (telemetry /metrics, lifecycle /trace, health /healthz
// /readyz) on the same listener.
func (s *Server) Handler() *http.ServeMux {
	mux := telemetry.NewMux(s.cfg.Registry)
	trace.RegisterHTTP(mux, s.cfg.Registry)
	telemetry.RegisterHealth(mux, s.health)
	mux.HandleFunc("/v1/exec", s.handleExec)
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/debug/bundle", s.handleBundle)
	return mux
}

// decode parses and bounds the request body.
func decode(r *http.Request) (*request, *APIError) {
	if r.Method != http.MethodPost {
		return nil, apiErr(CodeBadRequest, "method %s not allowed (POST)", r.Method)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, apiErr(CodeBadRequest, "reading body: %v", err)
	}
	if len(body) > maxBodyBytes {
		return nil, apiErr(CodeBadRequest, "body over %d bytes", maxBodyBytes)
	}
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, apiErr(CodeBadRequest, "parsing JSON: %v", err)
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	return &req, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, reqID string, ae *APIError) {
	if ae.RetryAfterMS > 0 {
		// Jitter the hint ±20% (on a copy — the original may be a shared
		// template) so synchronized clients spread their retries.
		j := *ae
		j.RetryAfterMS = jitterMS(ae.RetryAfterMS)
		ae = &j
		secs := (ae.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, ae.Status(), errorResponse{RequestID: reqID, Error: ae})
}

// handleExec is compile-if-needed plus one sandboxed call.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, ae := decode(r)
	if ae != nil {
		writeErr(w, "", ae)
		return
	}
	reqID := s.requestID(req.RequestID)
	sp := trace.Begin(trace.KindRequest, s.cfg.Backend, req.Tenant+"/"+reqID)
	fr := flightrec.Begin(reqID, req.Tenant)

	t, ae := s.tenants.get(req.Tenant)
	if ae != nil {
		s.requests.Inc()
		s.errorsAll.Inc()
		sp.End(0, trace.Attrs{Verdict: string(ae.Code)})
		fr.Finish(string(ae.Code), ae.Message, 0)
		writeErr(w, reqID, ae)
		return
	}

	if ae := t.admitRate(); ae != nil {
		s.rateLimited.Inc()
		t.rejected.Inc()
		fr.Event(flightrec.StageAdmit, flightrec.Event{
			Verdict: string(ae.Code), Shard: -1, Priority: int8(req.prio(t))})
		s.finishRequest(t, reqID, req.Key, -1, start, nil, sp, fr, ae)
		writeErr(w, reqID, ae)
		return
	}

	cr, ae := s.compile(r.Context(), fr, t, req.Lang, req.Source, req.Entry, req.Key, req.prio(t))
	if ae != nil {
		s.finishRequest(t, reqID, req.Key, -1, start, nil, sp, fr, ae)
		writeErr(w, reqID, ae)
		return
	}
	args, err := buildArgs(cr.fn.Params, req.Args)
	if err != nil {
		ae = classify(err)
		s.finishRequest(t, reqID, cr.key, cr.shard.id, start, cr.fn, sp, fr, ae)
		writeErr(w, reqID, ae)
		return
	}
	er, ae := s.exec(r.Context(), fr, t, cr.shard, cr.fn, args, req.Fuel)
	if ae != nil {
		s.finishRequest(t, reqID, cr.key, cr.shard.id, start, cr.fn, sp, fr, ae)
		writeErr(w, reqID, ae)
		return
	}
	res, typ := renderResult(er.value)
	s.finishRequest(t, reqID, cr.key, cr.shard.id, start, cr.fn, sp, fr, nil)
	writeJSON(w, http.StatusOK, execResponse{
		RequestID:  reqID,
		Key:        cr.key,
		Shard:      cr.shard.id,
		Cached:     cr.cached,
		Durable:    cr.durable,
		Result:     res,
		ResultType: typ,
		Cycles:     er.stats.Cycles,
		Insns:      er.stats.Insns,
		WallNS:     er.stats.Wall.Nanoseconds(),
	})
}

// handleCompile is compile-and-cache: the program becomes resident (and
// callable by key) without running it.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, ae := decode(r)
	if ae != nil {
		writeErr(w, "", ae)
		return
	}
	reqID := s.requestID(req.RequestID)
	sp := trace.Begin(trace.KindRequest, s.cfg.Backend, req.Tenant+"/"+reqID)
	fr := flightrec.Begin(reqID, req.Tenant)

	t, ae := s.tenants.get(req.Tenant)
	if ae != nil {
		s.requests.Inc()
		s.errorsAll.Inc()
		sp.End(0, trace.Attrs{Verdict: string(ae.Code)})
		fr.Finish(string(ae.Code), ae.Message, 0)
		writeErr(w, reqID, ae)
		return
	}
	if ae := t.admitRate(); ae != nil {
		s.rateLimited.Inc()
		t.rejected.Inc()
		fr.Event(flightrec.StageAdmit, flightrec.Event{
			Verdict: string(ae.Code), Shard: -1, Priority: int8(req.prio(t))})
		s.finishRequest(t, reqID, req.Key, -1, start, nil, sp, fr, ae)
		writeErr(w, reqID, ae)
		return
	}
	cr, ae := s.compile(r.Context(), fr, t, req.Lang, req.Source, req.Entry, req.Key, req.prio(t))
	if ae != nil {
		s.finishRequest(t, reqID, req.Key, -1, start, nil, sp, fr, ae)
		writeErr(w, reqID, ae)
		return
	}
	resp := compileResponse{
		RequestID: reqID,
		Key:       cr.key,
		Shard:     cr.shard.id,
		Cached:    cr.cached,
		Durable:   cr.durable,
		Entry:     cr.fn.Name,
		Params:    len(cr.fn.Params),
	}
	if u := cr.shard.unit(cr.key); u != nil {
		resp.CodeBytes = u.bytes
		resp.Functions = len(u.fns)
	} else {
		resp.CodeBytes = int64(cr.fn.SizeBytes())
		resp.Functions = 1
	}
	s.finishRequest(t, reqID, cr.key, cr.shard.id, start, cr.fn, sp, fr, nil)
	writeJSON(w, http.StatusOK, resp)
}

// handleStats serves the service-wide statistics document.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsView())
}
