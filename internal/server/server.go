// Package server is the codegen-as-a-service layer: an HTTP front end
// over the whole library stack — vasm/tinyc front ends, the VCODE
// assembler and verifier, the sharded code cache, the batch compile
// pool, sandboxed calls, telemetry and lifecycle tracing — serving
// compile-and-execute (and compile-and-cache) to many tenants at once.
//
// Requests are keyed by content hash.  Each key maps onto one of N
// shards, each a full core.Machine arena with its own codecache and
// batch pool, so resident code scales horizontally past one arena, and
// calls (one simulated CPU per shard) run N-wide.  Multi-tenancy is
// quota-based: per-tenant fuel per call, resident code bytes, and
// compile concurrency, with admission control pushing back (429 +
// Retry-After) when a shard's compile queue is past its bound.  Every
// failure is a typed JSON error mapped one-to-one from the library error
// model (see errors.go).
//
// A warm-cache snapshot serializes the verified, resident programs to
// disk at shutdown; on boot the snapshot restores through the batch
// pool's warmup path and the /readyz endpoint turns ready only once the
// restore flights drain — zero-cold-start restarts.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flightrec"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config sizes a Server.
type Config struct {
	// Backend is the target port every shard simulates ("mips",
	// "sparc", "alpha"; default "mips").
	Backend string
	// Shards is the number of machine arenas (default 4).
	Shards int
	// WorkersPerShard bounds each shard's compile pool (default 2).
	WorkersPerShard int
	// MaxEntriesPerShard / MaxCodeBytesPerShard bound each shard's
	// cache (defaults 512 entries, 1 MiB).
	MaxEntriesPerShard   int
	MaxCodeBytesPerShard int64
	// QueueBound is the admission bound on a shard's compile queue
	// depth; past it, compile-requiring requests get queue_full
	// (default 64).
	QueueBound int64
	// CallTimeout is the wall deadline around one sandboxed call,
	// including its wait for the shard CPU (default 2s).
	CallTimeout time.Duration
	// Tenants declares the known tenants' quotas.  DefaultQuota fills
	// zero fields and governs unknown tenants when AllowUnknownTenants
	// is set; otherwise unknown tenants are rejected.
	Tenants             map[string]Quota
	DefaultQuota        Quota
	AllowUnknownTenants bool
	// FailureBackoff negative-caches failed compiles per key (0 = every
	// request retries).
	FailureBackoff time.Duration
	// FsyncInterval is the journal writer's group-commit window: appends
	// gather up to this long (or a batch bound) before one write+fsync
	// releases them all (default 2ms).
	FsyncInterval time.Duration
	// CheckpointInterval, when positive, folds journal + snapshot into a
	// fresh snapshot generation on this period (started by Recover when
	// a journal path is given).
	CheckpointInterval time.Duration
	// BreakerThreshold opens a key's compile circuit after this many
	// consecutive failures (default 3; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown holds an open circuit before the half-open probe
	// (default 5s).
	BreakerCooldown time.Duration
	// ShedLowWatermark / ShedHighWatermark are total batch-queue depths
	// past which compile-requiring traffic below priority 4 / 8 is shed
	// (defaults: half and 90% of Shards×QueueBound).
	ShedLowWatermark  int64
	ShedHighWatermark int64
	// Registry receives the server's instruments (default
	// telemetry.Default).
	Registry *telemetry.Registry
	// SLO configures the watchdog's objectives (zero fields take the
	// slo package defaults); SLODisable skips the watchdog entirely.
	SLO        slo.Objectives
	SLODisable bool
	// Logger receives the server's structured request log (default
	// slog.Default()).  Per-request lines log at Debug so steady-state
	// traffic stays quiet unless the handler is raised to that level.
	Logger *slog.Logger
	// Injector, when set, seeds deterministic faults into every shard:
	// memory faults on the simulated machines and compile
	// errors/panics around the front ends — the soak configuration.
	Injector *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = "mips"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.MaxEntriesPerShard <= 0 {
		c.MaxEntriesPerShard = 512
	}
	if c.MaxCodeBytesPerShard <= 0 {
		c.MaxCodeBytesPerShard = 1 << 20
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 64
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.DefaultQuota.FuelPerCall == 0 {
		c.DefaultQuota.FuelPerCall = 1 << 20
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 2 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	capacity := int64(c.Shards) * c.QueueBound
	if c.ShedLowWatermark <= 0 {
		c.ShedLowWatermark = capacity / 2
	}
	if c.ShedHighWatermark <= 0 {
		c.ShedHighWatermark = capacity * 9 / 10
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Server is the multi-tenant compile-and-execute service.
type Server struct {
	cfg     Config
	shards  []*shard
	tenants *tenantSet
	health  *telemetry.Health
	started time.Time
	log     *slog.Logger

	// SLO watchdog: nil when disabled; sloGlobal is the service-wide
	// tracker every finished request observes into.
	slo       *slo.Watchdog
	sloGlobal *slo.Tracker

	reqSeq  atomic.Uint64
	closing atomic.Bool

	// Crash durability: the steady-state journal and the paths the
	// periodic checkpointer folds into (set by Recover).
	journal  *journal
	snapPath string
	jrnlPath string
	ckptMu   sync.Mutex
	ckptQuit chan struct{}
	ckptWG   sync.WaitGroup

	// Overload protection.
	breakers   *breakerSet
	queueDepth func() int64 // summed batch queue depth (tests may stub)

	recoveryMS atomic.Int64

	requests  *telemetry.Counter
	errorsAll *telemetry.Counter
	callNS    *telemetry.Histogram
	requestNS *telemetry.Histogram

	rateLimited            *telemetry.Counter
	shedded                *telemetry.Counter
	breakerFast            *telemetry.Counter
	checkpoints            *telemetry.Counter
	ckptErrors             *telemetry.Counter
	jrnlReplayed, jrnlTorn *telemetry.Counter

	snapSaved, snapRestored   *telemetry.Counter
	snapExact, snapRecompiled *telemetry.Counter
	snapErrors, snapIncompat  *telemetry.Counter
	snapResharded             *telemetry.Counter
}

// New builds the server: N shard arenas on the configured backend, the
// tenant set, and the health state with the two startup conditions
// (snapshot_restored, warmup_drained) registered unmet — call Restore
// (with "" when there is nothing to load) to flip them.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:            cfg,
		tenants:        newTenantSet(reg, cfg.Tenants, cfg.DefaultQuota, cfg.AllowUnknownTenants),
		health:         &telemetry.Health{},
		started:        time.Now(),
		requests:       reg.Counter("server.requests"),
		errorsAll:      reg.Counter("server.errors"),
		callNS:         reg.Histogram("server.call_ns", nil),
		requestNS:      reg.Histogram("server.request_ns", nil),
		rateLimited:    reg.Counter("server.rate_limited"),
		shedded:        reg.Counter("server.shed"),
		breakerFast:    reg.Counter("server.breaker_open"),
		checkpoints:    reg.Counter("server.checkpoints"),
		ckptErrors:     reg.Counter("server.checkpoint_errors"),
		jrnlReplayed:   reg.Counter("server.journal.replayed"),
		jrnlTorn:       reg.Counter("server.journal.torn"),
		snapSaved:      reg.Counter("server.snapshot.saved"),
		snapRestored:   reg.Counter("server.snapshot.restored"),
		snapExact:      reg.Counter("server.snapshot.exact"),
		snapRecompiled: reg.Counter("server.snapshot.recompiled"),
		snapErrors:     reg.Counter("server.snapshot.errors"),
		snapIncompat:   reg.Counter("server.snapshot.incompatible"),
		snapResharded:  reg.Counter("server.snapshot.resharded"),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.Default()
	}
	s.queueDepth = s.totalQueueDepth
	if cfg.BreakerThreshold > 0 {
		s.breakers = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if !cfg.SLODisable {
		s.slo = slo.New(cfg.SLO, reg, s.health)
		s.sloGlobal = s.slo.Global()
		s.tenants.setWatchdog(s.slo)
		s.slo.Start()
	}
	reg.GaugeFunc("server.recovery_ms", func() float64 {
		return float64(s.recoveryMS.Load())
	})
	s.health.Expect("snapshot_restored")
	s.health.Expect("warmup_drained")
	var onResult func(key string, err error)
	if s.breakers != nil {
		onResult = s.breakers.record
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, cfg.Backend, cfg.WorkersPerShard, cfg.MaxEntriesPerShard, cfg.MaxCodeBytesPerShard, cfg.FailureBackoff, reg, onResult)
		if err != nil {
			return nil, err
		}
		sh.evicted = s.unitEvicted
		if cfg.Injector != nil {
			sh.machine.Mem().SetFaultHook(cfg.Injector)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Health exposes the readiness state (the HTTP mux mounts it at
// /healthz and /readyz).
func (s *Server) Health() *telemetry.Health { return s.health }

// Shards reports the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// unitEvicted is the shard eviction callback: return the program's
// bytes to its tenant's residency budget and journal a tombstone (best
// effort — a lost tombstone just re-warms an evicted key on recovery).
func (s *Server) unitEvicted(u *unit) {
	if t, apiE := s.tenants.get(u.tenantName); apiE == nil {
		t.resident.Add(-u.bytes)
	}
	if s.journal != nil {
		s.journal.tombstones.Inc()
		_, _ = s.journal.append(journalRecord{Op: journalOpDel, Key: u.key, Shards: len(s.shards)}, false)
	}
}

// BeginDrain stops admitting new work — requests get shutting_down and
// /readyz flips not-ready immediately — while in-flight calls keep
// running.  The graceful-shutdown sequence is BeginDrain, drain the HTTP
// server with its deadline, Checkpoint or SaveSnapshot, Close.
func (s *Server) BeginDrain() {
	s.closing.Store(true)
	s.health.Set("accepting_traffic", false)
}

// Close releases every shard's pool workers and stops the checkpointer
// and journal.  In-flight batches finish (and their journal appends
// settle) before the journal closes.
func (s *Server) Close() {
	s.closing.Store(true)
	s.stopCheckpoints()
	if s.slo != nil {
		s.slo.Stop()
	}
	for _, sh := range s.shards {
		sh.close()
	}
	if s.journal != nil {
		s.journal.close()
	}
}

// --- the two core operations ---

// compileResult is what the compile path hands the HTTP layer.
type compileResult struct {
	key     string
	shard   *shard
	fn      *core.Func
	cached  bool // served from cache without compiling here
	durable bool // journal record fsynced (or restored from disk)
}

// compile resolves (lang, source, entry) — or a bare key — to a
// resident entry function, compiling through the shard's batch pool
// under admission control and quotas on a miss.  Concurrent requests
// for one key coalesce into a single flight regardless of tenant.
// prio is the request's shed priority (0–9).  fr (nil-safe) records
// the admission, cache and journal decisions on the request's flight
// chain.
func (s *Server) compile(ctx context.Context, fr *flightrec.Request, t *tenant, lang, source, entry, key string, prio int) (compileResult, *APIError) {
	reject := func(apiE *APIError) (compileResult, *APIError) {
		fr.Event(flightrec.StageAdmit, flightrec.Event{
			Verdict: string(apiE.Code), Key: key, Shard: -1, Priority: int8(prio)})
		return compileResult{}, apiE
	}
	if s.closing.Load() {
		return reject(apiErr(CodeShuttingDown, "server is shutting down"))
	}
	if key == "" {
		if source == "" {
			return reject(apiErr(CodeBadRequest, "need source (or a resident key)"))
		}
		key = contentKey(lang, entry, source)
	}
	sh := s.shards[shardOf(key, len(s.shards))]
	if fn, ok := sh.cache.Get(key); ok {
		// Hit path: no admission gates ran, so the chain goes straight
		// to the cache verdict.
		fr.Event(flightrec.StageCache, flightrec.Event{
			Verdict: "hit", Key: key, Shard: int32(sh.id), Priority: int8(prio)})
		return compileResult{key: key, shard: sh, fn: fn, cached: true, durable: sh.unitDurable(key)}, nil
	}
	if source == "" {
		fr.Event(flightrec.StageCache, flightrec.Event{
			Verdict: string(CodeNotFound), Key: key, Shard: int32(sh.id), Priority: int8(prio)})
		return compileResult{}, apiErr(CodeNotFound, "key %s is not resident and no source was given", key)
	}

	// Overload protection on the compile path: keys whose compiles keep
	// failing fast-fail on the open circuit, then the global shed
	// watermarks drop low-priority traffic while queues are deep.  Both
	// run before the per-shard queue bound so a rejected request never
	// touches the pool.
	if s.breakers != nil {
		if wait, open := s.breakers.allow(key); open {
			t.rejected.Inc()
			s.breakerFast.Inc()
			ms := wait.Milliseconds()
			if ms < 1 {
				ms = retryAfterBreakerMS
			}
			return reject(apiErr(CodeCircuitOpen,
				"key %s is failing repeatedly; circuit open", key).withRetryAfter(ms))
		}
	}
	if apiE := s.shedCheck(prio); apiE != nil {
		t.rejected.Inc()
		return reject(apiE)
	}

	// Admission: shard compile-queue backpressure, then tenant quotas.
	if depth := sh.pool.QueueDepth(); depth >= s.cfg.QueueBound {
		t.rejected.Inc()
		return reject(apiErr(CodeQueueFull,
			"shard %d compile queue at %d (bound %d)", sh.id, depth, s.cfg.QueueBound).
			withRetryAfter(retryAfterQueueMS))
	}
	if apiE := t.admitCompile(); apiE != nil {
		t.rejected.Inc()
		return reject(apiE)
	}
	defer t.releaseCompile()
	fr.Event(flightrec.StageAdmit, flightrec.Event{
		Verdict: "ok", Key: key, Shard: int32(sh.id), Priority: int8(prio)})

	compiledHere := false
	doCompile := func() (*core.Func, error) {
		u, err := compileUnit(sh.machine, key, t.name, lang, source, entry)
		if err != nil {
			return nil, err
		}
		sh.register(u)
		t.resident.Add(u.bytes)
		t.compiles.Inc()
		compiledHere = true
		if s.journal != nil {
			// Group commit: block this flight until the record fsyncs.
			// A degraded journal (write/fsync failure) still serves the
			// unit — the ack just goes out durable=false until the next
			// checkpoint rotation hands the writer a fresh file.
			lsn, jerr := s.journal.append(journalRecord{
				Op:     journalOpAdd,
				Entry:  snapEntryOf(u, sh.id),
				Shards: len(s.shards),
			}, true)
			if jerr == nil {
				u.durable.Store(true)
				u.lsn.Store(lsn)
				fr.Event(flightrec.StageJournal, flightrec.Event{
					Verdict: "durable", Key: key, Shard: int32(sh.id), LSN: lsn})
			} else {
				fr.Event(flightrec.StageJournal, flightrec.Event{
					Verdict: "degraded", Key: key, Shard: int32(sh.id), Detail: truncate(jerr.Error())})
			}
		}
		return u.entryFn, nil
	}
	if inj := s.cfg.Injector; inj != nil {
		doCompile = inj.WrapCompile(doCompile)
	}
	fn, err := sh.cache.GetOrCompile(key, func() (*core.Func, error) {
		// One-item batch: the pool bounds per-shard compile concurrency
		// and is the queue the admission bound watches.
		res := sh.pool.CompileBatch(ctx, []batch.Request{{
			Name:    key,
			Compile: func(*core.Asm) (*core.Func, error) { return doCompile() },
		}})
		return res[0].Func, res[0].Err
	})
	if err != nil {
		apiE := classifyCompile(err)
		fr.Event(flightrec.StageCache, flightrec.Event{
			Verdict: "error", Key: key, Shard: int32(sh.id), Detail: string(apiE.Code)})
		return compileResult{}, apiE
	}
	verdict := "compiled"
	if !compiledHere {
		verdict = "coalesced"
	}
	fr.Event(flightrec.StageCache, flightrec.Event{
		Verdict: verdict, Key: key, Shard: int32(sh.id)})
	return compileResult{key: key, shard: sh, fn: fn, cached: !compiledHere, durable: sh.unitDurable(key)}, nil
}

// truncate bounds error text carried in flight events and logs.
func truncate(s string) string {
	if len(s) > 120 {
		return s[:120]
	}
	return s
}

// execResult is one completed call.
type execResult struct {
	value core.Value
	stats core.CallStats
}

// exec runs one sandboxed call under the tenant's fuel quota and the
// server call timeout.  fr (nil-safe) records the call's engine, fuel
// spend and wall time on the request's flight chain.
func (s *Server) exec(ctx context.Context, fr *flightrec.Request, t *tenant, sh *shard, fn *core.Func, args []core.Value, fuel uint64) (execResult, *APIError) {
	budget := t.quota.FuelPerCall
	if fuel > 0 {
		if budget > 0 && fuel > budget {
			t.rejected.Inc()
			apiE := apiErr(CodeQuotaFuel,
				"requested fuel %d exceeds tenant cap %d", fuel, budget)
			fr.Event(flightrec.StageExec, flightrec.Event{
				Verdict: string(apiE.Code), Shard: int32(sh.id), Tier: 2})
			return execResult{}, apiE
		}
		budget = fuel
	}
	cctx, cancel := context.WithTimeout(ctx, s.cfg.CallTimeout)
	defer cancel()
	v, st, err := sh.machine.CallWithStats(cctx, core.CallOpts{Fuel: budget}, fn, args...)
	sh.calls.Add(1)
	if telemetry.Enabled() {
		s.callNS.Observe(uint64(st.Wall))
		t.callNS.Observe(uint64(st.Wall))
	}
	if err != nil {
		apiE := classify(err)
		fr.Event(flightrec.StageExec, flightrec.Event{
			Verdict: string(apiE.Code), Shard: int32(sh.id), Tier: 2,
			Detail: sh.machine.Engine().String(), Fuel: st.Fuel, DurNS: st.Wall.Nanoseconds()})
		return execResult{}, apiE
	}
	fr.Event(flightrec.StageExec, flightrec.Event{
		Verdict: "ok", Shard: int32(sh.id), Tier: 2,
		Detail: sh.machine.Engine().String(), Fuel: st.Fuel, DurNS: st.Wall.Nanoseconds()})
	return execResult{value: v, stats: st}, nil
}

// requestID returns the caller-supplied ID or mints one.
func (s *Server) requestID(supplied string) string {
	if supplied != "" {
		return supplied
	}
	return fmt.Sprintf("r%06d", s.reqSeq.Add(1))
}

// finishRequest records the request's telemetry, its lifecycle span,
// its SLO observation, its flight-recorder outcome and (at Debug) its
// structured log line.  The span's name carries tenant/request-id; its
// flow joins the entry function's lifecycle lane when the function is
// known, so a Perfetto lane ties verify/install/call spans back to the
// network request.
func (s *Server) finishRequest(t *tenant, reqID, key string, shardID int, start time.Time, fn *core.Func, sp trace.Active, fr *flightrec.Request, apiE *APIError) {
	s.requests.Inc()
	t.requests.Inc()
	d := time.Since(start)
	if telemetry.Enabled() {
		s.requestNS.Observe(uint64(d))
		t.requestNS.Observe(uint64(d))
	}
	verdict, errText := "ok", ""
	if apiE != nil {
		s.errorsAll.Inc()
		t.errors.Inc()
		verdict, errText = string(apiE.Code), truncate(apiE.Message)
	}
	// SLO: only 5xx-class failures are the service's fault — typed 4xx
	// rejections spend the caller's budget, not the error objective.
	isFault := apiE != nil && apiE.Status() >= 500
	s.sloGlobal.Observe(uint64(d), isFault)
	t.slo.Observe(uint64(d), isFault)
	var flow uint64
	if fn != nil {
		flow = fn.TraceFlow()
	}
	sp.End(flow, trace.Attrs{Verdict: verdict, Err: errText})
	fr.Finish(verdict, errText, flow)
	if s.log.Enabled(context.Background(), slog.LevelDebug) {
		s.log.Debug("request",
			"request_id", reqID, "tenant", t.name, "shard", shardID,
			"key", key, "code", verdict, "dur_ms", d.Milliseconds())
	}
}

// lookupStats aggregates one shard's cache metrics for /v1/stats.
func (sh *shard) statsView() ShardStats {
	ar := sh.machine.ArenaStats()
	sh.mu.Lock()
	units := len(sh.units)
	sh.mu.Unlock()
	return ShardStats{
		ID:                 sh.id,
		Units:              units,
		UnitBytes:          sh.unitBytes(),
		Calls:              sh.calls.Load(),
		Compiles:           sh.compiles.Load(),
		QueueDepth:         sh.pool.QueueDepth(),
		CodeBytesResident:  ar.CodeBytesResident,
		CodeBytesHighWater: ar.CodeBytesHighWater,
		HeapBytesUsed:      ar.HeapBytesUsed,
		FreeRegions:        ar.FreeRegions,
		InstalledFuncs:     ar.Funcs,
		Cache:              sh.cache.Snapshot(),
	}
}

// ShardStats is one arena's /v1/stats row.
type ShardStats struct {
	ID                 int               `json:"id"`
	Units              int               `json:"units"`
	UnitBytes          int64             `json:"unit_bytes"`
	Calls              uint64            `json:"calls"`
	Compiles           uint64            `json:"compiles"`
	QueueDepth         int64             `json:"queue_depth"`
	CodeBytesResident  uint64            `json:"code_bytes_resident"`
	CodeBytesHighWater uint64            `json:"code_bytes_high_water"`
	HeapBytesUsed      uint64            `json:"heap_bytes_used"`
	FreeRegions        int               `json:"free_regions"`
	InstalledFuncs     int               `json:"installed_funcs"`
	Cache              codecache.Metrics `json:"cache"`
}

// TenantStats is one tenant's /v1/stats row.
type TenantStats struct {
	Name          string `json:"name"`
	Requests      uint64 `json:"requests"`
	Errors        uint64 `json:"errors"`
	Rejected      uint64 `json:"rejected"`
	Compiles      uint64 `json:"compiles"`
	ResidentBytes int64  `json:"resident_bytes"`
	Calls         uint64 `json:"calls"`
	CallP50NS     uint64 `json:"call_p50_ns"`
	CallP99NS     uint64 `json:"call_p99_ns"`
}

// Stats is the /v1/stats document.
type Stats struct {
	Backend     string        `json:"backend"`
	UptimeSec   float64       `json:"uptime_sec"`
	Ready       bool          `json:"ready"`
	Requests    uint64        `json:"requests"`
	Errors      uint64        `json:"errors"`
	RateLimited uint64        `json:"rate_limited"`
	Shed        uint64        `json:"shed"`
	BreakerOpen uint64        `json:"breaker_open"`
	Resharded   uint64        `json:"resharded"`
	RecoveryMS  int64         `json:"recovery_ms"`
	QueueDepth  int64         `json:"queue_depth"`
	CallP50NS   uint64        `json:"call_p50_ns"`
	CallP99NS   uint64        `json:"call_p99_ns"`
	Shards      []ShardStats  `json:"shards"`
	Tenants     []TenantStats `json:"tenants"`
	// SLO is the watchdog's evaluated view (absent when disabled).
	SLO *slo.Snapshot `json:"slo,omitempty"`
}

// StatsView assembles the current service-wide statistics.
func (s *Server) StatsView() Stats {
	ready, _ := s.health.Ready()
	sum := s.callNS.Summary()
	st := Stats{
		Backend:     s.cfg.Backend,
		UptimeSec:   time.Since(s.started).Seconds(),
		Ready:       ready,
		Requests:    s.requests.Load(),
		Errors:      s.errorsAll.Load(),
		RateLimited: s.rateLimited.Load(),
		Shed:        s.shedded.Load(),
		BreakerOpen: s.breakerFast.Load(),
		Resharded:   s.snapResharded.Load(),
		RecoveryMS:  s.recoveryMS.Load(),
		QueueDepth:  s.queueDepth(),
		CallP50NS:   sum.P50,
		CallP99NS:   sum.P99,
	}
	if s.slo != nil {
		snap := s.slo.View()
		st.SLO = &snap
	}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, sh.statsView())
	}
	for _, name := range s.tenants.names() {
		t, apiE := s.tenants.get(name)
		if apiE != nil {
			continue
		}
		ts := TenantStats{
			Name:          t.name,
			Requests:      t.requests.Load(),
			Errors:        t.errors.Load(),
			Rejected:      t.rejected.Load(),
			Compiles:      t.compiles.Load(),
			ResidentBytes: t.resident.Load(),
		}
		csum := t.callNS.Summary()
		ts.Calls, ts.CallP50NS, ts.CallP99NS = csum.Count, csum.P50, csum.P99
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}

// errorsIs is a tiny helper for tests and drivers: whether err (an
// *APIError or anything else) carries the given code.
func errorsIs(err error, code Code) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}
