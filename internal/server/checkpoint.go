package server

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// RecoveryStats is what Recover found and did — the typed material for
// the operator log line.
type RecoveryStats struct {
	Warm            int   // programs recompiled and resident
	SnapshotEntries int   // entries the snapshot contributed
	JournalRecords  int   // journal records applied on top
	Resharded       int   // units whose recorded home shard moved
	SnapshotCorrupt bool  // snapshot present but failed validation
	JournalTorn     bool  // journal replay stopped at a torn/corrupt record
	DurationMS      int64 // wall time of the whole recovery
}

func (st RecoveryStats) String() string {
	return fmt.Sprintf("warm=%d snapshot_entries=%d journal_records=%d resharded=%d snapshot_corrupt=%v journal_torn=%v duration_ms=%d",
		st.Warm, st.SnapshotEntries, st.JournalRecords, st.Resharded, st.SnapshotCorrupt, st.JournalTorn, st.DurationMS)
}

// Recover rebuilds the resident set from the last snapshot plus the
// journal tail, flips readiness, and — when journalPath is non-empty —
// folds the recovered state into a fresh snapshot, opens a fresh journal
// for steady-state appends, and starts the periodic checkpointer.
//
// Recovery is tolerant by construction: a missing snapshot is a cold
// start, a corrupt snapshot is counted and reported but still boots
// (partially warm from the journal if it has self-contained records),
// and a torn journal tail truncates the replay at the first bad CRC.
// The server always comes up; the returned error (alongside the stats)
// is diagnostic, never fatal.  Replay routes every unit through shardOf
// under the current shard count, so a snapshot taken with N shards
// restores into an M-shard server.
func (s *Server) Recover(snapPath, journalPath string) (RecoveryStats, error) {
	start := time.Now()
	var st RecoveryStats
	var firstErr error
	if journalPath != "" && snapPath == "" {
		return st, errors.New("server: a journal requires a snapshot path to compact into")
	}

	// The snapshot is the base layer.
	var entries []snapEntry
	index := make(map[string]int)
	add := func(e snapEntry) {
		if i, ok := index[e.Key]; ok {
			entries[i] = e
			return
		}
		index[e.Key] = len(entries)
		entries = append(entries, e)
	}
	del := func(key string) {
		if i, ok := index[key]; ok {
			entries[i].Key = "" // tombstone; skipped below
			delete(index, key)
		}
	}
	if snapPath != "" {
		file, err := loadSnapshot(snapPath)
		switch {
		case err == nil:
			if file.Backend != s.cfg.Backend {
				s.snapIncompat.Add(uint64(len(file.Entries)))
			} else {
				for _, e := range file.Entries {
					add(e)
				}
				st.SnapshotEntries = len(file.Entries)
			}
		case os.IsNotExist(err):
			// Cold start: nothing to restore.
		default:
			st.SnapshotCorrupt = true
			s.snapErrors.Inc()
			firstErr = err
		}
	}

	// The journal tail mutates it.  The steady-state generation replays
	// first, then the rotation file a checkpoint left behind (covering a
	// crash in any window of the rotate→snapshot→rename protocol; replay
	// is idempotent, so records both files carry apply cleanly).
	if journalPath != "" {
		for _, p := range []string{journalPath, journalPath + ".rot"} {
			recs, diag := replayJournal(p)
			if diag.Torn || diag.HeaderBad {
				st.JournalTorn = true
				s.jrnlTorn.Inc()
				if firstErr == nil {
					firstErr = fmt.Errorf("server: journal %s is torn or corrupt after %d records (replay truncated)", p, diag.Records)
				}
			}
			for _, r := range recs {
				switch r.Op {
				case journalOpAdd:
					if r.Entry.Key != "" {
						add(r.Entry)
					}
				case journalOpDel:
					del(r.Key)
				}
			}
			st.JournalRecords += len(recs)
			s.jrnlReplayed.Add(uint64(len(recs)))
		}
	}

	live := entries[:0]
	for _, e := range entries {
		if e.Key != "" {
			live = append(live, e)
		}
	}
	s.health.Set("snapshot_restored", true)
	st.Warm, st.Resharded = s.restoreEntries(live)
	s.health.Set("warmup_drained", true)
	st.DurationMS = time.Since(start).Milliseconds()
	s.recoveryMS.Store(st.DurationMS)

	if journalPath != "" {
		// Fold the recovered state into a fresh snapshot *before*
		// truncating the journal: if the fold crashes, the old snapshot
		// + old journal still reproduce this state on the next boot.
		if _, err := s.SaveSnapshot(snapPath); err != nil {
			return st, fmt.Errorf("server: recovery checkpoint failed, journaling disabled: %w", err)
		}
		_ = os.Remove(journalPath + ".rot")
		j, err := openJournal(journalPath, s.cfg.FsyncInterval, s.cfg.Injector, s.cfg.Registry)
		if err != nil {
			return st, fmt.Errorf("server: opening journal, journaling disabled: %w", err)
		}
		s.journal = j
		s.snapPath, s.jrnlPath = snapPath, journalPath
		if s.cfg.CheckpointInterval > 0 {
			s.startCheckpoints(s.cfg.CheckpointInterval)
		}
	}
	return st, firstErr
}

// Checkpoint folds the current resident set and the journal into a new
// snapshot generation: rotate the journal (new appends go to a fresh
// .rot file), write the snapshot atomically, then publish the rotation
// by renaming .rot over the journal.  A crash in any window leaves a
// snapshot+journal pair that replays to the same state.  Rotation also
// clears a degraded journal — the recovery path for injected or real
// fsync failures.
func (s *Server) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.snapPath == "" {
		return errors.New("server: no snapshot path configured (call Recover first)")
	}
	if s.journal != nil {
		if err := s.journal.rotate(); err != nil {
			s.ckptErrors.Inc()
			return err
		}
	}
	if _, err := s.SaveSnapshot(s.snapPath); err != nil {
		s.ckptErrors.Inc()
		return err
	}
	if s.journal != nil {
		if err := s.journal.finishRotation(); err != nil {
			s.ckptErrors.Inc()
			return err
		}
	}
	s.checkpoints.Inc()
	return nil
}

// startCheckpoints runs Checkpoint on a ticker until Close.
func (s *Server) startCheckpoints(every time.Duration) {
	s.ckptQuit = make(chan struct{})
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = s.Checkpoint()
			case <-s.ckptQuit:
				return
			}
		}
	}()
}

// stopCheckpoints halts the periodic checkpointer, if running.
func (s *Server) stopCheckpoints() {
	if s.ckptQuit != nil {
		close(s.ckptQuit)
		s.ckptWG.Wait()
		s.ckptQuit = nil
	}
}
