package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/flightrec"
)

// withFlightRecording turns the flight recorder on for one test,
// restoring the prior state (and clearing the ring) afterwards.
func withFlightRecording(t *testing.T) {
	t.Helper()
	was := flightrec.Enabled()
	flightrec.Reset()
	flightrec.SetEnabled(true)
	t.Cleanup(func() {
		flightrec.SetEnabled(was)
		flightrec.Reset()
	})
}

// chainFor extracts the events carrying reqID from a ring snapshot, in
// ring order.
func chainFor(events []flightrec.Event, reqID string) []flightrec.Event {
	var out []flightrec.Event
	for _, e := range events {
		if e.ReqID == reqID {
			out = append(out, e)
		}
	}
	return out
}

// TestFlightChainDurableExec drives one journaled exec request and
// asserts the recorder captured the complete
// admit→cache→journal→exec→outcome chain, with the journal event
// carrying a nonzero LSN behind the durable ack.
func TestFlightChainDurableExec(t *testing.T) {
	withFlightRecording(t)
	dir := t.TempDir()
	_, ts, _, rerr := newJournaledServer(t, 2, filepath.Join(dir, "snap"), filepath.Join(dir, "j.wal"))
	if rerr != nil {
		t.Fatalf("Recover: %v", rerr)
	}

	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "tinyc", "source": fibTinyC,
		"args": []int{10}, "request_id": "flight-1",
	})
	if status != http.StatusOK {
		t.Fatalf("exec = %d %v", status, out)
	}
	if d, _ := out["durable"].(bool); !d {
		t.Fatalf("ack not durable: %v", out)
	}

	chain := chainFor(flightrec.Events(), "flight-1")
	stages := make([]string, len(chain))
	for i, e := range chain {
		stages[i] = e.Stage.String() + ":" + e.Verdict
	}
	want := []string{"admit:ok", "journal:durable", "cache:compiled", "exec:ok", "outcome:ok"}
	if len(stages) != len(want) {
		t.Fatalf("chain = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("chain = %v, want %v", stages, want)
		}
	}
	for _, e := range chain {
		if e.Tenant != "alice" {
			t.Fatalf("event tenant = %q, want alice: %+v", e.Tenant, e)
		}
	}
	if chain[1].LSN == 0 {
		t.Fatalf("journal event has no LSN: %+v", chain[1])
	}
	if chain[3].Detail == "" || chain[3].Fuel == 0 {
		t.Fatalf("exec event missing engine/fuel: %+v", chain[3])
	}
	if chain[4].DurNS <= 0 {
		t.Fatalf("outcome event missing duration: %+v", chain[4])
	}
}

// TestFlightErrorExemplar asserts an errored request retains its full
// chain as an exemplar.
func TestFlightErrorExemplar(t *testing.T) {
	withFlightRecording(t)
	_, ts := newTestServer(t, nil)

	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "bob", "key": "no-such-key", "request_id": "flight-miss",
	})
	if status != http.StatusNotFound {
		t.Fatalf("exec = %d %v", status, out)
	}

	var found *flightrec.Exemplar
	set := flightrec.Exemplars()
	for i := range set.Errored {
		if set.Errored[i].ReqID == "flight-miss" {
			found = &set.Errored[i]
		}
	}
	if found == nil {
		t.Fatalf("no errored exemplar for flight-miss: %+v", set.Errored)
	}
	if found.Outcome != string(CodeNotFound) {
		t.Fatalf("exemplar outcome = %q, want %s", found.Outcome, CodeNotFound)
	}
	if len(found.Events) < 2 {
		t.Fatalf("exemplar chain too short: %+v", found.Events)
	}
}

// readBundle parses a gzipped bundle archive into name -> contents.
func readBundle(t *testing.T, data []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	out := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar: %v", err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("tar read %s: %v", hdr.Name, err)
		}
		out[hdr.Name] = b
	}
	return out
}

// TestBundleEndpoint asserts /debug/bundle returns a well-formed
// archive whose flight ring reconstructs a request chain by ID.
func TestBundleEndpoint(t *testing.T) {
	withFlightRecording(t)
	srv, ts := newTestServer(t, nil)

	status, out := post(t, ts, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm,
		"args": []int{5}, "request_id": "bundle-1",
	})
	if status != http.StatusOK {
		t.Fatalf("exec = %d %v", status, out)
	}

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatalf("GET /debug/bundle: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	files := readBundle(t, raw)
	for _, name := range []string{
		"meta.json", "flight.json", "exemplars.json", "stats.json",
		"trace.json", "metrics.json", "metrics_summary.json",
		"slo.json", "positions.json", "goroutines.txt",
	} {
		if _, ok := files[name]; !ok {
			t.Fatalf("bundle missing %s (has %v)", name, keys(files))
		}
	}
	var events []flightrec.Event
	if err := json.Unmarshal(files["flight.json"], &events); err != nil {
		t.Fatalf("flight.json: %v", err)
	}
	chain := chainFor(events, "bundle-1")
	if len(chain) < 4 {
		t.Fatalf("bundle chain for bundle-1 too short: %+v", chain)
	}
	if chain[len(chain)-1].Stage.String() != "outcome" || chain[len(chain)-1].Verdict != "ok" {
		t.Fatalf("bundle chain does not end ok: %+v", chain)
	}
	if !bytes.Contains(files["goroutines.txt"], []byte("goroutine")) {
		t.Fatal("goroutine dump empty")
	}
	var stats Stats
	if err := json.Unmarshal(files["stats.json"], &stats); err != nil {
		t.Fatalf("stats.json: %v", err)
	}
	if stats.SLO == nil {
		t.Fatal("stats.json missing slo snapshot")
	}

	// File-side writer: atomic, named by reason.
	path, err := srv.WriteBundleFile(t.TempDir(), "test")
	if err != nil {
		t.Fatalf("WriteBundleFile: %v", err)
	}
	if filepath.Ext(path) != ".gz" {
		t.Fatalf("bundle path = %q", path)
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
