package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

func testJournal(t *testing.T, inj *faultinject.Injector) (*journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.vcjrnl")
	j, err := openJournal(path, time.Millisecond, inj, telemetry.NewRegistry())
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	return j, path
}

func addRec(key string) journalRecord {
	return journalRecord{Op: journalOpAdd, Entry: snapEntry{Key: key, Tenant: "t", Lang: "vasm", Source: "src-" + key}, Shards: 2}
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := testJournal(t, nil)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := j.append(addRec(k), true); err != nil {
			t.Fatalf("append(%s): %v", k, err)
		}
	}
	if _, err := j.append(journalRecord{Op: journalOpDel, Key: "b"}, true); err != nil {
		t.Fatalf("append(del): %v", err)
	}
	j.close()

	recs, diag := replayJournal(path)
	if diag.Torn || diag.HeaderBad || diag.Missing {
		t.Fatalf("clean journal diagnosed dirty: %+v", diag)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, want := range []string{"a", "b", "c"} {
		if recs[i].Op != journalOpAdd || recs[i].Entry.Key != want || recs[i].Entry.Source != "src-"+want {
			t.Fatalf("record %d = %+v, want add %s", i, recs[i], want)
		}
	}
	if recs[3].Op != journalOpDel || recs[3].Key != "b" {
		t.Fatalf("record 3 = %+v, want del b", recs[3])
	}
}

func TestJournalTornTailTruncatesReplay(t *testing.T) {
	j, path := testJournal(t, nil)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := j.append(addRec(k), true); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	j.close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   int // trusted records after corruption
	}{
		{"truncated mid-frame", func(b []byte) []byte { return b[:len(b)-3] }, 2},
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] ^= 0x40
			return out
		}, 2},
		{"garbage appended", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xde, 0xad) }, 3},
		{"absurd length field", func(b []byte) []byte {
			// Rewrite the first record's length to claim gigabytes.
			out := append([]byte(nil), b...)
			off := len(journalHeader())
			out[off], out[off+1], out[off+2], out[off+3] = 0xff, 0xff, 0xff, 0x7f
			return out
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "mangled.vcjrnl")
			if err := os.WriteFile(p, tc.mangle(clean), 0o644); err != nil {
				t.Fatal(err)
			}
			recs, diag := replayJournal(p)
			if !diag.Torn {
				t.Fatalf("corruption not diagnosed: %+v", diag)
			}
			if len(recs) != tc.want {
				t.Fatalf("replayed %d records, want %d", len(recs), tc.want)
			}
		})
	}
}

func TestJournalHeaderCorruption(t *testing.T) {
	j, path := testJournal(t, nil)
	if _, err := j.append(addRec("a"), true); err != nil {
		t.Fatal(err)
	}
	j.close()
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, diag := replayJournal(path)
	if !diag.HeaderBad || len(recs) != 0 {
		t.Fatalf("bad header accepted: recs=%d diag=%+v", len(recs), diag)
	}
	if _, diag := replayJournal(filepath.Join(t.TempDir(), "absent")); !diag.Missing {
		t.Fatalf("missing file not diagnosed: %+v", diag)
	}
}

func TestJournalRotationProtocol(t *testing.T) {
	j, path := testJournal(t, nil)
	if _, err := j.append(addRec("old"), true); err != nil {
		t.Fatal(err)
	}
	if err := j.rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if _, err := j.append(addRec("new"), true); err != nil {
		t.Fatalf("append after rotate: %v", err)
	}

	// Crash window: snapshot written but rename not yet done — recovery
	// replays both generations.
	oldRecs, _ := replayJournal(path)
	rotRecs, _ := replayJournal(path + ".rot")
	if len(oldRecs) != 1 || oldRecs[0].Entry.Key != "old" {
		t.Fatalf("old generation = %+v", oldRecs)
	}
	if len(rotRecs) != 1 || rotRecs[0].Entry.Key != "new" {
		t.Fatalf("rotation generation = %+v", rotRecs)
	}

	if err := j.finishRotation(); err != nil {
		t.Fatalf("finishRotation: %v", err)
	}
	if _, err := os.Stat(path + ".rot"); !os.IsNotExist(err) {
		t.Fatalf(".rot still present after publish: %v", err)
	}
	recs, _ := replayJournal(path)
	if len(recs) != 1 || recs[0].Entry.Key != "new" {
		t.Fatalf("published journal = %+v, want just new", recs)
	}
	j.close()
}

func TestJournalDegradesOnSyncFaultAndRotationClears(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 1, JournalSyncErrorRate: 1})
	j, _ := testJournal(t, inj)
	defer j.close()

	_, err := j.append(addRec("a"), true)
	if err == nil {
		t.Fatal("append succeeded with every fsync failing")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append error %v is not the injected fault", err)
	}
	// Degraded: later appends fail fast with the typed sentinel.
	if _, err := j.append(addRec("b"), true); !errors.Is(err, errJournalDegraded) {
		t.Fatalf("append after failure = %v, want errJournalDegraded", err)
	}
	if !j.failed.Load() {
		t.Fatal("journal not marked degraded")
	}
	// Rotation hands the writer a fresh file and clears the state.
	if err := j.rotate(); err != nil {
		t.Fatalf("rotate out of degraded: %v", err)
	}
	if j.failed.Load() {
		t.Fatal("rotation did not clear the degraded state")
	}
}

func TestJournalRecordBytesAreFramed(t *testing.T) {
	frame, err := encodeRecord(addRec("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) < 9 || !bytes.Contains(frame, []byte("src-x")) {
		t.Fatalf("frame looks wrong: %d bytes", len(frame))
	}
}
