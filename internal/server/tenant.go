package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/slo"
	"repro/internal/telemetry"
)

// Quota is one tenant's resource envelope.  Zero values fall back to the
// server-wide defaults (Config.DefaultQuota fields); a negative
// MaxResidentBytes or MaxCompileConcurrency means explicitly unlimited.
type Quota struct {
	// FuelPerCall caps the simulated-step budget of one call.  Requests
	// may ask for less; asking for more is rejected with quota_fuel.
	FuelPerCall uint64 `json:"fuel_per_call"`
	// MaxResidentBytes caps the code bytes the tenant's compiles keep
	// resident across the shard arenas.  A tenant at its cap has new
	// compiles rejected with quota_code_bytes until eviction or
	// invalidation frees space; cache hits are unaffected.
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	// MaxCompileConcurrency caps the tenant's simultaneously running
	// compile flights across all shards (cache hits don't count).
	MaxCompileConcurrency int `json:"max_compile_concurrency"`
	// RatePerSec caps the tenant's request admission rate with a token
	// bucket Burst tokens deep (every request takes one token, cache
	// hits included).  Zero inherits the default; negative is explicitly
	// unlimited.
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`
	// Priority is the tenant's default shed priority, 1–9 (9 sheds
	// last).  Zero inherits the default (5); requests may override per
	// call with their own "priority" field.
	Priority int `json:"priority"`
}

// withDefaults fills zero fields from d.
func (q Quota) withDefaults(d Quota) Quota {
	if q.FuelPerCall == 0 {
		q.FuelPerCall = d.FuelPerCall
	}
	if q.MaxResidentBytes == 0 {
		q.MaxResidentBytes = d.MaxResidentBytes
	}
	if q.MaxCompileConcurrency == 0 {
		q.MaxCompileConcurrency = d.MaxCompileConcurrency
	}
	if q.RatePerSec == 0 {
		q.RatePerSec = d.RatePerSec
	}
	if q.Burst == 0 {
		q.Burst = d.Burst
	}
	if q.Priority == 0 {
		q.Priority = d.Priority
	}
	return q
}

// tenant is the runtime state behind one quota row.
type tenant struct {
	name  string
	quota Quota

	// bucket rate-limits admissions; nil means unlimited.
	bucket *tokenBucket
	// priority is the tenant's default shed priority (clamped 0–9).
	priority int

	// resident is the code bytes this tenant's compiles currently keep
	// installed (decremented by the eviction hook).
	resident atomic.Int64
	// compiling counts in-flight compile flights this tenant owns.
	compiling atomic.Int64

	requests  *telemetry.Counter
	errors    *telemetry.Counter
	rejected  *telemetry.Counter // admission/quota rejections (subset of errors)
	compiles  *telemetry.Counter
	callNS    *telemetry.Histogram
	requestNS *telemetry.Histogram

	// slo is the tenant's SLO tracker (nil when the watchdog is
	// disabled; Observe is nil-safe).
	slo *slo.Tracker
}

// newTenant builds the runtime state and registers the tenant's
// instruments under "server.tenant.<name>.*".
func newTenant(reg *telemetry.Registry, name string, q Quota) *tenant {
	prefix := "server.tenant." + name + "."
	t := &tenant{
		name:      name,
		quota:     q,
		priority:  clampPriority(q.Priority),
		requests:  reg.Counter(prefix + "requests"),
		errors:    reg.Counter(prefix + "errors"),
		rejected:  reg.Counter(prefix + "rejected"),
		compiles:  reg.Counter(prefix + "compiles"),
		callNS:    reg.Histogram(prefix+"call_ns", nil),
		requestNS: reg.Histogram(prefix+"request_ns", nil),
	}
	if q.Priority == 0 {
		t.priority = shedDefaultPriority
	}
	if q.RatePerSec > 0 {
		burst := q.Burst
		if burst <= 0 {
			burst = int(q.RatePerSec) // default burst: one second of rate
		}
		t.bucket = newTokenBucket(q.RatePerSec, burst)
	}
	reg.GaugeFunc(prefix+"resident_bytes", func() float64 {
		return float64(t.resident.Load())
	})
	return t
}

// admitRate takes one token from the tenant's rate bucket, rejecting
// with rate_limited (and the wait until a token accrues as Retry-After)
// when the bucket is dry.
func (t *tenant) admitRate() *APIError {
	if t.bucket == nil {
		return nil
	}
	ok, wait := t.bucket.take()
	if ok {
		return nil
	}
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return apiErr(CodeRateLimited,
		"tenant %s over %g req/s (burst %d)", t.name, t.quota.RatePerSec, t.quota.Burst).
		withRetryAfter(ms)
}

// admitCompile checks the tenant's compile-side quotas and, when
// admitted, holds one concurrency slot (the caller must releaseCompile).
// It returns a typed rejection otherwise.  The resident-bytes check is
// admission-time: a tenant below its cap may overshoot by the one
// program it is admitting, which keeps the check cheap and the bound
// within one program size of exact.
func (t *tenant) admitCompile() *APIError {
	if max := t.quota.MaxResidentBytes; max > 0 && t.resident.Load() >= max {
		return apiErr(CodeQuotaCodeBytes,
			"tenant %s at resident code quota (%d of %d bytes)", t.name, t.resident.Load(), max).
			withRetryAfter(retryAfterEvictMS)
	}
	if max := t.quota.MaxCompileConcurrency; max > 0 {
		if n := t.compiling.Add(1); n > int64(max) {
			t.compiling.Add(-1)
			return apiErr(CodeQuotaConcurrency,
				"tenant %s at compile concurrency quota (%d)", t.name, max).
				withRetryAfter(retryAfterCompileMS)
		}
		return nil
	}
	t.compiling.Add(1)
	return nil
}

func (t *tenant) releaseCompile() { t.compiling.Add(-1) }

// Retry-After hints, in milliseconds: quota_code_bytes clears on
// eviction (slow), concurrency and queue depth clear when running
// compiles finish (fast).
const (
	retryAfterEvictMS   = 1000
	retryAfterCompileMS = 50
	retryAfterQueueMS   = 100
)

func (e *APIError) withRetryAfter(ms int64) *APIError {
	e.RetryAfterMS = ms
	return e
}

// tenantSet resolves tenant names to runtime state, creating rows for
// unknown tenants from the default quota when that is enabled.
type tenantSet struct {
	mu           sync.Mutex
	tenants      map[string]*tenant
	reg          *telemetry.Registry
	defaultQuota Quota
	allowUnknown bool
	// watchdog, when set, hands every tenant its SLO tracker.
	watchdog *slo.Watchdog
}

func newTenantSet(reg *telemetry.Registry, quotas map[string]Quota, defaultQuota Quota, allowUnknown bool) *tenantSet {
	ts := &tenantSet{
		tenants:      make(map[string]*tenant, len(quotas)),
		reg:          reg,
		defaultQuota: defaultQuota,
		allowUnknown: allowUnknown,
	}
	for name, q := range quotas {
		ts.tenants[name] = newTenant(reg, name, q.withDefaults(defaultQuota))
	}
	return ts
}

// setWatchdog attaches the SLO watchdog, wiring trackers onto the
// tenants declared at construction (lazily-admitted tenants get theirs
// in get).
func (ts *tenantSet) setWatchdog(w *slo.Watchdog) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.watchdog = w
	for name, t := range ts.tenants {
		t.slo = w.Tenant(name)
	}
}

// get resolves name, lazily admitting unknown tenants when allowed.
func (ts *tenantSet) get(name string) (*tenant, *APIError) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.tenants[name]; ok {
		return t, nil
	}
	if !ts.allowUnknown {
		return nil, apiErr(CodeUnknownTenant, "tenant %q has no quota configured", name)
	}
	t := newTenant(ts.reg, name, ts.defaultQuota)
	if ts.watchdog != nil {
		t.slo = ts.watchdog.Tenant(name)
	}
	ts.tenants[name] = t
	return t, nil
}

// names returns the known tenant names, sorted.
func (ts *tenantSet) names() []string {
	ts.mu.Lock()
	out := make([]string, 0, len(ts.tenants))
	for name := range ts.tenants {
		out = append(out, name)
	}
	ts.mu.Unlock()
	sort.Strings(out)
	return out
}
