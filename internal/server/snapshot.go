package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"repro/internal/codecache"
	"repro/internal/core"
)

// Warm-cache snapshots: on shutdown the server serializes every resident
// program — key, owning tenant, language, entry point, source, and the
// verified entry function's final code words — and on boot it restores
// them through the batch pool's warmup path.  Restore recompiles from
// source, which re-runs the verifier and the normal install pipeline, so
// a snapshot can never smuggle unverified code into an arena: the stored
// words are a cross-check, not the load path.  Code words are compared
// against the recompiled function and counted as exact or recompiled
// (words can legitimately differ across restarts when allocation order
// shifts the absolute addresses linked into the code).
//
// The format is a magic string, one version byte, then a gob stream.
// Loading rejects bad magic and unknown versions; entries whose backend
// differs from the server's are skipped, not errors, so a snapshot
// survives a backend change without blocking boot.

const snapshotMagic = "VCSNAP"
const snapshotVersion = byte(1)

// snapEntry is one resident program in the snapshot.
type snapEntry struct {
	Key    string
	Tenant string
	Lang   string
	Entry  string
	Source string
	Words  []uint32
}

// snapFile is the gob payload following the magic + version header.
type snapFile struct {
	Backend string
	Entries []snapEntry
}

// SaveSnapshot writes the warm-cache snapshot for every shard to path
// (atomically, via rename).  It returns the number of programs saved.
func (s *Server) SaveSnapshot(path string) (int, error) {
	file := snapFile{Backend: s.cfg.Backend}
	for _, sh := range s.shards {
		sh.cache.Each(func(key string, fn *core.Func) {
			u := sh.unit(key)
			if u == nil {
				return
			}
			words := make([]uint32, len(u.entryFn.Words))
			copy(words, u.entryFn.Words)
			file.Entries = append(file.Entries, snapEntry{
				Key:    u.key,
				Tenant: u.tenantName,
				Lang:   u.lang,
				Entry:  u.entry,
				Source: u.source,
				Words:  words,
			})
		})
	}
	sort.Slice(file.Entries, func(i, j int) bool { return file.Entries[i].Key < file.Entries[j].Key })

	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(snapshotVersion)
	if err := gob.NewEncoder(&buf).Encode(&file); err != nil {
		return 0, fmt.Errorf("server: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	s.snapSaved.Add(uint64(len(file.Entries)))
	return len(file.Entries), nil
}

// loadSnapshot parses and validates a snapshot file.
func loadSnapshot(path string) (*snapFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapshotMagic)+1 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("server: %s is not a snapshot (bad magic)", path)
	}
	if v := raw[len(snapshotMagic)]; v != snapshotVersion {
		return nil, fmt.Errorf("server: snapshot %s has version %d, want %d", path, v, snapshotVersion)
	}
	var file snapFile
	if err := gob.NewDecoder(bytes.NewReader(raw[len(snapshotMagic)+1:])).Decode(&file); err != nil {
		return nil, fmt.Errorf("server: decoding snapshot %s: %w", path, err)
	}
	return &file, nil
}

// Restore loads the warm-cache snapshot at path (if any) and marks the
// server ready.  Call it exactly once after New, with "" or a missing
// path when there is nothing to restore — readiness (/readyz) stays
// false until both restore conditions flip.  Restored programs recompile
// through each shard's batch pool with the same single-flight protocol
// live requests use, so requests arriving mid-restore coalesce instead
// of duplicating work.  It returns the number of programs made warm.
func (s *Server) Restore(path string) (int, error) {
	if path == "" {
		s.health.Set("snapshot_restored", true)
		s.health.Set("warmup_drained", true)
		return 0, nil
	}
	file, err := loadSnapshot(path)
	if os.IsNotExist(err) {
		s.health.Set("snapshot_restored", true)
		s.health.Set("warmup_drained", true)
		return 0, nil
	}
	if err != nil {
		// A corrupt or unreadable snapshot must not wedge boot: count
		// it, report it, and serve cold (ready).
		s.snapErrors.Inc()
		s.health.Set("snapshot_restored", true)
		s.health.Set("warmup_drained", true)
		return 0, err
	}

	// Group entries by destination shard, skipping other backends.
	perShard := make([][]snapEntry, len(s.shards))
	for _, e := range file.Entries {
		if file.Backend != s.cfg.Backend {
			s.snapIncompat.Inc()
			continue
		}
		i := shardOf(e.Key, len(s.shards))
		perShard[i] = append(perShard[i], e)
	}
	s.health.Set("snapshot_restored", true)

	warm := 0
	for i, entries := range perShard {
		sh := s.shards[i]
		items := make([]codecache.WarmItem, 0, len(entries))
		for _, e := range entries {
			e := e
			items = append(items, codecache.WarmItem{
				Key: e.Key,
				Compile: func(*core.Asm) (*core.Func, error) {
					t, apiE := s.tenants.get(e.Tenant)
					if apiE != nil {
						return nil, apiE
					}
					u, err := compileUnit(sh.machine, e.Key, e.Tenant, e.Lang, e.Source, e.Entry)
					if err != nil {
						return nil, err
					}
					sh.register(u)
					t.resident.Add(u.bytes)
					if wordsEqual(u.entryFn.Words, e.Words) {
						s.snapExact.Inc()
					} else {
						s.snapRecompiled.Inc()
					}
					return u.entryFn, nil
				},
			})
		}
		for _, err := range sh.cache.WarmUp(nil, sh.pool, items) {
			if err != nil {
				s.snapErrors.Inc()
			} else {
				warm++
			}
		}
	}
	s.snapRestored.Add(uint64(warm))
	s.health.Set("warmup_drained", true)
	return warm, nil
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
