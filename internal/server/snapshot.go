package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/codecache"
	"repro/internal/core"
)

// Warm-cache snapshots: the server serializes every resident program —
// key, owning tenant, language, entry point, source, home shard, and the
// verified entry function's final code words — and restores them through
// the batch pool's warmup path.  Restore recompiles from source, which
// re-runs the verifier and the normal install pipeline, so a snapshot
// can never smuggle unverified code into an arena: the stored words are
// a cross-check, not the load path.  Code words are compared against the
// recompiled function and counted as exact or recompiled (words can
// legitimately differ across restarts when allocation order shifts the
// absolute addresses linked into the code).
//
// The format is a magic string, one version byte, a CRC32-IEEE of the
// payload (little-endian), then a gob stream.  Loading rejects bad
// magic, unknown versions and checksum mismatches — a flipped bit
// anywhere in the payload drops the whole snapshot to a typed error and
// a cold boot rather than risking a silently altered source recompiling
// into wrong words under a stale key.  Entries whose backend differs
// from the server's are skipped, not errors, so a snapshot survives a
// backend change without blocking boot.
//
// Every entry records the shard it lived in and the file records the
// shard count, but restore routes each key through shardOf under the
// *current* shard count: operators can change -shards across restarts
// and the snapshot reshards on load (counted in
// server.snapshot.resharded).

const snapshotMagic = "VCSNAP"
const snapshotVersion = byte(2)

// snapEntry is one resident program in the snapshot (and in journal add
// records, which embed the same shape).
type snapEntry struct {
	Key    string
	Tenant string
	Lang   string
	Entry  string
	Source string
	Shard  int // home shard when recorded
	Words  []uint32
}

// snapFile is the gob payload following the magic + version + CRC
// header.
type snapFile struct {
	Backend string
	Shards  int
	Entries []snapEntry
}

// snapEntryOf serializes one resident unit.
func snapEntryOf(u *unit, shardID int) snapEntry {
	words := make([]uint32, len(u.entryFn.Words))
	copy(words, u.entryFn.Words)
	return snapEntry{
		Key:    u.key,
		Tenant: u.tenantName,
		Lang:   u.lang,
		Entry:  u.entry,
		Source: u.source,
		Shard:  shardID,
		Words:  words,
	}
}

// SaveSnapshot writes the warm-cache snapshot for every shard to path
// (atomically: temp file, fsync, rename).  It returns the number of
// programs saved.
func (s *Server) SaveSnapshot(path string) (int, error) {
	file := snapFile{Backend: s.cfg.Backend, Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.cache.Each(func(key string, fn *core.Func) {
			u := sh.unit(key)
			if u == nil {
				return
			}
			file.Entries = append(file.Entries, snapEntryOf(u, sh.id))
		})
	}
	sort.Slice(file.Entries, func(i, j int) bool { return file.Entries[i].Key < file.Entries[j].Key })

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&file); err != nil {
		return 0, fmt.Errorf("server: encoding snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(snapshotVersion)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(crc[:])
	buf.Write(payload.Bytes())

	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return 0, err
	}
	s.snapSaved.Add(uint64(len(file.Entries)))
	return len(file.Entries), nil
}

// writeFileAtomic is write-to-temp, fsync, rename, best-effort directory
// sync — the crash-safe publish protocol both the snapshot and the
// journal rotation rely on.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// loadSnapshot parses and validates a snapshot file.
func loadSnapshot(path string) (*snapFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdrLen := len(snapshotMagic) + 1 + 4
	if len(raw) < hdrLen || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("server: %s is not a snapshot (bad magic)", path)
	}
	if v := raw[len(snapshotMagic)]; v != snapshotVersion {
		return nil, fmt.Errorf("server: snapshot %s has version %d, want %d", path, v, snapshotVersion)
	}
	sum := binary.LittleEndian.Uint32(raw[len(snapshotMagic)+1 : hdrLen])
	payload := raw[hdrLen:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("server: snapshot %s failed its checksum (corrupt)", path)
	}
	var file snapFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&file); err != nil {
		return nil, fmt.Errorf("server: decoding snapshot %s: %w", path, err)
	}
	return &file, nil
}

// Restore loads the warm-cache snapshot at path (if any) and marks the
// server ready.  Call it exactly once after New, with "" or a missing
// path when there is nothing to restore — readiness (/readyz) stays
// false until both restore conditions flip.  Servers with a journal
// should call Recover instead, which replays the journal tail on top of
// the snapshot and starts checkpointing; Restore is Recover without a
// journal.  It returns the number of programs made warm.
func (s *Server) Restore(path string) (int, error) {
	st, err := s.Recover(path, "")
	return st.Warm, err
}

// restoreEntries routes recovered entries through shardOf under the
// current shard count and recompiles them through each shard's warmup
// path — the same single-flight protocol live requests use, so requests
// arriving mid-restore coalesce instead of duplicating work.  Entries
// whose recorded home shard differs from their current one are counted
// as resharded.  Restored units are marked durable: they came from disk.
func (s *Server) restoreEntries(entries []snapEntry) (warm, resharded int) {
	perShard := make([][]snapEntry, len(s.shards))
	for _, e := range entries {
		i := shardOf(e.Key, len(s.shards))
		if e.Shard != i {
			resharded++
		}
		perShard[i] = append(perShard[i], e)
	}
	s.snapResharded.Add(uint64(resharded))

	for i, list := range perShard {
		sh := s.shards[i]
		items := make([]codecache.WarmItem, 0, len(list))
		for _, e := range list {
			e := e
			items = append(items, codecache.WarmItem{
				Key: e.Key,
				Compile: func(*core.Asm) (*core.Func, error) {
					t, apiE := s.tenants.get(e.Tenant)
					if apiE != nil {
						return nil, apiE
					}
					u, err := compileUnit(sh.machine, e.Key, e.Tenant, e.Lang, e.Source, e.Entry)
					if err != nil {
						return nil, err
					}
					u.durable.Store(true)
					sh.register(u)
					t.resident.Add(u.bytes)
					if wordsEqual(u.entryFn.Words, e.Words) {
						s.snapExact.Inc()
					} else {
						s.snapRecompiled.Inc()
					}
					return u.entryFn, nil
				},
			})
		}
		for _, err := range sh.cache.WarmUp(nil, sh.pool, items) {
			if err != nil {
				s.snapErrors.Inc()
			} else {
				warm++
			}
		}
	}
	s.snapRestored.Add(uint64(warm))
	return warm, resharded
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
