package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/batch"
)

// Overload protection is three layers, checked in admission order:
//
//  1. per-tenant token-bucket rate limiting (requests/sec with burst) —
//     applied to every request before any work happens; 429
//     rate_limited;
//  2. a per-key compile circuit breaker — keys whose compiles keep
//     failing fast-fail with 503 circuit_open instead of burning batch
//     pool slots (this layers on codecache.FailureBackoff: the backoff
//     caches one failure, the breaker counts consecutive ones);
//  3. a global load-shedding watermark on summed batch queue depth —
//     past the low watermark compile-requiring requests below priority 4
//     are shed, past the high watermark everything below priority 8 is,
//     with 503 overloaded.  Cache hits always serve.

// tokenBucket is a standard leaky token bucket: rate tokens/sec accrue
// up to burst; one request takes one token.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take consumes one token when available; otherwise it reports how long
// until one accrues.
func (b *tokenBucket) take() (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// breakerSet is the per-key compile circuit breaker: `threshold`
// consecutive compile failures open a key's circuit for `cooldown`.
// After the cooldown one probe compile is allowed through half-open —
// success closes the circuit, failure reopens it immediately.
type breakerSet struct {
	mu        sync.Mutex
	m         map[string]*breakerState
	threshold int
	cooldown  time.Duration
}

type breakerState struct {
	fails     int
	openUntil time.Time
	touched   time.Time
}

// breakerMaxKeys bounds the tracked-key map; past it, closed stale
// entries are pruned (an open circuit is never pruned early).
const breakerMaxKeys = 4096

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{m: make(map[string]*breakerState), threshold: threshold, cooldown: cooldown}
}

// allow reports whether a compile for key may proceed; when the circuit
// is open it returns the remaining cooldown.
func (bs *breakerSet) allow(key string) (wait time.Duration, open bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	st, ok := bs.m[key]
	if !ok {
		return 0, false
	}
	if rem := time.Until(st.openUntil); rem > 0 {
		return rem, true
	}
	return 0, false
}

// record feeds one compile outcome into the breaker.  Transient errors
// (cancellation, pool shutdown) say nothing about the key and are
// ignored.
func (bs *breakerSet) record(key string, err error) {
	if err != nil && transientCompileErr(err) {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if err == nil {
		delete(bs.m, key)
		return
	}
	st := bs.m[key]
	if st == nil {
		if len(bs.m) >= breakerMaxKeys {
			bs.pruneLocked()
		}
		st = &breakerState{}
		bs.m[key] = st
	}
	st.fails++
	st.touched = time.Now()
	if st.fails >= bs.threshold {
		st.openUntil = time.Now().Add(bs.cooldown)
		// Half-open: after the cooldown one more failure reopens
		// immediately instead of re-counting from zero.
		st.fails = bs.threshold - 1
	}
}

// pruneLocked drops closed entries that have not failed recently.
func (bs *breakerSet) pruneLocked() {
	cutoff := time.Now().Add(-bs.cooldown)
	now := time.Now()
	for k, st := range bs.m {
		if st.openUntil.Before(now) && st.touched.Before(cutoff) {
			delete(bs.m, k)
		}
	}
}

// transientCompileErr mirrors codecache's transient-warmup filter: these
// outcomes must not move a key's breaker state.
func transientCompileErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, batch.ErrClosed)
}

// Shed priorities: requests carry 0–9 (9 sheds last); tenants default
// from their quota, requests may override per call.
const (
	shedDefaultPriority = 5
	shedLowMinPriority  = 4 // below this sheds at the low watermark
	shedHighMinPriority = 8 // below this sheds at the high watermark
	retryAfterShedMS    = 250
	retryAfterBreakerMS = 500
)

func clampPriority(p int) int {
	if p < 0 {
		return 0
	}
	if p > 9 {
		return 9
	}
	return p
}

// shedCheck applies the load-shedding watermarks to one compile-
// requiring request.
func (s *Server) shedCheck(prio int) *APIError {
	depth := s.queueDepth()
	var min int
	switch {
	case depth >= s.cfg.ShedHighWatermark:
		min = shedHighMinPriority
	case depth >= s.cfg.ShedLowWatermark:
		min = shedLowMinPriority
	default:
		return nil
	}
	if prio >= min {
		return nil
	}
	s.shedded.Inc()
	return apiErr(CodeOverloaded,
		"shedding priority<%d traffic (queue depth %d, priority %d)", min, depth, prio).
		withRetryAfter(retryAfterShedMS)
}

// totalQueueDepth sums the shards' batch queue depths — the signal the
// shed watermarks watch.
func (s *Server) totalQueueDepth() int64 {
	var sum int64
	for _, sh := range s.shards {
		sum += sh.pool.QueueDepth()
	}
	return sum
}

// jitterMS spreads a Retry-After hint ±20% so synchronized clients
// don't retry in lockstep.
func jitterMS(ms int64) int64 {
	if ms <= 0 {
		return ms
	}
	span := ms * 40 / 100
	if span <= 0 {
		return ms
	}
	return ms - span/2 + rand.Int63n(span+1)
}
