package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/flightrec"
	"repro/internal/trace"
)

// The diagnostic bundle is the server's one-request incident artifact:
// a gzipped tar whose entries snapshot everything an operator needs to
// reconstruct what the service was doing — the flight-recorder ring and
// its exemplars (per-request decision chains keyed by request ID), the
// metrics registry (raw and summarized), the lifecycle trace ring, a
// full goroutine dump, the shard/arena/tenant stats document, the SLO
// view, and the journal/snapshot positions that anchor durability
// claims.  It is served at /debug/bundle, captured by the SIGQUIT and
// panic handlers in cmd/vcoded, and saved by the soak drivers on
// failure.

// bundleEntry is one file inside the archive.
type bundleEntry struct {
	name string
	data []byte
}

func jsonEntry(name string, v any) bundleEntry {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b = []byte(fmt.Sprintf("{\"error\": %q}", err.Error()))
	}
	return bundleEntry{name: name, data: b}
}

// bundleEntries assembles the archive contents.  Every entry is built
// from a point-in-time snapshot; failures degrade to an error entry
// rather than aborting the bundle (a partial bundle during an incident
// beats none).
func (s *Server) bundleEntries() []bundleEntry {
	now := time.Now()
	meta := map[string]any{
		"written_at":     now.UTC().Format(time.RFC3339Nano),
		"backend":        s.cfg.Backend,
		"shards":         len(s.shards),
		"uptime_sec":     now.Sub(s.started).Seconds(),
		"pid":            os.Getpid(),
		"go_version":     runtime.Version(),
		"goroutines":     runtime.NumGoroutine(),
		"flight_enabled": flightrec.Enabled(),
		"trace_enabled":  trace.Enabled(),
	}
	entries := []bundleEntry{
		jsonEntry("meta.json", meta),
		jsonEntry("flight.json", flightrec.Events()),
		jsonEntry("exemplars.json", flightrec.Exemplars()),
		jsonEntry("stats.json", s.StatsView()),
		jsonEntry("trace.json", trace.Spans()),
	}

	var metrics bytes.Buffer
	if err := s.cfg.Registry.WriteJSON(&metrics); err == nil {
		entries = append(entries, bundleEntry{name: "metrics.json", data: metrics.Bytes()})
	}
	summary, _ := s.cfg.Registry.SummarySnapshot(50)
	entries = append(entries, jsonEntry("metrics_summary.json", summary))

	if s.slo != nil {
		entries = append(entries, jsonEntry("slo.json", s.slo.View()))
	}

	positions := map[string]any{
		"snapshot_path": s.snapPath,
		"journal_path":  s.jrnlPath,
	}
	if j := s.journal; j != nil {
		positions["journal_lsn"] = j.lsn.Load()
		positions["journal_pending"] = j.pending.Load()
		positions["journal_degraded"] = j.failed.Load()
		positions["journal_rotated"] = j.rotated.Load()
	}
	entries = append(entries, jsonEntry("positions.json", positions))

	var dump bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&dump, 2)
	}
	entries = append(entries, bundleEntry{name: "goroutines.txt", data: dump.Bytes()})
	return entries
}

// WriteBundle streams the gzipped diagnostic archive to w.
func (s *Server) WriteBundle(w *bytes.Buffer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()
	for _, e := range s.bundleEntries() {
		hdr := &tar.Header{
			Name:    e.name,
			Mode:    0o644,
			Size:    int64(len(e.data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if _, err := tw.Write(e.data); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// WriteBundleFile writes the archive atomically (temp file + rename in
// the target directory) so a crash mid-write never leaves a torn
// bundle, and returns the final path.  The filename carries a
// timestamp; dir is created if missing.
func (s *Server) WriteBundleFile(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := s.WriteBundle(&buf); err != nil {
		return "", err
	}
	name := fmt.Sprintf("vcoded-bundle-%s-%s.tar.gz",
		reason, time.Now().UTC().Format("20060102T150405"))
	final := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, ".bundle-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return final, nil
}

// handleBundle serves the archive at /debug/bundle.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.WriteBundle(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="vcoded-bundle.tar.gz"`)
	w.Header().Set("Content-Length", fmt.Sprintf("%d", buf.Len()))
	_, _ = w.Write(buf.Bytes())
}
