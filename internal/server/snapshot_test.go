package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func snapshotConfig() Config {
	return Config{
		Shards:              2,
		WorkersPerShard:     2,
		AllowUnknownTenants: true,
		Registry:            telemetry.NewRegistry(),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.snap")

	// First life: compile two programs (both front ends), run one, save.
	s1, err := New(snapshotConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s1.Restore(""); err != nil {
		t.Fatalf("Restore(empty): %v", err)
	}
	ts1 := newHTTP(t, s1)
	status, out := post(t, ts1, "/v1/exec", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm, "args": []int{6},
	})
	if status != http.StatusOK {
		t.Fatalf("exec: %d %v", status, out)
	}
	keyFact := out["key"].(string)
	status, out = post(t, ts1, "/v1/compile", map[string]any{
		"tenant": "bob", "lang": "tinyc", "source": fibTinyC,
	})
	if status != http.StatusOK {
		t.Fatalf("compile: %d %v", status, out)
	}
	keyFib := out["key"].(string)

	n, err := s1.SaveSnapshot(path)
	if err != nil || n != 2 {
		t.Fatalf("SaveSnapshot = %d, %v; want 2 programs", n, err)
	}
	ts1.Close()
	s1.Close()

	// Second life: restore, then execute by key with no source at all.
	s2, err := New(snapshotConfig())
	if err != nil {
		t.Fatalf("New(2): %v", err)
	}
	defer s2.Close()
	if ready, _ := s2.Health().Ready(); ready {
		t.Fatalf("ready before restore")
	}
	n, err = s2.Restore(path)
	if err != nil || n != 2 {
		t.Fatalf("Restore = %d, %v; want 2 warm programs", n, err)
	}
	if ready, missing := s2.Health().Ready(); !ready {
		t.Fatalf("not ready after restore: %v", missing)
	}
	ts2 := newHTTP(t, s2)
	defer ts2.Close()

	status, out = post(t, ts2, "/v1/exec", map[string]any{
		"tenant": "alice", "key": keyFact, "args": []int{7},
	})
	if status != http.StatusOK {
		t.Fatalf("warm exec fact: %d %v", status, out)
	}
	if got := asInt(t, out["result"]); got != 5040 {
		t.Fatalf("warm fact(7) = %d, want 5040", got)
	}
	if out["cached"] != true {
		t.Fatalf("warm exec was not a cache hit: %v", out)
	}
	status, out = post(t, ts2, "/v1/exec", map[string]any{
		"tenant": "bob", "key": keyFib, "args": []int{10},
	})
	if status != http.StatusOK || asInt(t, out["result"]) != 55 {
		t.Fatalf("warm exec fib: %d %v", status, out)
	}

	// Accounting followed the snapshot: tenants own their restored code.
	alice, _ := s2.tenants.get("alice")
	bob, _ := s2.tenants.get("bob")
	if alice.resident.Load() <= 0 || bob.resident.Load() <= 0 {
		t.Fatalf("restored residency: alice=%d bob=%d", alice.resident.Load(), bob.resident.Load())
	}
	// Every restored program verified as exact or recompiled — none lost.
	if got := s2.snapExact.Load() + s2.snapRecompiled.Load(); got != 2 {
		t.Fatalf("exact+recompiled = %d, want 2", got)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(snapshotConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if _, err := s.Restore(bad); err == nil {
		t.Fatalf("garbage snapshot restored without error")
	}
	// A bad snapshot serves cold, it does not wedge boot.
	if ready, missing := s.Health().Ready(); !ready {
		t.Fatalf("not ready after failed restore: %v", missing)
	}
	if s.snapErrors.Load() == 0 {
		t.Fatalf("restore failure not counted")
	}
}

func TestSnapshotVersionGate(t *testing.T) {
	dir := t.TempDir()
	future := filepath.Join(dir, "future.snap")
	if err := os.WriteFile(future, append([]byte(snapshotMagic), 99), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(future); err == nil {
		t.Fatalf("future snapshot version accepted")
	}
}

func TestSnapshotMissingFileServesCold(t *testing.T) {
	s, err := New(snapshotConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	n, err := s.Restore(filepath.Join(t.TempDir(), "never-written.snap"))
	if err != nil || n != 0 {
		t.Fatalf("missing snapshot: n=%d err=%v", n, err)
	}
	if ready, _ := s.Health().Ready(); !ready {
		t.Fatalf("not ready with no snapshot")
	}
}

// TestSnapshotStatsSurvive exercises /v1/stats after a restore so the
// units map and cache state agree.
func TestSnapshotStatsSurvive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.snap")
	s1, _ := New(snapshotConfig())
	s1.Restore("")
	ts1 := newHTTP(t, s1)
	post(t, ts1, "/v1/compile", map[string]any{
		"tenant": "alice", "lang": "vasm", "source": factVasm,
	})
	if n, err := s1.SaveSnapshot(path); n != 1 || err != nil {
		t.Fatalf("save: %d %v", n, err)
	}
	ts1.Close()
	s1.Close()

	s2, _ := New(snapshotConfig())
	if _, err := s2.Restore(path); err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer s2.Close()
	st := s2.StatsView()
	units := 0
	for _, sh := range st.Shards {
		units += sh.Units
	}
	if units != 1 {
		t.Fatalf("units after restore = %d, want 1", units)
	}
	raw, err := json.Marshal(st)
	if err != nil || len(raw) == 0 {
		t.Fatalf("stats marshal: %v", err)
	}
}
