package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// shard is one compile-and-execute arena: a core.Machine (its own
// simulated memory, trap table and code region), the codecache bound to
// it, and a batch pool bounding compile concurrency.  Content hashes map
// onto shards by hash, so resident code scales horizontally across N
// arenas and eviction pressure in one tenant-heavy shard never touches
// another shard's cache.  Calls serialize per shard (one simulated CPU
// each); N shards give N-way call parallelism.
type shard struct {
	id      int
	machine *core.Machine
	cache   *codecache.Cache
	pool    *batch.Pool

	mu    sync.Mutex
	units map[string]*unit

	// evicted is the server's hook: sibling-function reclamation and
	// tenant residency accounting on cache eviction/invalidation.
	evicted func(u *unit)

	calls    atomic.Uint64
	compiles atomic.Uint64
}

// unit is one resident program: the cache holds its entry function; the
// unit remembers the siblings a multi-function program installed
// alongside, so eviction reclaims the whole program, and the compile
// metadata the warm-cache snapshot serializes.
type unit struct {
	key        string
	tenantName string
	lang       string
	entry      string
	source     string
	entryFn    *core.Func
	fns        []*core.Func
	bytes      int64 // summed SizeBytes over fns

	// durable flips true once the unit's journal record fsynced (or the
	// unit was restored from disk) — the crash-survival guarantee the
	// response's "durable" field reports.
	durable atomic.Bool
	// lsn is the journal sequence number behind the durable ack (0 for
	// units restored from a snapshot or compiled without a journal) — the
	// correlation ID flight-recorder events and bundles carry.
	lsn atomic.Uint64
}

// newShard builds one arena on the given backend.  onCompileResult,
// when non-nil, receives every settled compile flight (the server's
// circuit breaker feeds on it).
func newShard(id int, backend string, workers, maxEntries int, maxBytes int64, backoff time.Duration, reg *telemetry.Registry, onCompileResult func(key string, err error)) (*shard, error) {
	jm, err := jit.NewMachineTarget(backend, mem.Uncosted)
	if err != nil {
		return nil, err
	}
	s := &shard{
		id:      id,
		machine: jm.Core(),
		units:   make(map[string]*unit),
	}
	name := fmt.Sprintf("srv%d", id)
	s.cache = codecache.New(codecache.Config{
		Machine:         s.machine,
		MaxEntries:      maxEntries,
		MaxCodeBytes:    maxBytes,
		Name:            name,
		OnEvict:         s.onEvict,
		FailureBackoff:  backoff,
		OnCompileResult: onCompileResult,
	})
	s.pool, err = batch.New(batch.Config{Machine: s.machine, Workers: workers, Name: name})
	if err != nil {
		return nil, err
	}
	reg.GaugeFunc(fmt.Sprintf("server.shard.%d.code_bytes_resident", id), func() float64 {
		return float64(s.machine.CodeBytesResident())
	})
	reg.GaugeFunc(fmt.Sprintf("server.shard.%d.units", id), func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.units))
	})
	return s, nil
}

// register records a freshly compiled unit.  Called from inside the
// compile flight, before the cache entry becomes ready, so an eviction
// of the key always finds its unit.
func (s *shard) register(u *unit) {
	s.mu.Lock()
	s.units[u.key] = u
	s.mu.Unlock()
	s.compiles.Add(1)
}

// unit returns the resident unit for key, if any.
func (s *shard) unit(key string) *unit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.units[key]
}

// unitDurable reports whether key's unit has its journal record on
// disk (false for unknown keys and for units compiled while the
// journal was degraded).
func (s *shard) unitDurable(key string) bool {
	s.mu.Lock()
	u := s.units[key]
	s.mu.Unlock()
	return u != nil && u.durable.Load()
}

// unitBytes sums the resident units' bytes — the shard side of the
// residency ledger (the tenant side is each tenant's resident counter).
func (s *shard) unitBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for _, u := range s.units {
		sum += u.bytes
	}
	return sum
}

// onEvict is the codecache hook: the cache has already uninstalled the
// entry function; reclaim the program's sibling functions and tell the
// server so tenant residency accounting stays truthful.  Heap-side
// allocations (dispatch tables, data sections) are bump-allocated and
// not reclaimed per program — they are small (a pointer per function
// plus declared data) and bounded by the admission quotas.
func (s *shard) onEvict(key string, fn *core.Func) {
	s.mu.Lock()
	u := s.units[key]
	delete(s.units, key)
	s.mu.Unlock()
	if u == nil {
		return
	}
	for _, f := range u.fns {
		if f != u.entryFn {
			_ = s.machine.Uninstall(f)
		}
	}
	if s.evicted != nil {
		s.evicted(u)
	}
}

// close releases the shard's pool workers.
func (s *shard) close() { s.pool.Close() }

// shardOf maps a content-hash key onto one of n shards (FNV-1a over the
// key, independent of the codecache's internal shard hash).
func shardOf(key string, n int) int {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return int(h % uint64(n))
}
