package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/batch"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/verify"
)

// Code is the wire-level error taxonomy: every failure the server can
// produce maps onto exactly one code, so clients (and the soak driver)
// can classify outcomes without parsing message text.  The codes mirror
// the library error model one-to-one — the verifier's reject, the
// sandbox's fuel/deadline/trap/panic errors, the cache's compile-panic
// recovery — plus the server's own admission and quota rejections.
type Code string

const (
	// CodeBadRequest covers malformed JSON, unknown languages, missing
	// fields, and argument/signature mismatches.
	CodeBadRequest Code = "bad_request"
	// CodeUnknownTenant rejects a tenant the server has no quota row
	// for (when the default tenant is disabled).
	CodeUnknownTenant Code = "unknown_tenant"
	// CodeNotFound reports an entry function absent from the compiled
	// program, or an /v1/call key that is not resident.
	CodeNotFound Code = "not_found"
	// CodeQueueFull is admission backpressure: the shard's compile
	// queue is past its bound.  Served as 429 with Retry-After.
	CodeQueueFull Code = "queue_full"
	// CodeQuotaConcurrency rejects a compile that would exceed the
	// tenant's concurrent-compile quota.  429 with Retry-After.
	CodeQuotaConcurrency Code = "quota_concurrency"
	// CodeQuotaCodeBytes rejects a compile while the tenant is at its
	// resident-code-bytes quota.  429 with Retry-After (eviction or the
	// tenant's own invalidations clear it).
	CodeQuotaCodeBytes Code = "quota_code_bytes"
	// CodeQuotaFuel rejects a request asking for more fuel than the
	// tenant's per-call cap.
	CodeQuotaFuel Code = "quota_fuel"
	// CodeVerifyReject is the pre-install verifier refusing the
	// generated code.
	CodeVerifyReject Code = "verify_reject"
	// CodeCompileError is a front-end compile failure (parse error,
	// codegen error).
	CodeCompileError Code = "compile_error"
	// CodeCompilePanic is a compile callback panic recovered by the
	// cache or the batch pool.
	CodeCompilePanic Code = "compile_panic"
	// CodeFuelExhausted is generated code running past its step budget.
	CodeFuelExhausted Code = "fuel_exhausted"
	// CodeDeadline is the per-call wall deadline or a client
	// cancellation cutting the simulator short.
	CodeDeadline Code = "deadline"
	// CodeTrapPanic is a runtime-helper trap handler panicking during a
	// call (recovered into a typed error by the sandbox).
	CodeTrapPanic Code = "trap_panic"
	// CodeSimPanic is the simulator itself panicking (recovered; must
	// never happen outside fault injection).
	CodeSimPanic Code = "sim_panic"
	// CodeInjectedFault is a deliberate faultinject error surfacing
	// through the pipeline — the soak driver separates these from
	// failures the stack invented.
	CodeInjectedFault Code = "injected_fault"
	// CodeExecError is any other typed execution failure (decode fault
	// on corrupted code, memory bounds, arity mismatch at call time).
	CodeExecError Code = "exec_error"
	// CodeShuttingDown rejects work arriving after shutdown began.
	CodeShuttingDown Code = "shutting_down"
	// CodeRateLimited rejects a request over the tenant's token-bucket
	// rate (requests/sec with burst).  429 with a jittered Retry-After.
	CodeRateLimited Code = "rate_limited"
	// CodeCircuitOpen fast-fails a compile for a key that has failed
	// repeatedly: the per-key circuit breaker is open and the request
	// never reaches the batch pool.  503 with Retry-After.
	CodeCircuitOpen Code = "circuit_open"
	// CodeOverloaded is the global load-shedding watermark rejecting
	// low-priority compile traffic while the batch queues are deep.  503
	// with Retry-After.
	CodeOverloaded Code = "overloaded"
)

// APIError is the typed JSON error body: {"error": {...}}.  RetryAfterMS
// is non-zero only for backpressure codes, and doubles as the
// Retry-After header (rounded up to whole seconds).
type APIError struct {
	Code         Code   `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`

	status int
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Status is the HTTP status the error is served with.
func (e *APIError) Status() int {
	if e.status != 0 {
		return e.status
	}
	return http.StatusInternalServerError
}

// apiErr builds an APIError with the canonical status for its code.
func apiErr(code Code, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...), status: statusFor(code)}
}

func statusFor(code Code) int {
	switch code {
	case CodeBadRequest, CodeQuotaFuel:
		return http.StatusBadRequest
	case CodeUnknownTenant:
		return http.StatusForbidden
	case CodeNotFound:
		return http.StatusNotFound
	case CodeQueueFull, CodeQuotaConcurrency, CodeQuotaCodeBytes, CodeRateLimited:
		return http.StatusTooManyRequests
	case CodeVerifyReject, CodeCompileError, CodeFuelExhausted, CodeExecError:
		return http.StatusUnprocessableEntity
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeShuttingDown, CodeCircuitOpen, CodeOverloaded:
		return http.StatusServiceUnavailable
	default: // compile_panic, trap_panic, sim_panic, injected_fault
		return http.StatusInternalServerError
	}
}

// classify maps any error from the compile/execute pipeline onto the
// wire taxonomy.  An *APIError passes through unchanged (admission and
// quota rejections are born classified).  Order matters: the most
// specific wrappers are probed first, and injected faults are recognized
// before the generic buckets so the soak can tell "failures we caused"
// from "failures the stack invented".
func classify(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	var (
		ve *verify.Error
		cp *codecache.CompilePanicError
		bp *batch.PanicError
		tp *core.TrapPanicError
		sp *core.PanicError
	)
	switch {
	case errors.As(err, &ve):
		return apiErr(CodeVerifyReject, "%v", err)
	case errors.As(err, &cp), errors.As(err, &bp):
		return apiErr(CodeCompilePanic, "%v", err)
	case errors.As(err, &tp):
		return apiErr(CodeTrapPanic, "%v", err)
	case errors.As(err, &sp):
		return apiErr(CodeSimPanic, "%v", err)
	case errors.Is(err, faultinject.ErrInjected):
		return apiErr(CodeInjectedFault, "%v", err)
	case errors.Is(err, core.ErrFuelExhausted):
		return apiErr(CodeFuelExhausted, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return apiErr(CodeDeadline, "%v", err)
	default:
		return apiErr(CodeExecError, "%v", err)
	}
}

// classifyCompile is classify with the residual bucket flipped to
// compile_error — used on the compile path, where an untyped failure is
// a front-end parse/codegen error, not an execution fault.
func classifyCompile(err error) *APIError {
	ae := classify(err)
	if ae.Code == CodeExecError {
		return apiErr(CodeCompileError, "%s", ae.Message)
	}
	return ae
}
