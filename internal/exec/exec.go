// Package exec holds the backend-neutral data types for the predecoded
// direct-threaded execution engine (ROADMAP item 1).
//
// The fetch/switch simulators re-decode every raw uint32 word on every
// retired instruction.  The threaded engine instead pays decode cost
// once, at install time: each verified function body is unpacked into a
// flat contiguous []Instr — one struct per word, operands extracted,
// static branch targets pre-resolved to array indices — and execution
// becomes a tight loop over a dense opcode-indexed table of handler
// function pointers (the minijit "VMCodeGen" idiom: contiguous memory,
// locality, fewer per-instruction checks).
//
// This package deliberately imports nothing from internal/core: core
// caches *Body values beside installed code, the three backend packages
// build and run them, and the import graph stays acyclic
// (backend -> exec, core -> exec, backend -> core).
//
// The raw-word interpreters remain the verification oracle — see
// internal/exec/diff for the differential harness that requires
// bit-identical architectural state from both engines.
package exec

import "unsafe"

// Handler results / pre-resolved target sentinels.  An Instr.Target of
// External means the statically-known destination lies outside the body
// (the address is carried in Imm); handlers also return External for
// runtime-computed transfers that leave the body, after depositing the
// destination address in the CPU's external-target slot.
const (
	// NoBranch, as a handler result, means "no control transfer":
	// execution falls through to the next array element.
	NoBranch int32 = -1
	// External marks a control transfer whose destination is outside
	// this body.
	External int32 = -2
)

// NoReg is the sentinel for "no register" in the interlock metadata
// fields (SrcA/SrcB/LoadReg).  Real register numbers are <= 31, so 0xff
// can never collide; int8(NoReg) == -1, which is exactly the "no
// pending load" value the switch interpreters keep in lastLoad.
const NoReg uint8 = 0xff

// OpTableSize is the dispatch-table length every backend declares: a
// power of two no smaller than any backend's opcode count, so the hot
// loop can index its table with Op & OpMask and the compiler elides the
// bounds check.  Predecoders only assign opcodes below their backend's
// count (each backend static-asserts that fits), so the mask never
// changes which handler runs.
const (
	OpTableSize = 128
	OpMask      = OpTableSize - 1
)

// Instr flags.
const (
	// FImm marks the immediate/literal operand form of an instruction
	// whose second source is otherwise a register (SPARC operand2,
	// Alpha operate literals).
	FImm uint8 = 1 << 0
)

// Instr is one predecoded instruction.  Field meaning is backend- and
// opcode-specific (the predecoder and the handler table for a backend
// agree on the convention); the shared shape is:
//
//	Op      dense backend-local opcode, the handler-table index
//	A, B, C unpacked register operands (sources / destination)
//	Imm     sign-extended immediate, shift count, or — for a static
//	        control transfer that leaves the body — the target address;
//	        for a malformed encoding, the raw word (so the error
//	        handler reproduces the oracle's exact message)
//	Target  pre-resolved static branch destination: an in-body array
//	        index, or External (address in Imm); 0 for non-transfers
//	PC      the instruction's own address (link values, error text)
//	SrcA/SrcB  consumer registers checked against the load-interlock
//	        (NoReg when the backend charges no stall on that slot)
//	LoadReg the interlock-producing destination of a tracked load
//	        (NoReg otherwise)
//
// There is no fall-through field: the next instruction is always the
// next array element (the dispatch loops increment the index), and the
// raw word survives only inside Imm for malformed encodings.  Both were
// dropped deliberately to pin the struct at 32 bytes — two per cache
// line, shift-indexed — which is measurable at threaded dispatch rates;
// the assertion below refuses to compile if a field pushes it past 32.
type Instr struct {
	Imm     int64
	PC      uint64
	Target  int32
	Op      uint16
	Flags   uint8
	A, B, C uint8
	SrcA    uint8
	SrcB    uint8
	LoadReg uint8
}

// Compile-time pin: Instr must stay exactly 32 bytes.
var _ [32 - unsafe.Sizeof(Instr{})]byte
var _ [unsafe.Sizeof(Instr{}) - 32]byte

// Body is the predecoded form of one installed function: Code[i]
// corresponds to the word at Base + 4*i.
type Body struct {
	Base uint64
	Code []Instr
}

// End returns the first address past the body.
func (b *Body) End() uint64 { return b.Base + 4*uint64(len(b.Code)) }

// Contains reports whether pc addresses a word inside the body.
func (b *Body) Contains(pc uint64) bool {
	return pc >= b.Base && pc < b.End() && (pc-b.Base)%4 == 0
}

// IndexOf maps an in-body pc to its Code index.  The caller must have
// checked Contains.
func (b *Body) IndexOf(pc uint64) int { return int(pc-b.Base) / 4 }

// ResolveTarget classifies a statically-known branch destination:
// in-body aligned targets become array indices, everything else is
// External with the raw address preserved in the instruction's Imm (the
// caller stores it).
func ResolveTarget(base uint64, n int, target uint64) (int32, bool) {
	if target >= base && target < base+4*uint64(n) && (target-base)%4 == 0 {
		return int32((target - base) / 4), true
	}
	return External, false
}
