package diff

import (
	"encoding/binary"
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/regtest"
	"repro/internal/sparc"
)

// fuzzTarget is one backend's CPU constructor for the CPU-level
// differential driver (no Machine, no traps — raw word sequences).
type fuzzTarget struct {
	name string
	big  bool
	mk   func(m *mem.Memory) core.CPU
}

func fuzzTargets() []fuzzTarget {
	return []fuzzTarget{
		{"mips", false, func(m *mem.Memory) core.CPU { return mips.NewCPU(m) }},
		{"sparc", true, func(m *mem.Memory) core.CPU { return sparc.NewCPU(m) }},
		{"alpha", false, func(m *mem.Memory) core.CPU { return alpha.NewCPU(m) }},
	}
}

// diffWords runs the same word sequence on two identical CPUs — one via
// the fetch/switch Step oracle, one via Predecode+RunBody — and fails
// on any divergence in error text, registers, counters, PC, or memory.
// The driver falls back to Step whenever the PC leaves the predecoded
// body or a delay pair is in flight, exactly as Machine.run does.
func diffWords(t *testing.T, ft fuzzTarget, words []uint32) {
	t.Helper()
	const base = 0x1000
	const insnCap = 256

	image := make([]byte, 4*len(words))
	for i, w := range words {
		if ft.big {
			binary.BigEndian.PutUint32(image[4*i:], w)
		} else {
			binary.LittleEndian.PutUint32(image[4*i:], w)
		}
	}
	m1, m2 := mem.New(1<<16, ft.big), mem.New(1<<16, ft.big)
	if err := m1.WriteBytes(base, image); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteBytes(base, image); err != nil {
		t.Fatal(err)
	}
	c1, c2 := ft.mk(m1), ft.mk(m2)
	for _, c := range []core.CPU{c1, c2} {
		// Point a few registers at mapped memory so loads and stores
		// sometimes land, and give the FP bank nonzero contents.
		c.SetReg(core.GPR(4), 0x2000)
		c.SetReg(core.GPR(5), 0x2004)
		c.SetReg(core.GPR(9), 0x2010)
		c.SetFReg(core.FPR(2), 0x400921fb54442d18, true) // pi bits
		c.SetPC(base)
	}
	tc, ok := c2.(core.ThreadedCPU)
	if !ok {
		t.Fatalf("%s: CPU does not implement ThreadedCPU", ft.name)
	}
	body := tc.Predecode(words, base)

	var err1 error
	for c1.Insns() < insnCap {
		if err := c1.Step(); err != nil {
			err1 = err
			break
		}
	}
	var err2 error
	for tc.Insns() < insnCap {
		pc := tc.PC()
		if tc.PendingDelay() || !body.Contains(pc) {
			if err := c2.Step(); err != nil {
				err2 = err
				break
			}
			continue
		}
		if _, err := tc.RunBody(body, body.IndexOf(pc), insnCap-tc.Insns()); err != nil {
			err2 = err
			break
		}
	}

	if d := ErrDiff(err1, err2); d != "" {
		t.Fatalf("%s: %s", ft.name, d)
	}
	if d := StateDiff(c1, c2); d != "" {
		t.Fatalf("%s: state diverged:\n%s", ft.name, d)
	}
	b1, _ := m1.Bytes(0, int(m1.Size()))
	b2, _ := m2.Bytes(0, int(m2.Size()))
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("%s: memory diverged at %#x: switch=%#x threaded=%#x", ft.name, i, b1[i], b2[i])
		}
	}
}

// FuzzExecDifferential feeds arbitrary word sequences through both
// execution engines on all three backends; any architectural-state
// divergence — including error text, cycle counts and the load-use
// interlock's stall cycles — fails the run.  This is the adversarial
// complement to TestDifferentialEngines' generated-program sweep: the
// fuzzer explores malformed encodings, wild branches and partial delay
// pairs that no code generator emits.
func FuzzExecDifferential(f *testing.F) {
	// Seed with real generated code from each backend (raw words are
	// cross-fed to the other two, which is itself a useful corner) plus
	// boundary patterns.
	for _, tg := range regtest.Targets() {
		if fn, err := regtest.BuildALU(tg.Backend, core.OpAdd, core.TypeI); err == nil {
			f.Add(wordBytes(fn.Words))
		}
		if fn, err := regtest.BuildMemRoundtrip(tg.Backend, core.TypeS); err == nil {
			f.Add(wordBytes(fn.Words))
		}
		if fn, err := buildLoop(tg.Backend); err == nil {
			f.Add(wordBytes(fn.Words))
		}
	}
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add(wordBytes([]uint32{0x80000000, 0x0000003f, 0x45000000, 0xc1a00000}))

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n == 0 {
			return
		}
		if n > 16 {
			n = 16
		}
		words := make([]uint32, n)
		for i := range words {
			words[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		for _, ft := range fuzzTargets() {
			diffWords(t, ft, words)
		}
	})
}

func wordBytes(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}
