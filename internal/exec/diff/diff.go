// Package diff is the differential harness for the two execution
// engines: the per-instruction fetch/switch Step loop (the oracle) and
// the predecoded direct-threaded engine (internal/exec plus each
// backend's threaded.go).  Every program must leave bit-identical
// architectural state — registers, memory, PC, trap behavior, fuel
// accounting and cycle counts — under both engines on all three
// targets; any divergence is a bug in the threaded engine, since the
// switch CPUs are the reference the regression tests and fuzzers
// already pin down.
package diff

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// StateDiff renders every architectural-state difference between two
// CPUs of the same backend, or "" when they are bit-identical.  It
// compares PC, retired-instruction and cycle counters, all 32 integer
// registers and all 32 floating-point registers (full 64-bit contents).
func StateDiff(sw, th core.CPU) string {
	var b strings.Builder
	if sw.PC() != th.PC() {
		fmt.Fprintf(&b, "pc: switch=%#x threaded=%#x\n", sw.PC(), th.PC())
	}
	if sw.Insns() != th.Insns() {
		fmt.Fprintf(&b, "insns: switch=%d threaded=%d\n", sw.Insns(), th.Insns())
	}
	if sw.Cycles() != th.Cycles() {
		fmt.Fprintf(&b, "cycles: switch=%d threaded=%d\n", sw.Cycles(), th.Cycles())
	}
	for i := 0; i < 32; i++ {
		if a, c := sw.Reg(core.GPR(i)), th.Reg(core.GPR(i)); a != c {
			fmt.Fprintf(&b, "r%d: switch=%#x threaded=%#x\n", i, a, c)
		}
	}
	for i := 0; i < 32; i++ {
		if a, c := sw.FReg(core.FPR(i), true), th.FReg(core.FPR(i), true); a != c {
			fmt.Fprintf(&b, "f%d: switch=%#x threaded=%#x\n", i, a, c)
		}
	}
	return b.String()
}

// ErrDiff compares two error outcomes by text ("" for nil), which pins
// both the fault classification and the faulting PC embedded in the
// message.
func ErrDiff(sw, th error) string {
	a, b := errText(sw), errText(th)
	if a == b {
		return ""
	}
	return fmt.Sprintf("error: switch=%q threaded=%q\n", a, b)
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
