package diff

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/regtest"
)

// enginePair is one target's two machines: identical except for the
// engine executing installed code.
type enginePair struct {
	sw, th *core.Machine
}

func newPair(t *testing.T, tg regtest.Target) enginePair {
	t.Helper()
	sw := tg.NewMachine()
	if err := sw.SetEngine(core.EngineSwitch); err != nil {
		t.Fatalf("%s: SetEngine(switch): %v", tg.Name, err)
	}
	th := tg.NewMachine()
	if th.Engine() != core.EngineThreaded {
		t.Fatalf("%s: threaded engine is not the default (got %s)", tg.Name, th.Engine())
	}
	return enginePair{sw: sw, th: th}
}

// run builds the program twice (once per machine — a *Func belongs to
// one machine once installed), calls it under both engines with the
// same arguments, and requires identical results, error text, per-call
// cycle/instruction deltas, and full architectural CPU state.  With
// checkMem it also requires byte-identical simulated memories.
func (p enginePair) run(t *testing.T, name string, build func() (*core.Func, error),
	opts core.CallOpts, checkMem bool, args ...core.Value) {
	t.Helper()
	f1, err := build()
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	f2, err := build()
	if err != nil {
		t.Fatalf("%s: rebuild: %v", name, err)
	}
	v1, st1, err1 := p.sw.CallWithStats(context.Background(), opts, f1, args...)
	v2, st2, err2 := p.th.CallWithStats(context.Background(), opts, f2, args...)
	if d := ErrDiff(err1, err2); d != "" {
		t.Fatalf("%s: %s", name, d)
	}
	if err1 == nil && v1 != v2 {
		t.Fatalf("%s: result: switch=%+v threaded=%+v", name, v1, v2)
	}
	if st1.Cycles != st2.Cycles || st1.Insns != st2.Insns {
		t.Fatalf("%s: stats: switch={cycles %d insns %d} threaded={cycles %d insns %d}",
			name, st1.Cycles, st1.Insns, st2.Cycles, st2.Insns)
	}
	if d := StateDiff(p.sw.CPU(), p.th.CPU()); d != "" {
		t.Fatalf("%s: state diverged:\n%s", name, d)
	}
	if checkMem {
		m1, _ := p.sw.Mem().Bytes(0, int(p.sw.Mem().Size()))
		m2, _ := p.th.Mem().Bytes(0, int(p.th.Mem().Size()))
		if !bytes.Equal(m1, m2) {
			t.Fatalf("%s: simulated memories diverged", name)
		}
	}
}

// TestDifferentialEngines sweeps the regtest program generators — the
// full op × type matrix, conversions, memory round-trips and
// calling-convention stress — over all three targets, requiring the
// threaded engine to match the fetch/switch oracle bit for bit.
func TestDifferentialEngines(t *testing.T) {
	memTypes := []core.Type{
		core.TypeC, core.TypeUC, core.TypeS, core.TypeUS,
		core.TypeI, core.TypeU, core.TypeL, core.TypeUL,
		core.TypeP, core.TypeF, core.TypeD,
	}
	allTypes := []core.Type{
		core.TypeI, core.TypeU, core.TypeL, core.TypeUL,
		core.TypeP, core.TypeF, core.TypeD,
	}
	for _, tg := range regtest.Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			p := newPair(t, tg)
			bk := tg.Backend
			pb := bk.PtrBytes()

			for _, op := range regtest.BinaryOps() {
				for _, ty := range regtest.ALUTypes(op) {
					xs := regtest.Samples(ty, 4, rng)
					ys := regtest.Samples(ty, 4, rng)
					name := regtest.CaseName(tg.Name, op, ty)
					for i := 0; i < 2; i++ {
						x := regtest.MakeValue(ty, xs[i], pb)
						y := regtest.MakeValue(ty, ys[len(ys)-1-i], pb)
						p.run(t, fmt.Sprintf("%s#%d", name, i), func() (*core.Func, error) {
							return regtest.BuildALU(bk, op, ty)
						}, core.CallOpts{}, false, x, y)
					}
					// Division by zero routes through the trap helpers
					// (an external control transfer out of the body).
					if op == core.OpDiv || op == core.OpMod {
						if !ty.IsFloat() {
							x := regtest.MakeValue(ty, xs[0], pb)
							p.run(t, name+"#zero", func() (*core.Func, error) {
								return regtest.BuildALU(bk, op, ty)
							}, core.CallOpts{}, false, x, regtest.MakeValue(ty, 0, pb))
						}
					}
					if !ty.IsFloat() {
						imm := int64(int8(xs[2]))
						if (op == core.OpLsh || op == core.OpRsh) && imm < 0 {
							imm = -imm % int64(regtest.WordBits(ty, pb))
						}
						if (op == core.OpDiv || op == core.OpMod) && imm == 0 {
							imm = 3
						}
						x := regtest.MakeValue(ty, xs[3], pb)
						p.run(t, name+"#imm", func() (*core.Func, error) {
							return regtest.BuildALUImm(bk, op, ty, imm)
						}, core.CallOpts{}, false, x)
					}
				}
			}

			for _, op := range regtest.BranchOps() {
				for _, ty := range allTypes {
					xs := regtest.Samples(ty, 2, rng)
					name := regtest.CaseName(tg.Name, op, ty)
					x := regtest.MakeValue(ty, xs[0], pb)
					y := regtest.MakeValue(ty, xs[1], pb)
					p.run(t, name, func() (*core.Func, error) {
						return regtest.BuildBranch(bk, op, ty)
					}, core.CallOpts{}, false, x, y)
					p.run(t, name+"#eq", func() (*core.Func, error) {
						return regtest.BuildBranch(bk, op, ty)
					}, core.CallOpts{}, false, x, x)
				}
			}

			for _, op := range []core.Op{core.OpMov, core.OpCom, core.OpNot, core.OpNeg} {
				for _, ty := range allTypes {
					if ty.IsFloat() && op != core.OpMov && op != core.OpNeg {
						continue
					}
					if ty == core.TypeP && op != core.OpMov {
						continue
					}
					if _, err := regtest.BuildUnary(bk, op, ty); err != nil {
						continue // op × type combination outside the core set
					}
					xs := regtest.Samples(ty, 1, rng)
					p.run(t, regtest.CaseName(tg.Name, op, ty), func() (*core.Func, error) {
						return regtest.BuildUnary(bk, op, ty)
					}, core.CallOpts{}, false, regtest.MakeValue(ty, xs[0], pb))
				}
			}

			for _, from := range allTypes {
				for _, to := range allTypes {
					if from == to {
						continue
					}
					if _, err := regtest.BuildCvt(bk, from, to); err != nil {
						continue // unsupported conversion on this target
					}
					xs := regtest.Samples(from, 1, rng)
					name := fmt.Sprintf("%s/cvt%s2%s", tg.Name, from.Letter(), to.Letter())
					p.run(t, name, func() (*core.Func, error) {
						return regtest.BuildCvt(bk, from, to)
					}, core.CallOpts{}, false, regtest.MakeValue(from, xs[0], pb))
				}
			}

			ptr1, err := p.sw.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			ptr2, err := p.th.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if ptr1 != ptr2 {
				t.Fatalf("heap layouts diverged: %#x vs %#x", ptr1, ptr2)
			}
			for _, ty := range memTypes {
				at := regtest.ArgTypeFor(ty)
				xs := regtest.Samples(at, 1, rng)
				pv := core.P(ptr1)
				x := regtest.MakeValue(at, xs[0], pb)
				p.run(t, fmt.Sprintf("%s/mem%s", tg.Name, ty.Letter()), func() (*core.Func, error) {
					return regtest.BuildMemRoundtrip(bk, ty)
				}, core.CallOpts{}, true, pv, x)
				off := core.P(8)
				off.T = core.TypeP
				p.run(t, fmt.Sprintf("%s/memrr%s", tg.Name, ty.Letter()), func() (*core.Func, error) {
					return regtest.BuildMemRoundtripRR(bk, ty)
				}, core.CallOpts{}, true, pv, off, x)
			}

			params := []core.Type{core.TypeI, core.TypeF, core.TypeD, core.TypeU, core.TypeL}
			sumArgs := make([]core.Value, len(params))
			for i, ty := range params {
				sumArgs[i] = regtest.MakeValue(ty, regtest.Samples(ty, 1, rng)[0], pb)
			}
			p.run(t, tg.Name+"/weightedsum", func() (*core.Func, error) {
				return regtest.BuildWeightedSum(bk, params)
			}, core.CallOpts{}, true, sumArgs...)
		})
	}
}

// buildLoop generates fn(n) { acc = 0; while n > 0 { acc += n; n-- };
// return acc } — backward branches keep control inside one predecoded
// body, the hot path the threaded engine exists for.
func buildLoop(bk core.Backend) (*core.Func, error) {
	a := core.NewAsm(bk)
	a.SetName("countdown")
	args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
	if err != nil {
		return nil, err
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	a.SetI(core.TypeI, acc, 0)
	top, done := a.NewLabel(), a.NewLabel()
	a.Bind(top)
	a.BrI(core.OpBle, core.TypeI, args[0], 0, done)
	a.ALU(core.OpAdd, core.TypeI, acc, acc, args[0])
	a.ALUI(core.OpSub, core.TypeI, args[0], args[0], 1)
	a.Jmp(top)
	a.Bind(done)
	a.Ret(core.TypeI, acc)
	return a.End()
}

// TestDifferentialLoops runs a tight loop under both engines and
// requires identical results and state, including under per-call fuel
// limits that can expire at every instruction boundary — on the
// delay-slot targets that includes mid-branch-pair, exercising the
// threaded engine's materialized-delay exit path.
func TestDifferentialLoops(t *testing.T) {
	for _, tg := range regtest.Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			p := newPair(t, tg)
			build := func() (*core.Func, error) { return buildLoop(tg.Backend) }

			p.run(t, "loop50", build, core.CallOpts{}, false, core.I(50))
			p.run(t, "loop0", build, core.CallOpts{}, false, core.I(0))

			// Fuel sweep: every exit point in the loop body.
			for fuel := uint64(1); fuel <= 64; fuel++ {
				p.run(t, fmt.Sprintf("fuel%d", fuel), build,
					core.CallOpts{Fuel: fuel}, false, core.I(1000))
			}
			// A tiny poll stride forces the threaded engine to slice its
			// dispatch windows without changing architectural results.
			p.run(t, "stride1", build,
				core.CallOpts{PollStride: 1}, false, core.I(200))
		})
	}
}

// TestDifferentialProbes verifies that the PC-sampling and
// edge-profiling countdown probes observe the identical event streams
// under both engines.
func TestDifferentialProbes(t *testing.T) {
	for _, tg := range regtest.Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			p := newPair(t, tg)

			type edge struct {
				pc    uint64
				taken bool
			}
			var samples [2][]uint64
			var edges [2][]edge
			for i, m := range []*core.Machine{p.sw, p.th} {
				i := i
				if err := m.SetSampler(func(pc uint64) { samples[i] = append(samples[i], pc) }, 7); err != nil {
					t.Fatal(err)
				}
				if err := m.SetEdgeProbe(func(pc uint64, taken bool) { edges[i] = append(edges[i], edge{pc, taken}) }, 3); err != nil {
					t.Fatal(err)
				}
			}
			build := func() (*core.Func, error) { return buildLoop(tg.Backend) }
			p.run(t, "probed-loop", build, core.CallOpts{}, false, core.I(100))

			if len(samples[0]) == 0 {
				t.Fatal("sampler never fired on the switch engine")
			}
			if len(edges[0]) == 0 {
				t.Fatal("edge probe never fired on the switch engine")
			}
			if fmt.Sprint(samples[0]) != fmt.Sprint(samples[1]) {
				t.Fatalf("sample streams diverged:\nswitch:   %v\nthreaded: %v", samples[0], samples[1])
			}
			if fmt.Sprint(edges[0]) != fmt.Sprint(edges[1]) {
				t.Fatalf("edge streams diverged:\nswitch:   %v\nthreaded: %v", edges[0], edges[1])
			}
		})
	}
}
