package sparc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// FuzzStep executes arbitrary instruction words on the simulator: every
// word must either execute or come back as a typed error.  A panic — the
// failure mode this hardening pass eliminates — fails the run.
func FuzzStep(f *testing.F) {
	// Seed with real encodings from the backend so the fuzzer starts
	// inside the decoded space, plus the corner patterns.
	a := core.NewAsm(New())
	if args, err := a.Begin("%i%i", core.Leaf); err == nil {
		a.Addi(args[0], args[0], args[1])
		a.Muli(args[0], args[0], args[1])
		a.Ldui(args[0], args[1], 8)
		a.Stui(args[0], args[1], 8)
		a.Bltii(args[0], 3, a.NewLabel())
		a.Reti(args[0])
		if fn, err := a.End(); err == nil {
			for _, w := range fn.Words {
				f.Add(w, w)
			}
		}
	}
	for _, w := range []uint32{0, 0xffffffff, 0x80000000, 0x0000003f, 0x45000000} {
		f.Add(w, ^w)
	}
	f.Fuzz(func(t *testing.T, w1, w2 uint32) {
		m := mem.New(1<<16, true)
		cpu := NewCPU(m)
		const base = 0x100
		m.WriteBytes(base, []byte{
			byte(w1), byte(w1 >> 8), byte(w1 >> 16), byte(w1 >> 24),
			byte(w2), byte(w2 >> 8), byte(w2 >> 16), byte(w2 >> 24),
		})
		// Point a few registers at mapped memory so loads and stores
		// sometimes land; the rest stay zero.
		cpu.SetReg(core.GPR(4), 0x200)
		cpu.SetReg(core.GPR(5), 0x204)
		cpu.SetPC(base)
		for i := 0; i < 32; i++ {
			if err := cpu.Step(); err != nil {
				return
			}
		}
	})
}
