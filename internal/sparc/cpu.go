package sparc

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mem"
)

// CPU is a cycle-counted SPARC V8 simulator (flat model: no register
// windows — save/restore fault, which the VCODE flat port never emits).
// It executes branch delay slots, the Y-register multiply/divide protocol,
// and the FP condition-code protocol.
type CPU struct {
	r [32]uint64 // low 32 bits significant
	f [32]uint32 // FP bank; doubles occupy even/odd pairs (even = MSW)
	y uint32
	// icc flags.
	n, z, v, c bool
	fcc        uint8 // 0 =, 1 <, 2 >, 3 unordered

	pc          uint64
	inDelay     bool
	delayTarget uint64

	// extPC holds the destination of a control transfer that leaves the
	// current predecoded body (threaded engine only; see threaded.go).
	extPC uint64

	m          *mem.Memory
	baseCycles uint64
	insns      uint64
	lastLoad   int

	// PC-sampling hook (core.SamplingCPU).
	sampleFn    func(pc uint64)
	sampleEvery uint64
	sampleLeft  uint64

	// Branch edge probe (core.EdgeProfilingCPU).
	edgeFn    func(pc uint64, taken bool)
	edgeEvery uint64
	edgeLeft  uint64
}

// SetSampler installs fn to be called with the pre-execution program
// counter every stride retired instructions; nil fn or zero stride
// disables sampling.
func (c *CPU) SetSampler(fn func(pc uint64), stride uint64) {
	if fn == nil || stride == 0 {
		c.sampleFn, c.sampleEvery, c.sampleLeft = nil, 0, 0
		return
	}
	c.sampleFn, c.sampleEvery, c.sampleLeft = fn, stride, stride
}

// SetEdgeProbe installs fn to be called with (branch PC, taken) every
// stride conditional-branch resolutions; nil fn or zero stride disables
// the probe.
func (c *CPU) SetEdgeProbe(fn func(pc uint64, taken bool), stride uint64) {
	if fn == nil || stride == 0 {
		c.edgeFn, c.edgeEvery, c.edgeLeft = nil, 0, 0
		return
	}
	c.edgeFn, c.edgeEvery, c.edgeLeft = fn, stride, stride
}

// edge is the countdown-gated probe call at conditional-branch
// resolution.
func (c *CPU) edge(pc uint64, taken bool) {
	// Split guard/slow-path so the no-probe case inlines into the branch
	// handlers: with no edge probe attached this is a loaded-field test,
	// not a call, and branch resolution is the threaded engine's hottest
	// non-ALU operation.
	if c.edgeEvery == 0 {
		return
	}
	c.edgeSlow(pc, taken)
}

func (c *CPU) edgeSlow(pc uint64, taken bool) {
	if c.edgeLeft--; c.edgeLeft == 0 {
		c.edgeLeft = c.edgeEvery
		c.edgeFn(pc, taken)
	}
}

// NewCPU returns a simulator bound to m.
func NewCPU(m *mem.Memory) *CPU { return &CPU{m: m, lastLoad: -1} }

// PC returns the program counter.
func (c *CPU) PC() uint64 { return c.pc }

// SetPC jumps the simulator.
func (c *CPU) SetPC(pc uint64) { c.pc = pc; c.inDelay = false }

// Reg reads an integer register.
func (c *CPU) Reg(r core.Reg) uint64 { return c.r[r.Num()&31] }

// SetReg writes an integer register.
func (c *CPU) SetReg(r core.Reg, v uint64) {
	if n := r.Num(); n != 0 {
		c.r[n&31] = uint64(uint32(v))
	}
}

// FReg reads an FP register: singles from the named register, doubles
// from the even/odd pair (even register holds the most significant word).
func (c *CPU) FReg(r core.Reg, double bool) uint64 {
	n := r.Num()
	if double {
		return uint64(c.f[n])<<32 | uint64(c.f[n|1])
	}
	return uint64(c.f[n])
}

// SetFReg writes an FP register or pair.
func (c *CPU) SetFReg(r core.Reg, v uint64, double bool) {
	n := r.Num()
	if double {
		c.f[n] = uint32(v >> 32)
		c.f[n|1] = uint32(v)
		return
	}
	c.f[n] = uint32(v)
}

// Cycles returns cycles including memory stalls.
func (c *CPU) Cycles() uint64 { return c.baseCycles + c.m.PenaltyCycles() }

// Insns returns retired instructions.
func (c *CPU) Insns() uint64 { return c.insns }

// ResetStats zeroes counters.
func (c *CPU) ResetStats() { c.baseCycles, c.insns = 0, 0; c.m.ResetStats() }

func (c *CPU) ru(n uint32) uint32 { return uint32(c.r[n]) }

func (c *CPU) wr(n, v uint32) {
	if n != 0 {
		c.r[n] = uint64(v)
	}
}

// fdouble/wfdouble access an even/odd register pair.  The architecture
// requires double operands in even-aligned pairs; forcing the alignment
// here (n&^1, n|1) keeps an odd register number in a hand-crafted word
// from indexing past the register file.
func (c *CPU) fdouble(n uint32) float64 {
	return math.Float64frombits(uint64(c.f[n&^1])<<32 | uint64(c.f[n|1]))
}

func (c *CPU) wfdouble(n uint32, v float64) {
	bits := math.Float64bits(v)
	c.f[n&^1] = uint32(bits >> 32)
	c.f[n|1] = uint32(bits)
}

func (c *CPU) fsingle(n uint32) float32     { return math.Float32frombits(c.f[n]) }
func (c *CPU) wfsingle(n uint32, v float32) { c.f[n] = math.Float32bits(v) }

func (c *CPU) takenI(cond uint32) bool {
	lt := c.n != c.v
	switch cond {
	case condA:
		return true
	case condN:
		return false
	case condE:
		return c.z
	case condNE:
		return !c.z
	case condL:
		return lt
	case condGE:
		return !lt
	case condLE:
		return c.z || lt
	case condG:
		return !(c.z || lt)
	case condCS:
		return c.c
	case condCC:
		return !c.c
	case condLEU:
		return c.c || c.z
	case condGU:
		return !(c.c || c.z)
	}
	return false
}

func (c *CPU) takenF(cond uint32) bool {
	switch cond {
	case fcondE:
		return c.fcc == 0
	case fcondNE:
		return c.fcc != 0
	case fcondL:
		return c.fcc == 1
	case fcondLE:
		return c.fcc == 0 || c.fcc == 1
	case fcondG:
		return c.fcc == 2
	case fcondGE:
		return c.fcc == 0 || c.fcc == 2
	}
	return false
}

// Step executes one instruction.
func (c *CPU) Step() error {
	w, err := c.m.FetchWord(c.pc)
	if err != nil {
		return fmt.Errorf("sparc: fetch at %#x: %w", c.pc, err)
	}
	c.insns++
	c.baseCycles++
	if c.sampleEvery != 0 {
		if c.sampleLeft--; c.sampleLeft == 0 {
			c.sampleLeft = c.sampleEvery
			c.sampleFn(c.pc)
		}
	}

	var target uint64
	hasTarget := false

	op := w >> 30
	switch op {
	case 0:
		op2 := w >> 22 & 7
		switch op2 {
		case 4: // sethi
			rd := w >> 25 & 31
			c.wr(rd, w<<10)
		case 2, 6: // Bicc / FBfcc
			cond := w >> 25 & 0xf
			disp := int64(int32(w<<10) >> 10) // sign-extend disp22
			taken := false
			if op2 == 2 {
				taken = c.takenI(cond)
			} else {
				taken = c.takenF(cond)
			}
			c.edge(c.pc, taken)
			if taken {
				target = uint64(int64(c.pc) + disp*4)
				hasTarget = true
			}
		default:
			return fmt.Errorf("sparc: unknown op2 %d at %#x", op2, c.pc)
		}
	case 1: // call
		disp := int64(int32(w<<2) >> 2)
		c.wr(rO7, uint32(c.pc))
		target = uint64(int64(c.pc) + disp*4)
		hasTarget = true
	case 2:
		if err := c.arith(w, &target, &hasTarget); err != nil {
			return err
		}
	case 3:
		if err := c.memOp(w); err != nil {
			return err
		}
	}

	switch {
	case c.inDelay:
		c.pc = c.delayTarget
		c.inDelay = false
		if hasTarget {
			return fmt.Errorf("sparc: branch in delay slot at %#x", c.pc)
		}
	case hasTarget:
		c.inDelay = true
		c.delayTarget = target
		c.pc += 4
	default:
		c.pc += 4
	}
	return nil
}

func (c *CPU) operand2(w uint32) uint32 {
	if w>>13&1 == 1 {
		return uint32(int32(w<<19) >> 19) // sign-extended simm13
	}
	return c.ru(w & 31)
}

func (c *CPU) arith(w uint32, target *uint64, hasTarget *bool) error {
	rd := w >> 25 & 31
	op3 := w >> 19 & 0x3f
	rs1 := w >> 14 & 31
	a := c.ru(rs1)
	b := c.operand2(w)

	switch op3 {
	case op3Add:
		c.wr(rd, a+b)
	case op3Sub:
		c.wr(rd, a-b)
	case op3And:
		c.wr(rd, a&b)
	case op3Andn:
		c.wr(rd, a&^b)
	case op3Or:
		c.wr(rd, a|b)
	case op3Xor:
		c.wr(rd, a^b)
	case op3Xnor:
		c.wr(rd, ^(a ^ b))
	case 0x08: // addx
		x := uint32(0)
		if c.c {
			x = 1
		}
		c.wr(rd, a+b+x)
	case op3AddCC:
		r := a + b
		c.wr(rd, r)
		c.n, c.z = int32(r) < 0, r == 0
		c.v = (a>>31 == b>>31) && (r>>31 != a>>31)
		c.c = r < a
	case op3SubCC:
		r := a - b
		c.wr(rd, r)
		c.n, c.z = int32(r) < 0, r == 0
		c.v = (a>>31 != b>>31) && (r>>31 != a>>31)
		c.c = a < b
	case op3Sll:
		c.wr(rd, a<<(b&31))
	case op3Srl:
		c.wr(rd, a>>(b&31))
	case op3Sra:
		c.wr(rd, uint32(int32(a)>>(b&31)))
	case op3Umul:
		p := uint64(a) * uint64(b)
		c.y = uint32(p >> 32)
		c.wr(rd, uint32(p))
		c.baseCycles += 4
	case op3Smul:
		p := int64(int32(a)) * int64(int32(b))
		c.y = uint32(uint64(p) >> 32)
		c.wr(rd, uint32(p))
		c.baseCycles += 4
	case op3Udiv:
		dividend := uint64(c.y)<<32 | uint64(a)
		if b == 0 {
			c.wr(rd, 0)
		} else {
			q := dividend / uint64(b)
			if q > math.MaxUint32 {
				q = math.MaxUint32
			}
			c.wr(rd, uint32(q))
		}
		c.baseCycles += 36
	case op3Sdiv:
		dividend := int64(uint64(c.y)<<32 | uint64(a))
		if b == 0 {
			c.wr(rd, 0)
		} else {
			q := dividend / int64(int32(b))
			switch {
			case q > math.MaxInt32:
				q = math.MaxInt32
			case q < math.MinInt32:
				q = math.MinInt32
			}
			c.wr(rd, uint32(int32(q)))
		}
		c.baseCycles += 36
	case op3RdY:
		c.wr(rd, c.y)
	case op3WrY:
		c.y = a ^ b
	case op3Jmpl:
		c.wr(rd, uint32(c.pc))
		*target = uint64(a + b)
		*hasTarget = true
	case op3FPop1:
		return c.fpop1(w)
	case op3FPop2:
		return c.fpop2(w)
	default:
		return fmt.Errorf("sparc: unknown op3 %#x at %#x", op3, c.pc)
	}
	return nil
}

func (c *CPU) fpop1(w uint32) error {
	rd := w >> 25 & 31
	rs1 := w >> 14 & 31
	opf := w >> 5 & 0x1ff
	rs2 := w & 31
	switch opf {
	case opfFmovs:
		c.f[rd] = c.f[rs2]
	case opfFnegs:
		c.f[rd] = c.f[rs2] ^ 0x80000000
	case opfFabss:
		c.f[rd] = c.f[rs2] &^ 0x80000000
	case opfFsqrts:
		c.wfsingle(rd, float32(math.Sqrt(float64(c.fsingle(rs2)))))
		c.baseCycles += 29
	case opfFsqrtd:
		c.wfdouble(rd, math.Sqrt(c.fdouble(rs2)))
		c.baseCycles += 29
	case opfFadds:
		c.wfsingle(rd, c.fsingle(rs1)+c.fsingle(rs2))
		c.baseCycles++
	case opfFaddd:
		c.wfdouble(rd, c.fdouble(rs1)+c.fdouble(rs2))
		c.baseCycles++
	case opfFsubs:
		c.wfsingle(rd, c.fsingle(rs1)-c.fsingle(rs2))
		c.baseCycles++
	case opfFsubd:
		c.wfdouble(rd, c.fdouble(rs1)-c.fdouble(rs2))
		c.baseCycles++
	case opfFmuls:
		c.wfsingle(rd, c.fsingle(rs1)*c.fsingle(rs2))
		c.baseCycles += 3
	case opfFmuld:
		c.wfdouble(rd, c.fdouble(rs1)*c.fdouble(rs2))
		c.baseCycles += 4
	case opfFdivs:
		c.wfsingle(rd, c.fsingle(rs1)/c.fsingle(rs2))
		c.baseCycles += 12
	case opfFdivd:
		c.wfdouble(rd, c.fdouble(rs1)/c.fdouble(rs2))
		c.baseCycles += 18
	case opfFitos:
		c.wfsingle(rd, float32(int32(c.f[rs2])))
	case opfFitod:
		c.wfdouble(rd, float64(int32(c.f[rs2])))
	case opfFstoi:
		c.f[rd] = uint32(truncToI32(float64(c.fsingle(rs2))))
	case opfFdtoi:
		c.f[rd] = uint32(truncToI32(c.fdouble(rs2)))
	case opfFstod:
		c.wfdouble(rd, float64(c.fsingle(rs2)))
	case opfFdtos:
		c.wfsingle(rd, float32(c.fdouble(rs2)))
	default:
		return fmt.Errorf("sparc: unknown FPop1 opf %#x at %#x", opf, c.pc)
	}
	return nil
}

func (c *CPU) fpop2(w uint32) error {
	rs1 := w >> 14 & 31
	opf := w >> 5 & 0x1ff
	rs2 := w & 31
	var a, b float64
	switch opf {
	case opfFcmps:
		a, b = float64(c.fsingle(rs1)), float64(c.fsingle(rs2))
	case opfFcmpd:
		a, b = c.fdouble(rs1), c.fdouble(rs2)
	default:
		return fmt.Errorf("sparc: unknown FPop2 opf %#x at %#x", opf, c.pc)
	}
	switch {
	case a != a || b != b:
		c.fcc = 3
	case a == b:
		c.fcc = 0
	case a < b:
		c.fcc = 1
	default:
		c.fcc = 2
	}
	return nil
}

func (c *CPU) memOp(w uint32) error {
	rd := w >> 25 & 31
	op3 := w >> 19 & 0x3f
	rs1 := w >> 14 & 31
	addr := uint64(c.ru(rs1) + c.operand2(w))

	switch op3 {
	case op3Ld, op3Ldub, op3Lduh, op3Ldsb, op3Ldsh:
		size := map[uint32]int{op3Ld: 4, op3Ldub: 1, op3Lduh: 2, op3Ldsb: 1, op3Ldsh: 2}[op3]
		v, err := c.m.Load(addr, size)
		if err != nil {
			return fmt.Errorf("sparc: load at pc %#x: %w", c.pc, err)
		}
		switch op3 {
		case op3Ldsb:
			v = uint64(uint32(int32(int8(v))))
		case op3Ldsh:
			v = uint64(uint32(int32(int16(v))))
		}
		c.wr(rd, uint32(v))
	case op3Ldf:
		v, err := c.m.Load(addr, 4)
		if err != nil {
			return fmt.Errorf("sparc: ldf at pc %#x: %w", c.pc, err)
		}
		c.f[rd] = uint32(v)
	case op3Lddf:
		v, err := c.m.Load(addr, 8)
		if err != nil {
			return fmt.Errorf("sparc: lddf at pc %#x: %w", c.pc, err)
		}
		c.f[rd&^1] = uint32(v >> 32)
		c.f[rd|1] = uint32(v)
	case op3St, op3Stb, op3Sth:
		size := map[uint32]int{op3St: 4, op3Stb: 1, op3Sth: 2}[op3]
		if err := c.m.Store(addr, size, uint64(c.ru(rd))); err != nil {
			return fmt.Errorf("sparc: store at pc %#x: %w", c.pc, err)
		}
	case op3Stf:
		if err := c.m.Store(addr, 4, uint64(c.f[rd])); err != nil {
			return fmt.Errorf("sparc: stf at pc %#x: %w", c.pc, err)
		}
	case op3Stdf:
		v := uint64(c.f[rd&^1])<<32 | uint64(c.f[rd|1])
		if err := c.m.Store(addr, 8, v); err != nil {
			return fmt.Errorf("sparc: stdf at pc %#x: %w", c.pc, err)
		}
	default:
		return fmt.Errorf("sparc: unknown mem op3 %#x at %#x", op3, c.pc)
	}
	return nil
}

func truncToI32(v float64) int32 {
	switch {
	case v != v:
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

// Disasm decodes one instruction word (compact form, for debugging).
func (s *Backend) Disasm(w uint32, pc uint64) string {
	if w == encNop {
		return "nop"
	}
	op := w >> 30
	rd := w >> 25 & 31
	switch op {
	case 0:
		op2 := w >> 22 & 7
		disp := int64(int32(w<<10)>>10) * 4
		switch op2 {
		case 4:
			return fmt.Sprintf("sethi %%hi(%#x), %s", w<<10, gprNames[rd])
		case 2:
			return fmt.Sprintf("b%s %#x", condName(w>>25&0xf, false), uint64(int64(pc)+disp))
		case 6:
			return fmt.Sprintf("fb%s %#x", condName(w>>25&0xf, true), uint64(int64(pc)+disp))
		}
	case 1:
		disp := int64(int32(w<<2)>>2) * 4
		return fmt.Sprintf("call %#x", uint64(int64(pc)+disp))
	case 2, 3:
		op3 := w >> 19 & 0x3f
		rs1 := w >> 14 & 31
		var o2 string
		if w>>13&1 == 1 {
			o2 = fmt.Sprintf("%d", int32(w<<19)>>19)
		} else {
			o2 = gprNames[w&31]
		}
		if op == 2 {
			if op3 == op3FPop1 || op3 == op3FPop2 {
				return fmt.Sprintf("fpop opf=%#x %%f%d, %%f%d, %%f%d", w>>5&0x1ff, rs1, w&31, rd)
			}
			if op3 == op3Jmpl {
				return fmt.Sprintf("jmpl %s+%s, %s", gprNames[rs1], o2, gprNames[rd])
			}
			return fmt.Sprintf("%s %s, %s, %s", op3Name(op3), gprNames[rs1], o2, gprNames[rd])
		}
		return fmt.Sprintf("%s [%s+%s], %s", memName(op3), gprNames[rs1], o2, gprNames[rd])
	}
	return fmt.Sprintf(".word %#08x", w)
}

// Decodable reports whether w decodes at pc — exactly when Disasm would
// not fall back to ".word" — without building the disassembly string.
// It is the verifier's round-trip fast path (verify.DecodableDecoder);
// TestDecodableMatchesDisasm sweeps it against Disasm so the two cannot
// drift.  Formats 1-3 always render (unknown op3 values print as
// "op3:..."/"mem:..." mnemonics, which Disasm treats as decoded);
// format 0 decodes only for sethi and the two branch op2 forms.
func (s *Backend) Decodable(w uint32, pc uint64) bool {
	if w == encNop {
		return true
	}
	if w>>30 != 0 {
		return true
	}
	op2 := w >> 22 & 7
	return op2 == 4 || op2 == 2 || op2 == 6
}

func condName(c uint32, fp bool) string {
	if fp {
		return map[uint32]string{fcondE: "e", fcondNE: "ne", fcondL: "l", fcondLE: "le", fcondG: "g", fcondGE: "ge"}[c]
	}
	m := map[uint32]string{condA: "a", condE: "e", condNE: "ne", condL: "l", condLE: "le",
		condG: "g", condGE: "ge", condCS: "lu", condLEU: "leu", condGU: "gu", condCC: "geu"}
	if n, ok := m[c]; ok {
		return n
	}
	return fmt.Sprintf("?%d", c)
}

func op3Name(op3 uint32) string {
	m := map[uint32]string{op3Add: "add", op3Sub: "sub", op3And: "and", op3Or: "or",
		op3Xor: "xor", op3Xnor: "xnor", op3Sll: "sll", op3Srl: "srl", op3Sra: "sra",
		op3Umul: "umul", op3Smul: "smul", op3Udiv: "udiv", op3Sdiv: "sdiv",
		op3AddCC: "addcc", op3SubCC: "subcc", op3WrY: "wr%y", op3RdY: "rd%y", 0x08: "addx"}
	if n, ok := m[op3]; ok {
		return n
	}
	return fmt.Sprintf("op3:%#x", op3)
}

func memName(op3 uint32) string {
	m := map[uint32]string{op3Ld: "ld", op3Ldub: "ldub", op3Lduh: "lduh", op3Ldsb: "ldsb",
		op3Ldsh: "ldsh", op3St: "st", op3Stb: "stb", op3Sth: "sth",
		op3Ldf: "ldf", op3Lddf: "lddf", op3Stf: "stf", op3Stdf: "stdf"}
	if n, ok := m[op3]; ok {
		return n
	}
	return fmt.Sprintf("mem:%#x", op3)
}
