package sparc

import (
	"fmt"
	"math"

	"repro/internal/exec"
)

// SPARC port of the predecoded direct-threaded execution engine
// (internal/exec); see internal/mips/threaded.go for the scheme.  The
// fetch/switch Step in cpu.go stays the verification oracle: registers,
// memory, icc/fcc/Y state, cycle charges, probes, delay slots, and
// error strings must match bit for bit (internal/exec/diff enforces it).
// SPARC models no load-use interlock, so the predecoded interlock
// metadata stays NoReg and lastLoad is never touched — exactly like the
// oracle.

// Dense opcodes: indices into sparcHandlers.
const (
	sSethi uint16 = iota
	sBicc
	sFBfcc
	sBadOp2
	sCall
	sAdd
	sSub
	sAnd
	sAndn
	sOr
	sXor
	sXnor
	sAddx
	sAddCC
	sSubCC
	sSll
	sSrl
	sSra
	sUmul
	sSmul
	sUdiv
	sSdiv
	sRdY
	sWrY
	sJmpl
	sBadOp3
	sFmovs
	sFnegs
	sFabss
	sFsqrts
	sFsqrtd
	sFadds
	sFaddd
	sFsubs
	sFsubd
	sFmuls
	sFmuld
	sFdivs
	sFdivd
	sFitos
	sFitod
	sFstoi
	sFdtoi
	sFstod
	sFdtos
	sBadFPop1
	sFcmps
	sFcmpd
	sBadFPop2
	sLd
	sLdub
	sLduh
	sLdsb
	sLdsh
	sLdf
	sLddf
	sSt
	sStb
	sSth
	sStf
	sStdf
	sBadMem
	sNumOps
)

type thandler func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error)

var sparcHandlers [exec.OpTableSize]thandler

// opMask aliases exec.OpMask for the dispatch hot loop; the next line
// fails to compile if the opcode count ever outgrows the table.
const opMask = exec.OpMask

var _ [exec.OpTableSize - sNumOps]struct{}

func (c *CPU) twr(n uint8, v uint32) {
	if n != 0 {
		c.r[n] = uint64(v)
	}
}

// topnd2 is the predecoded form of operand2: the sign-extended simm13
// baked at predecode time, or the rs2 register.
func (c *CPU) topnd2(in *exec.Instr) uint32 {
	if in.Flags&exec.FImm != 0 {
		return uint32(in.Imm)
	}
	return uint32(c.r[in.B])
}

// sjump follows a statically resolved transfer.
func (c *CPU) sjump(in *exec.Instr) int32 {
	if in.Target == exec.External {
		c.extPC = uint64(in.Imm)
		return exec.External
	}
	return in.Target
}

// PendingDelay reports whether a taken branch is waiting on its delay
// slot.
func (c *CPU) PendingDelay() bool { return c.inDelay }

// Predecode unpacks words into a threaded body.  Pure function of its
// arguments (safe from batch-install workers); malformed words become
// error handlers reproducing the oracle's exact messages, never a
// predecode failure.
func (c *CPU) Predecode(words []uint32, base uint64) *exec.Body {
	code := make([]exec.Instr, len(words))
	n := len(words)
	for i, w := range words {
		in := &code[i]
		pc := base + 4*uint64(i)
		in.PC = pc
		in.SrcA, in.SrcB, in.LoadReg = exec.NoReg, exec.NoReg, exec.NoReg

		rd := uint8(w >> 25 & 31)
		rs1 := uint8(w >> 14 & 31)

		// operand2: sign-extended simm13 or rs2.
		setOp2 := func() {
			if w>>13&1 == 1 {
				in.Flags |= exec.FImm
				in.Imm = int64(int32(w<<19) >> 19)
			} else {
				in.B = uint8(w & 31)
			}
		}
		resolveDisp := func(disp int64) {
			t := uint64(int64(pc) + disp*4)
			if idx, ok := exec.ResolveTarget(base, n, t); ok {
				in.Target = idx
			} else {
				in.Target = exec.External
				in.Imm = int64(t)
			}
		}

		switch w >> 30 {
		case 0:
			switch op2 := w >> 22 & 7; op2 {
			case 4:
				in.Op, in.C, in.Imm = sSethi, rd, int64(w<<10)
			case 2, 6:
				if op2 == 2 {
					in.Op = sBicc
				} else {
					in.Op = sFBfcc
				}
				in.A = uint8(w >> 25 & 0xf)
				resolveDisp(int64(int32(w<<10) >> 10))
			default:
				in.Op, in.Imm = sBadOp2, int64(w)
			}
		case 1:
			in.Op = sCall
			resolveDisp(int64(int32(w<<2) >> 2))
		case 2:
			in.A, in.C = rs1, rd
			setOp2()
			switch op3 := w >> 19 & 0x3f; op3 {
			case op3Add:
				in.Op = sAdd
			case op3Sub:
				in.Op = sSub
			case op3And:
				in.Op = sAnd
			case op3Andn:
				in.Op = sAndn
			case op3Or:
				in.Op = sOr
			case op3Xor:
				in.Op = sXor
			case op3Xnor:
				in.Op = sXnor
			case 0x08: // addx
				in.Op = sAddx
			case op3AddCC:
				in.Op = sAddCC
			case op3SubCC:
				in.Op = sSubCC
			case op3Sll:
				in.Op = sSll
			case op3Srl:
				in.Op = sSrl
			case op3Sra:
				in.Op = sSra
			case op3Umul:
				in.Op = sUmul
			case op3Smul:
				in.Op = sSmul
			case op3Udiv:
				in.Op = sUdiv
			case op3Sdiv:
				in.Op = sSdiv
			case op3RdY:
				in.Op = sRdY
			case op3WrY:
				in.Op = sWrY
			case op3Jmpl:
				in.Op = sJmpl
			case op3FPop1:
				// FP operands: A=rs1, B=rs2, C=rd (no operand2 form).
				in.Flags &^= exec.FImm
				in.A, in.B, in.C = rs1, uint8(w&31), rd
				switch w >> 5 & 0x1ff {
				case opfFmovs:
					in.Op = sFmovs
				case opfFnegs:
					in.Op = sFnegs
				case opfFabss:
					in.Op = sFabss
				case opfFsqrts:
					in.Op = sFsqrts
				case opfFsqrtd:
					in.Op = sFsqrtd
				case opfFadds:
					in.Op = sFadds
				case opfFaddd:
					in.Op = sFaddd
				case opfFsubs:
					in.Op = sFsubs
				case opfFsubd:
					in.Op = sFsubd
				case opfFmuls:
					in.Op = sFmuls
				case opfFmuld:
					in.Op = sFmuld
				case opfFdivs:
					in.Op = sFdivs
				case opfFdivd:
					in.Op = sFdivd
				case opfFitos:
					in.Op = sFitos
				case opfFitod:
					in.Op = sFitod
				case opfFstoi:
					in.Op = sFstoi
				case opfFdtoi:
					in.Op = sFdtoi
				case opfFstod:
					in.Op = sFstod
				case opfFdtos:
					in.Op = sFdtos
				default:
					in.Op, in.Imm = sBadFPop1, int64(w)
				}
			case op3FPop2:
				in.Flags &^= exec.FImm
				in.A, in.B = rs1, uint8(w&31)
				switch w >> 5 & 0x1ff {
				case opfFcmps:
					in.Op = sFcmps
				case opfFcmpd:
					in.Op = sFcmpd
				default:
					in.Op, in.Imm = sBadFPop2, int64(w)
				}
			default:
				in.Op, in.Imm = sBadOp3, int64(w)
			}
		case 3:
			in.A, in.C = rs1, rd
			setOp2()
			switch op3 := w >> 19 & 0x3f; op3 {
			case op3Ld:
				in.Op = sLd
			case op3Ldub:
				in.Op = sLdub
			case op3Lduh:
				in.Op = sLduh
			case op3Ldsb:
				in.Op = sLdsb
			case op3Ldsh:
				in.Op = sLdsh
			case op3Ldf:
				in.Op = sLdf
			case op3Lddf:
				in.Op = sLddf
			case op3St:
				in.Op = sSt
			case op3Stb:
				in.Op = sStb
			case op3Sth:
				in.Op = sSth
			case op3Stf:
				in.Op = sStf
			case op3Stdf:
				in.Op = sStdf
			default:
				in.Op, in.Imm = sBadMem, int64(w)
			}
		}
	}
	return &exec.Body{Base: base, Code: code}
}

// RunBody executes predecoded instructions starting at idx until allow
// retire, control leaves the body, or a fault; same contract as the
// MIPS engine (see internal/mips/threaded.go RunBody).
func (c *CPU) RunBody(b *exec.Body, idx int, allow uint64) (uint64, error) {
	code := b.Code
	// Retired instructions and base cycles accumulate in n and flush
	// into c.insns/c.baseCycles at every exit (see the MIPS engine for
	// the rationale); flushed tracks how much of n is already applied so
	// the sampler branch can flush through the current instruction
	// before its probe fires.
	var n, flushed uint64
	sampling := c.sampleEvery != 0
	for n < allow {
		in := &code[idx]
		if sampling {
			if c.sampleLeft--; c.sampleLeft == 0 {
				c.sampleLeft = c.sampleEvery
				c.insns += n + 1 - flushed
				c.baseCycles += n + 1 - flushed
				flushed = n + 1
				c.sampleFn(in.PC)
			}
		}
		br, err := sparcHandlers[in.Op&opMask](c, b, in)
		n++
		if err != nil {
			c.pc = in.PC
			c.insns += n - flushed
			c.baseCycles += n - flushed
			return n, err
		}
		if br == exec.NoBranch {
			// Fall-through is always idx+1 (predecode sets Instr.Next to
			// exactly that), so skip the field load.
			idx++
			if idx == len(code) {
				c.pc = in.PC + 4
				c.insns += n - flushed
				c.baseCycles += n - flushed
				return n, nil
			}
			continue
		}

		// Taken transfer: delay slot next, transfer after it.
		var pendAddr uint64
		if br == exec.External {
			pendAddr = c.extPC
		} else {
			pendAddr = b.Base + 4*uint64(br)
		}
		dIdx := idx + 1
		if dIdx == len(code) || n >= allow {
			c.pc = in.PC + 4
			c.inDelay = true
			c.delayTarget = pendAddr
			c.insns += n - flushed
			c.baseCycles += n - flushed
			return n, nil
		}
		din := &code[dIdx]
		if sampling {
			if c.sampleLeft--; c.sampleLeft == 0 {
				c.sampleLeft = c.sampleEvery
				c.insns += n + 1 - flushed
				c.baseCycles += n + 1 - flushed
				flushed = n + 1
				c.sampleFn(din.PC)
			}
		}
		dbr, derr := sparcHandlers[din.Op&opMask](c, b, din)
		n++
		if derr != nil {
			c.pc = din.PC
			c.inDelay = true
			c.delayTarget = pendAddr
			c.insns += n - flushed
			c.baseCycles += n - flushed
			return n, derr
		}
		if dbr != exec.NoBranch {
			c.pc = pendAddr
			c.insns += n - flushed
			c.baseCycles += n - flushed
			return n, fmt.Errorf("sparc: branch in delay slot at %#x", c.pc)
		}
		if br == exec.External {
			c.pc = pendAddr
			c.insns += n - flushed
			c.baseCycles += n - flushed
			return n, nil
		}
		idx = int(br)
	}
	c.pc = code[idx].PC
	c.insns += n - flushed
	c.baseCycles += n - flushed
	return n, nil
}

func init() {
	h := sparcHandlers[:]
	nb := exec.NoBranch

	h[sSethi] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, uint32(in.Imm))
		return nb, nil
	}
	h[sBicc] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		taken := c.takenI(uint32(in.A))
		c.edge(in.PC, taken)
		if !taken {
			return nb, nil
		}
		return c.sjump(in), nil
	}
	h[sFBfcc] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		taken := c.takenF(uint32(in.A))
		c.edge(in.PC, taken)
		if !taken {
			return nb, nil
		}
		return c.sjump(in), nil
	}
	h[sBadOp2] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("sparc: unknown op2 %d at %#x", uint32(in.Imm)>>22&7, in.PC)
	}
	h[sCall] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(rO7, uint32(in.PC))
		return c.sjump(in), nil
	}
	h[sAdd] = alu(func(a, b uint32) uint32 { return a + b })
	h[sSub] = alu(func(a, b uint32) uint32 { return a - b })
	h[sAnd] = alu(func(a, b uint32) uint32 { return a & b })
	h[sAndn] = alu(func(a, b uint32) uint32 { return a &^ b })
	h[sOr] = alu(func(a, b uint32) uint32 { return a | b })
	h[sXor] = alu(func(a, b uint32) uint32 { return a ^ b })
	h[sXnor] = alu(func(a, b uint32) uint32 { return ^(a ^ b) })
	h[sAddx] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		x := uint32(0)
		if c.c {
			x = 1
		}
		c.twr(in.C, uint32(c.r[in.A])+c.topnd2(in)+x)
		return nb, nil
	}
	h[sAddCC] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		a, b := uint32(c.r[in.A]), c.topnd2(in)
		r := a + b
		c.twr(in.C, r)
		c.n, c.z = int32(r) < 0, r == 0
		c.v = (a>>31 == b>>31) && (r>>31 != a>>31)
		c.c = r < a
		return nb, nil
	}
	h[sSubCC] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		a, b := uint32(c.r[in.A]), c.topnd2(in)
		r := a - b
		c.twr(in.C, r)
		c.n, c.z = int32(r) < 0, r == 0
		c.v = (a>>31 != b>>31) && (r>>31 != a>>31)
		c.c = a < b
		return nb, nil
	}
	h[sSll] = alu(func(a, b uint32) uint32 { return a << (b & 31) })
	h[sSrl] = alu(func(a, b uint32) uint32 { return a >> (b & 31) })
	h[sSra] = alu(func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) })
	h[sUmul] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		p := uint64(uint32(c.r[in.A])) * uint64(c.topnd2(in))
		c.y = uint32(p >> 32)
		c.twr(in.C, uint32(p))
		c.baseCycles += 4
		return nb, nil
	}
	h[sSmul] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		p := int64(int32(c.r[in.A])) * int64(int32(c.topnd2(in)))
		c.y = uint32(uint64(p) >> 32)
		c.twr(in.C, uint32(p))
		c.baseCycles += 4
		return nb, nil
	}
	h[sUdiv] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		b := c.topnd2(in)
		dividend := uint64(c.y)<<32 | uint64(uint32(c.r[in.A]))
		if b == 0 {
			c.twr(in.C, 0)
		} else {
			q := dividend / uint64(b)
			if q > math.MaxUint32 {
				q = math.MaxUint32
			}
			c.twr(in.C, uint32(q))
		}
		c.baseCycles += 36
		return nb, nil
	}
	h[sSdiv] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		b := c.topnd2(in)
		dividend := int64(uint64(c.y)<<32 | uint64(uint32(c.r[in.A])))
		if b == 0 {
			c.twr(in.C, 0)
		} else {
			q := dividend / int64(int32(b))
			switch {
			case q > math.MaxInt32:
				q = math.MaxInt32
			case q < math.MinInt32:
				q = math.MinInt32
			}
			c.twr(in.C, uint32(int32(q)))
		}
		c.baseCycles += 36
		return nb, nil
	}
	h[sRdY] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.y)
		return nb, nil
	}
	h[sWrY] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.y = uint32(c.r[in.A]) ^ c.topnd2(in)
		return nb, nil
	}
	h[sJmpl] = func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error) {
		// Read the sources before the link write, as the oracle does.
		a := uint32(c.r[in.A])
		o2 := c.topnd2(in)
		c.twr(in.C, uint32(in.PC))
		t := uint64(a + o2)
		if b.Contains(t) {
			return int32(b.IndexOf(t)), nil
		}
		c.extPC = t
		return exec.External, nil
	}
	h[sBadOp3] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("sparc: unknown op3 %#x at %#x", uint32(in.Imm)>>19&0x3f, in.PC)
	}
	h[sFmovs] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = c.f[in.B]
		return nb, nil
	}
	h[sFnegs] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = c.f[in.B] ^ 0x80000000
		return nb, nil
	}
	h[sFabss] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = c.f[in.B] &^ 0x80000000
		return nb, nil
	}
	h[sFsqrts] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfsingle(uint32(in.C), float32(math.Sqrt(float64(c.fsingle(uint32(in.B))))))
		c.baseCycles += 29
		return nb, nil
	}
	h[sFsqrtd] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfdouble(uint32(in.C), math.Sqrt(c.fdouble(uint32(in.B))))
		c.baseCycles += 29
		return nb, nil
	}
	h[sFadds] = fps(1, func(a, b float32) float32 { return a + b })
	h[sFaddd] = fpd(1, func(a, b float64) float64 { return a + b })
	h[sFsubs] = fps(1, func(a, b float32) float32 { return a - b })
	h[sFsubd] = fpd(1, func(a, b float64) float64 { return a - b })
	h[sFmuls] = fps(3, func(a, b float32) float32 { return a * b })
	h[sFmuld] = fpd(4, func(a, b float64) float64 { return a * b })
	h[sFdivs] = fps(12, func(a, b float32) float32 { return a / b })
	h[sFdivd] = fpd(18, func(a, b float64) float64 { return a / b })
	h[sFitos] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfsingle(uint32(in.C), float32(int32(c.f[in.B])))
		return nb, nil
	}
	h[sFitod] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfdouble(uint32(in.C), float64(int32(c.f[in.B])))
		return nb, nil
	}
	h[sFstoi] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = uint32(truncToI32(float64(c.fsingle(uint32(in.B)))))
		return nb, nil
	}
	h[sFdtoi] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = uint32(truncToI32(c.fdouble(uint32(in.B))))
		return nb, nil
	}
	h[sFstod] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfdouble(uint32(in.C), float64(c.fsingle(uint32(in.B))))
		return nb, nil
	}
	h[sFdtos] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfsingle(uint32(in.C), float32(c.fdouble(uint32(in.B))))
		return nb, nil
	}
	h[sBadFPop1] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("sparc: unknown FPop1 opf %#x at %#x", uint32(in.Imm)>>5&0x1ff, in.PC)
	}
	h[sFcmps] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.fcmp(float64(c.fsingle(uint32(in.A))), float64(c.fsingle(uint32(in.B))))
		return nb, nil
	}
	h[sFcmpd] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.fcmp(c.fdouble(uint32(in.A)), c.fdouble(uint32(in.B)))
		return nb, nil
	}
	h[sBadFPop2] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("sparc: unknown FPop2 opf %#x at %#x", uint32(in.Imm)>>5&0x1ff, in.PC)
	}
	h[sLd] = sload(4, "load", func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.C, uint32(v)) })
	h[sLdub] = sload(1, "load", func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.C, uint32(v)) })
	h[sLduh] = sload(2, "load", func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.C, uint32(v)) })
	h[sLdsb] = sload(1, "load", func(c *CPU, in *exec.Instr, v uint64) {
		c.twr(in.C, uint32(int32(int8(v))))
	})
	h[sLdsh] = sload(2, "load", func(c *CPU, in *exec.Instr, v uint64) {
		c.twr(in.C, uint32(int32(int16(v))))
	})
	h[sLdf] = sload(4, "ldf", func(c *CPU, in *exec.Instr, v uint64) { c.f[in.C] = uint32(v) })
	h[sLddf] = sload(8, "lddf", func(c *CPU, in *exec.Instr, v uint64) {
		c.f[in.C&^1] = uint32(v >> 32)
		c.f[in.C|1] = uint32(v)
	})
	h[sSt] = sstore(4, "store", func(c *CPU, in *exec.Instr) uint64 { return uint64(uint32(c.r[in.C])) })
	h[sStb] = sstore(1, "store", func(c *CPU, in *exec.Instr) uint64 { return uint64(uint32(c.r[in.C])) })
	h[sSth] = sstore(2, "store", func(c *CPU, in *exec.Instr) uint64 { return uint64(uint32(c.r[in.C])) })
	h[sStf] = sstore(4, "stf", func(c *CPU, in *exec.Instr) uint64 { return uint64(c.f[in.C]) })
	h[sStdf] = sstore(8, "stdf", func(c *CPU, in *exec.Instr) uint64 {
		return uint64(c.f[in.C&^1])<<32 | uint64(c.f[in.C|1])
	})
	h[sBadMem] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("sparc: unknown mem op3 %#x at %#x", uint32(in.Imm)>>19&0x3f, in.PC)
	}
}

// fcmp sets fcc exactly like the oracle's fpop2 tail.
func (c *CPU) fcmp(a, b float64) {
	switch {
	case a != a || b != b:
		c.fcc = 3
	case a == b:
		c.fcc = 0
	case a < b:
		c.fcc = 1
	default:
		c.fcc = 2
	}
}

func alu(f func(a, b uint32) uint32) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, f(uint32(c.r[in.A]), c.topnd2(in)))
		return exec.NoBranch, nil
	}
}

func fps(cycles uint64, f func(a, b float32) float32) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfsingle(uint32(in.C), f(c.fsingle(uint32(in.A)), c.fsingle(uint32(in.B))))
		c.baseCycles += cycles
		return exec.NoBranch, nil
	}
}

func fpd(cycles uint64, f func(a, b float64) float64) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfdouble(uint32(in.C), f(c.fdouble(uint32(in.A)), c.fdouble(uint32(in.B))))
		c.baseCycles += cycles
		return exec.NoBranch, nil
	}
}

func sload(size int, what string, sink func(c *CPU, in *exec.Instr, v uint64)) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load(uint64(uint32(c.r[in.A])+c.topnd2(in)), size)
		if err != nil {
			return 0, fmt.Errorf("sparc: %s at pc %#x: %w", what, in.PC, err)
		}
		sink(c, in, v)
		return exec.NoBranch, nil
	}
}

func sstore(size int, what string, src func(c *CPU, in *exec.Instr) uint64) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		addr := uint64(uint32(c.r[in.A]) + c.topnd2(in))
		if err := c.m.Store(addr, size, src(c, in)); err != nil {
			return 0, fmt.Errorf("sparc: %s at pc %#x: %w", what, in.PC, err)
		}
		return exec.NoBranch, nil
	}
}
