package sparc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDecodableMatchesDisasm pins the verifier fast path to the
// disassembler: Decodable must return true exactly when Disasm does not
// fall back to ".word".  The sweep covers every format/op2/op3
// combination with varied fields plus a large pseudo-random sample.
func TestDecodableMatchesDisasm(t *testing.T) {
	b := New()
	const pc = 0x4000
	check := func(w uint32) {
		want := !strings.HasPrefix(b.Disasm(w, pc), ".word")
		if got := b.Decodable(w, pc); got != want {
			t.Fatalf("Decodable(%#08x) = %v, but Disasm(%#08x) = %q", w, got, w, b.Disasm(w, pc))
		}
	}
	for op := uint32(0); op < 4; op++ {
		for op2 := uint32(0); op2 < 8; op2++ {
			check(op<<30 | op2<<22)
			check(op<<30 | 0x1f<<25 | op2<<22 | 0x1234)
		}
		for op3 := uint32(0); op3 < 64; op3++ {
			check(op<<30 | op3<<19)
			check(op<<30 | 0x1f<<25 | op3<<19 | 1<<13 | 0x7ff)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<20; i++ {
		check(rng.Uint32())
	}
}
