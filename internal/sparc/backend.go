package sparc

import (
	"fmt"

	"repro/internal/core"
)

// Register numbers.
const (
	rG0 = 0 // hardwired zero
	rG1 = 1 // assembler scratch
	rG7 = 7 // second scratch, used inside the divide/modulus sequences
	rO0 = 8
	rSP = 14 // %o6
	rO7 = 15 // link register
	rL0 = 16
	rI0 = 24
	rFP = 30 // %i6 (unused in flat model, kept reserved)
)

// Backend is the SPARC V8 (flat model) port of VCODE.
type Backend struct {
	conv *core.CallConv
	regs *core.RegFile
}

// New returns the SPARC backend.
func New() *Backend {
	return &Backend{conv: newConv(), regs: newRegFile()}
}

func newConv() *core.CallConv {
	g := core.GPR
	f := core.FPR
	return &core.CallConv{
		IntArgs: []core.Reg{g(8), g(9), g(10), g(11), g(12), g(13)}, // %o0-%o5
		FPArgs:  []core.Reg{f(2), f(4)},
		RetInt:  g(rO0),
		RetFP:   f(0),
		RA:      g(rO7),
		SP:      g(rSP),
		Zero:    g(rG0),
		CallerSaved: []core.Reg{
			g(2), g(3), g(4), g(5), // %g2-%g5
			g(24), g(25), g(26), g(27), g(28), g(29), // %i0-%i5 (flat: temps)
			g(13), g(12), g(11), g(10), g(9), g(8), // unused %o args
		},
		CalleeSaved: []core.Reg{
			g(16), g(17), g(18), g(19), g(20), g(21), g(22), g(23), // %l0-%l7
		},
		CallerSavedFP: []core.Reg{f(8), f(10), f(12), f(14), f(16), f(18), f(4), f(2)},
		CalleeSavedFP: []core.Reg{f(20), f(22), f(24), f(26), f(28)},
		StackAlign:    8,
		SlotBytes:     4,
		HardTemp: []core.Reg{
			g(2), g(3), g(4), g(5), g(24), g(25), g(26), g(27), g(28), g(29),
		},
		HardVar:    []core.Reg{g(16), g(17), g(18), g(19), g(20), g(21), g(22), g(23)},
		HardTempFP: []core.Reg{f(8), f(10), f(12), f(14), f(16), f(18)},
		HardVarFP:  []core.Reg{f(20), f(22), f(24), f(26), f(28)},
	}
}

var gprNames = []string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

func newRegFile() *core.RegFile {
	fpr := make([]string, 32)
	for i := range fpr {
		fpr[i] = fmt.Sprintf("%%f%d", i)
	}
	return &core.RegFile{NumGPR: 32, NumFPR: 32, GPRName: gprNames, FPRName: fpr}
}

func (*Backend) Name() string                  { return "sparc" }
func (*Backend) PtrBytes() int                 { return 4 }
func (s *Backend) RegFile() *core.RegFile      { return s.regs }
func (s *Backend) DefaultConv() *core.CallConv { return s.conv }
func (*Backend) BranchDelaySlots() int         { return 1 }
func (*Backend) LoadDelay() int                { return 1 }
func (*Backend) BigEndian() bool               { return true }
func (*Backend) ScratchReg() core.Reg          { return core.GPR(rG1) }
func (*Backend) ScratchFPR() core.Reg          { return core.FPR(30) }
func (*Backend) RetAddrOffset() int            { return 8 }

func gn(r core.Reg) uint32 { return uint32(r.Num()) }

// materialize loads a 32-bit constant into register r.
func materialize(b *core.Buf, r uint32, imm int64) {
	v := uint32(imm)
	switch {
	case fitsS13(int64(int32(v))):
		b.Emit(fmt3i(2, r, op3Or, rG0, int32(v)))
	case v&0x3ff == 0:
		b.Emit(fmtSethi(r, v>>10))
	default:
		b.Emit(fmtSethi(r, v>>10))
		b.Emit(fmt3i(2, r, op3Or, r, int32(v&0x3ff)))
	}
}

// ALU implements rd = rs1 op rs2.
func (s *Backend) ALU(b *core.Buf, op core.Op, t core.Type, rd, rs1, rs2 core.Reg) error {
	if t.IsFloat() {
		var opf uint32
		switch {
		case op == core.OpAdd && t == core.TypeF:
			opf = opfFadds
		case op == core.OpAdd:
			opf = opfFaddd
		case op == core.OpSub && t == core.TypeF:
			opf = opfFsubs
		case op == core.OpSub:
			opf = opfFsubd
		case op == core.OpMul && t == core.TypeF:
			opf = opfFmuls
		case op == core.OpMul:
			opf = opfFmuld
		case op == core.OpDiv && t == core.TypeF:
			opf = opfFdivs
		case op == core.OpDiv:
			opf = opfFdivd
		default:
			return fmt.Errorf("sparc: %s%s unsupported", op, t)
		}
		b.Emit(fmtFP(op3FPop1, gn(rd), opf, gn(rs1), gn(rs2)))
		return nil
	}
	d, s1, s2 := gn(rd), gn(rs1), gn(rs2)
	switch op {
	case core.OpAdd:
		b.Emit(fmt3r(2, d, op3Add, s1, s2))
	case core.OpSub:
		b.Emit(fmt3r(2, d, op3Sub, s1, s2))
	case core.OpAnd:
		b.Emit(fmt3r(2, d, op3And, s1, s2))
	case core.OpOr:
		b.Emit(fmt3r(2, d, op3Or, s1, s2))
	case core.OpXor:
		b.Emit(fmt3r(2, d, op3Xor, s1, s2))
	case core.OpLsh:
		b.Emit(fmt3r(2, d, op3Sll, s1, s2))
	case core.OpRsh:
		if t.IsSigned() {
			b.Emit(fmt3r(2, d, op3Sra, s1, s2))
		} else {
			b.Emit(fmt3r(2, d, op3Srl, s1, s2))
		}
	case core.OpMul:
		if t.IsSigned() {
			b.Emit(fmt3r(2, d, op3Smul, s1, s2))
		} else {
			b.Emit(fmt3r(2, d, op3Umul, s1, s2))
		}
	case core.OpDiv, core.OpMod:
		// Seed the Y register with the upper dividend half, divide,
		// and for mod multiply back and subtract.  The sequence uses
		// %g7 internally so that %g1 stays free to carry a
		// materialized immediate divisor.
		if t.IsSigned() {
			b.Emit(fmt3i(2, rG7, op3Sra, s1, 31))
		} else {
			b.Emit(fmt3r(2, rG7, op3Or, rG0, rG0))
		}
		b.Emit(fmt3r(2, 0, op3WrY, rG7, rG0)) // wr %g7, %y
		fn := uint32(op3Sdiv)
		if !t.IsSigned() {
			fn = op3Udiv
		}
		if op == core.OpDiv {
			b.Emit(fmt3r(2, d, fn, s1, s2))
			return nil
		}
		b.Emit(fmt3r(2, rG7, fn, s1, s2))
		b.Emit(fmt3r(2, rG7, op3Smul, rG7, s2))
		b.Emit(fmt3r(2, d, op3Sub, s1, rG7))
	default:
		return fmt.Errorf("sparc: ALU op %s unsupported", op)
	}
	return nil
}

// ALUImm implements rd = rs op imm.
func (s *Backend) ALUImm(b *core.Buf, op core.Op, t core.Type, rd, rs core.Reg, imm int64) error {
	d, src := gn(rd), gn(rs)
	var op3 uint32
	switch op {
	case core.OpAdd:
		op3 = op3Add
	case core.OpSub:
		op3 = op3Sub
	case core.OpAnd:
		op3 = op3And
	case core.OpOr:
		op3 = op3Or
	case core.OpXor:
		op3 = op3Xor
	case core.OpLsh:
		b.Emit(fmt3i(2, d, op3Sll, src, int32(imm&31)))
		return nil
	case core.OpRsh:
		if t.IsSigned() {
			b.Emit(fmt3i(2, d, op3Sra, src, int32(imm&31)))
		} else {
			b.Emit(fmt3i(2, d, op3Srl, src, int32(imm&31)))
		}
		return nil
	default:
		materialize(b, rG1, imm)
		return s.ALU(b, op, t, rd, rs, core.GPR(rG1))
	}
	if fitsS13(imm) {
		b.Emit(fmt3i(2, d, op3, src, int32(imm)))
		return nil
	}
	materialize(b, rG1, imm)
	b.Emit(fmt3r(2, d, op3, src, rG1))
	return nil
}

// Unary implements rd = op rs.
func (s *Backend) Unary(b *core.Buf, op core.Op, t core.Type, rd, rs core.Reg) error {
	if t.IsFloat() {
		switch {
		case op == core.OpMov && t == core.TypeF:
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFmovs, 0, gn(rs)))
		case op == core.OpMov: // move a double: two single moves
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFmovs, 0, gn(rs)))
			b.Emit(fmtFP(op3FPop1, gn(rd)+1, opfFmovs, 0, gn(rs)+1))
		case op == core.OpNeg && t == core.TypeF:
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFnegs, 0, gn(rs)))
		case op == core.OpNeg: // negate a double: flip the sign word
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFnegs, 0, gn(rs)))
			if rd != rs {
				b.Emit(fmtFP(op3FPop1, gn(rd)+1, opfFmovs, 0, gn(rs)+1))
			}
		default:
			return fmt.Errorf("sparc: %s%s unsupported", op, t)
		}
		return nil
	}
	d, src := gn(rd), gn(rs)
	switch op {
	case core.OpMov:
		b.Emit(fmt3r(2, d, op3Or, rG0, src))
	case core.OpNeg:
		b.Emit(fmt3r(2, d, op3Sub, rG0, src))
	case core.OpCom:
		b.Emit(fmt3r(2, d, op3Xnor, src, rG0))
	case core.OpNot:
		// rd = (rs == 0): subcc %g0, rs, %g0 sets carry iff rs != 0;
		// addx captures it inverted via subcc/ addx trick:
		// subcc rs, 1, %g0  (carry set iff rs == 0, unsigned borrow)
		// addx %g0, 0, rd   (rd = carry)
		b.Emit(fmt3i(2, 0, op3SubCC, src, 1))
		b.Emit(fmt3i(2, d, 0x08 /* addx */, rG0, 0))
	default:
		return fmt.Errorf("sparc: unary op %s unsupported", op)
	}
	return nil
}

// SetImm implements rd = imm.
func (s *Backend) SetImm(b *core.Buf, t core.Type, rd core.Reg, imm int64) error {
	materialize(b, gn(rd), imm)
	return nil
}

// Cvt implements rd = (to)rs.  SPARC moves between the integer and FP
// banks through memory; VCODE uses a scratch slot just below the stack
// pointer.
func (s *Backend) Cvt(b *core.Buf, from, to core.Type, rd, rs core.Reg) error {
	switch {
	case from.IsInteger() && to.IsInteger():
		b.Emit(fmt3r(2, gn(rd), op3Or, rG0, gn(rs)))
	case from.IsInteger() && to.IsFloat():
		// st rs, [sp-8]; ldf [sp-8], rd; fitos/fitod rd, rd.
		b.Emit(fmt3i(3, gn(rs), op3St, rSP, -8))
		b.Emit(fmt3i(3, gn(rd), op3Ldf, rSP, -8))
		if to == core.TypeF {
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFitos, 0, gn(rd)))
		} else {
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFitod, 0, gn(rd)))
		}
	case from.IsFloat() && to.IsInteger():
		// fstoi/fdtoi into the FP scratch, store, load back.
		opf := uint32(opfFstoi)
		if from == core.TypeD {
			opf = opfFdtoi
		}
		b.Emit(fmtFP(op3FPop1, 30, opf, 0, gn(rs)))
		b.Emit(fmt3i(3, 30, op3Stf, rSP, -8))
		b.Emit(fmt3i(3, gn(rd), op3Ld, rSP, -8))
	case from == core.TypeF && to == core.TypeD:
		b.Emit(fmtFP(op3FPop1, gn(rd), opfFstod, 0, gn(rs)))
	case from == core.TypeD && to == core.TypeF:
		b.Emit(fmtFP(op3FPop1, gn(rd), opfFdtos, 0, gn(rs)))
	default:
		return fmt.Errorf("sparc: cv%s2%s unsupported", from.Letter(), to.Letter())
	}
	return nil
}

func memOp3(t core.Type, store bool) (uint32, error) {
	if store {
		switch t {
		case core.TypeC, core.TypeUC:
			return op3Stb, nil
		case core.TypeS, core.TypeUS:
			return op3Sth, nil
		case core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP:
			return op3St, nil
		case core.TypeF:
			return op3Stf, nil
		case core.TypeD:
			return op3Stdf, nil
		}
		return 0, fmt.Errorf("sparc: st%s unsupported", t)
	}
	switch t {
	case core.TypeC:
		return op3Ldsb, nil
	case core.TypeUC:
		return op3Ldub, nil
	case core.TypeS:
		return op3Ldsh, nil
	case core.TypeUS:
		return op3Lduh, nil
	case core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP:
		return op3Ld, nil
	case core.TypeF:
		return op3Ldf, nil
	case core.TypeD:
		return op3Lddf, nil
	}
	return 0, fmt.Errorf("sparc: ld%s unsupported", t)
}

func (s *Backend) mem(b *core.Buf, t core.Type, r, base core.Reg, off int64, store bool) error {
	op3, err := memOp3(t, store)
	if err != nil {
		return err
	}
	if fitsS13(off) {
		b.Emit(fmt3i(3, gn(r), op3, gn(base), int32(off)))
		return nil
	}
	materialize(b, rG1, off)
	b.Emit(fmt3r(3, gn(r), op3, gn(base), rG1))
	return nil
}

// Load implements rd = *(t*)(base+off).
func (s *Backend) Load(b *core.Buf, t core.Type, rd, base core.Reg, off int64) error {
	return s.mem(b, t, rd, base, off, false)
}

// Store implements *(t*)(base+off) = rs.
func (s *Backend) Store(b *core.Buf, t core.Type, rs, base core.Reg, off int64) error {
	return s.mem(b, t, rs, base, off, true)
}

// LoadRR uses SPARC's native register+register addressing.
func (s *Backend) LoadRR(b *core.Buf, t core.Type, rd, base, idx core.Reg) error {
	op3, err := memOp3(t, false)
	if err != nil {
		return err
	}
	b.Emit(fmt3r(3, gn(rd), op3, gn(base), gn(idx)))
	return nil
}

// StoreRR uses register+register addressing.
func (s *Backend) StoreRR(b *core.Buf, t core.Type, rs, base, idx core.Reg) error {
	op3, err := memOp3(t, true)
	if err != nil {
		return err
	}
	b.Emit(fmt3r(3, gn(rs), op3, gn(base), gn(idx)))
	return nil
}

func intCond(op core.Op, signed bool) uint32 {
	switch op {
	case core.OpBeq:
		return condE
	case core.OpBne:
		return condNE
	case core.OpBlt:
		if signed {
			return condL
		}
		return condCS
	case core.OpBle:
		if signed {
			return condLE
		}
		return condLEU
	case core.OpBgt:
		if signed {
			return condG
		}
		return condGU
	case core.OpBge:
		if signed {
			return condGE
		}
		return condCC
	}
	return condN
}

// Branch emits subcc + conditional branch + delay nop.
func (s *Backend) Branch(b *core.Buf, op core.Op, t core.Type, rs1, rs2 core.Reg) (int, error) {
	if t.IsFloat() {
		opf := uint32(opfFcmps)
		if t == core.TypeD {
			opf = opfFcmpd
		}
		b.Emit(fmtFP(op3FPop2, 0, opf, gn(rs1), gn(rs2)))
		b.Emit(encNop) // required gap between fcmp and fbcc
		var cond uint32
		switch op {
		case core.OpBeq:
			cond = fcondE
		case core.OpBne:
			cond = fcondNE
		case core.OpBlt:
			cond = fcondL
		case core.OpBle:
			cond = fcondLE
		case core.OpBgt:
			cond = fcondG
		case core.OpBge:
			cond = fcondGE
		default:
			return 0, fmt.Errorf("sparc: fp branch %s", op)
		}
		site := b.Len()
		b.Emit(fmtFBfcc(cond, 0))
		b.Emit(encNop)
		return site, nil
	}
	b.Emit(fmt3r(2, 0, op3SubCC, gn(rs1), gn(rs2)))
	site := b.Len()
	b.Emit(fmtBicc(intCond(op, t.IsSigned()), 0))
	b.Emit(encNop)
	return site, nil
}

// BranchImm compares against an immediate.
func (s *Backend) BranchImm(b *core.Buf, op core.Op, t core.Type, rs core.Reg, imm int64) (int, error) {
	if fitsS13(imm) {
		b.Emit(fmt3i(2, 0, op3SubCC, gn(rs), int32(imm)))
	} else {
		materialize(b, rG1, imm)
		b.Emit(fmt3r(2, 0, op3SubCC, gn(rs), rG1))
	}
	site := b.Len()
	b.Emit(fmtBicc(intCond(op, t.IsSigned()), 0))
	b.Emit(encNop)
	return site, nil
}

// Jump emits ba + nop.
func (s *Backend) Jump(b *core.Buf) (int, error) {
	site := b.Len()
	b.Emit(fmtBicc(condA, 0))
	b.Emit(encNop)
	return site, nil
}

// JumpReg emits jmpl r, %g0.
func (s *Backend) JumpReg(b *core.Buf, r core.Reg) error {
	b.Emit(fmt3i(2, 0, op3Jmpl, gn(r), 0))
	b.Emit(encNop)
	return nil
}

// CallSite emits call with a placeholder displacement.
func (s *Backend) CallSite(b *core.Buf) ([]int, error) {
	site := b.Len()
	b.Emit(fmtCall(0))
	b.Emit(encNop)
	return []int{site}, nil
}

// CallLabel also uses the PC-relative call instruction.
func (s *Backend) CallLabel(b *core.Buf) (int, error) {
	site := b.Len()
	b.Emit(fmtCall(0))
	b.Emit(encNop)
	return site, nil
}

// CallReg emits jmpl r, %o7.
func (s *Backend) CallReg(b *core.Buf, r core.Reg) error {
	b.Emit(fmt3i(2, rO7, op3Jmpl, gn(r), 0))
	b.Emit(encNop)
	return nil
}

// PatchBranch resolves a branch/call site to a target word index.
func (s *Backend) PatchBranch(b *core.Buf, site, target int) error {
	w := b.At(site)
	disp := int64(target - site)
	if w>>30 == 1 { // call: disp30
		b.Set(site, fmtCall(int32(disp)))
		return nil
	}
	if disp < -(1<<21) || disp >= 1<<21 {
		return fmt.Errorf("%w: %d words", core.ErrBranchRange, disp)
	}
	b.Set(site, w&^uint32(0x3fffff)|uint32(disp)&0x3fffff)
	return nil
}

// PatchCall resolves call sites to an absolute address (the call
// instruction is PC-relative, so the site address matters).
func (s *Backend) PatchCall(b *core.Buf, sites []int, base, target uint64) error {
	for _, site := range sites {
		pc := base + 4*uint64(site)
		disp := (int64(target) - int64(pc)) / 4
		b.Set(site, fmtCall(int32(disp)))
	}
	return nil
}

// LoadAddr emits sethi/or to be patched with an absolute address.
func (s *Backend) LoadAddr(b *core.Buf, rd core.Reg) ([]int, error) {
	s0 := b.Len()
	b.Emit(fmtSethi(gn(rd), 0))
	b.Emit(fmt3i(2, gn(rd), op3Or, gn(rd), 0))
	return []int{s0, s0 + 1}, nil
}

// PatchAddr resolves a LoadAddr pair.
func (s *Backend) PatchAddr(b *core.Buf, sites []int, addr uint64) error {
	if len(sites) != 2 {
		return fmt.Errorf("sparc: PatchAddr wants 2 sites, got %d", len(sites))
	}
	b.Set(sites[0], b.At(sites[0])&^uint32(0x3fffff)|uint32(addr>>10)&0x3fffff)
	b.Set(sites[1], b.At(sites[1])&^uint32(0x1fff)|uint32(addr)&0x3ff)
	return nil
}

// PatchMemOffset rewrites a simm13 displacement.
func (s *Backend) PatchMemOffset(b *core.Buf, site int, off int64) error {
	if !fitsS13(off) {
		return fmt.Errorf("sparc: patched offset %d out of range", off)
	}
	b.Set(site, b.At(site)&^uint32(0x1fff)|uint32(off)&0x1fff)
	return nil
}

// Nop emits sethi 0, %g0.
func (s *Backend) Nop(b *core.Buf) { b.Emit(encNop) }

// IsNop reports the canonical nop.
func (s *Backend) IsNop(w uint32) bool { return w == encNop }

// RetEncoding returns jmpl %o7+8, %g0.
func (s *Backend) RetEncoding(conv *core.CallConv) uint32 {
	return fmt3i(2, 0, op3Jmpl, rO7, 8)
}

// MaxPrologueWords: frame push + RA + callee-saved (doubles take one stdf
// each).
func (s *Backend) MaxPrologueWords(conv *core.CallConv) int {
	return 2 + len(conv.CalleeSaved) + len(conv.CalleeSavedFP)
}

// Prologue writes the flat-model prologue into the reserved region's tail.
func (s *Backend) Prologue(b *core.Buf, at int, conv *core.CallConv, fr *core.Frame) (int, error) {
	if !fitsS13(fr.Size) {
		return 0, fmt.Errorf("sparc: frame size %d out of range", fr.Size)
	}
	lay := core.NewSaveLayout(conv, 4)
	var w []uint32
	w = append(w, fmt3i(2, rSP, op3Add, rSP, int32(-fr.Size)))
	if fr.SaveRA {
		w = append(w, fmt3i(3, rO7, op3St, rSP, int32(lay.RAOff())))
	}
	for _, r := range fr.SavedGPR {
		off := lay.GPROff(r)
		if off < 0 {
			return 0, fmt.Errorf("sparc: %v saved but not callee-saved", r)
		}
		w = append(w, fmt3i(3, gn(r), op3St, rSP, int32(off)))
	}
	for _, r := range fr.SavedFPR {
		off := lay.FPROff(r)
		if off < 0 {
			return 0, fmt.Errorf("sparc: %v saved but not callee-saved", r)
		}
		w = append(w, fmt3i(3, gn(r), op3Stdf, rSP, int32(off)))
	}
	max := s.MaxPrologueWords(conv)
	if len(w) > max {
		return 0, fmt.Errorf("sparc: prologue overflow")
	}
	start := at + max - len(w)
	for i, word := range w {
		b.Set(start+i, word)
	}
	return len(w), nil
}

// Epilogue restores and returns.
func (s *Backend) Epilogue(b *core.Buf, conv *core.CallConv, fr *core.Frame) error {
	lay := core.NewSaveLayout(conv, 4)
	if fr.SaveRA {
		b.Emit(fmt3i(3, rO7, op3Ld, rSP, int32(lay.RAOff())))
	}
	for _, r := range fr.SavedGPR {
		b.Emit(fmt3i(3, gn(r), op3Ld, rSP, int32(lay.GPROff(r))))
	}
	for _, r := range fr.SavedFPR {
		b.Emit(fmt3i(3, gn(r), op3Lddf, rSP, int32(lay.FPROff(r))))
	}
	b.Emit(fmt3i(2, 0, op3Jmpl, rO7, 8))
	// Pop the frame in the return's delay slot.
	b.Emit(fmt3i(2, rSP, op3Add, rSP, int32(fr.Size)))
	return nil
}

// EmulatedOp: SPARC V8 has hardware multiply and divide.
func (s *Backend) EmulatedOp(op core.Op, t core.Type) (string, bool) { return "", false }

// TryExt provides hardware implementations for extensions.
func (s *Backend) TryExt(b *core.Buf, name string, t core.Type, rd core.Reg, rs []core.Reg) (bool, error) {
	switch name {
	case "sqrt":
		if t == core.TypeF && len(rs) == 1 {
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFsqrts, 0, gn(rs[0])))
			return true, nil
		}
		if t == core.TypeD && len(rs) == 1 {
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFsqrtd, 0, gn(rs[0])))
			return true, nil
		}
	case "abs":
		if t == core.TypeF && len(rs) == 1 {
			b.Emit(fmtFP(op3FPop1, gn(rd), opfFabss, 0, gn(rs[0])))
			return true, nil
		}
	}
	return false, nil
}
