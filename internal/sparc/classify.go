package sparc

import "repro/internal/verify"

// Classify decodes the control-flow behaviour of one SPARC word for the
// pre-install verifier.  Bicc/FBfcc displacements and the call
// instruction are pc-relative (from the branch itself); jmpl is
// register-indirect and serves as jump, indirect call and return.
func (s *Backend) Classify(w uint32, pc uint64) verify.Insn {
	switch w >> 30 {
	case 0:
		switch w >> 22 & 7 {
		case 2, 6: // Bicc / FBfcc
			disp := int64(int32(w<<10) >> 10)
			return verify.Insn{
				Kind:      verify.KindBranch,
				Target:    uint64(int64(pc) + disp*4),
				HasTarget: true,
			}
		}
		return verify.Insn{Kind: verify.KindOther}
	case 1: // call disp30
		disp := int64(int32(w<<2) >> 2)
		return verify.Insn{
			Kind:      verify.KindCall,
			Target:    uint64(int64(pc) + disp*4),
			HasTarget: true,
		}
	case 2:
		if w>>19&0x3f == op3Jmpl {
			if w>>25&0x1f != 0 { // writes a link register: indirect call
				return verify.Insn{Kind: verify.KindCall}
			}
			return verify.Insn{Kind: verify.KindJumpReg}
		}
	}
	return verify.Insn{Kind: verify.KindOther}
}
